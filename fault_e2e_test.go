package nds

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"nds/internal/proto"
)

// faultOpts is the shared end-to-end fault configuration: rates tuned so a
// modest workload on the smallest prototype geometry (256 dies) hits every
// transient class while staying inside the over-provision reserve.
func faultOpts() Options {
	return Options{
		Mode:         ModeHardware,
		CapacityHint: 1 << 20,
		// The replay assertions below need run-identical GC points; the
		// background worker's timing is wall-clock dependent.
		SynchronousGC: true,
		Faults: &FaultPlan{
			Seed:             19,
			ProgramFailEvery: 16,
			ReadRetryEvery:   5,
		},
	}
}

// faultWorkload drives one device through a fixed mixed read/write sequence
// and returns the final space image and the reliability report.
func faultWorkload(t *testing.T, d *Device) ([]byte, ReliabilityReport) {
	t.Helper()
	id, err := d.CreateSpace(4, []int64{512, 512})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := d.OpenSpace(id, []int64{512, 512})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(63))
	whole := make([]byte, 512*512*4)
	rng.Read(whole)
	var retries int64
	st, err := sp.Write([]int64{0, 0}, []int64{512, 512}, whole)
	if err != nil {
		t.Fatal(err)
	}
	retries += st.ProgramRetries
	for i := 0; i < 10; i++ {
		tile := make([]byte, 128*128*4)
		rng.Read(tile)
		coord := []int64{rng.Int63n(4), rng.Int63n(4)}
		st, err := sp.Write(coord, []int64{128, 128}, tile)
		if err != nil {
			t.Fatalf("tile write %d: %v", i, err)
		}
		retries += st.ProgramRetries
		if _, _, err := sp.Read(coord, []int64{128, 128}); err != nil {
			t.Fatalf("tile read %d: %v", i, err)
		}
		lo := [2]int64{coord[0] * 128, coord[1] * 128}
		for r := int64(0); r < 128; r++ {
			row := ((lo[0]+r)*512 + lo[1]) * 4
			copy(whole[row:], tile[r*128*4:(r+1)*128*4])
		}
	}
	img, _, err := sp.Read([]int64{0, 0}, []int64{512, 512})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(img, whole) {
		t.Fatal("read-back diverged from the host image under fault injection")
	}
	r := d.Reliability()
	if retries != r.ProgramRetries {
		t.Fatalf("per-request Stats counted %d relocations, report says %d", retries, r.ProgramRetries)
	}
	return img, r
}

// TestFaultInjectionEndToEnd: the public API absorbs a seeded fault plan —
// data survives, the report shows the recovery work, and an identical second
// device replays the exact same fault history.
func TestFaultInjectionEndToEnd(t *testing.T) {
	d1, err := Open(faultOpts())
	if err != nil {
		t.Fatal(err)
	}
	img1, r1 := faultWorkload(t, d1)
	if r1.ProgramFaults == 0 || r1.ProgramRetries == 0 || r1.RetiredBlocks == 0 {
		t.Fatalf("program-fault recovery never ran: %+v", r1)
	}
	if r1.ReadRetries == 0 {
		t.Fatalf("no ECC read retries recorded: %+v", r1)
	}
	if r1.EffectivePages > r1.MaxPages || r1.RetiredPages == 0 {
		t.Fatalf("inconsistent capacity accounting: %+v", r1)
	}

	d2, err := Open(faultOpts())
	if err != nil {
		t.Fatal(err)
	}
	img2, r2 := faultWorkload(t, d2)
	if r1 != r2 {
		t.Fatalf("reliability reports diverged across identical runs:\n%+v\n%+v", r1, r2)
	}
	if !bytes.Equal(img1, img2) {
		t.Fatal("images diverged across identical runs")
	}
	if d1.Now() != d2.Now() {
		t.Fatalf("simulated clocks diverged: %v vs %v", d1.Now(), d2.Now())
	}
}

// TestExecReliabilityFault: the get_reliability wire command returns a page
// whose decoded counters match the typed Reliability API.
func TestExecReliabilityFault(t *testing.T) {
	d, err := Open(faultOpts())
	if err != nil {
		t.Fatal(err)
	}
	_, want := faultWorkload(t, d)

	page, cpl, _, err := d.Exec(proto.NewReliability(0x3000).Marshal(), nil, nil)
	if err != nil || cpl.Status != proto.StatusOK {
		t.Fatalf("get_reliability: %v / %v", cpl.Status, err)
	}
	pl, err := proto.UnmarshalReliabilityPayload(page)
	if err != nil {
		t.Fatal(err)
	}
	got := ReliabilityReport{
		ProgramFaults:  pl.ProgramFaults,
		EraseFaults:    pl.EraseFaults,
		WearoutFaults:  pl.WearoutFaults,
		ReadRetries:    pl.ReadRetries,
		ProgramRetries: pl.ProgramRetries,
		RetiredBlocks:  pl.RetiredBlocks,
		RetiredPages:   pl.RetiredPages,
		MaxPages:       pl.MaxPages,
		EffectivePages: pl.EffectivePages,
		UsedPages:      pl.UsedPages,
	}
	if got != want {
		t.Fatalf("wire report diverged from typed report:\n%+v\n%+v", got, want)
	}
	if cpl.Result0 != uint64(want.RetiredBlocks) {
		t.Fatalf("completion Result0 = %d, want retired-block count %d", cpl.Result0, want.RetiredBlocks)
	}
}

// TestFaultConcurrentClients: concurrent request streams over a faulty
// medium recover independently — every client's data reads back intact.
// (Run under -race by the fault-matrix CI step.)
func TestFaultConcurrentClients(t *testing.T) {
	d, err := Open(Options{
		Mode:         ModeHardware,
		CapacityHint: 1 << 20,
		Faults:       &FaultPlan{Seed: 29, ProgramFailEvery: 8, ReadRetryEvery: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	const clients = 4
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			id, err := d.CreateSpace(4, []int64{128, 128})
			if err != nil {
				errs <- err
				return
			}
			sp, err := d.OpenSpace(id, []int64{128, 128})
			if err != nil {
				errs <- err
				return
			}
			rng := rand.New(rand.NewSource(int64(100 + c)))
			for i := 0; i < 6; i++ {
				data := make([]byte, 128*128*4)
				rng.Read(data)
				if _, err := sp.Write([]int64{0, 0}, []int64{128, 128}, data); err != nil {
					errs <- fmt.Errorf("client %d write %d: %w", c, i, err)
					return
				}
				got, _, err := sp.Read([]int64{0, 0}, []int64{128, 128})
				if err != nil {
					errs <- fmt.Errorf("client %d read %d: %w", c, i, err)
					return
				}
				if !bytes.Equal(got, data) {
					errs <- fmt.Errorf("client %d iteration %d: read-back mismatch", c, i)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if r := d.Reliability(); r.ProgramFaults == 0 || r.ReadRetries == 0 {
		t.Fatalf("concurrent workload never hit the fault plan: %+v", r)
	}
}
