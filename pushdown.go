package nds

import (
	"errors"
	"fmt"

	"nds/internal/stl"
	"nds/internal/tensor"
)

// In-storage compute pushdown: predicate scans and block-level reductions
// executed at the STL, next to the building-block cache, returning only
// results. This is the [P2] interconnect problem turned into an operator: on
// a hardware device the raw pages never cross the link (Stats.RawBytes is
// the result size), while a software device still ships every page to the
// host and filters there — the comparison is the experiment.
//
// Elements are unsigned little-endian integers of the space's element size
// (1, 2, 4, or 8 bytes); other element sizes reject with ErrInvalid. Indexes
// are row-major element positions within the scanned partition. Unwritten
// regions read as zeros, exactly as Read would return them, so a pushdown
// result is byte-for-byte what the host would compute from Read's buffer —
// the differential tests hold every configuration to that.

// ErrPushdownDisabled reports a Scan or Reduce on a device opened with
// Options.DisablePushdown. The wire layer maps it to StatusUnsupportedOp.
var ErrPushdownDisabled = errors.New("pushdown disabled on this device")

// Float values become scannable through the order-preserving key transform
// (tensor.Key32/Key64, the sign-flip trick): store Key32(f) instead of f's
// raw bits and any float range predicate becomes an unsigned range predicate
// the device can evaluate. The helpers below build predicates for spaces
// stored in key encoding; FloatKey32/FloatKey64 and their inverses are
// re-exported so callers can encode on write and decode scan results.

// FloatKey32 maps a float32 to the 4-byte key whose unsigned order matches
// the float total order (-NaN < -Inf < ... < -0 < +0 < ... < +Inf < +NaN).
func FloatKey32(f float32) uint32 { return tensor.Key32(f) }

// FloatFromKey32 inverts FloatKey32, recovering the exact bit pattern.
func FloatFromKey32(k uint32) float32 { return tensor.FromKey32(k) }

// FloatKey64 maps a float64 to the 8-byte key whose unsigned order matches
// the float total order.
func FloatKey64(f float64) uint64 { return tensor.Key64(f) }

// FloatFromKey64 inverts FloatKey64, recovering the exact bit pattern.
func FloatFromKey64(k uint64) float64 { return tensor.FromKey64(k) }

// Float32Range builds a predicate matching keys of float32 values in the
// inclusive range [lo, hi], for spaces of 4-byte elements stored in
// FloatKey32 encoding.
func Float32Range(lo, hi float32) Predicate {
	return Predicate{Lo: uint64(tensor.Key32(lo)), Hi: uint64(tensor.Key32(hi))}
}

// Float64Range builds a predicate matching keys of float64 values in the
// inclusive range [lo, hi], for spaces of 8-byte elements stored in
// FloatKey64 encoding.
func Float64Range(lo, hi float64) Predicate {
	return Predicate{Lo: tensor.Key64(lo), Hi: tensor.Key64(hi)}
}

// Predicate is an inclusive unsigned value range [Lo, Hi].
type Predicate = stl.Predicate

// ScanQuery selects elements of a partition by predicate. Cursor resumes a
// truncated scan at the element index a previous result's NextCursor
// reported; Max bounds the reported matches (<= 0 means unlimited through
// the typed API; the wire protocol bounds results to one page).
type ScanQuery = stl.ScanQuery

// Match is one scan hit: the element's row-major index within the scanned
// partition and its value.
type Match = stl.Match

// ScanResult reports a scan: the matches at or past the query cursor (up to
// Max), the true total match count over the whole partition regardless of
// truncation, and the cursor resuming a truncated scan (-1 when complete).
type ScanResult = stl.ScanResult

// ReduceKind selects a reduction operator.
type ReduceKind = stl.ReduceKind

// Reduction operators. Values are stable on the wire.
const (
	// ReduceSum sums matching elements (wrapping uint64 arithmetic).
	ReduceSum = stl.ReduceSum
	// ReduceCount counts matching elements — nonzero elements when the query
	// has no predicate.
	ReduceCount = stl.ReduceCount
	// ReduceMin reports the smallest matching element and its first index.
	ReduceMin = stl.ReduceMin
	// ReduceMax reports the largest matching element and its first index.
	ReduceMax = stl.ReduceMax
	// ReduceTopK reports the K largest matching elements, descending (ties
	// broken by ascending index).
	ReduceTopK = stl.ReduceTopK
)

// ReduceQuery configures a reduction: the operator, K for ReduceTopK, and an
// optional predicate restricting which elements participate (nil admits all
// elements — except for ReduceCount, where nil counts nonzero elements).
type ReduceQuery = stl.ReduceQuery

// ReduceResult reports a reduction. Value carries the scalar result (sum,
// count, min, max, or the top value); Index is the first element attaining a
// min/max (-1 when the partition had no matching elements); Count is how
// many elements contributed; TopK holds ReduceTopK's entries.
type ReduceResult = stl.ReduceResult

// Scan executes a predicate scan over the partition at coord/sub inside the
// device, returning matching elements without materializing the partition on
// the host. Timing, flash operations, and tenant QoS charging are identical
// to the Read of the same partition; what differs is what crosses the
// interconnect (see Stats.RawBytes). Scans work on phantom devices — an
// unstored partition is all zeros.
func (s *Space) Scan(coord, sub []int64, q ScanQuery) (ScanResult, Stats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.view == nil {
		return ScanResult{}, Stats{}, fmt.Errorf("nds: scan on %w", ErrClosedView)
	}
	d := s.dev
	if d.noPushdown {
		return ScanResult{}, Stats{}, fmt.Errorf("nds: scan: %w", ErrPushdownDisabled)
	}
	issue := s.cursor
	d.io.RLock()
	res, st, err := d.sys.NDSScan(issue, s.view, coord, sub, q)
	d.io.RUnlock()
	if err != nil {
		return ScanResult{}, Stats{}, err
	}
	return res, s.account(issue, st), nil
}

// Reduce executes a block-level reduction over the partition at coord/sub
// inside the device, with the same timing, charging, and interconnect
// semantics as Scan.
func (s *Space) Reduce(coord, sub []int64, q ReduceQuery) (ReduceResult, Stats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.view == nil {
		return ReduceResult{}, Stats{}, fmt.Errorf("nds: reduce on %w", ErrClosedView)
	}
	d := s.dev
	if d.noPushdown {
		return ReduceResult{}, Stats{}, fmt.Errorf("nds: reduce: %w", ErrPushdownDisabled)
	}
	issue := s.cursor
	d.io.RLock()
	res, st, err := d.sys.NDSReduce(issue, s.view, coord, sub, q)
	d.io.RUnlock()
	if err != nil {
		return ReduceResult{}, Stats{}, err
	}
	return res, s.account(issue, st), nil
}
