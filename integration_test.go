package nds_test

import (
	"testing"

	"nds"
	"nds/internal/datagen"
	"nds/internal/tensor"
	"nds/internal/workloads"
)

// TestBlockedGEMMThroughNDS runs the paper's flagship workload end to end at
// small scale: two matrices are produced into NDS spaces, the consumer
// fetches 2-D tiles by coordinate, multiplies them with the reference
// kernel, and the result must equal the direct multiplication. This
// exercises space creation, the producer/consumer views, the translator,
// allocation, and assembly as one pipeline.
func TestBlockedGEMMThroughNDS(t *testing.T) {
	const n, tile = 128, 32
	a := datagen.Matrix(n, n, 21)
	b := datagen.Matrix(n, n, 22)
	want, err := tensor.MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}

	for _, mode := range []nds.Mode{nds.ModeSoftware, nds.ModeHardware} {
		dev, err := nds.Open(nds.Options{Mode: mode, CapacityHint: 8 << 20})
		if err != nil {
			t.Fatal(err)
		}
		store := func(m *tensor.Matrix) *nds.Space {
			id, err := dev.CreateSpace(4, []int64{n, n})
			if err != nil {
				t.Fatal(err)
			}
			sp, err := dev.OpenSpace(id, []int64{n, n})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := sp.Write([]int64{0, 0}, []int64{n, n}, m.Bytes()); err != nil {
				t.Fatal(err)
			}
			return sp
		}
		sa, sb := store(a), store(b)

		fetch := func(sp *nds.Space, i, j int64) *tensor.Matrix {
			raw, _, err := sp.Read([]int64{i, j}, []int64{tile, tile})
			if err != nil {
				t.Fatal(err)
			}
			m, err := tensor.MatrixFromBytes(tile, tile, raw)
			if err != nil {
				t.Fatal(err)
			}
			return m
		}

		got := tensor.NewMatrix(n, n)
		for i := int64(0); i < n/tile; i++ {
			for j := int64(0); j < n/tile; j++ {
				acc := tensor.NewMatrix(tile, tile)
				for k := int64(0); k < n/tile; k++ {
					if err := tensor.AccumulateMul(acc, fetch(sa, i, k), fetch(sb, k, j)); err != nil {
						t.Fatal(err)
					}
				}
				got.SetSub(int(i)*tile, int(j)*tile, acc)
			}
		}
		if !got.Equal(want, 1e-2) {
			t.Fatalf("%v: blocked GEMM through NDS diverges from reference", mode)
		}
		if dev.Now() <= 0 {
			t.Fatalf("%v: no simulated time elapsed", mode)
		}
	}
}

// TestGraphThroughNDS stores an adjacency matrix in an NDS space, streams it
// back through a reshaped row-batch view, and checks BFS sees the identical
// graph.
func TestGraphThroughNDS(t *testing.T) {
	const n = 96
	adj, err := datagen.Graph(n, 400, 31)
	if err != nil {
		t.Fatal(err)
	}
	wantLv, err := workloads.BFS(adj, 0)
	if err != nil {
		t.Fatal(err)
	}

	dev, err := nds.Open(nds.Options{Mode: nds.ModeHardware, CapacityHint: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	id, err := dev.CreateSpace(4, []int64{n, n})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := dev.OpenSpace(id, []int64{n, n})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Write([]int64{0, 0}, []int64{n, n}, adj.Bytes()); err != nil {
		t.Fatal(err)
	}

	// Rebuild the adjacency row-batch by row-batch through NDS.
	rebuilt := tensor.NewMatrix(n, n)
	const batch = 16
	for i := int64(0); i*batch < n; i++ {
		raw, _, err := sp.Read([]int64{i, 0}, []int64{batch, n})
		if err != nil {
			t.Fatal(err)
		}
		m, err := tensor.MatrixFromBytes(batch, n, raw)
		if err != nil {
			t.Fatal(err)
		}
		rebuilt.SetSub(int(i)*batch, 0, m)
	}
	gotLv, err := workloads.BFS(rebuilt, 0)
	if err != nil {
		t.Fatal(err)
	}
	for v := range wantLv {
		if gotLv[v] != wantLv[v] {
			t.Fatalf("vertex %d: level %d through NDS, want %d", v, gotLv[v], wantLv[v])
		}
	}
}

// TestTensorBricksThroughNDS stores a 3-D tensor in a 3-D-building-block
// space and fetches mode-2 bricks, checking TTV over the bricks equals TTV
// over the whole tensor.
func TestTensorBricksThroughNDS(t *testing.T) {
	const d, brick = 64, 16
	ts := datagen.Tensor(d, d, d, 41)
	v := make([]float32, brick)
	for i := range v {
		v[i] = float32(i%5) - 2
	}

	dev, err := nds.Open(nds.Options{Mode: nds.ModeHardware, CapacityHint: 8 << 20, BlockOrder: 3})
	if err != nil {
		t.Fatal(err)
	}
	id, err := dev.CreateSpace(4, []int64{d, d, d})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := dev.OpenSpace(id, []int64{d, d, d})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Write([]int64{0, 0, 0}, []int64{d, d, d}, ts.Bytes()); err != nil {
		t.Fatal(err)
	}

	// TTV along mode 2 restricted to the brick at k-offset 2*brick.
	raw, _, err := sp.Read([]int64{0, 0, 2}, []int64{d, d, brick})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := tensor.Tensor3FromBytes(d, d, brick, raw)
	if err != nil {
		t.Fatal(err)
	}
	got, err := tensor.TTV(sub, v, 2)
	if err != nil {
		t.Fatal(err)
	}

	// Reference: same contraction on the in-memory tensor.
	want := tensor.NewMatrix(d, d)
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			var s float32
			for k := 0; k < brick; k++ {
				s += v[k] * ts.At(i, j, 2*brick+k)
			}
			want.Set(i, j, s)
		}
	}
	if !got.Equal(want, 1e-3) {
		t.Fatal("mode-2 brick TTV through NDS diverges from reference")
	}
}
