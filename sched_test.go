package nds

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"nds/internal/sim"
)

// fillSpace builds a device with a written 1024x1024 float32 space (4 MiB)
// and returns it with the space ID. The writes complete before the caller's
// measurement starts, so every later read hits programmed flash.
func fillSpace(tb testing.TB) (*Device, SpaceID) {
	tb.Helper()
	d, err := Open(Options{Mode: ModeHardware, CapacityHint: 16 << 20})
	if err != nil {
		tb.Fatal(err)
	}
	id, err := d.CreateSpace(4, []int64{1024, 1024})
	if err != nil {
		tb.Fatal(err)
	}
	w, err := d.OpenSpace(id, []int64{1024, 1024})
	if err != nil {
		tb.Fatal(err)
	}
	data := make([]byte, 1024*1024*4)
	rand.New(rand.NewSource(7)).Read(data)
	if _, err := w.Write([]int64{0, 0}, []int64{1024, 1024}, data); err != nil {
		tb.Fatal(err)
	}
	if err := w.Close(); err != nil {
		tb.Fatal(err)
	}
	return d, id
}

// runClients opens one view per client and has each read its share of the
// 256 disjoint 64x64 tiles (16 KiB each) from its own goroutine. It returns
// the simulated makespan of the whole phase, the payload bytes moved, and
// the number of dies whose timelines extend past the phase start (work in
// flight at the instant the streams began issuing).
func runClients(tb testing.TB, d *Device, id SpaceID, clients int) (time.Duration, int64, int) {
	tb.Helper()
	const tiles = 256 // 16x16 grid of 64x64 tiles over the 1024x1024 space
	views := make([]*Space, clients)
	for i := range views {
		v, err := d.OpenSpace(id, []int64{1024, 1024})
		if err != nil {
			tb.Fatal(err)
		}
		views[i] = v
	}
	start := d.Now()
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	per := tiles / clients
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// Each stream owns one assembly buffer, reused across its reads
			// (the ReadInto ownership contract).
			buf := make([]byte, 64*64*4)
			coord := make([]int64, 2)
			sub := []int64{64, 64}
			for k := 0; k < per; k++ {
				tile := int64(c*per + k)
				coord[0], coord[1] = tile/16, tile%16
				if _, _, err := views[c].ReadInto(coord, sub, buf); err != nil {
					errs <- fmt.Errorf("client %d tile %d: %w", c, tile, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		tb.Fatal(err)
	}
	for _, v := range views {
		if err := v.Close(); err != nil {
			tb.Fatal(err)
		}
	}
	busy := d.sys.Dev.BusyDies(sim.Time(start))
	return d.Now() - start, tiles * 64 * 64 * 4, busy
}

// TestConcurrentThroughputScales: the same total work finishes in less
// simulated time when issued by more clients, because each client is an
// independent command stream whose flash operations overlap on the array's
// dies. One client is exactly the old serial-lock behavior (every command
// issues at the previous one's completion), so the 16-client speedup is a
// direct comparison against the serial baseline.
func TestConcurrentThroughputScales(t *testing.T) {
	throughput := make(map[int]float64)
	for _, clients := range []int{1, 4, 16} {
		d, id := fillSpace(t)
		makespan, bytes, busy := runClients(t, d, id, clients)
		if makespan <= 0 {
			t.Fatalf("%d clients: non-positive makespan %v", clients, makespan)
		}
		throughput[clients] = float64(bytes) / makespan.Seconds()
		t.Logf("%2d clients: makespan %v, aggregate %.1f MB/s, %d dies engaged",
			clients, makespan, throughput[clients]/1e6, busy)
		if busy < clients {
			t.Errorf("%d clients engaged only %d dies", clients, busy)
		}
	}
	if throughput[4] <= throughput[1] {
		t.Errorf("4 clients (%.1f MB/s) not faster than 1 (%.1f MB/s)",
			throughput[4]/1e6, throughput[1]/1e6)
	}
	if throughput[16] <= throughput[4] {
		t.Errorf("16 clients (%.1f MB/s) not faster than 4 (%.1f MB/s)",
			throughput[16]/1e6, throughput[4]/1e6)
	}
	if throughput[16] < 2*throughput[1] {
		t.Errorf("16 clients (%.1f MB/s) below 2x the serial baseline (%.1f MB/s)",
			throughput[16]/1e6, throughput[1]/1e6)
	}
}

// BenchmarkConcurrentClients reports aggregate simulated throughput of the
// tile-read workload as the client count grows. sim-MB/s is the headline
// metric: payload bytes divided by simulated makespan.
func BenchmarkConcurrentClients(b *testing.B) {
	for _, clients := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			d, id := fillSpace(b)
			b.ReportAllocs()
			b.ResetTimer()
			var span time.Duration
			var bytes int64
			for i := 0; i < b.N; i++ {
				m, n, _ := runClients(b, d, id, clients)
				span += m
				bytes += n
			}
			b.ReportMetric(float64(bytes)/span.Seconds()/1e6, "sim-MB/s")
		})
	}
}
