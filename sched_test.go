package nds

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"nds/internal/sim"
)

// fillSpace builds a device with a written 1024x1024 float32 space (4 MiB)
// and returns it with the space ID. The writes complete before the caller's
// measurement starts, so every later read hits programmed flash.
func fillSpace(tb testing.TB) (*Device, SpaceID) {
	tb.Helper()
	d, err := Open(Options{Mode: ModeHardware, CapacityHint: 16 << 20})
	if err != nil {
		tb.Fatal(err)
	}
	id, err := d.CreateSpace(4, []int64{1024, 1024})
	if err != nil {
		tb.Fatal(err)
	}
	w, err := d.OpenSpace(id, []int64{1024, 1024})
	if err != nil {
		tb.Fatal(err)
	}
	data := make([]byte, 1024*1024*4)
	rand.New(rand.NewSource(7)).Read(data)
	if _, err := w.Write([]int64{0, 0}, []int64{1024, 1024}, data); err != nil {
		tb.Fatal(err)
	}
	if err := w.Close(); err != nil {
		tb.Fatal(err)
	}
	return d, id
}

// runClients opens one view per client and has each read its share of the
// 256 disjoint 64x64 tiles (16 KiB each) from its own goroutine. It returns
// the simulated makespan of the whole phase, the payload bytes moved, and
// the number of dies whose timelines extend past the phase start (work in
// flight at the instant the streams began issuing).
func runClients(tb testing.TB, d *Device, id SpaceID, clients int) (time.Duration, int64, int) {
	tb.Helper()
	const tiles = 256 // 16x16 grid of 64x64 tiles over the 1024x1024 space
	views := make([]*Space, clients)
	for i := range views {
		v, err := d.OpenSpace(id, []int64{1024, 1024})
		if err != nil {
			tb.Fatal(err)
		}
		views[i] = v
	}
	start := d.Now()
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	per := tiles / clients
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// Each stream owns one assembly buffer, reused across its reads
			// (the ReadInto ownership contract).
			buf := make([]byte, 64*64*4)
			coord := make([]int64, 2)
			sub := []int64{64, 64}
			for k := 0; k < per; k++ {
				tile := int64(c*per + k)
				coord[0], coord[1] = tile/16, tile%16
				if _, _, err := views[c].ReadInto(coord, sub, buf); err != nil {
					errs <- fmt.Errorf("client %d tile %d: %w", c, tile, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		tb.Fatal(err)
	}
	for _, v := range views {
		if err := v.Close(); err != nil {
			tb.Fatal(err)
		}
	}
	busy := d.sys.Dev.BusyDies(sim.Time(start))
	return d.Now() - start, tiles * 64 * 64 * 4, busy
}

// TestConcurrentThroughputScales: the same total work finishes in less
// simulated time when issued by more clients, because each client is an
// independent command stream whose flash operations overlap on the array's
// dies. One client is exactly the old serial-lock behavior (every command
// issues at the previous one's completion), so the 16-client speedup is a
// direct comparison against the serial baseline.
func TestConcurrentThroughputScales(t *testing.T) {
	throughput := make(map[int]float64)
	for _, clients := range []int{1, 4, 16} {
		d, id := fillSpace(t)
		makespan, bytes, busy := runClients(t, d, id, clients)
		if makespan <= 0 {
			t.Fatalf("%d clients: non-positive makespan %v", clients, makespan)
		}
		throughput[clients] = float64(bytes) / makespan.Seconds()
		t.Logf("%2d clients: makespan %v, aggregate %.1f MB/s, %d dies engaged",
			clients, makespan, throughput[clients]/1e6, busy)
		if busy < clients {
			t.Errorf("%d clients engaged only %d dies", clients, busy)
		}
	}
	if throughput[4] <= throughput[1] {
		t.Errorf("4 clients (%.1f MB/s) not faster than 1 (%.1f MB/s)",
			throughput[4]/1e6, throughput[1]/1e6)
	}
	if throughput[16] <= throughput[4] {
		t.Errorf("16 clients (%.1f MB/s) not faster than 4 (%.1f MB/s)",
			throughput[16]/1e6, throughput[4]/1e6)
	}
	if throughput[16] < 2*throughput[1] {
		t.Errorf("16 clients (%.1f MB/s) below 2x the serial baseline (%.1f MB/s)",
			throughput[16]/1e6, throughput[1]/1e6)
	}
}

// openWriteDevice builds a device for the write-heavy workload: one
// 512x512 float32 space (1 MiB) per client, each opened once. serialized
// selects the pre-PR exclusive-lock behavior (every write holds the device
// write lock, GC runs inline); otherwise writes to distinct spaces proceed
// concurrently with collection on the background worker.
func openWriteDevice(tb testing.TB, serialized bool, clients int) (*Device, []*Space) {
	tb.Helper()
	d, err := Open(Options{
		Mode:             ModeHardware,
		CapacityHint:     64 << 20,
		SerializedWrites: serialized,
		SynchronousGC:    serialized,
	})
	if err != nil {
		tb.Fatal(err)
	}
	spaces := make([]*Space, clients)
	for i := range spaces {
		id, err := d.CreateSpace(4, []int64{512, 512})
		if err != nil {
			tb.Fatal(err)
		}
		if spaces[i], err = d.OpenSpace(id, []int64{512, 512}); err != nil {
			tb.Fatal(err)
		}
	}
	return d, spaces
}

// writeClients has each client overwrite its whole space in 64-row bands
// (128 KiB per write, 8 bands per pass) for the given number of passes,
// each from its own goroutine. It returns the wall-clock elapsed time, the
// simulated makespan, and the payload bytes written.
func writeClients(tb testing.TB, d *Device, spaces []*Space, passes int) (time.Duration, time.Duration, int64) {
	tb.Helper()
	const bands = 8 // 512 rows / 64
	simStart := d.Now()
	wallStart := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, len(spaces))
	for c, sp := range spaces {
		wg.Add(1)
		go func(c int, sp *Space) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(300 + c)))
			band := make([]byte, 64*512*4)
			sub := []int64{64, 512}
			coord := make([]int64, 2)
			for p := 0; p < passes; p++ {
				for k := int64(0); k < bands; k++ {
					rng.Read(band)
					coord[0], coord[1] = k, 0
					if _, err := sp.Write(coord, sub, band); err != nil {
						errs <- fmt.Errorf("client %d band %d: %w", c, k, err)
						return
					}
				}
			}
		}(c, sp)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		tb.Fatal(err)
	}
	wall := time.Since(wallStart)
	bytes := int64(len(spaces)) * int64(passes) * bands * 64 * 512 * 4
	return wall, d.Now() - simStart, bytes
}

// TestConcurrentWriteScaling: the acceptance gate for the concurrent write
// path — the same write-heavy workload must finish at least 2x faster in
// wall-clock time than the exclusive-lock configuration, while the simulated
// device throughput stays comparable (locking strategy must not change how
// much flash work the workload costs). Skipped on small hosts and under the
// race detector, where wall-clock parallelism is unmeasurable.
func TestConcurrentWriteScaling(t *testing.T) {
	if raceEnabled {
		t.Skip("wall-clock speedup is not measurable under the race detector")
	}
	if procs := runtime.GOMAXPROCS(0); procs < 4 {
		t.Skipf("need at least 4 CPUs for a meaningful wall-clock speedup, have %d", procs)
	}
	const clients, passes = 16, 4
	measure := func(serialized bool) (time.Duration, time.Duration) {
		d, spaces := openWriteDevice(t, serialized, clients)
		defer d.Close()
		for _, sp := range spaces {
			defer sp.Close()
		}
		// One untimed pass so both modes measure steady-state overwrites
		// rather than first-touch allocation.
		writeClients(t, d, spaces, 1)
		wall, sim, _ := writeClients(t, d, spaces, passes)
		return wall, sim
	}
	serWall, serSim := measure(true)
	conWall, conSim := measure(false)
	speedup := float64(serWall) / float64(conWall)
	t.Logf("serialized: wall %v sim %v; concurrent: wall %v sim %v; speedup %.2fx",
		serWall, serSim, conWall, conSim, speedup)
	if speedup < 2 {
		t.Errorf("concurrent write path only %.2fx faster than the exclusive-lock path, want >= 2x", speedup)
	}
	if ratio := float64(conSim) / float64(serSim); ratio > 1.5 || ratio < 1/1.5 {
		t.Errorf("simulated makespans diverge between lock modes: serialized %v, concurrent %v", serSim, conSim)
	}
}

// BenchmarkConcurrentClients reports aggregate simulated throughput of the
// tile-read workload as the client count grows. sim-MB/s is the headline
// metric: payload bytes divided by simulated makespan.
func BenchmarkConcurrentClients(b *testing.B) {
	for _, clients := range []int{1, 2, 4, 8, 16, 64} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			d, id := fillSpace(b)
			b.ReportAllocs()
			b.ResetTimer()
			var span time.Duration
			var bytes int64
			for i := 0; i < b.N; i++ {
				m, n, _ := runClients(b, d, id, clients)
				span += m
				bytes += n
			}
			b.ReportMetric(float64(bytes)/span.Seconds()/1e6, "sim-MB/s")
		})
	}
}

// BenchmarkConcurrentWriters runs the write-heavy workload (full-space
// overwrites in 128 KiB bands, one space per client) in both lock modes.
// ns/op is the wall-clock cost of one full overwrite pass across all
// clients — the mode=serialized rows are the pre-PR exclusive-lock
// baseline the concurrent rows are gated against. sim-MB/s is the
// simulated device throughput, which must not differ between modes.
func BenchmarkConcurrentWriters(b *testing.B) {
	for _, mode := range []struct {
		name       string
		serialized bool
	}{{"serialized", true}, {"concurrent", false}} {
		for _, clients := range []int{4, 16} {
			b.Run(fmt.Sprintf("mode=%s/clients=%d", mode.name, clients), func(b *testing.B) {
				d, spaces := openWriteDevice(b, mode.serialized, clients)
				defer d.Close()
				writeClients(b, d, spaces, 1) // first-touch allocation off the clock
				b.ReportAllocs()
				b.ResetTimer()
				var span time.Duration
				var bytes int64
				for i := 0; i < b.N; i++ {
					_, m, n := writeClients(b, d, spaces, 1)
					span += m
					bytes += n
				}
				b.ReportMetric(float64(bytes)/span.Seconds()/1e6, "sim-MB/s")
			})
		}
	}
}
