package nds_test

// One benchmark per table/figure of the paper's evaluation, plus ablation
// benchmarks for the design decisions DESIGN.md calls out. Each benchmark
// regenerates its experiment on the simulated platform and reports the
// figure's headline quantities as custom metrics (MB/s of simulated
// bandwidth, x of speedup), so `go test -bench=.` reproduces the evaluation
// end to end. cmd/ndsbench prints the full row/series form.

import (
	"testing"

	"nds/internal/experiments"
	"nds/internal/nvm"
	"nds/internal/sim"
	"nds/internal/stl"
	"nds/internal/system"
	"nds/internal/workloads"
)

const benchN = 4096 // microbenchmark matrix side; paper scale is 32768

func BenchmarkTable1Catalog(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if got := len(workloads.Catalog()); got != 10 {
			b.Fatalf("catalog has %d workloads", got)
		}
	}
}

func BenchmarkFigure2A(b *testing.B) {
	var r experiments.Fig2Result
	for i := 0; i < b.N; i++ {
		r = experiments.Figure2A()
	}
	b.ReportMetric(r.Ratio, "ratio")
}

func BenchmarkFigure2B(b *testing.B) {
	var r experiments.Fig2Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Figure2B()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Ratio, "ratio")
	b.ReportMetric(r.FetchRatio, "fetch-ratio")
}

func BenchmarkFigure3(b *testing.B) {
	var rows []experiments.Fig3Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Figure3()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Dim == 512 {
			b.ReportMetric(r.TensorCores, "TCU-peak-MB/s")
		}
		if r.Dim == 16384 {
			b.ReportMetric(r.InternalSSD, "SSD-internal-MB/s")
		}
	}
}

func fig9Platform(b *testing.B) (*experiments.Platform, *experiments.Matrix2D) {
	b.Helper()
	p, err := experiments.NewPlatform(benchN * benchN * 8)
	if err != nil {
		b.Fatal(err)
	}
	m, err := p.LoadMatrix(benchN)
	if err != nil {
		b.Fatal(err)
	}
	return p, m
}

func BenchmarkFigure9Row(b *testing.B) {
	p, m := fig9Platform(b)
	b.ReportAllocs()
	b.ResetTimer()
	var pts []experiments.Fig9Point
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.Figure9A(p, m)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := pts[len(pts)-1]
	b.ReportMetric(last.BaselineMB, "baseline-MB/s")
	b.ReportMetric(last.SoftwareMB, "swNDS-MB/s")
	b.ReportMetric(last.HardwareMB, "hwNDS-MB/s")
}

func BenchmarkFigure9Col(b *testing.B) {
	p, m := fig9Platform(b)
	b.ReportAllocs()
	b.ResetTimer()
	var pts []experiments.Fig9Point
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.Figure9B(p, m)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := pts[len(pts)-1]
	b.ReportMetric(last.BaselineMB, "rowstore-MB/s")
	b.ReportMetric(last.BaselineAlt, "colstore-MB/s")
	b.ReportMetric(last.HardwareMB, "hwNDS-MB/s")
}

func BenchmarkFigure9Sub(b *testing.B) {
	p, m := fig9Platform(b)
	b.ReportAllocs()
	b.ResetTimer()
	var pts []experiments.Fig9Point
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.Figure9C(p, m)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := pts[len(pts)-1]
	b.ReportMetric(last.BaselineMB, "baseline-MB/s")
	b.ReportMetric(last.HardwareMB, "hwNDS-MB/s")
}

func BenchmarkFigure9Write(b *testing.B) {
	b.ReportAllocs()
	var w experiments.Fig9Write
	for i := 0; i < b.N; i++ {
		var err error
		w, err = experiments.Figure9D(benchN)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(w.BaselineRowMB, "baseline-MB/s")
	b.ReportMetric(w.SoftwareMB, "swNDS-MB/s")
	b.ReportMetric(w.HardwareMB, "hwNDS-MB/s")
}

// BenchmarkFigure10 runs three representative Table 1 workloads (tiled,
// column-band, and sequential-row access classes) at quarter scale; the full
// ten-workload sweep at catalog scale is `ndsbench -fig 10`.
func BenchmarkFigure10(b *testing.B) {
	byName := map[string]workloads.Spec{}
	for _, s := range workloads.Catalog() {
		byName[s.Name] = s
	}
	scale := func(s workloads.Spec) workloads.Spec {
		s.Dims = append([]int64(nil), s.Dims...)
		s.Fetches = append([]workloads.Fetch(nil), s.Fetches...)
		for i := range s.Dims {
			s.Dims[i] /= 4
		}
		for i := range s.Fetches {
			sub := append([]int64(nil), s.Fetches[i].Sub...)
			at := append([]int64(nil), s.Fetches[i].At...)
			for j := range sub {
				sub[j] /= 4
				if sub[j] < 1 {
					sub[j] = 1
				}
				if (at[j]+1)*sub[j] > s.Dims[j] {
					at[j] = 0
				}
			}
			s.Fetches[i] = workloads.Fetch{Sub: sub, At: at}
		}
		s.Iters /= 4
		if s.Iters < 4 {
			s.Iters = 4
		}
		return s
	}
	var hot, sssp, bfs workloads.Result
	for i := 0; i < b.N; i++ {
		var err error
		if hot, err = workloads.Run(scale(byName["Hotspot"])); err != nil {
			b.Fatal(err)
		}
		if sssp, err = workloads.Run(scale(byName["SSSP"])); err != nil {
			b.Fatal(err)
		}
		if bfs, err = workloads.Run(scale(byName["BFS"])); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(hot.SpeedupHardware, "hotspot-hw-x")
	b.ReportMetric(sssp.SpeedupHardware, "sssp-hw-x")
	b.ReportMetric(bfs.SpeedupSoftware, "bfs-sw-x")
}

func BenchmarkOverhead(b *testing.B) {
	var o experiments.OverheadResult
	for i := 0; i < b.N; i++ {
		var err error
		o, err = experiments.Overhead(benchN)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(o.SoftwareDelta.Micros(), "sw-delta-us")
	b.ReportMetric(o.HardwareDelta.Micros(), "hw-delta-us")
	b.ReportMetric(o.IndexOverhead*100, "index-%")
}

// --- Allocation benchmarks (the pooled request-scratch win). ---

// allocSTL builds a small data-bearing STL with a fully written 1024x1024
// float32 space, optionally on the scalar (pre-batching) data path.
func allocSTL(b *testing.B, scalar bool) (*stl.STL, *stl.View) {
	b.Helper()
	cfg := system.PrototypeConfig(16<<20, false)
	sc := cfg.STL
	sc.ScalarPath = scalar
	dev, err := nvm.NewDevice(cfg.Geometry, cfg.Timing, false)
	if err != nil {
		b.Fatal(err)
	}
	st, err := stl.New(dev, sc)
	if err != nil {
		b.Fatal(err)
	}
	const n = 1024
	sp, err := st.CreateSpace(4, []int64{n, n})
	if err != nil {
		b.Fatal(err)
	}
	v, err := stl.NewView(sp, []int64{n, n})
	if err != nil {
		b.Fatal(err)
	}
	band := sp.BlockDims()[0]
	data := make([]byte, band*n*4)
	for i := range data {
		data[i] = byte(i)
	}
	for i := int64(0); i*band < n; i++ {
		if _, _, err := st.WritePartition(0, v, []int64{i, 0}, []int64{band, n}, data); err != nil {
			b.Fatal(err)
		}
	}
	return st, v
}

// BenchmarkReadPartitionAllocs measures per-request heap allocations of a
// 64x64 tile read on both data paths; path=batched should stay near zero
// (pooled scratch + caller-owned assembly buffer), path=scalar is the
// pre-vectorization behavior kept for comparison.
func BenchmarkReadPartitionAllocs(b *testing.B) {
	for _, mode := range []struct {
		name   string
		scalar bool
	}{{"path=batched", false}, {"path=scalar", true}} {
		b.Run(mode.name, func(b *testing.B) {
			st, v := allocSTL(b, mode.scalar)
			buf := make([]byte, 64*64*4)
			coord := []int64{1, 1}
			sub := []int64{64, 64}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, _, err := st.ReadPartitionInto(0, v, coord, sub, buf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWritePartitionAllocs measures per-request heap allocations of a
// 64x64 tile overwrite (read-modify-write plus replacement allocation) on
// both data paths.
func BenchmarkWritePartitionAllocs(b *testing.B) {
	for _, mode := range []struct {
		name   string
		scalar bool
	}{{"path=batched", false}, {"path=scalar", true}} {
		b.Run(mode.name, func(b *testing.B) {
			st, v := allocSTL(b, mode.scalar)
			data := make([]byte, 64*64*4)
			for i := range data {
				data[i] = byte(3 * i)
			}
			coord := []int64{1, 1}
			sub := []int64{64, 64}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := st.WritePartition(0, v, coord, sub, data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ablations (DESIGN.md "Key design decisions"). ---

// benchSTL builds a loaded STL with the given config tweaks and measures
// the simulated time of a mixed row/column/tile read set.
func ablationSTL(b *testing.B, mutate func(*stl.Config)) (row, col, tile sim.Time) {
	b.Helper()
	cfg := system.PrototypeConfig(64<<20, true)
	sc := cfg.STL
	if mutate != nil {
		mutate(&sc)
	}
	dev, err := nvm.NewDevice(cfg.Geometry, cfg.Timing, true)
	if err != nil {
		b.Fatal(err)
	}
	st, err := stl.New(dev, sc)
	if err != nil {
		b.Fatal(err)
	}
	const n = 2048
	sp, err := st.CreateSpace(8, []int64{n, n})
	if err != nil {
		b.Fatal(err)
	}
	v, err := stl.NewView(sp, []int64{n, n})
	if err != nil {
		b.Fatal(err)
	}
	band := sp.BlockDims()[0]
	for i := int64(0); i*band < n; i++ {
		if _, _, err := st.WritePartition(0, v, []int64{i, 0}, []int64{band, n}, nil); err != nil {
			b.Fatal(err)
		}
	}
	read := func(coord, sub []int64) sim.Time {
		dev.ResetTimeline()
		_, done, _, err := st.ReadPartition(0, v, coord, sub)
		if err != nil {
			b.Fatal(err)
		}
		return done
	}
	row = read([]int64{1, 0}, []int64{256, n})
	col = read([]int64{0, 1}, []int64{n, 256})
	tile = read([]int64{1, 1}, []int64{512, 512})
	return row, col, tile
}

// BenchmarkAblationBlockShape contrasts the paper's balanced 2-D blocks
// (Equation 2) against 1-D row-shaped blocks: 1-D blocks favour row reads
// but collapse on columns, which is why the STL balances dimensions.
func BenchmarkAblationBlockShape(b *testing.B) {
	var sqRow, sqCol, rowRow, rowCol sim.Time
	for i := 0; i < b.N; i++ {
		sqRow, sqCol, _ = ablationSTL(b, nil)
		rowRow, rowCol, _ = ablationSTL(b, func(c *stl.Config) { c.BBOrder = 1 })
	}
	b.ReportMetric(sqCol.Seconds()*1e3, "2D-col-ms")
	b.ReportMetric(rowCol.Seconds()*1e3, "1D-col-ms")
	b.ReportMetric(sqRow.Seconds()*1e3, "2D-row-ms")
	b.ReportMetric(rowRow.Seconds()*1e3, "1D-row-ms")
	if rowCol < 2*sqCol {
		b.Fatalf("expected 1-D blocks to collapse on column reads: 1D=%v 2D=%v", rowCol, sqCol)
	}
}

// BenchmarkAblationAllocationPolicy contrasts the §4.2 least-used
// channel/bank policy against naive one-die-per-block placement.
func BenchmarkAblationAllocationPolicy(b *testing.B) {
	var pol, naive sim.Time
	for i := 0; i < b.N; i++ {
		_, _, pol = ablationSTL(b, nil)
		_, _, naive = ablationSTL(b, func(c *stl.Config) { c.NaiveAllocation = true })
	}
	b.ReportMetric(pol.Seconds()*1e3, "policy-tile-ms")
	b.ReportMetric(naive.Seconds()*1e3, "naive-tile-ms")
	if naive <= pol {
		b.Fatalf("naive placement (%v) should be slower than the policy (%v)", naive, pol)
	}
}

// BenchmarkAblationAssemblyLocation isolates design decision 3 — host-side
// versus in-device object assembly — which is exactly software vs hardware
// NDS on a column fetch.
func BenchmarkAblationAssemblyLocation(b *testing.B) {
	cfg := system.PrototypeConfig(64<<20, true)
	measure := func(kind system.Kind) sim.Time {
		s, err := system.New(kind, cfg)
		if err != nil {
			b.Fatal(err)
		}
		sp, err := s.STL.CreateSpace(8, []int64{2048, 2048})
		if err != nil {
			b.Fatal(err)
		}
		v, err := stl.NewView(sp, []int64{2048, 2048})
		if err != nil {
			b.Fatal(err)
		}
		for i := int64(0); i < 8; i++ {
			if _, _, err := s.STL.WritePartition(0, v, []int64{i, 0}, []int64{256, 2048}, nil); err != nil {
				b.Fatal(err)
			}
		}
		s.ResetTimelines()
		_, st, err := s.NDSRead(0, v, []int64{0, 1}, []int64{2048, 512})
		if err != nil {
			b.Fatal(err)
		}
		return st.Done
	}
	var sw, hw sim.Time
	for i := 0; i < b.N; i++ {
		sw = measure(system.SoftwareNDS)
		hw = measure(system.HardwareNDS)
	}
	b.ReportMetric(sw.Micros(), "host-assembly-us")
	b.ReportMetric(hw.Micros(), "device-assembly-us")
}

// BenchmarkSTLTranslate measures the wall-clock cost of the space
// translator itself (Equation 5): decomposing an 8K x 8K partition of a
// 32K x 32K space into building-block extents.
func BenchmarkSTLTranslate(b *testing.B) {
	cfg := system.PrototypeConfig(1<<30, true)
	dev, err := nvm.NewDevice(cfg.Geometry, cfg.Timing, true)
	if err != nil {
		b.Fatal(err)
	}
	st, err := stl.New(dev, cfg.STL)
	if err != nil {
		b.Fatal(err)
	}
	sp, err := st.CreateSpace(8, []int64{32768, 32768})
	if err != nil {
		b.Fatal(err)
	}
	v, err := stl.NewView(sp, []int64{32768, 32768})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exts, err := v.Extents([]int64{1, 1}, []int64{8192, 8192})
		if err != nil {
			b.Fatal(err)
		}
		if len(exts) == 0 {
			b.Fatal("no extents")
		}
	}
}
