package nds

import (
	"bytes"
	"math/rand"
	"testing"

	"nds/internal/proto"
)

// TestExecLifecycle drives the §5.3.1 command set end to end over the wire
// format: open_space(create) -> nds_write -> open a reshaped view ->
// nds_read -> close_space -> delete_space.
func TestExecLifecycle(t *testing.T) {
	d, err := Open(Options{Mode: ModeHardware, CapacityHint: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}

	// open_space with the create flag.
	spacePage, err := proto.SpacePayload{ElemSize: 4, Dims: []int64{128, 128}}.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	_, cpl, _, err := d.Exec(proto.NewOpenSpace(0, 0x1000, true).Marshal(), spacePage, nil)
	if err != nil || cpl.Status != proto.StatusOK {
		t.Fatalf("open_space(create): %v / %v", cpl.Status, err)
	}
	spaceID := uint32(cpl.Result0)
	viewID := uint32(cpl.Result1)

	// nds_write of the whole space.
	coordPage, err := proto.CoordPayload{Coord: []int64{0, 0}, Sub: []int64{128, 128}}.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 128*128*4)
	rand.New(rand.NewSource(1)).Read(data)
	_, cpl, st, err := d.Exec(proto.NewWrite(viewID, 0x2000).Marshal(), coordPage, data)
	if err != nil || cpl.Status != proto.StatusOK {
		t.Fatalf("nds_write: %v / %v", cpl.Status, err)
	}
	if st.Commands != 1 || st.Bytes != int64(len(data)) {
		t.Fatalf("write stats = %+v", st)
	}

	// open_space (no create flag): a flat view of the same space.
	flatPage, err := proto.SpacePayload{ElemSize: 4, Dims: []int64{128 * 128}}.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	_, cpl, _, err = d.Exec(proto.NewOpenSpace(spaceID, 0x1000, false).Marshal(), flatPage, nil)
	if err != nil || cpl.Status != proto.StatusOK {
		t.Fatalf("open_space(view): %v / %v", cpl.Status, err)
	}
	flatID := uint32(cpl.Result1)
	if flatID == viewID {
		t.Fatal("dynamic view IDs must be distinct")
	}

	// nds_read through the flat view returns the same linear bytes.
	readPage, err := proto.CoordPayload{Coord: []int64{0}, Sub: []int64{128 * 128}}.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, cpl, _, err := d.Exec(proto.NewRead(flatID, 0x3000).Marshal(), readPage, nil)
	if err != nil || cpl.Status != proto.StatusOK {
		t.Fatalf("nds_read: %v / %v", cpl.Status, err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("wire-format read-back mismatch")
	}

	// close_space retires the view; further reads fail with UnknownView.
	_, cpl, _, _ = d.Exec(proto.NewCloseSpace(flatID).Marshal(), nil, nil)
	if cpl.Status != proto.StatusOK {
		t.Fatalf("close_space: %v", cpl.Status)
	}
	_, cpl, _, _ = d.Exec(proto.NewRead(flatID, 0).Marshal(), readPage, nil)
	if cpl.Status != proto.StatusUnknownView {
		t.Fatalf("read of closed view: %v, want unknown view", cpl.Status)
	}

	// delete_space; a second delete reports unknown space.
	_, cpl, _, _ = d.Exec(proto.NewDeleteSpace(spaceID).Marshal(), nil, nil)
	if cpl.Status != proto.StatusOK {
		t.Fatalf("delete_space: %v", cpl.Status)
	}
	_, cpl, _, _ = d.Exec(proto.NewDeleteSpace(spaceID).Marshal(), nil, nil)
	if cpl.Status != proto.StatusUnknownSpace {
		t.Fatalf("double delete: %v, want unknown space", cpl.Status)
	}
}

func TestExecStatuses(t *testing.T) {
	d, err := Open(Options{Mode: ModeSoftware, CapacityHint: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	// Malformed entry: conventional NVMe command.
	var raw [proto.CommandSize]byte
	if _, cpl, _, err := d.Exec(raw, nil, nil); err == nil || cpl.Status != proto.StatusInvalidField {
		t.Fatal("conventional entry should error with invalid field")
	}
	// Unknown view.
	page, _ := proto.CoordPayload{Coord: []int64{0}, Sub: []int64{1}}.Marshal()
	if _, cpl, _, _ := d.Exec(proto.NewRead(77, 0).Marshal(), page, nil); cpl.Status != proto.StatusUnknownView {
		t.Fatalf("unknown view: %v", cpl.Status)
	}
	// open_space view of an unknown space.
	sp, _ := proto.SpacePayload{ElemSize: 4, Dims: []int64{16}}.Marshal()
	if _, cpl, _, _ := d.Exec(proto.NewOpenSpace(55, 0, false).Marshal(), sp, nil); cpl.Status == proto.StatusOK {
		t.Fatal("view of unknown space accepted")
	}
	// Bad payload page.
	if _, cpl, _, _ := d.Exec(proto.NewOpenSpace(0, 0, true).Marshal(), []byte{1, 2}, nil); cpl.Status != proto.StatusInvalidField {
		t.Fatalf("truncated space page: %v", cpl.Status)
	}
	// Volume-mismatched view through the wire path.
	_, cpl, _, _ := d.Exec(proto.NewOpenSpace(0, 0, true).Marshal(), sp, nil)
	if cpl.Status != proto.StatusOK {
		t.Fatal("create failed")
	}
	id := uint32(cpl.Result0)
	bad, _ := proto.SpacePayload{ElemSize: 4, Dims: []int64{17}}.Marshal()
	if _, cpl, _, _ := d.Exec(proto.NewOpenSpace(id, 0, false).Marshal(), bad, nil); cpl.Status != proto.StatusInvalidField {
		t.Fatalf("volume mismatch over the wire: %v", cpl.Status)
	}
}
