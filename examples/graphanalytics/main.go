// Graph analytics: BFS and PageRank over an adjacency matrix stored in NDS.
// BFS streams row batches (out-neighbour lists); PageRank additionally pulls
// column bands (in-edges) — the access pattern that collapses on a row-store
// baseline but stays fast through NDS building blocks. Both results are
// verified against direct in-memory computation.
//
// The last section runs the device-resident forms: the same kernels with
// their selection phases (frontier expansion, delta filtering) executed at
// the STL as in-storage scans, so on hardware NDS only the matches cross
// the interconnect instead of every adjacency row.
package main

import (
	"fmt"
	"log"
	"math"

	"nds"
	"nds/internal/datagen"
	"nds/internal/system"
	"nds/internal/tensor"
	"nds/internal/workloads"
)

const (
	vertices = 256
	edges    = 4096
	batch    = 32
)

func main() {
	adj, err := datagen.Graph(vertices, edges, 77)
	if err != nil {
		log.Fatal(err)
	}

	dev, err := nds.Open(nds.Options{Mode: nds.ModeHardware, CapacityHint: 8 << 20})
	if err != nil {
		log.Fatal(err)
	}
	id, err := dev.CreateSpace(4, []int64{vertices, vertices})
	if err != nil {
		log.Fatal(err)
	}
	sp, err := dev.OpenSpace(id, []int64{vertices, vertices})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sp.Write([]int64{0, 0}, []int64{vertices, vertices}, adj.Bytes()); err != nil {
		log.Fatal(err)
	}
	loadTime := dev.Now()

	// --- BFS over row batches fetched through NDS. ---
	streamed := tensor.NewMatrix(vertices, vertices)
	for i := int64(0); i*batch < vertices; i++ {
		raw, _, err := sp.Read([]int64{i, 0}, []int64{batch, vertices})
		if err != nil {
			log.Fatal(err)
		}
		m, err := tensor.MatrixFromBytes(batch, vertices, raw)
		if err != nil {
			log.Fatal(err)
		}
		streamed.SetSub(int(i)*batch, 0, m)
	}
	gotLv, err := workloads.BFS(streamed, 0)
	if err != nil {
		log.Fatal(err)
	}
	wantLv, err := workloads.BFS(adj, 0)
	if err != nil {
		log.Fatal(err)
	}
	maxLv, mism := 0, 0
	for v := range gotLv {
		if gotLv[v] != wantLv[v] {
			mism++
		}
		if gotLv[v] > maxLv {
			maxLv = gotLv[v]
		}
	}
	fmt.Printf("BFS over %d vertices / %d edges: depth %d, %d mismatches vs reference\n",
		vertices, edges, maxLv, mism)

	// --- PageRank: pull one column band through NDS per rank step to show
	// the column access path; full ranks verified against the reference. ---
	colRaw, st, err := sp.Read([]int64{0, 1}, []int64{vertices, batch})
	if err != nil {
		log.Fatal(err)
	}
	colBand, err := tensor.MatrixFromBytes(vertices, batch, colRaw)
	if err != nil {
		log.Fatal(err)
	}
	for u := 0; u < vertices; u++ {
		for j := 0; j < batch; j++ {
			if colBand.At(u, j) != adj.At(u, batch+j) {
				log.Fatalf("column band mismatch at (%d,%d)", u, j)
			}
		}
	}
	fmt.Printf("column band fetch (in-edges of vertices %d..%d): %d bytes, %v, one command\n",
		batch, 2*batch-1, st.Bytes, st.Elapsed)

	rank, err := workloads.PageRank(streamed, 0.85, 30)
	if err != nil {
		log.Fatal(err)
	}
	wantRank, err := workloads.PageRank(adj, 0.85, 30)
	if err != nil {
		log.Fatal(err)
	}
	var maxDiff float64
	best := 0
	for v := range rank {
		if d := math.Abs(float64(rank[v] - wantRank[v])); d > maxDiff {
			maxDiff = d
		}
		if rank[v] > rank[best] {
			best = v
		}
	}
	fmt.Printf("PageRank: top vertex %d (rank %.5f), max deviation vs reference %.2g\n",
		best, rank[best], maxDiff)
	fmt.Printf("simulated time: load %v, analytics %v\n", loadTime, dev.Now()-loadTime)

	// --- Device-resident kernels: selection at the STL, both variants on a
	// hardware-NDS platform, link traffic compared. Results must match the
	// host kernels exactly. ---
	newSys := func() *system.System {
		sys, err := system.New(system.HardwareNDS, system.PrototypeConfig(vertices*vertices*4, false))
		if err != nil {
			log.Fatal(err)
		}
		return sys
	}
	devLv, bfsPush, err := workloads.BFSDevice(newSys(), adj, 0, true)
	if err != nil {
		log.Fatal(err)
	}
	_, bfsRead, err := workloads.BFSDevice(newSys(), adj, 0, false)
	if err != nil {
		log.Fatal(err)
	}
	for v := range wantLv {
		if devLv[v] != wantLv[v] {
			log.Fatalf("device BFS level mismatch at vertex %d", v)
		}
	}
	fmt.Printf("device BFS (frontier scan at the STL): %d link bytes vs %d reading every row (%.0fx less)\n",
		bfsPush.LinkBytes, bfsRead.LinkBytes, float64(bfsRead.LinkBytes)/float64(bfsPush.LinkBytes))

	const (
		prIters = 10
		prTol   = float32(1e-5)
	)
	devRank, prPush, err := workloads.PageRankDevice(newSys(), adj, 0.85, prIters, prTol, true)
	if err != nil {
		log.Fatal(err)
	}
	_, prRead, err := workloads.PageRankDevice(newSys(), adj, 0.85, prIters, prTol, false)
	if err != nil {
		log.Fatal(err)
	}
	wantDelta, err := workloads.PageRankDelta(adj, 0.85, prIters, prTol)
	if err != nil {
		log.Fatal(err)
	}
	for v := range wantDelta {
		if devRank[v] != wantDelta[v] {
			log.Fatalf("device PageRank mismatch at vertex %d", v)
		}
	}
	fmt.Printf("device PageRank (delta filter at the STL): %d link bytes vs %d reading every row (%.0fx less)\n",
		prPush.LinkBytes, prRead.LinkBytes, float64(prRead.LinkBytes)/float64(prPush.LinkBytes))
}
