// Features: the optional device capabilities of §5.3.3/§5.3.4/§8/§5.1 in one
// walk-through — inline encryption, building-block compression, the
// page-zero optimization for sparse content, and space restructuring.
package main

import (
	"bytes"
	"fmt"
	"log"

	"nds"
)

const n = 512

func sparseImage() []byte {
	// A 512x512 float64 image with one dense 128x128 corner.
	data := make([]byte, n*n*8)
	for r := 0; r < 128; r++ {
		for c := 0; c < 128*8; c++ {
			data[(r*n)*8+c] = byte(r + c)
		}
	}
	return data
}

func store(opts nds.Options, data []byte) (writeStats nds.Stats, dev *nds.Device, id nds.SpaceID) {
	dev, err := nds.Open(opts)
	if err != nil {
		log.Fatal(err)
	}
	id, err = dev.CreateSpace(8, []int64{n, n})
	if err != nil {
		log.Fatal(err)
	}
	sp, err := dev.OpenSpace(id, []int64{n, n})
	if err != nil {
		log.Fatal(err)
	}
	writeStats, err = sp.Write([]int64{0, 0}, []int64{n, n}, data)
	if err != nil {
		log.Fatal(err)
	}
	got, _, err := sp.Read([]int64{0, 0}, []int64{n, n})
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		log.Fatal("round-trip mismatch")
	}
	return writeStats, dev, id
}

func main() {
	data := sparseImage()
	base := nds.Options{Mode: nds.ModeHardware, CapacityHint: 16 << 20}

	plain, _, _ := store(base, data)
	fmt.Printf("plain:       %5d pages programmed\n", plain.Pages)

	enc := base
	enc.EncryptionKey = []byte("tenant-42")
	encSt, _, _ := store(enc, data)
	fmt.Printf("encrypted:   %5d pages programmed (same cost: inline engine, §5.3.3)\n", encSt.Pages)

	comp := base
	comp.Compress = true
	compSt, _, _ := store(comp, data)
	fmt.Printf("compressed:  %5d pages programmed (block-granular deflate, §5.3.4)\n", compSt.Pages)

	sparse := base
	sparse.ZeroPageElision = true
	spSt, dev, id := store(sparse, data)
	fmt.Printf("zero-elided: %5d pages programmed (page-zero optimization, §8)\n", spSt.Pages)

	// §5.1: restructure the space, doubling its rows; old data survives.
	if err := dev.ResizeSpace(id, 2*n); err != nil {
		log.Fatal(err)
	}
	grown, err := dev.OpenSpace(id, []int64{2 * n, n})
	if err != nil {
		log.Fatal(err)
	}
	got, _, err := grown.Read([]int64{0, 0}, []int64{n, n})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resized to %dx%d; original data intact: %v\n", 2*n, n, bytes.Equal(got, data))
}
