// Pushdown: run the same selective query three ways — read-then-filter,
// software-NDS pushdown, and hardware-NDS pushdown — and compare what each
// moves across the interconnect and how long it takes in simulated time.
//
// This is the paper's [P2] problem as a experiment you can run: the hardware
// STL executes the scan next to the building-block cache on a slower
// controller core, but only the matches cross the link; the software STL
// computes at host speed but ships every raw page first.
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"nds"
)

func main() {
	const (
		n    = 512 // 512x512 space of 8-byte elements = 2 MiB
		tile = 256 // scanned partition: 256x256 = 512 KiB
	)

	run := func(mode nds.Mode) {
		dev, err := nds.Open(nds.Options{Mode: mode, CapacityHint: 32 << 20})
		if err != nil {
			log.Fatal(err)
		}
		defer dev.Close()
		id, err := dev.CreateSpace(8, []int64{n, n})
		if err != nil {
			log.Fatal(err)
		}
		v, err := dev.OpenSpace(id, []int64{n, n})
		if err != nil {
			log.Fatal(err)
		}
		defer v.Close()

		// Sensor-style payload: values 0..999, so [0, m) selects m/10 percent.
		data := make([]byte, n*n*8)
		for i := 0; i < n*n; i++ {
			binary.LittleEndian.PutUint64(data[8*i:], uint64(i%1000))
		}
		if _, err := v.Write([]int64{0, 0}, []int64{n, n}, data); err != nil {
			log.Fatal(err)
		}

		// Baseline: move the whole tile and filter on the host.
		raw, rstats, err := v.Read([]int64{0, 0}, []int64{tile, tile})
		if err != nil {
			log.Fatal(err)
		}
		hostMatches := 0
		for i := 0; i < len(raw)/8; i++ {
			if binary.LittleEndian.Uint64(raw[8*i:]) < 10 { // 1% selectivity
				hostMatches++
			}
		}

		// Pushdown: the device scans and returns only the matches.
		res, sstats, err := v.Scan([]int64{0, 0}, []int64{tile, tile},
			nds.ScanQuery{Pred: nds.Predicate{Lo: 0, Hi: 9}})
		if err != nil {
			log.Fatal(err)
		}
		if int(res.Total) != hostMatches {
			log.Fatalf("pushdown found %d matches, host filter found %d", res.Total, hostMatches)
		}

		fmt.Printf("%-8s NDS, 1%% selectivity over %d KiB:\n", mode, tile*tile*8/1024)
		fmt.Printf("  read+filter: %8d link bytes, %8v simulated\n", rstats.RawBytes, rstats.Elapsed)
		fmt.Printf("  pushdown:    %8d link bytes, %8v simulated  (%d matches, %.0fx fewer link bytes)\n",
			sstats.RawBytes, sstats.Elapsed, res.Total,
			float64(rstats.RawBytes)/float64(sstats.RawBytes))

		// Reductions move even less: one scalar, whatever the partition size.
		sum, rdStats, err := v.Reduce([]int64{0, 0}, []int64{tile, tile},
			nds.ReduceQuery{Kind: nds.ReduceSum})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  reduce sum:  %8d link bytes, %8v simulated  (sum=%d over %d elements)\n\n",
			rdStats.RawBytes, rdStats.Elapsed, sum.Value, sum.Count)
	}

	run(nds.ModeHardware)
	run(nds.ModeSoftware)
}
