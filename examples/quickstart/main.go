// Quickstart: create a multi-dimensional NDS space, write a matrix through a
// producer view, and read it back through differently-shaped consumer views —
// the core abstraction of the paper, in a dozen lines of API calls.
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"nds"
)

func main() {
	// A simulated hardware-assisted NDS drive (32 channels, 4 KB pages).
	dev, err := nds.Open(nds.Options{Mode: nds.ModeHardware, CapacityHint: 32 << 20})
	if err != nil {
		log.Fatal(err)
	}

	// The producer declares a 1024x1024 space of 8-byte elements. The STL
	// picks the building-block layout for the device geometry.
	const n = 1024
	id, err := dev.CreateSpace(8, []int64{n, n})
	if err != nil {
		log.Fatal(err)
	}
	info, err := dev.Inspect(id)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("space %d: dims=%v building blocks=%v grid=%v (%d pages/block)\n",
		info.ID, info.Dims, info.BlockDims, info.GridDims, info.PagesPerBB)

	// Producer view: write the matrix in four row bands, elements numbered
	// by linear index so we can check views below.
	prod, err := dev.OpenSpace(id, []int64{n, n})
	if err != nil {
		log.Fatal(err)
	}
	band := make([]byte, n/4*n*8)
	for i := int64(0); i < 4; i++ {
		for e := int64(0); e < n/4*n; e++ {
			binary.LittleEndian.PutUint64(band[e*8:], uint64(i*(n/4)*n+e))
		}
		st, err := prod.Write([]int64{i, 0}, []int64{n / 4, n}, band)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote band %d: %d bytes in %v (one command)\n", i, st.Bytes, st.Elapsed)
	}

	// Consumer 1: a column through the same 2-D view — one command, no
	// host-side restructuring.
	col, st, err := prod.Read([]int64{0, 777}, []int64{n, 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("column fetch: %d bytes in %v via %d building-block extents\n",
		st.Bytes, st.Elapsed, st.Extents)
	for r := 0; r < 3; r++ {
		v := binary.LittleEndian.Uint64(col[r*8:])
		fmt.Printf("  column[%d] = %d (expect %d)\n", r, v, r*n+777)
	}

	// Consumer 2: the same dataset as a flat vector — a different
	// dimensionality over identical storage.
	flat, err := dev.OpenSpace(id, []int64{n * n})
	if err != nil {
		log.Fatal(err)
	}
	seg, _, err := flat.Read([]int64{5}, []int64{1000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flat view element 0 = %d (expect %d)\n",
		binary.LittleEndian.Uint64(seg), 5000)

	// Consumer 3: a 512x2048 reshape, reading one tile.
	wide, err := dev.OpenSpace(id, []int64{512, 2048})
	if err != nil {
		log.Fatal(err)
	}
	if _, st, err = wide.Read([]int64{1, 1}, []int64{256, 1024}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reshaped tile fetch: %d bytes in %v\n", st.Bytes, st.Elapsed)
	fmt.Printf("total simulated device time: %v\n", dev.Now())
}
