// Tensor contraction: the TTV/TC pair of Table 1 at laptop scale. A 3-D
// tensor is stored in a space with 3-D building blocks (Equations 3-4);
// mode-2 bricks — hopelessly strided in a linear layout — are fetched with
// single NDS commands and contracted against a vector, then a mode-1
// contraction against a matrix runs brick by brick. Both results are
// verified against whole-tensor references.
package main

import (
	"fmt"
	"log"

	"nds"
	"nds/internal/datagen"
	"nds/internal/tensor"
)

const (
	d     = 128
	brick = 32
)

func main() {
	ts := datagen.Tensor(d, d, d, 55)

	dev, err := nds.Open(nds.Options{Mode: nds.ModeHardware, CapacityHint: 32 << 20, BlockOrder: 3})
	if err != nil {
		log.Fatal(err)
	}
	id, err := dev.CreateSpace(4, []int64{d, d, d})
	if err != nil {
		log.Fatal(err)
	}
	info, err := dev.Inspect(id)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("3-D space %v with 3-D building blocks %v (grid %v)\n",
		info.Dims, info.BlockDims, info.GridDims)

	sp, err := dev.OpenSpace(id, []int64{d, d, d})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sp.Write([]int64{0, 0, 0}, []int64{d, d, d}, ts.Bytes()); err != nil {
		log.Fatal(err)
	}

	// --- TTV along mode 2, brick by brick. ---
	v := make([]float32, d)
	for i := range v {
		v[i] = float32(i%7) - 3
	}
	acc := tensor.NewMatrix(d, d)
	var bytesFetched int64
	for kb := int64(0); kb*brick < d; kb++ {
		raw, st, err := sp.Read([]int64{0, 0, kb}, []int64{d, d, brick})
		if err != nil {
			log.Fatal(err)
		}
		sub, err := tensor.Tensor3FromBytes(d, d, brick, raw)
		if err != nil {
			log.Fatal(err)
		}
		part, err := tensor.TTV(sub, v[kb*brick:(kb+1)*brick], 2)
		if err != nil {
			log.Fatal(err)
		}
		for i := range acc.Data {
			acc.Data[i] += part.Data[i]
		}
		bytesFetched += st.Bytes
	}
	want, err := tensor.TTV(ts, v, 2)
	if err != nil {
		log.Fatal(err)
	}
	status := "OK"
	if !acc.Equal(want, 1e-2) {
		status = "MISMATCH"
	}
	fmt.Printf("TTV mode-2 over %d bricks (%d bytes fetched): %s\n", d/brick, bytesFetched, status)

	// --- TC: mode-1 contraction against a small matrix, whole tensor. ---
	b := datagen.Matrix(d, 16, 56)
	raw, st, err := sp.Read([]int64{0, 0, 0}, []int64{d, d, d})
	if err != nil {
		log.Fatal(err)
	}
	full, err := tensor.Tensor3FromBytes(d, d, d, raw)
	if err != nil {
		log.Fatal(err)
	}
	got, err := tensor.Contract(full, b)
	if err != nil {
		log.Fatal(err)
	}
	ref, err := tensor.Contract(ts, b)
	if err != nil {
		log.Fatal(err)
	}
	status = "OK"
	if !got.Equal(ref, 1e-2) {
		status = "MISMATCH"
	}
	fmt.Printf("TC mode-1 contraction (full fetch: %d bytes in %v): %s\n", st.Bytes, st.Elapsed, status)
	fmt.Printf("total simulated device time: %v\n", dev.Now())
}
