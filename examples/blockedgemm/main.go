// Blocked GEMM: the paper's flagship workload. Two input matrices live in
// NDS spaces; the consumer fetches square tiles by coordinate (one command
// per tile, no marshalling code) and multiplies them. The example runs the
// same computation on the software-only and hardware-assisted devices,
// verifies the product against a direct multiplication, and reports the
// simulated I/O time of each implementation.
package main

import (
	"fmt"
	"log"

	"nds"
	"nds/internal/datagen"
	"nds/internal/tensor"
)

const (
	n    = 256
	tile = 64
)

func run(mode nds.Mode, a, b *tensor.Matrix) (*tensor.Matrix, string) {
	dev, err := nds.Open(nds.Options{Mode: mode, CapacityHint: 16 << 20})
	if err != nil {
		log.Fatal(err)
	}
	store := func(m *tensor.Matrix) *nds.Space {
		id, err := dev.CreateSpace(4, []int64{n, n})
		if err != nil {
			log.Fatal(err)
		}
		sp, err := dev.OpenSpace(id, []int64{n, n})
		if err != nil {
			log.Fatal(err)
		}
		if _, err := sp.Write([]int64{0, 0}, []int64{n, n}, m.Bytes()); err != nil {
			log.Fatal(err)
		}
		return sp
	}
	sa, sb := store(a), store(b)
	writeTime := dev.Now()

	fetch := func(sp *nds.Space, i, j int64) *tensor.Matrix {
		raw, _, err := sp.Read([]int64{i, j}, []int64{tile, tile})
		if err != nil {
			log.Fatal(err)
		}
		m, err := tensor.MatrixFromBytes(tile, tile, raw)
		if err != nil {
			log.Fatal(err)
		}
		return m
	}

	out := tensor.NewMatrix(n, n)
	tiles := int64(n / tile)
	var commands int
	for i := int64(0); i < tiles; i++ {
		for j := int64(0); j < tiles; j++ {
			acc := tensor.NewMatrix(tile, tile)
			for k := int64(0); k < tiles; k++ {
				if err := tensor.AccumulateMul(acc, fetch(sa, i, k), fetch(sb, k, j)); err != nil {
					log.Fatal(err)
				}
				commands += 2
			}
			out.SetSub(int(i)*tile, int(j)*tile, acc)
		}
	}
	report := fmt.Sprintf("%-8s: %4d tile commands, write %v, read %v simulated",
		mode, commands, writeTime, dev.Now()-writeTime)
	return out, report
}

func main() {
	a := datagen.Matrix(n, n, 101)
	b := datagen.Matrix(n, n, 102)
	want, err := tensor.MatMul(a, b)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("blocked %dx%d GEMM with %dx%d tiles through NDS\n", n, n, tile, tile)
	for _, mode := range []nds.Mode{nds.ModeSoftware, nds.ModeHardware} {
		got, report := run(mode, a, b)
		ok := "OK"
		if !got.Equal(want, 1e-2) {
			ok = "MISMATCH"
		}
		fmt.Printf("%s  [%s]\n", report, ok)
	}
}
