package nds

import (
	"errors"
	"fmt"
	"testing"

	"nds/internal/proto"
	"nds/internal/stl"
)

// execFixture builds a device with one created space (32x32 float32) and one
// open wire view of it.
func execFixture(t *testing.T) (*Device, uint32, uint32) {
	t.Helper()
	d, err := Open(Options{Mode: ModeHardware, CapacityHint: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	page, err := proto.SpacePayload{ElemSize: 4, Dims: []int64{32, 32}}.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	_, cpl, _, err := d.Exec(proto.NewOpenSpace(0, 0, true).Marshal(), page, nil)
	if err != nil || cpl.Status != proto.StatusOK {
		t.Fatalf("fixture open_space(create): %v / %v", cpl.Status, err)
	}
	return d, uint32(cpl.Result0), uint32(cpl.Result1)
}

// TestExecErrorStatuses walks every opcode's error paths over the wire
// format, asserting the exact completion status of each.
func TestExecErrorStatuses(t *testing.T) {
	coordPage := func(coord, sub []int64) []byte {
		p, err := proto.CoordPayload{Coord: coord, Sub: sub}.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := []struct {
		name string
		run  func(t *testing.T, d *Device, space, view uint32) proto.Status
		want proto.Status
	}{
		{"read unknown view", func(t *testing.T, d *Device, _, _ uint32) proto.Status {
			_, cpl, _, _ := d.Exec(proto.NewRead(777, 0).Marshal(), coordPage([]int64{0, 0}, []int64{1, 1}), nil)
			return cpl.Status
		}, proto.StatusUnknownView},

		{"write unknown view", func(t *testing.T, d *Device, _, _ uint32) proto.Status {
			_, cpl, _, _ := d.Exec(proto.NewWrite(777, 0).Marshal(), coordPage([]int64{0, 0}, []int64{1, 1}), make([]byte, 4))
			return cpl.Status
		}, proto.StatusUnknownView},

		{"close unknown view", func(t *testing.T, d *Device, _, _ uint32) proto.Status {
			_, cpl, _, _ := d.Exec(proto.NewCloseSpace(777).Marshal(), nil, nil)
			return cpl.Status
		}, proto.StatusUnknownView},

		{"close twice", func(t *testing.T, d *Device, _, view uint32) proto.Status {
			_, cpl, _, _ := d.Exec(proto.NewCloseSpace(view).Marshal(), nil, nil)
			if cpl.Status != proto.StatusOK {
				t.Fatalf("first close: %v", cpl.Status)
			}
			_, cpl, _, _ = d.Exec(proto.NewCloseSpace(view).Marshal(), nil, nil)
			return cpl.Status
		}, proto.StatusUnknownView},

		{"delete unknown space", func(t *testing.T, d *Device, _, _ uint32) proto.Status {
			_, cpl, _, _ := d.Exec(proto.NewDeleteSpace(999).Marshal(), nil, nil)
			return cpl.Status
		}, proto.StatusUnknownSpace},

		{"open view of unknown space", func(t *testing.T, d *Device, _, _ uint32) proto.Status {
			page, _ := proto.SpacePayload{ElemSize: 4, Dims: []int64{32, 32}}.Marshal()
			_, cpl, _, _ := d.Exec(proto.NewOpenSpace(999, 0, false).Marshal(), page, nil)
			return cpl.Status
		}, proto.StatusUnknownSpace},

		{"truncated space payload", func(t *testing.T, d *Device, _, _ uint32) proto.Status {
			_, cpl, _, _ := d.Exec(proto.NewOpenSpace(0, 0, true).Marshal(), []byte{1, 2, 3}, nil)
			return cpl.Status
		}, proto.StatusInvalidField},

		{"truncated coord payload", func(t *testing.T, d *Device, _, view uint32) proto.Status {
			_, cpl, _, _ := d.Exec(proto.NewRead(view, 0).Marshal(), []byte{9}, nil)
			return cpl.Status
		}, proto.StatusInvalidField},

		{"volume-mismatched view", func(t *testing.T, d *Device, space, _ uint32) proto.Status {
			page, _ := proto.SpacePayload{ElemSize: 4, Dims: []int64{33}}.Marshal()
			_, cpl, _, _ := d.Exec(proto.NewOpenSpace(space, 0, false).Marshal(), page, nil)
			return cpl.Status
		}, proto.StatusInvalidField},

		{"out-of-bounds coordinate", func(t *testing.T, d *Device, _, view uint32) proto.Status {
			_, cpl, _, _ := d.Exec(proto.NewRead(view, 0).Marshal(), coordPage([]int64{99, 0}, []int64{8, 8}), nil)
			return cpl.Status
		}, proto.StatusInvalidField},

		{"wrong-size write payload", func(t *testing.T, d *Device, _, view uint32) proto.Status {
			_, cpl, _, _ := d.Exec(proto.NewWrite(view, 0).Marshal(), coordPage([]int64{0, 0}, []int64{8, 8}), make([]byte, 5))
			return cpl.Status
		}, proto.StatusInvalidField},

		{"unknown opcode", func(t *testing.T, d *Device, _, _ uint32) proto.Status {
			raw := proto.NewRead(1, 0).Marshal()
			raw[0] = 0x55 // stomp the opcode byte, leaving the extended bit set
			_, cpl, _, _ := d.Exec(raw, nil, nil)
			return cpl.Status
		}, proto.StatusUnsupportedOp},

		{"open with mismatched element size", func(t *testing.T, d *Device, space, _ uint32) proto.Status {
			page, _ := proto.SpacePayload{ElemSize: 8, Dims: []int64{32, 32}}.Marshal()
			_, cpl, _, _ := d.Exec(proto.NewOpenSpace(space, 0, false).Marshal(), page, nil)
			return cpl.Status
		}, proto.StatusInvalidField},

		{"open with matching element size", func(t *testing.T, d *Device, space, _ uint32) proto.Status {
			page, _ := proto.SpacePayload{ElemSize: 4, Dims: []int64{32, 32}}.Marshal()
			_, cpl, _, _ := d.Exec(proto.NewOpenSpace(space, 0, false).Marshal(), page, nil)
			return cpl.Status
		}, proto.StatusOK},

		{"open with unspecified element size", func(t *testing.T, d *Device, space, _ uint32) proto.Status {
			page, _ := proto.SpacePayload{ElemSize: 0, Dims: []int64{32, 32}}.Marshal()
			_, cpl, _, _ := d.Exec(proto.NewOpenSpace(space, 0, false).Marshal(), page, nil)
			return cpl.Status
		}, proto.StatusOK},

		{"create with unspecified element size", func(t *testing.T, d *Device, _, _ uint32) proto.Status {
			page, _ := proto.SpacePayload{ElemSize: 0, Dims: []int64{32, 32}}.Marshal()
			_, cpl, _, _ := d.Exec(proto.NewOpenSpace(0, 0, true).Marshal(), page, nil)
			return cpl.Status
		}, proto.StatusInvalidField},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			d, space, view := execFixture(t)
			if got := c.run(t, d, space, view); got != c.want {
				t.Fatalf("status = %v, want %v", got, c.want)
			}
		})
	}
}

// TestCompletionForSentinels pins the sentinel-to-status mapping, including
// wrapped errors several levels deep.
func TestCompletionForSentinels(t *testing.T) {
	cases := []struct {
		err  error
		want proto.Status
	}{
		{fmt.Errorf("stl: delete of space 9: %w", stl.ErrUnknownSpace), proto.StatusUnknownSpace},
		{fmt.Errorf("outer: %w", fmt.Errorf("stl: no die can supply a free unit: %w", stl.ErrCapacity)), proto.StatusCapacity},
		{fmt.Errorf("stl: coordinate 0=99 out of view dimension 32: %w", stl.ErrBounds), proto.StatusInvalidField},
		{fmt.Errorf("stl: view volume 33 does not match space volume 1024: %w", stl.ErrInvalid), proto.StatusInvalidField},
		{fmt.Errorf("nds: read on %w", ErrClosedView), proto.StatusUnknownView},
		{errors.New("something with the words unknown space and capacity in it"), proto.StatusInternal},
	}
	for _, c := range cases {
		if got := completionFor(c.err); got.Status != c.want {
			t.Errorf("completionFor(%v) = %v, want %v", c.err, got.Status, c.want)
		}
	}
}

// TestExecCreateOpenRollback: when open_space(create) creates the space but
// the subsequent view open fails, the just-created space must be deleted —
// a failed command must not leak an unreachable space.
func TestExecCreateOpenRollback(t *testing.T) {
	d, err := Open(Options{Mode: ModeHardware, CapacityHint: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	var created SpaceID
	failOpen := func(id SpaceID, dims []int64) (*Space, error) {
		created = id
		return nil, fmt.Errorf("injected open failure: %w", stl.ErrInvalid)
	}
	_, _, err = d.execCreateSpace(4, []int64{16, 16}, failOpen)
	if err == nil {
		t.Fatal("execCreateSpace should surface the open failure")
	}
	if completionFor(err).Status != proto.StatusInvalidField {
		t.Fatalf("status = %v, want invalid field", completionFor(err).Status)
	}
	if created == 0 {
		t.Fatal("open was never attempted")
	}
	if _, err := d.Inspect(created); !errors.Is(err, stl.ErrUnknownSpace) {
		t.Fatalf("space %d leaked after failed open: Inspect err = %v", created, err)
	}
	// The success path still works and reuses nothing stale.
	id, view, err := d.execCreateSpace(4, []int64{16, 16}, d.OpenSpace)
	if err != nil {
		t.Fatal(err)
	}
	if view == nil || view.ID() != id {
		t.Fatal("create+open success path broken")
	}
}

// TestTypedCloseRetiresWireView: closing a Space through the typed API must
// retire its dynamic view ID too, so a host that learned the ID sees
// UnknownView — not an internal error — afterwards. (The typed and wire
// paths share one view lifecycle.)
func TestTypedCloseRetiresWireView(t *testing.T) {
	d, err := Open(Options{Mode: ModeHardware, CapacityHint: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	id, err := d.CreateSpace(4, []int64{32, 32})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := d.OpenSpace(id, []int64{32, 32})
	if err != nil {
		t.Fatal(err)
	}
	page, err := proto.CoordPayload{Coord: []int64{0, 0}, Sub: []int64{32, 32}}.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	// The typed view is addressable over the wire...
	_, cpl, _, _ := d.Exec(proto.NewRead(sp.WireID(), 0).Marshal(), page, nil)
	if cpl.Status != proto.StatusOK {
		t.Fatalf("wire read through typed view: %v", cpl.Status)
	}
	// ...until it is closed through the typed API.
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}
	_, cpl, _, _ = d.Exec(proto.NewRead(sp.WireID(), 0).Marshal(), page, nil)
	if cpl.Status != proto.StatusUnknownView {
		t.Fatalf("wire read after typed close: %v, want unknown view", cpl.Status)
	}
	// Typed double close and use-after-close report ErrClosedView.
	if err := sp.Close(); !errors.Is(err, ErrClosedView) {
		t.Fatalf("double close err = %v, want ErrClosedView", err)
	}
	if _, _, err := sp.Read([]int64{0, 0}, []int64{1, 1}); !errors.Is(err, ErrClosedView) {
		t.Fatalf("read after close err = %v, want ErrClosedView", err)
	}
	if _, err := sp.Write([]int64{0, 0}, []int64{1, 1}, make([]byte, 4)); !errors.Is(err, ErrClosedView) {
		t.Fatalf("write after close err = %v, want ErrClosedView", err)
	}
}
