package nds

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// TestConcurrentClients hammers one device from many goroutines, each owning
// a disjoint tile of a shared space; every client must read back exactly
// what it wrote, and the simulated clock must advance monotonically.
func TestConcurrentClients(t *testing.T) {
	d, err := Open(Options{Mode: ModeHardware, CapacityHint: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	const n, tile, clients = 256, 64, 16
	id, err := d.CreateSpace(4, []int64{n, n})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			sp, err := d.OpenSpace(id, []int64{n, n})
			if err != nil {
				errs <- err
				return
			}
			coord := []int64{int64(c) / (n / tile), int64(c) % (n / tile)}
			rng := rand.New(rand.NewSource(int64(c)))
			for iter := 0; iter < 5; iter++ {
				data := make([]byte, tile*tile*4)
				rng.Read(data)
				if _, err := sp.Write(coord, []int64{tile, tile}, data); err != nil {
					errs <- fmt.Errorf("client %d write: %w", c, err)
					return
				}
				got, _, err := sp.Read(coord, []int64{tile, tile})
				if err != nil {
					errs <- fmt.Errorf("client %d read: %w", c, err)
					return
				}
				if !bytes.Equal(got, data) {
					errs <- fmt.Errorf("client %d: read-back mismatch on iter %d", c, iter)
					return
				}
			}
			errs <- nil
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if d.Now() <= 0 {
		t.Fatal("clock did not advance")
	}
}
