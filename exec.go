package nds

import (
	"errors"

	"nds/internal/proto"
	"nds/internal/stl"
)

// Exec processes one raw extended-NVMe submission entry (§5.3.1): the
// command-level interface beneath the typed API, used by hosts that speak
// the wire format directly. payload is the 4 KB page the command's second
// word points at (coordinates for read/write, dimensionality for
// open_space); data is the write payload for nds_write.
//
// The returned bytes are the read payload (nil for non-reads and phantom
// devices). Errors in command handling surface as completion statuses, not
// Go errors; only a malformed entry returns an error.
//
// Exec is safe for concurrent use: commands from multiple submission queues
// are translated and scheduled concurrently, exactly like the typed API (see
// the package comment's Concurrency section).
func (d *Device) Exec(raw [proto.CommandSize]byte, payload, data []byte) ([]byte, proto.Completion, Stats, error) {
	cmd, err := proto.Unmarshal(raw)
	if err != nil {
		// A well-formed extended entry with an opcode this device lacks is
		// "unsupported command", not "malformed field": hosts probing for
		// newer commands need to tell the two apart.
		if errors.Is(err, proto.ErrUnknownOpcode) {
			return nil, proto.Completion{Status: proto.StatusUnsupportedOp}, Stats{}, err
		}
		return nil, proto.Completion{Status: proto.StatusInvalidField}, Stats{}, err
	}
	switch cmd.Opcode() {
	case proto.OpOpenSpace:
		sp, err := proto.UnmarshalSpacePayload(payload)
		if err != nil {
			return nil, proto.Completion{Status: proto.StatusInvalidField}, Stats{}, nil
		}
		var id SpaceID
		var view *Space
		if cmd.CreateFlag() {
			if sp.ElemSize == 0 {
				// 0 is "unspecified" — meaningful only against an existing
				// space's element size; creation needs a concrete one.
				return nil, proto.Completion{Status: proto.StatusInvalidField}, Stats{}, nil
			}
			id, view, err = d.execCreateSpace(sp.ElemSize, sp.Dims, d.OpenSpace)
		} else {
			id = SpaceID(cmd.Target())
			// A nonzero payload element size must match the space being
			// opened: a host that believes the elements are a different
			// width would compute wrong offsets on every access. 0 opts out
			// for hosts that only reshape (backward compatible: older
			// clients always sent the real size or nothing meaningful).
			if sp.ElemSize != 0 {
				info, err := d.Inspect(id)
				if err != nil {
					return nil, completionFor(err), Stats{}, nil
				}
				if info.ElemSize != sp.ElemSize {
					return nil, proto.Completion{Status: proto.StatusInvalidField}, Stats{}, nil
				}
			}
			view, err = d.OpenSpace(id, sp.Dims)
		}
		if err != nil {
			return nil, completionFor(err), Stats{}, nil
		}
		return nil, proto.Completion{Status: proto.StatusOK, Result0: uint64(id), Result1: uint64(view.WireID())}, Stats{}, nil

	case proto.OpCloseSpace:
		view, ok := d.lookupView(cmd.Target())
		if !ok {
			return nil, proto.Completion{Status: proto.StatusUnknownView}, Stats{}, nil
		}
		if err := view.Close(); err != nil {
			return nil, completionFor(err), Stats{}, nil
		}
		return nil, proto.Completion{Status: proto.StatusOK}, Stats{}, nil

	case proto.OpDeleteSpace:
		if err := d.DeleteSpace(SpaceID(cmd.Target())); err != nil {
			return nil, completionFor(err), Stats{}, nil
		}
		return nil, proto.Completion{Status: proto.StatusOK}, Stats{}, nil

	case proto.OpRead, proto.OpWrite:
		view, ok := d.lookupView(cmd.Target())
		if !ok {
			return nil, proto.Completion{Status: proto.StatusUnknownView}, Stats{}, nil
		}
		pl, err := proto.UnmarshalCoordPayload(payload)
		if err != nil {
			return nil, proto.Completion{Status: proto.StatusInvalidField}, Stats{}, nil
		}
		if cmd.Opcode() == proto.OpRead {
			out, st, err := view.Read(pl.Coord, pl.Sub)
			if err != nil {
				return nil, completionFor(err), Stats{}, nil
			}
			return out, proto.Completion{Status: proto.StatusOK, Result0: uint64(st.Bytes)}, st, nil
		}
		st, err := view.Write(pl.Coord, pl.Sub, data)
		if err != nil {
			return nil, completionFor(err), Stats{}, nil
		}
		return nil, proto.Completion{Status: proto.StatusOK, Result0: uint64(st.Bytes)}, st, nil

	case proto.OpScan:
		// A pushdown-disabled device answers like a drive without the
		// capability — before decoding, exactly as real firmware rejects an
		// unimplemented opcode without parsing its payload.
		if d.noPushdown {
			return nil, proto.Completion{Status: proto.StatusUnsupportedOp}, Stats{}, nil
		}
		view, ok := d.lookupView(cmd.Target())
		if !ok {
			return nil, proto.Completion{Status: proto.StatusUnknownView}, Stats{}, nil
		}
		pl, err := proto.UnmarshalScanPayload(payload)
		if err != nil {
			return nil, proto.Completion{Status: proto.StatusInvalidField}, Stats{}, nil
		}
		// The result page bounds a wire scan: max 0 means "fill the page",
		// and anything larger is clamped to what the page can carry. Hosts
		// resume past a truncated page with the returned cursor.
		max := int(pl.Max)
		if max <= 0 || max > proto.MaxScanMatches {
			max = proto.MaxScanMatches
		}
		res, st, err := view.Scan(pl.Coord, pl.Sub, ScanQuery{
			Pred:   Predicate{Lo: pl.Lo, Hi: pl.Hi},
			Cursor: pl.Cursor,
			Max:    max,
		})
		if err != nil {
			return nil, completionFor(err), Stats{}, nil
		}
		rp := proto.ScanResultPayload{Total: res.Total, NextCursor: res.NextCursor}
		for _, m := range res.Matches {
			rp.Matches = append(rp.Matches, proto.ScanMatch{Index: m.Index, Value: m.Value})
		}
		page, err := rp.Marshal()
		if err != nil {
			return nil, proto.Completion{Status: proto.StatusInternal}, Stats{}, nil
		}
		next := proto.ScanCursorNone
		if res.NextCursor >= 0 {
			next = uint64(res.NextCursor)
		}
		return page, proto.Completion{Status: proto.StatusOK, Result0: uint64(res.Total), Result1: next}, st, nil

	case proto.OpReduce:
		if d.noPushdown {
			return nil, proto.Completion{Status: proto.StatusUnsupportedOp}, Stats{}, nil
		}
		view, ok := d.lookupView(cmd.Target())
		if !ok {
			return nil, proto.Completion{Status: proto.StatusUnknownView}, Stats{}, nil
		}
		pl, err := proto.UnmarshalReducePayload(payload)
		if err != nil {
			return nil, proto.Completion{Status: proto.StatusInvalidField}, Stats{}, nil
		}
		q := ReduceQuery{Kind: ReduceKind(pl.Op), K: int(pl.K)}
		if pl.HasPred {
			q.Pred = &Predicate{Lo: pl.Lo, Hi: pl.Hi}
		}
		res, st, err := view.Reduce(pl.Coord, pl.Sub, q)
		if err != nil {
			return nil, completionFor(err), Stats{}, nil
		}
		rp := proto.ReduceResultPayload{Value: res.Value, Index: res.Index, Count: res.Count}
		for _, m := range res.TopK {
			rp.TopK = append(rp.TopK, proto.ScanMatch{Index: m.Index, Value: m.Value})
		}
		page, err := rp.Marshal()
		if err != nil {
			return nil, proto.Completion{Status: proto.StatusInternal}, Stats{}, nil
		}
		return page, proto.Completion{Status: proto.StatusOK, Result0: res.Value, Result1: uint64(res.Count)}, st, nil

	case proto.OpReliability:
		r := d.Reliability()
		page, err := proto.ReliabilityPayload{
			ProgramFaults:  r.ProgramFaults,
			EraseFaults:    r.EraseFaults,
			WearoutFaults:  r.WearoutFaults,
			ReadRetries:    r.ReadRetries,
			ProgramRetries: r.ProgramRetries,
			RetiredBlocks:  r.RetiredBlocks,
			RetiredPages:   r.RetiredPages,
			MaxPages:       r.MaxPages,
			EffectivePages: r.EffectivePages,
			UsedPages:      r.UsedPages,
		}.Marshal()
		if err != nil {
			return nil, proto.Completion{Status: proto.StatusInternal}, Stats{}, nil
		}
		return page, proto.Completion{Status: proto.StatusOK, Result0: uint64(r.RetiredBlocks)}, Stats{}, nil

	case proto.OpCacheStats:
		c := d.CacheStats()
		page, err := proto.CacheStatsPayload{
			Hits:           c.Hits,
			Misses:         c.Misses,
			HitBytes:       c.HitBytes,
			PrefetchIssued: c.PrefetchIssued,
			PrefetchUsed:   c.PrefetchUsed,
			PrefetchWasted: c.PrefetchWasted,
			Evictions:      c.Evictions,
			Invalidations:  c.Invalidations,
			ResidentBytes:  c.ResidentBytes,
			CapacityBytes:  c.CapacityBytes,
		}.Marshal()
		if err != nil {
			return nil, proto.Completion{Status: proto.StatusInternal}, Stats{}, nil
		}
		return page, proto.Completion{Status: proto.StatusOK, Result0: uint64(c.Hits)}, Stats{}, nil
	case proto.OpTenantStats:
		ts := d.TenantStats()
		p := proto.TenantStatsPayload{Total: int64(len(ts))}
		for _, t := range ts {
			if len(p.Entries) == proto.MaxTenantStatsEntries {
				break // page full; Result0 still reports the true total
			}
			e := proto.TenantStatsEntry{
				Tenant:      uint64(t.Space),
				WeightMilli: int64(t.Weight * 1000),
				Ops:         t.Ops,
				Bytes:       t.Bytes,
				SimBusyNs:   int64(t.SimBusy),
				QueueWaitNs: int64(t.QueueWait),
				ThrottleNs:  int64(t.Throttle),
			}
			if t.IsGroup {
				e.Tenant = proto.TenantGroupBit | uint64(t.Group)
			}
			p.Entries = append(p.Entries, e)
		}
		page, err := p.Marshal()
		if err != nil {
			return nil, proto.Completion{Status: proto.StatusInternal}, Stats{}, nil
		}
		return page, proto.Completion{Status: proto.StatusOK, Result0: uint64(len(ts))}, Stats{}, nil
	}
	// Unreachable while Unmarshal rejects unknown opcodes, but kept so a
	// future opcode added to proto without a handler here still answers
	// honestly instead of claiming a field was malformed.
	return nil, proto.Completion{Status: proto.StatusUnsupportedOp}, Stats{}, nil
}

// ExecRead processes one raw nds_read submission entry, delivering the
// payload through fn as ordered source segments instead of an assembled
// buffer — the zero-copy path beneath the network server's gather writer.
// fn's contract is Space.ReadSegments': the segments are valid only for the
// call, and on a phantom device fn receives (want, nil). fn runs only when
// the command decodes and executes successfully, so a non-OK completion
// means fn never ran; an error fn returns aborts the request and comes back
// in the error return (with an internal-status completion), letting the
// caller tell its own gather failures apart from device statuses. Entries
// with any opcode other than nds_read complete with StatusUnsupportedOp.
func (d *Device) ExecRead(raw [proto.CommandSize]byte, payload []byte, fn func(want int64, segs []Segment) error) (proto.Completion, Stats, error) {
	cmd, err := proto.Unmarshal(raw)
	if err != nil {
		if errors.Is(err, proto.ErrUnknownOpcode) {
			return proto.Completion{Status: proto.StatusUnsupportedOp}, Stats{}, err
		}
		return proto.Completion{Status: proto.StatusInvalidField}, Stats{}, err
	}
	if cmd.Opcode() != proto.OpRead {
		return proto.Completion{Status: proto.StatusUnsupportedOp}, Stats{}, nil
	}
	view, ok := d.lookupView(cmd.Target())
	if !ok {
		return proto.Completion{Status: proto.StatusUnknownView}, Stats{}, nil
	}
	pl, err := proto.UnmarshalCoordPayload(payload)
	if err != nil {
		return proto.Completion{Status: proto.StatusInvalidField}, Stats{}, nil
	}
	st, err := view.ReadSegments(pl.Coord, pl.Sub, fn)
	if err != nil {
		return completionFor(err), Stats{}, err
	}
	return proto.Completion{Status: proto.StatusOK, Result0: uint64(st.Bytes)}, st, nil
}

// execCreateSpace handles open_space with the create flag: create, then open
// the producer view. If the open fails the just-created space is deleted, so
// a failed command never leaks an unreachable space. The open step is
// injectable so tests can force the failure path.
func (d *Device) execCreateSpace(elemSize int, dims []int64, open func(SpaceID, []int64) (*Space, error)) (SpaceID, *Space, error) {
	id, err := d.CreateSpace(elemSize, dims)
	if err != nil {
		return 0, nil, err
	}
	view, err := open(id, dims)
	if err != nil {
		_ = d.DeleteSpace(id)
		return 0, nil, err
	}
	return id, view, nil
}

// lookupView resolves a dynamic view ID from the registry.
func (d *Device) lookupView(id uint32) (*Space, bool) {
	d.viewMu.RLock()
	defer d.viewMu.RUnlock()
	s, ok := d.views[id]
	return s, ok
}

// completionFor maps library errors onto wire statuses via the typed
// sentinels wrapped at each error's origin.
func completionFor(err error) proto.Completion {
	switch {
	case errors.Is(err, stl.ErrUnknownSpace):
		return proto.Completion{Status: proto.StatusUnknownSpace}
	case errors.Is(err, ErrClosedView):
		return proto.Completion{Status: proto.StatusUnknownView}
	case errors.Is(err, stl.ErrCapacity):
		return proto.Completion{Status: proto.StatusCapacity}
	case errors.Is(err, stl.ErrMedia):
		return proto.Completion{Status: proto.StatusMediaError}
	case errors.Is(err, stl.ErrBounds), errors.Is(err, stl.ErrInvalid):
		return proto.Completion{Status: proto.StatusInvalidField}
	case errors.Is(err, ErrPushdownDisabled):
		return proto.Completion{Status: proto.StatusUnsupportedOp}
	default:
		return proto.Completion{Status: proto.StatusInternal}
	}
}
