package nds

import (
	"strings"

	"nds/internal/proto"
)

// Exec processes one raw extended-NVMe submission entry (§5.3.1): the
// command-level interface beneath the typed API, used by hosts that speak
// the wire format directly. payload is the 4 KB page the command's second
// word points at (coordinates for read/write, dimensionality for
// open_space); data is the write payload for nds_write.
//
// The returned bytes are the read payload (nil for non-reads and phantom
// devices). Errors in command handling surface as completion statuses, not
// Go errors; only a malformed entry returns an error.
func (d *Device) Exec(raw [proto.CommandSize]byte, payload, data []byte) ([]byte, proto.Completion, Stats, error) {
	d.execMu.Lock()
	defer d.execMu.Unlock()
	cmd, err := proto.Unmarshal(raw)
	if err != nil {
		return nil, proto.Completion{Status: proto.StatusInvalidField}, Stats{}, err
	}
	switch cmd.Opcode() {
	case proto.OpOpenSpace:
		sp, err := proto.UnmarshalSpacePayload(payload)
		if err != nil {
			return nil, proto.Completion{Status: proto.StatusInvalidField}, Stats{}, nil
		}
		var id SpaceID
		if cmd.CreateFlag() {
			id, err = d.CreateSpace(sp.ElemSize, sp.Dims)
			if err != nil {
				return nil, completionFor(err), Stats{}, nil
			}
		} else {
			id = SpaceID(cmd.Target())
		}
		view, err := d.OpenSpace(id, sp.Dims)
		if err != nil {
			return nil, completionFor(err), Stats{}, nil
		}
		vid := d.registerView(view)
		return nil, proto.Completion{Status: proto.StatusOK, Result0: uint64(id), Result1: uint64(vid)}, Stats{}, nil

	case proto.OpCloseSpace:
		view, ok := d.views[cmd.Target()]
		if !ok {
			return nil, proto.Completion{Status: proto.StatusUnknownView}, Stats{}, nil
		}
		delete(d.views, cmd.Target())
		if err := view.Close(); err != nil {
			return nil, proto.Completion{Status: proto.StatusInternal}, Stats{}, nil
		}
		return nil, proto.Completion{Status: proto.StatusOK}, Stats{}, nil

	case proto.OpDeleteSpace:
		if err := d.DeleteSpace(SpaceID(cmd.Target())); err != nil {
			return nil, proto.Completion{Status: proto.StatusUnknownSpace}, Stats{}, nil
		}
		return nil, proto.Completion{Status: proto.StatusOK}, Stats{}, nil

	case proto.OpRead, proto.OpWrite:
		view, ok := d.views[cmd.Target()]
		if !ok {
			return nil, proto.Completion{Status: proto.StatusUnknownView}, Stats{}, nil
		}
		pl, err := proto.UnmarshalCoordPayload(payload)
		if err != nil {
			return nil, proto.Completion{Status: proto.StatusInvalidField}, Stats{}, nil
		}
		if cmd.Opcode() == proto.OpRead {
			out, st, err := view.Read(pl.Coord, pl.Sub)
			if err != nil {
				return nil, completionFor(err), Stats{}, nil
			}
			return out, proto.Completion{Status: proto.StatusOK, Result0: uint64(st.Bytes)}, st, nil
		}
		st, err := view.Write(pl.Coord, pl.Sub, data)
		if err != nil {
			return nil, completionFor(err), Stats{}, nil
		}
		return nil, proto.Completion{Status: proto.StatusOK, Result0: uint64(st.Bytes)}, st, nil
	}
	return nil, proto.Completion{Status: proto.StatusInvalidField}, Stats{}, nil
}

// registerView assigns a dynamic view ID (the open_space return value).
func (d *Device) registerView(s *Space) uint32 {
	if d.views == nil {
		d.views = make(map[uint32]*Space)
	}
	d.nextView++
	d.views[d.nextView] = s
	return d.nextView
}

// completionFor maps library errors onto wire statuses.
func completionFor(err error) proto.Completion {
	msg := err.Error()
	switch {
	case strings.Contains(msg, "unknown space"):
		return proto.Completion{Status: proto.StatusUnknownSpace}
	case strings.Contains(msg, "capacity"):
		return proto.Completion{Status: proto.StatusCapacity}
	case strings.Contains(msg, "out of"), strings.Contains(msg, "volume"),
		strings.Contains(msg, "rank"), strings.Contains(msg, "positive"),
		strings.Contains(msg, "dimension"):
		return proto.Completion{Status: proto.StatusInvalidField}
	default:
		return proto.Completion{Status: proto.StatusInternal}
	}
}
