package nds

import (
	"encoding/binary"
	"errors"
	"math/rand"
	"sort"
	"testing"
)

// The pushdown differential: a Scan or Reduce must report exactly what the
// host would compute from the same partition's Read bytes, on every device
// configuration the read path has — and because the operators ride the read
// path's segment plan, their device-side stats (payload bytes, flash pages,
// extents) must equal the equivalent Read's, access for access.

// decodeElems interprets a partition's bytes as little-endian uint64 elements
// of width es. data nil (phantom devices) decodes as want/es zeros.
func decodeElems(data []byte, want int64, es int) []uint64 {
	n := want / int64(es)
	elems := make([]uint64, n)
	if data == nil {
		return elems
	}
	for i := int64(0); i < n; i++ {
		var v uint64
		for b := 0; b < es; b++ {
			v |= uint64(data[i*int64(es)+int64(b)]) << (8 * b)
		}
		elems[i] = v
	}
	return elems
}

// hostScan is the read-then-filter oracle, mirroring ScanQuery's cursor/Max
// contract.
func hostScan(elems []uint64, q ScanQuery) ScanResult {
	res := ScanResult{NextCursor: -1}
	for i, v := range elems {
		if v < q.Pred.Lo || v > q.Pred.Hi {
			continue
		}
		res.Total++
		if int64(i) < q.Cursor {
			continue
		}
		if q.Max > 0 && len(res.Matches) == q.Max {
			if res.NextCursor < 0 {
				res.NextCursor = int64(i)
			}
			continue
		}
		res.Matches = append(res.Matches, Match{Index: int64(i), Value: v})
	}
	return res
}

// hostReduce is the read-then-reduce oracle.
func hostReduce(elems []uint64, q ReduceQuery) ReduceResult {
	var kept []Match
	for i, v := range elems {
		if q.Pred != nil && (v < q.Pred.Lo || v > q.Pred.Hi) {
			continue
		}
		kept = append(kept, Match{Index: int64(i), Value: v})
	}
	res := ReduceResult{Index: -1}
	switch q.Kind {
	case ReduceSum:
		for _, m := range kept {
			res.Value += m.Value
		}
		res.Count = int64(len(kept))
	case ReduceCount:
		for _, m := range kept {
			if q.Pred != nil || m.Value != 0 {
				res.Count++
			}
		}
		res.Value = uint64(res.Count)
	case ReduceMin:
		for _, m := range kept {
			if res.Count == 0 || m.Value < res.Value {
				res.Value, res.Index = m.Value, m.Index
			}
			res.Count++
		}
	case ReduceMax:
		for _, m := range kept {
			if res.Count == 0 || m.Value > res.Value {
				res.Value, res.Index = m.Value, m.Index
			}
			res.Count++
		}
	case ReduceTopK:
		sort.Slice(kept, func(i, j int) bool {
			if kept[i].Value != kept[j].Value {
				return kept[i].Value > kept[j].Value
			}
			return kept[i].Index < kept[j].Index
		})
		if len(kept) > q.K {
			kept = kept[:q.K]
		}
		res.TopK = kept
		res.Count = int64(len(kept))
		if len(kept) > 0 {
			res.Value, res.Index = kept[0].Value, kept[0].Index
		}
	}
	return res
}

func scanResultsEqual(a, b ScanResult) bool {
	if a.Total != b.Total || a.NextCursor != b.NextCursor || len(a.Matches) != len(b.Matches) {
		return false
	}
	for i := range a.Matches {
		if a.Matches[i] != b.Matches[i] {
			return false
		}
	}
	return true
}

func reduceResultsEqual(a, b ReduceResult) bool {
	if a.Value != b.Value || a.Index != b.Index || a.Count != b.Count || len(a.TopK) != len(b.TopK) {
		return false
	}
	for i := range a.TopK {
		if a.TopK[i] != b.TopK[i] {
			return false
		}
	}
	return true
}

// pushdownQueries is the access pattern both devices execute per partition:
// one entry per sequence point, scan or reduce. Queries cover full-range and
// selective predicates, cursor paging with truncation, and every reduction
// kind with and without a predicate.
var pushdownQueries = []struct {
	scan   *ScanQuery
	reduce *ReduceQuery
}{
	{scan: &ScanQuery{Pred: Predicate{Lo: 0, Hi: ^uint64(0)}}},
	{scan: &ScanQuery{Pred: Predicate{Lo: 100, Hi: 999}}},
	{scan: &ScanQuery{Pred: Predicate{Lo: 100, Hi: 999}, Cursor: 64, Max: 5}},
	{scan: &ScanQuery{Pred: Predicate{Lo: 4000, Hi: 4001}}},
	{reduce: &ReduceQuery{Kind: ReduceSum}},
	{reduce: &ReduceQuery{Kind: ReduceSum, Pred: &Predicate{Lo: 100, Hi: 999}}},
	{reduce: &ReduceQuery{Kind: ReduceCount}},
	{reduce: &ReduceQuery{Kind: ReduceMin, Pred: &Predicate{Lo: 1, Hi: ^uint64(0)}}},
	{reduce: &ReduceQuery{Kind: ReduceMax}},
	{reduce: &ReduceQuery{Kind: ReduceTopK, K: 7}},
}

// TestDifferentialPushdownVsRead drives two identically-prepared devices
// through the same per-partition access sequence — one Reads, the other
// Scans/Reduces — and requires byte-identical results and identical
// device-side stats at every sequence point, across the read path's
// configurations (both modes, cache+prefetch, compression, write buffering,
// the scalar data path, fault injection, and phantom devices).
func TestDifferentialPushdownVsRead(t *testing.T) {
	configs := []struct {
		name string
		opts Options
	}{
		{"hardware", Options{Mode: ModeHardware, CapacityHint: 16 << 20}},
		{"software", Options{Mode: ModeSoftware, CapacityHint: 16 << 20}},
		{"cached", Options{Mode: ModeHardware, CapacityHint: 16 << 20, CacheBytes: 4 << 20, PrefetchDepth: 2}},
		{"compressed", Options{Mode: ModeHardware, CapacityHint: 16 << 20, Compress: true}},
		{"write-buffered", Options{Mode: ModeHardware, CapacityHint: 16 << 20, WriteBuffering: true}},
		{"scalar", Options{Mode: ModeHardware, CapacityHint: 16 << 20, ScalarDataPath: true}},
		{"faults", Options{Mode: ModeHardware, CapacityHint: 16 << 20,
			Faults: &FaultPlan{Seed: 11, ProgramFailEvery: 7, ReadRetryEvery: 5}}},
		{"phantom", Options{Mode: ModeHardware, CapacityHint: 16 << 20, Phantom: true}},
	}
	const es = 8
	subs := [][]int64{{32, 32}, {16, 64}, {64, 128}}

	for _, cfg := range configs {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			setup := func() (*Device, *Space) {
				d, err := Open(cfg.opts)
				if err != nil {
					t.Fatal(err)
				}
				id, err := d.CreateSpace(es, []int64{128, 128})
				if err != nil {
					t.Fatal(err)
				}
				v, err := d.OpenSpace(id, []int64{128, 128})
				if err != nil {
					t.Fatal(err)
				}
				// Write the left half with bounded values (runs of repeats so
				// compression engages), overwrite a sub-tile, and leave the
				// right half unwritten: scans cross data, zeros, and the seam.
				payload := make([]byte, 128*64*es)
				rng := rand.New(rand.NewSource(13))
				for i := 0; i < len(payload)/es; {
					v, n := uint64(rng.Intn(5000)), rng.Intn(16)+1
					for j := 0; j < n && i < len(payload)/es; j++ {
						binary.LittleEndian.PutUint64(payload[i*es:], v)
						i++
					}
				}
				if _, err := v.Write([]int64{0, 0}, []int64{128, 64}, payload); err != nil {
					t.Fatal(err)
				}
				if _, err := v.Write([]int64{2, 1}, []int64{16, 32}, payload[:16*32*es]); err != nil {
					t.Fatal(err)
				}
				return d, v
			}

			rd, rv := setup() // the reading device
			defer rd.Close()
			pd, pv := setup() // the pushdown device
			defer pd.Close()

			op := 0
			for _, sub := range subs {
				for c0 := int64(0); c0 < 128/sub[0]; c0 += 128 / sub[0] / 2 {
					coord := []int64{c0, 0}
					for _, q := range pushdownQueries {
						data, rst, err := rv.Read(coord, sub)
						if err != nil {
							t.Fatalf("op %d read: %v", op, err)
						}
						elems := decodeElems(data, rst.Bytes, es)
						var pst Stats
						if q.scan != nil {
							got, st, err := pv.Scan(coord, sub, *q.scan)
							if err != nil {
								t.Fatalf("op %d scan: %v", op, err)
							}
							if want := hostScan(elems, *q.scan); !scanResultsEqual(got, want) {
								t.Fatalf("op %d sub=%v q=%+v: scan diverges from read+filter\n got %+v\nwant %+v",
									op, sub, *q.scan, got, want)
							}
							pst = st
						} else {
							got, st, err := pv.Reduce(coord, sub, *q.reduce)
							if err != nil {
								t.Fatalf("op %d reduce: %v", op, err)
							}
							if want := hostReduce(elems, *q.reduce); !reduceResultsEqual(got, want) {
								t.Fatalf("op %d sub=%v q=%+v: reduce diverges from read+reduce\n got %+v\nwant %+v",
									op, sub, *q.reduce, got, want)
							}
							pst = st
						}
						// Device-side stats are the read's by construction:
						// same payload, same flash pages, same extents, same
						// relocations. What crosses the link differs by mode.
						if pst.Bytes != rst.Bytes || pst.Pages != rst.Pages ||
							pst.Extents != rst.Extents || pst.ProgramRetries != rst.ProgramRetries {
							t.Fatalf("op %d sub=%v: pushdown stats diverge from read\n pushdown: %+v\n read:     %+v",
								op, sub, pst, rst)
						}
						if cfg.opts.Mode == ModeSoftware && pst.RawBytes != rst.RawBytes {
							t.Fatalf("op %d: software pushdown moved %d link bytes, read moved %d — software NDS saves nothing",
								op, pst.RawBytes, rst.RawBytes)
						}
						op++
					}
				}
			}
		})
	}
}

// TestPushdownInterconnectSavings pins the [P2] headline: on hardware NDS a
// selective scan's RawBytes (the result page) is a small fraction of the
// Read's (the raw partition), while software NDS moves every raw page either
// way.
func TestPushdownInterconnectSavings(t *testing.T) {
	d, err := Open(Options{Mode: ModeHardware, CapacityHint: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	id, err := d.CreateSpace(8, []int64{256, 256})
	if err != nil {
		t.Fatal(err)
	}
	v, err := d.OpenSpace(id, []int64{256, 256})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	data := make([]byte, 256*256*8)
	for i := 0; i < 256*256; i++ {
		binary.LittleEndian.PutUint64(data[8*i:], uint64(i%1000))
	}
	if _, err := v.Write([]int64{0, 0}, []int64{256, 256}, data); err != nil {
		t.Fatal(err)
	}

	_, rst, err := v.Read([]int64{0, 0}, []int64{256, 256})
	if err != nil {
		t.Fatal(err)
	}
	res, sst, err := v.Scan([]int64{0, 0}, []int64{256, 256}, ScanQuery{Pred: Predicate{Lo: 0, Hi: 9}})
	if err != nil {
		t.Fatal(err)
	}
	// i%1000 in [0,9]: ten hits per full thousand plus the partial cycle.
	want := int64(256*256/1000)*10 + 10
	if res.Total != want {
		t.Fatalf("1%% scan matched %d of %d, want %d", res.Total, 256*256, want)
	}
	if sst.RawBytes*10 > rst.RawBytes {
		t.Fatalf("1%% scan moved %d link bytes vs read's %d: want >=10x savings", sst.RawBytes, rst.RawBytes)
	}
	if sst.Elapsed <= 0 || sst.Pages != rst.Pages {
		t.Fatalf("scan stats inconsistent with read: %+v vs %+v", sst, rst)
	}
}

// TestPushdownQoSCharging checks that pushdown operators pass through tenant
// admission like reads: the scanned payload bytes land in the tenant's
// accounting.
func TestPushdownQoSCharging(t *testing.T) {
	d, err := Open(Options{
		Mode:         ModeHardware,
		CapacityHint: 16 << 20,
		TenantQoS:    &TenantQoS{Weight: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	id, err := d.CreateSpace(8, []int64{64, 64})
	if err != nil {
		t.Fatal(err)
	}
	v, err := d.OpenSpace(id, []int64{64, 64})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	data := make([]byte, 64*64*8)
	if _, err := v.Write([]int64{0, 0}, []int64{64, 64}, data); err != nil {
		t.Fatal(err)
	}
	before := d.TenantStats()
	if len(before) != 1 {
		t.Fatalf("tenants = %d", len(before))
	}
	const scans = 3
	for i := 0; i < scans; i++ {
		if _, _, err := v.Scan([]int64{0, 0}, []int64{64, 64}, ScanQuery{Pred: Predicate{Lo: 1, Hi: 2}}); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := v.Reduce([]int64{0, 0}, []int64{64, 64}, ReduceQuery{Kind: ReduceSum}); err != nil {
		t.Fatal(err)
	}
	after := d.TenantStats()
	wantOps := before[0].Ops + scans + 1
	wantBytes := before[0].Bytes + (scans+1)*64*64*8
	if after[0].Ops != wantOps || after[0].Bytes != wantBytes {
		t.Fatalf("tenant accounting: ops %d bytes %d, want %d / %d",
			after[0].Ops, after[0].Bytes, wantOps, wantBytes)
	}
}

// TestPushdownDisabledTyped checks the typed API's capability gate.
func TestPushdownDisabledTyped(t *testing.T) {
	d, err := Open(Options{Mode: ModeHardware, CapacityHint: 16 << 20, DisablePushdown: true})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	id, err := d.CreateSpace(8, []int64{16, 16})
	if err != nil {
		t.Fatal(err)
	}
	v, err := d.OpenSpace(id, []int64{16, 16})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	if _, _, err := v.Scan([]int64{0, 0}, []int64{16, 16}, ScanQuery{}); !errors.Is(err, ErrPushdownDisabled) {
		t.Fatalf("scan on disabled device: %v", err)
	}
	if _, _, err := v.Reduce([]int64{0, 0}, []int64{16, 16}, ReduceQuery{Kind: ReduceMax}); !errors.Is(err, ErrPushdownDisabled) {
		t.Fatalf("reduce on disabled device: %v", err)
	}
	// Closed views report closure regardless of capability.
	v.Close()
	if _, _, err := v.Scan([]int64{0, 0}, []int64{16, 16}, ScanQuery{}); !errors.Is(err, ErrClosedView) {
		t.Fatalf("scan on closed view: %v", err)
	}
}
