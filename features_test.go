package nds

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestEncryptedDevice: §5.3.3 through the public API — the data path is
// unchanged with the inline cipher installed.
func TestEncryptedDevice(t *testing.T) {
	d, err := Open(Options{
		Mode:          ModeHardware,
		CapacityHint:  8 << 20,
		EncryptionKey: []byte("tenant-key"),
	})
	if err != nil {
		t.Fatal(err)
	}
	id, err := d.CreateSpace(8, []int64{256, 256})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := d.OpenSpace(id, []int64{256, 256})
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 256*256*8)
	rand.New(rand.NewSource(5)).Read(data)
	if _, err := sp.Write([]int64{0, 0}, []int64{256, 256}, data); err != nil {
		t.Fatal(err)
	}
	// Reshaped consumer view over encrypted storage.
	flat, err := d.OpenSpace(id, []int64{256 * 256})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := flat.Read([]int64{0}, []int64{256 * 256})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("encrypted device corrupted data")
	}
}

// TestCompressedDevice: §5.3.4 through the public API — fewer flash pages
// for redundant content, identical bytes back.
func TestCompressedDevice(t *testing.T) {
	mk := func(compress bool) (Stats, []byte) {
		d, err := Open(Options{Mode: ModeSoftware, CapacityHint: 8 << 20, Compress: compress})
		if err != nil {
			t.Fatal(err)
		}
		id, err := d.CreateSpace(8, []int64{256, 256})
		if err != nil {
			t.Fatal(err)
		}
		sp, err := d.OpenSpace(id, []int64{256, 256})
		if err != nil {
			t.Fatal(err)
		}
		data := make([]byte, 256*256*8)
		for i := range data {
			data[i] = byte(i / 4096)
		}
		st, err := sp.Write([]int64{0, 0}, []int64{256, 256}, data)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := sp.Read([]int64{0, 0}, []int64{256, 256})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("round-trip mismatch")
		}
		return st, got
	}
	raw, _ := mk(false)
	comp, _ := mk(true)
	if comp.Pages >= raw.Pages {
		t.Fatalf("compression wrote %d pages, raw wrote %d", comp.Pages, raw.Pages)
	}
}

// TestSparseDevice: the §8 page-zero optimization through the public API.
func TestSparseDevice(t *testing.T) {
	d, err := Open(Options{Mode: ModeHardware, CapacityHint: 8 << 20, ZeroPageElision: true})
	if err != nil {
		t.Fatal(err)
	}
	id, err := d.CreateSpace(8, []int64{256, 256})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := d.OpenSpace(id, []int64{256, 256})
	if err != nil {
		t.Fatal(err)
	}
	sparse := make([]byte, 256*256*8) // all zeros
	st, err := sp.Write([]int64{0, 0}, []int64{256, 256}, sparse)
	if err != nil {
		t.Fatal(err)
	}
	if st.Pages != 0 {
		t.Fatalf("all-zero write programmed %d pages, want 0", st.Pages)
	}
	got, _, err := sp.Read([]int64{0, 0}, []int64{256, 256})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, sparse) {
		t.Fatal("sparse read-back mismatch")
	}
}

// TestWriteBufferingThroughAPI: §4.4 staging through the public API — a
// producer streaming single rows programs nothing until units fill or the
// device is flushed.
func TestWriteBufferingThroughAPI(t *testing.T) {
	d, err := Open(Options{Mode: ModeHardware, CapacityHint: 8 << 20, WriteBuffering: true})
	if err != nil {
		t.Fatal(err)
	}
	id, err := d.CreateSpace(8, []int64{512, 512})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := d.OpenSpace(id, []int64{512, 512})
	if err != nil {
		t.Fatal(err)
	}
	row := make([]byte, 512*8)
	rand.New(rand.NewSource(8)).Read(row)
	st, err := sp.Write([]int64{9, 0}, []int64{1, 512}, row)
	if err != nil {
		t.Fatal(err)
	}
	if st.Pages != 0 {
		t.Fatalf("single-row write programmed %d pages, want 0 (staged)", st.Pages)
	}
	got, _, err := sp.Read([]int64{9, 0}, []int64{1, 512})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, row) {
		t.Fatal("staged row invisible to reads")
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	got, _, err = sp.Read([]int64{9, 0}, []int64{1, 512})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, row) {
		t.Fatal("flushed row wrong")
	}
}

// TestResizeThroughAPI: §5.1 space restructuring.
func TestResizeThroughAPI(t *testing.T) {
	d, err := Open(Options{Mode: ModeHardware, CapacityHint: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	id, err := d.CreateSpace(8, []int64{128, 128})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := d.OpenSpace(id, []int64{128, 128})
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 128*128*8)
	rand.New(rand.NewSource(6)).Read(data)
	if _, err := sp.Write([]int64{0, 0}, []int64{128, 128}, data); err != nil {
		t.Fatal(err)
	}
	if err := d.ResizeSpace(id, 256); err != nil {
		t.Fatal(err)
	}
	info, err := d.Inspect(id)
	if err != nil {
		t.Fatal(err)
	}
	if info.Dims[0] != 256 {
		t.Fatalf("dims after resize = %v", info.Dims)
	}
	grown, err := d.OpenSpace(id, []int64{256, 128})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := grown.Read([]int64{0, 0}, []int64{128, 128})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("resize lost data")
	}
	if err := d.ResizeSpace(999, 10); err == nil {
		t.Fatal("resize of unknown space accepted")
	}
}
