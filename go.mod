module nds

go 1.22
