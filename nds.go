// Package nds is the public interface of this repository's reproduction of
// "NDS: N-Dimensional Storage" (Liu & Tseng, MICRO 2021): a multi-dimensional
// storage system in which applications create address spaces with their own
// dimensionality and read/write partitions by coordinate, while the space
// translation layer (STL) places data in building blocks spread across all
// flash channels so that rows, columns, and tiles are all fast.
//
// A Device simulates a complete NDS-compliant drive (flash array, controller,
// interconnect, and host software stack) with either the software-only or the
// hardware-assisted STL of the paper. Data written through the API is really
// stored and really translated — only time is simulated: every operation
// advances the device's simulated clock by the modelled latency, which is how
// the repository reproduces the paper's evaluation.
//
// Basic use:
//
//	dev, _ := nds.Open(nds.Options{Mode: nds.ModeHardware})
//	id, _ := dev.CreateSpace(4, []int64{1024, 1024})   // 1Kx1K float32 space
//	prod, _ := dev.OpenSpace(id, []int64{1024, 1024})  // producer view
//	prod.Write([]int64{0, 0}, []int64{1024, 1024}, data)
//	cons, _ := dev.OpenSpace(id, []int64{2048, 512})   // reshaped consumer view
//	tile, stats, _ := cons.Read([]int64{1, 0}, []int64{512, 512})
//
// # Concurrency
//
// A Device serves multiple request streams concurrently, like the real
// multi-queue drive it models. Each opened view is one command stream —
// the moral equivalent of an NVMe submission queue. A stream's commands
// issue back-to-back in simulated time: each one's issue time is the
// completion of the stream's previous command (the stream's creation time
// for the first), and its flash operations are scheduled on the
// per-channel/per-bank resource timelines from that point. Distinct streams
// issue independently, so commands from concurrent clients overlap on
// disjoint dies and queue behind each other where they collide — regardless
// of how the host happens to interleave the calls. The device clock (Now)
// only moves forward, to the latest completion seen, and a command's
// Stats.Elapsed is its own completion minus its own issue time — not the
// distance the global clock moved.
//
// Internally, reads, writes, and view opens share the device under a reader
// lock and run fully in parallel: the STL serializes writers per space (a
// space's readers never observe a half-applied write), allocates under
// per-die leaf locks, and collects garbage on a background worker driven by
// per-die free-capacity watermarks, so writers to different spaces — and GC —
// proceed concurrently. Space management (create/delete/resize/flush/import)
// is the rare barrier: it takes the writer side and excludes all I/O. View
// lifecycle (open/close, wire-protocol view IDs) is guarded separately, so
// closing one view never stalls I/O on another. Options.SerializedWrites and
// Options.SynchronousGC restore the pre-concurrent behavior for replay-exact
// comparisons.
package nds

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"nds/internal/nvm"
	"nds/internal/sim"
	"nds/internal/stl"
	"nds/internal/system"
)

// ErrClosedView reports an operation on a view that has been closed (or an
// attempt to close it twice). The wire layer maps it to StatusUnknownView,
// matching what a host sees when it reuses a retired dynamic view ID.
var ErrClosedView = errors.New("closed space view")

// Mode selects which NDS implementation of the paper backs the device.
type Mode int

const (
	// ModeSoftware runs the STL on the host over an open-channel device
	// (Figure 7b): translation and object assembly cost host CPU and raw
	// pages cross the interconnect.
	ModeSoftware Mode = iota
	// ModeHardware runs the STL inside the device controller (Figure 7c):
	// one command per access, in-device assembly, full internal bandwidth.
	ModeHardware
)

func (m Mode) String() string {
	if m == ModeSoftware {
		return "software"
	}
	return "hardware"
}

// Options configures Open.
type Options struct {
	// Mode picks the software-only or hardware-assisted implementation.
	Mode Mode
	// CapacityHint sizes the simulated flash array (bytes of expected data).
	// Zero selects a small default of 64 MiB.
	CapacityHint int64
	// Phantom disables byte storage: operations keep exact timing and
	// translation state but Read returns nil data. Used for paper-scale
	// experiments.
	Phantom bool
	// BlockOrder forces the building-block dimensionality (1-3); zero keeps
	// the paper default (2-D blocks for spaces of two or more dimensions).
	BlockOrder int
	// EncryptionKey, when non-empty, installs the §5.3.3 inline AES engine:
	// the medium holds ciphertext, the API speaks plaintext, and building
	// blocks, GC, and views are unaffected. Data-bearing devices only.
	EncryptionKey []byte
	// Compress enables §5.3.4's building-block-granular compression
	// (data-bearing devices only).
	Compress bool
	// ZeroPageElision enables the §8 page-zero optimization for sparse
	// content: all-zero pages occupy no flash units.
	ZeroPageElision bool
	// WriteBuffering enables §4.4's sub-unit write staging: partitions
	// smaller than a basic access unit collect in STL memory and program
	// once a unit fills or Flush is called.
	WriteBuffering bool
	// ScalarDataPath routes partition I/O through the original
	// one-page-at-a-time device path instead of the batched page-plan path.
	// Both produce bit-identical data, statistics, and simulated timing (the
	// differential tests hold them to it); the knob exists for that
	// comparison, not as a tuning choice.
	ScalarDataPath bool
	// CacheBytes sizes the STL's building-block DRAM cache (host DRAM in
	// ModeSoftware, controller DRAM in ModeHardware). Zero disables the cache
	// entirely, leaving the device bit- and timing-identical to one without
	// the feature. Flash pages read on the demand path are retained at
	// building-block granularity and served from DRAM on re-access; any
	// write, GC move, block retirement, or resize invalidates the affected
	// blocks. Observe effectiveness through CacheStats().
	CacheBytes int64
	// PrefetchDepth enables the dimensional prefetcher on cached devices:
	// when a view streams partitions along one axis of the building-block
	// grid, the next PrefetchDepth blocks on that axis warm into the cache
	// in the background. Zero disables prefetch; ignored when CacheBytes is
	// zero.
	PrefetchDepth int
	// SerializedWrites makes writes take the device-exclusive lock, restoring
	// the pre-concurrent write path: at most one write runs at a time,
	// regardless of how many views issue them. Exists for differential
	// comparison (a concurrent run must produce byte-identical spaces to a
	// serialized replay of the same per-stream sequences) and as an escape
	// hatch, not as a tuning choice.
	SerializedWrites bool
	// SynchronousGC collects garbage inline on the writing goroutine at
	// seed-deterministic trigger points instead of on the background worker.
	// Combined with SerializedWrites it makes two identically-driven devices
	// bit- and fault-point-identical, which the fault-replay checks require.
	SynchronousGC bool
	// Faults, when non-nil and enabled, installs deterministic flash fault
	// injection: the simulated medium fails programs and erases, needs ECC
	// read retries, and wears blocks out at seed-derived points, and the
	// STL's recovery machinery absorbs it (retiring bad blocks, relocating
	// failed programs). Observe the outcome through Reliability(). With no
	// plan the device behaves bit-identically to one without the feature.
	Faults *FaultPlan
	// DisablePushdown turns off the in-storage compute operators: Space.Scan
	// and Space.Reduce fail with ErrPushdownDisabled, and the wire opcodes
	// pushdown_scan/pushdown_reduce complete with StatusUnsupportedOp —
	// exactly what a host sees from a drive without the capability. The data
	// path is unaffected.
	DisablePushdown bool
	// TenantQoS, when non-nil, installs per-tenant weighted fair scheduling
	// in front of the data path: each space (or space group, see
	// BindSpaceGroup) is a tenant with a weight and an optional token-bucket
	// rate limit, enforced before a request books any channel/bank timeline —
	// a flooding tenant queues in wall-clock time instead of monopolizing the
	// simulated device. The gate never touches simulated timestamps, and with
	// TenantQoS nil the device is bit- and simulated-time-identical to one
	// without the feature. Observe the outcome through TenantStats().
	TenantQoS *TenantQoS
}

// TenantQoS sets the default per-tenant scheduling parameters
// (Options.TenantQoS); override individual tenants with Device.SetTenantQoS
// and Device.SetGroupQoS.
type TenantQoS struct {
	// Weight is the default relative share of device dispatch slots under
	// contention (<= 0 selects 1).
	Weight float64
	// RateBytesPerSec caps each tenant's admitted payload bandwidth via a
	// token bucket charged before dispatch; <= 0 leaves tenants uncapped.
	RateBytesPerSec float64
	// Burst is the token-bucket depth in bytes (<= 0 selects the larger of
	// 1 MiB and 100 ms of RateBytesPerSec).
	Burst int64
}

// FaultPlan configures deterministic flash fault injection (Options.Faults).
// Zero values disable each mechanism. Two devices with the same geometry and
// plan, driven by identical operation sequences, fail at identical points.
type FaultPlan struct {
	// Seed phases each die's fault points so faults spread across the array.
	Seed int64
	// ProgramFailEvery N > 0 fails one in every N program attempts per die.
	ProgramFailEvery int64
	// EraseFailEvery N > 0 fails one in every N erase attempts per die.
	EraseFailEvery int64
	// ReadRetryEvery N > 0 makes one in every N page reads per die need ECC
	// retry: correct data, extra sensing latency.
	ReadRetryEvery int64
	// ReadRetrySenses is the number of extra sensing passes a retried read
	// performs (default 2 when ReadRetryEvery is set).
	ReadRetrySenses int
	// EnduranceLimit E > 0 wears a block out after E successful erases.
	EnduranceLimit int64
}

// ReliabilityReport describes the device's fault history and the STL's
// recovery work: what the medium did, what was absorbed, and how much
// capacity retirement has cost. All zero on a device without a fault plan.
type ReliabilityReport struct {
	ProgramFaults  int64 // program attempts that failed
	EraseFaults    int64 // transient erase failures
	WearoutFaults  int64 // erases refused on worn-out blocks
	ReadRetries    int64 // reads needing extra ECC sensing
	ProgramRetries int64 // faulted programs successfully relocated
	RetiredBlocks  int64 // blocks permanently removed from service
	RetiredPages   int64 // raw pages those blocks represent
	MaxPages       int64 // original logical allocation budget
	EffectivePages int64 // budget after graceful degradation
	UsedPages      int64 // live units
}

// CacheStats describes the building-block cache's behavior: demand hit/miss
// counters, prefetcher effectiveness, and current occupancy. All zero on a
// device opened without CacheBytes.
type CacheStats struct {
	Hits           int64 // demand page reads served from DRAM
	Misses         int64 // demand page reads that went to flash
	HitBytes       int64 // payload bytes served from DRAM
	PrefetchIssued int64 // pages warmed by the dimensional prefetcher
	PrefetchUsed   int64 // prefetched pages later hit by a demand read
	PrefetchWasted int64 // prefetched pages evicted or invalidated unused
	Evictions      int64 // building blocks evicted for capacity
	Invalidations  int64 // building blocks dropped by writes/GC/retirement
	ResidentBytes  int64 // bytes currently held
	CapacityBytes  int64 // configured capacity
}

// GCStats describes the garbage collector's work: how often it ran, how much
// it moved, what it cost foreground writes, and the resulting write
// amplification. On a device opened with SynchronousGC, Runs counts inline
// collection passes and StallNs is zero (inline collection time is part of
// the triggering write, not a stall).
type GCStats struct {
	Runs           int64   // collection passes (worker sweeps or inline triggers)
	Erases         int64   // victim blocks erased and returned to service
	PagesRelocated int64   // live pages moved out of victims
	StallNs        int64   // wall-clock ns foreground writes spent waiting on a critically dry die
	WriteAmp       float64 // flash programs per logical page written (1.0 = no GC overhead)
}

// GCStats snapshots the garbage collector's counters.
func (d *Device) GCStats() GCStats {
	d.io.RLock()
	defer d.io.RUnlock()
	r := d.sys.STL.GCReport()
	return GCStats{
		Runs:           r.Runs,
		Erases:         r.Erases,
		PagesRelocated: r.PagesRelocated,
		StallNs:        r.StallNs,
		WriteAmp:       d.sys.STL.WriteAmplification(),
	}
}

// SpaceID names a created address space.
type SpaceID uint32

// Stats summarizes one operation.
type Stats struct {
	Elapsed  time.Duration // simulated service time of this operation (completion minus its issue time)
	Bytes    int64         // payload bytes
	RawBytes int64         // bytes that crossed the host interconnect
	Pages    int64         // flash page operations
	Commands int           // I/O commands issued
	Extents  int           // building-block fragments translated

	// ProgramRetries counts faulted programs relocated while serving this
	// operation (nonzero only under Options.Faults; see Reliability).
	ProgramRetries int64
}

// Device is a simulated NDS-compliant storage device. It is safe for
// concurrent use and serves concurrent request streams: see the package
// comment's Concurrency section for the scheduling and timing model.
//
// Lock order (for maintainers): Space.mu, then Device.io, then the STL's
// internal order (stl.Space.mu -> die -> cache shard); Device.viewMu is a
// leaf and never held across another lock acquisition.
type Device struct {
	sys *system.System

	// now is the monotonic simulated clock: a lock-free high-water mark over
	// command completions (CAS-max in advance), so concurrent streams
	// completing on disjoint resources never funnel through a shared clock
	// mutex. See DESIGN.md's sharded-clock section.
	now atomic.Int64

	// io is the maintenance barrier: reads, writes, and view opens take the
	// reader side (the STL serializes writers per space and locks allocation
	// per die, so concurrent data-path requests are safe); space management
	// (create/delete/resize/flush/import) takes the writer side and excludes
	// all I/O. With Options.SerializedWrites, writes take the writer side
	// too, restoring the pre-concurrent exclusive write path.
	io sync.RWMutex

	// serializedWrites records Options.SerializedWrites.
	serializedWrites bool

	// noPushdown records Options.DisablePushdown.
	noPushdown bool

	// viewMu guards the view registry: every open Space, its wire-protocol
	// dynamic view ID, and the ID counter. Both the typed API and Exec
	// register and retire views here, so the two paths see one lifecycle.
	viewMu   sync.RWMutex
	open     map[*Space]bool
	views    map[uint32]*Space
	nextView uint32
}

// Open builds a device following the paper's prototype platform (32
// channels, 8 banks, 4 KB pages, NVMe-oF host link).
func Open(opts Options) (*Device, error) {
	hint := opts.CapacityHint
	if hint <= 0 {
		hint = 64 << 20
	}
	cfg := system.PrototypeConfig(hint, opts.Phantom)
	if opts.BlockOrder != 0 {
		cfg.STL.BBOrder = opts.BlockOrder
		cfg.STL.BBMultiplier = 1
	}
	cfg.CipherKey = opts.EncryptionKey
	cfg.STL.Compress = opts.Compress
	cfg.STL.ZeroPageElision = opts.ZeroPageElision
	cfg.STL.WriteBuffering = opts.WriteBuffering
	cfg.STL.ScalarPath = opts.ScalarDataPath
	cfg.STL.CacheBytes = opts.CacheBytes
	cfg.STL.PrefetchDepth = opts.PrefetchDepth
	cfg.STL.BackgroundGC = !opts.SynchronousGC
	if opts.TenantQoS != nil {
		cfg.STL.TenantQoS = &stl.TenantQoSConfig{
			Weight:          opts.TenantQoS.Weight,
			RateBytesPerSec: opts.TenantQoS.RateBytesPerSec,
			BurstBytes:      opts.TenantQoS.Burst,
		}
	}
	if opts.Faults != nil {
		cfg.Faults = nvm.FaultPlan{
			Seed:             opts.Faults.Seed,
			ProgramFailEvery: opts.Faults.ProgramFailEvery,
			EraseFailEvery:   opts.Faults.EraseFailEvery,
			ReadRetryEvery:   opts.Faults.ReadRetryEvery,
			ReadRetrySenses:  opts.Faults.ReadRetrySenses,
			EnduranceLimit:   opts.Faults.EnduranceLimit,
		}
	}
	kind := system.SoftwareNDS
	if opts.Mode == ModeHardware {
		kind = system.HardwareNDS
	}
	sys, err := system.New(kind, cfg)
	if err != nil {
		return nil, err
	}
	return &Device{
		sys:              sys,
		serializedWrites: opts.SerializedWrites,
		noPushdown:       opts.DisablePushdown,
		open:             make(map[*Space]bool),
		views:            make(map[uint32]*Space),
	}, nil
}

// Close releases the device's background resources (the GC worker). Views
// need not be closed first; further I/O after Close is undefined. Optional on
// devices opened with SynchronousGC.
func (d *Device) Close() error {
	d.io.Lock()
	defer d.io.Unlock()
	return d.sys.STL.Close()
}

// clock reports the current simulated time: the issue time for a command
// arriving now.
func (d *Device) clock() sim.Time {
	return sim.Time(d.now.Load())
}

// advance moves the simulated clock forward to done; the clock never moves
// backward, so out-of-order completions keep it monotonic. CAS-max instead
// of a mutex: every completed command on every stream passes through here,
// and under 64 concurrent clients a shared clock mutex is a measurable
// convoy.
func (d *Device) advance(done sim.Time) {
	d64 := int64(done)
	for {
		cur := d.now.Load()
		if d64 <= cur || d.now.CompareAndSwap(cur, d64) {
			return
		}
	}
}

// Now reports the device's simulated clock.
func (d *Device) Now() time.Duration {
	return time.Duration(d.clock())
}

// Capacity reports the raw capacity of the simulated flash array.
func (d *Device) Capacity() int64 { return d.sys.Cfg.Geometry.Capacity() }

// Phantom reports whether the device was opened without byte storage
// (Options.Phantom): timing and translation are exact but reads return no
// data.
func (d *Device) Phantom() bool { return d.sys.Dev.Phantom() }

// Reliability snapshots the device's fault and recovery state: injected
// fault counts, successful relocations, retired blocks, and the logical
// capacity remaining after graceful degradation.
func (d *Device) Reliability() ReliabilityReport {
	d.io.RLock()
	defer d.io.RUnlock()
	r := d.sys.STL.Reliability()
	return ReliabilityReport{
		ProgramFaults:  r.ProgramFaults,
		EraseFaults:    r.EraseFaults,
		WearoutFaults:  r.WearoutFaults,
		ReadRetries:    r.ReadRetries,
		ProgramRetries: r.ProgramRetries,
		RetiredBlocks:  r.RetiredBlocks,
		RetiredPages:   r.RetiredPages,
		MaxPages:       r.MaxPages,
		EffectivePages: r.EffectivePages,
		UsedPages:      r.UsedPages,
	}
}

// CacheStats snapshots the building-block cache's counters (get_cache_stats
// on the wire). All zero when the device was opened without CacheBytes.
func (d *Device) CacheStats() CacheStats {
	d.io.RLock()
	defer d.io.RUnlock()
	c := d.sys.STL.CacheStats()
	return CacheStats{
		Hits:           c.Hits,
		Misses:         c.Misses,
		HitBytes:       c.HitBytes,
		PrefetchIssued: c.PrefetchIssued,
		PrefetchUsed:   c.PrefetchUsed,
		PrefetchWasted: c.PrefetchWasted,
		Evictions:      c.Evictions,
		Invalidations:  c.Invalidations,
		ResidentBytes:  c.ResidentBytes,
		CapacityBytes:  c.CapacityBytes,
	}
}

// TenantStats is one tenant's accumulated QoS accounting (get_tenant_stats
// on the wire). A tenant is a space, or — when IsGroup is set — a space
// group that one or more spaces are bound to.
type TenantStats struct {
	Space     SpaceID       // the space, when not a group tenant
	Group     uint32        // the group id, when IsGroup
	IsGroup   bool          // group tenant vs single-space tenant
	Weight    float64       // weight currently scheduled under
	Ops       int64         // admitted partition requests
	Bytes     int64         // payload bytes of successful requests
	SimBusy   time.Duration // simulated device time those requests occupied
	QueueWait time.Duration // wall time spent queued for a dispatch slot
	Throttle  time.Duration // wall time spent blocked on the token bucket
}

// TenantStats snapshots per-tenant QoS accounting for every tenant that has
// issued requests, ordered spaces first then groups, ascending. Nil when the
// device was opened without Options.TenantQoS.
func (d *Device) TenantStats() []TenantStats {
	d.io.RLock()
	defer d.io.RUnlock()
	raw := d.sys.STL.TenantStats()
	if raw == nil {
		return nil
	}
	out := make([]TenantStats, len(raw))
	for i, ts := range raw {
		out[i] = TenantStats{
			IsGroup:   ts.Tenant.IsGroup(),
			Weight:    ts.Weight,
			Ops:       ts.Ops,
			Bytes:     ts.Bytes,
			SimBusy:   time.Duration(ts.SimBusy),
			QueueWait: time.Duration(ts.QueueWaitNs),
			Throttle:  time.Duration(ts.ThrottleNs),
		}
		if ts.Tenant.IsGroup() {
			out[i].Group = ts.Tenant.Group()
		} else {
			out[i].Space = SpaceID(ts.Tenant.Space())
		}
	}
	return out
}

// SetTenantQoS overrides one space tenant's scheduling parameters. Requests
// already queued keep their place; new requests schedule under the new
// weight and rate. Fails when the device was opened without
// Options.TenantQoS.
func (d *Device) SetTenantQoS(id SpaceID, q TenantQoS) error {
	d.io.RLock()
	defer d.io.RUnlock()
	return d.sys.STL.SetTenantQoS(stl.SpaceTenant(stl.SpaceID(id)), q.Weight, q.RateBytesPerSec, q.Burst)
}

// SetGroupQoS overrides a space group's scheduling parameters (see
// BindSpaceGroup).
func (d *Device) SetGroupQoS(group uint32, q TenantQoS) error {
	d.io.RLock()
	defer d.io.RUnlock()
	return d.sys.STL.SetTenantQoS(stl.GroupTenant(group), q.Weight, q.RateBytesPerSec, q.Burst)
}

// BindSpaceGroup binds a space to group tenant g, so all spaces bound to g
// share one weight and one token bucket; g = 0 unbinds the space back to its
// own tenant. Takes effect for requests admitted after the call.
func (d *Device) BindSpaceGroup(id SpaceID, g uint32) error {
	d.io.RLock()
	defer d.io.RUnlock()
	return d.sys.STL.BindSpaceGroup(stl.SpaceID(id), g)
}

// CreateSpace creates a multi-dimensional address space of the given element
// size (bytes) and dimensionality, returning its identifier. The STL sizes
// building blocks for the device geometry per the paper's Equations 1-4.
func (d *Device) CreateSpace(elemSize int, dims []int64) (SpaceID, error) {
	d.io.Lock()
	defer d.io.Unlock()

	sp, err := d.sys.STL.CreateSpace(elemSize, dims)
	if err != nil {
		return 0, err
	}
	return SpaceID(sp.ID()), nil
}

// DeleteSpace permanently removes a space and invalidates its storage (the
// delete_space command of §5.3.1). Every open view of the space — typed or
// wire — is closed before DeleteSpace returns: its dynamic view ID is
// retired from the registry, and further operations on it report
// ErrClosedView (StatusUnknownView on the wire), never a dangling read of
// freed blocks. An operation already in flight on such a view may instead
// observe the deletion itself and fail with ErrUnknownSpace.
func (d *Device) DeleteSpace(id SpaceID) error {
	d.io.Lock()
	err := d.sys.STL.DeleteSpace(stl.SpaceID(id))
	d.io.Unlock()
	if err != nil {
		return err
	}
	d.retireViews(id)
	return nil
}

// ResizeSpace expands or shrinks a space along its outermost dimension
// (§5.1: passing an existing identifier to the space-management API
// restructures the space). Existing data within the new bound is preserved.
// Open views of the space are stale after a resize — their volumes no longer
// match — so, like DeleteSpace, ResizeSpace closes them all before
// returning; consumers reopen with matching volumes.
func (d *Device) ResizeSpace(id SpaceID, newDim0 int64) error {
	d.io.Lock()
	err := d.sys.STL.ResizeSpace(stl.SpaceID(id), newDim0)
	d.io.Unlock()
	if err != nil {
		return err
	}
	d.retireViews(id)
	return nil
}

// retireViews closes every open view of space id, retiring the views'
// dynamic wire IDs. Called after a successful delete or resize, with no
// locks held: Close takes Space.mu then viewMu, and any view registered
// after the snapshot below was opened after the space management operation
// completed — against the new space state — so it must survive.
func (d *Device) retireViews(id SpaceID) {
	d.viewMu.RLock()
	stale := make([]*Space, 0, len(d.open))
	for s := range d.open {
		if s.id == id {
			stale = append(stale, s)
		}
	}
	d.viewMu.RUnlock()
	for _, s := range stale {
		_ = s.Close() // already-closed views are fine: the error is the point
	}
}

// OpenViews reports the number of views currently open on the device (the
// size of the dynamic view-ID registry). Diagnostic: a long-running host
// that opens and closes views — or deletes spaces with views still open —
// can watch this return to zero to confirm nothing leaks.
func (d *Device) OpenViews() int {
	d.viewMu.RLock()
	defer d.viewMu.RUnlock()
	return len(d.views)
}

// Flush programs every §4.4-staged partial unit (WriteBuffering devices);
// a no-op otherwise.
func (d *Device) Flush() error {
	d.io.Lock()
	defer d.io.Unlock()
	done, err := d.sys.STL.Flush(d.clock())
	d.advance(done)
	return err
}

// SpaceInfo describes a space's layout decisions.
type SpaceInfo struct {
	ID         SpaceID
	ElemSize   int
	Dims       []int64
	BlockDims  []int64
	GridDims   []int64
	PagesPerBB int
	IndexBytes int64
}

// Inspect reports a space's dimensionality and building-block layout.
func (d *Device) Inspect(id SpaceID) (SpaceInfo, error) {
	d.io.RLock()
	defer d.io.RUnlock()

	sp, ok := d.sys.STL.Space(stl.SpaceID(id))
	if !ok {
		return SpaceInfo{}, fmt.Errorf("nds: inspect of space %d: %w", id, stl.ErrUnknownSpace)
	}
	return SpaceInfo{
		ID:         id,
		ElemSize:   sp.ElemSize(),
		Dims:       sp.Dims(),
		BlockDims:  sp.BlockDims(),
		GridDims:   sp.GridDims(),
		PagesPerBB: sp.PagesPerBlock(),
		IndexBytes: sp.IndexFootprint(),
	}, nil
}

// Space is an opened application view of an address space (the open_space
// command of §5.3.1 with a dynamic view ID). The view's dimensionality may
// differ from the producer's as long as the volumes match.
//
// A Space is safe for concurrent use, but it is one command stream: its
// operations serialize against each other, issuing back-to-back in simulated
// time. Clients that want their requests scheduled concurrently each open
// their own view (see the package comment's Concurrency section).
type Space struct {
	dev  *Device
	id   SpaceID
	wire uint32 // dynamic view ID in the device's registry

	mu     sync.Mutex // serializes the stream: guards view and cursor
	view   *stl.View  // nil after Close
	cursor sim.Time   // issue time of the stream's next command
}

// OpenSpace opens a view of space id with the given dimensionality. Every
// view — whether opened here or through the wire protocol — receives a
// dynamic view ID in the device's registry, so the typed and wire paths share
// one lifecycle.
func (d *Device) OpenSpace(id SpaceID, viewDims []int64) (*Space, error) {
	d.io.RLock()
	defer d.io.RUnlock()
	sp, ok := d.sys.STL.Space(stl.SpaceID(id))
	if !ok {
		return nil, fmt.Errorf("nds: open of space %d: %w", id, stl.ErrUnknownSpace)
	}
	v, err := stl.NewView(sp, viewDims)
	if err != nil {
		return nil, err
	}
	s := &Space{dev: d, id: id, view: v, cursor: d.clock()}
	// Registration happens under the io reader lock so a concurrent
	// DeleteSpace/ResizeSpace (which takes the writer side) cannot slip
	// between the space lookup above and the registry insert: any view whose
	// open observed the space live is registered before the management
	// operation proceeds, so retireViews sees it.
	d.viewMu.Lock()
	d.nextView++
	s.wire = d.nextView
	d.open[s] = true
	d.views[s.wire] = s
	d.viewMu.Unlock()
	return s, nil
}

// Close releases the view (the close_space command), retiring its dynamic
// view ID. Further accesses fail with ErrClosedView.
func (s *Space) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()

	if s.view == nil {
		return fmt.Errorf("nds: close of already %w", ErrClosedView)
	}
	s.view = nil
	d := s.dev
	d.viewMu.Lock()
	delete(d.open, s)
	delete(d.views, s.wire)
	d.viewMu.Unlock()
	return nil
}

// ID returns the underlying space identifier.
func (s *Space) ID() SpaceID { return s.id }

// WireID returns the view's dynamic identifier in the device's wire-protocol
// registry (the open_space Result1 value).
func (s *Space) WireID() uint32 { return s.wire }

// Dims returns the view's dimensionality.
func (s *Space) Dims() []int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.view.Dims()
}

// Read fetches the partition at coord with sub-dimensionality sub, assembled
// in the partition's own row-major layout. On a phantom device the data is
// nil but stats are exact. Reads from distinct views run in parallel.
func (s *Space) Read(coord, sub []int64) ([]byte, Stats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.view == nil {
		return nil, Stats{}, fmt.Errorf("nds: read on %w", ErrClosedView)
	}
	d := s.dev
	issue := s.cursor
	d.io.RLock()
	data, st, err := d.sys.NDSRead(issue, s.view, coord, sub)
	d.io.RUnlock()
	if err != nil {
		return nil, Stats{}, err
	}
	return data, s.account(issue, st), nil
}

// ReadInto is Read assembling the partition into dst when dst has enough
// capacity (allocating a fresh buffer otherwise, exactly like Read). The
// returned slice aliases dst in that case. Ownership rule: the buffer belongs
// to the caller's stream — reuse it across this view's reads to make the
// steady-state read path allocation-free, but consume or copy the result
// before issuing the next read with the same buffer, and never share one
// buffer across views reading concurrently.
func (s *Space) ReadInto(coord, sub []int64, dst []byte) ([]byte, Stats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.view == nil {
		return nil, Stats{}, fmt.Errorf("nds: read on %w", ErrClosedView)
	}
	d := s.dev
	issue := s.cursor
	d.io.RLock()
	data, st, err := d.sys.NDSReadInto(issue, s.view, coord, sub, dst)
	d.io.RUnlock()
	if err != nil {
		return nil, Stats{}, err
	}
	return data, s.account(issue, st), nil
}

// Segment is one contiguous source piece of a segmented read: see
// ReadSegments and stl.Segment. The alias lets callers name the type without
// importing the internal package.
type Segment = stl.Segment

// ReadSegments reads the partition at coord/sub like Read, but delivers the
// result to fn as ordered source segments instead of assembling a contiguous
// buffer: fn receives the partition's payload size and a Dst-ordered,
// non-overlapping segment list whose gaps read as zeros. This is the
// zero-copy read path — a consumer that can gather (frame encoders,
// checksummers, scatter targets) skips the partition-buffer copy entirely.
//
// Lease rule: the segments alias device-owned storage and are valid only
// until fn returns; fn must gather or copy, never retain or mutate. fn runs
// with the request's locks held, so it must not call back into the device.
// Timing and stats are identical to Read. On a phantom device fn receives
// (want, nil).
func (s *Space) ReadSegments(coord, sub []int64, fn func(want int64, segs []Segment) error) (Stats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.view == nil {
		return Stats{}, fmt.Errorf("nds: read on %w", ErrClosedView)
	}
	d := s.dev
	issue := s.cursor
	d.io.RLock()
	st, err := d.sys.NDSReadSegments(issue, s.view, coord, sub, fn)
	d.io.RUnlock()
	if err != nil {
		return Stats{}, err
	}
	return s.account(issue, st), nil
}

// Write stores data (laid out in the partition's row-major shape) at the
// partition coord/sub. On a phantom device pass nil data. Writes to distinct
// spaces run in parallel (the STL serializes writers per space), and their
// flash operations overlap in simulated time with commands issued on other
// streams; Options.SerializedWrites restores the exclusive write path.
func (s *Space) Write(coord, sub []int64, data []byte) (Stats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.view == nil {
		return Stats{}, fmt.Errorf("nds: write on %w", ErrClosedView)
	}
	d := s.dev
	issue := s.cursor
	if d.serializedWrites {
		d.io.Lock()
	} else {
		d.io.RLock()
	}
	st, err := d.sys.NDSWrite(issue, s.view, coord, sub, data)
	if d.serializedWrites {
		d.io.Unlock()
	} else {
		d.io.RUnlock()
	}
	if err != nil {
		return Stats{}, err
	}
	return s.account(issue, st), nil
}

// account advances the stream cursor and device clock past this command's
// completion and converts stats; elapsed is measured from the command's own
// issue time. Callers hold s.mu.
func (s *Space) account(issue sim.Time, st system.OpStats) Stats {
	s.cursor = sim.Max(s.cursor, st.Done)
	s.dev.advance(st.Done)
	return Stats{
		Elapsed:  time.Duration(st.Done - issue),
		Bytes:    st.Bytes,
		RawBytes: st.RawBytes,
		Pages:    st.Pages,
		Commands: st.Commands,
		Extents:  st.Extents,

		ProgramRetries: st.ProgramRetries,
	}
}
