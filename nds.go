// Package nds is the public interface of this repository's reproduction of
// "NDS: N-Dimensional Storage" (Liu & Tseng, MICRO 2021): a multi-dimensional
// storage system in which applications create address spaces with their own
// dimensionality and read/write partitions by coordinate, while the space
// translation layer (STL) places data in building blocks spread across all
// flash channels so that rows, columns, and tiles are all fast.
//
// A Device simulates a complete NDS-compliant drive (flash array, controller,
// interconnect, and host software stack) with either the software-only or the
// hardware-assisted STL of the paper. Data written through the API is really
// stored and really translated — only time is simulated: every operation
// advances the device's simulated clock by the modelled latency, which is how
// the repository reproduces the paper's evaluation.
//
// Basic use:
//
//	dev, _ := nds.Open(nds.Options{Mode: nds.ModeHardware})
//	id, _ := dev.CreateSpace(4, []int64{1024, 1024})   // 1Kx1K float32 space
//	prod, _ := dev.OpenSpace(id, []int64{1024, 1024})  // producer view
//	prod.Write([]int64{0, 0}, []int64{1024, 1024}, data)
//	cons, _ := dev.OpenSpace(id, []int64{2048, 512})   // reshaped consumer view
//	tile, stats, _ := cons.Read([]int64{1, 0}, []int64{512, 512})
package nds

import (
	"fmt"
	"sync"
	"time"

	"nds/internal/sim"
	"nds/internal/stl"
	"nds/internal/system"
)

// Mode selects which NDS implementation of the paper backs the device.
type Mode int

const (
	// ModeSoftware runs the STL on the host over an open-channel device
	// (Figure 7b): translation and object assembly cost host CPU and raw
	// pages cross the interconnect.
	ModeSoftware Mode = iota
	// ModeHardware runs the STL inside the device controller (Figure 7c):
	// one command per access, in-device assembly, full internal bandwidth.
	ModeHardware
)

func (m Mode) String() string {
	if m == ModeSoftware {
		return "software"
	}
	return "hardware"
}

// Options configures Open.
type Options struct {
	// Mode picks the software-only or hardware-assisted implementation.
	Mode Mode
	// CapacityHint sizes the simulated flash array (bytes of expected data).
	// Zero selects a small default of 64 MiB.
	CapacityHint int64
	// Phantom disables byte storage: operations keep exact timing and
	// translation state but Read returns nil data. Used for paper-scale
	// experiments.
	Phantom bool
	// BlockOrder forces the building-block dimensionality (1-3); zero keeps
	// the paper default (2-D blocks for spaces of two or more dimensions).
	BlockOrder int
	// EncryptionKey, when non-empty, installs the §5.3.3 inline AES engine:
	// the medium holds ciphertext, the API speaks plaintext, and building
	// blocks, GC, and views are unaffected. Data-bearing devices only.
	EncryptionKey []byte
	// Compress enables §5.3.4's building-block-granular compression
	// (data-bearing devices only).
	Compress bool
	// ZeroPageElision enables the §8 page-zero optimization for sparse
	// content: all-zero pages occupy no flash units.
	ZeroPageElision bool
	// WriteBuffering enables §4.4's sub-unit write staging: partitions
	// smaller than a basic access unit collect in STL memory and program
	// once a unit fills or Flush is called.
	WriteBuffering bool
}

// SpaceID names a created address space.
type SpaceID uint32

// Stats summarizes one operation.
type Stats struct {
	Elapsed  time.Duration // simulated service time of this operation
	Bytes    int64         // payload bytes
	RawBytes int64         // bytes that crossed the host interconnect
	Pages    int64         // flash page operations
	Commands int           // I/O commands issued
	Extents  int           // building-block fragments translated
}

// Device is a simulated NDS-compliant storage device. It is safe for
// concurrent use: operations serialize on an internal lock (the simulated
// device processes one request stream, matching the in-order command model
// of the underlying simulator).
type Device struct {
	mu   sync.Mutex
	sys  *system.System
	now  sim.Time
	open map[*Space]bool

	// Wire-protocol state (Exec): dynamic view IDs from open_space. execMu
	// serializes whole commands and guards the view table; it is always
	// acquired before mu.
	execMu   sync.Mutex
	views    map[uint32]*Space
	nextView uint32
}

// Open builds a device following the paper's prototype platform (32
// channels, 8 banks, 4 KB pages, NVMe-oF host link).
func Open(opts Options) (*Device, error) {
	hint := opts.CapacityHint
	if hint <= 0 {
		hint = 64 << 20
	}
	cfg := system.PrototypeConfig(hint, opts.Phantom)
	if opts.BlockOrder != 0 {
		cfg.STL.BBOrder = opts.BlockOrder
		cfg.STL.BBMultiplier = 1
	}
	cfg.CipherKey = opts.EncryptionKey
	cfg.STL.Compress = opts.Compress
	cfg.STL.ZeroPageElision = opts.ZeroPageElision
	cfg.STL.WriteBuffering = opts.WriteBuffering
	kind := system.SoftwareNDS
	if opts.Mode == ModeHardware {
		kind = system.HardwareNDS
	}
	sys, err := system.New(kind, cfg)
	if err != nil {
		return nil, err
	}
	return &Device{sys: sys, open: make(map[*Space]bool)}, nil
}

// Now reports the device's simulated clock.
func (d *Device) Now() time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	return time.Duration(d.now)
}

// Capacity reports the raw capacity of the simulated flash array.
func (d *Device) Capacity() int64 { return d.sys.Cfg.Geometry.Capacity() }

// CreateSpace creates a multi-dimensional address space of the given element
// size (bytes) and dimensionality, returning its identifier. The STL sizes
// building blocks for the device geometry per the paper's Equations 1-4.
func (d *Device) CreateSpace(elemSize int, dims []int64) (SpaceID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()

	sp, err := d.sys.STL.CreateSpace(elemSize, dims)
	if err != nil {
		return 0, err
	}
	return SpaceID(sp.ID()), nil
}

// DeleteSpace permanently removes a space and invalidates its storage (the
// delete_space command of §5.3.1).
func (d *Device) DeleteSpace(id SpaceID) error {
	d.mu.Lock()
	defer d.mu.Unlock()

	return d.sys.STL.DeleteSpace(stl.SpaceID(id))
}

// ResizeSpace expands or shrinks a space along its outermost dimension
// (§5.1: passing an existing identifier to the space-management API
// restructures the space). Existing data within the new bound is preserved;
// open views become stale and must be reopened with matching volumes.
func (d *Device) ResizeSpace(id SpaceID, newDim0 int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()

	return d.sys.STL.ResizeSpace(stl.SpaceID(id), newDim0)
}

// Flush programs every §4.4-staged partial unit (WriteBuffering devices);
// a no-op otherwise.
func (d *Device) Flush() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	done, err := d.sys.STL.Flush(d.now)
	if done > d.now {
		d.now = done
	}
	return err
}

// SpaceInfo describes a space's layout decisions.
type SpaceInfo struct {
	ID         SpaceID
	ElemSize   int
	Dims       []int64
	BlockDims  []int64
	GridDims   []int64
	PagesPerBB int
	IndexBytes int64
}

// Inspect reports a space's dimensionality and building-block layout.
func (d *Device) Inspect(id SpaceID) (SpaceInfo, error) {
	d.mu.Lock()
	defer d.mu.Unlock()

	sp, ok := d.sys.STL.Space(stl.SpaceID(id))
	if !ok {
		return SpaceInfo{}, fmt.Errorf("nds: unknown space %d", id)
	}
	return SpaceInfo{
		ID:         id,
		ElemSize:   sp.ElemSize(),
		Dims:       sp.Dims(),
		BlockDims:  sp.BlockDims(),
		GridDims:   sp.GridDims(),
		PagesPerBB: sp.PagesPerBlock(),
		IndexBytes: sp.IndexFootprint(),
	}, nil
}

// Space is an opened application view of an address space (the open_space
// command of §5.3.1 with a dynamic view ID). The view's dimensionality may
// differ from the producer's as long as the volumes match.
type Space struct {
	dev  *Device
	view *stl.View
	id   SpaceID
}

// openInternal is OpenSpace without locking (callers hold d.mu).
func (d *Device) openInternal(id uint32, viewDims []int64) (*Space, error) {
	sp, ok := d.sys.STL.Space(stl.SpaceID(id))
	if !ok {
		return nil, fmt.Errorf("nds: unknown space %d", id)
	}
	v, err := stl.NewView(sp, viewDims)
	if err != nil {
		return nil, err
	}
	s := &Space{dev: d, view: v, id: SpaceID(id)}
	d.open[s] = true
	return s, nil
}

// OpenSpace opens a view of space id with the given dimensionality.
func (d *Device) OpenSpace(id SpaceID, viewDims []int64) (*Space, error) {
	d.mu.Lock()
	defer d.mu.Unlock()

	sp, ok := d.sys.STL.Space(stl.SpaceID(id))
	if !ok {
		return nil, fmt.Errorf("nds: unknown space %d", id)
	}
	v, err := stl.NewView(sp, viewDims)
	if err != nil {
		return nil, err
	}
	s := &Space{dev: d, view: v, id: id}
	d.open[s] = true
	return s, nil
}

// Close releases the view (the close_space command). Further accesses fail.
func (s *Space) Close() error {
	s.dev.mu.Lock()
	defer s.dev.mu.Unlock()

	if s.view == nil {
		return fmt.Errorf("nds: space view already closed")
	}
	delete(s.dev.open, s)
	s.view = nil
	return nil
}

// ID returns the underlying space identifier.
func (s *Space) ID() SpaceID { return s.id }

// Dims returns the view's dimensionality.
func (s *Space) Dims() []int64 { return s.view.Dims() }

// Read fetches the partition at coord with sub-dimensionality sub, assembled
// in the partition's own row-major layout. On a phantom device the data is
// nil but stats are exact.
func (s *Space) Read(coord, sub []int64) ([]byte, Stats, error) {
	s.dev.mu.Lock()
	defer s.dev.mu.Unlock()

	if s.view == nil {
		return nil, Stats{}, fmt.Errorf("nds: read on closed space view")
	}
	data, st, err := s.dev.sys.NDSRead(s.dev.now, s.view, coord, sub)
	if err != nil {
		return nil, Stats{}, err
	}
	stats := s.dev.account(st)
	return data, stats, nil
}

// Write stores data (laid out in the partition's row-major shape) at the
// partition coord/sub. On a phantom device pass nil data.
func (s *Space) Write(coord, sub []int64, data []byte) (Stats, error) {
	s.dev.mu.Lock()
	defer s.dev.mu.Unlock()

	if s.view == nil {
		return Stats{}, fmt.Errorf("nds: write on closed space view")
	}
	st, err := s.dev.sys.NDSWrite(s.dev.now, s.view, coord, sub, data)
	if err != nil {
		return Stats{}, err
	}
	return s.dev.account(st), nil
}

// account advances the device clock and converts stats.
func (d *Device) account(st system.OpStats) Stats {
	elapsed := st.Done - d.now
	if st.Done > d.now {
		d.now = st.Done
	}
	return Stats{
		Elapsed:  time.Duration(elapsed),
		Bytes:    st.Bytes,
		RawBytes: st.RawBytes,
		Pages:    st.Pages,
		Commands: st.Commands,
		Extents:  st.Extents,
	}
}
