package nds

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestExportImportRoundTrip moves two spaces between devices — including
// into the other implementation mode — and verifies contents survive while
// the receiving STL re-decides the physical layout.
func TestExportImportRoundTrip(t *testing.T) {
	src, err := Open(Options{Mode: ModeHardware, CapacityHint: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))

	// Space 1: a 2-D matrix.
	idA, err := src.CreateSpace(8, []int64{128, 128})
	if err != nil {
		t.Fatal(err)
	}
	spA, err := src.OpenSpace(idA, []int64{128, 128})
	if err != nil {
		t.Fatal(err)
	}
	dataA := make([]byte, 128*128*8)
	rng.Read(dataA)
	if _, err := spA.Write([]int64{0, 0}, []int64{128, 128}, dataA); err != nil {
		t.Fatal(err)
	}
	// Space 2: a 1-D vector.
	idB, err := src.CreateSpace(4, []int64{4096})
	if err != nil {
		t.Fatal(err)
	}
	spB, err := src.OpenSpace(idB, []int64{4096})
	if err != nil {
		t.Fatal(err)
	}
	dataB := make([]byte, 4096*4)
	rng.Read(dataB)
	if _, err := spB.Write([]int64{0}, []int64{4096}, dataB); err != nil {
		t.Fatal(err)
	}

	var snap bytes.Buffer
	if err := src.Export(&snap); err != nil {
		t.Fatal(err)
	}

	// Import into a software-mode device (the other platform half).
	dst, err := Open(Options{Mode: ModeSoftware, CapacityHint: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	mapping, err := dst.Import(bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(mapping) != 2 {
		t.Fatalf("imported %d spaces, want 2", len(mapping))
	}

	gotA, err := dst.OpenSpace(mapping[idA], []int64{128, 128})
	if err != nil {
		t.Fatal(err)
	}
	rawA, _, err := gotA.Read([]int64{0, 0}, []int64{128, 128})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rawA, dataA) {
		t.Fatal("2-D space content lost in transit")
	}
	gotB, err := dst.OpenSpace(mapping[idB], []int64{4096})
	if err != nil {
		t.Fatal(err)
	}
	rawB, _, err := gotB.Read([]int64{0}, []int64{4096})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rawB, dataB) {
		t.Fatal("1-D space content lost in transit")
	}
	// The destination re-decided layout for its own geometry.
	info, err := dst.Inspect(mapping[idA])
	if err != nil {
		t.Fatal(err)
	}
	if info.BlockDims[0] != 256 {
		t.Fatalf("destination block dims = %v", info.BlockDims)
	}
}

// TestImportIntoFeatureDevices round-trips a snapshot into compressed and
// encrypted devices: snapshots are logical, so device features compose.
func TestImportIntoFeatureDevices(t *testing.T) {
	src, err := Open(Options{Mode: ModeHardware, CapacityHint: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	id, err := src.CreateSpace(4, []int64{256, 256})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := src.OpenSpace(id, []int64{256, 256})
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 256*256*4)
	for i := range data {
		data[i] = byte(i / 1024) // compressible
	}
	if _, err := sp.Write([]int64{0, 0}, []int64{256, 256}, data); err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := src.Export(&snap); err != nil {
		t.Fatal(err)
	}

	for _, opts := range []Options{
		{Mode: ModeSoftware, CapacityHint: 8 << 20, Compress: true},
		{Mode: ModeHardware, CapacityHint: 8 << 20, EncryptionKey: []byte("k2")},
	} {
		dst, err := Open(opts)
		if err != nil {
			t.Fatal(err)
		}
		mapping, err := dst.Import(bytes.NewReader(snap.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		got, err := dst.OpenSpace(mapping[id], []int64{256, 256})
		if err != nil {
			t.Fatal(err)
		}
		raw, _, err := got.Read([]int64{0, 0}, []int64{256, 256})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(raw, data) {
			t.Fatalf("feature device %+v corrupted snapshot", opts)
		}
	}
}

func TestSnapshotValidation(t *testing.T) {
	phantom, err := Open(Options{Mode: ModeHardware, CapacityHint: 4 << 20, Phantom: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := phantom.Export(&bytes.Buffer{}); err == nil {
		t.Error("export of a phantom device accepted")
	}
	if _, err := phantom.Import(bytes.NewReader(nil)); err == nil {
		t.Error("import into a phantom device accepted")
	}
	real, err := Open(Options{Mode: ModeHardware, CapacityHint: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := real.Import(bytes.NewReader([]byte("XXXXgarbage"))); err == nil {
		t.Error("bad magic accepted")
	}
	// Truncated snapshot.
	var snap bytes.Buffer
	id, _ := real.CreateSpace(4, []int64{64})
	sp, _ := real.OpenSpace(id, []int64{64})
	if _, err := sp.Write([]int64{0}, []int64{64}, make([]byte, 256)); err != nil {
		t.Fatal(err)
	}
	if err := real.Export(&snap); err != nil {
		t.Fatal(err)
	}
	trunc := snap.Bytes()[:snap.Len()-10]
	dst, _ := Open(Options{Mode: ModeHardware, CapacityHint: 4 << 20})
	if _, err := dst.Import(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated snapshot accepted")
	}
}
