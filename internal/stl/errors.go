package stl

import "errors"

// Sentinel errors classifying every failure the STL can report to a host.
// Call sites wrap them with fmt.Errorf("...: %w", Err...) so callers branch
// with errors.Is instead of matching error text; the wire layer (package nds)
// maps each sentinel onto a completion status.
var (
	// ErrUnknownSpace: the named space does not exist (never created, or
	// already deleted).
	ErrUnknownSpace = errors.New("unknown space")
	// ErrCapacity: the device cannot supply the storage the operation needs
	// (logical capacity budget exhausted, or no die has a free unit).
	ErrCapacity = errors.New("capacity exhausted")
	// ErrBounds: a coordinate addresses a partition outside the view.
	ErrBounds = errors.New("out of bounds")
	// ErrInvalid: a malformed argument — non-positive dimension, mismatched
	// rank or volume, unsupported block order, or a payload whose size does
	// not match the partition.
	ErrInvalid = errors.New("invalid argument")
	// ErrMedia: the flash medium failed beyond what the STL's recovery
	// machinery could absorb — program retries exhausted, or no unit could be
	// found to relocate data away from a failing block. The affected write did
	// not land; previously written data is unaffected.
	ErrMedia = errors.New("unrecoverable media error")
)
