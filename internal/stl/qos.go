package stl

import (
	"fmt"
	"sync"
	"sync/atomic"

	"nds/internal/sim"
)

// Tenant QoS: per-space (or space-group) weighted fair admission in front of
// the data path. The gate runs before a request takes its space lock or books
// any channel/bank timeline, and it operates purely in wall-clock time — a
// throttled request's goroutine is delayed, not its simulated timestamps — so
// the PR 7 timing invariant (identical Acquire order ⇒ bit-identical
// completion times) holds exactly for QoS-off configs (qos == nil, same
// nil-gating idiom as the block cache) and for any serialized issue order.
//
// Background traffic (GC evacuation, flush, prefetch fill issued from within
// an admitted request) is not separately gated: GC is device-owned work, and
// prefetch is charged to the request that triggered it, which already holds a
// dispatch slot.

// TenantQoSConfig enables the fair scheduler and sets the default per-tenant
// parameters; Config.TenantQoS being nil disables the feature entirely.
type TenantQoSConfig struct {
	// Weight is the default relative share per tenant (<= 0 selects 1).
	Weight float64
	// RateBytesPerSec is the default per-tenant token-bucket refill rate;
	// <= 0 leaves tenants uncapped.
	RateBytesPerSec float64
	// BurstBytes is the default token-bucket depth (<= 0 selects the larger
	// of 1 MiB and 100 ms of RateBytesPerSec).
	BurstBytes int64
	// Slots is the number of concurrent dispatch slots; 0 selects the device
	// channel count (one outstanding request per channel keeps the timelines
	// busy without letting one tenant book them arbitrarily deep).
	Slots int
}

// TenantID names one scheduling tenant: a space, or — when bit 63 is set — a
// space group that one or more spaces are bound to.
type TenantID uint64

const tenantGroupBit TenantID = 1 << 63

// SpaceTenant is the tenant identity of an unbound space.
func SpaceTenant(id SpaceID) TenantID { return TenantID(id) }

// GroupTenant is the tenant identity of space group g.
func GroupTenant(g uint32) TenantID { return tenantGroupBit | TenantID(g) }

// IsGroup reports whether the tenant is a space group.
func (t TenantID) IsGroup() bool { return t&tenantGroupBit != 0 }

// Space returns the space a non-group tenant names.
func (t TenantID) Space() SpaceID { return SpaceID(t &^ tenantGroupBit) }

// Group returns the group id of a group tenant.
func (t TenantID) Group() uint32 { return uint32(t &^ tenantGroupBit) }

// TenantStats is one tenant's accumulated accounting.
type TenantStats struct {
	Tenant      TenantID
	Weight      float64  // weight the tenant is currently scheduled under
	Ops         int64    // admitted partition requests
	Bytes       int64    // payload bytes of those requests
	SimBusy     sim.Time // simulated time the requests occupied the device
	QueueWaitNs int64    // wall ns spent queued for a dispatch slot
	ThrottleNs  int64    // wall ns spent blocked on the token bucket
}

type tenantAcct struct {
	ops         atomic.Int64
	bytes       atomic.Int64
	simBusy     atomic.Int64
	queueWaitNs atomic.Int64
	throttleNs  atomic.Int64
}

// qosState is the STL-side tenant table: the scheduler plus the space→group
// bindings and per-tenant counters. nil when QoS is disabled.
type qosState struct {
	sched *sim.FairScheduler

	mu     sync.RWMutex
	groups map[SpaceID]uint32 // space → bound group (absent = own tenant)
	acct   map[TenantID]*tenantAcct
}

func newQosState(cfg TenantQoSConfig, channels int) *qosState {
	slots := cfg.Slots
	if slots <= 0 {
		slots = channels
	}
	return &qosState{
		sched: sim.NewFairScheduler(slots, sim.FlowConfig{
			Weight:          cfg.Weight,
			RateBytesPerSec: cfg.RateBytesPerSec,
			BurstBytes:      cfg.BurstBytes,
		}),
		groups: make(map[SpaceID]uint32),
		acct:   make(map[TenantID]*tenantAcct),
	}
}

// tenantOf resolves the scheduling tenant for a space: its bound group if it
// has one, otherwise the space itself.
func (q *qosState) tenantOf(space SpaceID) TenantID {
	q.mu.RLock()
	g, ok := q.groups[space]
	q.mu.RUnlock()
	if ok {
		return GroupTenant(g)
	}
	return SpaceTenant(space)
}

func (q *qosState) acctOf(id TenantID) *tenantAcct {
	q.mu.RLock()
	a, ok := q.acct[id]
	q.mu.RUnlock()
	if ok {
		return a
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if a, ok = q.acct[id]; ok {
		return a
	}
	a = &tenantAcct{}
	q.acct[id] = a
	return a
}

// qosTicket carries one admitted request's accounting from admit to finish.
type qosTicket struct {
	q     *qosState
	acct  *tenantAcct
	bytes int64
}

// qosAdmit gates one partition request of the given payload size for a space.
// It returns nil immediately when QoS is off; otherwise it blocks through the
// token bucket and the fair queue and returns a ticket whose finish must be
// called exactly once when the request's device operations complete.
func (t *STL) qosAdmit(space SpaceID, bytes int64) *qosTicket {
	q := t.qos
	if q == nil {
		return nil
	}
	id := q.tenantOf(space)
	acct := q.acctOf(id)
	queueWait, throttle := q.sched.Admit(sim.FlowID(id), bytes)
	if queueWait > 0 {
		acct.queueWaitNs.Add(int64(queueWait))
	}
	if throttle > 0 {
		acct.throttleNs.Add(int64(throttle))
	}
	return &qosTicket{q: q, acct: acct, bytes: bytes}
}

// finish releases the request's dispatch slot and records its accounting.
// issue/done bound the request's device occupancy in simulated time; ok is
// false when the request failed (the slot is still released, but only the
// attempt is counted).
func (tk *qosTicket) finish(issue, done sim.Time, ok bool) {
	if tk == nil {
		return
	}
	tk.q.sched.Release()
	tk.acct.ops.Add(1)
	if ok {
		tk.acct.bytes.Add(tk.bytes)
		if done > issue {
			tk.acct.simBusy.Add(int64(done - issue))
		}
	}
}

// qosBytes is the payload size used for admission: the partition's row-major
// byte count. Partitions are full coord/sub boxes, so the product is exact.
func qosBytes(s *Space, sub []int64) int64 {
	return prod(sub) * int64(s.elemSize)
}

// SetTenantQoS overrides one tenant's weight and rate limit. Requests already
// queued keep their tags; new requests schedule under the new parameters.
func (t *STL) SetTenantQoS(id TenantID, weight, rateBytesPerSec float64, burst int64) error {
	if t.qos == nil {
		return fmt.Errorf("stl: tenant QoS is not enabled: %w", ErrInvalid)
	}
	t.qos.sched.SetFlow(sim.FlowID(id), sim.FlowConfig{
		Weight:          weight,
		RateBytesPerSec: rateBytesPerSec,
		BurstBytes:      burst,
	})
	return nil
}

// BindSpaceGroup binds a space to a group tenant so several spaces share one
// weight and one token bucket; group 0 unbinds the space back to its own
// tenant. Takes effect for requests admitted after the call.
func (t *STL) BindSpaceGroup(space SpaceID, group uint32) error {
	if t.qos == nil {
		return fmt.Errorf("stl: tenant QoS is not enabled: %w", ErrInvalid)
	}
	t.qos.mu.Lock()
	if group == 0 {
		delete(t.qos.groups, space)
	} else {
		t.qos.groups[space] = group
	}
	t.qos.mu.Unlock()
	return nil
}

// qosForgetSpace drops a deleted space's tenant state so the flow table stays
// proportional to live tenants. Group tenants persist (other spaces may still
// be bound to them).
func (t *STL) qosForgetSpace(space SpaceID) {
	q := t.qos
	if q == nil {
		return
	}
	id := SpaceTenant(space)
	q.mu.Lock()
	delete(q.groups, space)
	delete(q.acct, id)
	q.mu.Unlock()
	q.sched.Forget(sim.FlowID(id))
}

// TenantStats snapshots per-tenant accounting for every tenant that has been
// scheduled, in ascending TenantID order (spaces before groups). Returns nil
// when QoS is disabled.
func (t *STL) TenantStats() []TenantStats {
	q := t.qos
	if q == nil {
		return nil
	}
	q.mu.RLock()
	out := make([]TenantStats, 0, len(q.acct))
	for id, a := range q.acct {
		out = append(out, TenantStats{
			Tenant:      id,
			Weight:      q.sched.Flow(sim.FlowID(id)).Weight,
			Ops:         a.ops.Load(),
			Bytes:       a.bytes.Load(),
			SimBusy:     sim.Time(a.simBusy.Load()),
			QueueWaitNs: a.queueWaitNs.Load(),
			ThrottleNs:  a.throttleNs.Load(),
		})
	}
	q.mu.RUnlock()
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Tenant < out[j-1].Tenant; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	for i := range out {
		if out[i].Weight <= 0 {
			out[i].Weight = 1
		}
	}
	return out
}
