package stl

import (
	"fmt"

	"nds/internal/nvm"
	"nds/internal/sim"
)

// die tracks per-(channel,bank) log-structured allocation state, mirroring
// the physical constraint that pages within an erase block are programmed in
// order.
type die struct {
	freeBlocks  []int
	activeBlock int
	nextPage    int
	freePages   int64
	validInBlk  []int32
	retired     []bool // per-block: removed from service (nil until first retirement)
}

func (t *STL) die(channel, bank int) *die { return t.dies[channel*t.geo.Banks+bank] }

// takeUnit carves the next programmable page out of the given die, running
// GC when below the low-water mark. It does not touch reverse maps; callers
// bind the unit to a building block.
func (t *STL) takeUnit(at sim.Time, channel, bank int) (nvm.PPA, sim.Time, error) {
	d := t.die(channel, bank)
	lowWater := int64(t.cfg.GCLowWater * float64(t.geo.PagesPerBank()))
	if d.freePages <= lowWater {
		if t.gcFlush != nil {
			if err := t.gcFlush(); err != nil {
				return nvm.PPA{}, at, err
			}
		}
		var err error
		at, err = t.collectDie(at, channel, bank)
		if err != nil {
			return nvm.PPA{}, at, err
		}
	}
	if d.activeBlock < 0 || d.nextPage >= t.geo.PagesPerBlock {
		if len(d.freeBlocks) <= 1 {
			if t.gcFlush != nil {
				if err := t.gcFlush(); err != nil {
					return nvm.PPA{}, at, err
				}
			}
			var err error
			at, err = t.collectDie(at, channel, bank)
			if err != nil {
				return nvm.PPA{}, at, err
			}
		}
		if len(d.freeBlocks) == 0 {
			return nvm.PPA{}, at, fmt.Errorf("stl: die ch%d/bk%d out of free blocks: %w", channel, bank, ErrCapacity)
		}
		d.activeBlock = d.freeBlocks[0]
		d.freeBlocks = d.freeBlocks[1:]
		d.nextPage = 0
	}
	p := nvm.PPA{Channel: channel, Bank: bank, Block: d.activeBlock, Page: d.nextPage}
	d.nextPage++
	d.freePages--
	return p, at, nil
}

// allocateUnit implements the §4.2 allocation policy for page slot idx of a
// building block:
//
//  1. an empty block starts on a random channel and bank;
//  2. otherwise the unit comes from the block's least-used channel, in the
//     same bank as the most recently allocated unit;
//  3. once the block has used every channel in that bank, it moves to an
//     unused or least-used bank;
//  4. when every channel/bank combination is used, the least-used bank is
//     chosen and the sweep repeats.
//
// The chosen die may be full; the policy then falls over to the next
// candidate in least-used order.
func (t *STL) allocateUnit(at sim.Time, s *Space, blk *BuildingBlock) (nvm.PPA, sim.Time, error) {
	if limit := t.effectiveMaxPages(); t.usedPages >= limit {
		return nvm.PPA{}, at, fmt.Errorf("stl: logical capacity exhausted (%d pages): %w", limit, ErrCapacity)
	}
	if t.cfg.NaiveAllocation {
		return t.allocateNaive(at, s, blk)
	}
	var bank int
	switch {
	case blk.used == 0:
		bank = t.rng.Intn(t.geo.Banks) // rule 1
	case blk.used%t.geo.Channels == 0:
		bank = t.leastUsedBank(blk) // rules 3/4: channel sweep complete
	default:
		bank = blk.lastBank // rule 2
	}

	// Try banks in least-used order starting from the policy's choice, and
	// channels in least-used order within each bank, skipping full dies.
	bankOrder := t.bankCandidates(blk, bank)
	for _, bk := range bankOrder {
		for _, ch := range t.channelCandidates(blk, bk) {
			p, ready, err := t.takeUnit(at, ch, bk)
			if err != nil {
				continue // die exhausted; try the next candidate
			}
			blk.chanUse[ch]++
			blk.bankUse[bk]++
			blk.lastBank = bk
			blk.used++
			s.allocatedPages++
			return p, ready, nil
		}
	}
	return nvm.PPA{}, at, fmt.Errorf("stl: no die can supply a free unit: %w", ErrCapacity)
}

// allocateNaive is the ablation allocator: every unit of a block comes from
// one die chosen round-robin (with spill-over to neighbouring dies when
// full), so a block read engages a single channel.
func (t *STL) allocateNaive(at sim.Time, s *Space, blk *BuildingBlock) (nvm.PPA, sim.Time, error) {
	die := int(t.naiveNext)
	if blk.used > 0 && blk.lastBank >= 0 {
		die = blk.naiveDie
	} else {
		t.naiveNext = (t.naiveNext + 1) % int64(len(t.dies))
	}
	for off := 0; off < len(t.dies); off++ {
		d := (die + off) % len(t.dies)
		ch, bk := d/t.geo.Banks, d%t.geo.Banks
		p, ready, err := t.takeUnit(at, ch, bk)
		if err != nil {
			continue
		}
		blk.chanUse[ch]++
		blk.bankUse[bk]++
		blk.lastBank = bk
		blk.naiveDie = d
		blk.used++
		s.allocatedPages++
		return p, ready, nil
	}
	return nvm.PPA{}, at, fmt.Errorf("stl: no die can supply a free unit: %w", ErrCapacity)
}

// allocateReplacement picks a unit from the same channel and bank as an
// overwritten unit (§4.2: "the STL simply picks a page from the same channel
// and bank as the overwritten unit").
func (t *STL) allocateReplacement(at sim.Time, old nvm.PPA) (nvm.PPA, sim.Time, error) {
	return t.takeUnit(at, old.Channel, old.Bank)
}

// leastUsedBank returns the bank with the fewest units in blk, breaking ties
// randomly to spread blocks across the device.
func (t *STL) leastUsedBank(blk *BuildingBlock) int {
	best := []int{}
	bestUse := uint16(^uint16(0))
	for b, u := range blk.bankUse {
		switch {
		case u < bestUse:
			bestUse = u
			best = best[:0]
			best = append(best, b)
		case u == bestUse:
			best = append(best, b)
		}
	}
	return best[t.rng.Intn(len(best))]
}

// bankCandidates lists banks to try: first the preferred bank, then the rest
// in ascending block-usage order.
func (t *STL) bankCandidates(blk *BuildingBlock, preferred int) []int {
	order := make([]int, 0, t.geo.Banks)
	order = append(order, preferred)
	rest := make([]int, 0, t.geo.Banks-1)
	for b := 0; b < t.geo.Banks; b++ {
		if b != preferred {
			rest = append(rest, b)
		}
	}
	// Insertion sort by usage (bank counts are tiny).
	for i := 1; i < len(rest); i++ {
		for j := i; j > 0 && blk.bankUse[rest[j]] < blk.bankUse[rest[j-1]]; j-- {
			rest[j], rest[j-1] = rest[j-1], rest[j]
		}
	}
	return append(order, rest...)
}

// channelCandidates lists channels in ascending block-usage order; among
// equally-used channels, the one whose die has the most free pages first.
func (t *STL) channelCandidates(blk *BuildingBlock, bank int) []int {
	order := make([]int, t.geo.Channels)
	for i := range order {
		order[i] = i
	}
	key := func(ch int) (uint16, int64) {
		return blk.chanUse[ch], -t.die(ch, bank).freePages
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0; j-- {
			ua, fa := key(order[j])
			ub, fb := key(order[j-1])
			if ua < ub || (ua == ub && fa < fb) {
				order[j], order[j-1] = order[j-1], order[j]
			} else {
				break
			}
		}
	}
	return order
}

// bindUnit records the reverse mapping for a freshly programmed unit and
// counts it live. Overwrites pair an invalidateUnit with a bindUnit, so
// usedPages stays balanced.
//
// bindUnit and invalidateUnit are the central cache-invalidation hooks: every
// path that changes which physical unit backs a building-block page — writes,
// overwrites, zero elision, GC evacuation, program-fault relocation, staged
// programs, delete, resize — goes through one or both, and both run only
// under the device's exclusive lock. Invalidation is strict: the whole block
// entry is dropped even when the page's bytes are unchanged (a GC move), so a
// cached block can never disagree with the translation state.
func (t *STL) bindUnit(s *Space, blockIdx int64, pageIdx int, p nvm.PPA) {
	if t.cache != nil {
		t.cache.invalidateBlock(s.id, blockIdx)
	}
	idx := p.Linear(t.geo)
	t.rev[idx] = revEntry{space: s.id, block: blockIdx, page: int32(pageIdx), valid: true}
	t.die(p.Channel, p.Bank).validInBlk[p.Block]++
	t.usedPages++
}

// invalidateUnit drops a unit's reverse mapping and valid count, along with
// any cached copy of the building block the unit belonged to.
func (t *STL) invalidateUnit(p nvm.PPA) {
	idx := p.Linear(t.geo)
	if !t.rev[idx].valid {
		return
	}
	t.cacheInvalidateUnit(p)
	t.rev[idx].valid = false
	t.die(p.Channel, p.Bank).validInBlk[p.Block]--
	t.usedPages--
}
