package stl

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"nds/internal/nvm"
	"nds/internal/sim"
)

// die tracks per-(channel,bank) log-structured allocation state, mirroring
// the physical constraint that pages within an erase block are programmed in
// order.
//
// mu is a leaf lock in the STL's order (space -> die -> cache shard / device
// shard): it guards the allocation cursor, the free-block list, and this
// die's slice of the reverse-lookup table (rev entries whose PPA lands on
// this die, plus validInBlk). freePages is additionally an atomic so
// watermark checks and placement heuristics can read it without taking mu;
// every mutation happens under mu so compound invariants stay intact.
type die struct {
	mu          sync.Mutex
	freeBlocks  []int
	activeBlock int
	nextPage    int
	freePages   atomic.Int64
	validInBlk  []int32
	retired     []bool // per-block: removed from service (nil until first retirement)

	// collecting marks that one GC actor (the background worker or an inline
	// collector) owns victim selection and evacuation on this die. It is a
	// try-only claim, never a blocking lock: nothing that holds a space lock
	// ever blocks on a GC actor, which is what keeps the space->die order
	// deadlock-free.
	collecting bool
}

// carve takes the next programmable page of the die, opening a fresh block
// when the active one is exhausted. Caller holds d.mu.
func (d *die) carve(channel, bank, pagesPerBlock int) (nvm.PPA, bool) {
	if d.activeBlock < 0 || d.nextPage >= pagesPerBlock {
		if len(d.freeBlocks) == 0 {
			return nvm.PPA{}, false
		}
		d.activeBlock = d.freeBlocks[0]
		d.freeBlocks = d.freeBlocks[1:]
		d.nextPage = 0
	}
	p := nvm.PPA{Channel: channel, Bank: bank, Block: d.activeBlock, Page: d.nextPage}
	d.nextPage++
	d.freePages.Add(-1)
	return p, true
}

// carvable reports whether carve would succeed. Caller holds d.mu.
func (d *die) carvable(pagesPerBlock int) bool {
	return (d.activeBlock >= 0 && d.nextPage < pagesPerBlock) || len(d.freeBlocks) > 0
}

func (t *STL) die(channel, bank int) *die { return t.dies[channel*t.geo.Banks+bank] }

// allocCtx carries the per-request context that allocation and garbage
// collection need: the deferred-program flush hook (the batched write path
// and group-commit flush install it so their queued programs land before GC
// issues any device operation, preserving scalar issue order), and the space
// whose write lock the request already holds (so an inline GC commit treats
// it as owned instead of try-locking it against itself).
type allocCtx struct {
	flush func() error
	held  *Space
}

// lowWaterPages is the per-die free-page threshold below which collection is
// wanted; criticalWaterPages is where a foreground write stops trusting the
// background worker and reclaims inline (half the low-water reserve).
func (t *STL) lowWaterPages() int64 {
	return int64(t.cfg.GCLowWater * float64(t.geo.PagesPerBank()))
}

func (t *STL) criticalWaterPages() int64 { return t.lowWaterPages() / 2 }

// highWaterPages is where the background worker stops collecting a die; it
// sits above the low mark so each worker pass buys a batch of foreground
// allocations before the next kick.
func (t *STL) highWaterPages() int64 {
	if t.cfg.GCHighWater > t.cfg.GCLowWater {
		return int64(t.cfg.GCHighWater * float64(t.geo.PagesPerBank()))
	}
	return t.lowWaterPages() + t.lowWaterPages()/2
}

// takeUnit carves the next programmable page out of the given die. With
// synchronous GC (Config.BackgroundGC unset) collection runs inline at
// exactly the original trigger points, so single-threaded runs are
// bit-identical to the pre-concurrent path. With the background worker
// enabled, crossing the low-water mark only kicks the worker; the foreground
// write blocks on reclamation solely when the die is critically dry.
// takeUnit does not touch reverse maps; callers bind the unit to a building
// block.
func (t *STL) takeUnit(at sim.Time, channel, bank int, ac *allocCtx) (nvm.PPA, sim.Time, error) {
	d := t.die(channel, bank)
	if t.cfg.BackgroundGC {
		return t.takeUnitConcurrent(at, d, channel, bank, ac)
	}
	low := t.lowWaterPages()
	if d.freePages.Load() <= low {
		var err error
		if at, err = t.reclaim(at, channel, bank, ac, low); err != nil {
			return nvm.PPA{}, at, err
		}
	}
	d.mu.Lock()
	needBlock := (d.activeBlock < 0 || d.nextPage >= t.geo.PagesPerBlock) && len(d.freeBlocks) <= 1
	d.mu.Unlock()
	if needBlock {
		var err error
		if at, err = t.reclaim(at, channel, bank, ac, low); err != nil {
			return nvm.PPA{}, at, err
		}
	}
	d.mu.Lock()
	p, ok := d.carve(channel, bank, t.geo.PagesPerBlock)
	d.mu.Unlock()
	if !ok {
		return nvm.PPA{}, at, fmt.Errorf("stl: die ch%d/bk%d out of free blocks: %w", channel, bank, ErrCapacity)
	}
	return p, at, nil
}

// reclaim is the synchronous-mode collection step: drain any deferred
// program batch (so GC's device operations keep scalar issue order), then
// collect the die toward target.
func (t *STL) reclaim(at sim.Time, channel, bank int, ac *allocCtx, target int64) (sim.Time, error) {
	if ac != nil && ac.flush != nil {
		if err := ac.flush(); err != nil {
			return at, err
		}
	}
	done, _, err := t.collectDie(at, channel, bank, ac, target)
	return done, err
}

func (t *STL) takeUnitConcurrent(at sim.Time, d *die, channel, bank int, ac *allocCtx) (nvm.PPA, sim.Time, error) {
	low := t.lowWaterPages()
	critical := t.criticalWaterPages()
	d.mu.Lock()
	free := d.freePages.Load()
	var p nvm.PPA
	ok := false
	if free > critical {
		// Above the critical mark every free page is fair game (free pages
		// always live in the open block or the free list, so the carve cannot
		// fail here).
		p, ok = d.carve(channel, bank, t.geo.PagesPerBlock)
	}
	d.mu.Unlock()
	if free <= low {
		t.kickGC()
	}
	if ok {
		return p, at, nil
	}
	// Critically dry: reclaim inline (or wait out whoever holds the die's GC
	// claim), with a bounded wall-clock stall before escalating to ErrMedia.
	var err error
	if at, err = t.reclaimDry(at, channel, bank, ac); err != nil {
		return nvm.PPA{}, at, err
	}
	d.mu.Lock()
	p, ok = d.carve(channel, bank, t.geo.PagesPerBlock)
	d.mu.Unlock()
	if !ok {
		return nvm.PPA{}, at, fmt.Errorf("stl: die ch%d/bk%d out of free blocks: %w", channel, bank, ErrCapacity)
	}
	return p, at, nil
}

const (
	// gcStallPoll is how often a critically-dry foreground write re-checks a
	// die whose GC claim another actor holds.
	gcStallPoll = 50 * time.Microsecond
	// gcStallLimit bounds the total wall-clock time a foreground write waits
	// on reclamation before escalating to ErrMedia.
	gcStallLimit = 250 * time.Millisecond
)

// reclaimDry is the background-mode slow path: the die is at or below the
// critical watermark (or cannot open a block), so the write must reclaim
// inline or wait for the actor that holds the die's GC claim. All wall-clock
// time spent here is charged to GCStallNs; by construction it is only
// entered below the critical mark, so a write above the low watermark never
// stalls on GC.
func (t *STL) reclaimDry(at sim.Time, channel, bank int, ac *allocCtx) (sim.Time, error) {
	d := t.die(channel, bank)
	start := time.Now()
	defer func() { t.gcStallNs.Add(time.Since(start).Nanoseconds()) }()
	if ac != nil && ac.flush != nil {
		if err := ac.flush(); err != nil {
			return at, err
		}
	}
	critical := t.criticalWaterPages()
	for {
		d.mu.Lock()
		usable := d.carvable(t.geo.PagesPerBlock) && d.freePages.Load() > 0
		recovered := d.freePages.Load() > critical
		d.mu.Unlock()
		if usable && recovered {
			return at, nil
		}
		done, outcome, err := t.collectDie(at, channel, bank, ac, critical)
		if err != nil {
			return at, err
		}
		switch outcome {
		case gcProgress:
			at = sim.Max(at, done)
			continue
		case gcNothing:
			// Nothing reclaimable: a genuine capacity condition. Carve what is
			// left (the caller falls over to another die or reports
			// ErrCapacity) instead of burning the stall budget.
			return at, nil
		}
		// gcBusy: another actor owns the claim (or holds the space locks the
		// commit needs); wait for it to release or replenish the die.
		if time.Since(start) > gcStallLimit {
			return at, fmt.Errorf("stl: die ch%d/bk%d critically dry and reclamation stalled: %w",
				channel, bank, ErrMedia)
		}
		time.Sleep(gcStallPoll)
	}
}

// allocateUnit implements the §4.2 allocation policy for page slot idx of a
// building block:
//
//  1. an empty block starts on a random channel and bank;
//  2. otherwise the unit comes from the block's least-used channel, in the
//     same bank as the most recently allocated unit;
//  3. once the block has used every channel in that bank, it moves to an
//     unused or least-used bank;
//  4. when every channel/bank combination is used, the least-used bank is
//     chosen and the sweep repeats.
//
// The chosen die may be full; the policy then falls over to the next
// candidate in least-used order. Callers hold the space's write lock (or an
// equivalent exclusive context), which protects blk and s.
func (t *STL) allocateUnit(at sim.Time, s *Space, blk *BuildingBlock, ac *allocCtx) (nvm.PPA, sim.Time, error) {
	if limit := t.effectiveMaxPages(); t.usedPages.Load() >= limit {
		return nvm.PPA{}, at, fmt.Errorf("stl: logical capacity exhausted (%d pages): %w", limit, ErrCapacity)
	}
	if t.cfg.NaiveAllocation {
		return t.allocateNaive(at, s, blk, ac)
	}
	var bank int
	switch {
	case blk.used == 0:
		bank = t.randIntn(t.geo.Banks) // rule 1
	case blk.used%t.geo.Channels == 0:
		bank = t.leastUsedBank(blk) // rules 3/4: channel sweep complete
	default:
		bank = blk.lastBank // rule 2
	}

	// Try banks in least-used order starting from the policy's choice, and
	// channels in least-used order within each bank, skipping full dies.
	bankOrder := t.bankCandidates(blk, bank)
	for _, bk := range bankOrder {
		for _, ch := range t.channelCandidates(blk, bk) {
			p, ready, err := t.takeUnit(at, ch, bk, ac)
			if err != nil {
				continue // die exhausted; try the next candidate
			}
			blk.chanUse[ch]++
			blk.bankUse[bk]++
			blk.lastBank = bk
			blk.used++
			s.allocatedPages++
			return p, ready, nil
		}
	}
	return nvm.PPA{}, at, fmt.Errorf("stl: no die can supply a free unit: %w", ErrCapacity)
}

// allocateNaive is the ablation allocator: every unit of a block comes from
// one die chosen round-robin (with spill-over to neighbouring dies when
// full), so a block read engages a single channel.
func (t *STL) allocateNaive(at sim.Time, s *Space, blk *BuildingBlock, ac *allocCtx) (nvm.PPA, sim.Time, error) {
	var die int
	if blk.used > 0 && blk.lastBank >= 0 {
		die = blk.naiveDie
	} else {
		die = int(t.naiveNext.Add(1)-1) % len(t.dies)
	}
	for off := 0; off < len(t.dies); off++ {
		d := (die + off) % len(t.dies)
		ch, bk := d/t.geo.Banks, d%t.geo.Banks
		p, ready, err := t.takeUnit(at, ch, bk, ac)
		if err != nil {
			continue
		}
		blk.chanUse[ch]++
		blk.bankUse[bk]++
		blk.lastBank = bk
		blk.naiveDie = d
		blk.used++
		s.allocatedPages++
		return p, ready, nil
	}
	return nvm.PPA{}, at, fmt.Errorf("stl: no die can supply a free unit: %w", ErrCapacity)
}

// allocateReplacement picks a unit from the same channel and bank as an
// overwritten unit (§4.2: "the STL simply picks a page from the same channel
// and bank as the overwritten unit"). With the background worker enabled, a
// dry die falls over to any die with room — data placement beats strict
// same-die replacement once foreground writes no longer wait for inline
// collection (documented deviation, see DESIGN.md); synchronous mode keeps
// the strict behaviour.
func (t *STL) allocateReplacement(at sim.Time, old nvm.PPA, ac *allocCtx) (nvm.PPA, sim.Time, error) {
	p, done, err := t.takeUnit(at, old.Channel, old.Bank, ac)
	if err == nil || !t.cfg.BackgroundGC {
		return p, done, err
	}
	if np, ok := t.allocateRecoveryUnit(old); ok {
		return np, at, nil
	}
	return p, done, err
}

// randIntn draws from the shared policy RNG under its lock.
func (t *STL) randIntn(n int) int {
	t.rngMu.Lock()
	v := t.rng.Intn(n)
	t.rngMu.Unlock()
	return v
}

// leastUsedBank returns the bank with the fewest units in blk, breaking ties
// randomly to spread blocks across the device.
func (t *STL) leastUsedBank(blk *BuildingBlock) int {
	best := []int{}
	bestUse := uint16(^uint16(0))
	for b, u := range blk.bankUse {
		switch {
		case u < bestUse:
			bestUse = u
			best = best[:0]
			best = append(best, b)
		case u == bestUse:
			best = append(best, b)
		}
	}
	if len(best) == 1 {
		return best[0]
	}
	return best[t.randIntn(len(best))]
}

// bankCandidates lists banks to try: first the preferred bank, then the rest
// in ascending block-usage order.
func (t *STL) bankCandidates(blk *BuildingBlock, preferred int) []int {
	order := make([]int, 0, t.geo.Banks)
	order = append(order, preferred)
	rest := make([]int, 0, t.geo.Banks-1)
	for b := 0; b < t.geo.Banks; b++ {
		if b != preferred {
			rest = append(rest, b)
		}
	}
	// Insertion sort by usage (bank counts are tiny).
	for i := 1; i < len(rest); i++ {
		for j := i; j > 0 && blk.bankUse[rest[j]] < blk.bankUse[rest[j-1]]; j-- {
			rest[j], rest[j-1] = rest[j-1], rest[j]
		}
	}
	return append(order, rest...)
}

// channelCandidates lists channels in ascending block-usage order; among
// equally-used channels, the one whose die has the most free pages first.
// freePages is read without the die lock — it is a placement heuristic, and
// a slightly stale value only reorders fall-over candidates.
func (t *STL) channelCandidates(blk *BuildingBlock, bank int) []int {
	order := make([]int, t.geo.Channels)
	for i := range order {
		order[i] = i
	}
	key := func(ch int) (uint16, int64) {
		return blk.chanUse[ch], -t.die(ch, bank).freePages.Load()
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0; j-- {
			ua, fa := key(order[j])
			ub, fb := key(order[j-1])
			if ua < ub || (ua == ub && fa < fb) {
				order[j], order[j-1] = order[j-1], order[j]
			} else {
				break
			}
		}
	}
	return order
}

// bindUnit records the reverse mapping for a freshly programmed unit and
// counts it live. Overwrites pair an invalidateUnit with a bindUnit, so
// usedPages stays balanced.
//
// bindUnit and invalidateUnit are the central cache-invalidation hooks: every
// path that changes which physical unit backs a building-block page — writes,
// overwrites, zero elision, GC evacuation, program-fault relocation, staged
// programs, delete, resize — goes through one or both. Both take the owning
// die's lock internally (the rev table is sharded by die) and require the
// unit's space to be write-locked or otherwise exclusive, so no concurrent
// reader can observe the transition. Invalidation is strict: the whole block
// entry is dropped even when the page's bytes are unchanged (a GC move), so a
// cached block can never disagree with the translation state.
func (t *STL) bindUnit(s *Space, blockIdx int64, pageIdx int, p nvm.PPA) {
	if t.cache != nil {
		t.cache.invalidateBlock(s.id, blockIdx)
	}
	d := t.die(p.Channel, p.Bank)
	d.mu.Lock()
	t.rev[p.Linear(t.geo)] = revEntry{space: s.id, block: blockIdx, page: int32(pageIdx), valid: true}
	d.validInBlk[p.Block]++
	d.mu.Unlock()
	t.usedPages.Add(1)
}

// invalidateUnit drops a unit's reverse mapping and valid count, along with
// any cached copy of the building block the unit belonged to.
func (t *STL) invalidateUnit(p nvm.PPA) {
	d := t.die(p.Channel, p.Bank)
	idx := p.Linear(t.geo)
	d.mu.Lock()
	e := t.rev[idx]
	if !e.valid {
		d.mu.Unlock()
		return
	}
	t.rev[idx].valid = false
	d.validInBlk[p.Block]--
	d.mu.Unlock()
	t.usedPages.Add(-1)
	if t.cache != nil {
		// The exclusive context that invalidates (space write lock, delete,
		// resize) also prevents concurrent readers of this block, so dropping
		// the cache entry after the rev update cannot race a stale re-read.
		t.cache.invalidateBlock(e.space, e.block)
	}
}
