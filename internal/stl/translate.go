package stl

import "fmt"

// The space translator (§4.3). An application opens a space with its own view
// dimensionality (delta_1..delta_m) — any shape whose volume matches the
// space — and addresses data with a partition coordinate (x_1..x_m) plus a
// sub-dimensionality (f_1..f_m): the partition covers view elements
// [x_i*f_i, (x_i+1)*f_i) in each dimension (clamped at the view boundary).
//
// Both the view and the storage space linearize elements in row-major order
// over the same underlying sequence, so view-linear index and storage-linear
// index coincide; the translator decomposes a partition into maximal runs of
// consecutive linear indices and maps each run onto byte extents within
// building blocks — the concrete realisation of the paper's Equation 5.

// Extent is a contiguous byte range within one building block, paired with
// its destination offset in the partition buffer.
type Extent struct {
	Block int64 // row-major building-block grid index
	Off   int64 // byte offset within the building block
	Len   int64 // length in bytes
	Dst   int64 // byte offset within the partition buffer
}

// View is a validated application view of a space.
type View struct {
	space *Space
	dims  []int64
}

// NewView validates an application view of space s: every dimension positive
// and the volume equal to the space volume (§3: "the volumes of these two
// dimensionalities [must] match").
func NewView(s *Space, dims []int64) (*View, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("stl: view needs at least one dimension: %w", ErrInvalid)
	}
	for i, d := range dims {
		if d <= 0 {
			return nil, fmt.Errorf("stl: view dimension %d is %d, must be positive: %w", i, d, ErrInvalid)
		}
	}
	if prod(dims) != s.Volume() {
		return nil, fmt.Errorf("stl: view volume %d does not match space volume %d: %w", prod(dims), s.Volume(), ErrInvalid)
	}
	return &View{space: s, dims: append([]int64(nil), dims...)}, nil
}

// Dims returns a copy of the view shape.
func (v *View) Dims() []int64 { return append([]int64(nil), v.dims...) }

// Space returns the underlying space.
func (v *View) Space() *Space { return v.space }

// PartitionShape returns the clamped extent of the partition at coord with
// sub-dimensionality sub, along with the element count.
func (v *View) PartitionShape(coord, sub []int64) ([]int64, int64, error) {
	shape := make([]int64, len(v.dims))
	elems, err := v.partitionShapeInto(coord, sub, shape)
	if err != nil {
		return nil, 0, err
	}
	return shape, elems, nil
}

// partitionShapeInto is PartitionShape writing into a caller-supplied shape
// slice (len(v.dims) entries) so the pooled request path allocates nothing.
func (v *View) partitionShapeInto(coord, sub []int64, shape []int64) (int64, error) {
	m := len(v.dims)
	if len(coord) != m || len(sub) != m {
		return 0, fmt.Errorf("stl: coordinate/sub-dimensionality rank %d/%d does not match view rank %d: %w",
			len(coord), len(sub), m, ErrInvalid)
	}
	for i := 0; i < m; i++ {
		if sub[i] <= 0 {
			return 0, fmt.Errorf("stl: sub-dimension %d is %d, must be positive: %w", i, sub[i], ErrInvalid)
		}
		lo := coord[i] * sub[i]
		hi := lo + sub[i]
		if coord[i] < 0 || lo >= v.dims[i] {
			return 0, fmt.Errorf("stl: coordinate %d=%d out of view dimension %d: %w", i, coord[i], v.dims[i], ErrBounds)
		}
		if hi > v.dims[i] {
			hi = v.dims[i]
		}
		shape[i] = hi - lo
	}
	return prod(shape), nil
}

// Extents decomposes the partition at coord/sub into building-block byte
// extents ordered by destination offset. The extent list is exact: its
// destinations tile [0, elements*elemSize) without gaps or overlaps.
func (v *View) Extents(coord, sub []int64) ([]Extent, error) {
	shape, elems, err := v.PartitionShape(coord, sub)
	if err != nil {
		return nil, err
	}
	m, n := len(v.dims), len(v.space.dims)
	exts, _ := v.extentsInto(coord, sub, shape, elems,
		make([]int64, m), make([]int64, m), make([]int64, n), nil)
	return exts, nil
}

// extentsInto is the allocation-free core of Extents: shape holds the
// already-computed partition shape, outer/cur/sc are caller-supplied counter
// slices (len m, m, n), and extents are appended to exts (which may carry
// reusable capacity). It returns the extent list and the run count.
func (v *View) extentsInto(coord, sub, shape []int64, elems int64, outer, cur, sc []int64, exts []Extent) ([]Extent, int64) {
	s := v.space
	es := int64(s.elemSize)
	m := len(v.dims)
	n := len(s.dims)

	// Iterate over the partition's outer coordinates; each step yields a run
	// of shape[m-1] consecutive view-linear (== storage-linear) elements.
	for i := range outer {
		outer[i] = 0
	}
	runLen := shape[m-1]
	runs := elems / runLen
	var dst int64
	for r := int64(0); r < runs; r++ {
		for i := 0; i < m; i++ {
			cur[i] = coord[i]*sub[i] + outer[i]
		}
		l := rank(cur, v.dims)
		remaining := runLen
		for remaining > 0 {
			unrank(l, s.dims, sc)
			// Longest stretch within the current storage row.
			t := s.dims[n-1] - sc[n-1]
			if t > remaining {
				t = remaining
			}
			// Split the row stretch at building-block boundaries of the last
			// storage dimension.
			pos := sc[n-1]
			end := sc[n-1] + t
			for pos < end {
				bbLast := s.bb[n-1]
				take := bbLast - pos%bbLast
				if take > end-pos {
					take = end - pos
				}
				// Grid coordinate and in-block offset.
				var gIdx, off int64
				for i := 0; i < n; i++ {
					c := sc[i]
					if i == n-1 {
						c = pos
					}
					gIdx = gIdx*s.grid[i] + c/s.bb[i]
					off = off*s.bb[i] + c%s.bb[i]
				}
				exts = append(exts, Extent{
					Block: gIdx,
					Off:   off * es,
					Len:   take * es,
					Dst:   dst,
				})
				dst += take * es
				pos += take
			}
			l += t
			remaining -= t
		}
		// Advance outer counters (last outer dimension fastest).
		for i := m - 2; i >= 0; i-- {
			outer[i]++
			if outer[i] < shape[i] {
				break
			}
			outer[i] = 0
		}
	}
	return exts, runs
}

// BlockGridIndex returns the row-major grid index of grid coordinate g.
func (s *Space) BlockGridIndex(g []int64) int64 { return rank(g, s.grid) }

// GridCoord fills out with the grid coordinate of row-major grid index idx.
func (s *Space) GridCoord(idx int64, out []int64) { unrank(idx, s.grid, out) }
