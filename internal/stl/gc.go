package stl

import (
	"errors"
	"fmt"

	"nds/internal/nvm"
	"nds/internal/sim"
)

// Garbage collection (§4.2): when the free units of any channel/bank
// combination fall below the low-water threshold, the STL reclaims
// invalidated units. Unlike a conventional FTL, the reverse-lookup table maps
// each surviving unit straight back to its building block, so mapping updates
// are O(1) per relocated page.

// collectDie reclaims space on one die until it is above its low-water mark.
// Collection is best-effort: it stops without error when no victim block
// would net free space.
func (t *STL) collectDie(at sim.Time, channel, bank int) (sim.Time, error) {
	d := t.die(channel, bank)
	lowWater := int64(t.cfg.GCLowWater * float64(t.geo.PagesPerBank()))
	for d.freePages <= lowWater {
		victim := t.pickVictim(channel, bank)
		if victim < 0 && d.activeBlock >= 0 && d.validInBlk[d.activeBlock] < int32(d.nextPage) {
			// Reclaimable pages sit only in the open block: close it.
			d.freePages -= int64(t.geo.PagesPerBlock - d.nextPage)
			d.activeBlock = -1
			victim = t.pickVictim(channel, bank)
		}
		if victim < 0 {
			return at, nil // nothing reclaimable
		}
		survivors := int64(d.validInBlk[victim])
		room := int64(len(d.freeBlocks)) * int64(t.geo.PagesPerBlock)
		if d.activeBlock >= 0 {
			room += int64(t.geo.PagesPerBlock - d.nextPage)
		}
		if room < survivors {
			return at, nil
		}
		var err error
		at, err = t.evacuateBlock(at, channel, bank, victim)
		if err != nil {
			return at, err
		}
	}
	return at, nil
}

// pickVictim chooses the closed block with the fewest valid pages among
// those with reclaimable pages; -1 if none.
func (t *STL) pickVictim(channel, bank int) int {
	d := t.die(channel, bank)
	free := make(map[int]bool, len(d.freeBlocks))
	for _, b := range d.freeBlocks {
		free[b] = true
	}
	best, bestScore := -1, int32(1<<30)
	for b := 0; b < t.geo.BlocksPerBank; b++ {
		if b == d.activeBlock || free[b] {
			continue
		}
		if d.retired != nil && d.retired[b] {
			// Retired blocks are never erased; evacuating one nets nothing,
			// and its valid pages stay readable in place.
			continue
		}
		v := d.validInBlk[b]
		if v >= int32(t.geo.PagesPerBlock) {
			continue
		}
		if v < bestScore {
			best, bestScore = b, v
		}
	}
	return best
}

// gcMove is one planned relocation: a valid source unit and the translation
// state that must be rebound once its data lands on the destination.
type gcMove struct {
	src      nvm.PPA
	space    *Space
	blk      *BuildingBlock
	blockIdx int64
	page     int32
}

// evacuateBlock relocates the victim's valid units within the die (so each
// building block keeps its channel/bank spread), updates their building
// blocks through the reverse-lookup table, and erases the victim.
//
// The move is effectively atomic on error: every rebind target is resolved
// and every destination unit carved before any byte is programmed, so a
// translation inconsistency or out-of-space condition surfaces with the
// source mappings still live and nothing leaked. Data moves through the
// batched device path (one ReadPages and one ProgramPages per victim);
// injected program faults relocate to fresh units, and an erase fault or
// worn-out victim is retired in place rather than reported as an error.
func (t *STL) evacuateBlock(at sim.Time, channel, bank, block int) (sim.Time, error) {
	d := t.die(channel, bank)

	// Plan: collect the victim's valid units and validate their rebind
	// targets before touching the device.
	var moves []gcMove
	for pg := 0; pg < t.geo.PagesPerBlock; pg++ {
		src := nvm.PPA{Channel: channel, Bank: bank, Block: block, Page: pg}
		entry := t.rev[src.Linear(t.geo)]
		if !entry.valid {
			continue
		}
		s, ok := t.spaces[entry.space]
		if !ok {
			return at, fmt.Errorf("stl: GC found unit of unknown space %d", entry.space)
		}
		gcoord := make([]int64, len(s.grid))
		s.GridCoord(entry.block, gcoord)
		blk, _ := t.block(s, gcoord, false)
		if blk == nil {
			return at, fmt.Errorf("stl: GC reverse entry names missing block %d of space %d", entry.block, s.id)
		}
		moves = append(moves, gcMove{src: src, space: s, blk: blk, blockIdx: entry.block, page: entry.page})
	}

	done := at
	if len(moves) > 0 {
		room := int64(len(d.freeBlocks)) * int64(t.geo.PagesPerBlock)
		if d.activeBlock >= 0 {
			room += int64(t.geo.PagesPerBlock - d.nextPage)
		}
		if room < int64(len(moves)) {
			return at, fmt.Errorf("stl: GC relocation out of space on ch%d/bk%d: %w", channel, bank, ErrCapacity)
		}
		srcs := make([]nvm.PPA, len(moves))
		datas := make([][]byte, len(moves))
		for i := range moves {
			srcs[i] = moves[i].src
		}
		readDone, err := t.dev.ReadPages(at, srcs, datas)
		if err != nil {
			return at, err
		}
		// Carve every destination up front (the room check above guarantees
		// the die can supply them), then land the whole block in one batch.
		ops := make([]nvm.ProgramOp, len(moves))
		for i := range moves {
			dst, ok := t.takeUnitRaw(channel, bank)
			if !ok {
				return at, fmt.Errorf("stl: GC relocation out of space on ch%d/bk%d: %w", channel, bank, ErrCapacity)
			}
			ops[i] = nvm.ProgramOp{At: readDone, P: dst, Data: datas[i]}
		}
		done, err = t.gcProgramBatch(ops)
		if err != nil {
			// Nothing was rebound: the source mappings are still authoritative
			// and any orphan destination copies sit unbound in blocks GC will
			// reclaim normally.
			return at, err
		}
		for i := range moves {
			m := &moves[i]
			m.blk.pages[m.page].ppa = ops[i].P
			t.invalidateUnit(m.src)
			t.bindUnit(m.space, m.blockIdx, int(m.page), ops[i].P)
			t.gcMoves++
		}
	}

	eraseDone, err := t.dev.EraseBlock(done, nvm.PPA{Channel: channel, Bank: bank, Block: block})
	if err != nil {
		if errors.Is(err, nvm.ErrEraseFault) || errors.Is(err, nvm.ErrWornOut) {
			// The victim's data is already out; the block just can't rejoin
			// the free pool. Retire it and carry on.
			t.retireBlock(channel, bank, block)
			return eraseDone, nil
		}
		return done, err
	}
	d.freeBlocks = append(d.freeBlocks, block)
	d.freePages += int64(t.geo.PagesPerBlock)
	t.gcErases++
	return eraseDone, nil
}

// gcProgramBatch lands a GC relocation batch, recovering from injected
// program faults: the faulted op's block is retired, the op is redirected to
// a fresh unit, and the remainder of the batch retries from the failed
// attempt's completion. Ops are not yet bound, so recovery only rewrites the
// batch itself.
func (t *STL) gcProgramBatch(ops []nvm.ProgramOp) (sim.Time, error) {
	var done sim.Time
	retries := 0
	for len(ops) > 0 {
		d, err := t.dev.ProgramPages(ops)
		var pe *nvm.ProgramError
		if err == nil || !errors.As(err, &pe) {
			return sim.Max(done, d), err
		}
		done = sim.Max(done, d)
		if pe.Index > 0 {
			retries = 0 // progress since the last fault
		}
		ops = ops[pe.Index:]
		t.retireBlock(pe.P.Channel, pe.P.Bank, pe.P.Block)
		if retries++; retries > maxProgramRetries {
			return done, fmt.Errorf("stl: GC relocation of %v: %d relocation attempts failed: %w", pe.P, retries, ErrMedia)
		}
		np, ok := t.allocateRecoveryUnit(pe.P)
		if !ok {
			return done, fmt.Errorf("stl: no unit available to relocate faulted GC program at %v: %w", pe.P, ErrMedia)
		}
		t.programRetries++
		ops[0].P = np
		ops[0].At = pe.Done
	}
	return done, nil
}
