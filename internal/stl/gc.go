package stl

import (
	"fmt"

	"nds/internal/nvm"
	"nds/internal/sim"
)

// Garbage collection (§4.2): when the free units of any channel/bank
// combination fall below the low-water threshold, the STL reclaims
// invalidated units. Unlike a conventional FTL, the reverse-lookup table maps
// each surviving unit straight back to its building block, so mapping updates
// are O(1) per relocated page.

// collectDie reclaims space on one die until it is above its low-water mark.
// Collection is best-effort: it stops without error when no victim block
// would net free space.
func (t *STL) collectDie(at sim.Time, channel, bank int) (sim.Time, error) {
	d := t.die(channel, bank)
	lowWater := int64(t.cfg.GCLowWater * float64(t.geo.PagesPerBank()))
	for d.freePages <= lowWater {
		victim := t.pickVictim(channel, bank)
		if victim < 0 && d.activeBlock >= 0 && d.validInBlk[d.activeBlock] < int32(d.nextPage) {
			// Reclaimable pages sit only in the open block: close it.
			d.freePages -= int64(t.geo.PagesPerBlock - d.nextPage)
			d.activeBlock = -1
			victim = t.pickVictim(channel, bank)
		}
		if victim < 0 {
			return at, nil // nothing reclaimable
		}
		survivors := int64(d.validInBlk[victim])
		room := int64(len(d.freeBlocks)) * int64(t.geo.PagesPerBlock)
		if d.activeBlock >= 0 {
			room += int64(t.geo.PagesPerBlock - d.nextPage)
		}
		if room < survivors {
			return at, nil
		}
		var err error
		at, err = t.evacuateBlock(at, channel, bank, victim)
		if err != nil {
			return at, err
		}
	}
	return at, nil
}

// pickVictim chooses the closed block with the fewest valid pages among
// those with reclaimable pages; -1 if none.
func (t *STL) pickVictim(channel, bank int) int {
	d := t.die(channel, bank)
	free := make(map[int]bool, len(d.freeBlocks))
	for _, b := range d.freeBlocks {
		free[b] = true
	}
	best, bestScore := -1, int32(1<<30)
	for b := 0; b < t.geo.BlocksPerBank; b++ {
		if b == d.activeBlock || free[b] {
			continue
		}
		v := d.validInBlk[b]
		if v >= int32(t.geo.PagesPerBlock) {
			continue
		}
		if v < bestScore {
			best, bestScore = b, v
		}
	}
	return best
}

// evacuateBlock relocates the victim's valid units within the die (so each
// building block keeps its channel/bank spread), updates their building
// blocks through the reverse-lookup table, and erases the victim.
func (t *STL) evacuateBlock(at sim.Time, channel, bank, block int) (sim.Time, error) {
	d := t.die(channel, bank)
	for pg := 0; pg < t.geo.PagesPerBlock; pg++ {
		src := nvm.PPA{Channel: channel, Bank: bank, Block: block, Page: pg}
		entry := t.rev[src.Linear(t.geo)]
		if !entry.valid {
			continue
		}
		s, ok := t.spaces[entry.space]
		if !ok {
			return at, fmt.Errorf("stl: GC found unit of unknown space %d", entry.space)
		}
		data, done, err := t.dev.ReadPage(at, src)
		if err != nil {
			return at, err
		}
		if d.activeBlock < 0 || d.nextPage >= t.geo.PagesPerBlock {
			if len(d.freeBlocks) == 0 {
				return at, fmt.Errorf("stl: GC relocation out of space on ch%d/bk%d", channel, bank)
			}
			d.activeBlock = d.freeBlocks[0]
			d.freeBlocks = d.freeBlocks[1:]
			d.nextPage = 0
		}
		dst := nvm.PPA{Channel: channel, Bank: bank, Block: d.activeBlock, Page: d.nextPage}
		d.nextPage++
		d.freePages--
		done, err = t.dev.ProgramPage(done, dst, data)
		if err != nil {
			return at, err
		}
		// Rebind: locate the building block via the reverse entry and point
		// its page slot at the new unit.
		gcoord := make([]int64, len(s.grid))
		s.GridCoord(entry.block, gcoord)
		blk, _ := t.block(s, gcoord, false)
		if blk == nil {
			return at, fmt.Errorf("stl: GC reverse entry names missing block %d of space %d", entry.block, s.id)
		}
		blk.pages[entry.page].ppa = dst
		t.invalidateUnit(src)
		t.bindUnit(s, entry.block, int(entry.page), dst)
		t.gcMoves++
		at = sim.Max(at, done)
	}
	done, err := t.dev.EraseBlock(at, nvm.PPA{Channel: channel, Bank: bank, Block: block})
	if err != nil {
		return at, err
	}
	d.freeBlocks = append(d.freeBlocks, block)
	d.freePages += int64(t.geo.PagesPerBlock)
	t.gcErases++
	return done, nil
}
