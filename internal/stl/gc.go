package stl

import (
	"errors"
	"fmt"
	"time"

	"nds/internal/nvm"
	"nds/internal/sim"
)

// Garbage collection (§4.2): when the free units of any channel/bank
// combination fall below the low-water threshold, the STL reclaims
// invalidated units. Unlike a conventional FTL, the reverse-lookup table maps
// each surviving unit straight back to its building block, so mapping updates
// are O(1) per relocated page.
//
// Collection runs in one of two modes:
//
//   - Synchronous (Config.BackgroundGC unset): collectDie runs inline in the
//     foreground write path at the original trigger points, so
//     single-threaded runs — including fault-replay determinism tests — are
//     unchanged.
//   - Background: a worker goroutine sweeps dies whose free pages fell below
//     the low watermark up to the high watermark, and foreground writes only
//     collect inline (bounded, with ErrMedia escalation) when a die is
//     critically dry.
//
// Either way, evacuation is three-phase so it can run concurrently with
// readers and writers of unrelated spaces: (1) snapshot the victim's valid
// units from the reverse-lookup table under the die lock; (2) try-lock the
// owning spaces in ascending-ID order and re-validate the snapshot — if any
// space lock cannot be had (a writer owns it), the pass is abandoned, so a GC
// actor never blocks a lock holder and the space -> die order stays
// deadlock-free; (3) under those locks, read the sources, program copies into
// freshly carved units, rebind, and erase the victim.
//
// Taking the space locks *before* reading the sources is load-bearing: the
// batched write path binds a unit when its program is queued and only drains
// the queue while still holding the space's write lock, so a unit observed
// valid while we hold that lock is guaranteed to be programmed. Reading
// first and locking later could capture a pre-program (all-zero) image of
// such a unit and then commit it after the writer unlocks, losing the write.
// A fault or an abort at any point leaves the sources authoritative and at
// worst orphans unbound copies in blocks a later pass reclaims.

// gcOutcome classifies one collection attempt.
type gcOutcome int

const (
	gcProgress gcOutcome = iota // reclaimed (or retired) at least one block
	gcNothing                   // nothing reclaimable on this die
	gcBusy                      // claim or commit locks unavailable; retry later
)

// gcCommitTries bounds how many times an evacuation retries the commit-phase
// space try-locks before abandoning the pass.
const gcCommitTries = 100

// collectDie reclaims space on one die until its free pages exceed target.
// Collection is best-effort: it stops without error when no victim block
// would net free space, and reports gcBusy without collecting when another
// actor holds the die's claim.
func (t *STL) collectDie(at sim.Time, channel, bank int, ac *allocCtx, target int64) (sim.Time, gcOutcome, error) {
	d := t.die(channel, bank)
	d.mu.Lock()
	if d.collecting {
		d.mu.Unlock()
		return at, gcBusy, nil
	}
	d.collecting = true
	d.mu.Unlock()
	defer func() {
		d.mu.Lock()
		d.collecting = false
		d.mu.Unlock()
	}()
	t.gcRuns.Add(1)

	outcome := gcNothing
	var busy []int // victims skipped because their owners' locks were unavailable
	for {
		d.mu.Lock()
		if d.freePages.Load() > target {
			d.mu.Unlock()
			break
		}
		victim := t.pickVictimLocked(d, channel, bank, busy)
		if victim < 0 && d.activeBlock >= 0 && d.validInBlk[d.activeBlock] < int32(d.nextPage) {
			// Reclaimable pages sit only in the open block: close it.
			d.freePages.Add(-int64(t.geo.PagesPerBlock - d.nextPage))
			d.activeBlock = -1
			victim = t.pickVictimLocked(d, channel, bank, busy)
		}
		if victim < 0 {
			d.mu.Unlock()
			break // nothing reclaimable
		}
		survivors := int64(d.validInBlk[victim])
		room := int64(len(d.freeBlocks)) * int64(t.geo.PagesPerBlock)
		if d.activeBlock >= 0 {
			room += int64(t.geo.PagesPerBlock - d.nextPage)
		}
		d.mu.Unlock()
		if room < survivors {
			break
		}
		done, res, err := t.evacuateBlock(at, channel, bank, victim, ac)
		if err != nil {
			return at, outcome, err
		}
		if res == gcBusy {
			// A writer owns one of the victim's spaces. Move on to the
			// next-best victim instead of spinning on this one: a block whose
			// units belong to idle spaces (or to no space at all) can still
			// make progress while the busy one stays locked.
			if outcome == gcNothing {
				outcome = gcBusy
			}
			busy = append(busy, victim)
			continue
		}
		if res != gcProgress {
			if outcome == gcNothing {
				outcome = res
			}
			break
		}
		at = sim.Max(at, done)
		outcome = gcProgress
	}
	return at, outcome, nil
}

// pickVictimLocked chooses the GC victim among closed, unretired, not
// fully-valid blocks: greedy most-invalid first, but within a band of
// near-greedy candidates (valid counts within PagesPerBlock/8 of the
// minimum) the block with the fewest lifetime erases wins, so collection
// doubles as intra-die wear leveling. With uniform erase counts the choice
// degenerates to the plain greedy policy (lowest valid count, lowest block
// index). Blocks listed in exclude (victims already found busy this pass) are
// skipped. -1 if no block is eligible. Caller holds d.mu.
func (t *STL) pickVictimLocked(d *die, channel, bank int, exclude []int) int {
	free := make(map[int]bool, len(d.freeBlocks))
	for _, b := range d.freeBlocks {
		free[b] = true
	}
	eligible := func(b int) bool {
		if b == d.activeBlock || free[b] {
			return false
		}
		for _, x := range exclude {
			if b == x {
				return false
			}
		}
		if d.retired != nil && d.retired[b] {
			// Retired blocks are never erased; evacuating one nets nothing,
			// and its valid pages stay readable in place.
			return false
		}
		return d.validInBlk[b] < int32(t.geo.PagesPerBlock)
	}
	minValid := int32(1 << 30)
	for b := 0; b < t.geo.BlocksPerBank; b++ {
		if eligible(b) && d.validInBlk[b] < minValid {
			minValid = d.validInBlk[b]
		}
	}
	if minValid == 1<<30 {
		return -1
	}
	band := int32(t.geo.PagesPerBlock / 8)
	if band < 1 {
		band = 1
	}
	best, bestErase, bestValid := -1, int64(0), int32(0)
	for b := 0; b < t.geo.BlocksPerBank; b++ {
		if !eligible(b) || d.validInBlk[b] > minValid+band {
			continue
		}
		e := t.dev.EraseCount(nvm.PPA{Channel: channel, Bank: bank, Block: b})
		v := d.validInBlk[b]
		if best < 0 || e < bestErase || (e == bestErase && v < bestValid) {
			best, bestErase, bestValid = b, e, v
		}
	}
	return best
}

// plannedMove is one relocation captured from the reverse-lookup table: the
// source unit and the translation identity it had at planning time. The
// building block itself is resolved at commit, under the owning space's
// write lock.
type plannedMove struct {
	src   nvm.PPA
	space SpaceID
	block int64
	page  int32
}

// evacuateBlock relocates the victim's valid units within the die (so each
// building block keeps its channel/bank spread), updates their building
// blocks through the reverse-lookup table, and erases the victim.
//
// The move is effectively atomic on error or abort: sources stay bound until
// the commit rebinds them under the owning spaces' write locks, so a fault,
// an out-of-space condition, or an abandoned commit leaves the translation
// state untouched and at worst orphans unbound copies that a later
// collection reclaims. Data moves through the batched device path (one
// ReadPages and one ProgramPages per victim); injected program faults
// relocate to fresh units, and an erase fault or worn-out victim is retired
// in place rather than reported as an error.
func (t *STL) evacuateBlock(at sim.Time, channel, bank, block int, ac *allocCtx) (sim.Time, gcOutcome, error) {
	d := t.die(channel, bank)

	// Phase 1: snapshot the victim's valid units under the die lock. New
	// units cannot appear in the victim afterwards (programs only land in the
	// open block, and the victim is closed and claimed), so the snapshot can
	// only shrink — stale entries are dropped by the re-validation below.
	var moves []plannedMove
	d.mu.Lock()
	for pg := 0; pg < t.geo.PagesPerBlock; pg++ {
		src := nvm.PPA{Channel: channel, Bank: bank, Block: block, Page: pg}
		if e := t.rev[src.Linear(t.geo)]; e.valid {
			moves = append(moves, plannedMove{src: src, space: e.space, block: e.block, page: e.page})
		}
	}
	d.mu.Unlock()

	// Phase 2: take the owning spaces' write locks in ascending-ID order
	// (try-only, so a GC actor never blocks a lock holder), then re-validate
	// the snapshot. Holding the locks guarantees every surviving source is
	// programmed (see the package comment) and that nothing can invalidate it
	// until the rebind below — every invalidation path holds the space's
	// write lock or runs in a maintenance context that excludes GC.
	held, ok := t.lockSpacesForCommit(moves, ac)
	if !ok {
		return at, gcBusy, nil
	}
	defer func() {
		for _, s := range held {
			s.mu.Unlock()
		}
	}()
	valid := moves[:0]
	d.mu.Lock()
	for i := range moves {
		m := moves[i]
		e := t.rev[m.src.Linear(t.geo)]
		if e.valid && e.space == m.space && e.block == m.block && e.page == m.page {
			valid = append(valid, m)
		}
	}
	d.mu.Unlock()
	moves = valid

	done := at
	var ops []nvm.ProgramOp
	if len(moves) > 0 {
		srcs := make([]nvm.PPA, len(moves))
		datas := make([][]byte, len(moves))
		for i := range moves {
			srcs[i] = moves[i].src
		}
		readDone, err := t.dev.ReadPages(at, srcs, datas)
		if err != nil {
			return at, gcNothing, err
		}
		// Carve every destination, then land the whole block in one batch.
		// The room check in collectDie ran under the same claim, but
		// concurrent foreground carving may have consumed it; bail without
		// touching translation state if so (carved units stay unbound).
		ops = make([]nvm.ProgramOp, 0, len(moves))
		d.mu.Lock()
		for i := range moves {
			dst, okCarve := d.carve(channel, bank, t.geo.PagesPerBlock)
			if !okCarve {
				d.mu.Unlock()
				return at, gcNothing, nil
			}
			ops = append(ops, nvm.ProgramOp{At: readDone, P: dst, Data: datas[i]})
		}
		d.mu.Unlock()
		done, err = t.gcProgramBatch(ops)
		if err != nil {
			// Nothing was rebound: the source mappings are still authoritative
			// and any orphan destination copies sit unbound in blocks GC will
			// reclaim normally.
			return at, gcNothing, err
		}
	}

	// Phase 3: rebind the survivors and erase the victim.
	for i := range moves {
		m := &moves[i]
		s, okS := t.spaces[m.space]
		if !okS {
			return done, gcNothing, fmt.Errorf("stl: GC found unit of unknown space %d", m.space)
		}
		gcoord := make([]int64, len(s.grid))
		s.GridCoord(m.block, gcoord)
		blk, _ := t.block(s, gcoord, false)
		if blk == nil {
			return done, gcNothing, fmt.Errorf("stl: GC reverse entry names missing block %d of space %d", m.block, s.id)
		}
		blk.pages[m.page].ppa = ops[i].P
		t.invalidateUnit(m.src)
		t.bindUnit(s, m.block, int(m.page), ops[i].P)
		t.gcMoves.Add(1)
	}

	eraseDone, err := t.dev.EraseBlock(done, nvm.PPA{Channel: channel, Bank: bank, Block: block})
	if err != nil {
		if errors.Is(err, nvm.ErrEraseFault) || errors.Is(err, nvm.ErrWornOut) {
			// The victim's data is already out; the block just can't rejoin
			// the free pool. Retire it and carry on.
			t.retireBlock(channel, bank, block)
			return eraseDone, gcProgress, nil
		}
		return done, gcNothing, err
	}
	d.mu.Lock()
	d.freeBlocks = append(d.freeBlocks, block)
	d.freePages.Add(int64(t.geo.PagesPerBlock))
	d.mu.Unlock()
	t.gcErases.Add(1)
	return eraseDone, gcProgress, nil
}

// lockSpacesForCommit write-locks every distinct space in moves, in
// ascending-ID order, treating ac.held (the space the calling request
// already owns) as pre-acquired. Locks are taken with TryLock plus a bounded
// yield-retry so a GC actor never blocks a writer; on exhaustion every lock
// taken here is released and false is returned. The returned slice holds
// only the spaces this call locked (never ac.held).
func (t *STL) lockSpacesForCommit(moves []plannedMove, ac *allocCtx) ([]*Space, bool) {
	ids := make([]SpaceID, 0, 4)
	for i := range moves {
		id := moves[i].space
		dup := false
		for _, have := range ids {
			if have == id {
				dup = true
				break
			}
		}
		if !dup {
			ids = append(ids, id)
		}
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	held := make([]*Space, 0, len(ids))
	for _, id := range ids {
		if ac != nil && ac.held != nil && ac.held.id == id {
			continue // the calling request already owns this one
		}
		s, ok := t.spaces[id]
		if !ok {
			continue // space vanished; its moves are re-checked as stale
		}
		got := false
		for try := 0; try < gcCommitTries; try++ {
			if s.mu.TryLock() {
				got = true
				break
			}
			time.Sleep(2 * time.Microsecond)
		}
		if !got {
			for _, h := range held {
				h.mu.Unlock()
			}
			return nil, false
		}
		held = append(held, s)
	}
	return held, true
}

// gcProgramBatch lands a GC relocation batch, recovering from injected
// program faults: the faulted op's block is retired, the op is redirected to
// a fresh unit, and the remainder of the batch retries from the failed
// attempt's completion. Ops are not yet bound, so recovery only rewrites the
// batch itself.
func (t *STL) gcProgramBatch(ops []nvm.ProgramOp) (sim.Time, error) {
	var done sim.Time
	retries := 0
	for len(ops) > 0 {
		d, err := t.dev.ProgramPages(ops)
		var pe *nvm.ProgramError
		if err == nil || !errors.As(err, &pe) {
			return sim.Max(done, d), err
		}
		done = sim.Max(done, d)
		if pe.Index > 0 {
			retries = 0 // progress since the last fault
		}
		ops = ops[pe.Index:]
		t.retireBlock(pe.P.Channel, pe.P.Bank, pe.P.Block)
		if retries++; retries > maxProgramRetries {
			return done, fmt.Errorf("stl: GC relocation of %v: %d relocation attempts failed: %w", pe.P, retries, ErrMedia)
		}
		np, ok := t.allocateRecoveryUnit(pe.P)
		if !ok {
			return done, fmt.Errorf("stl: no unit available to relocate faulted GC program at %v: %w", pe.P, ErrMedia)
		}
		t.programRetries.Add(1)
		ops[0].P = np
		ops[0].At = pe.Done
	}
	return done, nil
}

// kickGC nudges the background worker (non-blocking; a pending kick absorbs
// further ones). No-op in synchronous mode.
func (t *STL) kickGC() {
	if t.gcKick == nil {
		return
	}
	select {
	case t.gcKick <- struct{}{}:
	default:
	}
}

// gcWorker is the background collection loop: each kick triggers one sweep
// over all dies. It exits when Close is called.
func (t *STL) gcWorker() {
	defer close(t.gcDone)
	for {
		select {
		case <-t.gcStop:
			return
		case <-t.gcKick:
		}
		t.gcSweep()
	}
}

// gcSweep collects every die below the low watermark up to the high
// watermark. The sweep holds maintMu, so it is mutually exclusive with space
// create/delete/resize and Flush; its device operations are issued at the
// foreground high-water completion time, so relocation traffic competes with
// foreground requests on the same simulated channel/bank timelines.
func (t *STL) gcSweep() {
	t.maintMu.Lock()
	defer t.maintMu.Unlock()
	at := sim.Time(t.simClock.Load())
	low, high := t.lowWaterPages(), t.highWaterPages()
	for ch := 0; ch < t.geo.Channels; ch++ {
		for bk := 0; bk < t.geo.Banks; bk++ {
			if t.die(ch, bk).freePages.Load() > low {
				continue
			}
			done, _, err := t.collectDie(at, ch, bk, nil, high)
			if err != nil {
				continue // best-effort: real faults resurface on the foreground path
			}
			t.noteTime(done)
		}
	}
}
