package stl

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"

	"nds/internal/sim"
)

// Software-managed data compression (§5.3.4): when the system compresses
// data on the host, the mechanism must be part of the software NDS
// framework, which "can use this information to treat each building block
// as a basic unit of compression/decompression". With Config.Compress set,
// every write materialises the affected building blocks, compresses each
// block image, and stores only the compressed pages; reads fetch the
// compressed units and decompress per block. Blocks whose content does not
// compress are stored raw (a per-block flag). Allocation policy and
// even-wearing are unchanged — a compressed block "simply uses fewer access
// units" (§5.3.4).

// compressImage deflates a block image, returning nil if compression does
// not save at least one page.
func (t *STL) compressImage(s *Space, image []byte) []byte {
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, flate.BestSpeed)
	if err != nil {
		return nil
	}
	if _, err := w.Write(image); err != nil {
		return nil
	}
	if err := w.Close(); err != nil {
		return nil
	}
	ps := int64(t.geo.PageSize)
	if ceilDiv(int64(buf.Len()), ps) >= ceilDiv(s.bbBytes, ps) {
		return nil
	}
	return buf.Bytes()
}

// blockImage materialises the current logical content of a building block:
// decompressing stored pages when the block is compressed, concatenating raw
// pages otherwise, zeros where nothing was written. The returned completion
// time covers the page reads.
func (t *STL) blockImage(at sim.Time, s *Space, blk *BuildingBlock, stats *RequestStats) ([]byte, sim.Time, error) {
	done := at
	if blk == nil {
		return make([]byte, s.bbBytes), done, nil
	}
	if blk.compressed {
		comp := make([]byte, 0, blk.compLen)
		for i := 0; i < blk.physPages; i++ {
			if !blk.pages[i].allocated {
				return nil, done, fmt.Errorf("stl: compressed block missing unit %d", i)
			}
			data, d, err := t.dev.ReadPage(at, blk.pages[i].ppa)
			if err != nil {
				return nil, done, err
			}
			stats.PagesRead++
			done = sim.Max(done, d)
			comp = append(comp, data...)
		}
		comp = comp[:blk.compLen]
		image, err := io.ReadAll(flate.NewReader(bytes.NewReader(comp)))
		if err != nil {
			return nil, done, fmt.Errorf("stl: block decompression failed: %w", err)
		}
		if int64(len(image)) != s.bbBytes {
			return nil, done, fmt.Errorf("stl: decompressed block is %d bytes, want %d", len(image), s.bbBytes)
		}
		return image, done, nil
	}
	image := make([]byte, s.bbBytes)
	ps := int64(t.geo.PageSize)
	for i := range blk.pages {
		if !blk.pages[i].allocated {
			continue
		}
		data, d, err := t.dev.ReadPage(at, blk.pages[i].ppa)
		if err != nil {
			return nil, done, err
		}
		stats.PagesRead++
		done = sim.Max(done, d)
		off := int64(i) * ps
		copy(image[off:min64(off+ps, s.bbBytes)], data)
	}
	return image, done, nil
}

// dropAllUnits invalidates every unit of a block and resets its usage
// statistics, ready for a fresh rewrite.
func (t *STL) dropAllUnits(blk *BuildingBlock) {
	for i := range blk.pages {
		if blk.pages[i].allocated {
			t.invalidateUnit(blk.pages[i].ppa)
			blk.pages[i].allocated = false
		}
	}
	for i := range blk.chanUse {
		blk.chanUse[i] = 0
	}
	for i := range blk.bankUse {
		blk.bankUse[i] = 0
	}
	blk.used = 0
	blk.lastBank = -1
	blk.compressed = false
	blk.compLen = 0
	blk.physPages = 0
}

// storeBlockImage writes a block image, compressed when profitable, raw
// otherwise, allocating fresh units under the §4.2 policy.
func (t *STL) storeBlockImage(at sim.Time, s *Space, blockIdx int64, blk *BuildingBlock, image []byte, stats *RequestStats) (sim.Time, error) {
	t.dropAllUnits(blk)
	ps := int64(t.geo.PageSize)
	payload := image
	if comp := t.compressImage(s, image); comp != nil {
		payload = comp
		blk.compressed = true
		blk.compLen = int64(len(comp))
		t.compressedBlocks.Add(1)
	}
	pages := int(ceilDiv(int64(len(payload)), ps))
	blk.physPages = pages
	done := at
	ac := &allocCtx{held: s}
	for i := 0; i < pages; i++ {
		dst, ready, err := t.allocateUnit(at, s, blk, ac)
		if err != nil {
			return done, err
		}
		lo := int64(i) * ps
		hi := min64(lo+ps, int64(len(payload)))
		dst, d, err := t.programWithRecovery(ready, dst, payload[lo:hi], stats)
		if err != nil {
			return done, err
		}
		blk.pages[i].ppa = dst
		blk.pages[i].allocated = true
		t.bindUnit(s, blockIdx, i, dst)
		t.progs.Add(1)
		stats.PagesProgrammed++
		done = sim.Max(done, d)
	}
	return done, nil
}

// writeCompressed is the Config.Compress write path: block-granular
// read-modify-write with per-block compression.
func (t *STL) writeCompressed(at sim.Time, v *View, coord, sub []int64, data []byte) (sim.Time, RequestStats, error) {
	var stats RequestStats
	exts, err := v.Extents(coord, sub)
	if err != nil {
		return at, stats, err
	}
	s := v.space
	_, elems, err := v.PartitionShape(coord, sub)
	if err != nil {
		return at, stats, err
	}
	want := elems * int64(s.elemSize)
	if int64(len(data)) != want {
		return at, stats, fmt.Errorf("stl: write payload is %d bytes, partition needs %d: %w", len(data), want, ErrInvalid)
	}
	stats.Extents = len(exts)
	stats.Bytes = want

	// Group extents by block, preserving first-touch order.
	perBlock := make(map[int64][]int)
	var order []int64
	for i, e := range exts {
		if _, ok := perBlock[e.Block]; !ok {
			order = append(order, e.Block)
		}
		perBlock[e.Block] = append(perBlock[e.Block], i)
	}

	gcoord := make([]int64, len(s.grid))
	done := at
	for _, bIdx := range order {
		s.GridCoord(bIdx, gcoord)
		blk, steps := t.block(s, gcoord, true)
		stats.Traversals += steps
		stats.Blocks++

		fullyCovered := func() bool {
			var covered int64
			for _, ei := range perBlock[bIdx] {
				covered += exts[ei].Len
			}
			return covered == s.bbBytes
		}()

		var image []byte
		ready := at
		if fullyCovered {
			image = make([]byte, s.bbBytes)
			// Old units are dropped wholesale in storeBlockImage.
		} else {
			image, ready, err = t.blockImage(at, s, blk, &stats)
			if err != nil {
				return done, stats, err
			}
		}
		for _, ei := range perBlock[bIdx] {
			e := exts[ei]
			copy(image[e.Off:e.Off+e.Len], data[e.Dst:e.Dst+e.Len])
		}
		d, err := t.storeBlockImage(ready, s, bIdx, blk, image, &stats)
		if err != nil {
			return done, stats, err
		}
		done = sim.Max(done, d)
	}
	return done, stats, nil
}

// readCompressedExtent serves one extent of a compressed block from the
// per-request image cache.
type blockImageCache map[int64][]byte

// CompressedBlocks reports how many block store operations chose the
// compressed representation.
func (t *STL) CompressedBlocks() int64 { return t.compressedBlocks.Load() }

// ZeroPagesSkipped reports how many all-zero page writes the §8 page-zero
// optimization elided.
func (t *STL) ZeroPagesSkipped() int64 { return t.zeroSkipped.Load() }

func allZero(b []byte) bool {
	for _, x := range b {
		if x != 0 {
			return false
		}
	}
	return true
}
