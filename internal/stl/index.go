package stl

import "nds/internal/nvm"

// The STL maintains an N-level B-tree per N-dimensional space (§4.2). The
// root level corresponds to the highest-order dimension (d_n), each level
// below to the next lower dimension, and leaf entries point to the list of
// physical access units of one building block, sorted by their position
// within the block. Node degree at the level for dimension i is ceil(d_i /
// bb_i). Nodes are allocated lazily along the traversal path of the first
// request that touches them.

// pageSlot records one basic access unit of a building block.
type pageSlot struct {
	ppa       nvm.PPA
	allocated bool
}

// BuildingBlock is a leaf entry: the page list plus the per-block usage
// statistics the allocation policy of §4.2 consults.
type BuildingBlock struct {
	pages    []pageSlot
	chanUse  []uint16 // units allocated per channel
	bankUse  []uint16 // units allocated per bank
	lastBank int      // bank of the most recently allocated unit
	used     int      // allocated unit count
	naiveDie int      // home die under the ablation allocator

	// Compression state (§5.3.4): when compressed, the first physPages
	// slots hold the deflated image of compLen bytes.
	compressed bool
	compLen    int64
	physPages  int
}

func newBuildingBlock(pagesPerBB int, geo nvm.Geometry) *BuildingBlock {
	return &BuildingBlock{
		pages:    make([]pageSlot, pagesPerBB),
		chanUse:  make([]uint16, geo.Channels),
		bankUse:  make([]uint16, geo.Banks),
		lastBank: -1,
	}
}

// Channels reports how many distinct channels the block's units occupy.
func (b *BuildingBlock) Channels() int {
	n := 0
	for _, c := range b.chanUse {
		if c > 0 {
			n++
		}
	}
	return n
}

// Pages returns the allocated physical addresses in block order.
func (b *BuildingBlock) Pages() []nvm.PPA {
	out := make([]nvm.PPA, 0, b.used)
	for _, s := range b.pages {
		if s.allocated {
			out = append(out, s.ppa)
		}
	}
	return out
}

// indexNode is one node of the per-space B-tree. Non-leaf nodes hold child
// pointers; leaf nodes hold building-block entries.
type indexNode struct {
	children []*indexNode
	blocks   []*BuildingBlock
}

// newNode allocates a node for the given dimension level. Following
// Figure 6, the root (level 0) corresponds to the space's highest-order
// dimension (the outermost, d_n in the paper's numbering); the leaf level
// (len(grid)-1) corresponds to the lowest order, whose entries are building
// blocks.
func (s *Space) newNode(level int) *indexNode {
	if level == len(s.grid)-1 {
		return &indexNode{blocks: make([]*BuildingBlock, s.grid[level])}
	}
	return &indexNode{children: make([]*indexNode, s.grid[level])}
}

// block returns the building block at grid coordinate g, creating the path
// and entry when alloc is true. It is the geometry-aware variant used by the
// STL.
func (t *STL) block(s *Space, g []int64, alloc bool) (*BuildingBlock, int) {
	n := len(s.grid)
	if s.root == nil {
		if !alloc {
			return nil, 0
		}
		s.root = s.newNode(0)
	}
	node := s.root
	steps := 1
	for level := 0; level < n-1; level++ {
		idx := g[level]
		child := node.children[idx]
		if child == nil {
			if !alloc {
				return nil, steps
			}
			child = s.newNode(level + 1)
			node.children[idx] = child
		}
		node = child
		steps++
	}
	blk := node.blocks[g[n-1]]
	if blk == nil && alloc {
		blk = newBuildingBlock(s.pagesPerBB, t.geo)
		node.blocks[g[n-1]] = blk
		s.allocatedBBs++
	}
	return blk, steps
}

// IndexFootprint estimates the controller-DRAM size of a space's B-tree in
// bytes: 8 bytes per node entry (child pointer / block pointer) and 4 bytes
// per access-unit entry in the leaf page lists (a physical page number; the
// full 8-byte reverse entries live in each unit's spare out-of-band area per
// §4.2, not in DRAM). This is the §7.3 accounting, which bounds the lookup
// structure at ~0.1% of storage capacity with 4 KB pages.
func (s *Space) IndexFootprint() int64 {
	return s.countIndexBytes(s.root)
}

func (s *Space) countIndexBytes(n *indexNode) int64 {
	if n == nil {
		return 0
	}
	if n.blocks != nil {
		var b int64
		b += int64(len(n.blocks)) * 8
		for _, blk := range n.blocks {
			if blk != nil {
				b += int64(len(blk.pages)) * 4
			}
		}
		return b
	}
	b := int64(len(n.children)) * 8
	for _, c := range n.children {
		b += s.countIndexBytes(c)
	}
	return b
}
