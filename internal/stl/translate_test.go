package stl

import (
	"math/rand"
	"sort"
	"testing"

	"nds/internal/nvm"
)

func smallGeo() nvm.Geometry {
	// BB_min = 4 channels x 512 B = 2 KB; 4-byte elements -> 32x32 blocks
	// (4 KB = 8 pages).
	return nvm.Geometry{Channels: 4, Banks: 2, BlocksPerBank: 32, PagesPerBlock: 16, PageSize: 512}
}

func newTestSTL(t *testing.T, phantom bool) *STL {
	t.Helper()
	dev, err := nvm.NewDevice(smallGeo(), nvm.TLCTiming(), phantom)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(dev, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustSpace(t *testing.T, st *STL, elem int, dims ...int64) *Space {
	t.Helper()
	s, err := st.CreateSpace(elem, dims)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustView(t *testing.T, s *Space, dims ...int64) *View {
	t.Helper()
	v, err := NewView(s, dims)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestViewValidation(t *testing.T) {
	st := newTestSTL(t, true)
	s := mustSpace(t, st, 4, 64, 64)
	if _, err := NewView(s, []int64{64, 64}); err != nil {
		t.Errorf("identity view rejected: %v", err)
	}
	if _, err := NewView(s, []int64{4096}); err != nil {
		t.Errorf("flat view rejected: %v", err)
	}
	if _, err := NewView(s, []int64{128, 32}); err != nil {
		t.Errorf("reshaped view rejected: %v", err)
	}
	if _, err := NewView(s, []int64{64, 63}); err == nil {
		t.Error("volume-mismatched view accepted")
	}
	if _, err := NewView(s, []int64{}); err == nil {
		t.Error("empty view accepted")
	}
	if _, err := NewView(s, []int64{-64, -64}); err == nil {
		t.Error("negative view accepted")
	}
}

func TestPartitionShapeClamps(t *testing.T) {
	st := newTestSTL(t, true)
	s := mustSpace(t, st, 4, 100, 64)
	v := mustView(t, s, 100, 64)
	shape, n, err := v.PartitionShape([]int64{1, 0}, []int64{60, 64})
	if err != nil {
		t.Fatal(err)
	}
	if shape[0] != 40 || shape[1] != 64 {
		t.Fatalf("clamped shape = %v, want [40 64]", shape)
	}
	if n != 40*64 {
		t.Fatalf("elements = %d, want %d", n, 40*64)
	}
	if _, _, err := v.PartitionShape([]int64{2, 0}, []int64{60, 64}); err == nil {
		t.Error("out-of-range coordinate accepted")
	}
	if _, _, err := v.PartitionShape([]int64{0, 0}, []int64{0, 64}); err == nil {
		t.Error("zero sub-dimension accepted")
	}
	if _, _, err := v.PartitionShape([]int64{0}, []int64{60, 64}); err == nil {
		t.Error("rank mismatch accepted")
	}
}

// TestExtentsTileExactly: extents must cover the destination buffer exactly
// once, stay within block bounds, and sum to the partition size.
func TestExtentsTileExactly(t *testing.T) {
	st := newTestSTL(t, true)
	s := mustSpace(t, st, 4, 96, 80) // not multiples of the 32x32 block
	checkTiling := func(v *View, coord, sub []int64) {
		t.Helper()
		exts, err := v.Extents(coord, sub)
		if err != nil {
			t.Fatal(err)
		}
		_, elems, _ := v.PartitionShape(coord, sub)
		want := elems * int64(s.elemSize)
		sort.Slice(exts, func(i, j int) bool { return exts[i].Dst < exts[j].Dst })
		var pos int64
		for _, e := range exts {
			if e.Dst != pos {
				t.Fatalf("gap/overlap at destination %d (extent starts %d)", pos, e.Dst)
			}
			if e.Len <= 0 {
				t.Fatalf("non-positive extent length %d", e.Len)
			}
			if e.Off < 0 || e.Off+e.Len > s.bbBytes {
				t.Fatalf("extent [%d,%d) outside block of %d bytes", e.Off, e.Off+e.Len, s.bbBytes)
			}
			if e.Block < 0 || e.Block >= prod(s.grid) {
				t.Fatalf("block index %d outside grid %v", e.Block, s.grid)
			}
			pos += e.Len
		}
		if pos != want {
			t.Fatalf("extents cover %d bytes, want %d", pos, want)
		}
	}
	v := mustView(t, s, 96, 80)
	checkTiling(v, []int64{0, 0}, []int64{96, 80}) // whole space
	checkTiling(v, []int64{1, 1}, []int64{32, 32}) // aligned tile
	checkTiling(v, []int64{2, 1}, []int64{40, 48}) // unaligned, clamped tile
	checkTiling(v, []int64{0, 3}, []int64{96, 16}) // column band
	checkTiling(v, []int64{5, 0}, []int64{16, 80}) // row band
	flat := mustView(t, s, 96*80)
	checkTiling(flat, []int64{3, 0}[:1], []int64{997}) // odd flat partition
	resh := mustView(t, s, 40, 192)
	checkTiling(resh, []int64{1, 2}, []int64{13, 57}) // reshaped odd tile
}

// refScatterGather is an independent element-at-a-time model of partition
// addressing: view coordinates map to the shared row-major linear order.
type refModel struct {
	buf  []byte // linear space image
	elem int
}

func newRefModel(s *Space) *refModel {
	return &refModel{buf: make([]byte, s.Bytes()), elem: s.ElemSize()}
}

func (r *refModel) forEach(view, coord, sub []int64, f func(linear, k int64)) {
	m := len(view)
	shape := make([]int64, m)
	for i := range shape {
		lo := coord[i] * sub[i]
		hi := lo + sub[i]
		if hi > view[i] {
			hi = view[i]
		}
		shape[i] = hi - lo
	}
	idx := make([]int64, m)
	var k int64
	for {
		abs := make([]int64, m)
		for i := range abs {
			abs[i] = coord[i]*sub[i] + idx[i]
		}
		f(rank(abs, view), k)
		k++
		i := m - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < shape[i] {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			return
		}
	}
}

func (r *refModel) scatter(view, coord, sub []int64, data []byte) {
	r.forEach(view, coord, sub, func(linear, k int64) {
		copy(r.buf[linear*int64(r.elem):], data[k*int64(r.elem):(k+1)*int64(r.elem)])
	})
}

func (r *refModel) gather(view, coord, sub []int64) []byte {
	var out []byte
	r.forEach(view, coord, sub, func(linear, k int64) {
		out = append(out, r.buf[linear*int64(r.elem):(linear+1)*int64(r.elem)]...)
	})
	return out
}

func fillRandom(rng *rand.Rand, n int64) []byte {
	b := make([]byte, n)
	rng.Read(b)
	return b
}

// TestReadWriteMatchesReference drives the full STL data path (write via one
// view, read via others) against the reference model.
func TestReadWriteMatchesReference(t *testing.T) {
	st := newTestSTL(t, false)
	s := mustSpace(t, st, 4, 96, 80)
	ref := newRefModel(s)
	rng := rand.New(rand.NewSource(99))

	// Producer writes the whole space as 3x5 tiles of 32x16.
	prod := mustView(t, s, 96, 80)
	for i := int64(0); i < 3; i++ {
		for j := int64(0); j < 5; j++ {
			coord := []int64{i, j}
			sub := []int64{32, 16}
			_, n, err := prod.PartitionShape(coord, sub)
			if err != nil {
				t.Fatal(err)
			}
			data := fillRandom(rng, n*4)
			if _, _, err := st.WritePartition(0, prod, coord, sub, data); err != nil {
				t.Fatal(err)
			}
			ref.scatter(prod.Dims(), coord, sub, data)
		}
	}

	check := func(v *View, coord, sub []int64) {
		t.Helper()
		got, _, _, err := st.ReadPartition(0, v, coord, sub)
		if err != nil {
			t.Fatal(err)
		}
		want := ref.gather(v.Dims(), coord, sub)
		if len(got) != len(want) {
			t.Fatalf("read %d bytes, want %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("byte %d = %#x, want %#x (view=%v coord=%v sub=%v)",
					i, got[i], want[i], v.Dims(), coord, sub)
			}
		}
	}

	check(prod, []int64{0, 0}, []int64{96, 80})                    // whole space
	check(prod, []int64{1, 1}, []int64{32, 32})                    // aligned tile
	check(prod, []int64{0, 79}, []int64{96, 1})                    // single column
	check(prod, []int64{41, 0}, []int64{1, 80})                    // single row
	check(prod, []int64{1, 1}, []int64{33, 21})                    // odd tile
	check(mustView(t, s, 7680), []int64{2}, []int64{1000})         // flat consumer
	check(mustView(t, s, 48, 160), []int64{1, 2}, []int64{17, 39}) // reshaped consumer
	check(mustView(t, s, 96, 80), []int64{1, 1}, []int64{56, 44})  // clamped tail
}

// TestOverwritePartition verifies overwrites replace exactly the partition
// and leave neighbours intact, through the RMW and replacement-unit path.
func TestOverwritePartition(t *testing.T) {
	st := newTestSTL(t, false)
	s := mustSpace(t, st, 4, 64, 64)
	ref := newRefModel(s)
	rng := rand.New(rand.NewSource(5))
	v := mustView(t, s, 64, 64)

	whole := fillRandom(rng, s.Bytes())
	if _, _, err := st.WritePartition(0, v, []int64{0, 0}, []int64{64, 64}, whole); err != nil {
		t.Fatal(err)
	}
	ref.scatter(v.Dims(), []int64{0, 0}, []int64{64, 64}, whole)

	// Overwrite an unaligned interior tile (forces read-modify-write).
	coord, sub := []int64{3, 5}, []int64{13, 9}
	_, n, _ := v.PartitionShape(coord, sub)
	patch := fillRandom(rng, n*4)
	if _, _, err := st.WritePartition(0, v, coord, sub, patch); err != nil {
		t.Fatal(err)
	}
	ref.scatter(v.Dims(), coord, sub, patch)

	got, _, _, err := st.ReadPartition(0, v, []int64{0, 0}, []int64{64, 64})
	if err != nil {
		t.Fatal(err)
	}
	want := ref.gather(v.Dims(), []int64{0, 0}, []int64{64, 64})
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("byte %d differs after overwrite", i)
		}
	}
}

// TestPropertyRandomRoundTrip is the package's main property test: random
// space shapes, random producer/consumer views, random partitions — the STL
// must always agree with the reference model.
func TestPropertyRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 25; trial++ {
		st := newTestSTL(t, false)
		ndims := 1 + rng.Intn(3)
		dims := make([]int64, ndims)
		vol := int64(1)
		for i := range dims {
			dims[i] = int64(3 + rng.Intn(60))
			vol *= dims[i]
		}
		elem := []int{1, 2, 4, 8}[rng.Intn(4)]
		s, err := st.CreateSpace(elem, dims)
		if err != nil {
			t.Fatal(err)
		}
		if s.Bytes() > 512*1024 {
			continue // keep trials fast
		}
		ref := newRefModel(s)
		v := mustView(t, s, dims...)

		// A few random writes...
		for w := 0; w < 4; w++ {
			coord := make([]int64, ndims)
			sub := make([]int64, ndims)
			for i := range coord {
				sub[i] = 1 + rng.Int63n(dims[i])
				coord[i] = rng.Int63n((dims[i] + sub[i] - 1) / sub[i])
			}
			_, n, err := v.PartitionShape(coord, sub)
			if err != nil {
				t.Fatal(err)
			}
			data := fillRandom(rng, n*int64(elem))
			if _, _, err := st.WritePartition(0, v, coord, sub, data); err != nil {
				t.Fatalf("trial %d write: %v", trial, err)
			}
			ref.scatter(dims, coord, sub, data)
		}
		// ...and random reads, through a random consumer view.
		cv := v
		if vol%2 == 0 && rng.Intn(2) == 0 {
			cv = mustView(t, s, 2, vol/2)
		}
		for r := 0; r < 4; r++ {
			cd := cv.Dims()
			coord := make([]int64, len(cd))
			sub := make([]int64, len(cd))
			for i := range coord {
				sub[i] = 1 + rng.Int63n(cd[i])
				coord[i] = rng.Int63n((cd[i] + sub[i] - 1) / sub[i])
			}
			got, _, _, err := st.ReadPartition(0, cv, coord, sub)
			if err != nil {
				t.Fatalf("trial %d read: %v", trial, err)
			}
			want := ref.gather(cd, coord, sub)
			if len(got) != len(want) {
				t.Fatalf("trial %d: read %d bytes, want %d", trial, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("trial %d: byte %d mismatch (view=%v coord=%v sub=%v)",
						trial, i, cd, coord, sub)
				}
			}
		}
	}
}
