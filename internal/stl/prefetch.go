package stl

import (
	"sync"

	"nds/internal/nvm"
	"nds/internal/sim"
)

// The dimensional prefetcher. A partition stream that walks the space along
// one grid axis — row bands, column bands, tile sweeps — touches consecutive
// building blocks whose grid coordinates advance by one in exactly one
// dimension. Once a view's accesses advance that way prefetchTrigger times in
// a row, the prefetcher warms the next Config.PrefetchDepth blocks along the
// axis through the device's batched read path, issued at the triggering
// request's completion time. The warm-up is asynchronous in simulated time:
// it never extends the triggering request, and a later demand read that
// arrives before the prefetch batch completes waits only for the batch (the
// per-page ready times the cache records).
//
// Detection is per view — each view is one command stream (the moral
// equivalent of a submission queue), so a view's access sequence is exactly
// one client's stream and strides from different clients never interleave
// into false runs.

// prefetchTrigger is how many consecutive one-dimensional advances arm the
// prefetcher.
const prefetchTrigger = 2

// maxTrackedStreams bounds the per-view detector map; stale views (closed or
// idle) are dropped arbitrarily once the bound is hit.
const maxTrackedStreams = 256

type streamState struct {
	last []int64 // grid coordinate of the previous access's primary block
	axis int     // dimension of the detected stride
	dir  int64   // +1 or -1 along axis
	run  int     // consecutive advances observed
}

type prefetcher struct {
	mu      sync.Mutex
	depth   int
	streams map[*View]*streamState
}

func newPrefetcher(depth int) *prefetcher {
	return &prefetcher{depth: depth, streams: make(map[*View]*streamState)}
}

// observe records the grid coordinate of v's latest primary block and, when a
// streaming run is armed, returns the axis and direction to warm (ok=true).
// g is copied; callers may reuse it.
func (p *prefetcher) observe(v *View, g []int64) (axis int, dir int64, ok bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.streams[v]
	if st == nil {
		if len(p.streams) >= maxTrackedStreams {
			for k := range p.streams {
				delete(p.streams, k)
				break
			}
		}
		st = &streamState{last: append([]int64(nil), g...), axis: -1}
		p.streams[v] = st
		return 0, 0, false
	}
	axis, dir = -1, 0
	same := true
	for i := range g {
		switch d := g[i] - st.last[i]; {
		case d == 0:
		case (d == 1 || d == -1) && axis == -1:
			axis, dir, same = i, d, false
		default:
			// Multi-axis or long jump: not a stream step.
			axis, same = -2, false
		}
	}
	copy(st.last, g)
	switch {
	case same:
		// Repeat access to the same block: neither advances nor breaks a run.
		return 0, 0, false
	case axis < 0:
		st.axis, st.run = -1, 0
		return 0, 0, false
	case axis == st.axis && dir == st.dir:
		st.run++
	default:
		st.axis, st.dir, st.run = axis, dir, 1
	}
	if st.run < prefetchTrigger {
		return 0, 0, false
	}
	return st.axis, st.dir, true
}

// forget drops a view's detector state (view close).
func (p *prefetcher) forget(v *View) {
	p.mu.Lock()
	delete(p.streams, v)
	p.mu.Unlock()
}

// maybePrefetch runs streaming detection for the partition access at
// coord/sub on view v and, when armed, warms the next blocks along the
// detected axis. done is the triggering request's completion time — the
// issue time of the warm-up reads. Runs on the read path under the device's
// reader lock: it only reads translation state (t.block with alloc=false
// never mutates) and fills the cache.
func (t *STL) maybePrefetch(done sim.Time, v *View, coord, sub []int64) {
	if t.cache == nil || t.pf == nil {
		return
	}
	s := v.space
	if s.root == nil || s.bbBytes > t.cache.capacity {
		return
	}
	g := make([]int64, len(s.grid))
	if !primaryGrid(v, coord, sub, g) {
		return
	}
	axis, dir, ok := t.pf.observe(v, g)
	if !ok {
		return
	}

	var ppas []nvm.PPA
	var keys []pageKey
	candidates := make([]int, 0, s.pagesPerBB)
	miss := make([]int, 0, s.pagesPerBB)
	for k := 1; k <= t.pf.depth; k++ {
		g[axis] += dir
		if g[axis] < 0 || g[axis] >= s.grid[axis] {
			break
		}
		blk, _ := t.block(s, g, false)
		if blk == nil || blk.compressed {
			continue
		}
		blockIdx := s.BlockGridIndex(g)
		candidates = candidates[:0]
		for p := range blk.pages {
			if blk.pages[p].allocated {
				candidates = append(candidates, p)
			}
		}
		miss = t.cache.missing(s, blockIdx, candidates, miss[:0])
		for _, p := range miss {
			ppas = append(ppas, blk.pages[p].ppa)
			keys = append(keys, pageKey{blockIdx, p})
		}
	}
	if len(ppas) == 0 {
		return
	}
	datas := make([][]byte, len(ppas))
	d, err := t.dev.ReadPages(done, ppas, datas)
	if err != nil {
		return // warm-up is best-effort; demand reads surface real errors
	}
	for i, key := range keys {
		t.cache.fill(s, key.block, key.page, datas[i], d, true)
	}
}

// primaryGrid computes the grid coordinate of the building block holding the
// partition's first element, translating through the view's shape when it
// differs from the space's. Returns false for out-of-range coordinates (the
// caller's read already failed or will).
func primaryGrid(v *View, coord, sub []int64, out []int64) bool {
	if len(coord) != len(v.dims) || len(sub) != len(coord) {
		return false
	}
	var lin int64
	for i := range v.dims {
		o := coord[i] * sub[i]
		if o < 0 || o >= v.dims[i] {
			return false
		}
		lin = lin*v.dims[i] + o
	}
	s := v.space
	for i := len(s.dims) - 1; i >= 0; i-- {
		out[i] = (lin % s.dims[i]) / s.bb[i]
		lin /= s.dims[i]
	}
	return true
}
