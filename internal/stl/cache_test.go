package stl

import (
	"bytes"
	"math/rand"
	"testing"

	"nds/internal/nvm"
	"nds/internal/sim"
)

// newCachedSTL builds an STL on the small test geometry with the block cache
// enabled. dramBW <= 0 makes hits instantaneous, which several tests use to
// separate hit accounting from hit timing.
func newCachedSTL(t *testing.T, phantom bool, cacheBytes int64, depth int, dramBW float64) *STL {
	t.Helper()
	dev, err := nvm.NewDevice(smallGeo(), nvm.TLCTiming(), phantom)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.CacheBytes = cacheBytes
	cfg.PrefetchDepth = depth
	cfg.CacheDRAMBandwidth = dramBW
	st, err := New(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// A warm re-read serves every page from DRAM: no new flash reads, all hits,
// byte-identical data, and a completion earlier than the cold read's.
func TestCacheHitServesFromDRAM(t *testing.T) {
	st := newCachedSTL(t, false, 1<<20, 0, 25.6e9)
	sp := mustSpace(t, st, 4, 64, 64)
	v := mustView(t, sp, 64, 64)
	payload := make([]byte, 64*64*4)
	rand.New(rand.NewSource(1)).Read(payload)
	wDone, _, err := st.WritePartition(0, v, []int64{0, 0}, []int64{64, 64}, payload)
	if err != nil {
		t.Fatal(err)
	}
	cold, coldDone, coldStats, err := st.ReadPartition(wDone, v, []int64{0, 0}, []int64{64, 64})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cold, payload) {
		t.Fatal("cold read returned wrong bytes")
	}
	cs := st.CacheStats()
	if cs.Hits != 0 || cs.Misses != coldStats.PagesRead {
		t.Fatalf("cold read counters: %+v (PagesRead=%d)", cs, coldStats.PagesRead)
	}
	warm, warmDone, warmStats, err := st.ReadPartition(coldDone, v, []int64{0, 0}, []int64{64, 64})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(warm, payload) {
		t.Fatal("warm read returned wrong bytes")
	}
	if warmStats.PagesRead != 0 {
		t.Fatalf("warm read touched flash: %d pages", warmStats.PagesRead)
	}
	cs = st.CacheStats()
	if cs.Hits != coldStats.PagesRead {
		t.Fatalf("warm read hits=%d, want %d", cs.Hits, coldStats.PagesRead)
	}
	if cs.HitBytes != 64*64*4 {
		t.Fatalf("hit bytes=%d, want %d", cs.HitBytes, 64*64*4)
	}
	if warmElapsed, coldElapsed := warmDone-coldDone, coldDone-wDone; warmElapsed >= coldElapsed {
		t.Fatalf("warm read (%v) not faster than cold read (%v)", warmElapsed, coldElapsed)
	}
}

// The same warm hit charges the configured DRAM streaming cost: zero
// bandwidth means instantaneous, finite bandwidth means TransferTime.
func TestCacheHitDRAMCost(t *testing.T) {
	elapsed := func(bw float64) sim.Time {
		st := newCachedSTL(t, false, 1<<20, 0, bw)
		sp := mustSpace(t, st, 4, 64, 64)
		v := mustView(t, sp, 64, 64)
		wDone, _, err := st.WritePartition(0, v, []int64{0, 0}, []int64{64, 64}, make([]byte, 64*64*4))
		if err != nil {
			t.Fatal(err)
		}
		_, coldDone, _, err := st.ReadPartition(wDone, v, []int64{0, 0}, []int64{64, 64})
		if err != nil {
			t.Fatal(err)
		}
		_, warmDone, _, err := st.ReadPartition(coldDone, v, []int64{0, 0}, []int64{64, 64})
		if err != nil {
			t.Fatal(err)
		}
		return warmDone - coldDone
	}
	if d := elapsed(0); d != 0 {
		t.Fatalf("unmetered warm read took %v, want 0", d)
	}
	want := sim.TransferTime(64*64*4, 1e9)
	if d := elapsed(1e9); d != want {
		t.Fatalf("warm read at 1 GB/s took %v, want %v", d, want)
	}
}

// Overwriting a cached block drops it: the next read misses and returns the
// new bytes, never the cached old ones.
func TestCacheInvalidationOnWrite(t *testing.T) {
	st := newCachedSTL(t, false, 1<<20, 0, 0)
	sp := mustSpace(t, st, 4, 64, 64)
	v := mustView(t, sp, 64, 64)
	old := bytes.Repeat([]byte{0xAA}, 64*64*4)
	at, _, err := st.WritePartition(0, v, []int64{0, 0}, []int64{64, 64}, old)
	if err != nil {
		t.Fatal(err)
	}
	if _, at, _, err = st.ReadPartition(at, v, []int64{0, 0}, []int64{64, 64}); err != nil {
		t.Fatal(err)
	}
	fresh := bytes.Repeat([]byte{0x55}, 32*32*4)
	if at, _, err = st.WritePartition(at, v, []int64{1, 1}, []int64{32, 32}, fresh); err != nil {
		t.Fatal(err)
	}
	cs := st.CacheStats()
	if cs.Invalidations == 0 {
		t.Fatal("overwrite did not invalidate the cached block")
	}
	got, _, _, err := st.ReadPartition(at, v, []int64{1, 1}, []int64{32, 32})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, fresh) {
		t.Fatal("read after overwrite returned stale cached bytes")
	}
}

// A cache smaller than the working set evicts under CLOCK and never holds
// more than its capacity; a cache smaller than one block caches nothing.
func TestCacheEviction(t *testing.T) {
	// smallGeo blocks are 32x32x4 B = 4 KB; cap the cache at two blocks and
	// stream eight.
	st := newCachedSTL(t, false, 2*4096, 0, 0)
	sp := mustSpace(t, st, 4, 64, 128)
	v := mustView(t, sp, 64, 128)
	at, _, err := st.WritePartition(0, v, []int64{0, 0}, []int64{64, 128}, make([]byte, 64*128*4))
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 2; pass++ {
		for j := int64(0); j < 4; j++ {
			if _, at, _, err = st.ReadPartition(at, v, []int64{0, j}, []int64{64, 32}); err != nil {
				t.Fatal(err)
			}
		}
	}
	cs := st.CacheStats()
	if cs.Evictions == 0 {
		t.Fatalf("streaming 8 blocks through a 2-block cache evicted nothing: %+v", cs)
	}
	if cs.ResidentBytes > cs.CapacityBytes {
		t.Fatalf("resident %d exceeds capacity %d", cs.ResidentBytes, cs.CapacityBytes)
	}

	tiny := newCachedSTL(t, false, 1024, 0, 0) // < one block
	sp2 := mustSpace(t, tiny, 4, 64, 64)
	v2 := mustView(t, sp2, 64, 64)
	at, _, err = tiny.WritePartition(0, v2, []int64{0, 0}, []int64{64, 64}, make([]byte, 64*64*4))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, at, _, err = tiny.ReadPartition(at, v2, []int64{0, 0}, []int64{64, 64}); err != nil {
			t.Fatal(err)
		}
	}
	if cs := tiny.CacheStats(); cs.ResidentBytes != 0 || cs.Hits != 0 {
		t.Fatalf("oversized blocks were cached anyway: %+v", cs)
	}
}

// Phantom devices cache no bytes but keep exact hit accounting and timing.
func TestCachePhantom(t *testing.T) {
	st := newCachedSTL(t, true, 1<<20, 0, 25.6e9)
	sp := mustSpace(t, st, 4, 64, 64)
	v := mustView(t, sp, 64, 64)
	at, _, err := st.WritePartition(0, v, []int64{0, 0}, []int64{64, 64}, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, coldDone, _, err := st.ReadPartition(at, v, []int64{0, 0}, []int64{64, 64})
	if err != nil {
		t.Fatal(err)
	}
	data, warmDone, warmStats, err := st.ReadPartition(coldDone, v, []int64{0, 0}, []int64{64, 64})
	if err != nil {
		t.Fatal(err)
	}
	if data != nil {
		t.Fatal("phantom read returned data")
	}
	if warmStats.PagesRead != 0 {
		t.Fatalf("phantom warm read touched flash: %d pages", warmStats.PagesRead)
	}
	if cs := st.CacheStats(); cs.Hits == 0 {
		t.Fatalf("phantom warm read recorded no hits: %+v", cs)
	}
	if warmDone-coldDone >= coldDone-at {
		t.Fatal("phantom warm read not faster than cold read")
	}
}

// Shrinking a space and growing it back must read zeros where blocks were
// dropped, not resurrect cached bytes.
func TestCacheInvalidationOnResize(t *testing.T) {
	st := newCachedSTL(t, false, 1<<20, 0, 0)
	sp := mustSpace(t, st, 4, 64, 64)
	v := mustView(t, sp, 64, 64)
	payload := bytes.Repeat([]byte{0xCC}, 64*64*4)
	at, _, err := st.WritePartition(0, v, []int64{0, 0}, []int64{64, 64}, payload)
	if err != nil {
		t.Fatal(err)
	}
	if _, at, _, err = st.ReadPartition(at, v, []int64{0, 0}, []int64{64, 64}); err != nil {
		t.Fatal(err)
	}
	if err := st.ResizeSpace(sp.ID(), 32); err != nil {
		t.Fatal(err)
	}
	if err := st.ResizeSpace(sp.ID(), 64); err != nil {
		t.Fatal(err)
	}
	v = mustView(t, sp, 64, 64)
	got, _, _, err := st.ReadPartition(at, v, []int64{1, 0}, []int64{32, 64})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, 32*64*4)) {
		t.Fatal("re-grown region served stale cached bytes instead of zeros")
	}
}

// Deleting a space purges its cache entries even though block indexes of a
// later space may collide.
func TestCacheInvalidationOnDelete(t *testing.T) {
	st := newCachedSTL(t, false, 1<<20, 0, 0)
	sp := mustSpace(t, st, 4, 64, 64)
	v := mustView(t, sp, 64, 64)
	at, _, err := st.WritePartition(0, v, []int64{0, 0}, []int64{64, 64}, bytes.Repeat([]byte{0xEE}, 64*64*4))
	if err != nil {
		t.Fatal(err)
	}
	if _, at, _, err = st.ReadPartition(at, v, []int64{0, 0}, []int64{64, 64}); err != nil {
		t.Fatal(err)
	}
	if st.CacheStats().ResidentBytes == 0 {
		t.Fatal("nothing cached before delete")
	}
	if err := st.DeleteSpace(sp.ID()); err != nil {
		t.Fatal(err)
	}
	if rb := st.CacheStats().ResidentBytes; rb != 0 {
		t.Fatalf("deleted space still holds %d cached bytes", rb)
	}
}

// Stream detection: two consecutive single-axis advances arm the prefetcher;
// axis changes and jumps reset it.
func TestPrefetcherObserve(t *testing.T) {
	pf := newPrefetcher(2)
	v := &View{}
	step := func(g ...int64) (int, int64, bool) { return pf.observe(v, g) }
	if _, _, ok := step(0, 0); ok {
		t.Fatal("first sighting triggered")
	}
	if _, _, ok := step(0, 1); ok {
		t.Fatal("run of 1 triggered")
	}
	axis, dir, ok := step(0, 2)
	if !ok || axis != 1 || dir != 1 {
		t.Fatalf("run of 2 => (%d,%d,%v), want (1,1,true)", axis, dir, ok)
	}
	// A jump resets the run.
	if _, _, ok := step(5, 7); ok {
		t.Fatal("jump triggered")
	}
	if _, _, ok := step(4, 7); ok {
		t.Fatal("run of 1 after reset triggered")
	}
	axis, dir, ok = step(3, 7)
	if !ok || axis != 0 || dir != -1 {
		t.Fatalf("descending run => (%d,%d,%v), want (0,-1,true)", axis, dir, ok)
	}
	// Repeating the same coordinate neither extends nor resets.
	if _, _, ok := step(3, 7); ok {
		t.Fatal("repeat triggered")
	}
	axis, dir, ok = step(2, 7)
	if !ok || axis != 0 || dir != -1 {
		t.Fatalf("run resumed after repeat => (%d,%d,%v), want (0,-1,true)", axis, dir, ok)
	}
	// Diagonal movement (two axes at once) resets.
	if _, _, ok := step(1, 6); ok {
		t.Fatal("diagonal triggered")
	}
}

// A streaming scan along one grid axis warms the next blocks: later demand
// reads hit prefetched pages without touching flash again.
func TestCachePrefetchStreamingScan(t *testing.T) {
	st := newCachedSTL(t, false, 1<<20, 2, 0)
	sp := mustSpace(t, st, 4, 32, 256) // 1x8 grid of 32x32 blocks
	v := mustView(t, sp, 32, 256)
	payload := make([]byte, 32*256*4)
	rand.New(rand.NewSource(3)).Read(payload)
	at, _, err := st.WritePartition(0, v, []int64{0, 0}, []int64{32, 256}, payload)
	if err != nil {
		t.Fatal(err)
	}
	var flashReads int64
	for j := int64(0); j < 8; j++ {
		got, done, stats, err := st.ReadPartition(at, v, []int64{0, j}, []int64{32, 32})
		if err != nil {
			t.Fatal(err)
		}
		if want := payload[j*32*4 : j*32*4+32*4]; !bytes.Equal(got[:32*4], want) {
			t.Fatalf("block %d first row wrong", j)
		}
		flashReads += stats.PagesRead
		at = done
	}
	cs := st.CacheStats()
	if cs.PrefetchIssued == 0 {
		t.Fatalf("streaming scan issued no prefetches: %+v", cs)
	}
	if cs.PrefetchUsed == 0 {
		t.Fatalf("no prefetched page was hit: %+v", cs)
	}
	// Demand flash reads + prefetched pages should cover the allocated pages
	// at most once: the scan must not read any page twice.
	if total := flashReads + cs.PrefetchIssued; total > int64(8*sp.PagesPerBlock()) {
		t.Fatalf("scan read %d pages for %d allocated", total, 8*sp.PagesPerBlock())
	}
}

// cacheDiffStep drives one cached and one uncached STL through the same
// operation and requires byte-identical read results. Timing and flash-op
// statistics legitimately differ (that is the point of the cache), so only
// payload bytes are compared.
type cacheDiffPair struct {
	on, off   *STL
	vOn, vOff *View
	atOn      sim.Time
	atOff     sim.Time
}

func newCacheDiffPair(t *testing.T, mutate func(*Config)) *cacheDiffPair {
	t.Helper()
	mk := func(cacheBytes int64, depth int) (*STL, *View) {
		dev, err := nvm.NewDevice(smallGeo(), nvm.TLCTiming(), false)
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		if mutate != nil {
			mutate(&cfg)
		}
		cfg.CacheBytes = cacheBytes
		cfg.PrefetchDepth = depth
		st, err := New(dev, cfg)
		if err != nil {
			t.Fatal(err)
		}
		sp, err := st.CreateSpace(4, []int64{128, 128})
		if err != nil {
			t.Fatal(err)
		}
		return st, mustView(t, sp, 128, 128)
	}
	p := &cacheDiffPair{}
	p.on, p.vOn = mk(64<<10, 2) // 16 of the space's 16 blocks fit
	p.off, p.vOff = mk(0, 0)
	return p
}

func (p *cacheDiffPair) write(t *testing.T, coord, sub []int64, data []byte) {
	t.Helper()
	dOn, _, errOn := p.on.WritePartition(p.atOn, p.vOn, coord, sub, data)
	dOff, _, errOff := p.off.WritePartition(p.atOff, p.vOff, coord, sub, data)
	if (errOn == nil) != (errOff == nil) {
		t.Fatalf("write %v/%v: cached err=%v uncached err=%v", coord, sub, errOn, errOff)
	}
	p.atOn, p.atOff = dOn, dOff
}

func (p *cacheDiffPair) read(t *testing.T, coord, sub []int64) {
	t.Helper()
	bOn, dOn, _, errOn := p.on.ReadPartition(p.atOn, p.vOn, coord, sub)
	bOff, dOff, _, errOff := p.off.ReadPartition(p.atOff, p.vOff, coord, sub)
	if (errOn == nil) != (errOff == nil) {
		t.Fatalf("read %v/%v: cached err=%v uncached err=%v", coord, sub, errOn, errOff)
	}
	if !bytes.Equal(bOn, bOff) {
		t.Fatalf("read %v/%v: cached device returned different bytes", coord, sub)
	}
	p.atOn, p.atOff = dOn, dOff
}

// A cached device must be a pure performance optimization: the same mixed
// row/column/tile read-write workload yields byte-identical results with the
// cache on and off, including under GC pressure that relocates cached units.
func TestCacheDifferentialMixedWorkload(t *testing.T) {
	p := newCacheDiffPair(t, nil)
	driveCacheDiff(t, p, 6)
	if cs := p.on.CacheStats(); cs.Hits == 0 {
		t.Fatalf("workload never hit the cache: %+v", cs)
	}
}

func TestCacheDifferentialGCPressure(t *testing.T) {
	p := newCacheDiffPair(t, func(c *Config) { c.OverProvision = 0.5; c.GCLowWater = 0.3 })
	rng := rand.New(rand.NewSource(13))
	for r := 0; r < 60; r++ {
		data := make([]byte, 64*128*4)
		rng.Read(data)
		p.write(t, []int64{int64(r % 2), 0}, []int64{64, 128}, data)
		p.read(t, []int64{0, int64(r % 2)}, []int64{128, 64})
	}
	if e, _ := p.on.GCStats(); e == 0 {
		t.Fatal("workload never triggered GC; raise the pressure")
	}
	p.read(t, []int64{0, 0}, []int64{128, 128})
	if cs := p.on.CacheStats(); cs.Invalidations == 0 {
		t.Fatalf("GC pressure invalidated nothing: %+v", cs)
	}
}

func driveCacheDiff(t *testing.T, p *cacheDiffPair, rounds int) {
	rng := rand.New(rand.NewSource(42))
	payload := func(n int64, tag byte) []byte {
		b := make([]byte, n*4)
		rng.Read(b)
		for i := int64(0); i < n; i += 5 {
			b[i*4] = tag
		}
		return b
	}
	for r := 0; r < rounds; r++ {
		p.write(t, []int64{int64(r % 4), 0}, []int64{32, 128}, payload(32*128, byte(r)))
		p.read(t, []int64{0, int64(r % 4)}, []int64{128, 32})
		p.read(t, []int64{0, int64(r % 4)}, []int64{128, 32}) // warm repeat
		p.write(t, []int64{int64(r % 2), int64(r % 2)}, []int64{64, 64}, payload(64*64, byte(r+1)))
		p.read(t, []int64{int64(r % 4), int64(r % 4)}, []int64{32, 32})
	}
	p.read(t, []int64{0, 0}, []int64{128, 128})
}
