package stl

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestResizeGrowPreservesData(t *testing.T) {
	st := newTestSTL(t, false)
	s := mustSpace(t, st, 4, 64, 64)
	v := mustView(t, s, 64, 64)
	rng := rand.New(rand.NewSource(1))
	data := fillRandom(rng, s.Bytes())
	if _, _, err := st.WritePartition(0, v, []int64{0, 0}, []int64{64, 64}, data); err != nil {
		t.Fatal(err)
	}
	if err := st.ResizeSpace(s.ID(), 128); err != nil {
		t.Fatal(err)
	}
	if s.Dims()[0] != 128 {
		t.Fatalf("dims after grow = %v", s.Dims())
	}
	// Views must be reopened after a restructure (volumes changed).
	v2 := mustView(t, s, 128, 64)
	got, _, _, err := st.ReadPartition(0, v2, []int64{0, 0}, []int64{64, 64})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("grow lost existing data")
	}
	// The fresh region reads zeros and accepts writes.
	fresh, _, _, err := st.ReadPartition(0, v2, []int64{1, 0}, []int64{64, 64})
	if err != nil {
		t.Fatal(err)
	}
	if !allZero(fresh) {
		t.Fatal("fresh region is not zero")
	}
	patch := fillRandom(rng, 64*64*4)
	if _, _, err := st.WritePartition(0, v2, []int64{1, 0}, []int64{64, 64}, patch); err != nil {
		t.Fatal(err)
	}
	got, _, _, err = st.ReadPartition(0, v2, []int64{1, 0}, []int64{64, 64})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, patch) {
		t.Fatal("write into grown region failed")
	}
}

func TestResizeShrinkReleasesUnits(t *testing.T) {
	st := newTestSTL(t, false)
	s := mustSpace(t, st, 4, 128, 64)
	v := mustView(t, s, 128, 64)
	rng := rand.New(rand.NewSource(2))
	data := fillRandom(rng, s.Bytes())
	if _, _, err := st.WritePartition(0, v, []int64{0, 0}, []int64{128, 64}, data); err != nil {
		t.Fatal(err)
	}
	before := st.UsedPages()
	if err := st.ResizeSpace(s.ID(), 64); err != nil {
		t.Fatal(err)
	}
	if st.UsedPages() >= before {
		t.Fatalf("shrink did not release units: %d -> %d", before, st.UsedPages())
	}
	v2 := mustView(t, s, 64, 64)
	got, _, _, err := st.ReadPartition(0, v2, []int64{0, 0}, []int64{64, 64})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[:64*64*4]) {
		t.Fatal("shrink damaged surviving data")
	}
	// Re-growing exposes zeros, not the old contents.
	if err := st.ResizeSpace(s.ID(), 128); err != nil {
		t.Fatal(err)
	}
	v3 := mustView(t, s, 128, 64)
	tail, _, _, err := st.ReadPartition(0, v3, []int64{1, 0}, []int64{64, 64})
	if err != nil {
		t.Fatal(err)
	}
	if !allZero(tail) {
		t.Fatal("re-grown region leaked stale data")
	}
}

func TestResizeValidation(t *testing.T) {
	st := newTestSTL(t, true)
	s := mustSpace(t, st, 4, 64, 64)
	if err := st.ResizeSpace(999, 10); err == nil {
		t.Error("resize of unknown space accepted")
	}
	if err := st.ResizeSpace(s.ID(), 0); err == nil {
		t.Error("resize to zero accepted")
	}
	// Resizing within the same block row is a metadata-only change.
	if err := st.ResizeSpace(s.ID(), 60); err != nil {
		t.Fatal(err)
	}
	if s.Dims()[0] != 60 {
		t.Fatalf("dims = %v", s.Dims())
	}
}

func TestResize1DSpace(t *testing.T) {
	st := newTestSTL(t, false)
	s := mustSpace(t, st, 4, 2048)
	v := mustView(t, s, 2048)
	rng := rand.New(rand.NewSource(3))
	data := fillRandom(rng, s.Bytes())
	if _, _, err := st.WritePartition(0, v, []int64{0}, []int64{2048}, data); err != nil {
		t.Fatal(err)
	}
	if err := st.ResizeSpace(s.ID(), 4096); err != nil {
		t.Fatal(err)
	}
	v2 := mustView(t, s, 4096)
	got, _, _, err := st.ReadPartition(0, v2, []int64{0}, []int64{2048})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("1-D grow lost data")
	}
}
