package stl

import (
	"errors"
	"fmt"

	"nds/internal/nvm"
	"nds/internal/sim"
)

// Media-fault recovery. The device layer (internal/nvm) injects deterministic
// program, erase, and wear-out faults under a FaultPlan; this file is the STL
// side of the contract:
//
//   - A program fault consumes the target page. The STL retires the page's
//     block, relocates the write to a freshly allocated unit, and retries,
//     up to maxProgramRetries times per logical page before giving up with
//     ErrMedia. Data already on the medium is never at risk — only the
//     in-flight write is being placed.
//   - An erase fault (transient or wear-out) retires the block: it leaves
//     freeBlocks, is never picked as a GC victim again, and any valid pages
//     still in it remain readable in place for the rest of their lives.
//   - Retired capacity degrades the device gracefully: retirement first
//     consumes the over-provision reserve, and only once that is exhausted
//     does the logical allocation budget shrink (effectiveMaxPages).
//
// With no fault plan installed none of these paths run, and the only cost on
// the data path is the retired-block bookkeeping checks, which see zero
// retired blocks.

// maxProgramRetries bounds how many fresh units the STL will burn trying to
// land one logical page before declaring the write unrecoverable.
const maxProgramRetries = 8

// ReliabilityReport aggregates the device's injected-fault counters with the
// STL's recovery and retirement state: what failed, what was recovered, and
// what capacity the array has permanently lost.
type ReliabilityReport struct {
	// Device-side fault events (zero when no fault plan is installed).
	ProgramFaults int64 // program attempts that failed
	EraseFaults   int64 // transient erase failures
	WearoutFaults int64 // erases refused because the block is worn out
	ReadRetries   int64 // reads that needed extra ECC sensing passes

	// STL-side recovery work.
	ProgramRetries int64 // successful relocations of faulted programs
	RetiredBlocks  int64 // blocks removed from service
	RetiredPages   int64 // raw pages those blocks represent

	// Capacity state after degradation.
	MaxPages       int64 // original logical allocation budget
	EffectivePages int64 // current budget (MaxPages minus unreserved losses)
	UsedPages      int64 // live units
}

// Reliability reports the device fault counters and STL recovery state.
func (t *STL) Reliability() ReliabilityReport {
	fs := t.dev.FaultStats()
	return ReliabilityReport{
		ProgramFaults:  fs.ProgramFaults,
		EraseFaults:    fs.EraseFaults,
		WearoutFaults:  fs.WearoutFaults,
		ReadRetries:    fs.ReadRetries,
		ProgramRetries: t.programRetries.Load(),
		RetiredBlocks:  t.retiredBlocks.Load(),
		RetiredPages:   t.retiredPages.Load(),
		MaxPages:       t.maxPages,
		EffectivePages: t.effectiveMaxPages(),
		UsedPages:      t.usedPages.Load(),
	}
}

// effectiveMaxPages is the logical allocation budget after retirement:
// retired pages consume the over-provision reserve first, and only the excess
// shrinks the logical budget.
func (t *STL) effectiveMaxPages() int64 {
	reserve := t.geo.TotalPages() - t.maxPages
	if excess := t.retiredPages.Load() - reserve; excess > 0 {
		return t.maxPages - excess
	}
	return t.maxPages
}

// retireBlock permanently removes a block from service: it leaves the die's
// free list, will never be the active block or a GC victim again, and is
// never erased. Valid pages still in it stay readable in place. Idempotent.
func (t *STL) retireBlock(channel, bank, block int) {
	d := t.die(channel, bank)
	type cacheKey struct {
		space SpaceID
		block int64
	}
	var drops []cacheKey
	d.mu.Lock()
	if d.retired == nil {
		d.retired = make([]bool, t.geo.BlocksPerBank)
	}
	if d.retired[block] {
		d.mu.Unlock()
		return
	}
	d.retired[block] = true
	t.retiredBlocks.Add(1)
	t.retiredPages.Add(int64(t.geo.PagesPerBlock))
	if t.cache != nil {
		// Strict invalidation on retirement: valid pages in the block stay
		// readable in place, but any building block touching retired flash is
		// dropped from DRAM so later reads re-fetch through the device's
		// fault-aware path (and so a relocated page is never served stale).
		// The drops are collected under d.mu (which guards the rev entries)
		// and applied after unlock to respect the die -> cache-shard order.
		for pg := 0; pg < t.geo.PagesPerBlock; pg++ {
			p := nvm.PPA{Channel: channel, Bank: bank, Block: block, Page: pg}
			if e := t.rev[p.Linear(t.geo)]; e.valid {
				drops = append(drops, cacheKey{e.space, e.block})
			}
		}
	}
	removed := false
	for i, b := range d.freeBlocks {
		if b == block {
			d.freeBlocks = append(d.freeBlocks[:i], d.freeBlocks[i+1:]...)
			d.freePages.Add(-int64(t.geo.PagesPerBlock))
			removed = true
			break
		}
	}
	if !removed && block == d.activeBlock {
		// The open block's unprogrammed tail is no longer free space.
		d.freePages.Add(-int64(t.geo.PagesPerBlock - d.nextPage))
		d.activeBlock = -1
	}
	d.mu.Unlock()
	for _, k := range drops {
		t.cache.invalidateBlock(k.space, k.block)
	}
}

// takeUnitRaw carves the next programmable page out of a die without running
// garbage collection or the caller's flush hook — safe to call from recovery
// code that is itself inside a flush or GC. Returns false when the die has no
// programmable unit.
func (t *STL) takeUnitRaw(channel, bank int) (nvm.PPA, bool) {
	d := t.die(channel, bank)
	d.mu.Lock()
	p, ok := d.carve(channel, bank, t.geo.PagesPerBlock)
	d.mu.Unlock()
	return p, ok
}

// allocateRecoveryUnit finds a destination for data whose program to old
// faulted: the same die first (preserving the building block's channel/bank
// spread), then any die with room (data preservation beats placement policy).
func (t *STL) allocateRecoveryUnit(old nvm.PPA) (nvm.PPA, bool) {
	if p, ok := t.takeUnitRaw(old.Channel, old.Bank); ok {
		return p, true
	}
	for ch := 0; ch < t.geo.Channels; ch++ {
		for bk := 0; bk < t.geo.Banks; bk++ {
			if ch == old.Channel && bk == old.Bank {
				continue
			}
			if p, ok := t.takeUnitRaw(ch, bk); ok {
				return p, true
			}
		}
	}
	return nvm.PPA{}, false
}

// programWithRecovery programs data to p, and on an injected program fault
// retires the failing block, relocates to a fresh unit, and retries from the
// failed attempt's completion time. Returns the unit that finally holds the
// data (callers bind that unit, not the one they allocated). Non-fault errors
// pass through; exhausting maxProgramRetries or running out of units reports
// ErrMedia.
func (t *STL) programWithRecovery(at sim.Time, p nvm.PPA, data []byte, stats *RequestStats) (nvm.PPA, sim.Time, error) {
	for tries := 0; ; tries++ {
		done, err := t.dev.ProgramPage(at, p, data)
		var pe *nvm.ProgramError
		if err == nil || !errors.As(err, &pe) {
			return p, done, err
		}
		t.retireBlock(p.Channel, p.Bank, p.Block)
		if tries >= maxProgramRetries {
			return p, done, fmt.Errorf("stl: program of %v: %d relocation attempts failed: %w", p, tries+1, ErrMedia)
		}
		np, ok := t.allocateRecoveryUnit(p)
		if !ok {
			return p, done, fmt.Errorf("stl: no unit available to relocate faulted program at %v: %w", p, ErrMedia)
		}
		t.programRetries.Add(1)
		if stats != nil {
			stats.ProgramRetries++
		}
		p, at = np, pe.Done
	}
}

// rebindFaulted points the building-block slot that owns old (located through
// the reverse-lookup table) at np instead, keeping usedPages and valid counts
// balanced. Used by the batch recovery path, where the unit was bound when
// its program was queued; the caller's space write lock (or Flush's maintMu
// plus the device-wide lock) is what makes the read-then-rebind atomic.
// Returns false if old is not bound (translation state is inconsistent —
// callers surface an error).
func (t *STL) rebindFaulted(old, np nvm.PPA) bool {
	d := t.die(old.Channel, old.Bank)
	d.mu.Lock()
	e := t.rev[old.Linear(t.geo)]
	d.mu.Unlock()
	if !e.valid {
		return false
	}
	s, ok := t.spaces[e.space]
	if !ok {
		return false
	}
	gcoord := make([]int64, len(s.grid))
	s.GridCoord(e.block, gcoord)
	blk, _ := t.block(s, gcoord, false)
	if blk == nil {
		return false
	}
	blk.pages[e.page].ppa = np
	t.invalidateUnit(old)
	t.bindUnit(s, e.block, int(e.page), np)
	return true
}

// unbindOps drops the translation state of queued program ops that will never
// land (an unrecoverable batch failure), restoring the invariant that bound
// units are programmed units.
func (t *STL) unbindOps(ops []nvm.ProgramOp) {
	for i := range ops {
		d := t.die(ops[i].P.Channel, ops[i].P.Bank)
		d.mu.Lock()
		e := t.rev[ops[i].P.Linear(t.geo)]
		d.mu.Unlock()
		if !e.valid {
			continue
		}
		if s, ok := t.spaces[e.space]; ok {
			gcoord := make([]int64, len(s.grid))
			s.GridCoord(e.block, gcoord)
			if blk, _ := t.block(s, gcoord, false); blk != nil {
				blk.pages[e.page].allocated = false
			}
		}
		t.invalidateUnit(ops[i].P)
	}
}
