package stl

import (
	"fmt"

	"nds/internal/nvm"
	"nds/internal/sim"
)

// RequestStats describes the device work a partition access performed; the
// host and controller models consume it to charge software and assembly
// costs.
type RequestStats struct {
	Extents         int   // building-block byte extents the translator produced
	Blocks          int   // distinct building blocks touched
	Traversals      int   // B-tree lookups performed
	PagesRead       int64 // device page reads (including read-modify-write)
	PagesProgrammed int64 // device page programs
	ProgramRetries  int64 // faulted programs relocated and retried (recover.go)
	Bytes           int64 // payload bytes moved for the application
}

type pageKey struct {
	block int64
	page  int
}

// readPartitionScalar is the original one-page-at-a-time read path, kept
// behind Config.ScalarPath as the timing reference the batched path is
// differentially tested against.
func (t *STL) readPartitionScalar(at sim.Time, v *View, coord, sub []int64) ([]byte, sim.Time, RequestStats, error) {
	var stats RequestStats
	exts, err := v.Extents(coord, sub)
	if err != nil {
		return nil, at, stats, err
	}
	s := v.space
	_, elems, err := v.PartitionShape(coord, sub)
	if err != nil {
		return nil, at, stats, err
	}
	stats.Extents = len(exts)
	stats.Bytes = elems * int64(s.elemSize)

	var buf []byte
	if !t.dev.Phantom() {
		buf = make([]byte, elems*int64(s.elemSize))
	}
	ps := int64(t.geo.PageSize)
	blocks := make(map[int64]*BuildingBlock)
	type readState struct {
		data []byte
		done sim.Time
		ok   bool
	}
	pages := make(map[pageKey]readState)
	images := make(blockImageCache)
	gcoord := make([]int64, len(s.grid))
	done := at
	var hitBytes int64    // payload bytes served from the block cache
	var readyMax sim.Time // latest DRAM-residency time among the hits

	for _, e := range exts {
		blk, ok := blocks[e.Block]
		if !ok {
			s.GridCoord(e.Block, gcoord)
			var steps int
			blk, steps = t.block(s, gcoord, false)
			blocks[e.Block] = blk
			stats.Traversals += steps
			if blk != nil {
				stats.Blocks++ // only blocks that exist count as touched
			}
		}
		if blk == nil {
			continue // untouched block: zeros
		}
		if blk.compressed {
			// §5.3.4: the block is the decompression unit; materialise it
			// once per request and serve extents from the image.
			image, okImg := images[e.Block]
			if !okImg {
				var d sim.Time
				var err error
				image, d, err = t.blockImage(at, s, blk, &stats)
				if err != nil {
					return nil, at, stats, err
				}
				done = sim.Max(done, d)
				images[e.Block] = image
			}
			if buf != nil {
				copy(buf[e.Dst:e.Dst+e.Len], image[e.Off:e.Off+e.Len])
			}
			continue
		}
		for p := e.Off / ps; p <= (e.Off+e.Len-1)/ps; p++ {
			key := pageKey{e.Block, int(p)}
			st, cached := pages[key]
			if !cached {
				slot := blk.pages[p]
				switch {
				case slot.allocated:
					pb := s.pageBytes(t.geo, int(p))
					var cached []byte
					var ready sim.Time
					hit := false
					if t.cache != nil {
						cached, ready, hit = t.cache.lookup(s, e.Block, int(p), pb)
					}
					if hit {
						st = readState{data: cached, ok: true}
						hitBytes += pb
						if ready > readyMax {
							readyMax = ready
						}
						break
					}
					data, d, err := t.dev.ReadPage(at, slot.ppa)
					if err != nil {
						return nil, at, stats, err
					}
					if t.cache != nil {
						t.cache.fill(s, e.Block, int(p), data, d, false)
					}
					st = readState{data: data, done: d, ok: true}
					stats.PagesRead++
					done = sim.Max(done, d)
				default:
					// §4.4 write staging: partially collected pages serve
					// reads straight from STL memory (uncovered bytes are
					// zeros, matching unwritten storage).
					if pp := t.pendingFor(s, e.Block, int(p)); pp != nil && pp.buf != nil {
						st = readState{data: pp.buf, ok: true}
					}
				}
				pages[key] = st
			}
			if buf == nil || !st.ok || st.data == nil {
				continue
			}
			lo := max64(e.Off, p*ps)
			hi := min64(e.Off+e.Len, (p+1)*ps)
			srcLo := lo - p*ps
			dstLo := e.Dst + (lo - e.Off)
			copy(buf[dstLo:dstLo+(hi-lo)], st.data[srcLo:])
		}
	}
	if hitBytes > 0 {
		// Same hit-cost model as the batched path: cached pages stream out of
		// DRAM serially once the latest one is resident.
		start := sim.Max(at, readyMax)
		done = sim.Max(done, start+t.cache.copyCost(hitBytes))
	}
	return buf, done, stats, nil
}

// writePartitionScalar is the original one-page-at-a-time write path, kept
// behind Config.ScalarPath as the timing reference for the batched path.
// The router (WritePartition) handles the compression configuration before
// either implementation runs.
func (t *STL) writePartitionScalar(at sim.Time, v *View, coord, sub []int64, data []byte) (sim.Time, RequestStats, error) {
	var stats RequestStats
	exts, err := v.Extents(coord, sub)
	if err != nil {
		return at, stats, err
	}
	s := v.space
	_, elems, err := v.PartitionShape(coord, sub)
	if err != nil {
		return at, stats, err
	}
	want := elems * int64(s.elemSize)
	if data != nil && int64(len(data)) != want {
		return at, stats, fmt.Errorf("stl: write payload is %d bytes, partition needs %d: %w", len(data), want, ErrInvalid)
	}
	if data == nil && !t.dev.Phantom() {
		return at, stats, fmt.Errorf("stl: nil payload on a data-bearing device: %w", ErrInvalid)
	}
	stats.Extents = len(exts)
	stats.Bytes = want

	ps := int64(t.geo.PageSize)
	gcoord := make([]int64, len(s.grid))
	// The scalar path predates requestScratch but borrows its page-buffer
	// freelist: ProgramPage copies payloads before returning, so each staged
	// page's RMW buffer recycles instead of allocating per page.
	rs := t.getScratch(s)
	defer t.putScratch(rs)

	// Pass 1: group extents by page, accumulating coverage. Extents of one
	// partition never overlap, so summing lengths is exact.
	type stage struct {
		blk      *BuildingBlock
		blockIdx int64
		page     int
		covered  int64
		extents  []int // indexes into exts
	}
	stages := make(map[pageKey]*stage)
	order := make([]*stage, 0)
	blocks := make(map[int64]*BuildingBlock)
	for i, e := range exts {
		blk, ok := blocks[e.Block]
		if !ok {
			s.GridCoord(e.Block, gcoord)
			var steps int
			blk, steps = t.block(s, gcoord, true)
			blocks[e.Block] = blk
			stats.Traversals += steps
			stats.Blocks++
		}
		for p := e.Off / ps; p <= (e.Off+e.Len-1)/ps; p++ {
			key := pageKey{e.Block, int(p)}
			st := stages[key]
			if st == nil {
				st = &stage{blk: blk, blockIdx: e.Block, page: int(p)}
				stages[key] = st
				order = append(order, st)
			}
			lo := e.Off
			if pLo := p * ps; lo < pLo {
				lo = pLo
			}
			hi := e.Off + e.Len
			if pHi := (p + 1) * ps; hi > pHi {
				hi = pHi
			}
			st.covered += hi - lo
			st.extents = append(st.extents, i)
		}
	}

	// Pass 2: for each staged page, read-modify-write when partially
	// covered, allocate the destination unit, and program. With §4.4 write
	// buffering enabled, sub-unit writes to unprogrammed pages collect in
	// STL memory instead, and program once the unit fills.
	done := at
	ac := &allocCtx{held: s} // scalar path issues programs immediately: no flush hook
	for _, st := range order {
		slot := &st.blk.pages[st.page]
		pb := s.pageBytes(t.geo, st.page)
		if t.cfg.WriteBuffering && !slot.allocated {
			for _, ei := range st.extents {
				e := exts[ei]
				lo := max64(e.Off, int64(st.page)*ps)
				hi := min64(e.Off+e.Len, int64(st.page+1)*ps)
				var chunk []byte
				if data != nil {
					chunk = data[e.Dst+(lo-e.Off):]
				}
				t.stageWrite(s, st.blockIdx, st.page, lo-int64(st.page)*ps, chunk, hi-lo)
			}
			if pp := t.takeIfFull(s, st.blockIdx, st.page, pb); pp != nil {
				d, err := t.programStaged(at, s, st.blockIdx, st.blk, st.page, pp, ac)
				if err != nil {
					return at, stats, err
				}
				stats.PagesProgrammed++
				done = sim.Max(done, d)
			}
			continue
		}
		ready := at
		var pageBuf []byte
		if !t.dev.Phantom() {
			pageBuf = rs.pageBuf(int(ps))
		}
		if slot.allocated && st.covered < pb {
			old, d, err := t.dev.ReadPage(at, slot.ppa)
			if err != nil {
				return at, stats, err
			}
			stats.PagesRead++
			ready = d
			if pageBuf != nil {
				copy(pageBuf, old)
			}
		}
		if pageBuf != nil {
			for _, ei := range st.extents {
				e := exts[ei]
				lo := e.Off
				if pLo := int64(st.page) * ps; lo < pLo {
					lo = pLo
				}
				hi := e.Off + e.Len
				if pHi := int64(st.page+1) * ps; hi > pHi {
					hi = pHi
				}
				src := e.Dst + (lo - e.Off)
				copy(pageBuf[lo-int64(st.page)*ps:], data[src:src+(hi-lo)])
			}
		}
		// §8 page-zero optimization: an all-zero page needs no unit — an
		// unallocated slot already reads as zeros, and an allocated one is
		// simply released.
		if t.cfg.ZeroPageElision && pageBuf != nil && allZero(pageBuf[:pb]) {
			if slot.allocated {
				t.invalidateUnit(slot.ppa)
				slot.allocated = false
			}
			t.zeroSkipped.Add(1)
			rs.releaseBuf(pageBuf)
			continue
		}
		var dst nvm.PPA
		if slot.allocated {
			t.invalidateUnit(slot.ppa)
			dst, ready, err = t.allocateReplacement(ready, slot.ppa, ac)
		} else {
			dst, ready, err = t.allocateUnit(ready, s, st.blk, ac)
		}
		if err != nil {
			return at, stats, err
		}
		dst, d, err := t.programWithRecovery(ready, dst, pageBuf, &stats)
		if err != nil {
			return at, stats, err
		}
		rs.releaseBuf(pageBuf)
		slot.ppa = dst
		slot.allocated = true
		t.bindUnit(s, st.blockIdx, st.page, dst)
		t.progs.Add(1)
		stats.PagesProgrammed++
		done = sim.Max(done, d)
	}
	return done, stats, nil
}
