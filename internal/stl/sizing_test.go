package stl

import (
	"testing"
	"testing/quick"

	"nds/internal/nvm"
)

// TestSizingPaperExample8Channel reproduces §4.1's worked example: an SSD
// with 4 KB pages and 8 parallel channels gives BB_min = 32 KB (Equation 1);
// a 2-D space of 4-byte elements gets 128x128 building blocks of 64 KB
// (Equation 2), i.e. two pages from each channel.
func TestSizingPaperExample8Channel(t *testing.T) {
	geo := nvm.Geometry{Channels: 8, Banks: 8, BlocksPerBank: 4, PagesPerBlock: 4, PageSize: 4096}
	sz, err := SizeBuildingBlock(geo, 4, 2, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sz.MinBytes != 32*1024 {
		t.Errorf("BB_min = %d, want 32768", sz.MinBytes)
	}
	if sz.PerDim != 128 {
		t.Errorf("per-dim = %d, want 128", sz.PerDim)
	}
	if sz.Bytes != 64*1024 {
		t.Errorf("BB bytes = %d, want 65536", sz.Bytes)
	}
	if sz.PagesPerBB != 16 {
		t.Errorf("pages/BB = %d, want 16 (2 per channel)", sz.PagesPerBB)
	}
}

// TestSizing3D checks Equations 3-4: with 8 banks the 3-D minimum is
// 32 KB x 8 = 256 KB; for 4-byte elements that is 65536 elements, and
// 2^ceil(16/3) = 64 elements per dimension.
func TestSizing3D(t *testing.T) {
	geo := nvm.Geometry{Channels: 8, Banks: 8, BlocksPerBank: 4, PagesPerBlock: 4, PageSize: 4096}
	sz, err := SizeBuildingBlock(geo, 4, 3, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sz.MinBytes != 256*1024 {
		t.Errorf("3D BB_min = %d, want 262144", sz.MinBytes)
	}
	if sz.PerDim != 64 {
		t.Errorf("per-dim = %d, want 64", sz.PerDim)
	}
	if sz.Order != 3 {
		t.Errorf("order = %d, want 3", sz.Order)
	}
}

// TestSizingPrototypeMicrobench reproduces §7.1's prototype choice: 32
// channels x 4 KB pages with double (8-byte) elements gives 128 per dim from
// Equation 2; the prototype runs with 256x256 blocks, i.e. multiplier 2.
func TestSizingPrototypeMicrobench(t *testing.T) {
	geo := nvm.Geometry{Channels: 32, Banks: 8, BlocksPerBank: 4, PagesPerBlock: 4, PageSize: 4096}
	sz, err := SizeBuildingBlock(geo, 8, 2, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sz.PerDim != 128 {
		t.Errorf("per-dim (multiplier 1) = %d, want 128", sz.PerDim)
	}
	sz2, err := SizeBuildingBlock(geo, 8, 2, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sz2.PerDim != 256 {
		t.Errorf("per-dim (multiplier 2) = %d, want 256", sz2.PerDim)
	}
	if sz2.Bytes != 256*256*8 {
		t.Errorf("BB bytes = %d, want 524288", sz2.Bytes)
	}
}

func TestSizingDefaultsAndErrors(t *testing.T) {
	geo := nvm.Geometry{Channels: 8, Banks: 2, BlocksPerBank: 4, PagesPerBlock: 4, PageSize: 4096}
	// 1-D space defaults to a 1-D block.
	sz, err := SizeBuildingBlock(geo, 4, 1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sz.Order != 1 {
		t.Errorf("1-D space got order %d", sz.Order)
	}
	if sz.Dims[0]*4 < sz.MinBytes {
		t.Errorf("1-D block %d elements does not reach BB_min %d", sz.Dims[0], sz.MinBytes)
	}
	// Order is clamped to the space rank.
	sz, err = SizeBuildingBlock(geo, 4, 2, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sz.Order != 2 {
		t.Errorf("order should clamp to rank: got %d", sz.Order)
	}
	if _, err := SizeBuildingBlock(geo, 0, 2, 0, 1); err == nil {
		t.Error("zero element size accepted")
	}
	if _, err := SizeBuildingBlock(geo, 4, 0, 0, 1); err == nil {
		t.Error("zero-rank space accepted")
	}
	if _, err := SizeBuildingBlock(geo, 4, 2, 7, 1); err == nil {
		t.Error("order 7 accepted")
	}
}

// TestSizingProperties quick-checks Equation 1-4 invariants over random
// geometries and element sizes: the block is at least BB_min bytes, blocked
// dimensions are equal powers of two, and block bytes equal the product of
// dims times the element size.
func TestSizingProperties(t *testing.T) {
	f := func(chExp, bankExp, pageExp, elemExp, rankSel, orderSel uint8) bool {
		geo := nvm.Geometry{
			Channels:      1 << (chExp % 6),   // 1..32
			Banks:         1 << (bankExp % 4), // 1..8
			BlocksPerBank: 4, PagesPerBlock: 4,
			PageSize: 512 << (pageExp % 4), // 512..4096
		}
		elem := 1 << (elemExp % 5) // 1..16
		rank := 1 + int(rankSel)%3
		order := int(orderSel) % 4 // 0..3
		sz, err := SizeBuildingBlock(geo, elem, rank, order, 1)
		if err != nil {
			return false
		}
		if sz.Bytes < sz.MinBytes {
			return false
		}
		if prod(sz.Dims)*int64(elem) != sz.Bytes {
			return false
		}
		blocked := 0
		for _, d := range sz.Dims {
			if d > 1 {
				blocked++
				if d != sz.PerDim || d&(d-1) != 0 {
					return false
				}
			}
		}
		// PerDim may be 1 for tiny devices; blocked count never exceeds the
		// effective order or the rank.
		return blocked <= sz.Order && sz.Order <= rank
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestSizingBlockSpansAllChannels: any sized block holds at least one page
// per channel — the property Equation 1 exists to guarantee.
func TestSizingBlockSpansAllChannels(t *testing.T) {
	for _, ch := range []int{1, 2, 4, 8, 16, 32} {
		for _, es := range []int{1, 2, 4, 8, 16} {
			geo := nvm.Geometry{Channels: ch, Banks: 4, BlocksPerBank: 4, PagesPerBlock: 4, PageSize: 4096}
			sz, err := SizeBuildingBlock(geo, es, 2, 0, 1)
			if err != nil {
				t.Fatal(err)
			}
			if sz.PagesPerBB < ch {
				t.Errorf("ch=%d elem=%d: %d pages/BB cannot span all channels", ch, es, sz.PagesPerBB)
			}
		}
	}
}
