package stl

import (
	"bytes"
	"math/rand"
	"testing"

	"nds/internal/nvm"
	"nds/internal/sim"
)

// Differential tests: the batched page-plan data path must be
// indistinguishable from the scalar one-page-at-a-time path — byte-identical
// buffers, identical RequestStats, and identical sim.Time completions — for
// mixed row/column/tile read-write workloads, including configurations that
// hit every flush point (read-modify-write, GC, write buffering, compression,
// zero-page elision).

type diffPair struct {
	scalar  *STL
	batched *STL
	vs, vb  *View
	dst     []byte // reused ReadPartitionInto buffer for the batched side
}

func newDiffPair(t *testing.T, elem int, dims, view []int64, mutate func(*Config)) *diffPair {
	t.Helper()
	mk := func(scalarPath bool) (*STL, *View) {
		dev, err := nvm.NewDevice(smallGeo(), nvm.TLCTiming(), false)
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		if mutate != nil {
			mutate(&cfg)
		}
		cfg.ScalarPath = scalarPath
		st, err := New(dev, cfg)
		if err != nil {
			t.Fatal(err)
		}
		sp, err := st.CreateSpace(elem, dims)
		if err != nil {
			t.Fatal(err)
		}
		v, err := NewView(sp, view)
		if err != nil {
			t.Fatal(err)
		}
		return st, v
	}
	p := &diffPair{}
	p.scalar, p.vs = mk(true)
	p.batched, p.vb = mk(false)
	return p
}

func (p *diffPair) write(t *testing.T, at sim.Time, coord, sub []int64, data []byte) sim.Time {
	t.Helper()
	dS, sS, errS := p.scalar.WritePartition(at, p.vs, coord, sub, data)
	dB, sB, errB := p.batched.WritePartition(at, p.vb, coord, sub, data)
	if (errS == nil) != (errB == nil) {
		t.Fatalf("write %v/%v: scalar err=%v batched err=%v", coord, sub, errS, errB)
	}
	if errS != nil {
		return at
	}
	if dS != dB {
		t.Fatalf("write %v/%v at %d: completion scalar=%d batched=%d", coord, sub, at, dS, dB)
	}
	if sS != sB {
		t.Fatalf("write %v/%v: stats scalar=%+v batched=%+v", coord, sub, sS, sB)
	}
	return dS
}

// read compares scalar ReadPartition against batched ReadPartitionInto with
// a reused buffer — the worst case for the batched path, which must clear
// and refill the caller's buffer exactly as a fresh allocation would.
func (p *diffPair) read(t *testing.T, at sim.Time, coord, sub []int64) sim.Time {
	t.Helper()
	bufS, dS, sS, errS := p.scalar.ReadPartition(at, p.vs, coord, sub)
	if cap(p.dst) < len(bufS) {
		p.dst = make([]byte, len(bufS))
	}
	bufB, dB, sB, errB := p.batched.ReadPartitionInto(at, p.vb, coord, sub, p.dst)
	if (errS == nil) != (errB == nil) {
		t.Fatalf("read %v/%v: scalar err=%v batched err=%v", coord, sub, errS, errB)
	}
	if errS != nil {
		return at
	}
	if dS != dB {
		t.Fatalf("read %v/%v at %d: completion scalar=%d batched=%d", coord, sub, at, dS, dB)
	}
	if sS != sB {
		t.Fatalf("read %v/%v: stats scalar=%+v batched=%+v", coord, sub, sS, sB)
	}
	if !bytes.Equal(bufS, bufB) {
		t.Fatalf("read %v/%v: data differs (%d vs %d bytes)", coord, sub, len(bufS), len(bufB))
	}
	return dS
}

// mixedWorkload drives the pair through row, column, and tile writes, reads,
// and overwrites (read-modify-write) at advancing issue times.
func mixedWorkload(t *testing.T, p *diffPair, rounds int) {
	rng := rand.New(rand.NewSource(99))
	payload := func(n int64, tag byte) []byte {
		b := make([]byte, n*4)
		rng.Read(b)
		for i := int64(0); i < n; i += 7 {
			b[i*4] = tag
		}
		return b
	}
	at := sim.Time(0)
	for r := 0; r < rounds; r++ {
		// Row bands, column bands, and tiles of a 128x128 space.
		at = p.write(t, at, []int64{int64(r % 4), 0}, []int64{32, 128}, payload(32*128, byte(r)))
		at = p.read(t, at, []int64{0, int64(r % 4)}, []int64{128, 32})
		at = p.write(t, at, []int64{int64(r % 2), int64(r % 2)}, []int64{64, 64}, payload(64*64, byte(r+1)))
		at = p.read(t, at, []int64{int64(r % 4), int64(r % 4)}, []int64{32, 32})
		// Sub-page partitions: exercise partial coverage and RMW.
		at = p.write(t, at, []int64{int64(8 + r%8), int64(r % 16)}, []int64{8, 8}, payload(8*8, byte(r+2)))
		at = p.read(t, at, []int64{int64(r % 16), int64(8 + r%8)}, []int64{8, 8})
	}
	// Whole-space read as the final byte-identity check.
	p.read(t, at, []int64{0, 0}, []int64{128, 128})
}

func TestDifferentialMixedWorkload(t *testing.T) {
	p := newDiffPair(t, 4, []int64{128, 128}, []int64{128, 128}, nil)
	mixedWorkload(t, p, 6)
}

func TestDifferentialWriteBuffering(t *testing.T) {
	p := newDiffPair(t, 4, []int64{128, 128}, []int64{128, 128},
		func(c *Config) { c.WriteBuffering = true })
	mixedWorkload(t, p, 6)
	// Flush staged pages on both and compare completions.
	dS, errS := p.scalar.Flush(0)
	dB, errB := p.batched.Flush(0)
	if errS != nil || errB != nil || dS != dB {
		t.Fatalf("flush diverges: scalar (%d, %v) batched (%d, %v)", dS, errS, dB, errB)
	}
	p.read(t, dS, []int64{0, 0}, []int64{128, 128})
}

func TestDifferentialZeroPageElision(t *testing.T) {
	p := newDiffPair(t, 4, []int64{128, 128}, []int64{128, 128},
		func(c *Config) { c.ZeroPageElision = true })
	at := p.write(t, 0, []int64{0, 0}, []int64{128, 128}, make([]byte, 128*128*4))
	mixedWorkload(t, p, 4)
	// Overwrite a written region with zeros: units must be released on both.
	at = p.write(t, at, []int64{0, 0}, []int64{64, 64}, make([]byte, 64*64*4))
	p.read(t, at, []int64{0, 0}, []int64{128, 128})
	if us, ub := p.scalar.UsedPages(), p.batched.UsedPages(); us != ub {
		t.Fatalf("used pages diverge: scalar=%d batched=%d", us, ub)
	}
}

func TestDifferentialCompression(t *testing.T) {
	p := newDiffPair(t, 4, []int64{128, 128}, []int64{128, 128},
		func(c *Config) { c.Compress = true })
	// Compressible payloads (the rng-free variant deflates well).
	data := make([]byte, 64*64*4)
	for i := range data {
		data[i] = byte(i % 7)
	}
	at := p.write(t, 0, []int64{0, 0}, []int64{64, 64}, data)
	at = p.write(t, at, []int64{1, 1}, []int64{64, 64}, data)
	at = p.read(t, at, []int64{0, 0}, []int64{128, 32})
	at = p.read(t, at, []int64{0, 1}, []int64{32, 128})
	p.read(t, at, []int64{0, 0}, []int64{128, 128})
}

// TestDifferentialGCPressure overwrites until garbage collection runs on
// both paths; the gcFlush hook must keep the batched path's device-operation
// order (and therefore timing and placement) exactly scalar.
func TestDifferentialGCPressure(t *testing.T) {
	p := newDiffPair(t, 4, []int64{128, 128}, []int64{128, 128},
		func(c *Config) { c.OverProvision = 0.5; c.GCLowWater = 0.3 })
	rng := rand.New(rand.NewSource(7))
	at := sim.Time(0)
	for r := 0; r < 60; r++ {
		data := make([]byte, 64*128*4)
		rng.Read(data)
		at = p.write(t, at, []int64{int64(r % 2), 0}, []int64{64, 128}, data)
		if r%5 == 4 {
			at = p.read(t, at, []int64{0, 0}, []int64{128, 128})
		}
	}
	eS, mS := p.scalar.GCStats()
	eB, mB := p.batched.GCStats()
	if eS == 0 {
		t.Fatal("workload never triggered GC; raise the pressure")
	}
	if eS != eB || mS != mB {
		t.Fatalf("GC work diverges: scalar (erases=%d moves=%d) batched (erases=%d moves=%d)", eS, mS, eB, mB)
	}
	p.read(t, at, []int64{0, 0}, []int64{128, 128})
}
