package stl

import (
	"errors"
	"fmt"

	"nds/internal/nvm"
	"nds/internal/sim"
)

// requestScratch is the reusable working state of one partition request: the
// extent list, translation counters, block/page lookup tables, the device
// batch buffers, and a freelist of page-sized staging buffers. Instances
// live in the STL's sync.Pool; a request takes one, uses it exclusively, and
// returns it, so the steady-state data path allocates nothing per request.
//
// Ownership rule: nothing in a scratch may outlive the request. Data handed
// back to callers (partition buffers) is either freshly allocated or the
// caller's own; page buffers return to the freelist only once the device has
// copied them (ProgramPages copies before returning).
type requestScratch struct {
	exts  []Extent
	shape []int64
	outer []int64
	cur   []int64
	sc    []int64 // storage-coordinate scratch
	gcrd  []int64 // grid-coordinate scratch

	space  *Space // the request's space, for cache fills at flush time
	blocks map[int64]*BuildingBlock

	// Read plan: pageIdx maps a touched page to its slot in pageData; device
	// reads batch into ppas/planOf until a flush fills the corresponding
	// pageData entries via nvm.ReadPages. fillKeys parallels ppas with each
	// read's building-block page, so a flush can install the results in the
	// block cache (populated only when the cache is enabled).
	pageIdx  map[pageKey]int32
	pageData [][]byte
	ppas     []nvm.PPA
	planOf   []int32
	fillKeys []pageKey
	datas    [][]byte
	images   blockImageCache

	// Write plan: stages in first-touch order, located via stageIdx; deferred
	// programs accumulate in ops until a flush point.
	stages   []writeStage
	stageIdx map[pageKey]int32
	ops      []nvm.ProgramOp

	// Segment emission (segments.go): reused across requests; Src pointers
	// are cleared on put so the pool never pins arena frames.
	segs []Segment

	bufs [][]byte // page-buffer freelist
}

// writeStage is one destination page of a write request and the extents that
// land on it (indexes into the request's extent list).
type writeStage struct {
	blk      *BuildingBlock
	blockIdx int64
	page     int
	covered  int64
	extents  []int32
}

// maxPooledBufs bounds how many page buffers a pooled scratch retains.
const maxPooledBufs = 64

// getScratch takes a scratch from the pool, sized for space s.
func (t *STL) getScratch(s *Space) *requestScratch {
	rs, _ := t.scratch.Get().(*requestScratch)
	if rs == nil {
		rs = &requestScratch{
			blocks:   make(map[int64]*BuildingBlock),
			pageIdx:  make(map[pageKey]int32),
			stageIdx: make(map[pageKey]int32),
			images:   make(blockImageCache),
		}
	}
	rs.gcrd = growInt64(rs.gcrd, len(s.grid))
	rs.space = s
	return rs
}

// putScratch resets rs and returns it to the pool. Data-bearing pointers are
// cleared so a pooled scratch never pins device arenas or caller buffers.
func (t *STL) putScratch(rs *requestScratch) {
	rs.exts = rs.exts[:0]
	rs.space = nil
	clear(rs.blocks)
	clear(rs.pageIdx)
	clear(rs.stageIdx)
	clear(rs.images)
	for i := range rs.pageData {
		rs.pageData[i] = nil
	}
	rs.pageData = rs.pageData[:0]
	rs.ppas = rs.ppas[:0]
	rs.planOf = rs.planOf[:0]
	rs.fillKeys = rs.fillKeys[:0]
	for i := range rs.datas {
		rs.datas[i] = nil
	}
	rs.datas = rs.datas[:0]
	for i := range rs.stages {
		rs.stages[i].blk = nil
	}
	rs.stages = rs.stages[:0]
	for i := range rs.ops {
		rs.ops[i].Data = nil
	}
	rs.ops = rs.ops[:0]
	for i := range rs.segs {
		rs.segs[i].Src = nil
	}
	rs.segs = rs.segs[:0]
	if len(rs.bufs) > maxPooledBufs {
		rs.bufs = rs.bufs[:maxPooledBufs]
	}
	t.scratch.Put(rs)
}

// sized returns s with at least n elements (contents unspecified).
func growInt64(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	return s[:n]
}

// pageBuf returns a zeroed page-sized buffer, reusing the freelist.
func (rs *requestScratch) pageBuf(ps int) []byte {
	if n := len(rs.bufs); n > 0 {
		b := rs.bufs[n-1]
		rs.bufs[n-1] = nil
		rs.bufs = rs.bufs[:n-1]
		clear(b)
		return b
	}
	return make([]byte, ps)
}

// releaseBuf returns a page buffer to the freelist.
func (rs *requestScratch) releaseBuf(b []byte) {
	if b != nil {
		rs.bufs = append(rs.bufs, b)
	}
}

// nextStage appends a stage slot, reusing retained extent-index capacity.
func (rs *requestScratch) nextStage() int32 {
	if len(rs.stages) < cap(rs.stages) {
		rs.stages = rs.stages[:len(rs.stages)+1]
		st := &rs.stages[len(rs.stages)-1]
		st.blk, st.blockIdx, st.page, st.covered = nil, 0, 0, 0
		st.extents = st.extents[:0]
	} else {
		rs.stages = append(rs.stages, writeStage{})
	}
	return int32(len(rs.stages) - 1)
}

// translate fills rs.exts and rs.shape with the partition's extent
// decomposition, returning the extent list and payload byte count.
func (rs *requestScratch) translate(v *View, coord, sub []int64) ([]Extent, int64, error) {
	m, n := len(v.dims), len(v.space.dims)
	rs.shape = growInt64(rs.shape, m)
	rs.outer = growInt64(rs.outer, m)
	rs.cur = growInt64(rs.cur, m)
	rs.sc = growInt64(rs.sc, n)
	elems, err := v.partitionShapeInto(coord, sub, rs.shape)
	if err != nil {
		return nil, 0, err
	}
	rs.exts, _ = v.extentsInto(coord, sub, rs.shape, elems, rs.outer, rs.cur, rs.sc, rs.exts[:0])
	return rs.exts, elems * int64(v.space.elemSize), nil
}

// resolveBlock looks up (and caches) the building block for grid index g,
// charging traversal and distinct-block statistics exactly as the scalar
// path does.
func (t *STL) resolveBlock(rs *requestScratch, s *Space, g int64, alloc bool, stats *RequestStats) *BuildingBlock {
	blk, ok := rs.blocks[g]
	if !ok {
		s.GridCoord(g, rs.gcrd)
		var steps int
		blk, steps = t.block(s, rs.gcrd, alloc)
		rs.blocks[g] = blk
		stats.Traversals += steps
		if blk != nil {
			stats.Blocks++
		}
	}
	return blk
}

// flushReads issues the batched page reads collected so far, storing each
// result in its plan slot, and folds the batch completion into done.
func (t *STL) flushReads(rs *requestScratch, at sim.Time, done *sim.Time) error {
	if len(rs.ppas) == 0 {
		return nil
	}
	for len(rs.datas) < len(rs.ppas) {
		rs.datas = append(rs.datas, nil)
	}
	d, err := t.dev.ReadPages(at, rs.ppas, rs.datas)
	if err != nil {
		return err
	}
	*done = sim.Max(*done, d)
	fill := t.cache != nil && len(rs.fillKeys) == len(rs.ppas)
	for i := range rs.ppas {
		rs.pageData[rs.planOf[i]] = rs.datas[i]
		if fill {
			k := rs.fillKeys[i]
			t.cache.fill(rs.space, k.block, k.page, rs.datas[i], d, false)
		}
		rs.datas[i] = nil
	}
	rs.ppas = rs.ppas[:0]
	rs.planOf = rs.planOf[:0]
	rs.fillKeys = rs.fillKeys[:0]
	return nil
}

// flushPrograms issues the deferred program batch and recycles its page
// buffers. Called at every point where the scalar path would already have
// issued these programs before the next device operation (RMW reads, GC,
// request end), which is what keeps batched timing identical to scalar.
//
// Queued ops were bound when appended, so recovery from an injected program
// fault rebinds through the reverse-lookup table: the faulted op's block is
// retired, its data redirected to a fresh unit, and the rest of the batch
// retried from the failed attempt's completion. An unrecoverable failure
// unbinds every op that did not land, so bound units are always programmed
// units. Recovery allocates with takeUnitRaw (no GC), so it cannot re-enter
// this flush through the request's allocCtx flush hook.
func (t *STL) flushPrograms(rs *requestScratch, done *sim.Time, stats *RequestStats) error {
	if len(rs.ops) == 0 {
		return nil
	}
	ops := rs.ops
	defer func() {
		for i := range rs.ops {
			rs.releaseBuf(rs.ops[i].Data)
			rs.ops[i].Data = nil
		}
		rs.ops = rs.ops[:0]
	}()
	retries := 0
	for len(ops) > 0 {
		d, err := t.dev.ProgramPages(ops)
		if err == nil {
			*done = sim.Max(*done, d)
			return nil
		}
		var pe *nvm.ProgramError
		if !errors.As(err, &pe) {
			// Validation failure: no op landed; drop the whole batch's
			// translation state.
			t.unbindOps(ops)
			return err
		}
		*done = sim.Max(*done, d)
		if pe.Index > 0 {
			retries = 0 // progress since the last fault
		}
		ops = ops[pe.Index:] // the stored prefix stays bound
		t.retireBlock(pe.P.Channel, pe.P.Bank, pe.P.Block)
		if retries++; retries > maxProgramRetries {
			t.unbindOps(ops)
			return fmt.Errorf("stl: program of %v: %d relocation attempts failed: %w", pe.P, retries, ErrMedia)
		}
		np, ok := t.allocateRecoveryUnit(pe.P)
		if !ok {
			t.unbindOps(ops)
			return fmt.Errorf("stl: no unit available to relocate faulted program at %v: %w", pe.P, ErrMedia)
		}
		if !t.rebindFaulted(pe.P, np) {
			t.unbindOps(ops)
			return fmt.Errorf("stl: faulted program at %v is not bound to any building block: %w", pe.P, ErrMedia)
		}
		t.programRetries.Add(1)
		if stats != nil {
			stats.ProgramRetries++
		}
		ops[0].P = np
		ops[0].At = pe.Done
	}
	return nil
}
