package stl

import (
	"math/rand"
	"testing"

	"nds/internal/nvm"
)

// TestWearSpreadsAcrossDies: sustained overwrite churn must distribute
// erases across dies rather than burning out a few — the even-wearing
// property §5.3.4 relies on ("NDS can still ensure performance and
// even-wearing").
func TestWearSpreadsAcrossDies(t *testing.T) {
	geo := nvm.Geometry{Channels: 4, Banks: 2, BlocksPerBank: 8, PagesPerBlock: 8, PageSize: 512}
	dev, err := nvm.NewDevice(geo, nvm.TLCTiming(), true)
	if err != nil {
		t.Fatal(err)
	}
	st, err := New(dev, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s, err := st.CreateSpace(4, []int64{160, 160})
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewView(s, []int64{160, 160})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	if _, _, err := st.WritePartition(0, v, []int64{0, 0}, []int64{160, 160}, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		sub := []int64{32, 32}
		coord := []int64{rng.Int63n(5), rng.Int63n(5)}
		if _, _, err := st.WritePartition(0, v, coord, sub, nil); err != nil {
			t.Fatalf("churn %d: %v", i, err)
		}
	}
	erases, _ := st.GCStats()
	if erases == 0 {
		t.Skip("churn did not trigger GC at this geometry")
	}
	// Per-die erase totals.
	var counts []int64
	var total, maxC int64
	minC := int64(1 << 62)
	for ch := 0; ch < geo.Channels; ch++ {
		for bk := 0; bk < geo.Banks; bk++ {
			var c int64
			for blk := 0; blk < geo.BlocksPerBank; blk++ {
				c += dev.EraseCount(nvm.PPA{Channel: ch, Bank: bk, Block: blk})
			}
			counts = append(counts, c)
			total += c
			if c > maxC {
				maxC = c
			}
			if c < minC {
				minC = c
			}
		}
	}
	if minC == 0 {
		t.Fatalf("some die never erased: %v", counts)
	}
	avg := float64(total) / float64(len(counts))
	if float64(maxC) > 3*avg {
		t.Fatalf("wear skewed: max %d vs avg %.1f (%v)", maxC, avg, counts)
	}
}

// TestWearAwareVictimSelectionSpreadsWithinDie: victim selection blends the
// greedy most-invalid policy with erase-count age — among near-greedy
// candidates the youngest block wins — so sustained churn on one die must
// spread erases across all of its blocks instead of recycling a favourite few.
func TestWearAwareVictimSelectionSpreadsWithinDie(t *testing.T) {
	geo := nvm.Geometry{Channels: 1, Banks: 1, BlocksPerBank: 8, PagesPerBlock: 4, PageSize: 512}
	dev, err := nvm.NewDevice(geo, nvm.TLCTiming(), true)
	if err != nil {
		t.Fatal(err)
	}
	st, err := New(dev, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s, err := st.CreateSpace(4, []int64{32, 32}) // 4 blocks of 16x16, 8 pages live
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewView(s, []int64{32, 32})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.WritePartition(0, v, []int64{0, 0}, []int64{32, 32}, nil); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 300; i++ {
		coord := []int64{rng.Int63n(2), rng.Int63n(2)}
		if _, _, err := st.WritePartition(0, v, coord, []int64{16, 16}, nil); err != nil {
			t.Fatalf("churn %d: %v", i, err)
		}
	}
	erases, _ := st.GCStats()
	if erases == 0 {
		t.Fatal("churn of many times the die's capacity never triggered GC")
	}
	var total, maxC int64
	minC := int64(1 << 62)
	counts := make([]int64, geo.BlocksPerBank)
	for b := 0; b < geo.BlocksPerBank; b++ {
		counts[b] = dev.EraseCount(nvm.PPA{Block: b})
		total += counts[b]
		if counts[b] > maxC {
			maxC = counts[b]
		}
		if counts[b] < minC {
			minC = counts[b]
		}
	}
	if minC == 0 {
		t.Fatalf("some block never erased despite wear-aware selection: %v", counts)
	}
	avg := float64(total) / float64(len(counts))
	if float64(maxC) > 2.5*avg {
		t.Fatalf("within-die wear skewed: max %d vs avg %.1f (%v)", maxC, avg, counts)
	}
}
