package stl

import (
	"math/rand"
	"testing"

	"nds/internal/nvm"
)

// TestWearSpreadsAcrossDies: sustained overwrite churn must distribute
// erases across dies rather than burning out a few — the even-wearing
// property §5.3.4 relies on ("NDS can still ensure performance and
// even-wearing").
func TestWearSpreadsAcrossDies(t *testing.T) {
	geo := nvm.Geometry{Channels: 4, Banks: 2, BlocksPerBank: 8, PagesPerBlock: 8, PageSize: 512}
	dev, err := nvm.NewDevice(geo, nvm.TLCTiming(), true)
	if err != nil {
		t.Fatal(err)
	}
	st, err := New(dev, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s, err := st.CreateSpace(4, []int64{160, 160})
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewView(s, []int64{160, 160})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	if _, _, err := st.WritePartition(0, v, []int64{0, 0}, []int64{160, 160}, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		sub := []int64{32, 32}
		coord := []int64{rng.Int63n(5), rng.Int63n(5)}
		if _, _, err := st.WritePartition(0, v, coord, sub, nil); err != nil {
			t.Fatalf("churn %d: %v", i, err)
		}
	}
	erases, _ := st.GCStats()
	if erases == 0 {
		t.Skip("churn did not trigger GC at this geometry")
	}
	// Per-die erase totals.
	var counts []int64
	var total, maxC int64
	minC := int64(1 << 62)
	for ch := 0; ch < geo.Channels; ch++ {
		for bk := 0; bk < geo.Banks; bk++ {
			var c int64
			for blk := 0; blk < geo.BlocksPerBank; blk++ {
				c += dev.EraseCount(nvm.PPA{Channel: ch, Bank: bk, Block: blk})
			}
			counts = append(counts, c)
			total += c
			if c > maxC {
				maxC = c
			}
			if c < minC {
				minC = c
			}
		}
	}
	if minC == 0 {
		t.Fatalf("some die never erased: %v", counts)
	}
	avg := float64(total) / float64(len(counts))
	if float64(maxC) > 3*avg {
		t.Fatalf("wear skewed: max %d vs avg %.1f (%v)", maxC, avg, counts)
	}
}
