package stl

import (
	"bytes"
	"math/rand"
	"testing"

	"nds/internal/nvm"
)

func newBufferedSTL(t *testing.T) *STL {
	t.Helper()
	dev, err := nvm.NewDevice(smallGeo(), nvm.TLCTiming(), false)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.WriteBuffering = true
	st, err := New(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestBufferedSubUnitWrites: a producer streaming pieces smaller than a page
// must not program anything until units fill — and reads in between must see
// the staged bytes (§4.4).
func TestBufferedSubUnitWrites(t *testing.T) {
	st := newBufferedSTL(t)
	s := mustSpace(t, st, 4, 64, 64) // 32x32 blocks, 512B pages = 4 block rows/page
	v := mustView(t, s, 64, 64)
	rng := rand.New(rand.NewSource(41))

	// One matrix row contributes 128 B per block: far below a page.
	row := fillRandom(rng, 64*4)
	if _, stats, err := st.WritePartition(0, v, []int64{7, 0}, []int64{1, 64}, row); err != nil {
		t.Fatal(err)
	} else if stats.PagesProgrammed != 0 {
		t.Fatalf("sub-unit write programmed %d pages, want 0 (staged)", stats.PagesProgrammed)
	}
	if st.PendingPages() == 0 {
		t.Fatal("nothing staged")
	}
	// The staged bytes serve reads immediately.
	got, _, rs, err := st.ReadPartition(0, v, []int64{7, 0}, []int64{1, 64})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, row) {
		t.Fatal("staged bytes not visible to reads")
	}
	if rs.PagesRead != 0 {
		t.Fatalf("read of staged data touched %d device pages", rs.PagesRead)
	}

	// Completing the surrounding rows fills the pages and programs them.
	ref := newRefModel(s)
	ref.scatter(v.Dims(), []int64{7, 0}, []int64{1, 64}, row)
	var programmed int64
	for r := int64(0); r < 64; r++ {
		if r == 7 {
			continue
		}
		data := fillRandom(rng, 64*4)
		_, ws, err := st.WritePartition(0, v, []int64{r, 0}, []int64{1, 64}, data)
		if err != nil {
			t.Fatal(err)
		}
		programmed += ws.PagesProgrammed
		ref.scatter(v.Dims(), []int64{r, 0}, []int64{1, 64}, data)
	}
	if programmed == 0 {
		t.Fatal("filled units were never programmed")
	}
	if st.PendingPages() != 0 {
		t.Fatalf("%d pages still pending after full coverage", st.PendingPages())
	}
	got, _, _, err = st.ReadPartition(0, v, []int64{0, 0}, []int64{64, 64})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, ref.gather(v.Dims(), []int64{0, 0}, []int64{64, 64})) {
		t.Fatal("buffered write sequence corrupted data")
	}
}

func TestFlushProgramsPending(t *testing.T) {
	st := newBufferedSTL(t)
	s := mustSpace(t, st, 4, 64, 64)
	v := mustView(t, s, 64, 64)
	rng := rand.New(rand.NewSource(42))
	row := fillRandom(rng, 64*4)
	if _, _, err := st.WritePartition(0, v, []int64{3, 0}, []int64{1, 64}, row); err != nil {
		t.Fatal(err)
	}
	if st.PendingPages() == 0 {
		t.Fatal("nothing pending")
	}
	before := st.UsedPages()
	if _, err := st.Flush(0); err != nil {
		t.Fatal(err)
	}
	if st.PendingPages() != 0 {
		t.Fatal("flush left pending pages")
	}
	if st.UsedPages() <= before {
		t.Fatal("flush allocated no units")
	}
	got, _, _, err := st.ReadPartition(0, v, []int64{3, 0}, []int64{1, 64})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, row) {
		t.Fatal("flushed data wrong")
	}
}

// TestBufferedPropertyRoundTrip re-runs the random-partition property drive
// with write buffering enabled plus a final flush.
func TestBufferedPropertyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2025))
	for trial := 0; trial < 12; trial++ {
		st := newBufferedSTL(t)
		dims := []int64{3 + rng.Int63n(60), 3 + rng.Int63n(60)}
		s, err := st.CreateSpace(4, dims)
		if err != nil {
			t.Fatal(err)
		}
		ref := newRefModel(s)
		v := mustView(t, s, dims...)
		for w := 0; w < 6; w++ {
			sub := []int64{1 + rng.Int63n(dims[0]), 1 + rng.Int63n(dims[1])}
			coord := []int64{rng.Int63n((dims[0] + sub[0] - 1) / sub[0]), rng.Int63n((dims[1] + sub[1] - 1) / sub[1])}
			_, n, err := v.PartitionShape(coord, sub)
			if err != nil {
				t.Fatal(err)
			}
			data := fillRandom(rng, n*4)
			if _, _, err := st.WritePartition(0, v, coord, sub, data); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			ref.scatter(v.Dims(), coord, sub, data)
		}
		if _, err := st.Flush(0); err != nil {
			t.Fatal(err)
		}
		got, _, _, err := st.ReadPartition(0, v, []int64{0, 0}, dims)
		if err != nil {
			t.Fatal(err)
		}
		want := ref.gather(v.Dims(), []int64{0, 0}, dims)
		if !bytes.Equal(got, want) {
			t.Fatalf("trial %d: buffered round-trip mismatch (dims %v)", trial, dims)
		}
	}
}

func TestDeleteSpaceDropsPending(t *testing.T) {
	st := newBufferedSTL(t)
	s := mustSpace(t, st, 4, 64, 64)
	v := mustView(t, s, 64, 64)
	if _, _, err := st.WritePartition(0, v, []int64{0, 0}, []int64{1, 64}, make([]byte, 64*4)); err != nil {
		t.Fatal(err)
	}
	if st.PendingPages() == 0 {
		t.Fatal("nothing pending")
	}
	if err := st.DeleteSpace(s.ID()); err != nil {
		t.Fatal(err)
	}
	if st.PendingPages() != 0 {
		t.Fatal("delete left pending pages for a dead space")
	}
	if _, err := st.Flush(0); err != nil {
		t.Fatal(err)
	}
}
