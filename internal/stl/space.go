// Package stl implements the paper's core contribution: the space
// translation layer. The STL manages application-defined multi-dimensional
// address spaces over a raw flash array, storing each space as fixed-size
// building blocks whose pages are spread across all parallel channels (and
// banks for 3-D blocks), so that row, column, and tile accesses all engage
// full device parallelism. It contains:
//
//   - building-block sizing following the paper's Equations 1-4 (space.go)
//   - the N-level B-tree index from §4.2 (index.go)
//   - the channel/bank allocation policy and garbage collection with a
//     reverse-lookup table from §4.2 (alloc.go, gc.go)
//   - the space translator of §4.3 that remaps partitions requested in an
//     arbitrary application view onto building-block extents (translate.go)
//   - read assembly and write decomposition from §4.4 (stl.go)
package stl

import (
	"fmt"
	"sync"

	"nds/internal/nvm"
)

// SpaceID identifies an address space within one STL instance.
type SpaceID uint32

// Space is a multi-dimensional address space backed by building blocks.
type Space struct {
	id       SpaceID
	elemSize int
	dims     []int64 // d_1..d_n, d_n fastest-varying (row-major)
	bb       []int64 // building-block extent per dimension (1 beyond BB order)
	grid     []int64 // ceil(dims/bb): building blocks per dimension

	bbElems    int64 // elements per building block (including edge padding)
	bbBytes    int64 // bytes per building block
	pagesPerBB int   // basic access units per building block

	// mu is the space's data-path lock: partition reads hold it shared,
	// partition writes exclusive, so writers to *different* spaces run in
	// parallel while a space's own readers never observe a half-applied
	// write. It guards the index tree (root and below), the per-block usage
	// state, and the allocation statistics. In the STL lock order it sits
	// between maintMu and the die locks.
	mu sync.RWMutex

	root *indexNode
	// Statistics maintained by the STL (guarded by mu).
	allocatedBBs   int64
	allocatedPages int64
}

// ID returns the space identifier.
func (s *Space) ID() SpaceID { return s.id }

// ElemSize returns the element size in bytes.
func (s *Space) ElemSize() int { return s.elemSize }

// Dims returns a copy of the space dimensionality.
func (s *Space) Dims() []int64 { return append([]int64(nil), s.dims...) }

// BlockDims returns a copy of the building-block dimensionality.
func (s *Space) BlockDims() []int64 { return append([]int64(nil), s.bb...) }

// GridDims returns a copy of the building-block grid dimensionality.
func (s *Space) GridDims() []int64 { return append([]int64(nil), s.grid...) }

// PagesPerBlock returns the number of basic access units per building block.
func (s *Space) PagesPerBlock() int { return s.pagesPerBB }

// Volume returns the number of elements in the space.
func (s *Space) Volume() int64 { return prod(s.dims) }

// Bytes returns the logical byte size of the space.
func (s *Space) Bytes() int64 { return s.Volume() * int64(s.elemSize) }

// AllocatedBlocks reports how many building blocks hold at least one unit.
func (s *Space) AllocatedBlocks() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.allocatedBBs
}

// AllocatedPages reports how many access units the space occupies.
func (s *Space) AllocatedPages() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.allocatedPages
}

func (s *Space) String() string {
	return fmt.Sprintf("space %d: dims=%v elem=%dB bb=%v grid=%v (%d pages/bb)",
		s.id, s.dims, s.elemSize, s.bb, s.grid, s.pagesPerBB)
}

// prod multiplies the entries of v (1 for empty v).
func prod(v []int64) int64 {
	p := int64(1)
	for _, x := range v {
		p *= x
	}
	return p
}

// ceilDiv is ceil(a/b) for positive b.
func ceilDiv(a, b int64) int64 { return (a + b - 1) / b }

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// ceilPow2 rounds n up to the next power of two (minimum 1).
func ceilPow2(n int64) int64 {
	p := int64(1)
	for p < n {
		p <<= 1
	}
	return p
}

// ceilLog2 returns ceil(log2(n)) for n >= 1.
func ceilLog2(n int64) int {
	k, p := 0, int64(1)
	for p < n {
		p <<= 1
		k++
	}
	return k
}

// rank converts a coordinate to its row-major linear index within dims.
func rank(coord, dims []int64) int64 {
	var idx int64
	for i := range dims {
		idx = idx*dims[i] + coord[i]
	}
	return idx
}

// unrank converts a row-major linear index to a coordinate within dims,
// filling out (which must have len(dims)).
func unrank(idx int64, dims, out []int64) {
	for i := len(dims) - 1; i >= 0; i-- {
		out[i] = idx % dims[i]
		idx /= dims[i]
	}
}

// BlockSizing describes how the STL sized building blocks for a space; it is
// exposed so tools and experiments can report the decision.
type BlockSizing struct {
	MinBytes   int64   // Equation 1 (or 3 for 3-D blocks)
	Order      int     // building-block dimensionality (1, 2, or 3)
	PerDim     int64   // elements per blocked dimension (Equations 2 / 4)
	Dims       []int64 // resulting bb vector, one entry per space dimension
	Bytes      int64   // bytes per building block
	PagesPerBB int     // basic access units per building block
}

// SizeBuildingBlock applies the paper's Equations 1-4.
//
// Equation 1: BB_min = MaxParallelRequests x BasicAccessGranularity, i.e. the
// channel count times the page size, so a minimum block spans one page on
// every channel. Equation 2 splits a 2-D block evenly:
// each dimension holds 2^ceil(log2(BB_min/N)/2) elements for element size N.
// Equation 3 scales BB_min by the bank count for 3-D blocks and Equation 4
// splits evenly across three dimensions.
//
// order selects the block dimensionality; 0 picks the paper default (2-D for
// spaces with >= 2 dims, 1-D otherwise; 3-D only on request). multiplier >= 1
// scales each blocked dimension, matching the prototype's use of 256x256
// blocks where Equation 2 yields 128x128.
func SizeBuildingBlock(geo nvm.Geometry, elemSize, ndims, order, multiplier int) (BlockSizing, error) {
	if elemSize <= 0 {
		return BlockSizing{}, fmt.Errorf("stl: element size must be positive, got %d: %w", elemSize, ErrInvalid)
	}
	if ndims <= 0 {
		return BlockSizing{}, fmt.Errorf("stl: space needs at least one dimension: %w", ErrInvalid)
	}
	if multiplier < 1 {
		multiplier = 1
	}
	if order == 0 {
		if ndims >= 2 {
			order = 2
		} else {
			order = 1
		}
	}
	if order < 1 || order > 3 {
		return BlockSizing{}, fmt.Errorf("stl: building-block order %d unsupported (1-3): %w", order, ErrInvalid)
	}
	if order > ndims {
		order = ndims
	}

	minBytes := int64(geo.Channels) * int64(geo.PageSize) // Equation 1
	if order == 3 {
		minBytes *= int64(geo.Banks) // Equation 3
	}
	elems := ceilDiv(minBytes, int64(elemSize))
	perDim := int64(1) << uint((ceilLog2(elems)+order-1)/order) // Equations 2/4
	perDim *= int64(multiplier)

	// Blocks cover the lowest-order (fastest-varying) dimensions — the
	// paper's (bb_1..bb_n) with bb_i = 1 for i > 3, where d_1 is the lowest
	// order; in this package's row-major dims the trailing entries.
	bb := make([]int64, ndims)
	for i := range bb {
		bb[i] = 1
	}
	for i := ndims - order; i < ndims; i++ {
		bb[i] = perDim
	}
	bytes := prod(bb) * int64(elemSize)
	return BlockSizing{
		MinBytes:   minBytes,
		Order:      order,
		PerDim:     perDim,
		Dims:       bb,
		Bytes:      bytes,
		PagesPerBB: int(ceilDiv(bytes, int64(geo.PageSize))),
	}, nil
}
