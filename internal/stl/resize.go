package stl

import "fmt"

// Space restructuring (§5.1): passing an existing identifier to the space
// creation/management API asks the STL to "expand, shrink, or restructure
// the existing space". Growth and shrinkage happen along the outermost
// (highest-order) dimension, which preserves the row-major placement of
// every existing element — and, because the B-tree root corresponds to the
// highest-order dimension (Figure 6), the restructure touches only the root
// node.

// ResizeSpace changes dimension 0 of a space to newDim0.
//
// Growing exposes fresh, zero-reading coordinates. Shrinking invalidates
// every building block whose grid row falls beyond the new bound, releasing
// its units; a later re-grow reads zeros there.
func (t *STL) ResizeSpace(id SpaceID, newDim0 int64) error {
	t.maintMu.Lock()
	defer t.maintMu.Unlock()
	s, ok := t.spaces[id]
	if !ok {
		return fmt.Errorf("stl: resize of space %d: %w", id, ErrUnknownSpace)
	}
	if newDim0 <= 0 {
		return fmt.Errorf("stl: new dimension must be positive, got %d: %w", newDim0, ErrInvalid)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	newGrid0 := ceilDiv(newDim0, s.bb[0])
	oldGrid0 := s.grid[0]
	if newGrid0 < oldGrid0 {
		// Staged (§4.4) pages beyond the new bound are discarded with their
		// blocks.
		stride := prod(s.grid[1:])
		t.pendingMu.Lock()
		for k := range t.pending {
			if k.space == id && k.block/stride >= newGrid0 {
				delete(t.pending, k)
			}
		}
		t.pendingMu.Unlock()
	}
	if s.root != nil {
		switch {
		case newGrid0 > oldGrid0:
			if s.root.blocks != nil { // 1-D space: the root is the leaf
				grown := make([]*BuildingBlock, newGrid0)
				copy(grown, s.root.blocks)
				s.root.blocks = grown
			} else {
				grown := make([]*indexNode, newGrid0)
				copy(grown, s.root.children)
				s.root.children = grown
			}
		case newGrid0 < oldGrid0:
			if s.root.blocks != nil {
				for i := newGrid0; i < int64(len(s.root.blocks)); i++ {
					t.dropBlock(s, s.root.blocks[i])
					s.root.blocks[i] = nil
				}
				s.root.blocks = s.root.blocks[:newGrid0]
			} else {
				for i := newGrid0; i < int64(len(s.root.children)); i++ {
					t.invalidateSubtree(s, s.root.children[i])
					s.root.children[i] = nil
				}
				s.root.children = s.root.children[:newGrid0]
			}
		}
	}
	if t.cache != nil {
		// Grid reindexing: block grid indexes are rank positions in the grid,
		// so resizing dimension 0 leaves every surviving block's index intact
		// (dimension 0 is the outermost rank digit) — but shrink-then-grow
		// must never resurrect a dropped block's bytes, so the whole space is
		// purged rather than tracking which indexes survived.
		t.cache.invalidateSpace(id)
	}
	s.dims[0] = newDim0
	s.grid[0] = newGrid0
	return nil
}

// dropBlock invalidates a block's units and removes it from the space's
// accounting.
func (t *STL) dropBlock(s *Space, blk *BuildingBlock) {
	if blk == nil {
		return
	}
	for j := range blk.pages {
		if blk.pages[j].allocated {
			t.invalidateUnit(blk.pages[j].ppa)
			blk.pages[j].allocated = false
			s.allocatedPages--
		}
	}
	s.allocatedBBs--
}

// invalidateSubtree drops every block beneath a node.
func (t *STL) invalidateSubtree(s *Space, n *indexNode) {
	if n == nil {
		return
	}
	if n.blocks != nil {
		for i, blk := range n.blocks {
			t.dropBlock(s, blk)
			n.blocks[i] = nil
		}
		return
	}
	for i, c := range n.children {
		t.invalidateSubtree(s, c)
		n.children[i] = nil
	}
}
