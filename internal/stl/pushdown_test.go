package stl

import (
	"encoding/binary"
	"errors"
	"math/rand"
	"sort"
	"testing"
)

// refElems decodes an assembled partition buffer into elements the way the
// pushdown kernels are specified to: little-endian unsigned, gaps as zeros.
func refElems(buf []byte, want, es int64) []uint64 {
	out := make([]uint64, want/es)
	for i := range out {
		var v uint64
		for b := int64(0); b < es; b++ {
			if off := int64(i)*es + b; off < int64(len(buf)) {
				v |= uint64(buf[off]) << (8 * b)
			}
		}
		out[i] = v
	}
	return out
}

func refScan(elems []uint64, q ScanQuery) ScanResult {
	res := ScanResult{NextCursor: -1}
	for i, v := range elems {
		if !q.Pred.matches(v) {
			continue
		}
		res.Total++
		if int64(i) < q.Cursor {
			continue
		}
		if q.Max > 0 && len(res.Matches) >= q.Max {
			if res.NextCursor < 0 {
				res.NextCursor = int64(i)
			}
			continue
		}
		res.Matches = append(res.Matches, Match{Index: int64(i), Value: v})
	}
	return res
}

func refReduce(elems []uint64, q ReduceQuery) ReduceResult {
	// The predicate gates every kind: only matching (index, value) pairs
	// participate in the reduction.
	var kept []Match
	for i, v := range elems {
		if q.Pred != nil && !q.Pred.matches(v) {
			continue
		}
		kept = append(kept, Match{Index: int64(i), Value: v})
	}
	res := ReduceResult{Index: -1}
	switch q.Kind {
	case ReduceSum:
		for _, m := range kept {
			res.Value += m.Value
		}
		res.Count = int64(len(kept))
	case ReduceCount:
		for _, m := range kept {
			if q.Pred != nil || m.Value != 0 {
				res.Count++
			}
		}
		res.Value = uint64(res.Count)
	case ReduceMin:
		for _, m := range kept {
			if res.Count == 0 || m.Value < res.Value {
				res.Value, res.Index = m.Value, m.Index
			}
			res.Count++
		}
	case ReduceMax:
		for _, m := range kept {
			if res.Count == 0 || m.Value > res.Value {
				res.Value, res.Index = m.Value, m.Index
			}
			res.Count++
		}
	case ReduceTopK:
		all := kept
		sort.Slice(all, func(i, j int) bool {
			if all[i].Value != all[j].Value {
				return all[i].Value > all[j].Value
			}
			return all[i].Index < all[j].Index
		})
		if len(all) > q.K {
			all = all[:q.K]
		}
		res.TopK = all
		res.Count = int64(len(all))
		if len(all) > 0 {
			res.Value, res.Index = all[0].Value, all[0].Index
		}
	}
	return res
}

func scanEqual(a, b ScanResult) bool {
	if a.Total != b.Total || a.NextCursor != b.NextCursor || len(a.Matches) != len(b.Matches) {
		return false
	}
	for i := range a.Matches {
		if a.Matches[i] != b.Matches[i] {
			return false
		}
	}
	return true
}

func reduceEqual(a, b ReduceResult) bool {
	if a.Value != b.Value || a.Index != b.Index || a.Count != b.Count || len(a.TopK) != len(b.TopK) {
		return false
	}
	for i := range a.TopK {
		if a.TopK[i] != b.TopK[i] {
			return false
		}
	}
	return true
}

// TestPushdownScanMatchesRead: a pushdown scan must report exactly the
// matches a host computes over the assembled partition, for several element
// sizes and partitions, including partitions with unwritten (zero) regions.
func TestPushdownScanMatchesRead(t *testing.T) {
	for _, es := range []int{1, 2, 4, 8} {
		st := newTestSTL(t, false)
		s := mustSpace(t, st, es, 64, 64)
		v := mustView(t, s, 64, 64)
		rng := rand.New(rand.NewSource(int64(42 + es)))
		// Write only three quadrants: the fourth stays unwritten zeros.
		data := make([]byte, 32*32*es)
		for _, c := range [][]int64{{0, 0}, {0, 1}, {1, 0}} {
			for i := range data {
				data[i] = byte(rng.Intn(256))
			}
			if _, _, err := st.WritePartition(0, v, c, []int64{32, 32}, data); err != nil {
				t.Fatal(err)
			}
		}
		for _, part := range [][4]int64{{0, 0, 64, 64}, {1, 0, 32, 32}, {1, 1, 16, 16}, {0, 1, 48, 32}} {
			coord, sub := []int64{part[0], part[1]}, []int64{part[2], part[3]}
			buf, _, rstats, err := st.ReadPartition(0, v, coord, sub)
			if err != nil {
				t.Fatal(err)
			}
			elems := refElems(buf, rstats.Bytes, int64(es))
			for _, q := range []ScanQuery{
				{Pred: Predicate{Lo: 0, Hi: 20}},
				{Pred: Predicate{Lo: 0, Hi: 0}},
				{Pred: Predicate{Lo: 1, Hi: ^uint64(0)}},
				{Pred: Predicate{Lo: 100, Hi: 50000}, Cursor: 17, Max: 9},
			} {
				got, _, sstats, err := st.ScanPartition(0, v, coord, sub, q)
				if err != nil {
					t.Fatal(err)
				}
				if want := refScan(elems, q); !scanEqual(got, want) {
					t.Fatalf("es=%d part=%v q=%+v: scan mismatch\n got %+v\nwant %+v", es, part, q, got, want)
				}
				// Stats consistency: the scan reads the same partition the
				// read did — same payload bytes, extents, and pages.
				if sstats.Bytes != rstats.Bytes || sstats.Extents != rstats.Extents || sstats.PagesRead != rstats.PagesRead {
					t.Fatalf("es=%d part=%v: scan stats %+v != read stats %+v", es, part, sstats, rstats)
				}
			}
		}
	}
}

// TestPushdownReduceMatchesRead pins every reduction kind against the
// host-side reference over the assembled buffer.
func TestPushdownReduceMatchesRead(t *testing.T) {
	st := newTestSTL(t, false)
	s := mustSpace(t, st, 2, 64, 64)
	v := mustView(t, s, 64, 64)
	rng := rand.New(rand.NewSource(7))
	data := make([]byte, 64*32*2)
	for i := range data {
		data[i] = byte(rng.Intn(256))
	}
	// Left half written, right half zeros.
	if _, _, err := st.WritePartition(0, v, []int64{0, 0}, []int64{64, 32}, data); err != nil {
		t.Fatal(err)
	}
	coord, sub := []int64{0, 0}, []int64{64, 64}
	buf, _, rstats, err := st.ReadPartition(0, v, coord, sub)
	if err != nil {
		t.Fatal(err)
	}
	elems := refElems(buf, rstats.Bytes, 2)
	pred := &Predicate{Lo: 10, Hi: 1000}
	for _, q := range []ReduceQuery{
		{Kind: ReduceSum},
		{Kind: ReduceSum, Pred: pred},
		{Kind: ReduceCount},
		{Kind: ReduceCount, Pred: pred},
		{Kind: ReduceMin},
		{Kind: ReduceMin, Pred: pred},
		{Kind: ReduceMax},
		{Kind: ReduceMax, Pred: pred},
		{Kind: ReduceMax, Pred: &Predicate{Lo: 1 << 40, Hi: 1 << 41}}, // nothing matches
		{Kind: ReduceTopK, K: 1},
		{Kind: ReduceTopK, K: 8, Pred: pred},
		{Kind: ReduceTopK, K: 16},
		{Kind: ReduceTopK, K: 100000}, // k > n: every element comes back
	} {
		got, _, _, err := st.ReducePartition(0, v, coord, sub, q)
		if err != nil {
			t.Fatal(err)
		}
		if want := refReduce(elems, q); !reduceEqual(got, want) {
			t.Fatalf("q=%+v: reduce mismatch\n got %+v\nwant %+v", q, got, want)
		}
	}
}

// TestPushdownCursorResume: paging through a scan with a small Max and the
// returned NextCursor must enumerate exactly the unpaged match list.
func TestPushdownCursorResume(t *testing.T) {
	st := newTestSTL(t, false)
	s := mustSpace(t, st, 4, 64, 64)
	v := mustView(t, s, 64, 64)
	data := make([]byte, 64*64*4)
	for i := 0; i < 64*64; i++ {
		binary.LittleEndian.PutUint32(data[4*i:], uint32(i%50))
	}
	if _, _, err := st.WritePartition(0, v, []int64{0, 0}, []int64{64, 64}, data); err != nil {
		t.Fatal(err)
	}
	coord, sub := []int64{0, 0}, []int64{64, 64}
	pred := Predicate{Lo: 5, Hi: 7}
	full, _, _, err := st.ScanPartition(0, v, coord, sub, ScanQuery{Pred: pred})
	if err != nil {
		t.Fatal(err)
	}
	if full.NextCursor != -1 || int64(len(full.Matches)) != full.Total {
		t.Fatalf("unpaged scan should be complete: %+v", full)
	}
	var paged []Match
	cursor, pages := int64(0), 0
	for {
		res, _, _, err := st.ScanPartition(0, v, coord, sub, ScanQuery{Pred: pred, Cursor: cursor, Max: 7})
		if err != nil {
			t.Fatal(err)
		}
		if res.Total != full.Total {
			t.Fatalf("page %d: total %d != %d (pages must still report the true total)", pages, res.Total, full.Total)
		}
		paged = append(paged, res.Matches...)
		pages++
		if res.NextCursor < 0 {
			break
		}
		cursor = res.NextCursor
		if pages > len(full.Matches) {
			t.Fatal("cursor loop does not terminate")
		}
	}
	if pages < 2 {
		t.Fatalf("expected multiple pages, got %d", pages)
	}
	if len(paged) != len(full.Matches) {
		t.Fatalf("paged %d matches, want %d", len(paged), len(full.Matches))
	}
	for i := range paged {
		if paged[i] != full.Matches[i] {
			t.Fatalf("match %d: paged %+v != full %+v", i, paged[i], full.Matches[i])
		}
	}
}

// TestPushdownInvalidQueries: unsupported element sizes and malformed
// queries fail with ErrInvalid before touching the device.
func TestPushdownInvalidQueries(t *testing.T) {
	st := newTestSTL(t, false)
	s3 := mustSpace(t, st, 3, 64, 64) // 3-byte elements: no integer interpretation
	v3 := mustView(t, s3, 64, 64)
	if _, _, _, err := st.ScanPartition(0, v3, []int64{0, 0}, []int64{8, 8}, ScanQuery{Pred: Predicate{Hi: 1}}); !errors.Is(err, ErrInvalid) {
		t.Fatalf("scan over 3-byte elements: got %v, want ErrInvalid", err)
	}
	if _, _, _, err := st.ReducePartition(0, v3, []int64{0, 0}, []int64{8, 8}, ReduceQuery{Kind: ReduceSum}); !errors.Is(err, ErrInvalid) {
		t.Fatalf("reduce over 3-byte elements: got %v, want ErrInvalid", err)
	}
	s := mustSpace(t, st, 4, 64, 64)
	v := mustView(t, s, 64, 64)
	coord, sub := []int64{0, 0}, []int64{8, 8}
	if _, _, _, err := st.ScanPartition(0, v, coord, sub, ScanQuery{Pred: Predicate{Lo: 2, Hi: 1}}); !errors.Is(err, ErrInvalid) {
		t.Fatalf("inverted range: got %v, want ErrInvalid", err)
	}
	if _, _, _, err := st.ScanPartition(0, v, coord, sub, ScanQuery{Cursor: -1, Pred: Predicate{Hi: 1}}); !errors.Is(err, ErrInvalid) {
		t.Fatalf("negative cursor: got %v, want ErrInvalid", err)
	}
	if _, _, _, err := st.ReducePartition(0, v, coord, sub, ReduceQuery{Kind: ReduceTopK}); !errors.Is(err, ErrInvalid) {
		t.Fatalf("top-k without k: got %v, want ErrInvalid", err)
	}
	if _, _, _, err := st.ReducePartition(0, v, coord, sub, ReduceQuery{Kind: ReduceKind(99)}); !errors.Is(err, ErrInvalid) {
		t.Fatalf("unknown kind: got %v, want ErrInvalid", err)
	}
}

// TestForEachElementSegments drives the element walker over synthetic
// segment lists with gaps, adjacency, and element-straddling boundaries,
// comparing against a materialized buffer.
func TestForEachElementSegments(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		es := []int64{1, 2, 4, 8}[rng.Intn(4)]
		want := es * int64(1+rng.Intn(64))
		// Build random non-overlapping segments with arbitrary (non
		// element-aligned) boundaries.
		buf := make([]byte, want)
		var segs []Segment
		pos := int64(0)
		for pos < want {
			gap := int64(rng.Intn(7))
			pos += gap
			if pos >= want {
				break
			}
			n := int64(1 + rng.Intn(13))
			if pos+n > want {
				n = want - pos
			}
			src := make([]byte, n)
			rng.Read(src)
			copy(buf[pos:], src)
			segs = append(segs, Segment{Dst: pos, Src: src})
			pos += n
		}
		wantElems := refElems(buf, want, es)
		i := int64(0)
		forEachElement(want, es, segs, func(idx int64, v uint64) {
			if idx != i {
				t.Fatalf("trial %d: walker index %d, want %d", trial, idx, i)
			}
			if v != wantElems[idx] {
				t.Fatalf("trial %d es=%d: element %d = %#x, want %#x (segs %d)", trial, es, idx, v, wantElems[idx], len(segs))
			}
			i++
		})
		if i != int64(len(wantElems)) {
			t.Fatalf("trial %d: walked %d elements, want %d", trial, i, len(wantElems))
		}
	}
}

// TestTopKOrdering pins the heap's tie-breaking: descending value, then
// ascending index, truncated to k.
func TestTopKOrdering(t *testing.T) {
	vals := []uint64{5, 9, 1, 9, 5, 0, 9, 2}
	top := newTopK(4)
	for i, v := range vals {
		top.offer(int64(i), v)
	}
	got := top.sorted()
	want := []Match{{1, 9}, {3, 9}, {6, 9}, {0, 5}}
	if len(got) != len(want) {
		t.Fatalf("topk returned %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("topk[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}
