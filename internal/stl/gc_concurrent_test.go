package stl

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"nds/internal/nvm"
)

// TestBackgroundGCUnderConcurrentWriters: heavy overwrite churn from several
// writers on distinct spaces, with collection on the background worker. The
// churn cycles the raw capacity several times over, so the test fails unless
// watermark-driven collection actually reclaims blocks while the writers run;
// every space must read back exactly the bytes its writer last stored. CI
// runs this under -race, which makes it the race check for the per-space
// write locks, the per-die allocation state, and the GC commit protocol.
func TestBackgroundGCUnderConcurrentWriters(t *testing.T) {
	geo := nvm.Geometry{Channels: 4, Banks: 2, BlocksPerBank: 16, PagesPerBlock: 8, PageSize: 512}
	dev, err := nvm.NewDevice(geo, nvm.TLCTiming(), false)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.BackgroundGC = true
	st, err := New(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	const (
		writers = 4
		side    = 64 // 64x64 float32 per space; 32x32 building blocks
		iters   = 200
	)
	type client struct {
		s   *Space
		v   *View
		img []byte
	}
	clients := make([]*client, writers)
	for i := range clients {
		s, err := st.CreateSpace(4, []int64{side, side})
		if err != nil {
			t.Fatal(err)
		}
		v, err := NewView(s, []int64{side, side})
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = &client{s: s, v: v, img: make([]byte, side*side*4)}
	}

	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c *client) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(40 + i)))
			rng.Read(c.img)
			if _, _, err := st.WritePartition(0, c.v, []int64{0, 0}, []int64{side, side}, c.img); err != nil {
				errs <- err
				return
			}
			bb := c.s.BlockDims()[0] // 32
			tile := make([]byte, bb*bb*4)
			for k := 0; k < iters; k++ {
				// Alternate whole-block and quarter-block overwrites: whole
				// blocks produce fully-invalid victims (cheap erases), quarter
				// blocks leave victims with live pages, forcing GC to relocate
				// data the final verification then checks.
				sub := bb
				if k%2 == 1 {
					sub = bb / 2
				}
				rng.Read(tile[:sub*sub*4])
				grid := int64(side) / sub
				coord := []int64{rng.Int63n(grid), rng.Int63n(grid)}
				if _, _, err := st.WritePartition(0, c.v, coord, []int64{sub, sub}, tile[:sub*sub*4]); err != nil {
					errs <- err
					return
				}
				for r := int64(0); r < sub; r++ {
					row := ((coord[0]*sub+r)*side + coord[1]*sub) * 4
					copy(c.img[row:row+sub*4], tile[r*sub*4:(r+1)*sub*4])
				}
			}
		}(i, c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	for i, c := range clients {
		got, _, _, err := st.ReadPartition(0, c.v, []int64{0, 0}, []int64{side, side})
		if err != nil {
			t.Fatalf("writer %d final read: %v", i, err)
		}
		for j := range got {
			if got[j] != c.img[j] {
				t.Fatalf("writer %d: byte %d diverged from the host image", i, j)
			}
		}
	}
	rep := st.GCReport()
	if rep.Runs == 0 || rep.Erases == 0 {
		t.Fatalf("churn of several times raw capacity never collected: %+v", rep)
	}
	if rep.PagesRelocated == 0 {
		t.Fatalf("no live page was ever relocated — mixed-validity victims untested: %+v", rep)
	}
	t.Logf("GC report: %+v", rep)
}

// TestNoStallAboveLowWatermark: the write-path contract of the watermark
// design — a foreground write blocks on reclamation only below the critical
// mark, so a workload that keeps every die above the low watermark must
// record zero GCStallNs.
func TestNoStallAboveLowWatermark(t *testing.T) {
	geo := nvm.Geometry{Channels: 4, Banks: 2, BlocksPerBank: 16, PagesPerBlock: 8, PageSize: 512}
	dev, err := nvm.NewDevice(geo, nvm.TLCTiming(), false)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.BackgroundGC = true
	st, err := New(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	// One 128x128 float32 space is 128 pages over 1024 raw: writing it once
	// plus a round of tile overwrites leaves every die far above the
	// low-water mark (about 13 of its 128 pages).
	s, err := st.CreateSpace(4, []int64{128, 128})
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewView(s, []int64{128, 128})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(51))
	img := fillRandom(rng, s.Bytes())
	if _, _, err := st.WritePartition(0, v, []int64{0, 0}, []int64{128, 128}, img); err != nil {
		t.Fatal(err)
	}
	bb := s.BlockDims()[0]
	tile := make([]byte, bb*bb*4)
	for i := 0; i < 8; i++ {
		rng.Read(tile)
		coord := []int64{rng.Int63n(128 / bb), rng.Int63n(128 / bb)}
		if _, _, err := st.WritePartition(0, v, coord, []int64{bb, bb}, tile); err != nil {
			t.Fatal(err)
		}
	}
	if rep := st.GCReport(); rep.StallNs != 0 {
		t.Fatalf("write stalled %dns on GC with every die above the low watermark: %+v", rep.StallNs, rep)
	}
}

// TestGroupCommitFlushDrainsAllChannelsOnError: the Flush contract under the
// concurrent per-channel drain — when programs fail, every channel's batch is
// still attempted, every failed page stays pending for a retry, and the
// recorded error surfaces. A plan that fails every program attempt makes both
// staged pages (placed on different channels by the allocation policy)
// unrecoverable.
func TestGroupCommitFlushDrainsAllChannelsOnError(t *testing.T) {
	geo := nvm.Geometry{Channels: 2, Banks: 1, BlocksPerBank: 4, PagesPerBlock: 4, PageSize: 512}
	cfg := DefaultConfig()
	cfg.WriteBuffering = true
	st := newFaultSTL(t, geo, cfg, nvm.FaultPlan{Seed: 7, ProgramFailEvery: 1})

	// One 16x16 building block spans two pages, which the §4.2 policy places
	// on the two different channels. Half-cover each page so both stage.
	s, err := st.CreateSpace(4, []int64{16, 16})
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewView(s, []int64{16, 16})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	half := fillRandom(rng, 4*16*4)
	if _, _, err := st.WritePartition(0, v, []int64{0, 0}, []int64{4, 16}, half); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.WritePartition(0, v, []int64{2, 0}, []int64{4, 16}, half); err != nil {
		t.Fatal(err)
	}
	if st.PendingPages() != 2 {
		t.Fatalf("staged %d pages, want 2", st.PendingPages())
	}

	_, err = st.Flush(0)
	if !errors.Is(err, ErrMedia) {
		t.Fatalf("want ErrMedia from a flush whose every program fails, got %v", err)
	}
	if st.PendingPages() != 2 {
		t.Fatalf("%d pages pending after failed flush, want both retained", st.PendingPages())
	}
	r := st.Reliability()
	if r.ProgramFaults < 2 || r.RetiredBlocks < 2 {
		// One faulted program and one retirement per channel proves the drain
		// reached both channels rather than stopping at the first error.
		t.Fatalf("flush did not drain both channels: %+v", r)
	}
	// Staged bytes survive the failed flush: reads overlay the pending
	// buffers.
	got, _, _, err := st.ReadPartition(0, v, []int64{0, 0}, []int64{4, 16})
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != half[i] {
			t.Fatalf("byte %d of staged data lost by failed flush", i)
		}
	}
}
