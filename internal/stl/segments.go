package stl

import "nds/internal/sim"

// Segment is one contiguous source piece of an assembled partition read: the
// bytes Src land at partition offset Dst of the row-major result. Segments
// are emitted in ascending Dst order and never overlap; partition regions no
// segment covers are unwritten storage and read as zeros.
//
// Src aliases storage the STL owns — device arena frames, cache entries,
// staged write buffers, or decompressed block images. It is valid only for
// the duration of the callback that received it (the request still holds the
// space lock and its scratch); consumers must gather or copy before
// returning and must never mutate Src.
type Segment struct {
	Dst int64
	Src []byte
}

// ReadPartitionSegments reads the partition at coord/sub of view v like
// ReadPartition, but instead of assembling a contiguous buffer it hands the
// result to fn as an ordered list of source segments. want is the partition's
// total payload size in bytes; segs covers every written byte of it (gaps are
// zeros). This is the zero-copy read path: a consumer that can gather —
// encode a wire frame, checksum, scatter into its own layout — skips the
// partition-buffer copy entirely.
//
// fn runs while the request holds the space's read lock, so the segment
// sources cannot be erased or rebound under it; the lease ends when fn
// returns. An error from fn aborts the request and is returned verbatim.
// Timing and statistics are identical to ReadPartition by construction: both
// paths share the same plan phase, so the device sees the same operations in
// the same order. On a phantom device fn receives (want, nil).
func (t *STL) ReadPartitionSegments(at sim.Time, v *View, coord, sub []int64, fn func(want int64, segs []Segment) error) (sim.Time, RequestStats, error) {
	var (
		done  sim.Time
		stats RequestStats
		err   error
	)
	s := v.space
	if tk := t.qosAdmit(s.id, qosBytes(s, sub)); tk != nil {
		defer func() { tk.finish(at, done, err == nil) }()
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if t.cfg.ScalarPath {
		// Reference path: assemble the full buffer, then present it as one
		// segment so differential tests can hold the two shapes together.
		var buf []byte
		buf, done, stats, err = t.readPartitionScalar(at, v, coord, sub)
		if err == nil {
			if buf != nil {
				err = fn(stats.Bytes, []Segment{{Dst: 0, Src: buf}})
			} else {
				err = fn(stats.Bytes, nil)
			}
		}
	} else {
		done, stats, err = t.readPartitionSegments(at, v, coord, sub, fn)
	}
	if err == nil && t.pf != nil {
		t.maybePrefetch(done, v, coord, sub)
	}
	if err == nil {
		t.noteTime(done)
	}
	return done, stats, err
}

// readPartitionSegments is the batched segment emitter: the shared plan phase
// resolves every touched page's bytes, then a second extent walk records
// (Dst, Src) pairs instead of copying — the same walk readPartitionBatched
// performs, minus the memmove per piece.
func (t *STL) readPartitionSegments(at sim.Time, v *View, coord, sub []int64, fn func(int64, []Segment) error) (sim.Time, RequestStats, error) {
	var stats RequestStats
	s := v.space
	rs := t.getScratch(s)
	defer t.putScratch(rs)
	exts, want, done, err := t.planPartitionRead(rs, at, v, coord, sub, &stats)
	if err != nil {
		return at, stats, err
	}

	segs := rs.segs[:0]
	if !t.dev.Phantom() {
		ps := int64(t.geo.PageSize)
		for i := range exts {
			e := &exts[i]
			blk := rs.blocks[e.Block]
			if blk == nil {
				continue // untouched block: zeros
			}
			if blk.compressed {
				img := rs.images[e.Block]
				segs = append(segs, Segment{Dst: e.Dst, Src: img[e.Off : e.Off+e.Len]})
				continue
			}
			for p := e.Off / ps; p <= (e.Off+e.Len-1)/ps; p++ {
				data := rs.pageData[rs.pageIdx[pageKey{e.Block, int(p)}]]
				if data == nil {
					continue // unwritten page: zeros
				}
				lo := max64(e.Off, p*ps)
				hi := min64(e.Off+e.Len, (p+1)*ps)
				srcLo := lo - p*ps
				segs = append(segs, Segment{Dst: e.Dst + (lo - e.Off), Src: data[srcLo : srcLo+(hi-lo)]})
			}
		}
	}
	rs.segs = segs // retain capacity in the pooled scratch

	// The callback runs before putScratch and under the space's read lock:
	// arena frames, cache entries, staged buffers, and the scratch-held block
	// images all stay pinned for its duration.
	if err := fn(want, segs); err != nil {
		return at, stats, err
	}
	return done, stats, nil
}
