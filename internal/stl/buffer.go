package stl

import (
	"errors"
	"fmt"
	"sync"

	"nds/internal/nvm"
	"nds/internal/sim"
)

// Write buffering (§4.4): "If the fetched partition is smaller than a
// building block, the STL will try to keep the partition in STL memory and
// write to storage whenever the collected data is sufficient for a basic
// access unit in any building block." Sub-page writes to not-yet-programmed
// pages accumulate in STL memory; the page is programmed once its payload
// region is fully covered (or on Flush). Because an unallocated page reads
// as zeros, the zero-initialized staging buffer is also the correct read
// overlay for bytes not yet covered.
//
// Buffering applies only to pages without an allocated unit; overwrites of
// programmed pages keep the §4.2 read-modify-write + replacement-unit path.
//
// The pending map is shared across spaces, so every map operation holds
// pendingMu (writers to different spaces stage concurrently). The buffers a
// map entry points at are still guarded by the owning space's lock: only a
// writer holding the space write lock mutates pp.buf, and readers that
// overlay staged bytes hold the read lock.

type pendingKey struct {
	space SpaceID
	block int64
	page  int
}

type pendingPage struct {
	buf     []byte // nil on phantom devices
	covered int64  // bytes written so far (extents never overlap per write;
	// re-writing the same region before flush may overcount, which only
	// flushes early — never loses data, since buf holds the latest bytes)
}

// pendingFor returns the staging buffer for a page, if any.
func (t *STL) pendingFor(s *Space, block int64, page int) *pendingPage {
	t.pendingMu.Lock()
	defer t.pendingMu.Unlock()
	if t.pending == nil {
		return nil
	}
	return t.pending[pendingKey{s.id, block, page}]
}

// stageWrite buffers n bytes (data may be nil on phantom devices) for an
// unallocated page. Fullness is evaluated separately (takeIfFull) once the
// request has staged all of the page's extents.
func (t *STL) stageWrite(s *Space, block int64, page int, inPageOff int64, data []byte, n int64) {
	key := pendingKey{s.id, block, page}
	t.pendingMu.Lock()
	if t.pending == nil {
		t.pending = make(map[pendingKey]*pendingPage)
	}
	pp := t.pending[key]
	if pp == nil {
		pp = &pendingPage{}
		if !t.dev.Phantom() {
			pp.buf = make([]byte, t.geo.PageSize)
		}
		t.pending[key] = pp
	}
	t.pendingMu.Unlock()
	// pp.buf is guarded by the space write lock the caller holds, not by
	// pendingMu — see the package comment above.
	if pp.buf != nil && data != nil {
		copy(pp.buf[inPageOff:], data[:n])
	}
	pp.covered += n
}

// takeIfFull removes and returns the page's staging entry when its coverage
// reaches the payload size pb; nil otherwise. Coverage may overcount under
// overlapping writes, which only programs earlier — never-written bytes are
// zeros, exactly what unwritten storage reads as.
func (t *STL) takeIfFull(s *Space, block int64, page int, pb int64) *pendingPage {
	key := pendingKey{s.id, block, page}
	t.pendingMu.Lock()
	defer t.pendingMu.Unlock()
	pp := t.pending[key]
	if pp == nil || pp.covered < pb {
		return nil
	}
	delete(t.pending, key)
	return pp
}

// dropPending discards staged bytes for a page (overwritten wholesale or the
// space is going away).
func (t *STL) dropPending(s *Space, block int64, page int) {
	t.pendingMu.Lock()
	if t.pending != nil {
		delete(t.pending, pendingKey{s.id, block, page})
	}
	t.pendingMu.Unlock()
}

// dropPendingSpace discards all staged pages of a space.
func (t *STL) dropPendingSpace(id SpaceID) {
	t.pendingMu.Lock()
	for k := range t.pending {
		if k.space == id {
			delete(t.pending, k)
		}
	}
	t.pendingMu.Unlock()
}

// PendingPages reports how many partially-written pages sit in STL memory.
func (t *STL) PendingPages() int {
	t.pendingMu.Lock()
	defer t.pendingMu.Unlock()
	return len(t.pending)
}

// flushOp pairs a staged program with the pending-map key it will retire, so
// the drain can delete exactly the keys whose programs landed.
type flushOp struct {
	key pendingKey
	op  nvm.ProgramOp
}

// Flush programs every staged page, allocating units under the §4.2 policy.
// The returned time covers the slowest program.
//
// Group commit: allocation walks the staged pages in deterministic key order,
// but the programs themselves accumulate into per-channel batches that drain
// as concurrent ProgramPages calls — one goroutine per channel, the write
// path's §4 parallelism applied to the flush itself. Channels share no device
// resources, so the per-channel batches complete at the same simulated times
// the old serialized loop produced.
//
// A page that fails — allocation or program — stays in the pending map, and
// the flush keeps draining every other page (all channels, all dies) before
// reporting the error of the smallest failing key. So one bad page (or a
// transient capacity squeeze) doesn't strand every later staged page, and a
// retry after the condition clears programs exactly the pages that are still
// pending.
func (t *STL) Flush(at sim.Time) (sim.Time, error) {
	t.maintMu.Lock()
	defer t.maintMu.Unlock()

	// Deterministic order: collect and sort keys.
	t.pendingMu.Lock()
	keys := make([]pendingKey, 0, len(t.pending))
	for k := range t.pending {
		keys = append(keys, k)
	}
	t.pendingMu.Unlock()
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && lessKey(keys[j], keys[j-1]); j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}

	done := at
	var failKey pendingKey
	var failErr error
	fail := func(k pendingKey, err error) {
		if failErr == nil || lessKey(k, failKey) {
			failKey, failErr = k, err
		}
	}

	// Per-channel program batches, drained concurrently at every GC flush
	// point and at the end. Draining before GC keeps the device issue order a
	// synchronous run would have produced.
	batches := make([][]flushOp, t.geo.Channels)
	drain := func() error {
		type chanResult struct {
			done   sim.Time
			landed int
			err    error
		}
		results := make([]chanResult, len(batches))
		var wg sync.WaitGroup
		for ch := range batches {
			if len(batches[ch]) == 0 {
				continue
			}
			wg.Add(1)
			go func(ch int) {
				defer wg.Done()
				ops := make([]nvm.ProgramOp, len(batches[ch]))
				for i := range batches[ch] {
					ops[i] = batches[ch][i].op
				}
				d, n, err := t.drainFlushChannel(ops)
				results[ch] = chanResult{d, n, err}
			}(ch)
		}
		wg.Wait()
		var firstErr error
		for ch := range batches {
			batch := batches[ch]
			if len(batch) == 0 {
				continue
			}
			r := results[ch]
			done = sim.Max(done, r.done)
			t.pendingMu.Lock()
			for i := 0; i < r.landed; i++ {
				delete(t.pending, batch[i].key)
			}
			t.pendingMu.Unlock()
			if r.err != nil {
				fail(batch[r.landed].key, r.err)
				if firstErr == nil {
					firstErr = r.err
				}
			}
			batches[ch] = nil
		}
		return firstErr
	}
	ac := &allocCtx{flush: drain}

	for _, k := range keys {
		t.pendingMu.Lock()
		pp := t.pending[k]
		t.pendingMu.Unlock()
		if pp == nil {
			continue
		}
		s, ok := t.spaces[k.space]
		if !ok {
			t.pendingMu.Lock()
			delete(t.pending, k)
			t.pendingMu.Unlock()
			continue
		}
		pb := s.pageBytes(t.geo, k.page)
		if t.cfg.ZeroPageElision && pp.buf != nil && allZero(pp.buf[:pb]) {
			t.zeroSkipped.Add(1)
			t.pendingMu.Lock()
			delete(t.pending, k)
			t.pendingMu.Unlock()
			continue
		}
		gcoord := make([]int64, len(s.grid))
		s.GridCoord(k.block, gcoord)
		blk, _ := t.block(s, gcoord, true)
		dst, ready, err := t.allocateUnit(at, s, blk, ac)
		if err != nil {
			fail(k, err)
			continue // page stays pending; keep draining the rest
		}
		slot := &blk.pages[k.page]
		slot.ppa = dst
		slot.allocated = true
		t.bindUnit(s, k.block, k.page, dst)
		t.progs.Add(1)
		batches[dst.Channel] = append(batches[dst.Channel],
			flushOp{k, nvm.ProgramOp{At: ready, P: dst, Data: pp.buf}})
	}
	drain() // per-key errors are recorded inside
	t.noteTime(done)
	return done, failErr
}

// drainFlushChannel programs one channel's staged batch, recovering injected
// program faults within the same channel only: a cross-channel relocation
// would issue device operations on another drain goroutine's resources and
// consume its fault counters, making the flush outcome depend on goroutine
// interleaving. Returns the batch completion time, how many ops (a prefix of
// batch) landed and stayed bound, and the first unrecoverable error; the ops
// beyond the landed prefix have been unbound.
func (t *STL) drainFlushChannel(batch []nvm.ProgramOp) (sim.Time, int, error) {
	var done sim.Time
	ops := batch
	landed := 0
	retries := 0
	for len(ops) > 0 {
		d, err := t.dev.ProgramPages(ops)
		if err == nil {
			return sim.Max(done, d), len(batch), nil
		}
		var pe *nvm.ProgramError
		if !errors.As(err, &pe) {
			// Validation failure: no op landed; drop the batch's translation
			// state.
			t.unbindOps(ops)
			return done, landed, err
		}
		done = sim.Max(done, d)
		if pe.Index > 0 {
			retries = 0 // progress since the last fault
		}
		landed += pe.Index
		ops = ops[pe.Index:] // the stored prefix stays bound
		t.retireBlock(pe.P.Channel, pe.P.Bank, pe.P.Block)
		if retries++; retries > maxProgramRetries {
			t.unbindOps(ops)
			return done, landed, fmt.Errorf("stl: program of %v: %d relocation attempts failed: %w", pe.P, retries, ErrMedia)
		}
		np, ok := t.allocateChannelUnit(pe.P)
		if !ok {
			t.unbindOps(ops)
			return done, landed, fmt.Errorf("stl: no unit on channel %d to relocate faulted program at %v: %w", pe.P.Channel, pe.P, ErrMedia)
		}
		if !t.rebindFaulted(pe.P, np) {
			t.unbindOps(ops)
			return done, landed, fmt.Errorf("stl: faulted program at %v is not bound to any building block: %w", pe.P, ErrMedia)
		}
		t.programRetries.Add(1)
		ops[0].P = np
		ops[0].At = pe.Done
	}
	return done, len(batch), nil
}

// allocateChannelUnit finds a recovery destination within one channel: the
// faulted die first (preserving channel/bank spread), then the channel's
// other banks.
func (t *STL) allocateChannelUnit(old nvm.PPA) (nvm.PPA, bool) {
	if p, ok := t.takeUnitRaw(old.Channel, old.Bank); ok {
		return p, true
	}
	for bk := 0; bk < t.geo.Banks; bk++ {
		if bk == old.Bank {
			continue
		}
		if p, ok := t.takeUnitRaw(old.Channel, bk); ok {
			return p, true
		}
	}
	return nvm.PPA{}, false
}

func lessKey(a, b pendingKey) bool {
	if a.space != b.space {
		return a.space < b.space
	}
	if a.block != b.block {
		return a.block < b.block
	}
	return a.page < b.page
}

// programStaged writes a staged page to a fresh unit. Inline path for pages
// that fill mid-request (takeIfFull); Flush uses the group-commit drain
// instead.
func (t *STL) programStaged(at sim.Time, s *Space, blockIdx int64, blk *BuildingBlock, page int, pp *pendingPage, ac *allocCtx) (sim.Time, error) {
	slot := &blk.pages[page]
	pb := s.pageBytes(t.geo, page)
	if t.cfg.ZeroPageElision && pp.buf != nil && allZero(pp.buf[:pb]) {
		t.zeroSkipped.Add(1)
		return at, nil
	}
	dst, ready, err := t.allocateUnit(at, s, blk, ac)
	if err != nil {
		return at, err
	}
	dst, d, err := t.programWithRecovery(ready, dst, pp.buf, nil)
	if err != nil {
		return at, err
	}
	slot.ppa = dst
	slot.allocated = true
	t.bindUnit(s, blockIdx, page, dst)
	t.progs.Add(1)
	return d, nil
}
