package stl

import (
	"nds/internal/sim"
)

// Write buffering (§4.4): "If the fetched partition is smaller than a
// building block, the STL will try to keep the partition in STL memory and
// write to storage whenever the collected data is sufficient for a basic
// access unit in any building block." Sub-page writes to not-yet-programmed
// pages accumulate in STL memory; the page is programmed once its payload
// region is fully covered (or on Flush). Because an unallocated page reads
// as zeros, the zero-initialized staging buffer is also the correct read
// overlay for bytes not yet covered.
//
// Buffering applies only to pages without an allocated unit; overwrites of
// programmed pages keep the §4.2 read-modify-write + replacement-unit path.

type pendingKey struct {
	space SpaceID
	block int64
	page  int
}

type pendingPage struct {
	buf     []byte // nil on phantom devices
	covered int64  // bytes written so far (extents never overlap per write;
	// re-writing the same region before flush may overcount, which only
	// flushes early — never loses data, since buf holds the latest bytes)
}

// pendingFor returns the staging buffer for a page, if any.
func (t *STL) pendingFor(s *Space, block int64, page int) *pendingPage {
	if t.pending == nil {
		return nil
	}
	return t.pending[pendingKey{s.id, block, page}]
}

// stageWrite buffers n bytes (data may be nil on phantom devices) for an
// unallocated page. Fullness is evaluated separately (takeIfFull) once the
// request has staged all of the page's extents.
func (t *STL) stageWrite(s *Space, block int64, page int, inPageOff int64, data []byte, n int64) {
	if t.pending == nil {
		t.pending = make(map[pendingKey]*pendingPage)
	}
	key := pendingKey{s.id, block, page}
	pp := t.pending[key]
	if pp == nil {
		pp = &pendingPage{}
		if !t.dev.Phantom() {
			pp.buf = make([]byte, t.geo.PageSize)
		}
		t.pending[key] = pp
	}
	if pp.buf != nil && data != nil {
		copy(pp.buf[inPageOff:], data[:n])
	}
	pp.covered += n
}

// takeIfFull removes and returns the page's staging entry when its coverage
// reaches the payload size pb; nil otherwise. Coverage may overcount under
// overlapping writes, which only programs earlier — never-written bytes are
// zeros, exactly what unwritten storage reads as.
func (t *STL) takeIfFull(s *Space, block int64, page int, pb int64) *pendingPage {
	key := pendingKey{s.id, block, page}
	pp := t.pending[key]
	if pp == nil || pp.covered < pb {
		return nil
	}
	delete(t.pending, key)
	return pp
}

// dropPending discards staged bytes for a page (overwritten wholesale or the
// space is going away).
func (t *STL) dropPending(s *Space, block int64, page int) {
	if t.pending != nil {
		delete(t.pending, pendingKey{s.id, block, page})
	}
}

// dropPendingSpace discards all staged pages of a space.
func (t *STL) dropPendingSpace(id SpaceID) {
	for k := range t.pending {
		if k.space == id {
			delete(t.pending, k)
		}
	}
}

// PendingPages reports how many partially-written pages sit in STL memory.
func (t *STL) PendingPages() int { return len(t.pending) }

// Flush programs every staged page, allocating units under the §4.2 policy.
// The returned time covers the slowest program.
//
// A page that fails to program stays in the pending map, and the flush keeps
// draining the remaining pages before reporting the first error — so one bad
// page (or a transient capacity squeeze) doesn't strand every later staged
// page, and a retry after the condition clears programs exactly the pages
// that are still pending.
func (t *STL) Flush(at sim.Time) (sim.Time, error) {
	done := at
	// Deterministic order: collect and sort keys.
	keys := make([]pendingKey, 0, len(t.pending))
	for k := range t.pending {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && lessKey(keys[j], keys[j-1]); j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	var firstErr error
	for _, k := range keys {
		pp := t.pending[k]
		s, ok := t.spaces[k.space]
		if !ok {
			delete(t.pending, k)
			continue
		}
		gcoord := make([]int64, len(s.grid))
		s.GridCoord(k.block, gcoord)
		blk, _ := t.block(s, gcoord, true)
		d, err := t.programStaged(at, s, k.block, blk, k.page, pp)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue // page stays pending; keep draining the rest
		}
		delete(t.pending, k)
		done = sim.Max(done, d)
	}
	return done, firstErr
}

func lessKey(a, b pendingKey) bool {
	if a.space != b.space {
		return a.space < b.space
	}
	if a.block != b.block {
		return a.block < b.block
	}
	return a.page < b.page
}

// programStaged writes a staged page to a fresh unit.
func (t *STL) programStaged(at sim.Time, s *Space, blockIdx int64, blk *BuildingBlock, page int, pp *pendingPage) (sim.Time, error) {
	slot := &blk.pages[page]
	pb := s.pageBytes(t.geo, page)
	if t.cfg.ZeroPageElision && pp.buf != nil && allZero(pp.buf[:pb]) {
		t.zeroSkipped++
		return at, nil
	}
	dst, ready, err := t.allocateUnit(at, s, blk)
	if err != nil {
		return at, err
	}
	dst, d, err := t.programWithRecovery(ready, dst, pp.buf, nil)
	if err != nil {
		return at, err
	}
	slot.ppa = dst
	slot.allocated = true
	t.bindUnit(s, blockIdx, page, dst)
	t.progs++
	return d, nil
}
