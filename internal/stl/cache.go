package stl

import (
	"sync"
	"sync/atomic"

	"nds/internal/nvm"
	"nds/internal/sim"
)

// The building-block cache. NDS makes the building block the natural caching
// unit: because every traversal direction — rows, columns, tiles — decomposes
// into whole building blocks, a cached block serves future accesses from any
// direction, unlike an LBA page cache that only helps the layout it was
// filled in. The cache models the DRAM a host-resident STL (SoftwareNDS) or a
// controller (HardwareNDS) would dedicate to block caching: hits skip flash
// entirely and instead charge a DRAM streaming cost on the sim timeline.
//
// Entries are block-granular with per-page fill state, so a block warmed by a
// row scan serves column reads of the same block without further flash work.
// Page data is copied into cache-owned buffers at fill time — device read
// results alias per-die arena frames that recycle after an erase, so the
// cache must never retain them. On phantom devices entries carry no bytes but
// keep exact fill/ready state, so timing and statistics stay exact.
//
// Concurrency: the cache is sharded; each shard has its own mutex guarding
// its entry map and CLOCK ring. Shard mutexes are leaves of the STL lock
// order (maintMu -> space -> die -> shard): nothing is acquired while one is
// held. A page's data region is written exactly once — under the shard lock,
// before its fill state becomes visible — and invalidation only drops
// references, so a reader that observed the fill state may copy from the
// returned slice after unlocking. All mutators of translation state hold the
// owning space's write lock (or run in an exclusive maintenance context that
// excludes that space's readers), which is what makes strict invalidation
// (drop the whole block entry on any rebind) race-free against in-flight
// reads.
//
// With Config.CacheBytes zero the STL carries a nil cache and every hook is a
// single nil check: the device is bit- and simulated-time-identical to one
// built without the feature (the differential suite holds it to that).

// CacheStats is a snapshot of the building-block cache's counters.
type CacheStats struct {
	Hits     int64 // page accesses served from DRAM
	Misses   int64 // page accesses that had to touch flash
	HitBytes int64 // payload bytes served from DRAM

	PrefetchIssued int64 // pages warmed by the dimensional prefetcher
	PrefetchUsed   int64 // prefetched pages that later served a hit
	PrefetchWasted int64 // prefetched pages dropped before any hit

	Evictions     int64 // block entries evicted for capacity
	Invalidations int64 // block entries dropped by writes/GC/retirement/resize
	ResidentBytes int64 // bytes currently charged against the capacity
	CapacityBytes int64 // configured capacity (Config.CacheBytes)
}

// cacheKey names one building block of one space.
type cacheKey struct {
	space SpaceID
	block int64
}

// Per-page fill state of a cache entry.
const (
	pageEmpty    uint8 = iota
	pageValid          // filled by a demand read
	pagePrefetch       // filled by the prefetcher, not yet hit
)

// cacheEntry is one resident building block. The entry charges the full
// block size against capacity on creation (the DRAM an implementation would
// reserve), regardless of how many pages are filled.
type cacheEntry struct {
	key     cacheKey
	data    []byte     // block-layout bytes; nil on phantom devices
	state   []uint8    // per page: pageEmpty/pageValid/pagePrefetch
	ready   []sim.Time // per page: sim time the bytes are DRAM-resident
	bytes   int64      // capacity charge
	ref     bool       // CLOCK reference bit
	ringIdx int        // position in the owning shard's ring
}

type cacheShard struct {
	mu      sync.Mutex
	entries map[cacheKey]*cacheEntry
	ring    []*cacheEntry // CLOCK ring over resident entries
	hand    int

	// Counters (each guarded by mu; aggregated by stats).
	hits, misses, hitBytes           int64
	prefIssued, prefUsed, prefWasted int64
	evictions, invalidations         int64
}

const cacheShards = 8

// blockCache is the sharded, capacity-bounded building-block cache.
type blockCache struct {
	shards   [cacheShards]cacheShard
	capacity int64
	dramBW   float64 // bytes/s charged per hit byte; <= 0 is instantaneous
	geo      nvm.Geometry
	phantom  bool
	resident atomic.Int64
}

func newBlockCache(capacity int64, dramBW float64, geo nvm.Geometry, phantom bool) *blockCache {
	c := &blockCache{capacity: capacity, dramBW: dramBW, geo: geo, phantom: phantom}
	for i := range c.shards {
		c.shards[i].entries = make(map[cacheKey]*cacheEntry)
	}
	return c
}

func (c *blockCache) shard(k cacheKey) *cacheShard {
	h := uint64(k.block)*0x9E3779B97F4A7C15 ^ uint64(k.space)*0xBF58476D1CE4E5B9
	return &c.shards[h>>61]
}

// copyCost is the sim-time cost of streaming n cached bytes out of DRAM.
func (c *blockCache) copyCost(n int64) sim.Time {
	if c.dramBW <= 0 {
		return 0
	}
	return sim.TransferTime(n, c.dramBW)
}

// lookup serves page `page` of building block (s, block). On a hit it returns
// the page's payload bytes (nil on phantom devices), the sim time the bytes
// are DRAM-resident, and true. pb is the page's payload size
// (s.pageBytes(geo, page)), charged to the hit-byte counter.
func (c *blockCache) lookup(s *Space, block int64, page int, pb int64) ([]byte, sim.Time, bool) {
	k := cacheKey{s.id, block}
	sh := c.shard(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e := sh.entries[k]
	if e == nil || e.state[page] == pageEmpty {
		sh.misses++
		return nil, 0, false
	}
	if e.state[page] == pagePrefetch {
		e.state[page] = pageValid
		sh.prefUsed++
	}
	e.ref = true
	sh.hits++
	sh.hitBytes += pb
	var data []byte
	if e.data != nil {
		ps := int64(c.geo.PageSize)
		off := int64(page) * ps
		data = e.data[off : off+pb : off+pb]
	}
	return data, e.ready[page], true
}

// fill installs page `page` of building block (s, block), copying data into
// cache-owned storage. ready is the sim time the bytes become DRAM-resident
// (the flash batch completion that produced them). Already-filled pages are
// left untouched, so the first fill of a page wins and its data region is
// never rewritten while the entry lives — the immutability reads rely on.
func (c *blockCache) fill(s *Space, block int64, page int, data []byte, ready sim.Time, prefetched bool) {
	if s.bbBytes > c.capacity {
		return // block can never fit; don't thrash the cache
	}
	k := cacheKey{s.id, block}
	sh := c.shard(k)
	sh.mu.Lock()
	e := sh.entries[k]
	if e == nil {
		e = &cacheEntry{
			key:   k,
			state: make([]uint8, s.pagesPerBB),
			ready: make([]sim.Time, s.pagesPerBB),
			bytes: s.bbBytes,
		}
		if !c.phantom {
			e.data = make([]byte, s.bbBytes)
		}
		sh.entries[k] = e
		e.ringIdx = len(sh.ring)
		sh.ring = append(sh.ring, e)
		c.resident.Add(e.bytes)
	}
	if e.state[page] != pageEmpty {
		sh.mu.Unlock()
		return
	}
	if e.data != nil && data != nil {
		ps := int64(c.geo.PageSize)
		pb := s.pageBytes(c.geo, page)
		if int64(len(data)) < pb {
			pb = int64(len(data))
		}
		copy(e.data[int64(page)*ps:], data[:pb])
	}
	e.ready[page] = ready
	if prefetched {
		e.state[page] = pagePrefetch
		sh.prefIssued++
	} else {
		e.state[page] = pageValid
	}
	e.ref = true
	sh.mu.Unlock()
	c.evictToCapacity(sh)
}

// missing appends to out the pages of (s, block) not resident in the cache,
// restricted to the caller-provided candidate set. Used by the prefetcher to
// avoid re-reading warm pages.
func (c *blockCache) missing(s *Space, block int64, candidates []int, out []int) []int {
	k := cacheKey{s.id, block}
	sh := c.shard(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e := sh.entries[k]
	for _, p := range candidates {
		if e == nil || e.state[p] == pageEmpty {
			out = append(out, p)
		}
	}
	return out
}

// evictToCapacity runs CLOCK eviction until resident bytes fit the capacity,
// visiting shards round-robin starting after the shard that just grew. Locks
// one shard at a time, so concurrent fills may transiently overshoot; the
// loop converges because every pass either evicts or clears reference bits.
func (c *blockCache) evictToCapacity(grew *cacheShard) {
	if c.resident.Load() <= c.capacity {
		return
	}
	start := 0
	for i := range c.shards {
		if &c.shards[i] == grew {
			start = i + 1
			break
		}
	}
	misses := 0
	for i := start; c.resident.Load() > c.capacity; i++ {
		sh := &c.shards[i%cacheShards]
		sh.mu.Lock()
		e := sh.evictOne()
		if e != nil {
			c.resident.Add(-e.bytes)
			misses = 0
		} else if misses++; misses >= cacheShards {
			sh.mu.Unlock()
			return // nothing resident anywhere else
		}
		sh.mu.Unlock()
	}
}

// evictOne runs the CLOCK hand over the shard's ring, evicting the first
// entry found with a clear reference bit (clearing bits as it passes).
// Returns the evicted entry, or nil when the shard is empty. Caller holds mu.
func (sh *cacheShard) evictOne() *cacheEntry {
	n := len(sh.ring)
	if n == 0 {
		return nil
	}
	for i := 0; i <= 2*n; i++ {
		if sh.hand >= len(sh.ring) {
			sh.hand = 0
		}
		e := sh.ring[sh.hand]
		if e.ref {
			e.ref = false
			sh.hand++
			continue
		}
		sh.removeLocked(e)
		sh.evictions++
		sh.countWasted(e)
		return e
	}
	return nil
}

// removeLocked unlinks e from the shard's map and ring. Caller holds mu.
func (sh *cacheShard) removeLocked(e *cacheEntry) {
	delete(sh.entries, e.key)
	last := len(sh.ring) - 1
	moved := sh.ring[last]
	sh.ring[e.ringIdx] = moved
	moved.ringIdx = e.ringIdx
	sh.ring[last] = nil
	sh.ring = sh.ring[:last]
}

// countWasted charges never-hit prefetched pages of a dropped entry.
func (sh *cacheShard) countWasted(e *cacheEntry) {
	for _, st := range e.state {
		if st == pagePrefetch {
			sh.prefWasted++
		}
	}
}

// invalidateBlock drops the cached copy of building block (space, block), if
// any. Called from every path that rebinds or releases a unit of the block
// (writes, GC evacuation, program-fault relocation, retirement, resize,
// delete), always under the device's exclusive lock.
func (c *blockCache) invalidateBlock(space SpaceID, block int64) {
	k := cacheKey{space, block}
	sh := c.shard(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e := sh.entries[k]
	if e == nil {
		return
	}
	sh.removeLocked(e)
	sh.invalidations++
	sh.countWasted(e)
	c.resident.Add(-e.bytes)
}

// invalidateSpace drops every cached block of one space (delete/resize).
func (c *blockCache) invalidateSpace(space SpaceID) {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for k, e := range sh.entries {
			if k.space != space {
				continue
			}
			sh.removeLocked(e)
			sh.invalidations++
			sh.countWasted(e)
			c.resident.Add(-e.bytes)
		}
		sh.mu.Unlock()
	}
}

// stats aggregates the shard counters into one snapshot.
func (c *blockCache) stats() CacheStats {
	s := CacheStats{CapacityBytes: c.capacity, ResidentBytes: c.resident.Load()}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		s.Hits += sh.hits
		s.Misses += sh.misses
		s.HitBytes += sh.hitBytes
		s.PrefetchIssued += sh.prefIssued
		s.PrefetchUsed += sh.prefUsed
		s.PrefetchWasted += sh.prefWasted
		s.Evictions += sh.evictions
		s.Invalidations += sh.invalidations
		sh.mu.Unlock()
	}
	return s
}

// CacheStats snapshots the building-block cache's counters; zero-valued when
// the cache is disabled (Config.CacheBytes == 0).
func (t *STL) CacheStats() CacheStats {
	if t.cache == nil {
		return CacheStats{}
	}
	return t.cache.stats()
}
