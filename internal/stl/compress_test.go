package stl

import (
	"bytes"
	"math/rand"
	"testing"

	"nds/internal/nvm"
)

func newCompressSTL(t *testing.T) *STL {
	t.Helper()
	geo := nvm.Geometry{Channels: 4, Banks: 2, BlocksPerBank: 16, PagesPerBlock: 16, PageSize: 512}
	dev, err := nvm.NewDevice(geo, nvm.TLCTiming(), false)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Compress = true
	st, err := New(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// compressiblePattern produces highly redundant data (long runs) that
// deflate shrinks well.
func compressiblePattern(n int64) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(i / 256)
	}
	return out
}

func TestCompressedRoundTrip(t *testing.T) {
	st := newCompressSTL(t)
	s := mustSpace(t, st, 4, 96, 96)
	v := mustView(t, s, 96, 96)
	data := compressiblePattern(s.Bytes())
	_, wStats, err := st.WritePartition(0, v, []int64{0, 0}, []int64{96, 96}, data)
	if err != nil {
		t.Fatal(err)
	}
	if st.CompressedBlocks() == 0 {
		t.Fatal("redundant data did not compress any block")
	}
	// Compression must program fewer pages than the uncompressed footprint.
	uncompressedPages := int64(s.PagesPerBlock()) * prod(s.GridDims())
	if wStats.PagesProgrammed >= uncompressedPages {
		t.Fatalf("compressed write programmed %d pages, raw would be %d",
			wStats.PagesProgrammed, uncompressedPages)
	}
	got, _, rStats, err := st.ReadPartition(0, v, []int64{0, 0}, []int64{96, 96})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("compressed round-trip mismatch")
	}
	if rStats.PagesRead >= uncompressedPages {
		t.Fatalf("compressed read touched %d pages, raw would be %d", rStats.PagesRead, uncompressedPages)
	}
}

func TestCompressedIncompressibleFallsBack(t *testing.T) {
	st := newCompressSTL(t)
	s := mustSpace(t, st, 4, 64, 64)
	v := mustView(t, s, 64, 64)
	data := make([]byte, s.Bytes())
	rand.New(rand.NewSource(3)).Read(data) // incompressible
	if _, _, err := st.WritePartition(0, v, []int64{0, 0}, []int64{64, 64}, data); err != nil {
		t.Fatal(err)
	}
	got, _, _, err := st.ReadPartition(0, v, []int64{0, 0}, []int64{64, 64})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("raw-fallback round-trip mismatch")
	}
}

// TestCompressedPartialOverwrite exercises the block-granular RMW path:
// patching part of a compressed block must preserve the rest.
func TestCompressedPartialOverwrite(t *testing.T) {
	st := newCompressSTL(t)
	s := mustSpace(t, st, 4, 96, 96)
	v := mustView(t, s, 96, 96)
	ref := newRefModel(s)
	base := compressiblePattern(s.Bytes())
	if _, _, err := st.WritePartition(0, v, []int64{0, 0}, []int64{96, 96}, base); err != nil {
		t.Fatal(err)
	}
	ref.scatter(v.Dims(), []int64{0, 0}, []int64{96, 96}, base)

	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 10; i++ {
		sub := []int64{1 + rng.Int63n(40), 1 + rng.Int63n(40)}
		coord := []int64{rng.Int63n(96 / sub[0]), rng.Int63n(96 / sub[1])}
		_, n, err := v.PartitionShape(coord, sub)
		if err != nil {
			t.Fatal(err)
		}
		patch := fillRandom(rng, n*4)
		if _, _, err := st.WritePartition(0, v, coord, sub, patch); err != nil {
			t.Fatalf("patch %d: %v", i, err)
		}
		ref.scatter(v.Dims(), coord, sub, patch)
	}
	got, _, _, err := st.ReadPartition(0, v, []int64{0, 0}, []int64{96, 96})
	if err != nil {
		t.Fatal(err)
	}
	want := ref.gather(v.Dims(), []int64{0, 0}, []int64{96, 96})
	if !bytes.Equal(got, want) {
		t.Fatal("compressed RMW corrupted data")
	}
}

func TestCompressRejectsPhantom(t *testing.T) {
	dev, err := nvm.NewDevice(smallGeo(), nvm.TLCTiming(), true)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Compress = true
	if _, err := New(dev, cfg); err == nil {
		t.Fatal("compression on a phantom device accepted")
	}
}

func TestZeroPageElision(t *testing.T) {
	dev, err := nvm.NewDevice(smallGeo(), nvm.TLCTiming(), false)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.ZeroPageElision = true
	st, err := New(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := st.CreateSpace(4, []int64{64, 64})
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewView(s, []int64{64, 64})
	if err != nil {
		t.Fatal(err)
	}
	// A sparse image: only one tile non-zero.
	data := make([]byte, s.Bytes())
	for i := 0; i < 32*32*4; i++ {
		data[i] = 0xAB
	}
	_, stats, err := st.WritePartition(0, v, []int64{0, 0}, []int64{64, 64}, data)
	if err != nil {
		t.Fatal(err)
	}
	if st.ZeroPagesSkipped() == 0 {
		t.Fatal("no zero pages elided for a sparse image")
	}
	// Three of four 32x32 blocks are all-zero: at most ~1/4 of pages written.
	total := int64(s.PagesPerBlock()) * prod(s.GridDims())
	if stats.PagesProgrammed > total/2 {
		t.Fatalf("programmed %d of %d pages for a 1/4-dense image", stats.PagesProgrammed, total)
	}
	got, _, _, err := st.ReadPartition(0, v, []int64{0, 0}, []int64{64, 64})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("zero-page elision corrupted data")
	}
	// Overwriting non-zero data with zeros releases the units.
	used := st.UsedPages()
	zero := make([]byte, 32*32*4)
	if _, _, err := st.WritePartition(0, v, []int64{0, 0}, []int64{32, 32}, zero); err != nil {
		t.Fatal(err)
	}
	if st.UsedPages() >= used {
		t.Fatalf("zero overwrite did not release units: %d -> %d", used, st.UsedPages())
	}
	got, _, _, err = st.ReadPartition(0, v, []int64{0, 0}, []int64{32, 32})
	if err != nil {
		t.Fatal(err)
	}
	if !allZero(got) {
		t.Fatal("zeroed tile reads back non-zero")
	}
}
