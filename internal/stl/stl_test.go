package stl

import (
	"math/rand"
	"testing"

	"nds/internal/nvm"
	"nds/internal/sim"
)

// TestBlockSpreadsAcrossChannels: once a building block is fully written,
// its units must cover every parallel channel — the property that lets any
// block access use the device's full internal bandwidth (§4.1).
func TestBlockSpreadsAcrossChannels(t *testing.T) {
	st := newTestSTL(t, true)
	s := mustSpace(t, st, 4, 64, 64) // 32x32 blocks -> grid 2x2, 8 pages/BB
	v := mustView(t, s, 64, 64)
	if _, _, err := st.WritePartition(0, v, []int64{0, 0}, []int64{64, 64}, nil); err != nil {
		t.Fatal(err)
	}
	geo := st.Geometry()
	g := make([]int64, 2)
	for i := int64(0); i < 4; i++ {
		s.GridCoord(i, g)
		blk, _ := st.block(s, g, false)
		if blk == nil {
			t.Fatalf("block %d never allocated", i)
		}
		if got := blk.Channels(); got != geo.Channels {
			t.Errorf("block %d spans %d channels, want %d", i, got, geo.Channels)
		}
		// Units per channel should be balanced (8 pages / 4 channels = 2).
		for ch, u := range blk.chanUse {
			if u != 2 {
				t.Errorf("block %d channel %d has %d units, want 2", i, ch, u)
			}
		}
	}
}

// TestBlockReadEngagesChannels: reading one full building block issues page
// reads on all channels in parallel, so it completes in roughly
// pagesPerBB/channels serialized senses rather than pagesPerBB.
func TestBlockReadEngagesChannels(t *testing.T) {
	st := newTestSTL(t, true)
	s := mustSpace(t, st, 4, 64, 64)
	v := mustView(t, s, 64, 64)
	if _, _, err := st.WritePartition(0, v, []int64{0, 0}, []int64{64, 64}, nil); err != nil {
		t.Fatal(err)
	}
	st.Device().ResetTimeline()
	_, done, stats, err := st.ReadPartition(0, v, []int64{0, 0}, []int64{32, 32})
	if err != nil {
		t.Fatal(err)
	}
	if stats.PagesRead != int64(s.PagesPerBlock()) {
		t.Fatalf("read %d pages, want %d (one block)", stats.PagesRead, s.PagesPerBlock())
	}
	tim := st.Device().Timing()
	serialized := tim.ReadPage * sim.Time(s.PagesPerBlock())
	if done >= serialized {
		t.Fatalf("block read took %v, want < %v (full serialization)", done, serialized)
	}
	// With 8 pages on 4 channels x 2 banks, sensing is 2-deep per bank at
	// worst: comfortably under 3 sense latencies.
	if done > 3*tim.ReadPage {
		t.Fatalf("block read took %v, expected near 2 sense latencies (%v)", done, 2*tim.ReadPage)
	}
}

func TestStatsAccounting(t *testing.T) {
	st := newTestSTL(t, true)
	s := mustSpace(t, st, 4, 64, 64)
	v := mustView(t, s, 64, 64)
	_, stats, err := st.WritePartition(0, v, []int64{0, 0}, []int64{64, 64}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Blocks != 4 {
		t.Errorf("write touched %d blocks, want 4", stats.Blocks)
	}
	if stats.PagesProgrammed != 32 {
		t.Errorf("programmed %d pages, want 32", stats.PagesProgrammed)
	}
	if stats.Bytes != s.Bytes() {
		t.Errorf("moved %d bytes, want %d", stats.Bytes, s.Bytes())
	}
	if stats.PagesRead != 0 {
		t.Errorf("aligned full write should not RMW, read %d pages", stats.PagesRead)
	}
	if s.AllocatedBlocks() != 4 || s.AllocatedPages() != 32 {
		t.Errorf("space accounting blocks=%d pages=%d, want 4/32",
			s.AllocatedBlocks(), s.AllocatedPages())
	}
	if st.UsedPages() != 32 {
		t.Errorf("used pages = %d, want 32", st.UsedPages())
	}
}

func TestDeleteSpaceReclaims(t *testing.T) {
	st := newTestSTL(t, true)
	s := mustSpace(t, st, 4, 64, 64)
	v := mustView(t, s, 64, 64)
	if _, _, err := st.WritePartition(0, v, []int64{0, 0}, []int64{64, 64}, nil); err != nil {
		t.Fatal(err)
	}
	if err := st.DeleteSpace(s.ID()); err != nil {
		t.Fatal(err)
	}
	if st.UsedPages() != 0 {
		t.Fatalf("used pages = %d after delete, want 0", st.UsedPages())
	}
	if _, ok := st.Space(s.ID()); ok {
		t.Fatal("deleted space still resolvable")
	}
	if err := st.DeleteSpace(s.ID()); err == nil {
		t.Fatal("double delete should fail")
	}
}

// TestGCUnderChurnPreservesData repeatedly overwrites tiles until garbage
// collection must run, then verifies the whole space against the reference.
func TestGCUnderChurnPreservesData(t *testing.T) {
	geo := nvm.Geometry{Channels: 4, Banks: 2, BlocksPerBank: 8, PagesPerBlock: 8, PageSize: 512}
	dev, err := nvm.NewDevice(geo, nvm.TLCTiming(), false)
	if err != nil {
		t.Fatal(err)
	}
	st, err := New(dev, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Space sized near the logical capacity so churn forces GC:
	// capacity = 4*2*8*8 = 512 pages raw, ~460 logical; space uses
	// 64x64x4B = 16 KB = 32 pages per full write... use a bigger space.
	s, err := st.CreateSpace(4, []int64{160, 160}) // 100 KB = 200 pages
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewView(s, []int64{160, 160})
	if err != nil {
		t.Fatal(err)
	}
	ref := newRefModel(s)
	rng := rand.New(rand.NewSource(31))

	whole := fillRandom(rng, s.Bytes())
	if _, _, err := st.WritePartition(0, v, []int64{0, 0}, []int64{160, 160}, whole); err != nil {
		t.Fatal(err)
	}
	ref.scatter(v.Dims(), []int64{0, 0}, []int64{160, 160}, whole)

	for i := 0; i < 60; i++ {
		sub := []int64{1 + rng.Int63n(64), 1 + rng.Int63n(64)}
		coord := []int64{rng.Int63n(160 / sub[0]), rng.Int63n(160 / sub[1])}
		_, n, err := v.PartitionShape(coord, sub)
		if err != nil {
			t.Fatal(err)
		}
		data := fillRandom(rng, n*4)
		if _, _, err := st.WritePartition(0, v, coord, sub, data); err != nil {
			t.Fatalf("churn write %d: %v", i, err)
		}
		ref.scatter(v.Dims(), coord, sub, data)
	}

	erases, moves := st.GCStats()
	if erases == 0 {
		t.Fatal("GC never ran despite heavy churn near capacity")
	}
	t.Logf("GC: %d erases, %d moves, WA=%.2f", erases, moves, st.WriteAmplification())

	got, _, _, err := st.ReadPartition(0, v, []int64{0, 0}, []int64{160, 160})
	if err != nil {
		t.Fatal(err)
	}
	want := ref.gather(v.Dims(), []int64{0, 0}, []int64{160, 160})
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("byte %d corrupted by GC", i)
		}
	}
}

// TestGCKeepsChannelSpread: relocation stays within the die, so blocks keep
// their full channel coverage after collection.
func TestGCKeepsChannelSpread(t *testing.T) {
	geo := nvm.Geometry{Channels: 4, Banks: 2, BlocksPerBank: 8, PagesPerBlock: 8, PageSize: 512}
	dev, err := nvm.NewDevice(geo, nvm.TLCTiming(), true)
	if err != nil {
		t.Fatal(err)
	}
	st, err := New(dev, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s, err := st.CreateSpace(4, []int64{160, 160})
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewView(s, []int64{160, 160})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	if _, _, err := st.WritePartition(0, v, []int64{0, 0}, []int64{160, 160}, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 80; i++ {
		sub := []int64{32, 32}
		coord := []int64{rng.Int63n(5), rng.Int63n(5)}
		if _, _, err := st.WritePartition(0, v, coord, sub, nil); err != nil {
			t.Fatal(err)
		}
	}
	if erases, _ := st.GCStats(); erases == 0 {
		t.Skip("churn did not trigger GC at this geometry")
	}
	g := make([]int64, 2)
	for i := int64(0); i < prod(s.GridDims()); i++ {
		s.GridCoord(i, g)
		blk, _ := st.block(s, g, false)
		if blk == nil {
			continue
		}
		if blk.Channels() != geo.Channels {
			t.Fatalf("block %d lost channel spread after GC: %d/%d", i, blk.Channels(), geo.Channels)
		}
	}
}

func TestCapacityExhaustion(t *testing.T) {
	geo := nvm.Geometry{Channels: 2, Banks: 1, BlocksPerBank: 4, PagesPerBlock: 4, PageSize: 512}
	dev, err := nvm.NewDevice(geo, nvm.TLCTiming(), true)
	if err != nil {
		t.Fatal(err)
	}
	st, err := New(dev, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Raw 32 pages, logical 28. One space of 64x64x4B = 16 KB = 32 pages
	// cannot fit.
	s, err := st.CreateSpace(4, []int64{64, 64})
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewView(s, []int64{64, 64})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.WritePartition(0, v, []int64{0, 0}, []int64{64, 64}, nil); err == nil {
		t.Fatal("write beyond logical capacity should fail")
	}
}

// TestIndexFootprint: the B-tree overhead must stay far below the paper's
// 0.1% bound at realistic page sizes. With 4 KB pages and 8-byte entries the
// per-page overhead is 8/4096 ~ 0.2%; at test scale we just require < 1%
// of stored bytes plus a fixed node floor.
func TestIndexFootprint(t *testing.T) {
	geo := nvm.Geometry{Channels: 8, Banks: 4, BlocksPerBank: 64, PagesPerBlock: 64, PageSize: 4096}
	dev, err := nvm.NewDevice(geo, nvm.TLCTiming(), true)
	if err != nil {
		t.Fatal(err)
	}
	st, err := New(dev, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s, err := st.CreateSpace(4, []int64{2048, 2048}) // 16 MB
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewView(s, []int64{2048, 2048})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.WritePartition(0, v, []int64{0, 0}, []int64{2048, 2048}, nil); err != nil {
		t.Fatal(err)
	}
	fp := s.IndexFootprint()
	if fp <= 0 {
		t.Fatal("index footprint should be positive after writes")
	}
	ratio := float64(fp) / float64(s.Bytes())
	if ratio > 0.01 {
		t.Fatalf("index footprint %.4f%% of data, want < 1%%", ratio*100)
	}
	t.Logf("index footprint: %d bytes for %d data bytes (%.4f%%)", fp, s.Bytes(), ratio*100)
}

// TestTraversalCounting: one traversal chain is counted per distinct block.
func TestTraversalCounting(t *testing.T) {
	st := newTestSTL(t, true)
	s := mustSpace(t, st, 4, 64, 64)
	v := mustView(t, s, 64, 64)
	if _, _, err := st.WritePartition(0, v, []int64{0, 0}, []int64{64, 64}, nil); err != nil {
		t.Fatal(err)
	}
	_, _, stats, err := st.ReadPartition(0, v, []int64{0, 0}, []int64{64, 64})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Blocks != 4 {
		t.Fatalf("blocks = %d, want 4", stats.Blocks)
	}
	// 2-level tree: 2 steps per lookup.
	if stats.Traversals != 8 {
		t.Fatalf("traversal steps = %d, want 8", stats.Traversals)
	}
}

// TestNaiveAllocationConcentrates: the ablation allocator keeps each block
// on one die, so block reads lose channel parallelism — the contrast that
// justifies the §4.2 policy.
func TestNaiveAllocationConcentrates(t *testing.T) {
	dev, err := nvm.NewDevice(smallGeo(), nvm.TLCTiming(), true)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.NaiveAllocation = true
	st, err := New(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := st.CreateSpace(4, []int64{64, 64})
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewView(s, []int64{64, 64})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.WritePartition(0, v, []int64{0, 0}, []int64{64, 64}, nil); err != nil {
		t.Fatal(err)
	}
	g := make([]int64, 2)
	for i := int64(0); i < 4; i++ {
		s.GridCoord(i, g)
		blk, _ := st.block(s, g, false)
		if blk == nil {
			t.Fatalf("block %d missing", i)
		}
		if blk.Channels() != 1 {
			t.Errorf("naive block %d spans %d channels, want 1", i, blk.Channels())
		}
	}
	// And it is measurably slower to read than the policy layout.
	st.Device().ResetTimeline()
	_, naiveDone, _, err := st.ReadPartition(0, v, []int64{0, 0}, []int64{32, 32})
	if err != nil {
		t.Fatal(err)
	}
	policy := newTestSTL(t, true)
	ps, _ := policy.CreateSpace(4, []int64{64, 64})
	pv, _ := NewView(ps, []int64{64, 64})
	if _, _, err := policy.WritePartition(0, pv, []int64{0, 0}, []int64{64, 64}, nil); err != nil {
		t.Fatal(err)
	}
	policy.Device().ResetTimeline()
	_, policyDone, _, err := policy.ReadPartition(0, pv, []int64{0, 0}, []int64{32, 32})
	if err != nil {
		t.Fatal(err)
	}
	if naiveDone <= policyDone {
		t.Fatalf("naive layout read (%v) should be slower than policy layout (%v)", naiveDone, policyDone)
	}
}

func TestCreateSpaceValidation(t *testing.T) {
	st := newTestSTL(t, true)
	if _, err := st.CreateSpace(4, nil); err == nil {
		t.Error("empty dims accepted")
	}
	if _, err := st.CreateSpace(4, []int64{0, 4}); err == nil {
		t.Error("zero dim accepted")
	}
	if _, err := st.CreateSpace(-1, []int64{4}); err == nil {
		t.Error("negative element size accepted")
	}
}
