package stl

import (
	"errors"
	"math/rand"
	"testing"

	"nds/internal/nvm"
	"nds/internal/sim"
)

func newFaultSTL(t *testing.T, geo nvm.Geometry, cfg Config, plan nvm.FaultPlan) *STL {
	t.Helper()
	dev, err := nvm.NewDevice(geo, nvm.TLCTiming(), false)
	if err != nil {
		t.Fatal(err)
	}
	dev.SetFaultPlan(plan)
	st, err := New(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestFaultProgramRetryPreservesData: injected program faults are absorbed by
// relocation on both the scalar and batched write paths — the data reads back
// intact and the recovery counters record the work.
func TestFaultProgramRetryPreservesData(t *testing.T) {
	for _, tc := range []struct {
		name   string
		scalar bool
	}{{"batched", false}, {"scalar", true}} {
		t.Run(tc.name, func(t *testing.T) {
			geo := nvm.Geometry{Channels: 4, Banks: 2, BlocksPerBank: 16, PagesPerBlock: 8, PageSize: 512}
			cfg := DefaultConfig()
			cfg.OverProvision = 0.2
			cfg.ScalarPath = tc.scalar
			st := newFaultSTL(t, geo, cfg, nvm.FaultPlan{Seed: 9, ProgramFailEvery: 12})

			s, err := st.CreateSpace(4, []int64{160, 160})
			if err != nil {
				t.Fatal(err)
			}
			v, err := NewView(s, []int64{160, 160})
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(8))
			data := fillRandom(rng, s.Bytes())
			_, stats, err := st.WritePartition(0, v, []int64{0, 0}, []int64{160, 160}, data)
			if err != nil {
				t.Fatal(err)
			}
			if stats.ProgramRetries == 0 {
				t.Fatal("no program retries recorded in RequestStats despite fault plan")
			}

			got, _, _, err := st.ReadPartition(0, v, []int64{0, 0}, []int64{160, 160})
			if err != nil {
				t.Fatal(err)
			}
			for i := range got {
				if got[i] != data[i] {
					t.Fatalf("byte %d corrupted across program-fault recovery", i)
				}
			}
			r := st.Reliability()
			if r.ProgramFaults == 0 || r.ProgramRetries == 0 || r.RetiredBlocks == 0 {
				t.Fatalf("recovery counters empty: %+v", r)
			}
			if r.ProgramRetries != r.ProgramFaults {
				t.Fatalf("%d faults but %d successful relocations", r.ProgramFaults, r.ProgramRetries)
			}
			if r.RetiredPages != r.RetiredBlocks*int64(geo.PagesPerBlock) {
				t.Fatalf("retired %d blocks but %d pages", r.RetiredBlocks, r.RetiredPages)
			}
			if r.EffectivePages > r.MaxPages {
				t.Fatalf("effective capacity %d above budget %d", r.EffectivePages, r.MaxPages)
			}
		})
	}
}

// TestProgramRetryExhaustionFault: when every program attempt fails, recovery
// gives up with ErrMedia instead of looping forever, on both write paths.
func TestProgramRetryExhaustionFault(t *testing.T) {
	for _, tc := range []struct {
		name   string
		scalar bool
	}{{"batched", false}, {"scalar", true}} {
		t.Run(tc.name, func(t *testing.T) {
			geo := nvm.Geometry{Channels: 2, Banks: 1, BlocksPerBank: 4, PagesPerBlock: 4, PageSize: 512}
			cfg := DefaultConfig()
			cfg.ScalarPath = tc.scalar
			st := newFaultSTL(t, geo, cfg, nvm.FaultPlan{Seed: 3, ProgramFailEvery: 1})

			s, err := st.CreateSpace(4, []int64{32, 32})
			if err != nil {
				t.Fatal(err)
			}
			v, err := NewView(s, []int64{32, 32})
			if err != nil {
				t.Fatal(err)
			}
			data := make([]byte, s.Bytes())
			_, _, err = st.WritePartition(0, v, []int64{0, 0}, []int64{32, 32}, data)
			if !errors.Is(err, ErrMedia) {
				t.Fatalf("want ErrMedia after retry exhaustion, got %v", err)
			}
		})
	}
}

// TestFaultEraseRetiresVictimDuringGC: a GC erase that faults retires the
// victim block in place — no error surfaces, the data survives, and the
// retired block never rejoins the free pool.
func TestFaultEraseRetiresVictimDuringGC(t *testing.T) {
	geo := nvm.Geometry{Channels: 4, Banks: 2, BlocksPerBank: 8, PagesPerBlock: 8, PageSize: 512}
	st := newFaultSTL(t, geo, DefaultConfig(), nvm.FaultPlan{Seed: 17, EraseFailEvery: 8})

	s, err := st.CreateSpace(4, []int64{160, 160})
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewView(s, []int64{160, 160})
	if err != nil {
		t.Fatal(err)
	}
	ref := newRefModel(s)
	rng := rand.New(rand.NewSource(31))
	whole := fillRandom(rng, s.Bytes())
	if _, _, err := st.WritePartition(0, v, []int64{0, 0}, []int64{160, 160}, whole); err != nil {
		t.Fatal(err)
	}
	ref.scatter(v.Dims(), []int64{0, 0}, []int64{160, 160}, whole)

	for i := 0; i < 40; i++ {
		sub := []int64{1 + rng.Int63n(64), 1 + rng.Int63n(64)}
		coord := []int64{rng.Int63n(160 / sub[0]), rng.Int63n(160 / sub[1])}
		_, n, err := v.PartitionShape(coord, sub)
		if err != nil {
			t.Fatal(err)
		}
		data := fillRandom(rng, n*4)
		if _, _, err := st.WritePartition(0, v, coord, sub, data); err != nil {
			t.Fatalf("churn write %d: %v", i, err)
		}
		ref.scatter(v.Dims(), coord, sub, data)
	}

	r := st.Reliability()
	if r.EraseFaults == 0 {
		t.Fatal("no erase faults injected despite plan and GC churn")
	}
	if r.RetiredBlocks == 0 {
		t.Fatal("erase faults retired no blocks")
	}
	got, _, _, err := st.ReadPartition(0, v, []int64{0, 0}, []int64{160, 160})
	if err != nil {
		t.Fatal(err)
	}
	want := ref.gather(v.Dims(), []int64{0, 0}, []int64{160, 160})
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("byte %d corrupted by erase-fault retirement", i)
		}
	}
}

// TestFaultWearOutGracefulDegradation: worn-out blocks are retired and
// capacity degrades gracefully — data written before the wear-out stays
// intact and the report stays self-consistent.
func TestFaultWearOutGracefulDegradation(t *testing.T) {
	geo := nvm.Geometry{Channels: 4, Banks: 2, BlocksPerBank: 8, PagesPerBlock: 8, PageSize: 512}
	st := newFaultSTL(t, geo, DefaultConfig(), nvm.FaultPlan{Seed: 23, EnduranceLimit: 3})

	s, err := st.CreateSpace(4, []int64{160, 160})
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewView(s, []int64{160, 160})
	if err != nil {
		t.Fatal(err)
	}
	ref := newRefModel(s)
	rng := rand.New(rand.NewSource(41))
	whole := fillRandom(rng, s.Bytes())
	if _, _, err := st.WritePartition(0, v, []int64{0, 0}, []int64{160, 160}, whole); err != nil {
		t.Fatal(err)
	}
	ref.scatter(v.Dims(), []int64{0, 0}, []int64{160, 160}, whole)

	// Churn until the first block wears out; every write in the loop must
	// still succeed (the over-provision reserve absorbs early retirements).
	for i := 0; i < 400 && st.Reliability().WearoutFaults == 0; i++ {
		sub := []int64{1 + rng.Int63n(64), 1 + rng.Int63n(64)}
		coord := []int64{rng.Int63n(160 / sub[0]), rng.Int63n(160 / sub[1])}
		_, n, err := v.PartitionShape(coord, sub)
		if err != nil {
			t.Fatal(err)
		}
		data := fillRandom(rng, n*4)
		if _, _, err := st.WritePartition(0, v, coord, sub, data); err != nil {
			t.Fatalf("churn write %d: %v", i, err)
		}
		ref.scatter(v.Dims(), coord, sub, data)
	}

	r := st.Reliability()
	if r.WearoutFaults == 0 {
		t.Fatal("no block reached the endurance limit in 400 churn writes")
	}
	if r.RetiredBlocks == 0 || r.RetiredPages == 0 {
		t.Fatalf("wear-out retired nothing: %+v", r)
	}
	reserve := st.Geometry().TotalPages() - r.MaxPages
	wantEff := r.MaxPages
	if excess := r.RetiredPages - reserve; excess > 0 {
		wantEff -= excess
	}
	if r.EffectivePages != wantEff {
		t.Fatalf("EffectivePages = %d, want %d (retired %d, reserve %d)",
			r.EffectivePages, wantEff, r.RetiredPages, reserve)
	}
	got, _, _, err := st.ReadPartition(0, v, []int64{0, 0}, []int64{160, 160})
	if err != nil {
		t.Fatal(err)
	}
	want := ref.gather(v.Dims(), []int64{0, 0}, []int64{160, 160})
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("byte %d corrupted across wear-out retirement", i)
		}
	}
}

// TestGCRelocationOutOfSpaceRecovery: evacuateBlock with no room for the
// survivors fails atomically — it reports that nothing was reclaimable, no
// mappings are touched, and every byte is still readable from the source
// units.
func TestGCRelocationOutOfSpaceRecovery(t *testing.T) {
	geo := nvm.Geometry{Channels: 2, Banks: 1, BlocksPerBank: 4, PagesPerBlock: 4, PageSize: 512}
	dev, err := nvm.NewDevice(geo, nvm.TLCTiming(), false)
	if err != nil {
		t.Fatal(err)
	}
	st, err := New(dev, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s, err := st.CreateSpace(4, []int64{32, 32}) // 8 pages, 4 per die
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewView(s, []int64{32, 32})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	data := fillRandom(rng, s.Bytes())
	if _, _, err := st.WritePartition(0, v, []int64{0, 0}, []int64{32, 32}, data); err != nil {
		t.Fatal(err)
	}

	// Find a block holding valid units on die (0,0) and strand it: no free
	// blocks, no open block — zero room for relocation.
	d := st.die(0, 0)
	victim := -1
	for b := 0; b < geo.BlocksPerBank; b++ {
		if d.validInBlk[b] > 0 {
			victim = b
			break
		}
	}
	if victim < 0 {
		t.Fatal("no block with valid units on die 0/0")
	}
	d.freeBlocks = nil
	d.activeBlock = -1

	if _, res, err := st.evacuateBlock(0, 0, 0, victim, nil); err != nil || res == gcProgress {
		t.Fatalf("want a no-progress outcome from stranded evacuation, got res=%v err=%v", res, err)
	}

	// Source mappings must still be authoritative.
	for pg := 0; pg < geo.PagesPerBlock; pg++ {
		src := nvm.PPA{Channel: 0, Bank: 0, Block: victim, Page: pg}
		if e := st.rev[src.Linear(geo)]; e.valid {
			gcoord := make([]int64, len(s.grid))
			s.GridCoord(e.block, gcoord)
			blk, _ := st.block(s, gcoord, false)
			if blk == nil || blk.pages[e.page].ppa != src {
				t.Fatalf("page %d: mapping rebound despite failed evacuation", pg)
			}
		}
	}
	got, _, _, err := st.ReadPartition(0, v, []int64{0, 0}, []int64{32, 32})
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != data[i] {
			t.Fatalf("byte %d corrupted by failed evacuation", i)
		}
	}
}

// TestFlushRecoveryDrainsPending: a Flush that hits an error on one staged
// page keeps draining the rest, leaves exactly the failed page pending, and
// a retry after the condition clears programs it.
func TestFlushRecoveryDrainsPending(t *testing.T) {
	geo := nvm.Geometry{Channels: 2, Banks: 1, BlocksPerBank: 4, PagesPerBlock: 4, PageSize: 512}
	dev, err := nvm.NewDevice(geo, nvm.TLCTiming(), false)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.WriteBuffering = true
	cfg.ZeroPageElision = true
	st, err := New(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Fill the logical budget completely so any later allocation fails.
	filler, err := st.CreateSpace(4, []int64{56, 64}) // 14336 B = 28 pages = maxPages
	if err != nil {
		t.Fatal(err)
	}
	fv, err := NewView(filler, []int64{56, 64})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	if _, _, err := st.WritePartition(0, fv, []int64{0, 0}, []int64{56, 64}, fillRandom(rng, filler.Bytes())); err != nil {
		t.Fatal(err)
	}

	// Stage two sub-unit writes: a nonzero page (will need a unit) and an
	// all-zero page (elided at flush, needs none).
	hot, err := st.CreateSpace(4, []int64{16, 16})
	if err != nil {
		t.Fatal(err)
	}
	hv, err := NewView(hot, []int64{16, 16})
	if err != nil {
		t.Fatal(err)
	}
	hotData := fillRandom(rng, 8*8*4)
	if _, _, err := st.WritePartition(0, hv, []int64{0, 0}, []int64{8, 8}, hotData); err != nil {
		t.Fatal(err)
	}
	cold, err := st.CreateSpace(4, []int64{16, 16})
	if err != nil {
		t.Fatal(err)
	}
	cv, err := NewView(cold, []int64{16, 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.WritePartition(0, cv, []int64{0, 0}, []int64{8, 8}, make([]byte, 8*8*4)); err != nil {
		t.Fatal(err)
	}
	if st.PendingPages() != 2 {
		t.Fatalf("staged %d pages, want 2", st.PendingPages())
	}

	// First flush: the nonzero page fails on capacity, but the flush drains
	// on — the zero page is elided and leaves the pending map.
	if _, err := st.Flush(0); !errors.Is(err, ErrCapacity) {
		t.Fatalf("want ErrCapacity from squeezed flush, got %v", err)
	}
	if st.PendingPages() != 1 {
		t.Fatalf("%d pages pending after failed flush, want 1 (the failed page only)", st.PendingPages())
	}

	// Clear the squeeze and retry: exactly the still-pending page programs.
	if err := st.DeleteSpace(filler.id); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Flush(0); err != nil {
		t.Fatalf("retry flush after freeing capacity: %v", err)
	}
	if st.PendingPages() != 0 {
		t.Fatalf("%d pages pending after retry flush, want 0", st.PendingPages())
	}
	got, _, _, err := st.ReadPartition(0, hv, []int64{0, 0}, []int64{8, 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != hotData[i] {
			t.Fatalf("byte %d of the retried page corrupted", i)
		}
	}
}

// faultMatrixRun drives one STL instance through a fixed mixed workload under
// a full fault plan and returns the final image, every completion time, and
// the reliability report.
func faultMatrixRun(t *testing.T, scalar bool) ([]byte, []sim.Time, ReliabilityReport) {
	t.Helper()
	geo := nvm.Geometry{Channels: 4, Banks: 2, BlocksPerBank: 8, PagesPerBlock: 8, PageSize: 512}
	cfg := DefaultConfig()
	cfg.ScalarPath = scalar
	plan := nvm.FaultPlan{
		Seed:             101,
		ProgramFailEvery: 250,
		EraseFailEvery:   8,
		ReadRetryEvery:   7,
		EnduranceLimit:   200,
	}
	st := newFaultSTL(t, geo, cfg, plan)

	s, err := st.CreateSpace(4, []int64{160, 160})
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewView(s, []int64{160, 160})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	var times []sim.Time

	whole := fillRandom(rng, s.Bytes())
	done, _, err := st.WritePartition(0, v, []int64{0, 0}, []int64{160, 160}, whole)
	if err != nil {
		t.Fatal(err)
	}
	times = append(times, done)

	for i := 0; i < 25; i++ {
		sub := []int64{1 + rng.Int63n(64), 1 + rng.Int63n(64)}
		coord := []int64{rng.Int63n(160 / sub[0]), rng.Int63n(160 / sub[1])}
		_, n, err := v.PartitionShape(coord, sub)
		if err != nil {
			t.Fatal(err)
		}
		done, _, err := st.WritePartition(0, v, coord, sub, fillRandom(rng, n*4))
		if err != nil {
			t.Fatalf("matrix write %d: %v", i, err)
		}
		times = append(times, done)
		_, rdone, _, err := st.ReadPartition(0, v, coord, sub)
		if err != nil {
			t.Fatalf("matrix read %d: %v", i, err)
		}
		times = append(times, rdone)
	}

	img, _, _, err := st.ReadPartition(0, v, []int64{0, 0}, []int64{160, 160})
	if err != nil {
		t.Fatal(err)
	}
	return img, times, st.Reliability()
}

// TestFaultMatrixDeterministic: the same seeded fault plan over the same
// mixed workload replays identically — bytes, completion times, and the full
// reliability report — and actually exercises every fault class it enables.
func TestFaultMatrixDeterministic(t *testing.T) {
	img1, times1, r1 := faultMatrixRun(t, false)
	img2, times2, r2 := faultMatrixRun(t, false)

	if r1 != r2 {
		t.Fatalf("reliability reports diverged:\n%+v\n%+v", r1, r2)
	}
	if len(times1) != len(times2) {
		t.Fatalf("op counts diverged: %d vs %d", len(times1), len(times2))
	}
	for i := range times1 {
		if times1[i] != times2[i] {
			t.Fatalf("op %d completed at %v vs %v", i, times1[i], times2[i])
		}
	}
	if len(img1) != len(img2) {
		t.Fatal("image sizes diverged")
	}
	for i := range img1 {
		if img1[i] != img2[i] {
			t.Fatalf("byte %d diverged between identical runs", i)
		}
	}
	if r1.ProgramFaults == 0 || r1.EraseFaults == 0 || r1.ReadRetries == 0 {
		t.Fatalf("fault matrix left a class unexercised: %+v", r1)
	}
	if r1.ProgramRetries == 0 || r1.RetiredBlocks == 0 {
		t.Fatalf("recovery never ran: %+v", r1)
	}
}
