package stl

import (
	"fmt"

	"nds/internal/nvm"
	"nds/internal/sim"
)

// The batched data path. Requests are compiled into a page plan — the set of
// distinct device pages the extent list touches, in first-touch order — and
// issued through the device's batch APIs (ReadPages/ProgramPages) with a
// pooled requestScratch instead of per-request maps and buffers.
//
// The path is timing-transparent: batching only ever *delays* device
// operations relative to the scalar loop, never reorders them. A deferred
// program batch is flushed at exactly the points where the scalar path would
// have issued those programs before the next device operation — before any
// read-modify-write page read, before garbage collection runs (via the
// request's allocCtx flush hook), before a compressed block is materialized,
// and at request end. Because sim.Resource reservations depend only on the order and
// arguments of Acquire calls, identical issue order means bit-identical
// completion times; the differential tests in stl hold the two paths to that.

// ReadPartition reads the partition at coord/sub of view v, assembling the
// result in the partition's own row-major layout (§4.4). All page reads are
// issued at time at; the returned completion time is the last page arrival.
// On a phantom device the returned buffer is nil but timing and statistics
// are exact. Unwritten regions read as zeros.
//
// The returned buffer is freshly allocated and owned by the caller.
func (t *STL) ReadPartition(at sim.Time, v *View, coord, sub []int64) ([]byte, sim.Time, RequestStats, error) {
	var (
		buf   []byte
		done  sim.Time
		stats RequestStats
		err   error
	)
	s := v.space
	// Tenant QoS admission runs before the space lock so a queued or
	// throttled request never blocks the space's writers.
	if tk := t.qosAdmit(s.id, qosBytes(s, sub)); tk != nil {
		defer func() { tk.finish(at, done, err == nil) }()
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if t.cfg.ScalarPath {
		buf, done, stats, err = t.readPartitionScalar(at, v, coord, sub)
	} else {
		buf, done, stats, err = t.readPartitionBatched(at, v, coord, sub, nil)
	}
	if err == nil && t.pf != nil {
		t.maybePrefetch(done, v, coord, sub)
	}
	if err == nil {
		t.noteTime(done)
	}
	return buf, done, stats, err
}

// ReadPartitionInto is ReadPartition assembling into dst when dst has enough
// capacity (allocating a fresh buffer otherwise). The returned slice aliases
// dst in that case: the caller owns it and may reuse it across requests, but
// must not hand it to another request while still reading this one's result.
func (t *STL) ReadPartitionInto(at sim.Time, v *View, coord, sub []int64, dst []byte) ([]byte, sim.Time, RequestStats, error) {
	var (
		buf   []byte
		done  sim.Time
		stats RequestStats
		err   error
	)
	s := v.space
	if tk := t.qosAdmit(s.id, qosBytes(s, sub)); tk != nil {
		defer func() { tk.finish(at, done, err == nil) }()
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if t.cfg.ScalarPath {
		buf, done, stats, err = t.readPartitionScalar(at, v, coord, sub)
		if err == nil && buf != nil && int64(cap(dst)) >= int64(len(buf)) {
			out := dst[:len(buf)]
			copy(out, buf)
			buf = out
		}
	} else {
		buf, done, stats, err = t.readPartitionBatched(at, v, coord, sub, dst)
	}
	if err == nil && t.pf != nil {
		t.maybePrefetch(done, v, coord, sub)
	}
	if err == nil {
		t.noteTime(done)
	}
	return buf, done, stats, err
}

// WritePartition writes data (laid out in the partition's row-major shape)
// to the partition at coord/sub of view v. data may be nil on a phantom
// device. The STL decomposes the partition into building blocks, allocates
// units per the §4.2 policy, read-modify-writes partially covered pages, and
// replaces overwritten units within their channel/bank (§4.2, §4.4).
func (t *STL) WritePartition(at sim.Time, v *View, coord, sub []int64, data []byte) (sim.Time, RequestStats, error) {
	var (
		done  sim.Time
		stats RequestStats
		err   error
	)
	s := v.space
	if tk := t.qosAdmit(s.id, qosBytes(s, sub)); tk != nil {
		defer func() { tk.finish(at, done, err == nil) }()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case t.cfg.Compress:
		if data == nil {
			return at, RequestStats{}, fmt.Errorf("stl: compressed writes need payload data: %w", ErrInvalid)
		}
		done, stats, err = t.writeCompressed(at, v, coord, sub, data)
	case t.cfg.ScalarPath:
		done, stats, err = t.writePartitionScalar(at, v, coord, sub, data)
	default:
		done, stats, err = t.writePartitionBatched(at, v, coord, sub, data)
	}
	if err == nil {
		t.noteTime(done)
	}
	return done, stats, err
}

// planPartitionRead compiles the page plan for the partition at coord/sub
// and resolves every touched page's bytes into rs: it records distinct pages
// in first-touch order, serves cached pages from DRAM, serves §4.4-staged
// pages from STL memory, materializes compressed blocks, and issues the
// batched device reads. On return rs.pageData/rs.images hold the source bytes
// and done is the completion time (device batch, decompressions, and cache
// DRAM streaming all folded in). Shared by the copying assembler
// (readPartitionBatched) and the segment emitter (readPartitionSegments), so
// both produce identical timing and statistics by construction.
func (t *STL) planPartitionRead(rs *requestScratch, at sim.Time, v *View, coord, sub []int64, stats *RequestStats) (exts []Extent, want int64, done sim.Time, err error) {
	s := v.space
	exts, want, err = rs.translate(v, coord, sub)
	if err != nil {
		return nil, 0, at, err
	}
	stats.Extents = len(exts)
	stats.Bytes = want

	ps := int64(t.geo.PageSize)
	done = at
	var hitBytes int64    // payload bytes served from the block cache
	var readyMax sim.Time // latest DRAM-residency time among the hits

	// Plan: record every distinct page the extents touch, queueing device
	// reads in first-touch order. Cached pages are served from DRAM instead
	// of joining the flash batch; their cost folds in after the final flush.
	// Compressed blocks are device operations of their own (the block is the
	// decompression unit), so the queued batch drains before each
	// materialization to keep scalar issue order.
	for i := range exts {
		e := &exts[i]
		blk := t.resolveBlock(rs, s, e.Block, false, stats)
		if blk == nil {
			continue // untouched block: zeros
		}
		if blk.compressed {
			if _, ok := rs.images[e.Block]; !ok {
				if err := t.flushReads(rs, at, &done); err != nil {
					return nil, 0, at, err
				}
				img, d, err := t.blockImage(at, s, blk, stats)
				if err != nil {
					return nil, 0, at, err
				}
				done = sim.Max(done, d)
				rs.images[e.Block] = img
			}
			continue
		}
		for p := e.Off / ps; p <= (e.Off+e.Len-1)/ps; p++ {
			key := pageKey{e.Block, int(p)}
			if _, ok := rs.pageIdx[key]; ok {
				continue
			}
			idx := int32(len(rs.pageData))
			rs.pageIdx[key] = idx
			rs.pageData = append(rs.pageData, nil)
			if slot := blk.pages[p]; slot.allocated {
				if t.cache != nil {
					pb := s.pageBytes(t.geo, int(p))
					if data, ready, ok := t.cache.lookup(s, e.Block, int(p), pb); ok {
						rs.pageData[idx] = data
						hitBytes += pb
						if ready > readyMax {
							readyMax = ready
						}
						continue
					}
					rs.fillKeys = append(rs.fillKeys, key)
				}
				rs.ppas = append(rs.ppas, slot.ppa)
				rs.planOf = append(rs.planOf, idx)
				stats.PagesRead++
			} else if pp := t.pendingFor(s, e.Block, int(p)); pp != nil && pp.buf != nil {
				// §4.4 write staging: partially collected pages serve reads
				// straight from STL memory.
				rs.pageData[idx] = pp.buf
			}
		}
	}
	if err := t.flushReads(rs, at, &done); err != nil {
		return nil, 0, at, err
	}
	if hitBytes > 0 {
		// Hits stream out of cache DRAM serially once the latest filled page
		// is resident; flash misses overlap with them on their own timelines.
		start := sim.Max(at, readyMax)
		done = sim.Max(done, start+t.cache.copyCost(hitBytes))
	}
	return exts, want, done, nil
}

func (t *STL) readPartitionBatched(at sim.Time, v *View, coord, sub []int64, dst []byte) ([]byte, sim.Time, RequestStats, error) {
	var stats RequestStats
	s := v.space
	rs := t.getScratch(s)
	defer t.putScratch(rs)
	exts, want, done, err := t.planPartitionRead(rs, at, v, coord, sub, &stats)
	if err != nil {
		return nil, at, stats, err
	}

	var buf []byte
	if !t.dev.Phantom() {
		if int64(cap(dst)) >= want {
			buf = dst[:want]
			clear(buf) // unwritten regions must read as zeros
		} else {
			buf = make([]byte, want)
		}
	}
	ps := int64(t.geo.PageSize)

	// Assemble: second extent walk, copying from the plan's page data.
	if buf != nil {
		for i := range exts {
			e := &exts[i]
			blk := rs.blocks[e.Block]
			if blk == nil {
				continue
			}
			if blk.compressed {
				copy(buf[e.Dst:e.Dst+e.Len], rs.images[e.Block][e.Off:e.Off+e.Len])
				continue
			}
			for p := e.Off / ps; p <= (e.Off+e.Len-1)/ps; p++ {
				data := rs.pageData[rs.pageIdx[pageKey{e.Block, int(p)}]]
				if data == nil {
					continue // unwritten page: zeros
				}
				lo := max64(e.Off, p*ps)
				hi := min64(e.Off+e.Len, (p+1)*ps)
				dstLo := e.Dst + (lo - e.Off)
				copy(buf[dstLo:dstLo+(hi-lo)], data[lo-p*ps:])
			}
		}
	}
	return buf, done, stats, nil
}

func (t *STL) writePartitionBatched(at sim.Time, v *View, coord, sub []int64, data []byte) (sim.Time, RequestStats, error) {
	var stats RequestStats
	s := v.space
	rs := t.getScratch(s)
	defer t.putScratch(rs)
	exts, want, err := rs.translate(v, coord, sub)
	if err != nil {
		return at, stats, err
	}
	if data != nil && int64(len(data)) != want {
		return at, stats, fmt.Errorf("stl: write payload is %d bytes, partition needs %d: %w", len(data), want, ErrInvalid)
	}
	if data == nil && !t.dev.Phantom() {
		return at, stats, fmt.Errorf("stl: nil payload on a data-bearing device: %w", ErrInvalid)
	}
	stats.Extents = len(exts)
	stats.Bytes = want

	ps := int64(t.geo.PageSize)

	// Pass 1: group extents by destination page, accumulating coverage.
	// Extents of one partition never overlap, so summing lengths is exact.
	for i := range exts {
		e := &exts[i]
		blk := t.resolveBlock(rs, s, e.Block, true, &stats)
		for p := e.Off / ps; p <= (e.Off+e.Len-1)/ps; p++ {
			key := pageKey{e.Block, int(p)}
			si, ok := rs.stageIdx[key]
			if !ok {
				si = rs.nextStage()
				st := &rs.stages[si]
				st.blk, st.blockIdx, st.page = blk, e.Block, int(p)
				rs.stageIdx[key] = si
			}
			st := &rs.stages[si]
			lo := max64(e.Off, p*ps)
			hi := min64(e.Off+e.Len, (p+1)*ps)
			st.covered += hi - lo
			st.extents = append(st.extents, int32(i))
		}
	}

	// Pass 2: read-modify-write partially covered pages, allocate units, and
	// accumulate programs into a batch that drains at the flush points (RMW
	// reads, GC via the allocCtx flush hook, staged programs, request end).
	done := at
	ac := &allocCtx{flush: func() error { return t.flushPrograms(rs, &done, &stats) }, held: s}
	for si := range rs.stages {
		st := &rs.stages[si]
		slot := &st.blk.pages[st.page]
		pb := s.pageBytes(t.geo, st.page)
		if t.cfg.WriteBuffering && !slot.allocated {
			for _, ei := range st.extents {
				e := exts[ei]
				lo := max64(e.Off, int64(st.page)*ps)
				hi := min64(e.Off+e.Len, int64(st.page+1)*ps)
				var chunk []byte
				if data != nil {
					chunk = data[e.Dst+(lo-e.Off):]
				}
				t.stageWrite(s, st.blockIdx, st.page, lo-int64(st.page)*ps, chunk, hi-lo)
			}
			if pp := t.takeIfFull(s, st.blockIdx, st.page, pb); pp != nil {
				if err := t.flushPrograms(rs, &done, &stats); err != nil {
					return at, stats, err
				}
				d, err := t.programStaged(at, s, st.blockIdx, st.blk, st.page, pp, ac)
				if err != nil {
					return at, stats, err
				}
				stats.PagesProgrammed++
				done = sim.Max(done, d)
			}
			continue
		}
		ready := at
		var pageBuf []byte
		if !t.dev.Phantom() {
			pageBuf = rs.pageBuf(int(ps))
		}
		if slot.allocated && st.covered < pb {
			if err := t.flushPrograms(rs, &done, &stats); err != nil {
				return at, stats, err
			}
			old, d, err := t.dev.ReadPage(at, slot.ppa)
			if err != nil {
				return at, stats, err
			}
			stats.PagesRead++
			ready = d
			if pageBuf != nil {
				copy(pageBuf, old)
			}
		}
		if pageBuf != nil {
			for _, ei := range st.extents {
				e := exts[ei]
				lo := max64(e.Off, int64(st.page)*ps)
				hi := min64(e.Off+e.Len, int64(st.page+1)*ps)
				src := e.Dst + (lo - e.Off)
				copy(pageBuf[lo-int64(st.page)*ps:], data[src:src+(hi-lo)])
			}
		}
		// §8 page-zero optimization: an all-zero page needs no unit — an
		// unallocated slot already reads as zeros, and an allocated one is
		// simply released.
		if t.cfg.ZeroPageElision && pageBuf != nil && allZero(pageBuf[:pb]) {
			if slot.allocated {
				t.invalidateUnit(slot.ppa)
				slot.allocated = false
			}
			t.zeroSkipped.Add(1)
			rs.releaseBuf(pageBuf)
			continue
		}
		var unit nvm.PPA
		if slot.allocated {
			t.invalidateUnit(slot.ppa)
			unit, ready, err = t.allocateReplacement(ready, slot.ppa, ac)
		} else {
			unit, ready, err = t.allocateUnit(ready, s, st.blk, ac)
		}
		if err != nil {
			// Land anything already queued so STL and device state agree.
			if ferr := t.flushPrograms(rs, &done, &stats); ferr != nil {
				return at, stats, ferr
			}
			return at, stats, err
		}
		rs.ops = append(rs.ops, nvm.ProgramOp{At: ready, P: unit, Data: pageBuf})
		slot.ppa = unit
		slot.allocated = true
		t.bindUnit(s, st.blockIdx, st.page, unit)
		t.progs.Add(1)
		stats.PagesProgrammed++
	}
	if err := t.flushPrograms(rs, &done, &stats); err != nil {
		return at, stats, err
	}
	return done, stats, nil
}
