package stl

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"nds/internal/nvm"
	"nds/internal/sim"
)

// Config holds STL policy parameters.
type Config struct {
	// BBMultiplier scales each blocked dimension beyond the Equation 2/4
	// minimum (>= 1). The paper's prototype uses 256x256 blocks where the
	// equations give 128x128, i.e. a multiplier of 2.
	BBMultiplier int
	// BBOrder forces the building-block dimensionality (1-3); 0 selects the
	// paper default (2-D for spaces with two or more dimensions).
	BBOrder int
	// OverProvision is the raw-capacity fraction reserved for GC headroom.
	OverProvision float64
	// GCLowWater triggers collection on a die below this free fraction
	// (the paper uses 10%).
	GCLowWater float64
	// GCHighWater is where the background worker stops collecting a die
	// (free fraction). Values at or below GCLowWater select the default of
	// 1.5x the low watermark. Ignored in synchronous mode.
	GCHighWater float64
	// BackgroundGC decouples collection from foreground writes: crossing the
	// low watermark kicks a worker goroutine instead of collecting inline,
	// and a write blocks on reclamation (bounded, escalating to ErrMedia)
	// only when its die is critically dry. Off by default: synchronous mode
	// keeps single-threaded runs — and fault-replay determinism — identical
	// to the pre-concurrent write path.
	BackgroundGC bool
	// Seed drives the allocation policy's randomized choices.
	Seed int64
	// NaiveAllocation disables the §4.2 channel/bank-spreading policy and
	// places each building block entirely within one die (round-robin by
	// block index). Exists only for the ablation benchmarks that quantify
	// what the policy buys.
	NaiveAllocation bool
	// Compress enables §5.3.4's software-managed compression: each building
	// block is a compression unit, stored in fewer access units when its
	// content deflates. Requires a data-bearing (non-phantom) device.
	Compress bool
	// ZeroPageElision enables the §8 page-zero optimization for sparse
	// content: all-zero pages are never programmed (reads of unwritten
	// units already return zeros).
	ZeroPageElision bool
	// WriteBuffering enables §4.4's sub-unit write staging: partitions
	// smaller than a basic access unit collect in STL memory and are
	// programmed once a unit fills (or on Flush). Ignored when Compress is
	// set (the compression path has its own block-granular staging).
	WriteBuffering bool
	// ScalarPath routes partition reads/writes through the original
	// one-page-at-a-time device path instead of the batched page-plan path.
	// The two are differentially tested to produce bit-identical data,
	// statistics, and completion times; the knob exists for that comparison
	// and as an escape hatch, not as a tuning choice.
	ScalarPath bool
	// CacheBytes bounds the building-block cache (cache.go): DRAM the STL's
	// host (SoftwareNDS) or controller (HardwareNDS) dedicates to caching
	// whole building blocks. Zero disables the cache entirely — the device is
	// then bit- and simulated-time-identical to one without the feature.
	CacheBytes int64
	// PrefetchDepth is how many blocks ahead the dimensional prefetcher
	// (prefetch.go) warms once a view streams along one grid axis. Zero
	// disables prefetch; it also requires CacheBytes > 0 to take effect.
	PrefetchDepth int
	// CacheDRAMBandwidth is the DRAM streaming bandwidth (bytes/s) charged
	// for cache hits on the sim timeline. Zero or negative makes hits
	// instantaneous. The system layer defaults it per configuration (host
	// DRAM for SoftwareNDS, controller DRAM for HardwareNDS).
	CacheDRAMBandwidth float64
	// TenantQoS enables per-tenant weighted fair admission and token-bucket
	// rate limiting in front of the data path (qos.go). Nil disables the
	// feature entirely — the device is then bit- and simulated-time-identical
	// to one without it, the same contract the cache's nil gating makes.
	TenantQoS *TenantQoSConfig
}

// DefaultConfig mirrors the paper's prototype settings.
func DefaultConfig() Config {
	return Config{BBMultiplier: 1, OverProvision: 0.10, GCLowWater: 0.10, GCHighWater: 0.15, Seed: 1}
}

// revEntry maps a physical access unit back to its building block — the
// reverse-lookup table of §4.2 that accelerates GC mapping updates. Each
// entry is guarded by the mutex of the die its unit lives on.
type revEntry struct {
	space SpaceID
	block int64
	page  int32
	valid bool
}

// STL is the space translation layer over a raw flash array. It owns the
// whole device (it replaces the FTL in an NDS-compliant drive, and drives an
// open-channel drive in the software-only configuration).
//
// Concurrency: the data path serializes per space (Space.mu: shared for
// reads, exclusive for writes), allocation state per die (die.mu), and the
// write-staging map behind pendingMu. Maintenance operations — space
// create/delete/resize, Flush, and each background-GC sweep — additionally
// hold maintMu; the embedding layer (nds) runs them under its device-wide
// exclusive lock, so maintMu's real job is fencing the GC worker. The lock
// order is maintMu -> Space.mu (ascending ID; try-only from GC) -> die.mu ->
// cache shard / device shard, and nothing holding a later lock acquires an
// earlier one.
type STL struct {
	dev *nvm.Device
	geo nvm.Geometry
	cfg Config

	rngMu sync.Mutex
	rng   *rand.Rand

	// maintMu serializes maintenance actors against each other and against
	// the background GC worker (see the struct comment).
	maintMu sync.Mutex

	spaces map[SpaceID]*Space
	nextID SpaceID

	dies      []*die
	rev       []revEntry
	naiveNext atomic.Int64 // round-robin cursor for the ablation allocator

	maxPages  int64        // allocation budget (raw minus over-provision)
	usedPages atomic.Int64 // live units across all spaces

	gcErases  atomic.Int64
	gcMoves   atomic.Int64
	gcRuns    atomic.Int64 // collection passes that claimed a die
	gcStallNs atomic.Int64 // wall-clock ns foreground writes spent waiting on GC
	progs     atomic.Int64 // host-initiated programs

	// Media-fault recovery state (see recover.go).
	retiredBlocks  atomic.Int64 // blocks permanently removed from service
	retiredPages   atomic.Int64 // raw pages those blocks represent
	programRetries atomic.Int64 // faulted programs successfully relocated

	compressedBlocks atomic.Int64
	zeroSkipped      atomic.Int64

	pendingMu sync.Mutex
	pending   map[pendingKey]*pendingPage // §4.4 write staging

	// simClock is the high-water completion time across foreground requests;
	// the background worker issues its device operations there, so GC
	// traffic lands on the live edge of the simulated timelines.
	simClock atomic.Int64

	// Background GC worker plumbing (nil/unused in synchronous mode).
	gcKick    chan struct{}
	gcStop    chan struct{}
	gcDone    chan struct{}
	closeOnce sync.Once

	scratch sync.Pool // *requestScratch, reused across partition requests

	// cache and pf are nil when Config.CacheBytes is zero; every data-path
	// hook is gated on that nil check, which is what keeps the cache-off
	// device identical to one built before the feature existed.
	cache *blockCache
	pf    *prefetcher

	// qos is nil when Config.TenantQoS is nil, under the same contract: the
	// admission gate in the data path is a single nil check when disabled.
	qos *qosState
}

// New builds an STL over dev.
func New(dev *nvm.Device, cfg Config) (*STL, error) {
	if cfg.OverProvision < 0 || cfg.OverProvision >= 1 {
		return nil, fmt.Errorf("stl: over-provision fraction %v out of range [0,1)", cfg.OverProvision)
	}
	if cfg.BBMultiplier < 1 {
		cfg.BBMultiplier = 1
	}
	if cfg.Compress && dev.Phantom() {
		return nil, fmt.Errorf("stl: compression needs a data-bearing device (phantom devices store no bytes)")
	}
	if cfg.CacheBytes < 0 {
		return nil, fmt.Errorf("stl: cache capacity %d is negative", cfg.CacheBytes)
	}
	if cfg.PrefetchDepth < 0 {
		return nil, fmt.Errorf("stl: prefetch depth %d is negative", cfg.PrefetchDepth)
	}
	geo := dev.Geometry()
	t := &STL{
		dev:      dev,
		geo:      geo,
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		spaces:   make(map[SpaceID]*Space),
		nextID:   1,
		dies:     make([]*die, geo.Channels*geo.Banks),
		rev:      make([]revEntry, geo.TotalPages()),
		maxPages: int64(float64(geo.TotalPages()) * (1 - cfg.OverProvision)),
	}
	for i := range t.dies {
		d := &die{
			activeBlock: -1,
			validInBlk:  make([]int32, geo.BlocksPerBank),
		}
		d.freePages.Store(geo.PagesPerBank())
		for b := 0; b < geo.BlocksPerBank; b++ {
			d.freeBlocks = append(d.freeBlocks, b)
		}
		t.dies[i] = d
	}
	if cfg.CacheBytes > 0 {
		t.cache = newBlockCache(cfg.CacheBytes, cfg.CacheDRAMBandwidth, geo, dev.Phantom())
		if cfg.PrefetchDepth > 0 {
			t.pf = newPrefetcher(cfg.PrefetchDepth)
		}
	}
	if cfg.TenantQoS != nil {
		t.qos = newQosState(*cfg.TenantQoS, geo.Channels)
	}
	if cfg.BackgroundGC {
		t.gcKick = make(chan struct{}, 1)
		t.gcStop = make(chan struct{})
		t.gcDone = make(chan struct{})
		go t.gcWorker()
	}
	return t, nil
}

// Close stops the background GC worker, if any. Idempotent; an STL that is
// never closed simply leaves the worker parked on its kick channel.
func (t *STL) Close() error {
	if t.gcStop != nil {
		t.closeOnce.Do(func() {
			close(t.gcStop)
			<-t.gcDone
		})
	}
	return nil
}

// noteTime folds a request completion time into the clock the background
// worker issues GC operations at.
func (t *STL) noteTime(done sim.Time) {
	d := int64(done)
	for {
		cur := t.simClock.Load()
		if d <= cur || t.simClock.CompareAndSwap(cur, d) {
			return
		}
	}
}

// Device exposes the underlying array for instrumentation.
func (t *STL) Device() *nvm.Device { return t.dev }

// Geometry returns the device geometry.
func (t *STL) Geometry() nvm.Geometry { return t.geo }

// GCStats reports garbage-collection work done so far.
func (t *STL) GCStats() (erases, pageMoves int64) { return t.gcErases.Load(), t.gcMoves.Load() }

// GCReport aggregates the garbage-collection counters the write path exposes
// to benchmarks and operators.
type GCReport struct {
	Runs           int64 // collection passes that claimed a die
	Erases         int64 // victim blocks erased back to the free pool
	PagesRelocated int64 // valid units moved by evacuation
	StallNs        int64 // wall-clock ns foreground writes spent waiting on GC
}

// GCReport returns a snapshot of the GC counters.
func (t *STL) GCReport() GCReport {
	return GCReport{
		Runs:           t.gcRuns.Load(),
		Erases:         t.gcErases.Load(),
		PagesRelocated: t.gcMoves.Load(),
		StallNs:        t.gcStallNs.Load(),
	}
}

// WriteAmplification is (host+GC programs)/host programs, 1.0 when idle.
func (t *STL) WriteAmplification() float64 {
	progs := t.progs.Load()
	if progs == 0 {
		return 1
	}
	return float64(progs+t.gcMoves.Load()) / float64(progs)
}

// UsedPages reports live access units across all spaces.
func (t *STL) UsedPages() int64 { return t.usedPages.Load() }

// CreateSpace creates a multi-dimensional address space: the paper's space
// creation API (§5.1), where a producer supplies dimensionality and element
// size and the STL sizes building blocks and builds the index skeleton.
// Like all maintenance operations it must not run concurrently with the data
// path (the nds layer holds its device-wide lock); maintMu additionally
// fences it against the background GC worker.
func (t *STL) CreateSpace(elemSize int, dims []int64) (*Space, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("stl: space needs at least one dimension: %w", ErrInvalid)
	}
	for i, d := range dims {
		if d <= 0 {
			return nil, fmt.Errorf("stl: dimension %d is %d, must be positive: %w", i, d, ErrInvalid)
		}
	}
	sizing, err := SizeBuildingBlock(t.geo, elemSize, len(dims), t.cfg.BBOrder, t.cfg.BBMultiplier)
	if err != nil {
		return nil, err
	}
	t.maintMu.Lock()
	defer t.maintMu.Unlock()
	s := &Space{
		id:         t.nextID,
		elemSize:   elemSize,
		dims:       append([]int64(nil), dims...),
		bb:         sizing.Dims,
		grid:       make([]int64, len(dims)),
		bbElems:    prod(sizing.Dims),
		bbBytes:    sizing.Bytes,
		pagesPerBB: sizing.PagesPerBB,
	}
	for i := range dims {
		s.grid[i] = ceilDiv(dims[i], s.bb[i])
	}
	t.spaces[s.id] = s
	t.nextID++
	return s, nil
}

// Space returns the space with the given id, if it exists.
func (t *STL) Space(id SpaceID) (*Space, bool) {
	s, ok := t.spaces[id]
	return s, ok
}

// SpaceIDs lists all live space identifiers in ascending order.
func (t *STL) SpaceIDs() []SpaceID {
	ids := make([]SpaceID, 0, len(t.spaces))
	for id := range t.spaces {
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	return ids
}

// DeleteSpace permanently removes a space, invalidating all of its building
// blocks and dropping its translation structures (the delete_space command
// of §5.3.1). Maintenance operation: see CreateSpace.
func (t *STL) DeleteSpace(id SpaceID) error {
	t.maintMu.Lock()
	defer t.maintMu.Unlock()
	s, ok := t.spaces[id]
	if !ok {
		return fmt.Errorf("stl: delete of space %d: %w", id, ErrUnknownSpace)
	}
	// Taking the space's write lock keeps an in-flight GC commit (which
	// try-locked it before re-validating) from rebinding units this delete is
	// about to drop.
	s.mu.Lock()
	defer s.mu.Unlock()
	t.invalidateTree(s, s.root)
	t.dropPendingSpace(id)
	if t.cache != nil {
		// Belt and braces: every unit invalidation above already dropped its
		// block's cache entry; the space-wide purge also clears entries whose
		// pages were all invalidated earlier (e.g. by zero elision).
		t.cache.invalidateSpace(id)
	}
	delete(t.spaces, id)
	t.qosForgetSpace(id)
	return nil
}

func (t *STL) invalidateTree(s *Space, n *indexNode) {
	if n == nil {
		return
	}
	if n.blocks != nil {
		for _, blk := range n.blocks {
			if blk == nil {
				continue
			}
			for i := range blk.pages {
				if blk.pages[i].allocated {
					t.invalidateUnit(blk.pages[i].ppa)
					blk.pages[i].allocated = false
				}
			}
		}
		return
	}
	for _, c := range n.children {
		t.invalidateTree(s, c)
	}
}

// pageBytes is the number of payload bytes held by page idx of a building
// block (the final page may be partial when the block size is not a multiple
// of the page size).
func (s *Space) pageBytes(geo nvm.Geometry, idx int) int64 {
	ps := int64(geo.PageSize)
	remain := s.bbBytes - int64(idx)*ps
	if remain > ps {
		return ps
	}
	return remain
}
