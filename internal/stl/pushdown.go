package stl

import (
	"encoding/binary"
	"fmt"

	"nds/internal/sim"
)

// Pushdown operators: predicate scan, top-k, and block-level reductions
// executed inside the STL, next to the building-block cache, over the same
// segment plan the read path produces. Instead of assembling a partition and
// shipping it to the host, the operator walks the planned page bytes in place
// and returns only the result — the interconnect carries matches and
// aggregates, not raw pages.
//
// Operators interpret elements as little-endian unsigned integers, so they
// are defined only for element sizes 1, 2, 4, and 8 bytes (ErrInvalid
// otherwise). Unwritten regions of a partition read as zeros on the read
// path, and the operators see exactly those zeros: a pushdown result is
// byte-identical to reading the partition and computing host-side, which the
// differential suite pins across every device configuration.

// Predicate selects elements whose unsigned little-endian value lies in the
// inclusive range [Lo, Hi].
type Predicate struct {
	Lo, Hi uint64
}

func (p Predicate) matches(v uint64) bool { return v >= p.Lo && v <= p.Hi }

// ScanQuery describes one predicate scan over a partition.
type ScanQuery struct {
	// Pred is the inclusive value range to match.
	Pred Predicate
	// Cursor is the first element index (row-major within the partition)
	// eligible to be reported; earlier matches still count toward Total.
	// Resuming a truncated scan passes the previous result's NextCursor here.
	Cursor int64
	// Max bounds the reported matches; <= 0 reports every match from Cursor.
	Max int
}

// Match is one scan hit: the element's row-major index within the scanned
// partition and its value.
type Match struct {
	Index int64
	Value uint64
}

// ScanResult is a predicate scan's outcome. Total counts every match in the
// partition regardless of Cursor and Max — the true total a truncated result
// page still reports. NextCursor is the index of the first match that did not
// fit under Max (pass it as the next query's Cursor to resume), or -1 when
// Matches already covers every match at or past Cursor.
type ScanResult struct {
	Matches    []Match
	Total      int64
	NextCursor int64
}

// ReduceKind selects a block-level reduction operator. The values are wire
// codes (pushdown_reduce's op field) and must stay stable.
type ReduceKind uint8

const (
	// ReduceSum sums every element (wrapping uint64 arithmetic).
	ReduceSum ReduceKind = 1 + iota
	// ReduceCount counts elements matching the query predicate, or nonzero
	// elements when the query has no predicate.
	ReduceCount
	// ReduceMin finds the minimum element and the first index attaining it.
	ReduceMin
	// ReduceMax finds the maximum element and the first index attaining it
	// (the argmax operator).
	ReduceMax
	// ReduceTopK returns the K largest elements with their indices, ordered
	// by descending value then ascending index.
	ReduceTopK
)

func (k ReduceKind) String() string {
	switch k {
	case ReduceSum:
		return "sum"
	case ReduceCount:
		return "count"
	case ReduceMin:
		return "min"
	case ReduceMax:
		return "max"
	case ReduceTopK:
		return "topk"
	}
	return fmt.Sprintf("reduce(%d)", uint8(k))
}

// ReduceQuery describes one reduction over a partition.
type ReduceQuery struct {
	Kind ReduceKind
	// K is the result bound for ReduceTopK (required >= 1 there, ignored
	// elsewhere).
	K int
	// Pred filters ReduceCount; nil counts nonzero elements. Ignored by the
	// other kinds.
	Pred *Predicate
}

// ReduceResult is a reduction's outcome. Value carries the scalar result
// (sum, count, min, or max; for ReduceCount it duplicates Count so every kind
// has its primary result in Value). Index is the first element index
// attaining a min/max, -1 for the other kinds. Count is the number of
// contributing elements: all of them for sum/min/max, the matching ones for
// count, and len(TopK) for top-k.
type ReduceResult struct {
	Value uint64
	Index int64
	Count int64
	TopK  []Match
}

// pushdownElemSize reports whether the operators are defined for an element
// size (little-endian unsigned integer widths).
func pushdownElemSize(es int64) bool {
	return es == 1 || es == 2 || es == 4 || es == 8
}

// ScanPartition executes a predicate scan over the partition at coord/sub of
// view v entirely inside the STL. It rides ReadPartitionSegments — the same
// QoS admission (the tenant is charged the partition bytes read, not the
// result bytes), the same plan phase, the same prefetch hook — so the device
// sees identical operations at identical times as a read of the same
// partition; only the host-visible payload differs. On a phantom device the
// scan sees all zeros, exactly as a read would return.
func (t *STL) ScanPartition(at sim.Time, v *View, coord, sub []int64, q ScanQuery) (ScanResult, sim.Time, RequestStats, error) {
	es := int64(v.Space().ElemSize())
	if !pushdownElemSize(es) {
		return ScanResult{}, at, RequestStats{}, fmt.Errorf("stl: pushdown scan over %d-byte elements: %w", es, ErrInvalid)
	}
	if q.Cursor < 0 || q.Pred.Lo > q.Pred.Hi {
		return ScanResult{}, at, RequestStats{}, fmt.Errorf("stl: pushdown scan query (cursor %d, range [%d,%d]): %w", q.Cursor, q.Pred.Lo, q.Pred.Hi, ErrInvalid)
	}
	var res ScanResult
	done, stats, err := t.ReadPartitionSegments(at, v, coord, sub, func(want int64, segs []Segment) error {
		res = scanSegments(want, es, segs, q)
		return nil
	})
	if err != nil {
		return ScanResult{}, done, stats, err
	}
	return res, done, stats, nil
}

// ReducePartition executes a block-level reduction over the partition at
// coord/sub of view v inside the STL, with the same admission, timing, and
// stats contract as ScanPartition.
func (t *STL) ReducePartition(at sim.Time, v *View, coord, sub []int64, q ReduceQuery) (ReduceResult, sim.Time, RequestStats, error) {
	es := int64(v.Space().ElemSize())
	if !pushdownElemSize(es) {
		return ReduceResult{}, at, RequestStats{}, fmt.Errorf("stl: pushdown reduce over %d-byte elements: %w", es, ErrInvalid)
	}
	switch q.Kind {
	case ReduceSum, ReduceCount, ReduceMin, ReduceMax:
	case ReduceTopK:
		if q.K < 1 {
			return ReduceResult{}, at, RequestStats{}, fmt.Errorf("stl: pushdown top-k with k=%d: %w", q.K, ErrInvalid)
		}
	default:
		return ReduceResult{}, at, RequestStats{}, fmt.Errorf("stl: pushdown reduce kind %d: %w", uint8(q.Kind), ErrInvalid)
	}
	if q.Pred != nil && q.Pred.Lo > q.Pred.Hi {
		return ReduceResult{}, at, RequestStats{}, fmt.Errorf("stl: pushdown reduce range [%d,%d]: %w", q.Pred.Lo, q.Pred.Hi, ErrInvalid)
	}
	var res ReduceResult
	done, stats, err := t.ReadPartitionSegments(at, v, coord, sub, func(want int64, segs []Segment) error {
		res = reduceSegments(want, es, segs, q)
		return nil
	})
	if err != nil {
		return ReduceResult{}, done, stats, err
	}
	return res, done, stats, nil
}

// forEachElement walks the want bytes a segment list describes as a stream of
// es-byte little-endian elements, calling fn once per element in index order.
// Gaps between segments read as zeros, matching the read path's assembly of
// unwritten storage; segments whose boundaries are not element-aligned (an
// element straddling two segments, or a segment edge) are assembled
// byte-wise. A nil segment list (phantom devices) yields all zeros.
func forEachElement(want, es int64, segs []Segment, fn func(i int64, v uint64)) {
	n := want / es
	si := 0
	for i := int64(0); i < n; {
		off := i * es
		for si < len(segs) && segs[si].Dst+int64(len(segs[si].Src)) <= off {
			si++
		}
		if si >= len(segs) || segs[si].Dst >= off+es {
			// Zero run: no segment overlaps this element. Emit zeros up to
			// the first element overlapping the next segment (or the end).
			end := n
			if si < len(segs) {
				// First element index j with j*es+es > segs[si].Dst; the gap
				// branch guarantees Dst >= off+es >= es, so the division is a
				// true floor.
				if j := (segs[si].Dst-es)/es + 1; j < end {
					end = j
				}
			}
			for ; i < end; i++ {
				fn(i, 0)
			}
			continue
		}
		if s := segs[si]; s.Dst <= off && off+es <= s.Dst+int64(len(s.Src)) {
			// In-segment run: decode as many whole elements as the segment
			// still covers without leaving it.
			src := s.Src[off-s.Dst:]
			m := int64(len(src)) / es
			switch es {
			case 1:
				for k := int64(0); k < m; k++ {
					fn(i+k, uint64(src[k]))
				}
			case 2:
				for k := int64(0); k < m; k++ {
					fn(i+k, uint64(binary.LittleEndian.Uint16(src[2*k:])))
				}
			case 4:
				for k := int64(0); k < m; k++ {
					fn(i+k, uint64(binary.LittleEndian.Uint32(src[4*k:])))
				}
			case 8:
				for k := int64(0); k < m; k++ {
					fn(i+k, binary.LittleEndian.Uint64(src[8*k:]))
				}
			}
			i += m
			continue
		}
		// Straddle: the element crosses a segment boundary (or starts in a
		// gap). Assemble it byte-wise; absent bytes are zeros.
		var v uint64
		sj := si
		for b := int64(0); b < es; b++ {
			bo := off + b
			for sj < len(segs) && segs[sj].Dst+int64(len(segs[sj].Src)) <= bo {
				sj++
			}
			if sj < len(segs) && segs[sj].Dst <= bo {
				v |= uint64(segs[sj].Src[bo-segs[sj].Dst]) << (8 * b)
			}
		}
		fn(i, v)
		i++
	}
}

// scanSegments is the pure scan kernel over a planned segment list.
func scanSegments(want, es int64, segs []Segment, q ScanQuery) ScanResult {
	res := ScanResult{NextCursor: -1}
	forEachElement(want, es, segs, func(i int64, v uint64) {
		if !q.Pred.matches(v) {
			return
		}
		res.Total++
		if i < q.Cursor {
			return
		}
		if q.Max > 0 && len(res.Matches) >= q.Max {
			if res.NextCursor < 0 {
				res.NextCursor = i
			}
			return
		}
		res.Matches = append(res.Matches, Match{Index: i, Value: v})
	})
	return res
}

// reduceSegments is the pure reduction kernel over a planned segment list.
func reduceSegments(want, es int64, segs []Segment, q ReduceQuery) ReduceResult {
	res := ReduceResult{Index: -1}
	var top *topK
	if q.Kind == ReduceTopK {
		top = newTopK(q.K)
	}
	forEachElement(want, es, segs, func(i int64, v uint64) {
		// The predicate gates every kind: only matching elements participate.
		// ReduceCount with no predicate counts nonzero elements instead.
		if q.Pred != nil && !q.Pred.matches(v) {
			return
		}
		switch q.Kind {
		case ReduceSum:
			res.Value += v
			res.Count++
		case ReduceCount:
			if q.Pred != nil || v != 0 {
				res.Count++
			}
		case ReduceMin:
			if res.Count == 0 || v < res.Value {
				res.Value, res.Index = v, i
			}
			res.Count++
		case ReduceMax:
			if res.Count == 0 || v > res.Value {
				res.Value, res.Index = v, i
			}
			res.Count++
		case ReduceTopK:
			top.offer(i, v)
		}
	})
	if q.Kind == ReduceCount {
		res.Value = uint64(res.Count)
	}
	if top != nil {
		res.TopK = top.sorted()
		res.Count = int64(len(res.TopK))
		if len(res.TopK) > 0 {
			res.Value, res.Index = res.TopK[0].Value, res.TopK[0].Index
		}
	}
	return res
}

// topK keeps the k best (value desc, index asc on ties) matches seen so far
// in a min-heap whose root is the current worst keeper.
type topK struct {
	k    int
	heap []Match
}

func newTopK(k int) *topK { return &topK{k: k} }

// worse orders keepers: a is evicted before b when a's value is smaller, or
// equal with a larger index.
func worse(a, b Match) bool {
	if a.Value != b.Value {
		return a.Value < b.Value
	}
	return a.Index > b.Index
}

func (t *topK) offer(i int64, v uint64) {
	m := Match{Index: i, Value: v}
	if len(t.heap) < t.k {
		t.heap = append(t.heap, m)
		for c := len(t.heap) - 1; c > 0; {
			p := (c - 1) / 2
			if !worse(t.heap[c], t.heap[p]) {
				break
			}
			t.heap[c], t.heap[p] = t.heap[p], t.heap[c]
			c = p
		}
		return
	}
	if !worse(t.heap[0], m) {
		return
	}
	t.heap[0] = m
	for p := 0; ; {
		c := 2*p + 1
		if c >= len(t.heap) {
			break
		}
		if c+1 < len(t.heap) && worse(t.heap[c+1], t.heap[c]) {
			c++
		}
		if !worse(t.heap[c], t.heap[p]) {
			break
		}
		t.heap[c], t.heap[p] = t.heap[p], t.heap[c]
		p = c
	}
}

// sorted drains the heap into descending-value, ascending-index order.
func (t *topK) sorted() []Match {
	out := append([]Match(nil), t.heap...)
	// Insertion sort: k is small (bounded by the wire page) and the heap is
	// nearly ordered already.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && worse(out[j-1], out[j]); j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}
