package ndsserver_test

import (
	"context"
	"errors"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"nds"
	"nds/internal/ndsclient"
	"nds/internal/ndsserver"
	"nds/internal/proto"
)

// startServer boots a device and a server on a unix socket, with cleanup that
// asserts a clean drain.
func startServer(t *testing.T, cfg ndsserver.Config) (*nds.Device, *ndsserver.Server, string) {
	t.Helper()
	dev, err := nds.Open(nds.Options{Mode: nds.ModeHardware, CapacityHint: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	srv := ndsserver.New(dev, cfg)
	path := filepath.Join(t.TempDir(), "nds.sock")
	l, err := net.Listen("unix", path)
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-serveDone; !errors.Is(err, ndsserver.ErrServerClosed) {
			t.Errorf("Serve returned %v, want ErrServerClosed", err)
		}
		dev.Close()
	})
	return dev, srv, "unix:" + path
}

func dial(t *testing.T, addr string) *ndsclient.Client {
	t.Helper()
	c, err := ndsclient.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestServerRoundTrip drives the full command set through a live socket:
// create, write, read back, stats opcodes, close, delete.
func TestServerRoundTrip(t *testing.T) {
	_, _, addr := startServer(t, ndsserver.Config{})
	c := dial(t, addr)

	space, view, err := c.CreateSpace(4, []int64{32, 32})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, 8*8*4)
	for i := range want {
		want[i] = byte(i)
	}
	if err := c.Write(view, []int64{1, 1}, []int64{8, 8}, want); err != nil {
		t.Fatal(err)
	}
	got, err := c.Read(view, []int64{1, 1}, []int64{8, 8})
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatal("read returned different bytes than written")
	}
	// A second view over the same connection is an independent stream.
	view2, err := c.OpenView(space, 4, []int64{32, 32})
	if err != nil {
		t.Fatal(err)
	}
	if got, err := c.Read(view2, []int64{1, 1}, []int64{8, 8}); err != nil || string(got) != string(want) {
		t.Fatalf("read through second view: %v", err)
	}
	if _, err := c.Reliability(); err != nil {
		t.Fatalf("get_reliability: %v", err)
	}
	if _, err := c.CacheStats(); err != nil {
		t.Fatalf("get_cache_stats: %v", err)
	}
	if err := c.CloseView(view2); err != nil {
		t.Fatal(err)
	}
	if err := c.CloseView(view); err != nil {
		t.Fatal(err)
	}
	if err := c.DeleteSpace(space); err != nil {
		t.Fatal(err)
	}
}

// TestServerViewLifecycle runs the view-lifecycle sequences from
// exec_lifecycle_test.go through a live socket: the wire statuses must be
// identical whether Exec is called in-process or reached over a connection.
func TestServerViewLifecycle(t *testing.T) {
	dev, _, addr := startServer(t, ndsserver.Config{})
	c := dial(t, addr)

	t.Run("read and close after delete_space", func(t *testing.T) {
		space, view, err := c.CreateSpace(4, []int64{32, 32})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.DeleteSpace(space); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Read(view, []int64{0, 0}, []int64{8, 8}); !ndsclient.IsStatus(err, proto.StatusUnknownView) {
			t.Errorf("stale read err = %v, want unknown view", err)
		}
		if err := c.CloseView(view); !ndsclient.IsStatus(err, proto.StatusUnknownView) {
			t.Errorf("stale close err = %v, want unknown view", err)
		}
		if err := c.DeleteSpace(space); !ndsclient.IsStatus(err, proto.StatusUnknownSpace) {
			t.Errorf("double delete err = %v, want unknown space", err)
		}
		if got := dev.OpenViews(); got != 0 {
			t.Errorf("registry size = %d, want 0", got)
		}
	})

	t.Run("element size validation", func(t *testing.T) {
		space, view, err := c.CreateSpace(4, []int64{32, 32})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.OpenView(space, 8, []int64{32, 32}); !ndsclient.IsStatus(err, proto.StatusInvalidField) {
			t.Errorf("mismatched elem size err = %v, want invalid field", err)
		}
		if _, err := c.OpenView(space, 0, []int64{32, 32}); err != nil {
			t.Errorf("unspecified elem size: %v", err)
		}
		if _, err := c.OpenView(space, 4, []int64{32, 32}); err != nil {
			t.Errorf("matching elem size: %v", err)
		}
		_ = view
	})

	t.Run("unknown opcode", func(t *testing.T) {
		raw := proto.NewRead(1, 0).Marshal()
		raw[0] = 0x55
		resp, err := c.Do(raw, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Cpl.Status != proto.StatusUnsupportedOp {
			t.Errorf("status = %v, want unsupported opcode", resp.Cpl.Status)
		}
	})
}

// TestServerGracefulDrain is the zero-dropped-in-flight proof: workers across
// many connections have requests in flight when Shutdown begins, every one of
// those requests completes OK, and Shutdown returns nil.
func TestServerGracefulDrain(t *testing.T) {
	_, srv, addr := startServer(t, ndsserver.Config{DrainGrace: 2 * time.Second})

	const conns = 8
	const perConn = 40
	clients := make([]*ndsclient.Client, conns)
	views := make([]uint32, conns)
	for i := range clients {
		clients[i] = dial(t, addr)
		_, v, err := clients[i].CreateSpace(4, []int64{32, 32})
		if err != nil {
			t.Fatal(err)
		}
		views[i] = v
	}

	var started, wg sync.WaitGroup
	started.Add(conns)
	errs := make(chan error, conns*perConn)
	for i := range clients {
		wg.Add(1)
		go func(c *ndsclient.Client, view uint32) {
			defer wg.Done()
			for j := 0; j < perConn; j++ {
				if j == 1 {
					started.Done() // at least one request completed; more follow
				}
				if _, err := c.Read(view, []int64{0, 0}, []int64{8, 8}); err != nil {
					errs <- err
				}
			}
		}(clients[i], views[i])
	}

	// Begin the drain while every connection is mid-burst.
	started.Wait()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown during burst: %v", err)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("request dropped during drain: %v", err)
	}
	if st := srv.Stats(); st.Requests < conns*perConn {
		t.Errorf("requests executed = %d, want >= %d", st.Requests, conns*perConn)
	}
}

// TestServerConnLimit: connections beyond MaxConns are closed, not queued.
func TestServerConnLimit(t *testing.T) {
	_, srv, addr := startServer(t, ndsserver.Config{MaxConns: 1})

	c1 := dial(t, addr)
	if _, _, err := c1.CreateSpace(4, []int64{16}); err != nil {
		t.Fatal(err)
	}
	// The second connection is accepted by the kernel but closed by the
	// server; its first round trip fails.
	c2 := dial(t, addr)
	if _, _, err := c2.CreateSpace(4, []int64{16}); err == nil {
		t.Fatal("request on over-limit connection succeeded")
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().Rejected == 0 {
		if time.Now().After(deadline) {
			t.Fatal("rejected counter never incremented")
		}
		time.Sleep(time.Millisecond)
	}
	// The first connection is unaffected.
	if _, _, err := c1.CreateSpace(4, []int64{16}); err != nil {
		t.Fatalf("in-limit connection broken by rejection: %v", err)
	}
}

// TestServerBackpressure: far more pipelined requests than the in-flight
// limit all complete — the reader stalls instead of dropping or deadlocking.
func TestServerBackpressure(t *testing.T) {
	_, _, addr := startServer(t, ndsserver.Config{MaxInFlight: 2})
	c := dial(t, addr)
	_, view, err := c.CreateSpace(4, []int64{64, 64})
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.Read(view, []int64{0, 0}, []int64{8, 8}); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("pipelined read failed under backpressure: %v", err)
	}
}

// TestServerCleansViewsOnDisconnect: a client that vanishes without closing
// its views leaks nothing — the server retires them on teardown.
func TestServerCleansViewsOnDisconnect(t *testing.T) {
	dev, _, addr := startServer(t, ndsserver.Config{})
	c := dial(t, addr)
	space, _, err := c.CreateSpace(4, []int64{32, 32})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := c.OpenView(space, 4, []int64{32, 32}); err != nil {
			t.Fatal(err)
		}
	}
	if got := dev.OpenViews(); got != 4 {
		t.Fatalf("registry size = %d, want 4", got)
	}
	c.Close() // abrupt: no CloseView, no DeleteSpace
	deadline := time.Now().Add(5 * time.Second)
	for dev.OpenViews() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("registry size stuck at %d after disconnect, want 0", dev.OpenViews())
		}
		time.Sleep(time.Millisecond)
	}
	// The space itself survives its client.
	c2 := dial(t, addr)
	if _, err := c2.OpenView(space, 4, []int64{32, 32}); err != nil {
		t.Fatalf("space did not survive client disconnect: %v", err)
	}
}

// TestServerOversizedFrame: a length prefix beyond MaxFrameBytes drops the
// connection (length-prefixed streams cannot resynchronize past a bad frame).
func TestServerOversizedFrame(t *testing.T) {
	// Payload pages alone are 4 KB, so the cap must clear small commands
	// while staying under the 16 KB write below.
	_, srv, addr := startServer(t, ndsserver.Config{MaxFrameBytes: 8192})
	c := dial(t, addr)
	_, view, err := c.CreateSpace(4, []int64{64, 64})
	if err != nil {
		t.Fatal(err)
	}
	err = c.Write(view, []int64{0, 0}, []int64{64, 64}, make([]byte, 64*64*4))
	if err == nil {
		t.Fatal("oversized frame was served")
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().Drops == 0 {
		if time.Now().After(deadline) {
			t.Fatal("drop counter never incremented")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestServerIdleTimeout: a connection that goes quiet past ReadTimeout is
// dropped and its views retired.
func TestServerIdleTimeout(t *testing.T) {
	dev, _, addr := startServer(t, ndsserver.Config{ReadTimeout: 50 * time.Millisecond})
	c := dial(t, addr)
	if _, _, err := c.CreateSpace(4, []int64{16, 16}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for dev.OpenViews() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("idle connection's views never retired")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
