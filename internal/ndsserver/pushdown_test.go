package ndsserver_test

import (
	"context"
	"encoding/binary"
	"errors"
	"net"
	"path/filepath"
	"testing"
	"time"

	"nds"
	"nds/internal/ndsclient"
	"nds/internal/ndsserver"
	"nds/internal/proto"
)

// startPushdownServer is startServer with caller-controlled device options,
// for the pushdown-disabled configuration.
func startPushdownServer(t *testing.T, opts nds.Options) (*ndsclient.Client, *nds.Device) {
	t.Helper()
	dev, err := nds.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := ndsserver.New(dev, ndsserver.Config{})
	path := filepath.Join(t.TempDir(), "nds.sock")
	l, err := net.Listen("unix", path)
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-serveDone; !errors.Is(err, ndsserver.ErrServerClosed) {
			t.Errorf("Serve returned %v, want ErrServerClosed", err)
		}
		dev.Close()
	})
	return dial(t, "unix:"+path), dev
}

// TestServerPushdown drives pushdown_scan and pushdown_reduce through a live
// socket and checks every result against the bytes read back over the same
// connection.
func TestServerPushdown(t *testing.T) {
	c, _ := startPushdownServer(t, nds.Options{Mode: nds.ModeHardware, CapacityHint: 16 << 20})

	_, view, err := c.CreateSpace(8, []int64{32, 32})
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 16*16*8)
	for i := 0; i < 16*16; i++ {
		binary.LittleEndian.PutUint64(data[8*i:], uint64(i%37))
	}
	if err := c.Write(view, []int64{0, 0}, []int64{16, 16}, data); err != nil {
		t.Fatal(err)
	}

	// Host-side oracle from the partition bytes the server returns.
	raw, err := c.Read(view, []int64{0, 0}, []int64{16, 16})
	if err != nil {
		t.Fatal(err)
	}
	var wantIdx []int64
	var wantSum, wantMax uint64
	var wantCount int64
	lo, hi := uint64(5), uint64(11)
	for i := 0; i < len(raw)/8; i++ {
		v := binary.LittleEndian.Uint64(raw[8*i:])
		if v >= lo && v <= hi {
			wantIdx = append(wantIdx, int64(i))
			wantSum += v
			wantCount++
		}
		if v > wantMax {
			wantMax = v
		}
	}

	res, err := c.Scan(view, []int64{0, 0}, []int64{16, 16}, lo, hi, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != int64(len(wantIdx)) || len(res.Matches) != len(wantIdx) || res.NextCursor != -1 {
		t.Fatalf("scan: total %d matches %d next %d, want %d complete", res.Total, len(res.Matches), res.NextCursor, len(wantIdx))
	}
	for i, m := range res.Matches {
		if m.Index != wantIdx[i] {
			t.Fatalf("scan match %d at index %d, want %d", i, m.Index, wantIdx[i])
		}
	}

	// Page-bounded scan resumes by cursor until the match set is covered.
	var paged []proto.ScanMatch
	cursor := int64(0)
	for {
		page, err := c.Scan(view, []int64{0, 0}, []int64{16, 16}, lo, hi, cursor, 3)
		if err != nil {
			t.Fatal(err)
		}
		if page.Total != int64(len(wantIdx)) {
			t.Fatalf("paged scan total %d, want %d", page.Total, len(wantIdx))
		}
		paged = append(paged, page.Matches...)
		if page.NextCursor < 0 {
			break
		}
		cursor = page.NextCursor
	}
	if len(paged) != len(wantIdx) {
		t.Fatalf("paged scan returned %d matches, want %d", len(paged), len(wantIdx))
	}
	for i, m := range paged {
		if m.Index != wantIdx[i] {
			t.Fatalf("paged match %d at index %d, want %d", i, m.Index, wantIdx[i])
		}
	}

	sum, err := c.Reduce(view, []int64{0, 0}, []int64{16, 16}, proto.ReduceOpSum, 0, &[2]uint64{lo, hi})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Value != wantSum || sum.Count != wantCount {
		t.Fatalf("reduce sum = %d/%d, want %d/%d", sum.Value, sum.Count, wantSum, wantCount)
	}
	max, err := c.Reduce(view, []int64{0, 0}, []int64{16, 16}, proto.ReduceOpMax, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if max.Value != wantMax {
		t.Fatalf("reduce max = %d, want %d", max.Value, wantMax)
	}
	topk, err := c.Reduce(view, []int64{0, 0}, []int64{16, 16}, proto.ReduceOpTopK, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(topk.TopK) != 4 || topk.TopK[0].Value != wantMax {
		t.Fatalf("reduce top-4 = %+v, want best %d", topk.TopK, wantMax)
	}
	for i := 1; i < len(topk.TopK); i++ {
		if topk.TopK[i].Value > topk.TopK[i-1].Value {
			t.Fatalf("top-k not descending: %+v", topk.TopK)
		}
	}

	// Malformed queries come back as device statuses, not connection errors.
	if _, err := c.Scan(view, []int64{40, 40}, []int64{16, 16}, 0, 0, 0, 0); !ndsclient.IsStatus(err, proto.StatusInvalidField) {
		t.Fatalf("scan at out-of-bounds coordinate: %v", err)
	}
	if _, err := c.Scan(99999, []int64{0, 0}, []int64{16, 16}, 0, 0, 0, 0); !ndsclient.IsStatus(err, proto.StatusUnknownView) {
		t.Fatalf("scan on unknown view: %v", err)
	}
}

// TestServerPushdownDisabled checks that a server over a pushdown-disabled
// device answers unsupported_opcode — what a host probing an older drive
// sees — while the data path keeps working.
func TestServerPushdownDisabled(t *testing.T) {
	c, _ := startPushdownServer(t, nds.Options{
		Mode:            nds.ModeHardware,
		CapacityHint:    16 << 20,
		DisablePushdown: true,
	})

	_, view, err := c.CreateSpace(8, []int64{16, 16})
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 8*8*8)
	if err := c.Write(view, []int64{0, 0}, []int64{8, 8}, data); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Scan(view, []int64{0, 0}, []int64{8, 8}, 0, 1, 0, 0); !ndsclient.IsStatus(err, proto.StatusUnsupportedOp) {
		t.Fatalf("scan on disabled server: %v", err)
	}
	if _, err := c.Reduce(view, []int64{0, 0}, []int64{8, 8}, proto.ReduceOpSum, 0, nil); !ndsclient.IsStatus(err, proto.StatusUnsupportedOp) {
		t.Fatalf("reduce on disabled server: %v", err)
	}
	// The data path is unaffected.
	if _, err := c.Read(view, []int64{0, 0}, []int64{8, 8}); err != nil {
		t.Fatalf("read on disabled server: %v", err)
	}
}
