package ndsserver_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"nds"
	"nds/internal/ndsclient"
	"nds/internal/ndsserver"
)

// TestServerQoSAntagonistVictim is the -race stress for the tenant QoS path
// under the server: a victim tenant and a rate-capped antagonist tenant hammer
// one QoS-enabled device from concurrent connections. Every request must
// complete, the token bucket must have throttled the antagonist (ThrottleNs
// accumulates), and per-tenant accounting must add up — all while the race
// detector watches the scheduler's heap, the bucket, and the atomic counters.
func TestServerQoSAntagonistVictim(t *testing.T) {
	dev, err := nds.Open(nds.Options{
		Mode:         nds.ModeHardware,
		CapacityHint: 16 << 20,
		TenantQoS:    &nds.TenantQoS{Weight: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := ndsserver.New(dev, ndsserver.Config{})
	path := filepath.Join(t.TempDir(), "nds.sock")
	l, err := net.Listen("unix", path)
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-serveDone; !errors.Is(err, ndsserver.ErrServerClosed) {
			t.Errorf("Serve returned %v, want ErrServerClosed", err)
		}
		dev.Close()
	})
	addr := "unix:" + path

	const (
		conns   = 3  // per tenant
		perConn = 40 // 64x64 float32 tile reads each
		tileB   = 64 * 64 * 4
	)
	// One space per tenant; the antagonist's is capped at 1 MiB/s with a
	// small bucket so most of its reads hit the throttle path.
	setup := func(rate float64) (uint32, []*ndsclient.Client, []uint32) {
		clients := make([]*ndsclient.Client, conns)
		views := make([]uint32, conns)
		var space uint32
		for i := range clients {
			clients[i] = dial(t, addr)
			if i == 0 {
				var err error
				if space, views[0], err = clients[0].CreateSpace(4, []int64{256, 256}); err != nil {
					t.Fatal(err)
				}
				continue
			}
			var err error
			if views[i], err = clients[i].OpenView(space, 4, []int64{256, 256}); err != nil {
				t.Fatal(err)
			}
		}
		if rate > 0 {
			if err := dev.SetTenantQoS(nds.SpaceID(space), nds.TenantQoS{
				Weight:          1,
				RateBytesPerSec: rate,
				Burst:           64 << 10,
			}); err != nil {
				t.Fatal(err)
			}
		}
		return space, clients, views
	}
	_, vicClients, vicViews := setup(0)
	antSpace, antClients, antViews := setup(1 << 20)

	drive := func(clients []*ndsclient.Client, views []uint32, errs chan<- error) *sync.WaitGroup {
		var wg sync.WaitGroup
		for i := range clients {
			wg.Add(1)
			go func(ci int) {
				defer wg.Done()
				for k := 0; k < perConn; k++ {
					tile := int64((ci*perConn + k) % 16)
					_, err := clients[ci].Read(views[ci], []int64{tile / 4, tile % 4}, []int64{64, 64})
					if err != nil {
						errs <- fmt.Errorf("conn %d op %d: %w", ci, k, err)
						return
					}
				}
			}(i)
		}
		return &wg
	}
	errs := make(chan error, 2*conns)
	vicWG := drive(vicClients, vicViews, errs)
	antWG := drive(antClients, antViews, errs)
	vicWG.Wait()
	antWG.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}

	var antThrottle time.Duration
	var totalOps int64
	for _, ts := range dev.TenantStats() {
		totalOps += ts.Ops
		if !ts.IsGroup && ts.Space == nds.SpaceID(antSpace) {
			antThrottle = ts.Throttle
			if ts.Ops != conns*perConn || ts.Bytes != int64(conns*perConn*tileB) {
				t.Fatalf("antagonist accounting = %+v, want %d ops / %d bytes",
					ts, conns*perConn, conns*perConn*tileB)
			}
		}
	}
	if totalOps != 2*conns*perConn {
		t.Fatalf("tenants account %d ops, want %d", totalOps, 2*conns*perConn)
	}
	if antThrottle <= 0 {
		t.Fatal("token bucket never throttled the antagonist (1 MiB/s cap, ~1.9 MiB demanded)")
	}
}
