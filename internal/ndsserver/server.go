// Package ndsserver serves the §5.3.1 extended-NVMe command set over stream
// sockets (TCP and unix), framing submission entries with internal/proto's
// length-prefixed frames. It is the network face of an nds.Device: every
// connection is an independent host, every view a connection opens is an
// independent command stream over the device's per-view cursors, and
// commands pipelined on one connection execute concurrently (bounded by the
// in-flight limit) and complete out of order, matched to requests by
// sequence number.
//
// Resilience contract:
//
//   - Connection limit: at most MaxConns connections are served; beyond
//     that, accepted sockets are closed immediately.
//   - Deadlines: a connection idle past ReadTimeout, or one that cannot
//     absorb a response within WriteTimeout, is dropped.
//   - Backpressure: at most MaxInFlight requests per connection execute at
//     once; the reader stops pulling frames when the limit is reached, so a
//     flooding client queues in its own socket buffers, not in server
//     memory.
//   - Graceful drain: Shutdown stops accepting, lets every request already
//     received finish and its response flush, closes each connection's
//     remaining views, then closes the sockets. Requests in flight at
//     shutdown are never dropped.
//   - Cleanup: however a connection ends — clean EOF, timeout, drain, or
//     error — every view it still holds open is closed, so a dead client
//     leaks nothing in the device's view registry.
package ndsserver

import (
	"bufio"
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"nds"
	"nds/internal/proto"
)

// ErrServerClosed is returned by Serve after Shutdown begins.
var ErrServerClosed = errors.New("ndsserver: server closed")

// Defaults for zero Config fields.
const (
	DefaultMaxConns      = 64
	DefaultMaxInFlight   = 32
	DefaultMaxFrameBytes = proto.DefaultMaxFrame
	DefaultReadTimeout   = 2 * time.Minute
	DefaultWriteTimeout  = 30 * time.Second
	DefaultDrainGrace    = 250 * time.Millisecond
)

// Config tunes a Server. Zero fields take the defaults above.
type Config struct {
	// MaxConns bounds simultaneously served connections.
	MaxConns int
	// MaxInFlight bounds concurrently executing requests per connection.
	MaxInFlight int
	// MaxFrameBytes bounds one request frame (a larger length prefix drops
	// the connection — a length-prefixed stream cannot resynchronize).
	MaxFrameBytes uint32
	// ReadTimeout is the longest a connection may sit idle between request
	// frames. Negative disables the deadline.
	ReadTimeout time.Duration
	// WriteTimeout is the longest one response write may take. Negative
	// disables the deadline.
	WriteTimeout time.Duration
	// DrainGrace is how long after Shutdown a connection keeps reading:
	// requests that arrive within the grace are still served, so a client
	// mid-burst sees responses for everything it managed to send.
	DrainGrace time.Duration
	// Logf, when non-nil, receives connection-level events (rejects,
	// malformed frames, timeouts). Printf-shaped.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.MaxConns == 0 {
		c.MaxConns = DefaultMaxConns
	}
	if c.MaxInFlight == 0 {
		c.MaxInFlight = DefaultMaxInFlight
	}
	if c.MaxFrameBytes == 0 {
		c.MaxFrameBytes = DefaultMaxFrameBytes
	}
	if c.ReadTimeout == 0 {
		c.ReadTimeout = DefaultReadTimeout
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = DefaultWriteTimeout
	}
	if c.DrainGrace == 0 {
		c.DrainGrace = DefaultDrainGrace
	}
	return c
}

// Stats counts a server's lifetime activity.
type Stats struct {
	Accepted int64 // connections served
	Rejected int64 // connections closed at the limit
	Requests int64 // request frames executed
	Drops    int64 // connections dropped on error or timeout
}

// Server serves one nds.Device to any number of socket listeners.
type Server struct {
	dev *nds.Device
	cfg Config

	// phantom routes reads through the plain Exec path: a phantom device has
	// no payload to gather, so the zero-copy frame encoder buys nothing.
	phantom bool

	accepted atomic.Int64
	rejected atomic.Int64
	requests atomic.Int64
	drops    atomic.Int64

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[*conn]struct{}
	draining  bool
	wg        sync.WaitGroup // one per live connection
}

// New builds a Server for dev. The caller retains ownership of dev: Shutdown
// drains connections but does not Close the device.
func New(dev *nds.Device, cfg Config) *Server {
	return &Server{
		dev:       dev,
		cfg:       cfg.withDefaults(),
		phantom:   dev.Phantom(),
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[*conn]struct{}),
	}
}

// Stats snapshots the server's counters.
func (s *Server) Stats() Stats {
	return Stats{
		Accepted: s.accepted.Load(),
		Rejected: s.rejected.Load(),
		Requests: s.requests.Load(),
		Drops:    s.drops.Load(),
	}
}

// Serve accepts connections on l until Shutdown or a listener error. It
// blocks; run one goroutine per listener to serve TCP and unix sockets at
// once. Always returns a non-nil error (ErrServerClosed after Shutdown).
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		l.Close()
		return ErrServerClosed
	}
	s.listeners[l] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, l)
		s.mu.Unlock()
		l.Close()
	}()
	for {
		nc, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return ErrServerClosed
			}
			return err
		}
		s.mu.Lock()
		switch {
		case s.draining:
			s.mu.Unlock()
			nc.Close()
			return ErrServerClosed
		case len(s.conns) >= s.cfg.MaxConns:
			s.rejected.Add(1)
			s.mu.Unlock()
			s.logf("ndsserver: rejecting %v: connection limit %d reached", nc.RemoteAddr(), s.cfg.MaxConns)
			nc.Close()
			continue
		}
		c := newConn(s, nc)
		s.conns[c] = struct{}{}
		s.accepted.Add(1)
		s.wg.Add(1)
		s.mu.Unlock()
		go c.serve()
	}
}

// Shutdown gracefully drains the server: it stops accepting, tells every
// connection to finish what it has received (plus DrainGrace of further
// reads), waits for all responses to flush and all views to close, and
// returns nil. If ctx expires first, remaining connections are closed
// forcibly and the context's error is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	for l := range s.listeners {
		l.Close()
	}
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.beginDrain()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			c.nc.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// connDone unregisters a finished connection.
func (s *Server) connDone(c *conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	s.wg.Done()
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// conn is one served connection: a reader that unframes and admits
// requests, bounded executor goroutines, and a writer that frames
// completions back. Request execution is concurrent, so responses interleave
// in completion order; the sequence number carries the correlation.
type conn struct {
	srv *Server
	nc  net.Conn
	br  *bufio.Reader
	bw  *bufio.Writer

	inflight chan struct{} // executor admission semaphore
	respCh   chan outMsg   // executors -> writer
	wfailed  atomic.Bool   // writer hit an error; discard further responses

	draining atomic.Bool
	drainMu  sync.Mutex
	drainAt  time.Time // read deadline once draining

	viewMu sync.Mutex
	views  map[uint32]struct{} // views this connection opened, for cleanup
}

func newConn(s *Server, nc net.Conn) *conn {
	return &conn{
		srv:      s,
		nc:       nc,
		br:       bufio.NewReaderSize(nc, 64<<10),
		bw:       bufio.NewWriterSize(nc, 64<<10),
		inflight: make(chan struct{}, s.cfg.MaxInFlight),
		respCh:   make(chan outMsg, s.cfg.MaxInFlight),
		views:    make(map[uint32]struct{}),
	}
}

// beginDrain flips the connection into drain mode: reads continue only for
// DrainGrace, then the read loop ends and in-flight requests finish.
func (c *conn) beginDrain() {
	c.drainMu.Lock()
	c.drainAt = time.Now().Add(c.srv.cfg.DrainGrace)
	c.drainMu.Unlock()
	c.draining.Store(true)
	// Wake a reader blocked in ReadRequest; the loop re-arms the deadline
	// to the grace window on its way out of a timeout only when not
	// draining, so this one sticks.
	c.nc.SetReadDeadline(c.drainAt)
}

func (c *conn) serve() {
	defer c.srv.connDone(c)
	var execWG sync.WaitGroup
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		c.writeLoop()
	}()
	c.readLoop(&execWG)
	execWG.Wait()   // every admitted request has queued its response
	close(c.respCh) // writer flushes the tail and exits
	<-writerDone
	c.closeViews()
	c.nc.Close()
}

// readLoop admits request frames until EOF, error, timeout, or drain.
func (c *conn) readLoop(execWG *sync.WaitGroup) {
	for {
		if to := c.srv.cfg.ReadTimeout; to > 0 && !c.draining.Load() {
			c.nc.SetReadDeadline(time.Now().Add(to))
		}
		// Re-check after arming the idle deadline: beginDrain stores the
		// flag before poking its own (shorter) deadline, so whichever order
		// the two SetReadDeadline calls land in, the drain deadline wins.
		if c.draining.Load() {
			c.drainMu.Lock()
			at := c.drainAt
			c.drainMu.Unlock()
			c.nc.SetReadDeadline(at)
		}
		req, err := proto.ReadRequest(c.br, c.srv.cfg.MaxFrameBytes)
		if err != nil {
			var ne net.Error
			switch {
			case errors.Is(err, io.EOF), errors.Is(err, net.ErrClosed):
				// Clean goodbye (or a teardown we initiated).
			case c.draining.Load():
				// Drain grace expired mid-read; the admitted work still
				// finishes below.
			case errors.As(err, &ne) && ne.Timeout():
				c.srv.drops.Add(1)
				c.srv.logf("ndsserver: %v: idle past read timeout", c.nc.RemoteAddr())
			default:
				c.srv.drops.Add(1)
				c.srv.logf("ndsserver: %v: read: %v", c.nc.RemoteAddr(), err)
			}
			return
		}
		c.inflight <- struct{}{} // backpressure: cap concurrent execution
		execWG.Add(1)
		go func(req proto.Request) {
			defer execWG.Done()
			defer func() { <-c.inflight }()
			c.handle(req)
		}(req)
	}
}

// outMsg is one queued response: either a structured Response for
// proto.WriteResponse, or — when frame is non-nil — a pre-encoded frame
// (header plus gathered payload) written to the stream verbatim. Frames are
// pooled; the writer releases them after the write, including on the
// post-failure discard path.
type outMsg struct {
	resp  proto.Response
	frame []byte
}

// handle executes one request against the device and queues its response.
// nds_read on a data-bearing device takes the zero-copy path: the response
// frame is encoded straight from the device's segment lease, so the payload
// is copied once (device storage -> frame) instead of assembled into a
// partition buffer and re-copied by the frame writer. The first command byte
// is the entry's opcode (word 0 is little-endian with the opcode in bits
// 7:0), so routing needs no full decode; ExecRead re-validates.
func (c *conn) handle(req proto.Request) {
	c.srv.requests.Add(1)
	if proto.Opcode(req.Cmd[0]) == proto.OpRead && !c.srv.phantom {
		c.handleRead(req)
		return
	}
	data, cpl, _, _ := c.srv.dev.Exec(req.Cmd, req.Payload, req.Data)
	c.trackViews(req.Cmd, cpl)
	c.respCh <- outMsg{resp: proto.Response{Seq: req.Seq, Cpl: cpl, Data: data}}
}

// handleRead executes one nds_read through Device.ExecRead, gathering the
// segment lease into a pooled pre-encoded response frame.
func (c *conn) handleRead(req proto.Request) {
	var frame []byte
	oversize := false
	cpl, _, err := c.srv.dev.ExecRead(req.Cmd, req.Payload, func(want int64, segs []nds.Segment) error {
		if want > int64(proto.DefaultMaxFrame) {
			// The assembled path would hit this at WriteResponse; failing the
			// gather keeps the outcome (connection teardown) identical without
			// staging an unsendable payload.
			oversize = true
			return proto.ErrFrameTooLarge
		}
		frame = getFrame(proto.ResponseHeaderLen + int(want))
		payload := frame[proto.ResponseHeaderLen:]
		// Gather: segments arrive in destination order; the stretches between
		// them are unwritten storage and must read as zeros (the pooled frame
		// holds a previous response's bytes).
		var pos int64
		for _, sg := range segs {
			if sg.Dst > pos {
				clear(payload[pos:sg.Dst])
			}
			pos = sg.Dst + int64(copy(payload[sg.Dst:], sg.Src))
		}
		clear(payload[pos:])
		return nil
	})
	if oversize {
		putFrame(frame)
		c.failWrite(proto.ErrFrameTooLarge)
		return
	}
	if err != nil || cpl.Status != proto.StatusOK || frame == nil {
		// Command-level failure: fn never ran (or its work is abandoned), and
		// the completion status carries the story like any other response.
		putFrame(frame)
		c.respCh <- outMsg{resp: proto.Response{Seq: req.Seq, Cpl: cpl}}
		return
	}
	proto.PutResponseHeader(frame, req.Seq, cpl, len(frame)-proto.ResponseHeaderLen)
	c.respCh <- outMsg{frame: frame}
}

// trackViews keeps the set of views this connection opened, so conn teardown
// can retire what the client left behind. delete_space needs no bookkeeping
// here: the device itself retires all views of a deleted space.
func (c *conn) trackViews(raw [proto.CommandSize]byte, cpl proto.Completion) {
	if cpl.Status != proto.StatusOK {
		return
	}
	cmd, err := proto.Unmarshal(raw)
	if err != nil {
		return
	}
	switch cmd.Opcode() {
	case proto.OpOpenSpace:
		c.viewMu.Lock()
		c.views[uint32(cpl.Result1)] = struct{}{}
		c.viewMu.Unlock()
	case proto.OpCloseSpace:
		c.viewMu.Lock()
		delete(c.views, cmd.Target())
		c.viewMu.Unlock()
	}
}

// closeViews retires every view the connection still holds. Views already
// retired (close_space raced with delete_space, or the device retired them)
// answer StatusUnknownView, which is exactly what "nothing to do" looks
// like.
func (c *conn) closeViews() {
	c.viewMu.Lock()
	ids := make([]uint32, 0, len(c.views))
	for id := range c.views {
		ids = append(ids, id)
	}
	c.views = make(map[uint32]struct{})
	c.viewMu.Unlock()
	for _, id := range ids {
		c.srv.dev.Exec(proto.NewCloseSpace(id).Marshal(), nil, nil)
	}
}

// writeLoop frames responses back in completion order. After a write error
// the connection is unrecoverable: remaining responses are drained and
// discarded so executors never block on a dead socket.
func (c *conn) writeLoop() {
	for m := range c.respCh {
		if c.wfailed.Load() {
			putFrame(m.frame)
			continue
		}
		if to := c.srv.cfg.WriteTimeout; to > 0 {
			c.nc.SetWriteDeadline(time.Now().Add(to))
		}
		var err error
		if m.frame != nil {
			_, err = c.bw.Write(m.frame)
			putFrame(m.frame)
		} else {
			err = proto.WriteResponse(c.bw, m.resp)
		}
		if err != nil {
			c.failWrite(err)
			continue
		}
		// Flush when no more responses are queued: batches bursts into one
		// syscall without adding latency to a lone completion.
		if len(c.respCh) == 0 {
			if err := c.bw.Flush(); err != nil {
				c.failWrite(err)
			}
		}
	}
	if !c.wfailed.Load() {
		c.bw.Flush()
	}
}

// framePool recycles the zero-copy read path's pre-encoded response frames
// across requests and connections. Steady-state streaming reads therefore
// allocate no frame memory per response.
var framePool sync.Pool

// maxPooledFrame caps what putFrame retains: one giant read must not pin a
// frame that large in the pool forever.
const maxPooledFrame = 1 << 20

// getFrame returns a frame buffer of length n (contents unspecified).
func getFrame(n int) []byte {
	if b, _ := framePool.Get().([]byte); cap(b) >= n {
		return b[:n]
	}
	return make([]byte, n)
}

// putFrame releases a frame buffer. nil is fine; oversized buffers drop.
func putFrame(b []byte) {
	if b != nil && cap(b) <= maxPooledFrame {
		framePool.Put(b[:0]) //nolint:staticcheck // []byte in a Pool is intentional
	}
}

func (c *conn) failWrite(err error) {
	if c.wfailed.CompareAndSwap(false, true) {
		c.srv.drops.Add(1)
		c.srv.logf("ndsserver: %v: write: %v", c.nc.RemoteAddr(), err)
		// Unblock the reader too: the conversation is over.
		c.nc.Close()
	}
}
