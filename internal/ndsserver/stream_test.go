package ndsserver_test

import (
	"bytes"
	"errors"
	"testing"

	"nds/internal/ndsclient"
	"nds/internal/ndsserver"
)

// TestReadStreamMatchesRead: a windowed streaming read must deliver exactly
// the bytes a single nds_read of the same partition returns — in-order
// chunks, correct offsets, unwritten regions as zeros — while keeping more
// chunks than the window in flight overall.
func TestReadStreamMatchesRead(t *testing.T) {
	_, _, addr := startServer(t, ndsserver.Config{})
	c := dial(t, addr)

	_, view, err := c.CreateSpace(4, []int64{64, 32})
	if err != nil {
		t.Fatal(err)
	}
	// Write rows 16..47 only: the stream must reproduce the written pattern
	// there and zeros in the untouched rows above and below.
	payload := make([]byte, 32*32*4)
	for i := range payload {
		payload[i] = byte(i*7 + 3)
	}
	if err := c.Write(view, []int64{1, 0}, []int64{32, 32}, payload); err != nil {
		t.Fatal(err)
	}
	want, err := c.Read(view, []int64{0, 0}, []int64{64, 32})
	if err != nil {
		t.Fatal(err)
	}

	var got bytes.Buffer
	var offs []int64
	total, err := c.ReadStream(view, []int64{0, 0}, []int64{64, 32},
		ndsclient.StreamOpts{Window: 3, ChunkRows: 8},
		func(off int64, chunk []byte) error {
			offs = append(offs, off)
			got.Write(chunk)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if total != int64(len(want)) {
		t.Fatalf("ReadStream moved %d bytes, single read returned %d", total, len(want))
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatal("streamed bytes differ from single-read bytes")
	}
	if len(offs) != 8 { // 64 rows / 8 per chunk
		t.Fatalf("delivered %d chunks, want 8", len(offs))
	}
	chunkBytes := int64(8 * 32 * 4)
	for j, off := range offs {
		if off != int64(j)*chunkBytes {
			t.Fatalf("chunk %d delivered at offset %d, want %d", j, off, int64(j)*chunkBytes)
		}
	}
}

// TestReadStreamErrors: a callback error aborts the stream and surfaces; a
// chunking that does not tile the partition is rejected before any request.
func TestReadStreamErrors(t *testing.T) {
	_, _, addr := startServer(t, ndsserver.Config{})
	c := dial(t, addr)

	_, view, err := c.CreateSpace(4, []int64{64, 32})
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("consumer failed")
	calls := 0
	_, err = c.ReadStream(view, []int64{0, 0}, []int64{64, 32},
		ndsclient.StreamOpts{Window: 2, ChunkRows: 16},
		func(off int64, chunk []byte) error {
			calls++
			if off > 0 {
				return boom
			}
			return nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("ReadStream returned %v, want the callback's error", err)
	}
	if calls != 2 {
		t.Fatalf("callback ran %d times, want 2 (aborts after the failing chunk)", calls)
	}

	if _, err := c.ReadStream(view, []int64{0, 0}, []int64{64, 32},
		ndsclient.StreamOpts{ChunkRows: -1}, nil); err == nil {
		t.Fatal("ReadStream accepted negative chunk rows")
	}
}

// TestReadStreamNonDivisorChunks: chunk heights that do not divide the row
// count tile with aligned chunks plus a short tail instead of being rejected
// (or, as defaultChunkRows once did for primes, degenerating to one-row
// frames). Prime row counts must stream correctly and in few frames.
func TestReadStreamNonDivisorChunks(t *testing.T) {
	_, _, addr := startServer(t, ndsserver.Config{})
	c := dial(t, addr)

	const rows = 4099 // prime
	_, view, err := c.CreateSpace(4, []int64{rows, 8})
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 512*8*4)
	for i := range payload {
		payload[i] = byte(i*13 + 5)
	}
	// Rows 3584..4095: the written region crosses into the unaligned tail.
	if err := c.Write(view, []int64{7, 0}, []int64{512, 8}, payload); err != nil {
		t.Fatal(err)
	}
	want, err := c.Read(view, []int64{0, 0}, []int64{rows, 8})
	if err != nil {
		t.Fatal(err)
	}

	for _, chunkRows := range []int64{0, 128, 7} { // 0 = defaultChunkRows heuristic
		var got bytes.Buffer
		frames := 0
		next := int64(0)
		total, err := c.ReadStream(view, []int64{0, 0}, []int64{rows, 8},
			ndsclient.StreamOpts{Window: 4, ChunkRows: chunkRows},
			func(off int64, chunk []byte) error {
				if off != next {
					t.Fatalf("chunkRows=%d: chunk at offset %d, want %d", chunkRows, off, next)
				}
				next = off + int64(len(chunk))
				frames++
				got.Write(chunk)
				return nil
			})
		if err != nil {
			t.Fatalf("chunkRows=%d: %v", chunkRows, err)
		}
		if total != int64(len(want)) || !bytes.Equal(got.Bytes(), want) {
			t.Fatalf("chunkRows=%d: streamed %d bytes differing from single read (%d bytes)", chunkRows, total, len(want))
		}
		if frames > 1024 {
			t.Fatalf("chunkRows=%d: tiling degenerated into %d frames for %d rows", chunkRows, frames, rows)
		}
	}
}
