package experiments

import (
	"fmt"

	"nds/internal/stl"
	"nds/internal/system"
)

// Sensitivity sweeps beyond the paper's fixed platform: how the NDS
// advantage scales with channel count ([C1]: optimal layouts differ per
// device — NDS adapts automatically) and how the building-block multiplier
// trades row/column/tile access efficiency (the Equation 2 sizing decision).

// SweepPoint is one x-position of a sensitivity sweep.
type SweepPoint struct {
	X          int64
	BaselineMB float64
	HardwareMB float64
	RowMB      float64 // block-multiplier sweep only
	ColMB      float64
	TileMB     float64
}

// SweepChannels measures a k x k tile fetch (k = n/8) on devices with
// varying channel counts: the baseline's row-gather barely improves (it is
// request-bound), while NDS rides the added internal parallelism until the
// host link saturates.
func SweepChannels(n int64, channels []int) ([]SweepPoint, error) {
	var out []SweepPoint
	k := n / 8
	for _, ch := range channels {
		cfg := system.PrototypeConfig(n*n*8, true)
		cfg.Geometry.Channels = ch
		// Keep raw capacity comparable as channel count changes.
		cfg.Geometry.BlocksPerBank = cfg.Geometry.BlocksPerBank * 32 / ch
		if cfg.Geometry.BlocksPerBank < 4 {
			cfg.Geometry.BlocksPerBank = 4
		}

		base, err := system.New(system.Baseline, cfg)
		if err != nil {
			return nil, err
		}
		pages := n * n * 8 / int64(cfg.Geometry.PageSize)
		for lpn := int64(0); lpn < pages; lpn += 65536 {
			if _, err := base.FTL.WritePages(0, lpn, nil, min64(65536, pages-lpn)); err != nil {
				return nil, err
			}
		}
		base.ResetTimelines()
		var runs []system.Run
		for r := int64(0); r < k; r++ {
			runs = append(runs, system.Run{Off: r * n * 8, Len: k * 8})
		}
		_, st, err := base.BaselineRead(0, runs, true, 1)
		if err != nil {
			return nil, err
		}
		pt := SweepPoint{X: int64(ch), BaselineMB: mbps(st.Bytes, st.Done)}

		hw, err := system.New(system.HardwareNDS, cfg)
		if err != nil {
			return nil, err
		}
		sp, err := hw.STL.CreateSpace(8, []int64{n, n})
		if err != nil {
			return nil, err
		}
		v, err := stl.NewView(sp, []int64{n, n})
		if err != nil {
			return nil, err
		}
		band := sp.BlockDims()[0]
		for i := int64(0); i*band < n; i++ {
			if _, _, err := hw.STL.WritePartition(0, v, []int64{i, 0}, []int64{band, n}, nil); err != nil {
				return nil, err
			}
		}
		hw.ResetTimelines()
		_, ost, err := hw.NDSRead(0, v, []int64{1, 1}, []int64{k, k})
		if err != nil {
			return nil, err
		}
		pt.HardwareMB = mbps(ost.Bytes, ost.Done)
		out = append(out, pt)
	}
	return out, nil
}

// SweepBlockMultiplier measures row-band, column-band, and tile fetches
// through hardware NDS with building blocks scaled 1x..8x beyond the
// Equation 2 minimum, showing why the prototype's 2x is a sweet spot.
func SweepBlockMultiplier(n int64, mults []int) ([]SweepPoint, error) {
	var out []SweepPoint
	for _, mult := range mults {
		cfg := system.PrototypeConfig(n*n*8, true)
		cfg.STL.BBMultiplier = mult
		hw, err := system.New(system.HardwareNDS, cfg)
		if err != nil {
			return nil, err
		}
		sp, err := hw.STL.CreateSpace(8, []int64{n, n})
		if err != nil {
			return nil, err
		}
		bb := sp.BlockDims()[0]
		if bb > n {
			return nil, fmt.Errorf("experiments: multiplier %d makes blocks (%d) exceed the matrix (%d)", mult, bb, n)
		}
		v, err := stl.NewView(sp, []int64{n, n})
		if err != nil {
			return nil, err
		}
		for i := int64(0); i*bb < n; i++ {
			if _, _, err := hw.STL.WritePartition(0, v, []int64{i, 0}, []int64{bb, n}, nil); err != nil {
				return nil, err
			}
		}
		measure := func(coord, sub []int64) (float64, error) {
			hw.ResetTimelines()
			_, st, err := hw.NDSRead(0, v, coord, sub)
			if err != nil {
				return 0, err
			}
			return mbps(st.Bytes, st.Done), nil
		}
		pt := SweepPoint{X: int64(mult)}
		if pt.RowMB, err = measure([]int64{1, 0}, []int64{n / 8, n}); err != nil {
			return nil, err
		}
		if pt.ColMB, err = measure([]int64{0, 1}, []int64{n, n / 8}); err != nil {
			return nil, err
		}
		if pt.TileMB, err = measure([]int64{1, 1}, []int64{n / 4, n / 4}); err != nil {
			return nil, err
		}
		out = append(out, pt)
	}
	return out, nil
}
