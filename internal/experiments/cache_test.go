package experiments

import "testing"

// The cache acceptance bar: with the cache sized at 4x the working set, the
// second row-then-column scan pair of a matrix runs at least 2x faster than
// the first, and the uncached device shows no pass-to-pass difference at all.
func TestCacheRescanSpeedup(t *testing.T) {
	const n = 1024
	working := int64(n * n * 8)

	r, err := CacheRescan(n, 4*working, 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("cached: cold=%v warm=%v speedup=%.2f", r.ColdPass, r.WarmPass, r.Speedup)
	t.Logf("stats: %+v", r.Stats)
	if r.WarmPass*2 > r.ColdPass {
		t.Errorf("warm pass %v not 2x faster than cold pass %v (speedup %.2f)",
			r.WarmPass, r.ColdPass, r.Speedup)
	}
	if r.Stats.Hits == 0 {
		t.Error("no cache hits recorded")
	}
	if r.Stats.PrefetchIssued == 0 || r.Stats.PrefetchUsed == 0 {
		t.Errorf("dimensional prefetch inactive: issued=%d used=%d",
			r.Stats.PrefetchIssued, r.Stats.PrefetchUsed)
	}
	if r.Stats.ResidentBytes > r.Stats.CapacityBytes {
		t.Errorf("resident %d exceeds capacity %d", r.Stats.ResidentBytes, r.Stats.CapacityBytes)
	}

	r0, err := CacheRescan(n, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r0.ColdPass != r0.WarmPass {
		t.Errorf("uncached passes differ: cold=%v warm=%v", r0.ColdPass, r0.WarmPass)
	}
	if r0.Stats != (CacheRescanResult{}).Stats {
		t.Errorf("uncached device reported cache stats: %+v", r0.Stats)
	}
	if r.WarmPass >= r0.WarmPass {
		t.Errorf("cached warm pass %v not faster than uncached pass %v", r.WarmPass, r0.WarmPass)
	}
}
