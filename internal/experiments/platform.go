// Package experiments contains one harness per table/figure of the paper's
// evaluation (§7), each regenerating the corresponding rows/series on the
// simulated platform. Absolute numbers come from the calibrated models; the
// shapes — who wins, by what factor, where the crossovers fall — are the
// reproduction targets recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"

	"nds/internal/sim"
	"nds/internal/stl"
	"nds/internal/system"
)

// Platform bundles one instance of each evaluated configuration over
// identically-sized devices.
type Platform struct {
	Baseline *system.System
	Software *system.System
	Hardware *system.System
}

// NewPlatform builds the three configurations for a dataset of the given
// size. Phantom devices are used: timing and state are exact, page contents
// are not stored.
func NewPlatform(datasetBytes int64) (*Platform, error) {
	cfg := system.PrototypeConfig(datasetBytes, true)
	p := &Platform{}
	var err error
	if p.Baseline, err = system.New(system.Baseline, cfg); err != nil {
		return nil, err
	}
	if p.Software, err = system.New(system.SoftwareNDS, cfg); err != nil {
		return nil, err
	}
	if p.Hardware, err = system.New(system.HardwareNDS, cfg); err != nil {
		return nil, err
	}
	return p, nil
}

// Matrix2D is a square row-major matrix of 8-byte elements resident on all
// three systems: written row-major into the baseline SSD's linear space and
// as an (N,N) space on the NDS systems.
type Matrix2D struct {
	N        int64
	ElemSize int64

	SoftView *stl.View
	HardView *stl.View
}

// Bytes is the matrix size in bytes.
func (m *Matrix2D) Bytes() int64 { return m.N * m.N * m.ElemSize }

// RowBytes is one row in bytes.
func (m *Matrix2D) RowBytes() int64 { return m.N * m.ElemSize }

// LoadMatrix populates all three systems with an NxN matrix of 8-byte
// elements (setup work; timelines are reset afterwards so measurements start
// from a quiet platform).
func (p *Platform) LoadMatrix(n int64) (*Matrix2D, error) {
	m := &Matrix2D{N: n, ElemSize: 8}
	ps := int64(p.Baseline.Cfg.Geometry.PageSize)
	// Baseline: bulk row-major load through the FTL.
	pages := m.Bytes() / ps
	const batch = 4096
	for lpn := int64(0); lpn < pages; lpn += batch {
		cnt := min64(batch, pages-lpn)
		if _, err := p.Baseline.FTL.WritePages(0, lpn, nil, cnt); err != nil {
			return nil, fmt.Errorf("baseline load: %w", err)
		}
	}
	// NDS systems: create the (N,N) space and write it in row bands.
	for _, sys := range []*system.System{p.Software, p.Hardware} {
		sp, err := sys.STL.CreateSpace(int(m.ElemSize), []int64{n, n})
		if err != nil {
			return nil, err
		}
		v, err := stl.NewView(sp, []int64{n, n})
		if err != nil {
			return nil, err
		}
		band := sp.BlockDims()[0] // one building-block row per write
		for i := int64(0); i*band < n; i++ {
			if _, _, err := sys.STL.WritePartition(0, v, []int64{i, 0}, []int64{band, n}, nil); err != nil {
				return nil, fmt.Errorf("%v load: %w", sys.Kind, err)
			}
		}
		if sys.Kind == system.SoftwareNDS {
			m.SoftView = v
		} else {
			m.HardView = v
		}
	}
	p.ResetTimelines()
	return m, nil
}

// ResetTimelines quiesces all three systems.
func (p *Platform) ResetTimelines() {
	p.Baseline.ResetTimelines()
	p.Software.ResetTimelines()
	p.Hardware.ResetTimelines()
}

// mbps converts bytes over duration to MB/s.
func mbps(bytes int64, d sim.Time) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) / d.Seconds() / 1e6
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
