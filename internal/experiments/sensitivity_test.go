package experiments

import "testing"

func TestSweepChannelsScalesNDS(t *testing.T) {
	pts, err := SweepChannels(2048, []int{8, 16, 32})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("got %d points", len(pts))
	}
	// NDS rides internal parallelism: monotone improvement with channels.
	for i := 1; i < len(pts); i++ {
		if pts[i].HardwareMB <= pts[i-1].HardwareMB {
			t.Errorf("NDS did not gain from %d->%d channels: %.0f -> %.0f",
				pts[i-1].X, pts[i].X, pts[i-1].HardwareMB, pts[i].HardwareMB)
		}
	}
	// The baseline's small-request gather is latency/request-bound: adding
	// channels barely moves it.
	if pts[2].BaselineMB > 2*pts[0].BaselineMB {
		t.Errorf("baseline should be request-bound: %.0f @8ch vs %.0f @32ch",
			pts[0].BaselineMB, pts[2].BaselineMB)
	}
	// At every point NDS dominates.
	for _, p := range pts {
		if p.HardwareMB < 5*p.BaselineMB {
			t.Errorf("channels=%d: NDS %.0f should dominate baseline %.0f", p.X, p.HardwareMB, p.BaselineMB)
		}
	}
}

func TestSweepBlockMultiplierTradeoff(t *testing.T) {
	pts, err := SweepBlockMultiplier(4096, []int{1, 2, 8})
	if err != nil {
		t.Fatal(err)
	}
	// Small multipliers keep row/column symmetric.
	if pts[0].RowMB < 0.9*pts[0].ColMB || pts[0].ColMB < 0.9*pts[0].RowMB {
		t.Errorf("mult=1 should be symmetric: row %.0f vs col %.0f", pts[0].RowMB, pts[0].ColMB)
	}
	// Oversized blocks hurt narrow column bands (sub-block amplification).
	last := pts[len(pts)-1]
	if last.ColMB >= pts[0].ColMB {
		t.Errorf("mult=8 column fetch (%.0f) should degrade vs mult=1 (%.0f)", last.ColMB, pts[0].ColMB)
	}
	// Oversizing must fail once blocks exceed the matrix.
	if _, err := SweepBlockMultiplier(256, []int{64}); err == nil {
		t.Error("blocks larger than the matrix accepted")
	}
}
