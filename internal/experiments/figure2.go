package experiments

import (
	"nds/internal/accel"
	"nds/internal/hostsim"
	"nds/internal/sim"
	"nds/internal/system"
)

// Figure 2: relative execution time of pipelined blocked matrix
// multiplication (32Kx32K inputs, 8Kx8K sub-blocks, fp32) with a row-store
// (sequential) source layout versus a sub-block layout, (a) with data already
// in main memory and (b) streamed from a 32-channel SSD.
//
// The paper reports the row-store baseline needing 2.11x the sub-block
// configuration's time in (a), and spending 1.92x more time fetching in (b).

// Fig2Result holds one panel's outcome.
type Fig2Result struct {
	BaselineTime sim.Time
	SubBlockTime sim.Time
	// Stage shares of the baseline run (seconds of bottleneck occupancy).
	SSDTime    sim.Time
	CPUTime    sim.Time
	KernelTime sim.Time
	// Ratio is BaselineTime / SubBlockTime.
	Ratio float64
	// FetchRatio is baseline fetch time / sub-block fetch time (panel b).
	FetchRatio float64
}

// fig2Params describes the experiment's shape.
type fig2Params struct {
	n     int64 // full matrix dimension
	tile  int64 // sub-block dimension
	elem  int64 // element size (fp32)
	iters int   // kernel launches: (n/tile)^3
}

func defaultFig2() fig2Params {
	return fig2Params{n: 32768, tile: 8192, elem: 4, iters: 64}
}

// Figure2A computes panel (a): data already in host memory, so the baseline
// differs from the sub-block configuration only by the CPU marshalling stage
// that forms each 8Kx8K tile pair from the row-store image (problem [P1]).
func Figure2A() Fig2Result {
	p := defaultFig2()
	host := hostsim.New(hostsim.DefaultParams())
	gpu := accel.NewGPU()
	cuda := accel.CUDACores()

	tileBytes := p.tile * p.tile * p.elem
	pairBytes := 2 * tileBytes
	// Forming a tile from a row-store image is a strided copy: every byte is
	// loaded from the source and stored to the tile buffer, so the memory
	// traffic is twice the payload; one chunk per source row per tile.
	marshal := host.MarshalDuration(2*pairBytes, int(2*p.tile))
	// The copy stage moves the tile pair in and (amortized over the tiles
	// summed into one C tile) a result tile out.
	copyD := gpu.CopyDuration(pairBytes) + gpu.CopyDuration(tileBytes)/sim.Time(p.n/p.tile)
	kernel := cuda.Duration(pairBytes, p.tile)

	base := sim.NewPipeline(3)
	sub := sim.NewPipeline(2)
	for i := 0; i < p.iters; i++ {
		base.Feed(marshal, copyD, kernel)
		sub.Feed(copyD, kernel)
	}
	r := Fig2Result{
		BaselineTime: base.End(),
		SubBlockTime: sub.End(),
		CPUTime:      marshal * sim.Time(p.iters),
		KernelTime:   kernel * sim.Time(p.iters),
	}
	r.Ratio = r.BaselineTime.Seconds() / r.SubBlockTime.Seconds()
	return r
}

// Figure2B computes panel (b): the tile pairs stream from the 32-channel
// SSD. The row-store baseline fetches each tile with one 32 KB I/O per row
// (under-utilizing the channels, problem [P3]), while the sub-block layout
// fetches each tile contiguously.
func Figure2B() (Fig2Result, error) {
	p := defaultFig2()
	// Run at the paper's dimensions (so request sizes and the channel-stripe
	// structure are exact), but measure a 1/sample slice of each tile's rows
	// and extrapolate: the access pattern repeats identically per row, so
	// steady-state fetch time is linear in the row count.
	const sample = 8
	rowBytes := p.n * p.elem

	plat, err := NewPlatform(p.n * p.n * p.elem)
	if err != nil {
		return Fig2Result{}, err
	}
	pages := p.n * p.n * p.elem / int64(plat.Baseline.Cfg.Geometry.PageSize)
	for lpn := int64(0); lpn < pages; lpn += 65536 {
		if _, err := plat.Baseline.FTL.WritePages(0, lpn, nil, min64(65536, pages-lpn)); err != nil {
			return Fig2Result{}, err
		}
	}
	plat.ResetTimelines()

	// Row-store fetch of one tile pair: one I/O per tile row per tile. The
	// paper's baseline applications are carefully optimized (§6.2), so the
	// fetch loop runs deeply pipelined (multiple I/O threads): QD 64.
	// Across the l-sweep of blocked GEMM, the B tile's column offset varies,
	// so the pair's chunks sometimes share channels with the A tile (the
	// worst case of [P3]) and sometimes do not; average the variants.
	var baseFetch sim.Time
	variants := p.n / p.tile
	for lcol := int64(0); lcol < variants; lcol++ {
		plat.Baseline.ResetTimelines()
		var runs []system.Run
		for r := int64(0); r < p.tile/sample; r++ {
			runs = append(runs, system.Run{Off: r * rowBytes, Len: p.tile * p.elem})
			runs = append(runs, system.Run{Off: r*rowBytes + lcol*p.tile*p.elem, Len: p.tile * p.elem})
		}
		_, st, err := plat.Baseline.BaselineRead(0, runs, false, 64)
		if err != nil {
			return Fig2Result{}, err
		}
		baseFetch += st.Done * sample / sim.Time(variants)
	}

	// Sub-block fetch: both tiles contiguous (sampled the same way).
	plat.Baseline.ResetTimelines()
	tileBytesS := p.tile * p.tile * p.elem / sample
	_, st, err := plat.Baseline.BaselineRead(0, []system.Run{
		{Off: 0, Len: tileBytesS},
		{Off: tileBytesS, Len: tileBytesS},
	}, false, 64)
	if err != nil {
		return Fig2Result{}, err
	}
	subFetch := st.Done * sample

	host := hostsim.New(hostsim.DefaultParams())
	gpu := accel.NewGPU()
	cuda := accel.CUDACores()
	tileBytes := p.tile * p.tile * p.elem
	pairBytes := 2 * tileBytes
	marshal := host.MarshalDuration(2*pairBytes, int(2*p.tile))
	copyD := gpu.CopyDuration(pairBytes) + gpu.CopyDuration(tileBytes)/sim.Time(p.n/p.tile)
	kernel := cuda.Duration(pairBytes, p.tile)

	base := sim.NewPipeline(4)
	sub := sim.NewPipeline(3)
	for i := 0; i < p.iters; i++ {
		base.Feed(baseFetch, marshal, copyD, kernel)
		sub.Feed(subFetch, copyD, kernel)
	}
	r := Fig2Result{
		BaselineTime: base.End(),
		SubBlockTime: sub.End(),
		SSDTime:      baseFetch * sim.Time(p.iters),
		CPUTime:      marshal * sim.Time(p.iters),
		KernelTime:   kernel * sim.Time(p.iters),
	}
	r.Ratio = r.BaselineTime.Seconds() / r.SubBlockTime.Seconds()
	r.FetchRatio = baseFetch.Seconds() / subFetch.Seconds()
	return r, nil
}
