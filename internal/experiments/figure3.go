package experiments

import (
	"nds/internal/accel"
	"nds/internal/interconnect"
	"nds/internal/nvm"
	"nds/internal/sim"
	"nds/internal/system"
)

// Figure 3: effective data-processing rate or I/O bandwidth of each system
// component versus matrix dimension. The compute curves come from the
// calibrated accelerator model; the storage curves are *measured* on the
// device models by fetching matrices of each size with one command.

// Fig3Row is one x-position of Figure 3 (matrix of Dim x Dim 4-byte
// elements, as in the paper's GEMM microbenchmark). Rates in MB/s.
type Fig3Row struct {
	Dim          int64
	CUDACores    float64
	TensorCores  float64
	NVMeoF       float64
	InternalSSD  float64 // 32-channel datacenter SSD, internal bandwidth
	ConsumerNVMe float64 // 8-channel consumer SSD, external bandwidth
}

// Figure3 sweeps dimensions 32..16384.
func Figure3() ([]Fig3Row, error) {
	cuda, tcu := accel.CUDACores(), accel.TensorCores()
	nvmeof := interconnect.NVMeoF()
	consumer := interconnect.ConsumerNVMe()

	var rows []Fig3Row
	for dim := int64(32); dim <= 16384; dim *= 2 {
		bytes := dim * dim * 4
		r := Fig3Row{
			Dim:          dim,
			CUDACores:    cuda.Rate(dim) / 1e6,
			TensorCores:  tcu.Rate(dim) / 1e6,
			NVMeoF:       nvmeof.EffectiveBandwidth(bytes) / 1e6,
			ConsumerNVMe: consumer.EffectiveBandwidth(bytes) / 1e6,
		}
		ib, err := internalBandwidth(bytes)
		if err != nil {
			return nil, err
		}
		r.InternalSSD = ib
		rows = append(rows, r)
	}
	return rows, nil
}

// internalBandwidth measures the 32-channel device's internal read bandwidth
// for one contiguous fetch of the given size: pages striped across channels,
// read with no interconnect in the way.
func internalBandwidth(bytes int64) (float64, error) {
	cfg := system.PrototypeConfig(max64(bytes, 1<<20), true)
	dev, err := nvm.NewDevice(cfg.Geometry, cfg.Timing, true)
	if err != nil {
		return 0, err
	}
	ps := int64(cfg.Geometry.PageSize)
	pages := (bytes + ps - 1) / ps
	var done sim.Time
	for i := int64(0); i < pages; i++ {
		p := nvm.PPA{
			Channel: int(i % int64(cfg.Geometry.Channels)),
			Bank:    int((i / int64(cfg.Geometry.Channels)) % int64(cfg.Geometry.Banks)),
		}
		stride := int64(cfg.Geometry.Channels * cfg.Geometry.Banks)
		flat := i / stride
		p.Block = int(flat / int64(cfg.Geometry.PagesPerBlock))
		p.Page = int(flat % int64(cfg.Geometry.PagesPerBlock))
		_, d, err := dev.ReadPage(0, p)
		if err != nil {
			return 0, err
		}
		done = sim.Max(done, d)
	}
	return mbps(bytes, done), nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
