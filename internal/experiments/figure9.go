package experiments

import (
	"fmt"

	"nds/internal/sim"
	"nds/internal/stl"
	"nds/internal/system"
)

// Figure 9: effective bandwidth of fetching/structuring data with different
// dimensionalities, for the baseline SSD, software NDS, and hardware NDS
// (§7.1). The microbenchmark matrix is NxN doubles; the paper uses N=32768
// on a 32-channel, 4 KB-page device with 256x256 building blocks.

// Fig9Point is one x-position of a Figure 9 panel.
type Fig9Point struct {
	Label       string
	BaselineMB  float64 // row-store baseline
	BaselineAlt float64 // column-store baseline (panel b only, else 0)
	SoftwareMB  float64
	HardwareMB  float64
}

// bbMultiples yields the paper's sweep expressed in building-block
// multiples: 512..4096 elements with 256-wide blocks is {2,4,8,16} blocks.
func bbMultiples(m *Matrix2D, factors []int64) []int64 {
	bb := m.SoftView.Space().BlockDims()[0]
	var out []int64
	for _, f := range factors {
		v := f * bb
		if v >= 1 && v <= m.N {
			out = append(out, v)
		}
	}
	return out
}

// Figure9A measures row-block fetches: blocks of h rows x N columns, for h
// in building-block multiples (the paper sweeps 512..4096 of 32768).
func Figure9A(p *Platform, m *Matrix2D) ([]Fig9Point, error) {
	var out []Fig9Point
	for _, h := range bbMultiples(m, []int64{2, 4, 8, 16}) {
		pt := Fig9Point{Label: fmt.Sprintf("%dx%d", h, m.N)}
		p.ResetTimelines()

		// Baseline: each row block is contiguous in LBA space — one command.
		var runs []system.Run
		for r := int64(0); r+h <= m.N; r += h {
			runs = append(runs, system.Run{Off: r * m.RowBytes(), Len: h * m.RowBytes()})
		}
		_, st, err := p.Baseline.BaselineRead(0, runs, false, 1)
		if err != nil {
			return nil, err
		}
		pt.BaselineMB = mbps(st.Bytes, st.Done)

		sw, err := ndsSweep(p.Software, m, []int64{h, m.N})
		if err != nil {
			return nil, err
		}
		pt.SoftwareMB = sw
		hw, err := ndsSweep(p.Hardware, m, []int64{h, m.N})
		if err != nil {
			return nil, err
		}
		pt.HardwareMB = hw
		out = append(out, pt)
	}
	return out, nil
}

// ndsSweep reads the whole matrix in partitions of the given
// sub-dimensionality through one NDS system, returning effective MB/s.
func ndsSweep(sys *system.System, m *Matrix2D, sub []int64) (float64, error) {
	v := m.SoftView
	if sys.Kind == system.HardwareNDS {
		v = m.HardView
	}
	var total int64
	var done sim.Time
	for i := int64(0); i*sub[0] < m.N; i++ {
		for j := int64(0); j*sub[1] < m.N; j++ {
			_, st, err := sys.NDSRead(0, v, []int64{i, j}, sub)
			if err != nil {
				return 0, err
			}
			total += st.Bytes
			done = sim.Max(done, st.Done)
		}
	}
	return mbps(total, done), nil
}

// Figure9B measures column-block fetches of width w: the row-store baseline
// needs one small I/O per matrix row, the column-store baseline reads
// contiguously, and NDS reads building-block columns.
func Figure9B(p *Platform, m *Matrix2D) ([]Fig9Point, error) {
	var out []Fig9Point
	for _, w := range bbMultiples(m, []int64{2, 4, 8, 16}) {
		pt := Fig9Point{Label: fmt.Sprintf("%dx%d", m.N, w)}
		p.ResetTimelines()

		// Row-store baseline: fetching one w-wide column block touches every
		// row with a w*8-byte request. Measure one column block (the pattern
		// is identical for the rest and run time stays bounded).
		runs := make([]system.Run, 0, m.N)
		for r := int64(0); r < m.N; r++ {
			runs = append(runs, system.Run{Off: r * m.RowBytes(), Len: w * m.ElemSize})
		}
		_, st, err := p.Baseline.BaselineRead(0, runs, true, 1)
		if err != nil {
			return nil, err
		}
		pt.BaselineMB = mbps(st.Bytes, st.Done)

		// Column-store baseline: the same bytes are contiguous.
		p.Baseline.ResetTimelines()
		_, st, err = p.Baseline.BaselineRead(0,
			[]system.Run{{Off: 0, Len: m.N * w * m.ElemSize}}, false, 1)
		if err != nil {
			return nil, err
		}
		pt.BaselineAlt = mbps(st.Bytes, st.Done)

		// NDS: one partition per column block; measure a full matrix sweep.
		sw, err := ndsSweep(p.Software, m, []int64{m.N, w})
		if err != nil {
			return nil, err
		}
		pt.SoftwareMB = sw
		hw, err := ndsSweep(p.Hardware, m, []int64{m.N, w})
		if err != nil {
			return nil, err
		}
		pt.HardwareMB = hw
		out = append(out, pt)
	}
	return out, nil
}

// Figure9C measures square submatrix fetches of side k (1024..16384 in the
// paper). The row-store baseline issues one I/O per submatrix row.
func Figure9C(p *Platform, m *Matrix2D) ([]Fig9Point, error) {
	var out []Fig9Point
	for _, k := range bbMultiples(m, []int64{4, 8, 16, 32, 64}) {
		pt := Fig9Point{Label: fmt.Sprintf("%dx%d", k, k)}
		p.ResetTimelines()

		// Baseline: fetch one full column of submatrices (N/k tiles) to
		// reach steady state; each tile needs k row-chunk I/Os.
		var runs []system.Run
		var tiles int64 = m.N / k
		for tr := int64(0); tr < tiles; tr++ {
			for r := int64(0); r < k; r++ {
				row := tr*k + r
				runs = append(runs, system.Run{Off: row * m.RowBytes(), Len: k * m.ElemSize})
			}
		}
		_, st, err := p.Baseline.BaselineRead(0, runs, true, 1)
		if err != nil {
			return nil, err
		}
		pt.BaselineMB = mbps(st.Bytes, st.Done)

		sw, err := ndsSweep(p.Software, m, []int64{k, k})
		if err != nil {
			return nil, err
		}
		pt.SoftwareMB = sw
		hw, err := ndsSweep(p.Hardware, m, []int64{k, k})
		if err != nil {
			return nil, err
		}
		pt.HardwareMB = hw
		out = append(out, pt)
	}
	return out, nil
}

// Fig9Write holds panel (d): effective write bandwidth per configuration.
type Fig9Write struct {
	BaselineRowMB float64
	BaselineColMB float64
	SoftwareMB    float64
	HardwareMB    float64
}

// Figure9D writes an NxN matrix of doubles into a *fresh* platform,
// synchronously, in row bands sized so that each band fills whole pages in
// every building block it touches (the full-page write path the STL's §4.4
// write buffering achieves). The paper's methodology disables asynchronous
// writes and measures until programming completes.
func Figure9D(n int64) (Fig9Write, error) {
	var out Fig9Write
	p, err := NewPlatform(n * n * 8)
	if err != nil {
		return out, err
	}
	rowBytes := n * 8
	ps := int64(p.Baseline.Cfg.Geometry.PageSize)

	// Rows per band: smallest count whose per-building-block contribution is
	// page-aligned. One matrix row contributes bbLast*8 bytes to each block.
	sp, err := p.Software.STL.CreateSpace(8, []int64{n, n})
	if err != nil {
		return out, err
	}
	perRow := sp.BlockDims()[1] * 8
	band := ps / perRow
	if band < 1 {
		band = 1
	}
	bandBytes := band * rowBytes

	var runs []system.Run
	for off := int64(0); off+bandBytes <= n*n*8; off += bandBytes {
		runs = append(runs, system.Run{Off: off, Len: bandBytes})
	}
	st, err := p.Baseline.BaselineWrite(0, runs, nil)
	if err != nil {
		return out, err
	}
	out.BaselineRowMB = mbps(st.Bytes, st.Done)
	// The column-store baseline writes the same volume contiguously too.
	out.BaselineColMB = out.BaselineRowMB

	swView, err := stl.NewView(sp, []int64{n, n})
	if err != nil {
		return out, err
	}
	hp, err := p.Hardware.STL.CreateSpace(8, []int64{n, n})
	if err != nil {
		return out, err
	}
	hwView, err := stl.NewView(hp, []int64{n, n})
	if err != nil {
		return out, err
	}
	for _, cfg := range []struct {
		sys  *system.System
		view *stl.View
		dst  *float64
	}{
		{p.Software, swView, &out.SoftwareMB},
		{p.Hardware, hwView, &out.HardwareMB},
	} {
		cfg.sys.ResetTimelines()
		var total int64
		now := sim.Time(0)
		for i := int64(0); i*band < n; i++ {
			st, err := cfg.sys.NDSWrite(now, cfg.view, []int64{i, 0}, []int64{band, n}, nil)
			if err != nil {
				return out, err
			}
			total += st.Bytes
			now = st.Done // synchronous writes
		}
		*cfg.dst = mbps(total, now)
	}
	return out, nil
}
