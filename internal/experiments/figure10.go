package experiments

import (
	"fmt"

	"nds/internal/workloads"
)

// Figure 10: (a) end-to-end speedup of software NDS, the zero-overhead
// software oracle, and hardware NDS over the baseline SSD for the ten
// Table 1 workloads; (b) the reduction of compute-kernel idle time.
// The paper reports averages of 5.07x (software), ~the oracle matching
// software NDS, 5.73x (hardware), and idle-time cuts of 74% / 76%.

// Fig10Summary aggregates the per-workload results.
type Fig10Summary struct {
	Results []workloads.Result

	AvgSpeedupSW     float64
	AvgSpeedupHW     float64
	AvgSpeedupOracle float64
	AvgIdleRedSW     float64
	AvgIdleRedHW     float64
}

// Figure10 runs every Table 1 workload on the three configurations plus the
// oracle. Averages are arithmetic means, matching the paper's reporting.
func Figure10() (Fig10Summary, error) {
	var s Fig10Summary
	for _, spec := range workloads.Catalog() {
		r, err := workloads.Run(spec)
		if err != nil {
			return s, fmt.Errorf("experiments: %s: %w", spec.Name, err)
		}
		s.Results = append(s.Results, r)
		s.AvgSpeedupSW += r.SpeedupSoftware
		s.AvgSpeedupHW += r.SpeedupHardware
		s.AvgSpeedupOracle += r.SpeedupOracle
		s.AvgIdleRedSW += r.IdleReductionSW
		s.AvgIdleRedHW += r.IdleReductionHW
	}
	n := float64(len(s.Results))
	s.AvgSpeedupSW /= n
	s.AvgSpeedupHW /= n
	s.AvgSpeedupOracle /= n
	s.AvgIdleRedSW /= n
	s.AvgIdleRedHW /= n
	return s, nil
}
