package experiments

import (
	"fmt"

	"nds/internal/sim"
	"nds/internal/system"
)

// Section 7.3: the overhead of NDS. A worst-case request asks for a single
// page, with access patterns chosen to avoid any transformation, isolating
// the B-tree traversal cost. The paper measures +41 us (software NDS) and
// +17 us (hardware NDS) over the baseline, and an index footprint of at most
// 0.1% of the storage space when every page is in use.

// OverheadResult holds the §7.3 measurements.
type OverheadResult struct {
	BaselineLatency sim.Time
	SoftwareLatency sim.Time
	HardwareLatency sim.Time
	SoftwareDelta   sim.Time // SoftwareLatency - BaselineLatency
	HardwareDelta   sim.Time
	IndexBytes      int64
	DataBytes       int64
	IndexOverhead   float64 // IndexBytes / DataBytes
}

// Overhead measures single-page request latency on the three systems and
// the index footprint of a fully-populated space.
func Overhead(n int64) (OverheadResult, error) {
	var out OverheadResult
	p, err := NewPlatform(n * n * 8)
	if err != nil {
		return out, err
	}
	m, err := p.LoadMatrix(n)
	if err != nil {
		return out, err
	}
	ps := int64(p.Baseline.Cfg.Geometry.PageSize)

	// Baseline: one page-sized, page-aligned read.
	_, st, err := p.Baseline.BaselineRead(0, []system.Run{{Off: 0, Len: ps}}, false, 1)
	if err != nil {
		return out, err
	}
	out.BaselineLatency = st.Done

	// NDS: a partition that maps to exactly one page of one building block
	// (the first rowsPerPage rows of a block column), so no transformation
	// is needed and the delta is pure translation cost.
	sp := m.SoftView.Space()
	bb := sp.BlockDims()
	rowsPerPage := ps / (bb[1] * 8)
	if rowsPerPage < 1 {
		return out, fmt.Errorf("experiments: page smaller than one block row")
	}
	sub := []int64{rowsPerPage, bb[1]}
	for _, sys := range []*system.System{p.Software, p.Hardware} {
		sys.ResetTimelines()
		v := m.SoftView
		if sys.Kind == system.HardwareNDS {
			v = m.HardView
		}
		_, st, err := sys.NDSRead(0, v, []int64{0, 0}, sub)
		if err != nil {
			return out, err
		}
		if st.Pages != 1 {
			return out, fmt.Errorf("experiments: worst-case request touched %d pages, want 1", st.Pages)
		}
		if sys.Kind == system.SoftwareNDS {
			out.SoftwareLatency = st.Done
		} else {
			out.HardwareLatency = st.Done
		}
	}
	out.SoftwareDelta = out.SoftwareLatency - out.BaselineLatency
	out.HardwareDelta = out.HardwareLatency - out.BaselineLatency

	out.IndexBytes = sp.IndexFootprint()
	out.DataBytes = m.Bytes()
	out.IndexOverhead = float64(out.IndexBytes) / float64(out.DataBytes)
	return out, nil
}
