package experiments

import (
	"fmt"

	"nds/internal/sim"
	"nds/internal/stl"
	"nds/internal/system"
)

// Building-block cache rescan: the canonical workload the DRAM cache is for.
// An analytics pass scans an NxN matrix in row bands, then a second pass scans
// it in column bands — different traversal directions, but (the NDS insight)
// the same set of building blocks. With the cache sized to hold the working
// set, the second iteration of the scan pair runs from DRAM.

// CacheRescanResult holds the two-pass comparison.
type CacheRescanResult struct {
	ColdPass sim.Time // first row+column scan pair (fills the cache)
	WarmPass sim.Time // second pair (served from DRAM)
	Speedup  float64  // ColdPass / WarmPass
	Stats    stl.CacheStats
}

// CacheRescan scans an NxN 8-byte-element matrix (rows, then columns) twice on
// a SoftwareNDS system (host-DRAM cache) with a building-block cache of
// cacheBytes and the given prefetch depth, and reports cold-versus-warm pass
// times. Passing cacheBytes=0 measures the uncached device (Speedup ~ 1).
func CacheRescan(n, cacheBytes int64, depth int) (CacheRescanResult, error) {
	cfg := system.PrototypeConfig(n*n*8, true)
	cfg.STL.CacheBytes = cacheBytes
	cfg.STL.PrefetchDepth = depth
	sys, err := system.New(system.SoftwareNDS, cfg)
	if err != nil {
		return CacheRescanResult{}, err
	}
	sp, err := sys.STL.CreateSpace(8, []int64{n, n})
	if err != nil {
		return CacheRescanResult{}, err
	}
	v, err := stl.NewView(sp, []int64{n, n})
	if err != nil {
		return CacheRescanResult{}, err
	}
	band := sp.BlockDims()[0]
	now := sim.Time(0)
	for i := int64(0); i*band < n; i++ {
		done, _, err := sys.STL.WritePartition(now, v, []int64{i, 0}, []int64{band, n}, nil)
		if err != nil {
			return CacheRescanResult{}, fmt.Errorf("load: %w", err)
		}
		now = done
	}
	sys.ResetTimelines()

	// One pass: every row band, then every column band, each request issuing
	// at the previous one's completion (a single synchronous scan client).
	pass := func(at sim.Time) (sim.Time, error) {
		for i := int64(0); i*band < n; i++ {
			_, done, _, err := sys.STL.ReadPartition(at, v, []int64{i, 0}, []int64{band, n})
			if err != nil {
				return at, err
			}
			at = done
		}
		for j := int64(0); j*band < n; j++ {
			_, done, _, err := sys.STL.ReadPartition(at, v, []int64{0, j}, []int64{n, band})
			if err != nil {
				return at, err
			}
			at = done
		}
		return at, nil
	}

	coldEnd, err := pass(0)
	if err != nil {
		return CacheRescanResult{}, err
	}
	warmEnd, err := pass(coldEnd)
	if err != nil {
		return CacheRescanResult{}, err
	}
	r := CacheRescanResult{
		ColdPass: coldEnd,
		WarmPass: warmEnd - coldEnd,
		Stats:    sys.STL.CacheStats(),
	}
	if r.WarmPass > 0 {
		r.Speedup = r.ColdPass.Seconds() / r.WarmPass.Seconds()
	}
	return r, nil
}
