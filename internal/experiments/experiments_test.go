package experiments

import (
	"testing"

	"nds/internal/sim"
)

// The experiment tests assert the *shapes* the paper reports — orderings,
// rough factors, crossovers — at a scale that keeps test time bounded.
// EXPERIMENTS.md records the paper-scale numbers produced by cmd/ndsbench.

const testN = 4096 // microbenchmark matrix side (doubles)

func loadedPlatform(t *testing.T) (*Platform, *Matrix2D) {
	t.Helper()
	p, err := NewPlatform(testN * testN * 8)
	if err != nil {
		t.Fatal(err)
	}
	m, err := p.LoadMatrix(testN)
	if err != nil {
		t.Fatal(err)
	}
	return p, m
}

func TestFigure3Shape(t *testing.T) {
	rows, err := Figure3()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("expected 10 dims (32..16384), got %d", len(rows))
	}
	var tcuPeak, cudaPeak Fig3Row
	for _, r := range rows {
		if r.TensorCores > tcuPeak.TensorCores {
			tcuPeak = r
		}
		if r.CUDACores > cudaPeak.CUDACores {
			cudaPeak = r
		}
		// Tensor Cores dominate CUDA cores everywhere (Figure 3).
		if r.TensorCores <= r.CUDACores {
			t.Errorf("dim %d: TCU (%.0f) should exceed CUDA (%.0f)", r.Dim, r.TensorCores, r.CUDACores)
		}
		// Internal SSD bandwidth exceeds the external links once the device
		// is engaged (the 8:5 ratio of §7.2).
		if r.Dim >= 1024 && r.InternalSSD <= r.NVMeoF {
			t.Errorf("dim %d: internal (%.0f) should exceed NVMeoF (%.0f)", r.Dim, r.InternalSSD, r.NVMeoF)
		}
	}
	// Optimal working sets: 512 for Tensor Cores, 2048 for CUDA cores ([C2]).
	if tcuPeak.Dim != 512 {
		t.Errorf("TCU peak at %d, want 512", tcuPeak.Dim)
	}
	if cudaPeak.Dim != 2048 {
		t.Errorf("CUDA peak at %d, want 2048", cudaPeak.Dim)
	}
	// NVMeoF saturates: the largest two dims within 2%.
	last, prev := rows[len(rows)-1].NVMeoF, rows[len(rows)-2].NVMeoF
	if last < prev*0.98 {
		t.Errorf("NVMeoF curve not saturated at the top end: %.0f vs %.0f", last, prev)
	}
}

func TestFigure2AShape(t *testing.T) {
	r := Figure2A()
	// Paper: the sequential baseline needs 2.11x the sub-block time.
	if r.Ratio < 1.7 || r.Ratio > 2.8 {
		t.Fatalf("Figure 2(a) ratio = %.2f, want ~2.11", r.Ratio)
	}
	if r.CPUTime <= 0 || r.KernelTime <= 0 {
		t.Fatal("stage breakdown missing")
	}
}

func TestFigure2BShape(t *testing.T) {
	r, err := Figure2B()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: the baseline spends 1.92x more time fetching; our calibrated
	// model lands around 1.6x (see EXPERIMENTS.md).
	if r.FetchRatio < 1.3 || r.FetchRatio > 2.4 {
		t.Fatalf("Figure 2(b) fetch ratio = %.2f, want ~1.9", r.FetchRatio)
	}
	if r.Ratio <= 1.2 {
		t.Fatalf("Figure 2(b) end-to-end ratio = %.2f, want > 1.2", r.Ratio)
	}
}

func TestFigure9AShape(t *testing.T) {
	p, m := loadedPlatform(t)
	rows, err := Figure9A(p, m)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range rows {
		// Row fetches: hardware NDS within 5% of the baseline; software NDS
		// slower than both but within ~25% (§7.1: 4.3 vs 3.8 GB/s).
		if pt.HardwareMB < 0.95*pt.BaselineMB {
			t.Errorf("%s: hardware NDS (%.0f) should track the baseline (%.0f)",
				pt.Label, pt.HardwareMB, pt.BaselineMB)
		}
		if pt.SoftwareMB >= pt.BaselineMB {
			t.Errorf("%s: software NDS (%.0f) should trail the baseline (%.0f)",
				pt.Label, pt.SoftwareMB, pt.BaselineMB)
		}
		if pt.SoftwareMB < 0.7*pt.BaselineMB {
			t.Errorf("%s: software NDS (%.0f) fell too far below the baseline (%.0f)",
				pt.Label, pt.SoftwareMB, pt.BaselineMB)
		}
	}
}

func TestFigure9BShape(t *testing.T) {
	p, m := loadedPlatform(t)
	rows, err := Figure9B(p, m)
	if err != nil {
		t.Fatal(err)
	}
	for i, pt := range rows {
		// Column fetches: the row-store baseline collapses; both NDS
		// variants stay within reach of the column-store baseline.
		if pt.BaselineMB >= pt.SoftwareMB/2 {
			t.Errorf("%s: row-store baseline (%.0f) should collapse vs software NDS (%.0f)",
				pt.Label, pt.BaselineMB, pt.SoftwareMB)
		}
		if pt.HardwareMB < 0.8*pt.BaselineAlt {
			t.Errorf("%s: hardware NDS (%.0f) should approach the column-store baseline (%.0f)",
				pt.Label, pt.HardwareMB, pt.BaselineAlt)
		}
		// The row-store baseline improves with wider columns.
		if i > 0 && pt.BaselineMB <= rows[i-1].BaselineMB {
			t.Errorf("row-store baseline should grow with width: %.0f then %.0f",
				rows[i-1].BaselineMB, pt.BaselineMB)
		}
	}
}

func TestFigure9CShape(t *testing.T) {
	p, m := loadedPlatform(t)
	rows, err := Figure9C(p, m)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range rows {
		if pt.SoftwareMB < 3*pt.BaselineMB || pt.HardwareMB < 3*pt.BaselineMB {
			t.Errorf("%s: NDS (sw %.0f / hw %.0f) should significantly outperform the baseline (%.0f)",
				pt.Label, pt.SoftwareMB, pt.HardwareMB, pt.BaselineMB)
		}
	}
}

func TestFigure9DShape(t *testing.T) {
	w, err := Figure9D(testN)
	if err != nil {
		t.Fatal(err)
	}
	// Writes: baseline fastest, hardware NDS in between, software NDS last
	// (§7.1: -17% and -30% at paper scale).
	if !(w.BaselineRowMB > w.HardwareMB && w.HardwareMB > w.SoftwareMB) {
		t.Fatalf("write ordering wrong: base=%.0f hw=%.0f sw=%.0f",
			w.BaselineRowMB, w.HardwareMB, w.SoftwareMB)
	}
	if w.SoftwareMB < 0.5*w.BaselineRowMB {
		t.Fatalf("software NDS write (%.0f) fell below half the baseline (%.0f)",
			w.SoftwareMB, w.BaselineRowMB)
	}
}

func TestOverheadAnchors(t *testing.T) {
	o, err := Overhead(testN)
	if err != nil {
		t.Fatal(err)
	}
	// §7.3: +41 us software, +17 us hardware, both of the same order as a
	// flash page access; index <= 0.1% of the data.
	if o.SoftwareDelta < 30*sim.Microsecond || o.SoftwareDelta > 55*sim.Microsecond {
		t.Errorf("software delta = %v, want ~41us", o.SoftwareDelta)
	}
	if o.HardwareDelta < 12*sim.Microsecond || o.HardwareDelta > 25*sim.Microsecond {
		t.Errorf("hardware delta = %v, want ~17us", o.HardwareDelta)
	}
	if o.IndexOverhead > 0.0011 {
		t.Errorf("index overhead = %.4f%%, want <= ~0.1%%", o.IndexOverhead*100)
	}
	if o.HardwareDelta >= o.SoftwareDelta {
		t.Error("hardware translation should cost less than software translation")
	}
}

func TestFigure10Aggregates(t *testing.T) {
	if testing.Short() {
		t.Skip("full Figure 10 sweep in short mode")
	}
	s, err := Figure10()
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Results) != 10 {
		t.Fatalf("got %d workloads, want 10", len(s.Results))
	}
	// Paper: 5.07x software / 5.73x hardware average speedups.
	if s.AvgSpeedupSW < 4.0 || s.AvgSpeedupSW > 6.5 {
		t.Errorf("software average speedup = %.2f, want ~5.07", s.AvgSpeedupSW)
	}
	if s.AvgSpeedupHW < 4.7 || s.AvgSpeedupHW > 7.3 {
		t.Errorf("hardware average speedup = %.2f, want ~5.73", s.AvgSpeedupHW)
	}
	if s.AvgSpeedupHW <= s.AvgSpeedupSW {
		t.Error("hardware NDS should beat software NDS on average")
	}
	// The zero-overhead oracle performs about as well as software NDS
	// (§7.2: "the performance gain is just about the same").
	if s.AvgSpeedupOracle < s.AvgSpeedupSW {
		t.Errorf("oracle average (%.2f) should be at least software NDS (%.2f)",
			s.AvgSpeedupOracle, s.AvgSpeedupSW)
	}
	for _, r := range s.Results {
		if r.Spec.Name == "BFS" && (r.SpeedupSoftware < 0.6 || r.SpeedupSoftware > 1.4) {
			t.Errorf("BFS software speedup = %.2f, paper reports almost no benefit", r.SpeedupSoftware)
		}
	}
}
