package sim

// Pipeline computes the schedule of a K-stage software pipeline over a stream
// of iterations, the way the paper's applications overlap I/O, marshalling,
// host-to-device copy, and the compute kernel. Stage s of iteration i starts
// when both stage s-1 of iteration i (its input) and stage s of iteration i-1
// (the stage unit itself) have finished.
//
// It also accounts, per stage, the idle time: the gap during which the stage
// unit is free but its input has not arrived yet. The paper's Figure 10(b)
// reports exactly this quantity for the compute-kernel stage.
// The one-time pipeline-fill delay of each stage is not charged as idle time:
// only steady-state starvation (the stage unit free, input late) accumulates.
type Pipeline struct {
	stageDone []Time // completion time of the stage's latest iteration
	idle      []Time // accumulated input-starvation time per stage
	fed       []int  // iterations seen per stage
	iters     int
	end       Time
}

// NewPipeline creates a pipeline with the given number of stages.
func NewPipeline(stages int) *Pipeline {
	if stages < 1 {
		panic("sim: pipeline needs at least one stage")
	}
	return &Pipeline{
		stageDone: make([]Time, stages),
		idle:      make([]Time, stages),
		fed:       make([]int, stages),
	}
}

// Stages reports the stage count.
func (p *Pipeline) Stages() int { return len(p.stageDone) }

// Iterations reports how many iterations have been fed.
func (p *Pipeline) Iterations() int { return p.iters }

// Feed schedules one iteration whose per-stage service times are durs
// (len(durs) must equal Stages). It returns the completion time of the
// iteration's final stage.
func (p *Pipeline) Feed(durs ...Time) Time {
	if len(durs) != len(p.stageDone) {
		panic("sim: Feed arity does not match pipeline stages")
	}
	inputReady := Time(0) // stage 0 input is always ready
	for s, d := range durs {
		start := Max(inputReady, p.stageDone[s])
		if s > 0 && p.fed[s] > 0 && start > p.stageDone[s] {
			// The stage unit was free at stageDone[s] but waited for input.
			p.idle[s] += start - p.stageDone[s]
		}
		p.fed[s]++
		p.stageDone[s] = start + d
		inputReady = p.stageDone[s]
	}
	p.iters++
	p.end = Max(p.end, inputReady)
	return inputReady
}

// End reports the completion time of the last finished iteration.
func (p *Pipeline) End() Time { return p.end }

// Idle reports the accumulated input-starvation time of stage s.
func (p *Pipeline) Idle(s int) Time { return p.idle[s] }
