package sim

import (
	"container/heap"
	"math"
	"sync"
	"time"
)

// Weighted fair admission over simulated-device dispatch slots.
//
// A FairScheduler sits in front of the resource timelines: a request asks to
// be admitted before it books any channel/bank reservations, occupies one of
// a fixed number of dispatch slots while its device operations run, and
// releases the slot when the request completes. When every slot is busy,
// waiting requests are ordered by start-time fair queueing (SFQ): each flow
// carries a virtual finish tag advanced by bytes/weight per request, and the
// waiter with the smallest tag is admitted next — so a flow that floods the
// device accumulates far-future tags and queues behind lighter flows instead
// of monopolizing the timelines. A per-flow token bucket (RateBytesPerSec /
// BurstBytes) is charged before the slot wait, so a rate-capped flow blocks
// in wall-clock time without consuming a slot.
//
// The scheduler operates entirely in the wall-clock domain: it delays when a
// request's goroutine is allowed to start booking simulated timelines, and
// never touches a Resource or a simulated timestamp. A configuration that
// never constructs a FairScheduler therefore has bit-identical simulated
// completion times to one built before the type existed.

// FlowID identifies one scheduling flow (a tenant) in a FairScheduler.
type FlowID uint64

// FlowConfig is one flow's scheduling parameters.
type FlowConfig struct {
	// Weight is the flow's relative share of dispatch slots under
	// contention. Values <= 0 select weight 1.
	Weight float64
	// RateBytesPerSec caps the flow's admitted payload bandwidth via a token
	// bucket charged before admission; <= 0 leaves the flow uncapped.
	RateBytesPerSec float64
	// BurstBytes is the token bucket depth. <= 0 selects the larger of 1 MiB
	// and 100 ms of RateBytesPerSec. Requests larger than the burst are
	// charged the full bucket (they admit once the bucket refills completely).
	BurstBytes int64
}

func (c FlowConfig) weight() float64 {
	if c.Weight > 0 {
		return c.Weight
	}
	return 1
}

func (c FlowConfig) burst() float64 {
	if c.BurstBytes > 0 {
		return float64(c.BurstBytes)
	}
	b := c.RateBytesPerSec / 10
	if b < 1<<20 {
		b = 1 << 20
	}
	return b
}

type qosFlow struct {
	cfg     FlowConfig
	vfinish float64   // virtual finish tag of the flow's latest request
	tokens  float64   // token bucket level, bytes
	last    time.Time // last refill instant; zero until first rate-capped use
}

type qosWaiter struct {
	start, fin float64
	seq        uint64
	ready      chan struct{}
}

type waiterHeap []*qosWaiter

func (h waiterHeap) Len() int { return len(h) }
func (h waiterHeap) Less(i, j int) bool {
	if h[i].fin != h[j].fin {
		return h[i].fin < h[j].fin
	}
	return h[i].seq < h[j].seq // FIFO among equal tags
}
func (h waiterHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *waiterHeap) Push(x any)   { *h = append(*h, x.(*qosWaiter)) }
func (h *waiterHeap) Pop() any {
	old := *h
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return w
}

// FairScheduler is a weighted fair admission gate with per-flow token
// buckets. Safe for concurrent use.
type FairScheduler struct {
	mu       sync.Mutex
	slots    int
	inflight int
	vtime    float64
	def      FlowConfig
	flows    map[FlowID]*qosFlow
	waiting  waiterHeap
	seq      uint64

	// now/sleep are the wall clock, swappable by tests in this package for
	// deterministic token-bucket timing.
	now   func() time.Time
	sleep func(time.Duration)
}

// NewFairScheduler builds a scheduler with the given number of concurrent
// dispatch slots (minimum 1) and the default per-flow configuration applied
// to flows without an explicit SetFlow.
func NewFairScheduler(slots int, def FlowConfig) *FairScheduler {
	if slots < 1 {
		slots = 1
	}
	return &FairScheduler{
		slots: slots,
		def:   def,
		flows: make(map[FlowID]*qosFlow),
		now:   time.Now,
		sleep: time.Sleep,
	}
}

// flowLocked returns the flow's state, creating it from the default config on
// first use. Callers hold q.mu.
func (q *FairScheduler) flowLocked(id FlowID) *qosFlow {
	f, ok := q.flows[id]
	if !ok {
		f = &qosFlow{cfg: q.def}
		q.flows[id] = f
	}
	return f
}

// SetFlow overrides one flow's configuration. The flow's virtual tag and
// bucket level carry over, so a live flow can be re-weighted or re-capped
// without losing its place.
func (q *FairScheduler) SetFlow(id FlowID, cfg FlowConfig) {
	q.mu.Lock()
	q.flowLocked(id).cfg = cfg
	q.mu.Unlock()
}

// Flow reports the configuration a flow is scheduled under (the default for
// flows never overridden).
func (q *FairScheduler) Flow(id FlowID) FlowConfig {
	q.mu.Lock()
	defer q.mu.Unlock()
	if f, ok := q.flows[id]; ok {
		return f.cfg
	}
	return q.def
}

// Forget drops a flow's state (tag and bucket). Used when a tenant is
// deleted so the flow table stays proportional to live tenants.
func (q *FairScheduler) Forget(id FlowID) {
	q.mu.Lock()
	delete(q.flows, id)
	q.mu.Unlock()
}

// Admit blocks until the flow may dispatch a request of the given payload
// size: first the token bucket (throttle), then a dispatch slot in weighted
// fair order (queueWait). Every successful Admit must be paired with exactly
// one Release when the request's device operations complete.
func (q *FairScheduler) Admit(id FlowID, bytes int64) (queueWait, throttle time.Duration) {
	if bytes < 1 {
		bytes = 1
	}
	throttle = q.takeTokens(id, bytes)

	q.mu.Lock()
	f := q.flowLocked(id)
	start := math.Max(q.vtime, f.vfinish)
	fin := start + float64(bytes)/f.cfg.weight()
	f.vfinish = fin
	if q.inflight < q.slots && len(q.waiting) == 0 {
		q.inflight++
		q.vtime = start
		q.mu.Unlock()
		return 0, throttle
	}
	w := &qosWaiter{start: start, fin: fin, seq: q.seq, ready: make(chan struct{})}
	q.seq++
	heap.Push(&q.waiting, w)
	q.mu.Unlock()

	t0 := q.now()
	<-w.ready
	return q.now().Sub(t0), throttle
}

// Release frees the caller's dispatch slot, handing it to the waiting
// request with the smallest virtual finish tag if any is queued.
func (q *FairScheduler) Release() {
	q.mu.Lock()
	if len(q.waiting) > 0 {
		w := heap.Pop(&q.waiting).(*qosWaiter)
		if w.start > q.vtime {
			q.vtime = w.start
		}
		close(w.ready) // the slot transfers; inflight is unchanged
		q.mu.Unlock()
		return
	}
	q.inflight--
	q.mu.Unlock()
}

// takeTokens charges the flow's token bucket for the request, sleeping until
// enough tokens accumulate. Buckets start full, so a burst up to BurstBytes
// admits immediately; sustained load is paced at RateBytesPerSec.
func (q *FairScheduler) takeTokens(id FlowID, bytes int64) time.Duration {
	var waited time.Duration
	q.mu.Lock()
	for {
		f := q.flowLocked(id)
		rate := f.cfg.RateBytesPerSec
		if rate <= 0 {
			q.mu.Unlock()
			return waited
		}
		burst := f.cfg.burst()
		now := q.now()
		if f.last.IsZero() {
			f.tokens = burst
		} else {
			f.tokens = math.Min(burst, f.tokens+now.Sub(f.last).Seconds()*rate)
		}
		f.last = now
		cost := math.Min(float64(bytes), burst)
		if f.tokens >= cost {
			f.tokens -= cost
			q.mu.Unlock()
			return waited
		}
		need := time.Duration((cost - f.tokens) / rate * float64(time.Second))
		if need < time.Microsecond {
			need = time.Microsecond
		}
		q.mu.Unlock()
		q.sleep(need)
		waited += need
		q.mu.Lock()
	}
}
