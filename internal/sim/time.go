// Package sim provides the simulated-time substrate shared by every model in
// this repository: a nanosecond clock, serially-occupied resources with busy
// accounting, pools of identical resources, bandwidth helpers, and a K-stage
// pipeline calculator used to model overlapped I/O + compute.
//
// The simulator is a resource-timeline model rather than a full event queue:
// request flows issue operations in program order, and each operation reserves
// an interval on the resources it touches. This is sufficient (and exact) for
// the closed-loop, pipelined request streams the NDS paper evaluates, while
// keeping every model deterministic and fast enough to run at paper scale.
package sim

import "fmt"

// Time is a point in simulated time, in nanoseconds since simulation start.
// It doubles as a duration; the zero value is the simulation epoch.
type Time int64

// Common durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros converts t to floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", t.Micros())
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// FromSeconds builds a Time from floating-point seconds.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// TransferTime is the duration of moving n bytes at bytesPerSec.
// A non-positive rate yields zero duration, letting callers disable a link.
func TransferTime(n int64, bytesPerSec float64) Time {
	if bytesPerSec <= 0 || n <= 0 {
		return 0
	}
	return Time(float64(n) / bytesPerSec * float64(Second))
}

// Bandwidth reports achieved bytes/second for n bytes over elapsed d.
func Bandwidth(n int64, d Time) float64 {
	if d <= 0 {
		return 0
	}
	return float64(n) / d.Seconds()
}

// Max returns the later of two times.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Min returns the earlier of two times.
func Min(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}
