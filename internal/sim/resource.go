package sim

import (
	"sort"
	"sync"
)

// Resource models a unit that can serve one operation at a time: a flash
// channel, a bank, a DMA engine, a controller core, an interconnect link.
//
// A Resource is safe for concurrent use: multiple request streams reserve
// intervals on the same timeline, and each Acquire atomically claims the
// earliest idle interval at or after the operation's arrival time. The
// timeline keeps its recent busy intervals (not just a single horizon), so a
// stream whose command carries an early issue time backfills idle gaps even
// when another stream has already reserved later work — simulated-time
// scheduling is therefore independent of the wall-clock order in which
// concurrent goroutines happen to call Acquire. This is the per-unit
// in-flight tracking that lets concurrent host commands overlap on disjoint
// channels/banks, queue where they collide, and complete out of order.
type Resource struct {
	Name string
	mu   sync.Mutex
	// ivals are the busy intervals still eligible for backfill, sorted,
	// disjoint, and coalesced; everything before floor is considered busy.
	ivals []interval
	floor Time
	busy  Time
	ops   int64
}

type interval struct{ start, end Time }

// maxIntervals bounds the backfill window. When a timeline fragments past
// this, the oldest intervals (and their gaps) collapse into the floor —
// degrading gracefully toward the pure-horizon model rather than growing
// without bound.
const maxIntervals = 256

// NewResource returns an idle resource with the given diagnostic name.
func NewResource(name string) *Resource { return &Resource{Name: name} }

// Acquire reserves the resource for duration d for an operation arriving at
// time at. It returns the operation's start and completion times: the
// earliest interval of length d that is idle and begins at or after at.
// Operations contending for the same instant serialize; operations arriving
// for an idle gap start immediately, even if later work is already queued.
func (r *Resource) Acquire(at, d Time) (start, end Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if d <= 0 {
		// Zero-length operations synchronize with the busy horizon but
		// reserve nothing.
		start = Max(at, r.horizonLocked())
		return start, start
	}
	// Append fast path: an operation arriving at or after the horizon can
	// only extend the timeline, so skip the gap search and the insertion
	// shuffle entirely. This is the common case for streaming workloads and
	// keeps Acquire O(1) off the backfill path.
	if n := len(r.ivals); n == 0 || at >= r.ivals[n-1].end {
		start = Max(at, r.horizonLocked())
		end = start + d
		if n > 0 && r.ivals[n-1].end == start {
			r.ivals[n-1].end = end
		} else {
			r.ivals = append(r.ivals, interval{start, end})
		}
		r.busy += d
		r.ops++
		return start, end
	}
	// A gap before interval i can host the operation only if
	// ivals[i].start >= at+d (the candidate start is always >= at), so all
	// earlier intervals are irrelevant except for the predecessor's end.
	// Binary search to the first viable gap instead of scanning from zero.
	lo := sort.Search(len(r.ivals), func(i int) bool { return r.ivals[i].start >= at+d })
	prevEnd := r.floor
	if lo > 0 {
		prevEnd = r.ivals[lo-1].end
	}
	pos := len(r.ivals)
	for i := lo; i < len(r.ivals); i++ {
		iv := r.ivals[i]
		s := Max(at, prevEnd)
		if s+d <= iv.start {
			start, pos = s, i
			break
		}
		prevEnd = iv.end
	}
	if pos == len(r.ivals) {
		start = Max(at, prevEnd)
	}
	end = start + d
	r.insertLocked(pos, interval{start, end})
	r.busy += d
	r.ops++
	return start, end
}

// insertLocked places iv at index pos, coalescing with touching neighbours
// and pruning the oldest intervals past the window cap.
func (r *Resource) insertLocked(pos int, iv interval) {
	if pos > 0 && r.ivals[pos-1].end == iv.start {
		r.ivals[pos-1].end = iv.end
		if pos < len(r.ivals) && r.ivals[pos].start == iv.end {
			r.ivals[pos-1].end = r.ivals[pos].end
			r.ivals = append(r.ivals[:pos], r.ivals[pos+1:]...)
		}
		return
	}
	if pos < len(r.ivals) && r.ivals[pos].start == iv.end {
		r.ivals[pos].start = iv.start
		return
	}
	r.ivals = append(r.ivals, interval{})
	copy(r.ivals[pos+1:], r.ivals[pos:])
	r.ivals[pos] = iv
	if len(r.ivals) > maxIntervals {
		drop := len(r.ivals) - maxIntervals
		r.floor = r.ivals[drop-1].end
		r.ivals = append(r.ivals[:0], r.ivals[drop:]...)
	}
}

func (r *Resource) horizonLocked() Time {
	if n := len(r.ivals); n > 0 {
		return r.ivals[n-1].end
	}
	return r.floor
}

// FreeAt reports when the resource's timeline drains: the end of its last
// reserved interval.
func (r *Resource) FreeAt() Time {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.horizonLocked()
}

// BusyTime reports accumulated service time.
func (r *Resource) BusyTime() Time {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.busy
}

// Ops reports the number of operations served.
func (r *Resource) Ops() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ops
}

// Utilization reports busy time as a fraction of horizon.
func (r *Resource) Utilization(horizon Time) float64 {
	if horizon <= 0 {
		return 0
	}
	return r.BusyTime().Seconds() / horizon.Seconds()
}

// Reset returns the resource to the idle state at the epoch.
func (r *Resource) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ivals, r.floor, r.busy, r.ops = nil, 0, 0, 0
}

// Pool is a set of identical resources; Acquire picks the earliest-free
// member, modelling k-way parallel units behind one dispatcher. The
// dispatcher itself is serialized (a pool-level lock) so that concurrent
// acquisitions see a consistent earliest-free choice.
type Pool struct {
	mu      sync.Mutex
	Members []*Resource
}

// NewPool creates a pool of n resources named name#i.
func NewPool(name string, n int) *Pool {
	p := &Pool{Members: make([]*Resource, n)}
	for i := range p.Members {
		p.Members[i] = NewResource(name)
	}
	return p
}

// Acquire reserves duration d on the earliest-free member for an operation
// arriving at time at, returning start, end, and the chosen member index.
func (p *Pool) Acquire(at, d Time) (start, end Time, idx int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	idx = 0
	for i, m := range p.Members {
		if m.FreeAt() < p.Members[idx].FreeAt() {
			idx = i
		}
	}
	start, end = p.Members[idx].Acquire(at, d)
	return start, end, idx
}

// FreeAt reports when the earliest member becomes idle.
func (p *Pool) FreeAt() Time {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.Members) == 0 {
		return 0
	}
	t := p.Members[0].FreeAt()
	for _, m := range p.Members[1:] {
		t = Min(t, m.FreeAt())
	}
	return t
}

// Reset resets every member.
func (p *Pool) Reset() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, m := range p.Members {
		m.Reset()
	}
}
