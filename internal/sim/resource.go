package sim

// Resource models a unit that can serve one operation at a time: a flash
// channel, a bank, a DMA engine, a controller core, an interconnect link.
// Operations arriving while the resource is busy queue behind it (FIFO in
// arrival order, which matches the in-order issue of our request flows).
type Resource struct {
	Name   string
	freeAt Time
	busy   Time
	ops    int64
}

// NewResource returns an idle resource with the given diagnostic name.
func NewResource(name string) *Resource { return &Resource{Name: name} }

// Acquire reserves the resource for duration d for an operation arriving at
// time at. It returns the operation's start and completion times.
func (r *Resource) Acquire(at, d Time) (start, end Time) {
	start = Max(at, r.freeAt)
	end = start + d
	r.freeAt = end
	r.busy += d
	r.ops++
	return start, end
}

// FreeAt reports when the resource next becomes idle.
func (r *Resource) FreeAt() Time { return r.freeAt }

// BusyTime reports accumulated service time.
func (r *Resource) BusyTime() Time { return r.busy }

// Ops reports the number of operations served.
func (r *Resource) Ops() int64 { return r.ops }

// Utilization reports busy time as a fraction of horizon.
func (r *Resource) Utilization(horizon Time) float64 {
	if horizon <= 0 {
		return 0
	}
	return r.busy.Seconds() / horizon.Seconds()
}

// Reset returns the resource to the idle state at the epoch.
func (r *Resource) Reset() { r.freeAt, r.busy, r.ops = 0, 0, 0 }

// Pool is a set of identical resources; Acquire picks the earliest-free
// member, modelling k-way parallel units behind one dispatcher.
type Pool struct {
	Members []*Resource
}

// NewPool creates a pool of n resources named name#i.
func NewPool(name string, n int) *Pool {
	p := &Pool{Members: make([]*Resource, n)}
	for i := range p.Members {
		p.Members[i] = NewResource(name)
	}
	return p
}

// Acquire reserves duration d on the earliest-free member for an operation
// arriving at time at, returning start, end, and the chosen member index.
func (p *Pool) Acquire(at, d Time) (start, end Time, idx int) {
	idx = 0
	for i, m := range p.Members {
		if m.freeAt < p.Members[idx].freeAt {
			idx = i
		}
		_ = m
	}
	start, end = p.Members[idx].Acquire(at, d)
	return start, end, idx
}

// FreeAt reports when the earliest member becomes idle.
func (p *Pool) FreeAt() Time {
	if len(p.Members) == 0 {
		return 0
	}
	t := p.Members[0].freeAt
	for _, m := range p.Members[1:] {
		t = Min(t, m.freeAt)
	}
	return t
}

// Reset resets every member.
func (p *Pool) Reset() {
	for _, m := range p.Members {
		m.Reset()
	}
}
