package sim

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Resource models a unit that can serve one operation at a time: a flash
// channel, a bank, a DMA engine, a controller core, an interconnect link.
//
// A Resource is safe for concurrent use: multiple request streams reserve
// intervals on the same timeline, and each Acquire atomically claims the
// earliest idle interval at or after the operation's arrival time. The
// timeline keeps its recent busy intervals (not just a single horizon), so a
// stream whose command carries an early issue time backfills idle gaps even
// when another stream has already reserved later work — simulated-time
// scheduling is therefore independent of the wall-clock order in which
// concurrent goroutines happen to call Acquire. This is the per-unit
// in-flight tracking that lets concurrent host commands overlap on disjoint
// channels/banks, queue where they collide, and complete out of order.
//
// Sharded-clock model: each resource's timeline is its own shard, guarded by
// its own mutex, and every cross-resource observation (FreeAt, BusyTime, Ops,
// Pool dispatch, utilization reports) reads atomically published snapshots
// instead of taking the timeline mutex. Independent channel/bank/die
// timelines therefore advance with no shared lock between them; timelines
// reconcile only at genuine joins, where one operation's completion on one
// resource becomes the arrival time of its next operation on another.
type Resource struct {
	Name string
	mu   sync.Mutex
	// ivals are the busy intervals still eligible for backfill, sorted,
	// disjoint, and coalesced; everything before floor is considered busy.
	ivals []interval
	floor Time

	// horizon mirrors horizonLocked() — the end of the last reserved
	// interval — republished at the end of every mutation while mu is held.
	// Readers that only need "when does this timeline drain" (Pool dispatch,
	// BusyDies, NextIdle) load it without touching mu, so observing one
	// resource never stalls streams advancing another.
	horizon atomic.Int64
	busy    atomic.Int64 // accumulated service time
	ops     atomic.Int64 // operations served
}

type interval struct{ start, end Time }

// maxIntervals bounds the backfill window. When a timeline fragments past
// this, the oldest intervals (and their gaps) collapse into the floor —
// degrading gracefully toward the pure-horizon model rather than growing
// without bound.
const maxIntervals = 256

// NewResource returns an idle resource with the given diagnostic name.
func NewResource(name string) *Resource { return &Resource{Name: name} }

// Acquire reserves the resource for duration d for an operation arriving at
// time at. It returns the operation's start and completion times: the
// earliest interval of length d that is idle and begins at or after at.
// Operations contending for the same instant serialize; operations arriving
// for an idle gap start immediately, even if later work is already queued.
func (r *Resource) Acquire(at, d Time) (start, end Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if d <= 0 {
		// Zero-length operations synchronize with the busy horizon but
		// reserve nothing.
		start = Max(at, r.horizonLocked())
		return start, start
	}
	// Append fast path: an operation arriving at or after the horizon can
	// only extend the timeline, so skip the gap search and the insertion
	// shuffle entirely. This is the common case for streaming workloads and
	// keeps Acquire O(1) off the backfill path.
	if n := len(r.ivals); n == 0 || at >= r.ivals[n-1].end {
		start = Max(at, r.horizonLocked())
		end = start + d
		if n > 0 && r.ivals[n-1].end == start {
			r.ivals[n-1].end = end
		} else {
			r.ivals = append(r.ivals, interval{start, end})
		}
		r.horizon.Store(int64(end))
		r.busy.Add(int64(d))
		r.ops.Add(1)
		return start, end
	}
	// A gap before interval i can host the operation only if
	// ivals[i].start >= at+d (the candidate start is always >= at), so all
	// earlier intervals are irrelevant except for the predecessor's end.
	// Binary search to the first viable gap instead of scanning from zero.
	lo := sort.Search(len(r.ivals), func(i int) bool { return r.ivals[i].start >= at+d })
	prevEnd := r.floor
	if lo > 0 {
		prevEnd = r.ivals[lo-1].end
	}
	pos := len(r.ivals)
	for i := lo; i < len(r.ivals); i++ {
		iv := r.ivals[i]
		s := Max(at, prevEnd)
		if s+d <= iv.start {
			start, pos = s, i
			break
		}
		prevEnd = iv.end
	}
	if pos == len(r.ivals) {
		start = Max(at, prevEnd)
	}
	end = start + d
	r.insertLocked(pos, interval{start, end})
	r.horizon.Store(int64(r.horizonLocked()))
	r.busy.Add(int64(d))
	r.ops.Add(1)
	return start, end
}

// insertLocked places iv at index pos, coalescing with touching neighbours
// and pruning the oldest intervals past the window cap.
func (r *Resource) insertLocked(pos int, iv interval) {
	if pos > 0 && r.ivals[pos-1].end == iv.start {
		r.ivals[pos-1].end = iv.end
		if pos < len(r.ivals) && r.ivals[pos].start == iv.end {
			r.ivals[pos-1].end = r.ivals[pos].end
			r.ivals = append(r.ivals[:pos], r.ivals[pos+1:]...)
		}
		return
	}
	if pos < len(r.ivals) && r.ivals[pos].start == iv.end {
		r.ivals[pos].start = iv.start
		return
	}
	r.ivals = append(r.ivals, interval{})
	copy(r.ivals[pos+1:], r.ivals[pos:])
	r.ivals[pos] = iv
	if len(r.ivals) > maxIntervals {
		drop := len(r.ivals) - maxIntervals
		r.floor = r.ivals[drop-1].end
		r.ivals = append(r.ivals[:0], r.ivals[drop:]...)
	}
}

func (r *Resource) horizonLocked() Time {
	if n := len(r.ivals); n > 0 {
		return r.ivals[n-1].end
	}
	return r.floor
}

// FreeAt reports when the resource's timeline drains: the end of its last
// reserved interval. Lock-free: it loads the atomically published horizon, so
// observers and pool dispatchers never contend with streams mutating the
// timeline.
func (r *Resource) FreeAt() Time { return Time(r.horizon.Load()) }

// BusyTime reports accumulated service time.
func (r *Resource) BusyTime() Time { return Time(r.busy.Load()) }

// Ops reports the number of operations served.
func (r *Resource) Ops() int64 { return r.ops.Load() }

// Utilization reports busy time as a fraction of horizon.
func (r *Resource) Utilization(horizon Time) float64 {
	if horizon <= 0 {
		return 0
	}
	return r.BusyTime().Seconds() / horizon.Seconds()
}

// Reset returns the resource to the idle state at the epoch.
func (r *Resource) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ivals, r.floor = nil, 0
	r.horizon.Store(0)
	r.busy.Store(0)
	r.ops.Store(0)
}

// Pool is a set of identical resources; Acquire picks the earliest-free
// member, modelling k-way parallel units behind one dispatcher. The
// dispatcher itself is serialized (a pool-level lock) so that concurrent
// acquisitions see a consistent earliest-free choice; the scan reads each
// member's cached horizon, so dispatch costs one pool lock plus one lock on
// the chosen member, not two lock acquisitions per member.
type Pool struct {
	mu      sync.Mutex
	Members []*Resource
}

// NewPool creates a pool of n resources named name#i.
func NewPool(name string, n int) *Pool {
	p := &Pool{Members: make([]*Resource, n)}
	for i := range p.Members {
		p.Members[i] = NewResource(name)
	}
	return p
}

// Acquire reserves duration d on the earliest-free member for an operation
// arriving at time at, returning start, end, and the chosen member index.
func (p *Pool) Acquire(at, d Time) (start, end Time, idx int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	idx = 0
	best := p.Members[0].FreeAt()
	for i, m := range p.Members[1:] {
		if t := m.FreeAt(); t < best {
			best, idx = t, i+1
		}
	}
	start, end = p.Members[idx].Acquire(at, d)
	return start, end, idx
}

// FreeAt reports when the earliest member becomes idle. Lock-free: member
// horizons are atomically published, so the scan needs no lock at all.
func (p *Pool) FreeAt() Time {
	if len(p.Members) == 0 {
		return 0
	}
	t := p.Members[0].FreeAt()
	for _, m := range p.Members[1:] {
		t = Min(t, m.FreeAt())
	}
	return t
}

// Reset resets every member.
func (p *Pool) Reset() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, m := range p.Members {
		m.Reset()
	}
}
