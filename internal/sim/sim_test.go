package sim

import (
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500ns"},
		{2500, "2.500us"},
		{3 * Millisecond, "3.000ms"},
		{2 * Second, "2.000s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestTransferTime(t *testing.T) {
	// 1 GiB at 1 GiB/s is one second.
	gib := int64(1 << 30)
	if got := TransferTime(gib, float64(gib)); got != Second {
		t.Fatalf("TransferTime = %v, want 1s", got)
	}
	if TransferTime(0, 1e9) != 0 {
		t.Fatal("zero bytes should take zero time")
	}
	if TransferTime(gib, 0) != 0 {
		t.Fatal("disabled link (rate 0) should take zero time")
	}
}

func TestBandwidthRoundTrip(t *testing.T) {
	f := func(kb uint16, mbps uint16) bool {
		n := int64(kb)*1024 + 1
		rate := float64(mbps)*1e6 + 1e5
		d := TransferTime(n, rate)
		if d < 100 {
			// Below 100 ns the integer-ns truncation alone exceeds the 1%
			// tolerance (a 1-byte transfer on a fast link rounds to 0 ns),
			// so the round-trip property does not apply.
			return true
		}
		got := Bandwidth(n, d)
		// Within 1% of the requested rate (integer ns truncation).
		return got > 0.99*rate && got < 1.01*rate
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestResourceSerializes(t *testing.T) {
	r := NewResource("chan")
	s0, e0 := r.Acquire(0, 10)
	if s0 != 0 || e0 != 10 {
		t.Fatalf("first op got [%d,%d], want [0,10]", s0, e0)
	}
	// Arrives while busy: queues.
	s1, e1 := r.Acquire(5, 10)
	if s1 != 10 || e1 != 20 {
		t.Fatalf("queued op got [%d,%d], want [10,20]", s1, e1)
	}
	// Arrives after idle gap: starts immediately.
	s2, _ := r.Acquire(100, 1)
	if s2 != 100 {
		t.Fatalf("late op started %d, want 100", s2)
	}
	if r.BusyTime() != 21 {
		t.Fatalf("busy = %d, want 21", r.BusyTime())
	}
	if r.Ops() != 3 {
		t.Fatalf("ops = %d, want 3", r.Ops())
	}
	if got := r.Utilization(210); got < 0.099 || got > 0.101 {
		t.Fatalf("utilization = %v, want 0.1", got)
	}
}

func TestResourceBackfillsIdleGaps(t *testing.T) {
	r := NewResource("bank")
	r.Acquire(0, 10)  // [0,10)
	r.Acquire(20, 10) // [20,30)
	// An op arriving (in wall-clock order) after those reservations but with
	// an earlier issue time fills the idle gap instead of queuing at the end:
	// simulated scheduling must not depend on goroutine interleaving.
	if s, e := r.Acquire(0, 5); s != 10 || e != 15 {
		t.Fatalf("backfill got [%d,%d], want [10,15]", s, e)
	}
	// A too-large op skips gaps it cannot fit in.
	if s, e := r.Acquire(0, 6); s != 30 || e != 36 {
		t.Fatalf("oversized op got [%d,%d], want [30,36]", s, e)
	}
	// Exact-fit backfill coalesces the timeline back into one interval.
	if s, e := r.Acquire(0, 5); s != 15 || e != 20 {
		t.Fatalf("exact fit got [%d,%d], want [15,20]", s, e)
	}
	if r.FreeAt() != 36 {
		t.Fatalf("FreeAt = %d, want 36", r.FreeAt())
	}
	if r.BusyTime() != 36 {
		t.Fatalf("busy = %d, want 36", r.BusyTime())
	}
}

func TestResourceScheduleOrderIndependent(t *testing.T) {
	// Two streams whose demands fit in each other's idle gaps produce the
	// same per-op schedule regardless of the wall-clock order their Acquire
	// calls land in. (Ops contending for the same instant still serialize by
	// acquisition order — that part is inherently a queue.)
	type op struct{ at, d Time }
	streamA := []op{{0, 10}, {30, 10}, {60, 10}}
	streamB := []op{{10, 10}, {40, 10}, {70, 10}}
	run := func(order []op) map[op]Time {
		r := NewResource("x")
		starts := make(map[op]Time)
		for _, o := range order {
			s, _ := r.Acquire(o.at, o.d)
			starts[o] = s
		}
		return starts
	}
	ab := run(append(append([]op{}, streamA...), streamB...))
	ba := run(append(append([]op{}, streamB...), streamA...))
	for o, s := range ab {
		if ba[o] != s {
			t.Errorf("op{at=%d,d=%d}: start %d when A first, %d when B first", o.at, o.d, s, ba[o])
		}
	}
}

func TestResourcePrunesToFloor(t *testing.T) {
	r := NewResource("x")
	// Build far more disjoint intervals than the window keeps.
	for i := Time(0); i < 2*maxIntervals; i++ {
		r.Acquire(i*10, 5) // [10i, 10i+5): never coalesces
	}
	// Gaps older than the floor are no longer eligible: this op would fit at
	// [5,10) with an unbounded window, but must land at or after the floor.
	if s, _ := r.Acquire(0, 5); s < 5 {
		t.Fatalf("pruned gap reused: start %d", s)
	}
	if r.Ops() != 2*maxIntervals+1 {
		t.Fatalf("ops = %d", r.Ops())
	}
}

func TestPoolParallelism(t *testing.T) {
	p := NewPool("bank", 4)
	// 8 ops of 10ns arriving at t=0 on 4 units finish at 20.
	var last Time
	for i := 0; i < 8; i++ {
		_, end, _ := p.Acquire(0, 10)
		last = Max(last, end)
	}
	if last != 20 {
		t.Fatalf("8 ops on 4 units ended at %d, want 20", last)
	}
}

func TestPoolPicksEarliestFree(t *testing.T) {
	p := NewPool("ch", 2)
	p.Members[0].Acquire(0, 100)
	_, end, idx := p.Acquire(0, 10)
	if idx != 1 || end != 10 {
		t.Fatalf("got idx=%d end=%d, want idx=1 end=10", idx, end)
	}
}

func TestPipelineFullyOverlapped(t *testing.T) {
	// 3 stages of equal duration d over n iterations:
	// total = (stages + n - 1) * d.
	p := NewPipeline(3)
	const d, n = 10, 5
	for i := 0; i < n; i++ {
		p.Feed(d, d, d)
	}
	if want := Time((3 + n - 1) * d); p.End() != want {
		t.Fatalf("pipeline end = %d, want %d", p.End(), want)
	}
	// Steady state: no stage starves after fill.
	if p.Idle(1) != 0 || p.Idle(2) != 0 {
		t.Fatalf("balanced pipeline should not starve: idle=%d,%d", p.Idle(1), p.Idle(2))
	}
}

func TestPipelineBottleneckIdle(t *testing.T) {
	// Slow I/O stage feeding a fast kernel stage: the kernel idles
	// (ioDur-kernelDur) per steady-state iteration.
	p := NewPipeline(2)
	const io, kern, n = 100, 10, 4
	for i := 0; i < n; i++ {
		p.Feed(io, kern)
	}
	// Kernel stage i starts at io*(i+1) and was free since io*i+kern; the
	// first iteration's fill wait is not charged, so each of the n-1
	// steady-state iterations starves for io-kern.
	wantIdle := Time((n - 1) * (io - kern))
	if p.Idle(1) != wantIdle {
		t.Fatalf("kernel idle = %d, want %d", p.Idle(1), wantIdle)
	}
	if want := Time(n*io + kern); p.End() != want {
		t.Fatalf("end = %d, want %d", p.End(), want)
	}
}

func TestPipelinePropertyMonotone(t *testing.T) {
	// Property: total latency is at least the max over stages of the summed
	// stage durations, and at most the sum of all durations.
	f := func(durs [][3]uint8) bool {
		if len(durs) == 0 {
			return true
		}
		p := NewPipeline(3)
		var stageSum [3]Time
		var all Time
		for _, d := range durs {
			a, b, c := Time(d[0]), Time(d[1]), Time(d[2])
			p.Feed(a, b, c)
			stageSum[0] += a
			stageSum[1] += b
			stageSum[2] += c
			all += a + b + c
		}
		lower := Max(stageSum[0], Max(stageSum[1], stageSum[2]))
		return p.End() >= lower && p.End() <= all
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAccessors(t *testing.T) {
	if FromSeconds(1.5) != Second+500*Millisecond {
		t.Error("FromSeconds wrong")
	}
	if Min(3, 5) != 3 || Min(5, 3) != 3 || Max(3, 5) != 5 {
		t.Error("Min/Max wrong")
	}
	if Bandwidth(100, 0) != 0 {
		t.Error("Bandwidth with zero duration should be 0")
	}
	r := NewResource("x")
	r.Acquire(0, 10)
	if r.FreeAt() != 10 {
		t.Error("FreeAt wrong")
	}
	if r.Utilization(0) != 0 {
		t.Error("Utilization with zero horizon should be 0")
	}
	p := NewPool("y", 2)
	p.Acquire(0, 10)
	if p.FreeAt() != 0 {
		t.Error("pool FreeAt should report the idle member")
	}
	p.Reset()
	if p.Members[0].FreeAt() != 0 {
		t.Error("pool Reset should reset members")
	}
	if (&Pool{}).FreeAt() != 0 {
		t.Error("empty pool FreeAt should be 0")
	}
	pl := NewPipeline(3)
	if pl.Stages() != 3 || pl.Iterations() != 0 {
		t.Error("pipeline accessors wrong")
	}
	pl.Feed(1, 1, 1)
	if pl.Iterations() != 1 {
		t.Error("Iterations should count feeds")
	}
}

func TestNewPipelinePanicsOnZeroStages(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPipeline(0) should panic")
		}
	}()
	NewPipeline(0)
}

func TestFeedArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Feed with wrong arity should panic")
		}
	}()
	NewPipeline(2).Feed(1)
}
