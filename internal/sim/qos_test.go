package sim

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestFairSchedulerWeightedSplit saturates a single dispatch slot with two
// flows at weights 2:1 and checks the admission counts split 2:1 within 10%.
// Each flow keeps several workers queued at all times so the heap always has
// both flows to choose from — the steady-state regime WFQ guarantees cover.
func TestFairSchedulerWeightedSplit(t *testing.T) {
	q := NewFairScheduler(1, FlowConfig{})
	q.SetFlow(1, FlowConfig{Weight: 2})
	q.SetFlow(2, FlowConfig{Weight: 1})

	const (
		workersPerFlow = 4
		totalOps       = 6000
		opBytes        = 1 << 12
	)
	var counts [3]atomic.Int64
	var total atomic.Int64
	var wg sync.WaitGroup

	// Occupy the slot so every worker starts from the queued state; release
	// it once all workers are launched.
	q.Admit(99, 1)
	for flow := FlowID(1); flow <= 2; flow++ {
		for w := 0; w < workersPerFlow; w++ {
			wg.Add(1)
			go func(flow FlowID) {
				defer wg.Done()
				for {
					q.Admit(flow, opBytes)
					n := total.Add(1)
					counts[flow].Add(1)
					q.Release()
					if n >= totalOps {
						return
					}
				}
			}(flow)
		}
	}
	// Give the workers a moment to enqueue, then hand over the slot.
	time.Sleep(10 * time.Millisecond)
	q.Release()
	wg.Wait()

	a, b := counts[1].Load(), counts[2].Load()
	if a == 0 || b == 0 {
		t.Fatalf("flow starved: counts = %d, %d", a, b)
	}
	ratio := float64(a) / float64(b)
	if ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("weighted 2:1 split off by >10%%: got %d:%d (ratio %.3f)", a, b, ratio)
	}
}

// TestFairSchedulerTokenBucket drives the token bucket on a fake clock: the
// initial burst admits instantly, then sustained requests are paced at
// exactly RateBytesPerSec.
func TestFairSchedulerTokenBucket(t *testing.T) {
	q := NewFairScheduler(4, FlowConfig{})
	var clock time.Time = time.Unix(0, 0)
	var mu sync.Mutex
	q.now = func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return clock
	}
	q.sleep = func(d time.Duration) {
		mu.Lock()
		clock = clock.Add(d)
		mu.Unlock()
	}
	q.SetFlow(7, FlowConfig{RateBytesPerSec: 1 << 20, BurstBytes: 1 << 20})

	// Bucket starts full: the first 1 MiB admits with zero throttle.
	_, th := q.Admit(7, 1<<20)
	q.Release()
	if th != 0 {
		t.Fatalf("first burst throttled %v, want 0", th)
	}
	// The next 1 MiB must wait for a full refill: 1 MiB / 1 MiB/s = 1 s.
	_, th = q.Admit(7, 1<<20)
	q.Release()
	if th < 900*time.Millisecond || th > 1100*time.Millisecond {
		t.Fatalf("refill throttle = %v, want ~1s", th)
	}
	// A request larger than the burst is charged one full bucket, not its
	// byte count — it admits after a bucket refill instead of deadlocking.
	_, th = q.Admit(7, 10<<20)
	q.Release()
	if th < 900*time.Millisecond || th > 1100*time.Millisecond {
		t.Fatalf("oversized request throttle = %v, want ~1s (one bucket)", th)
	}
}

// TestFairSchedulerSlotHandoff checks Release hands the slot to the queued
// waiter with the smallest virtual finish tag, not FIFO arrival order.
func TestFairSchedulerSlotHandoff(t *testing.T) {
	q := NewFairScheduler(1, FlowConfig{})
	q.SetFlow(1, FlowConfig{Weight: 1})
	q.SetFlow(2, FlowConfig{Weight: 100})

	q.Admit(9, 1) // occupy the slot

	var order []FlowID
	var mu sync.Mutex
	var wg sync.WaitGroup
	admitted := make(chan struct{}, 2)

	enqueue := func(flow FlowID, bytes int64) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			q.Admit(flow, bytes)
			mu.Lock()
			order = append(order, flow)
			mu.Unlock()
			admitted <- struct{}{}
			q.Release()
		}()
	}
	// Heavy flow 1 enqueues first with a large request (large finish tag);
	// light flow 2 enqueues second with the same bytes but 100× the weight,
	// so its tag is far smaller and it must be admitted first.
	enqueue(1, 1<<20)
	time.Sleep(5 * time.Millisecond) // ensure flow 1 is queued first
	enqueue(2, 1<<20)
	time.Sleep(5 * time.Millisecond)

	q.Release() // hand the slot to the smallest tag
	<-admitted
	<-admitted
	wg.Wait()

	if len(order) != 2 || order[0] != 2 || order[1] != 1 {
		t.Fatalf("admission order = %v, want [2 1] (smallest finish tag first)", order)
	}
}
