package sim

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// fragmentPast fills r with more than maxIntervals disjoint busy intervals by
// reserving 1-unit operations at widely spaced arrival times, forcing the
// backfill window to prune and raise the floor. Returns the reserved
// intervals in acquisition order.
func fragmentPast(r *Resource, n int) []interval {
	ivs := make([]interval, 0, n)
	for i := 0; i < n; i++ {
		s, e := r.Acquire(Time(i*10), 1)
		ivs = append(ivs, interval{s, e})
	}
	return ivs
}

// TestResourceWindowCollapseMonotone: when maxIntervals pruning collapses the
// oldest intervals into the floor, Acquire results must stay monotone — a
// reservation never starts before its arrival time, never lands below the
// floor the collapse established, and never overlaps a prior reservation.
func TestResourceWindowCollapseMonotone(t *testing.T) {
	r := NewResource("bank")
	// 4x the window of fragmented 1-unit ops with 9-unit gaps: the timeline
	// prunes repeatedly, so the floor has risen well past zero.
	reserved := fragmentPast(r, 4*maxIntervals)

	// The floor is at least where the pruned prefix ended. An operation
	// arriving at time 0 must not start below it: the collapsed region is
	// considered busy even though its gaps were once backfillable.
	s, e := r.Acquire(0, 5)
	if s < 0 || e != s+5 {
		t.Fatalf("Acquire(0,5) = [%d,%d), not a 5-unit interval at a non-negative start", s, e)
	}
	reserved = append(reserved, interval{s, e})

	// A later arrival is still honored: start >= at always.
	s2, e2 := r.Acquire(e+1000, 7)
	if s2 < e+1000 {
		t.Fatalf("Acquire(at=%d) started at %d, before its arrival", e+1000, s2)
	}
	reserved = append(reserved, interval{s2, e2})

	// No two reservations the resource ever granted may overlap: collapse
	// must only *forbid* backfill into the pruned region, never double-book.
	sort.Slice(reserved, func(i, j int) bool { return reserved[i].start < reserved[j].start })
	for i := 1; i < len(reserved); i++ {
		if reserved[i].start < reserved[i-1].end {
			t.Fatalf("reservations overlap: [%d,%d) then [%d,%d)",
				reserved[i-1].start, reserved[i-1].end, reserved[i].start, reserved[i].end)
		}
	}

	// The published horizon matches the last interval end.
	if got, want := r.FreeAt(), reserved[len(reserved)-1].end; got != want {
		t.Fatalf("FreeAt() = %d, want %d", got, want)
	}
}

// TestResourceWindowCollapseDeterministic: the same Acquire sequence produces
// bit-identical results on two fresh resources, including across window
// collapses — pruning depends only on the timeline's state, never on wall
// clock or allocation behavior.
func TestResourceWindowCollapseDeterministic(t *testing.T) {
	run := func() []interval {
		r := NewResource("bank")
		rng := rand.New(rand.NewSource(42))
		out := make([]interval, 0, 3*maxIntervals)
		for i := 0; i < 3*maxIntervals; i++ {
			at := Time(rng.Int63n(int64(i)*8 + 1))
			d := Time(rng.Int63n(5) + 1)
			s, e := r.Acquire(at, d)
			out = append(out, interval{s, e})
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("acquire %d diverged between identical runs: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestResourceWindowCollapseConcurrent: concurrent streams hammering one
// resource past the backfill window must keep the single-server invariants —
// all granted intervals disjoint, starts at or after arrivals, counters
// exact, horizon equal to the latest end. Run under -race in CI this also
// checks the atomic horizon publication.
func TestResourceWindowCollapseConcurrent(t *testing.T) {
	const (
		streams = 8
		perStr  = 2 * maxIntervals
	)
	r := NewResource("bank")
	got := make([][]interval, streams)
	var wg sync.WaitGroup
	for c := 0; c < streams; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + c)))
			ivs := make([]interval, 0, perStr)
			var cursor Time
			for i := 0; i < perStr; i++ {
				// Mix of stream-ordered arrivals (cursor) and early arrivals
				// that try to backfill gaps, some below the risen floor.
				at := cursor
				if rng.Intn(3) == 0 {
					at = Time(rng.Int63n(int64(cursor) + 1))
				}
				d := Time(rng.Int63n(4) + 1)
				s, e := r.Acquire(at, d)
				if s < at {
					t.Errorf("stream %d op %d: start %d before arrival %d", c, i, s, at)
					return
				}
				cursor = e
				ivs = append(ivs, interval{s, e})
			}
			got[c] = ivs
		}(c)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	var all []interval
	var busy Time
	for _, ivs := range got {
		all = append(all, ivs...)
		for _, iv := range ivs {
			busy += iv.end - iv.start
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].start < all[j].start })
	for i := 1; i < len(all); i++ {
		if all[i].start < all[i-1].end {
			t.Fatalf("double-booked: [%d,%d) overlaps [%d,%d)",
				all[i-1].start, all[i-1].end, all[i].start, all[i].end)
		}
	}
	if r.BusyTime() != busy {
		t.Errorf("BusyTime() = %d, want the sum of granted durations %d", r.BusyTime(), busy)
	}
	if r.Ops() != streams*perStr {
		t.Errorf("Ops() = %d, want %d", r.Ops(), streams*perStr)
	}
	if got, want := r.FreeAt(), all[len(all)-1].end; got != want {
		t.Errorf("FreeAt() = %d, want latest end %d", got, want)
	}
}

// TestPoolCachedHorizonDispatch: Pool.Acquire must pick the same
// earliest-free member that a locked FreeAt scan would have picked, using
// only the cached horizons — and keep doing so as the members' timelines
// grow at different rates.
func TestPoolCachedHorizonDispatch(t *testing.T) {
	p := NewPool("die", 4)
	rng := rand.New(rand.NewSource(7))
	var at Time
	for i := 0; i < 500; i++ {
		// Reference choice from the published horizons before dispatch.
		want := 0
		for j, m := range p.Members {
			if m.FreeAt() < p.Members[want].FreeAt() {
				want = j
			}
		}
		d := Time(rng.Int63n(20) + 1)
		start, end, idx := p.Acquire(at, d)
		if idx != want {
			t.Fatalf("op %d: dispatched to member %d, earliest-free was %d", i, idx, want)
		}
		if start < at || end != start+d {
			t.Fatalf("op %d: bad interval [%d,%d) for at=%d d=%d", i, start, end, at, d)
		}
		if rng.Intn(4) == 0 {
			at += Time(rng.Int63n(30))
		}
	}
	// The pool drains when its earliest member does.
	min := p.Members[0].FreeAt()
	for _, m := range p.Members[1:] {
		min = Min(min, m.FreeAt())
	}
	if got := p.FreeAt(); got != min {
		t.Fatalf("Pool.FreeAt() = %d, want %d", got, min)
	}
}

// TestPoolConcurrentDispatch: concurrent dispatchers must never double-book a
// member and must conserve busy time. The pool lock serializes the choice;
// this holds the result to it under -race.
func TestPoolConcurrentDispatch(t *testing.T) {
	const (
		streams = 8
		perStr  = 400
	)
	p := NewPool("die", 3)
	type grant struct {
		start, end Time
		idx        int
	}
	grants := make([][]grant, streams)
	var wg sync.WaitGroup
	for c := 0; c < streams; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(200 + c)))
			var cursor Time
			out := make([]grant, 0, perStr)
			for i := 0; i < perStr; i++ {
				d := Time(rng.Int63n(10) + 1)
				s, e, idx := p.Acquire(cursor, d)
				cursor = e
				out = append(out, grant{s, e, idx})
			}
			grants[c] = out
		}(c)
	}
	wg.Wait()

	perMember := make([][]interval, len(p.Members))
	var busy Time
	for _, gs := range grants {
		for _, g := range gs {
			perMember[g.idx] = append(perMember[g.idx], interval{g.start, g.end})
			busy += g.end - g.start
		}
	}
	for mi, ivs := range perMember {
		sort.Slice(ivs, func(i, j int) bool { return ivs[i].start < ivs[j].start })
		for i := 1; i < len(ivs); i++ {
			if ivs[i].start < ivs[i-1].end {
				t.Fatalf("member %d double-booked: [%d,%d) overlaps [%d,%d)",
					mi, ivs[i-1].start, ivs[i-1].end, ivs[i].start, ivs[i].end)
			}
		}
	}
	var total Time
	for _, m := range p.Members {
		total += m.BusyTime()
	}
	if total != busy {
		t.Fatalf("members report %d busy time, grants sum to %d", total, busy)
	}
}
