package datagen

import (
	"bytes"
	"testing"

	"nds/internal/workloads"
)

func TestMatrixDeterministic(t *testing.T) {
	a, b := Matrix(16, 16, 7), Matrix(16, 16, 7)
	if !a.Equal(b, 0) {
		t.Fatal("same seed should reproduce the matrix")
	}
	c := Matrix(16, 16, 8)
	if a.Equal(c, 0) {
		t.Fatal("different seeds should differ")
	}
}

func TestGraphEdgeCount(t *testing.T) {
	adj, err := Graph(32, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	var edges int64
	for i := 0; i < 32; i++ {
		if adj.At(i, i) != 0 {
			t.Fatal("self loop generated")
		}
		for j := 0; j < 32; j++ {
			if adj.At(i, j) != 0 {
				edges++
			}
		}
	}
	if edges != 100 {
		t.Fatalf("generated %d edges, want 100", edges)
	}
	if _, err := Graph(1, 0, 1); err == nil {
		t.Error("degenerate graph accepted")
	}
	if _, err := Graph(4, 1000, 1); err == nil {
		t.Error("overfull graph accepted")
	}
}

func TestGraphBackboneReachable(t *testing.T) {
	adj, err := Graph(64, 200, 3)
	if err != nil {
		t.Fatal(err)
	}
	lv, err := workloads.BFS(adj, 0)
	if err != nil {
		t.Fatal(err)
	}
	for v, l := range lv {
		if l < 0 {
			t.Fatalf("vertex %d unreachable despite path backbone", v)
		}
	}
}

func TestClusteringStructure(t *testing.T) {
	pts, centres, err := Clustering(40, 4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if centres.Rows != 4 || pts.Rows != 40 {
		t.Fatal("wrong shapes")
	}
	// Each point sits within 1.0 of its centre in every attribute.
	for i := 0; i < 40; i++ {
		c := i % 4
		for j := 0; j < 4; j++ {
			d := pts.At(i, j) - centres.At(c, j)
			if d > 1 || d < -1 {
				t.Fatalf("point %d strays %v from its centre", i, d)
			}
		}
	}
	if _, _, err := Clustering(2, 4, 5, 1); err == nil {
		t.Error("k > m accepted")
	}
}

func TestPageRankGraphSkewed(t *testing.T) {
	adj, err := PageRankGraph(256, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	inDeg := make([]int, 256)
	for u := 0; u < 256; u++ {
		for v := 0; v < 256; v++ {
			if adj.At(u, v) != 0 {
				inDeg[v]++
			}
		}
	}
	// The head of the distribution must dominate the tail.
	head, tail := 0, 0
	for v := 0; v < 32; v++ {
		head += inDeg[v]
	}
	for v := 224; v < 256; v++ {
		tail += inDeg[v]
	}
	if head <= 3*tail {
		t.Fatalf("in-degree not skewed: head=%d tail=%d", head, tail)
	}
}

func TestContainerRoundTrip(t *testing.T) {
	m := Matrix(8, 12, 9)
	var buf bytes.Buffer
	if err := WriteContainer(&buf, []int64{8, 12}, m.Bytes()); err != nil {
		t.Fatal(err)
	}
	dims, payload, err := ReadContainer(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(dims) != 2 || dims[0] != 8 || dims[1] != 12 {
		t.Fatalf("dims = %v", dims)
	}
	if !bytes.Equal(payload, m.Bytes()) {
		t.Fatal("payload mismatch")
	}
	// Corrupt magic is rejected.
	if _, _, err := ReadContainer(bytes.NewBufferString("XXXX....")); err == nil {
		t.Error("bad magic accepted")
	}
	// Payload/dims mismatch rejected.
	if err := WriteContainer(&bytes.Buffer{}, []int64{4}, make([]byte, 3)); err == nil {
		t.Error("mismatched payload accepted")
	}
}

func TestStreamHelpers(t *testing.T) {
	m := Matrix(4, 4, 10)
	var buf bytes.Buffer
	if err := WriteMatrix(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMatrix(&buf, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m, 0) {
		t.Fatal("stream round-trip mismatch")
	}
	tn := Tensor(2, 3, 4, 11)
	buf.Reset()
	if err := WriteTensor(&buf, tn); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 2*3*4*4 {
		t.Fatalf("tensor stream length %d", buf.Len())
	}
}
