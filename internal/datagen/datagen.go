// Package datagen reimplements the paper's dataset generators (Appendix
// A.3.4): random dense matrices (GEMM, Conv2D, Hotspot inputs), random 3-D
// tensors (TTV, TC), clustering point sets (K-Means, KNN), random adjacency
// matrices in binary encoding (BFS, SSSP), and a synthetic power-law graph
// standing in for the DIMACS download of the PageRank generator. All
// generators are deterministic for a given seed and emit the binary-encoded
// layouts the NDS workloads consume.
package datagen

import (
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"

	"nds/internal/tensor"
)

// Matrix generates an m x n random matrix (the data/generator/matrix tool).
func Matrix(m, n int, seed int64) *tensor.Matrix {
	return tensor.RandMatrix(m, n, seed)
}

// Tensor generates an m x n x k random tensor (data/generator/tensor).
func Tensor(m, n, k int, seed int64) *tensor.Tensor3 {
	return tensor.RandTensor3(m, n, k, seed)
}

// Clustering generates m points with n attributes drawn around k well
// separated centres plus the k query/centre points themselves
// (data/generator/clustering, after kNN-CUDA).
func Clustering(m, n, k int, seed int64) (points, centres *tensor.Matrix, err error) {
	if k <= 0 || m < k || n <= 0 {
		return nil, nil, fmt.Errorf("datagen: clustering needs 0 < k <= m and n > 0 (m=%d n=%d k=%d)", m, n, k)
	}
	rng := rand.New(rand.NewSource(seed))
	centres = tensor.NewMatrix(k, n)
	for c := 0; c < k; c++ {
		for j := 0; j < n; j++ {
			centres.Set(c, j, float32(c*10)+rng.Float32())
		}
	}
	points = tensor.NewMatrix(m, n)
	for i := 0; i < m; i++ {
		c := i % k
		for j := 0; j < n; j++ {
			points.Set(i, j, centres.At(c, j)+rng.Float32()-0.5)
		}
	}
	return points, centres, nil
}

// Graph generates an m x m adjacency matrix with approximately edges
// non-zero random positive weights (data/generator/graph/bfs: "an M x M
// adjacency matrix with N non-zero random values"). The diagonal stays
// clear, and the graph is seeded with a Hamiltonian-ish path so BFS/SSSP
// reach most vertices.
func Graph(m int, edges int64, seed int64) (*tensor.Matrix, error) {
	if m <= 1 {
		return nil, fmt.Errorf("datagen: graph needs at least 2 vertices")
	}
	maxEdges := int64(m) * int64(m-1)
	if edges < 0 || edges > maxEdges {
		return nil, fmt.Errorf("datagen: %d edges out of range [0,%d]", edges, maxEdges)
	}
	rng := rand.New(rand.NewSource(seed))
	adj := tensor.NewMatrix(m, m)
	placed := int64(0)
	// Connectivity backbone.
	for i := 0; i < m-1 && placed < edges; i++ {
		adj.Set(i, i+1, 1+rng.Float32())
		placed++
	}
	for placed < edges {
		u, v := rng.Intn(m), rng.Intn(m)
		if u == v || adj.At(u, v) != 0 {
			continue
		}
		adj.Set(u, v, 1+rng.Float32())
		placed++
	}
	return adj, nil
}

// PageRankGraph generates an m x m adjacency with a power-law-ish in-degree
// distribution (a synthetic stand-in for the 10th DIMACS graph the paper's
// pagerank_graph_gen.sh downloads — we have no network, so we generate a
// graph with the same qualitative structure: few popular vertices, many
// leaves).
func PageRankGraph(m int, avgDegree int, seed int64) (*tensor.Matrix, error) {
	if m <= 1 || avgDegree < 1 {
		return nil, fmt.Errorf("datagen: pagerank graph needs m > 1, avgDegree >= 1")
	}
	rng := rand.New(rand.NewSource(seed))
	adj := tensor.NewMatrix(m, m)
	for u := 0; u < m; u++ {
		deg := 1 + rng.Intn(2*avgDegree)
		for e := 0; e < deg; e++ {
			// Preferential-attachment flavour: square the uniform draw so
			// low-numbered vertices collect most edges.
			f := rng.Float64()
			v := int(f * f * float64(m))
			if v >= m {
				v = m - 1
			}
			if v != u {
				adj.Set(u, v, 1)
			}
		}
	}
	return adj, nil
}

// WriteMatrix streams a matrix in the binary-encoded row-major format the
// NDS tools consume (little-endian float32, no header).
func WriteMatrix(w io.Writer, m *tensor.Matrix) error {
	_, err := w.Write(m.Bytes())
	return err
}

// WriteTensor streams a tensor in binary-encoded row-major format.
func WriteTensor(w io.Writer, t *tensor.Tensor3) error {
	_, err := w.Write(t.Bytes())
	return err
}

// ReadMatrix decodes a rows x cols binary-encoded matrix.
func ReadMatrix(r io.Reader, rows, cols int) (*tensor.Matrix, error) {
	buf := make([]byte, rows*cols*4)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return tensor.MatrixFromBytes(rows, cols, buf)
}

// header helpers for the self-describing .ndsmat container used by the CLI
// tools: magic, rank, dims, then raw little-endian float32 payload.

const magic = "NDSM"

// WriteContainer writes a self-describing container with the given dims and
// payload (len(payload) must equal 4*prod(dims)).
func WriteContainer(w io.Writer, dims []int64, payload []byte) error {
	vol := int64(1)
	for _, d := range dims {
		if d <= 0 {
			return fmt.Errorf("datagen: non-positive dim %d", d)
		}
		vol *= d
	}
	if int64(len(payload)) != vol*4 {
		return fmt.Errorf("datagen: payload %d bytes does not match dims %v", len(payload), dims)
	}
	if _, err := io.WriteString(w, magic); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, int32(len(dims))); err != nil {
		return err
	}
	for _, d := range dims {
		if err := binary.Write(w, binary.LittleEndian, d); err != nil {
			return err
		}
	}
	_, err := w.Write(payload)
	return err
}

// ReadContainer reads a container written by WriteContainer.
func ReadContainer(r io.Reader) (dims []int64, payload []byte, err error) {
	hdr := make([]byte, 4)
	if _, err = io.ReadFull(r, hdr); err != nil {
		return nil, nil, err
	}
	if string(hdr) != magic {
		return nil, nil, fmt.Errorf("datagen: bad magic %q", hdr)
	}
	var rank int32
	if err = binary.Read(r, binary.LittleEndian, &rank); err != nil {
		return nil, nil, err
	}
	if rank <= 0 || rank > 32 {
		return nil, nil, fmt.Errorf("datagen: rank %d out of range", rank)
	}
	dims = make([]int64, rank)
	vol := int64(1)
	for i := range dims {
		if err = binary.Read(r, binary.LittleEndian, &dims[i]); err != nil {
			return nil, nil, err
		}
		if dims[i] <= 0 || vol > (1<<40)/dims[i] {
			return nil, nil, fmt.Errorf("datagen: unreasonable dims %v", dims)
		}
		vol *= dims[i]
	}
	payload = make([]byte, vol*4)
	if _, err = io.ReadFull(r, payload); err != nil {
		return nil, nil, err
	}
	return dims, payload, nil
}
