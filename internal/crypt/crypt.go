// Package crypt provides the block-based page encryption of §5.3.3. Modern
// datacenter SSD controllers carry inline AES engines that encrypt each
// basic access unit with a size-preserving transformation; NDS composes with
// them unchanged because building blocks never alter data content at grains
// finer than the cipher section (256 bits). This package implements such an
// engine: AES-CTR keyed per device, with a nonce derived from the physical
// page address, so relocation (GC) re-seals data under its new location
// automatically.
package crypt

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"nds/internal/nvm"
)

// SectionBytes is the cipher section: AES's 256-bit granule (§5.3.3 uses a
// 256-bit section storing eight 4-byte elements).
const SectionBytes = 32

// Engine seals and opens page payloads. It satisfies nvm.PageCipher.
type Engine struct {
	block cipher.Block
}

// New derives an engine from a device key (any length; hashed to 256 bits).
func New(key []byte) (*Engine, error) {
	if len(key) == 0 {
		return nil, fmt.Errorf("crypt: empty key")
	}
	sum := sha256.Sum256(key)
	b, err := aes.NewCipher(sum[:])
	if err != nil {
		return nil, err
	}
	return &Engine{block: b}, nil
}

// iv derives the CTR nonce from the physical page address, so each unit has
// a unique keystream and relocated data is re-sealed at its new address.
func (e *Engine) iv(p nvm.PPA) []byte {
	var iv [aes.BlockSize]byte
	binary.LittleEndian.PutUint32(iv[0:], uint32(p.Channel))
	binary.LittleEndian.PutUint32(iv[4:], uint32(p.Bank))
	binary.LittleEndian.PutUint32(iv[8:], uint32(p.Block))
	binary.LittleEndian.PutUint32(iv[12:], uint32(p.Page))
	return iv[:]
}

// Seal encrypts plain for storage at p. The output length equals the input
// length (size-preserving, as §5.3.3 requires).
func (e *Engine) Seal(p nvm.PPA, plain []byte) []byte {
	out := make([]byte, len(plain))
	cipher.NewCTR(e.block, e.iv(p)).XORKeyStream(out, plain)
	return out
}

// Open decrypts sealed read from p.
func (e *Engine) Open(p nvm.PPA, sealed []byte) []byte {
	// CTR is symmetric.
	return e.Seal(p, sealed)
}

// CompatibleWithBlocks checks §5.3.3's constraint: the data size in each
// blocked dimension of a building block must be at least the cipher
// section, so sections never straddle block fragments.
func CompatibleWithBlocks(blockDims []int64, elemSize int) bool {
	for _, d := range blockDims {
		if d == 1 {
			continue // unblocked dimension
		}
		if d*int64(elemSize) < SectionBytes {
			return false
		}
	}
	return true
}
