package crypt

import (
	"bytes"
	"math/rand"
	"testing"

	"nds/internal/nvm"
	"nds/internal/stl"
)

func TestSealOpenRoundTrip(t *testing.T) {
	e, err := New([]byte("device-key"))
	if err != nil {
		t.Fatal(err)
	}
	plain := make([]byte, 4096)
	rand.New(rand.NewSource(1)).Read(plain)
	p := nvm.PPA{Channel: 3, Bank: 1, Block: 7, Page: 9}
	sealed := e.Seal(p, plain)
	if bytes.Equal(sealed, plain) {
		t.Fatal("sealed bytes equal plaintext")
	}
	if len(sealed) != len(plain) {
		t.Fatal("cipher is not size-preserving")
	}
	if !bytes.Equal(e.Open(p, sealed), plain) {
		t.Fatal("open(seal(x)) != x")
	}
	// A different address yields a different keystream.
	other := e.Seal(nvm.PPA{Channel: 3, Bank: 1, Block: 7, Page: 10}, plain)
	if bytes.Equal(other, sealed) {
		t.Fatal("distinct addresses produced identical ciphertext")
	}
	if _, err := New(nil); err == nil {
		t.Fatal("empty key accepted")
	}
}

// TestEncryptedSTLEndToEnd installs the engine beneath a real STL: data
// written through coordinates must read back exactly, the medium must hold
// ciphertext, and GC-driven relocation must stay transparent (§5.3.3: "the
// current NDS workflow functions well regardless").
func TestEncryptedSTLEndToEnd(t *testing.T) {
	geo := nvm.Geometry{Channels: 4, Banks: 2, BlocksPerBank: 8, PagesPerBlock: 8, PageSize: 512}
	dev, err := nvm.NewDevice(geo, nvm.TLCTiming(), false)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New([]byte("k"))
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.SetCipher(e); err != nil {
		t.Fatal(err)
	}
	st, err := stl.New(dev, stl.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sp, err := st.CreateSpace(4, []int64{96, 96})
	if err != nil {
		t.Fatal(err)
	}
	v, err := stl.NewView(sp, []int64{96, 96})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	data := make([]byte, sp.Bytes())
	rng.Read(data)
	if _, _, err := st.WritePartition(0, v, []int64{0, 0}, []int64{96, 96}, data); err != nil {
		t.Fatal(err)
	}
	// The medium holds ciphertext: no programmed page's raw bytes appear in
	// the plaintext image.
	found := 0
	for ch := 0; ch < geo.Channels; ch++ {
		for bk := 0; bk < geo.Banks; bk++ {
			for blk := 0; blk < geo.BlocksPerBank; blk++ {
				for pg := 0; pg < geo.PagesPerBlock; pg++ {
					raw := dev.RawPage(nvm.PPA{Channel: ch, Bank: bk, Block: blk, Page: pg})
					if raw == nil {
						continue
					}
					found++
					if bytes.Contains(data, raw[:64]) {
						t.Fatal("plaintext fragment found on the medium")
					}
				}
			}
		}
	}
	if found == 0 {
		t.Fatal("no programmed pages found")
	}
	// Churn overwrites until GC relocates sealed pages, then verify.
	for i := 0; i < 40; i++ {
		patch := make([]byte, 32*32*4)
		rng.Read(patch)
		coord := []int64{rng.Int63n(3), rng.Int63n(3)}
		if _, _, err := st.WritePartition(0, v, coord, []int64{32, 32}, patch); err != nil {
			t.Fatal(err)
		}
		// Mirror into the reference image.
		for r := int64(0); r < 32; r++ {
			row := (coord[0]*32 + r) * 96
			copy(data[(row+coord[1]*32)*4:(row+coord[1]*32+32)*4], patch[r*32*4:(r+1)*32*4])
		}
	}
	got, _, _, err := st.ReadPartition(0, v, []int64{0, 0}, []int64{96, 96})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("encrypted data path corrupted data")
	}
	if erases, _ := st.GCStats(); erases > 0 {
		t.Logf("GC relocated sealed pages across %d erases; data intact", erases)
	}
}

func TestCipherInstallOrder(t *testing.T) {
	geo := nvm.Geometry{Channels: 2, Banks: 1, BlocksPerBank: 2, PagesPerBlock: 2, PageSize: 128}
	dev, err := nvm.NewDevice(geo, nvm.TLCTiming(), false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dev.ProgramPage(0, nvm.PPA{}, []byte{1}); err != nil {
		t.Fatal(err)
	}
	e, _ := New([]byte("k"))
	if err := dev.SetCipher(e); err == nil {
		t.Fatal("cipher installed over existing data")
	}
}

func TestCompatibleWithBlocks(t *testing.T) {
	// 256x256 blocks of 8-byte elements: every blocked dimension spans 2 KB
	// >> the 32-byte section.
	if !CompatibleWithBlocks([]int64{256, 256}, 8) {
		t.Error("prototype layout should be compatible")
	}
	// A pathological 4-element dimension of 4-byte elements (16 B < 32 B).
	if CompatibleWithBlocks([]int64{4, 256}, 4) {
		t.Error("sub-section dimension should be flagged")
	}
	// Unblocked dimensions (1) are exempt.
	if !CompatibleWithBlocks([]int64{1, 256, 256}, 4) {
		t.Error("unblocked dimension should be exempt")
	}
}
