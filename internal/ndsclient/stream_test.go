package ndsclient

import "testing"

// TestStreamChunks checks the aligned tiling ReadStream splits a partition
// with: chunks cover the row range exactly, every chunk is addressable as a
// partition (row % height == 0), and no chunk exceeds the requested height.
func TestStreamChunks(t *testing.T) {
	cases := []struct {
		name       string
		first      int64
		rows       int64
		h          int64
		wantChunks int // 0 = don't check the count
	}{
		{name: "power-of-two", first: 0, rows: 4096, h: 128, wantChunks: 32},
		{name: "prime", first: 0, rows: 4099, h: 128, wantChunks: 34}, // 32x128 + 2 + 1
		{name: "prime-default-h", first: 0, rows: 4099, h: 4099 / 32}, // what defaultChunkRows(4099, 8) picks
		{name: "rows-below-window", first: 0, rows: 16, h: 16, wantChunks: 1},
		{name: "single-row", first: 0, rows: 1, h: 128, wantChunks: 1},
		{name: "nonzero-first", first: 4099, rows: 4099, h: 128}, // coord[0] > 0: first row not chunk-aligned
		{name: "nonzero-first-aligned", first: 8192, rows: 4096, h: 128, wantChunks: 32},
		{name: "h-larger-than-rows", first: 0, rows: 100, h: 1 << 20, wantChunks: 1},
		{name: "h-zero-whole-range", first: 0, rows: 4099, h: 0, wantChunks: 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			chunks := streamChunks(tc.first, tc.rows, tc.h)
			if tc.wantChunks > 0 && len(chunks) != tc.wantChunks {
				t.Errorf("got %d chunks, want %d", len(chunks), tc.wantChunks)
			}
			next := tc.first
			var total int64
			for i, c := range chunks {
				if c.row != next {
					t.Fatalf("chunk %d starts at row %d, want %d (gap or overlap)", i, c.row, next)
				}
				if c.height <= 0 {
					t.Fatalf("chunk %d has height %d", i, c.height)
				}
				if tc.h > 0 && c.height > tc.h {
					t.Errorf("chunk %d height %d exceeds cap %d", i, c.height, tc.h)
				}
				if c.row%c.height != 0 {
					t.Errorf("chunk %d at row %d height %d is not partition-aligned", i, c.row, c.height)
				}
				next += c.height
				total += c.height
			}
			if total != tc.rows {
				t.Fatalf("chunks cover %d rows, want %d", total, tc.rows)
			}
			// The point of the fix: a near-divisor height must not degenerate
			// into per-row chunks.
			if tc.h > 1 && tc.rows > 4*tc.h && len(chunks) > int(tc.rows/tc.h)+64 {
				t.Errorf("tiling degenerated: %d chunks for %d rows at h=%d", len(chunks), tc.rows, tc.h)
			}
		})
	}
}

// TestDefaultChunkRows pins the fixed heuristic: no divisor scan, so prime
// row counts get the same large chunks as round ones.
func TestDefaultChunkRows(t *testing.T) {
	cases := []struct {
		rows   int64
		window int
		want   int64
	}{
		{rows: 4096, window: 8, want: 128},
		{rows: 4099, window: 8, want: 128}, // prime: used to fall through to 1
		{rows: 16, window: 8, want: 16},    // rows < 4*window: stream whole
		{rows: 1, window: 8, want: 1},
		{rows: 127, window: 8, want: 3}, // prime: small but real chunks, not 1
		{rows: 1 << 20, window: 8, want: 1 << 15},
	}
	for _, tc := range cases {
		if got := defaultChunkRows(tc.rows, tc.window); got != tc.want {
			t.Errorf("defaultChunkRows(%d, %d) = %d, want %d", tc.rows, tc.window, got, tc.want)
		}
	}
}
