package ndsclient

import (
	"fmt"
	"sync"
)

// StreamOpts tunes ReadStream.
type StreamOpts struct {
	// Window is the number of chunk requests kept in flight on the
	// connection. Zero selects DefaultStreamWindow.
	Window int
	// ChunkRows is each chunk's extent along the partition's first
	// dimension; it must divide the partition's sub[0]. Zero picks the
	// largest divisor of sub[0] that still yields at least 4x Window chunks
	// (falling back to sub[0] when the partition is too small to split).
	ChunkRows int64
}

// DefaultStreamWindow is the in-flight window ReadStream uses when
// StreamOpts.Window is zero.
const DefaultStreamWindow = 8

// ReadStream fetches the partition at coord/sub as a pipeline of smaller
// partition reads on one connection, keeping StreamOpts.Window requests in
// flight so a GB-sized fetch saturates the device instead of serializing one
// round trip per frame. The partition is split along its first dimension
// into chunks of ChunkRows rows; chunks are requested concurrently and
// delivered to fn strictly in partition order — off is the chunk's byte
// offset in the partition's row-major layout, and chunk is valid only for
// the duration of the call. Returns the total bytes delivered.
//
// The chunk coordinates address the same view at finer granularity, so the
// split is exact only when the chunks tile whole partitions of the view:
// sub[0] must be divisible by ChunkRows (checked) and the view's first
// dimension divisible by sub[0] (an interior, unclamped partition — the
// layout guarantee the caller already relies on for partition reads). An
// error from fn, the device, or the connection aborts the stream once the
// in-flight window drains.
func (c *Client) ReadStream(view uint32, coord, sub []int64, opts StreamOpts, fn func(off int64, chunk []byte) error) (int64, error) {
	if len(sub) == 0 || len(coord) != len(sub) {
		return 0, fmt.Errorf("ndsclient: ReadStream coord/sub rank mismatch (%d vs %d)", len(coord), len(sub))
	}
	window := opts.Window
	if window <= 0 {
		window = DefaultStreamWindow
	}
	rows := sub[0]
	if rows <= 0 {
		return 0, fmt.Errorf("ndsclient: ReadStream sub[0] = %d, want > 0", rows)
	}
	h := opts.ChunkRows
	if h == 0 {
		h = defaultChunkRows(rows, window)
	}
	if h <= 0 || rows%h != 0 {
		return 0, fmt.Errorf("ndsclient: ReadStream chunk rows %d must divide sub[0] = %d", h, rows)
	}
	chunks := int(rows / h)
	if chunks == 1 {
		// Degenerate stream: one frame, no pipeline to manage.
		data, err := c.Read(view, coord, sub)
		if err != nil {
			return 0, err
		}
		if fn != nil {
			if err := fn(0, data); err != nil {
				return 0, err
			}
		}
		return int64(len(data)), nil
	}

	// Each chunk is the partition (base0+j, coord[1:]) of the same view under
	// sub' = {h, sub[1:]}: (coord[0]*sub[0])/h + j addresses rows
	// [j*h, (j+1)*h) of this partition in the finer partition grid.
	base0 := coord[0] * rows / h
	subJ := append([]int64(nil), sub...)
	subJ[0] = h

	type result struct {
		data []byte
		err  error
	}
	var (
		mu      sync.Mutex
		results = make(map[int]result, window)
		arrived = sync.NewCond(&mu)
		wg      sync.WaitGroup
	)
	// The delivery loop below drives the window: chunks launch as earlier
	// chunks are consumed, so at most `window` requests are in flight or
	// parked in the reorder buffer, and an abort simply stops launching —
	// in-flight workers always run to completion (wg), never blocking on
	// anything the aborted loop owns.
	next := 0
	launch := func() {
		j := next
		next++
		wg.Add(1)
		go func() {
			defer wg.Done()
			coordJ := append([]int64(nil), coord...)
			coordJ[0] = base0 + int64(j)
			data, err := c.Read(view, coordJ, subJ)
			mu.Lock()
			results[j] = result{data: data, err: err}
			arrived.Broadcast()
			mu.Unlock()
		}()
	}
	for next < chunks && next < window {
		launch()
	}

	var total int64
	var streamErr error
	for j := 0; j < chunks; j++ {
		mu.Lock()
		for {
			if _, ok := results[j]; ok {
				break
			}
			arrived.Wait()
		}
		r := results[j]
		delete(results, j)
		mu.Unlock()
		if r.err == nil && fn != nil {
			r.err = fn(total, r.data)
		}
		total += int64(len(r.data))
		if r.err != nil {
			streamErr = r.err
			break
		}
		if next < chunks {
			launch()
		}
	}
	wg.Wait() // drain stragglers so no goroutine outlives the call
	if streamErr != nil {
		return total, fmt.Errorf("ndsclient: ReadStream: %w", streamErr)
	}
	return total, nil
}

// defaultChunkRows picks the largest divisor of rows giving at least
// 4x window chunks, so the pipeline always has work queued behind the
// in-flight set; partitions too small to split stream as one chunk.
func defaultChunkRows(rows int64, window int) int64 {
	target := rows / int64(4*window)
	for h := target; h >= 1; h-- {
		if rows%h == 0 {
			return h
		}
	}
	return rows
}
