package ndsclient

import (
	"fmt"
	"sync"
)

// StreamOpts tunes ReadStream.
type StreamOpts struct {
	// Window is the number of chunk requests kept in flight on the
	// connection. Zero selects DefaultStreamWindow.
	Window int
	// ChunkRows caps each chunk's extent along the partition's first
	// dimension. It need not divide sub[0]: the stream tiles the row range
	// with aligned chunks of at most ChunkRows rows (see streamChunks), so
	// prime or otherwise awkward row counts still stream in large frames.
	// Zero picks sub[0]/(4*Window) so the pipeline always has work queued
	// behind the in-flight set (whole-partition when too small to split).
	ChunkRows int64
}

// DefaultStreamWindow is the in-flight window ReadStream uses when
// StreamOpts.Window is zero.
const DefaultStreamWindow = 8

// ReadStream fetches the partition at coord/sub as a pipeline of smaller
// partition reads on one connection, keeping StreamOpts.Window requests in
// flight so a GB-sized fetch saturates the device instead of serializing one
// round trip per frame. The partition is split along its first dimension
// into chunks of ChunkRows rows; chunks are requested concurrently and
// delivered to fn strictly in partition order — off is the chunk's byte
// offset in the partition's row-major layout, and chunk is valid only for
// the duration of the call. Returns the total bytes delivered.
//
// Each chunk addresses the same view at finer granularity: a chunk of k rows
// starting at absolute row A is the partition A/k of the grid sub' =
// {k, sub[1:]}, which requires A to be a multiple of k — streamChunks picks
// aligned chunk heights, so any row count (including primes) tiles exactly.
// An error from fn, the device, or the connection aborts the stream once the
// in-flight window drains.
func (c *Client) ReadStream(view uint32, coord, sub []int64, opts StreamOpts, fn func(off int64, chunk []byte) error) (int64, error) {
	if len(sub) == 0 || len(coord) != len(sub) {
		return 0, fmt.Errorf("ndsclient: ReadStream coord/sub rank mismatch (%d vs %d)", len(coord), len(sub))
	}
	window := opts.Window
	if window <= 0 {
		window = DefaultStreamWindow
	}
	rows := sub[0]
	if rows <= 0 {
		return 0, fmt.Errorf("ndsclient: ReadStream sub[0] = %d, want > 0", rows)
	}
	h := opts.ChunkRows
	if h == 0 {
		h = defaultChunkRows(rows, window)
	}
	if h < 0 {
		return 0, fmt.Errorf("ndsclient: ReadStream chunk rows %d, want >= 0", h)
	}
	tiles := streamChunks(coord[0]*rows, rows, h)
	chunks := len(tiles)
	if chunks == 1 {
		// Degenerate stream: one frame, no pipeline to manage.
		data, err := c.Read(view, coord, sub)
		if err != nil {
			return 0, err
		}
		if fn != nil {
			if err := fn(0, data); err != nil {
				return 0, err
			}
		}
		return int64(len(data)), nil
	}

	type result struct {
		data []byte
		err  error
	}
	var (
		mu      sync.Mutex
		results = make(map[int]result, window)
		arrived = sync.NewCond(&mu)
		wg      sync.WaitGroup
	)
	// The delivery loop below drives the window: chunks launch as earlier
	// chunks are consumed, so at most `window` requests are in flight or
	// parked in the reorder buffer, and an abort simply stops launching —
	// in-flight workers always run to completion (wg), never blocking on
	// anything the aborted loop owns.
	next := 0
	launch := func() {
		j := next
		next++
		wg.Add(1)
		go func() {
			defer wg.Done()
			coordJ := append([]int64(nil), coord...)
			subJ := append([]int64(nil), sub...)
			coordJ[0] = tiles[j].row / tiles[j].height
			subJ[0] = tiles[j].height
			data, err := c.Read(view, coordJ, subJ)
			mu.Lock()
			results[j] = result{data: data, err: err}
			arrived.Broadcast()
			mu.Unlock()
		}()
	}
	for next < chunks && next < window {
		launch()
	}

	var total int64
	var streamErr error
	for j := 0; j < chunks; j++ {
		mu.Lock()
		for {
			if _, ok := results[j]; ok {
				break
			}
			arrived.Wait()
		}
		r := results[j]
		delete(results, j)
		mu.Unlock()
		if r.err == nil && fn != nil {
			r.err = fn(total, r.data)
		}
		total += int64(len(r.data))
		if r.err != nil {
			streamErr = r.err
			break
		}
		if next < chunks {
			launch()
		}
	}
	wg.Wait() // drain stragglers so no goroutine outlives the call
	if streamErr != nil {
		return total, fmt.Errorf("ndsclient: ReadStream: %w", streamErr)
	}
	return total, nil
}

// defaultChunkRows picks a chunk height giving at least 4x window chunks, so
// the pipeline always has work queued behind the in-flight set; partitions
// too small to split stream as one chunk. The height need not divide rows —
// streamChunks aligns the tail — so awkward row counts (primes) no longer
// collapse to one-row chunks.
func defaultChunkRows(rows int64, window int) int64 {
	target := rows / int64(4*window)
	if target < 1 {
		return rows
	}
	return target
}

// streamChunk is one tile of a streamed partition: height rows starting at
// absolute row `row` of the view's first dimension.
type streamChunk struct {
	row    int64 // absolute first row (multiple of height)
	height int64
}

// streamChunks tiles rows rows starting at absolute row first into chunks of
// at most h rows, each aligned so the chunk is addressable as a partition:
// a chunk of k rows at absolute row A needs A % k == 0 (its coordinate in
// the {k, sub[1:]} grid is A/k). The greedy walk shrinks a chunk only when
// alignment demands it, so a divisor-friendly h yields rows/h full chunks
// and e.g. 4099 rows at h=128 tile as 32x128 + 2 + 1 instead of 4099x1.
// h <= 0 selects a single whole-range chunk.
func streamChunks(first, rows, h int64) []streamChunk {
	if h <= 0 || h > rows {
		h = rows
	}
	out := make([]streamChunk, 0, rows/h+2)
	for off := int64(0); off < rows; {
		a := first + off
		k := h
		if rem := rows - off; k > rem {
			k = rem
		}
		for a%k != 0 {
			k--
		}
		out = append(out, streamChunk{row: a, height: k})
		off += k
	}
	return out
}
