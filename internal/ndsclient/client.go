// Package ndsclient is the host-side library for the ndsd wire protocol:
// it frames §5.3.1 submission entries onto a TCP or unix-socket connection
// (internal/proto framing) and matches pipelined completions back to
// callers by sequence number.
//
// A Client is safe for concurrent use. Each concurrent caller's request is
// in flight independently — the server executes pipelined commands
// concurrently and may complete them out of order — so the natural pattern
// is one goroutine per open view, mirroring the in-process API's
// one-stream-per-view model.
package ndsclient

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"

	"nds/internal/proto"
)

// StatusError is a non-OK device completion surfaced as a Go error.
type StatusError struct {
	Op     string
	Status proto.Status
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("ndsclient: %s: %s", e.Op, e.Status)
}

// IsStatus reports whether err is a StatusError carrying st.
func IsStatus(err error, st proto.Status) bool {
	var se *StatusError
	return errors.As(err, &se) && se.Status == st
}

// Client is one connection to an ndsd server.
type Client struct {
	nc net.Conn

	wmu sync.Mutex // serializes request frames
	bw  *bufio.Writer

	mu      sync.Mutex
	seq     uint64
	pending map[uint64]chan proto.Response
	err     error // terminal receive error; set once
	closed  bool
}

// Dial connects to an ndsd server. addr accepts "unix:/path/to/sock",
// "tcp:host:port", or a bare "host:port" (TCP).
func Dial(addr string) (*Client, error) {
	network, target := "tcp", addr
	switch {
	case strings.HasPrefix(addr, "unix:"):
		network, target = "unix", strings.TrimPrefix(addr, "unix:")
	case strings.HasPrefix(addr, "tcp:"):
		target = strings.TrimPrefix(addr, "tcp:")
	}
	nc, err := net.Dial(network, target)
	if err != nil {
		return nil, err
	}
	return NewClient(nc), nil
}

// NewClient wraps an established connection. The Client owns nc.
func NewClient(nc net.Conn) *Client {
	c := &Client{
		nc:      nc,
		bw:      bufio.NewWriterSize(nc, 64<<10),
		pending: make(map[uint64]chan proto.Response),
	}
	go c.readLoop()
	return c
}

// Close tears the connection down. In-flight calls fail with the
// connection error.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	return c.nc.Close()
}

func (c *Client) readLoop() {
	br := bufio.NewReaderSize(c.nc, 64<<10)
	for {
		resp, err := proto.ReadResponse(br, 0)
		if err != nil {
			c.fail(err)
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[resp.Seq]
		delete(c.pending, resp.Seq)
		c.mu.Unlock()
		if ok {
			ch <- resp
		}
	}
}

// fail marks the connection dead and releases every waiter.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.closed && (errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed)) {
		err = net.ErrClosed
	}
	if c.err == nil {
		c.err = err
	}
	pending := c.pending
	c.pending = make(map[uint64]chan proto.Response)
	c.mu.Unlock()
	for _, ch := range pending {
		close(ch)
	}
}

// Do sends one raw command round trip: submission entry, payload page, and
// write data out; the completion and read payload back. Callers wanting
// typed errors use the helpers below; Do itself surfaces every completion,
// OK or not.
func (c *Client) Do(cmd [proto.CommandSize]byte, payload, data []byte) (proto.Response, error) {
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return proto.Response{}, err
	}
	if c.closed {
		c.mu.Unlock()
		return proto.Response{}, net.ErrClosed
	}
	c.seq++
	seq := c.seq
	ch := make(chan proto.Response, 1)
	c.pending[seq] = ch
	c.mu.Unlock()

	c.wmu.Lock()
	err := proto.WriteRequest(c.bw, proto.Request{Seq: seq, Cmd: cmd, Payload: payload, Data: data})
	if err == nil {
		err = c.bw.Flush()
	}
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, seq)
		c.mu.Unlock()
		return proto.Response{}, err
	}

	resp, ok := <-ch
	if !ok {
		c.mu.Lock()
		err := c.err
		c.mu.Unlock()
		if err == nil {
			err = io.ErrUnexpectedEOF
		}
		return proto.Response{}, err
	}
	return resp, nil
}

// do runs one command and converts a non-OK completion into a StatusError.
func (c *Client) do(op string, cmd [proto.CommandSize]byte, payload, data []byte) (proto.Response, error) {
	resp, err := c.Do(cmd, payload, data)
	if err != nil {
		return proto.Response{}, fmt.Errorf("ndsclient: %s: %w", op, err)
	}
	if resp.Cpl.Status != proto.StatusOK {
		return resp, &StatusError{Op: op, Status: resp.Cpl.Status}
	}
	return resp, nil
}

// CreateSpace creates a new space (open_space with the create flag) and
// returns its identifier plus the producer view's dynamic ID.
func (c *Client) CreateSpace(elemSize int, dims []int64) (space, view uint32, err error) {
	page, err := proto.SpacePayload{ElemSize: elemSize, Dims: dims}.Marshal()
	if err != nil {
		return 0, 0, err
	}
	resp, err := c.do("create_space", proto.NewOpenSpace(0, 0, true).Marshal(), page, nil)
	if err != nil {
		return 0, 0, err
	}
	return uint32(resp.Cpl.Result0), uint32(resp.Cpl.Result1), nil
}

// OpenView opens a view of an existing space with the given dimensionality.
// elemSize 0 skips element-size validation; a nonzero value must match the
// space's element size.
func (c *Client) OpenView(space uint32, elemSize int, dims []int64) (uint32, error) {
	page, err := proto.SpacePayload{ElemSize: elemSize, Dims: dims}.Marshal()
	if err != nil {
		return 0, err
	}
	resp, err := c.do("open_space", proto.NewOpenSpace(space, 0, false).Marshal(), page, nil)
	if err != nil {
		return 0, err
	}
	return uint32(resp.Cpl.Result1), nil
}

// Read fetches the partition at coord/sub through an open view.
func (c *Client) Read(view uint32, coord, sub []int64) ([]byte, error) {
	page, err := proto.CoordPayload{Coord: coord, Sub: sub}.Marshal()
	if err != nil {
		return nil, err
	}
	resp, err := c.do("nds_read", proto.NewRead(view, 0).Marshal(), page, nil)
	if err != nil {
		return nil, err
	}
	return resp.Data, nil
}

// Write stores data at the partition coord/sub through an open view.
func (c *Client) Write(view uint32, coord, sub []int64, data []byte) error {
	page, err := proto.CoordPayload{Coord: coord, Sub: sub}.Marshal()
	if err != nil {
		return err
	}
	_, err = c.do("nds_write", proto.NewWrite(view, 0).Marshal(), page, data)
	return err
}

// Scan executes a pushdown predicate scan over the partition at coord/sub
// through an open view: only matching (index, value) pairs cross the wire.
// The result is one page deep; a scan with more matches than fit reports the
// true total and a resume cursor (pass it as cursor to continue, 0 starts).
// max 0 fills the page. A server running with pushdown disabled answers
// StatusUnsupportedOp.
func (c *Client) Scan(view uint32, coord, sub []int64, lo, hi uint64, cursor int64, max uint32) (proto.ScanResultPayload, error) {
	page, err := proto.ScanPayload{Coord: coord, Sub: sub, Lo: lo, Hi: hi, Cursor: cursor, Max: max}.Marshal()
	if err != nil {
		return proto.ScanResultPayload{}, err
	}
	resp, err := c.do("pushdown_scan", proto.NewScan(view, 0).Marshal(), page, nil)
	if err != nil {
		return proto.ScanResultPayload{}, err
	}
	return proto.UnmarshalScanResultPayload(resp.Data)
}

// Reduce executes a pushdown reduction over the partition at coord/sub
// through an open view: only the scalar result (plus top-k entries for
// ReduceOpTopK) crosses the wire. pred non-nil restricts the reduction to
// elements in the inclusive range [pred[0], pred[1]]; for ReduceOpCount a
// nil pred counts nonzero elements. k names the top-k depth and must be zero
// for other ops.
func (c *Client) Reduce(view uint32, coord, sub []int64, op uint8, k uint32, pred *[2]uint64) (proto.ReduceResultPayload, error) {
	pl := proto.ReducePayload{Coord: coord, Sub: sub, Op: op, K: k}
	if pred != nil {
		pl.HasPred, pl.Lo, pl.Hi = true, pred[0], pred[1]
	}
	page, err := pl.Marshal()
	if err != nil {
		return proto.ReduceResultPayload{}, err
	}
	resp, err := c.do("pushdown_reduce", proto.NewReduce(view, 0).Marshal(), page, nil)
	if err != nil {
		return proto.ReduceResultPayload{}, err
	}
	return proto.UnmarshalReduceResultPayload(resp.Data)
}

// CloseView retires a dynamic view ID.
func (c *Client) CloseView(view uint32) error {
	_, err := c.do("close_space", proto.NewCloseSpace(view).Marshal(), nil, nil)
	return err
}

// DeleteSpace removes a space. The server retires every open view of it,
// this connection's and others', before the completion arrives.
func (c *Client) DeleteSpace(space uint32) error {
	_, err := c.do("delete_space", proto.NewDeleteSpace(space).Marshal(), nil, nil)
	return err
}

// Reliability fetches the device's fault/recovery report.
func (c *Client) Reliability() (proto.ReliabilityPayload, error) {
	resp, err := c.do("get_reliability", proto.NewReliability(0).Marshal(), nil, nil)
	if err != nil {
		return proto.ReliabilityPayload{}, err
	}
	return proto.UnmarshalReliabilityPayload(resp.Data)
}

// CacheStats fetches the device's building-block cache counters.
func (c *Client) CacheStats() (proto.CacheStatsPayload, error) {
	resp, err := c.do("get_cache_stats", proto.NewCacheStats(0).Marshal(), nil, nil)
	if err != nil {
		return proto.CacheStatsPayload{}, err
	}
	return proto.UnmarshalCacheStatsPayload(resp.Data)
}

// TenantStats fetches the device's per-tenant QoS accounting: one record per
// space (or space group) that has issued requests, truncated to a page if the
// device has more tenants than fit (Total carries the untruncated count).
// Empty when the server runs without tenant QoS.
func (c *Client) TenantStats() (proto.TenantStatsPayload, error) {
	resp, err := c.do("get_tenant_stats", proto.NewTenantStats(0).Marshal(), nil, nil)
	if err != nil {
		return proto.TenantStatsPayload{}, err
	}
	return proto.UnmarshalTenantStatsPayload(resp.Data)
}
