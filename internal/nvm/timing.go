package nvm

import "nds/internal/sim"

// Timing holds the latency parameters of the flash array.
//
// A page read occupies the bank for ReadPage (cell sensing), then the channel
// for the data transfer. A program occupies the channel first (data in), then
// the bank for ProgramPage. An erase occupies the bank for EraseBlock.
type Timing struct {
	ReadPage    sim.Time // cell-to-register sensing latency
	ProgramPage sim.Time // register-to-cell program latency
	EraseBlock  sim.Time // block erase latency
	ChannelBW   float64  // channel bus bandwidth, bytes/second
}

// TLCTiming are representative TLC-NAND parameters, in line with the
// 30-100 us page-read latency the paper cites (§7.3) and typical TLC program
// and erase figures.
func TLCTiming() Timing {
	return Timing{
		ReadPage:    55 * sim.Microsecond,
		ProgramPage: 660 * sim.Microsecond,
		EraseBlock:  3 * sim.Millisecond,
		ChannelBW:   800e6, // ONFI-class bus: 800 MB/s per channel
	}
}

// TransferTime is the channel-bus occupancy of one page of n bytes.
func (t Timing) TransferTime(n int) sim.Time {
	return sim.TransferTime(int64(n), t.ChannelBW)
}
