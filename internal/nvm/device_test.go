package nvm

import (
	"bytes"
	"testing"
	"testing/quick"

	"nds/internal/sim"
)

func testGeo() Geometry {
	return Geometry{Channels: 4, Banks: 2, BlocksPerBank: 8, PagesPerBlock: 16, PageSize: 512}
}

func newTestDevice(t *testing.T, phantom bool) *Device {
	t.Helper()
	d, err := NewDevice(testGeo(), TLCTiming(), phantom)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestGeometryValidate(t *testing.T) {
	good := testGeo()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid geometry rejected: %v", err)
	}
	bad := []Geometry{
		{0, 2, 8, 16, 512},
		{4, 0, 8, 16, 512},
		{4, 2, 0, 16, 512},
		{4, 2, 8, 0, 512},
		{4, 2, 8, 16, 0},
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("bad geometry %d accepted", i)
		}
	}
}

func TestGeometryCapacity(t *testing.T) {
	g := testGeo()
	if got, want := g.TotalPages(), int64(4*2*8*16); got != want {
		t.Fatalf("TotalPages = %d, want %d", got, want)
	}
	if got, want := g.Capacity(), int64(4*2*8*16*512); got != want {
		t.Fatalf("Capacity = %d, want %d", got, want)
	}
}

func TestPPALinearRoundTrip(t *testing.T) {
	g := testGeo()
	f := func(c, b, blk, pg uint8) bool {
		p := PPA{
			Channel: int(c) % g.Channels,
			Bank:    int(b) % g.Banks,
			Block:   int(blk) % g.BlocksPerBank,
			Page:    int(pg) % g.PagesPerBlock,
		}
		return FromLinear(g, p.Linear(g)) == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPPALinearDense(t *testing.T) {
	g := testGeo()
	seen := make(map[int64]bool)
	for c := 0; c < g.Channels; c++ {
		for b := 0; b < g.Banks; b++ {
			for blk := 0; blk < g.BlocksPerBank; blk++ {
				for pg := 0; pg < g.PagesPerBlock; pg++ {
					idx := PPA{c, b, blk, pg}.Linear(g)
					if idx < 0 || idx >= g.TotalPages() {
						t.Fatalf("linear index %d out of range", idx)
					}
					if seen[idx] {
						t.Fatalf("linear index %d duplicated", idx)
					}
					seen[idx] = true
				}
			}
		}
	}
}

func TestProgramReadRoundTrip(t *testing.T) {
	d := newTestDevice(t, false)
	p := PPA{Channel: 1, Bank: 1, Block: 2, Page: 3}
	payload := bytes.Repeat([]byte{0xAB}, 512)
	if _, err := d.ProgramPage(0, p, payload); err != nil {
		t.Fatal(err)
	}
	got, _, err := d.ReadPage(0, p)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("read data does not match programmed data")
	}
}

func TestReadUnprogrammedIsZero(t *testing.T) {
	d := newTestDevice(t, false)
	got, _, err := d.ReadPage(0, PPA{0, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 512 || !bytes.Equal(got, make([]byte, 512)) {
		t.Fatal("unprogrammed page should read as zeros")
	}
}

func TestNoInPlaceOverwrite(t *testing.T) {
	d := newTestDevice(t, false)
	p := PPA{0, 0, 0, 0}
	if _, err := d.ProgramPage(0, p, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ProgramPage(0, p, []byte{2}); err == nil {
		t.Fatal("second program to same page must fail (flash rule)")
	}
	// After an erase the page is reusable.
	if _, err := d.EraseBlock(0, p); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ProgramPage(0, p, []byte{3}); err != nil {
		t.Fatalf("program after erase failed: %v", err)
	}
	if d.EraseCount(p) != 1 {
		t.Fatalf("erase count = %d, want 1", d.EraseCount(p))
	}
}

func TestEraseClearsData(t *testing.T) {
	d := newTestDevice(t, false)
	p := PPA{2, 0, 3, 5}
	if _, err := d.ProgramPage(0, p, []byte{9, 9}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.EraseBlock(0, p); err != nil {
		t.Fatal(err)
	}
	got, _, _ := d.ReadPage(0, p)
	if !bytes.Equal(got, make([]byte, 512)) {
		t.Fatal("erased page should read as zeros")
	}
	if d.Programmed(p) {
		t.Fatal("erased page should not be programmed")
	}
}

func TestInvalidAddressesRejected(t *testing.T) {
	d := newTestDevice(t, false)
	bad := PPA{Channel: 99}
	if _, _, err := d.ReadPage(0, bad); err == nil {
		t.Error("read of invalid PPA should fail")
	}
	if _, err := d.ProgramPage(0, bad, nil); err == nil {
		t.Error("program of invalid PPA should fail")
	}
	if _, err := d.ProgramPage(0, PPA{0, 0, 0, 0}, make([]byte, 513)); err == nil {
		t.Error("oversized program should fail")
	}
}

func TestChannelParallelism(t *testing.T) {
	// Reads spread over distinct channels complete in ~one page latency;
	// reads queued on a single channel's bank serialize on the bank.
	d := newTestDevice(t, true)
	tim := d.Timing()
	perPage := tim.ReadPage + tim.TransferTime(512)

	var doneSpread sim.Time
	for c := 0; c < 4; c++ {
		_, done, err := d.ReadPage(0, PPA{Channel: c})
		if err != nil {
			t.Fatal(err)
		}
		doneSpread = sim.Max(doneSpread, done)
	}
	if doneSpread != perPage {
		t.Fatalf("4 reads on 4 channels took %v, want %v", doneSpread, perPage)
	}

	d2 := newTestDevice(t, true)
	var doneSerial sim.Time
	for i := 0; i < 4; i++ {
		_, done, err := d2.ReadPage(0, PPA{Channel: 0, Page: i})
		if err != nil {
			t.Fatal(err)
		}
		doneSerial = sim.Max(doneSerial, done)
	}
	// All four sense on the same bank: at least 4x the sense latency.
	if doneSerial < 4*tim.ReadPage {
		t.Fatalf("4 reads on one bank took %v, want >= %v", doneSerial, 4*tim.ReadPage)
	}
	if doneSerial <= doneSpread {
		t.Fatal("serialized reads should be slower than spread reads")
	}
}

func TestBankParallelismWithinChannel(t *testing.T) {
	// Two banks on one channel overlap sensing; only the bus serializes.
	d := newTestDevice(t, true)
	tim := d.Timing()
	var done sim.Time
	for b := 0; b < 2; b++ {
		_, dn, err := d.ReadPage(0, PPA{Channel: 0, Bank: b})
		if err != nil {
			t.Fatal(err)
		}
		done = sim.Max(done, dn)
	}
	want := tim.ReadPage + 2*tim.TransferTime(512)
	if done != want {
		t.Fatalf("2-bank read took %v, want %v (sense overlapped, bus serialized)", done, want)
	}
}

func TestPhantomStoresNoData(t *testing.T) {
	d := newTestDevice(t, true)
	p := PPA{0, 0, 0, 0}
	if _, err := d.ProgramPage(0, p, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	data, _, err := d.ReadPage(0, p)
	if err != nil {
		t.Fatal(err)
	}
	if data != nil {
		t.Fatal("phantom read should return nil data")
	}
	if !d.Programmed(p) {
		t.Fatal("phantom device must still track programmed state")
	}
}

func TestCountersAndTimeline(t *testing.T) {
	d := newTestDevice(t, false)
	p := PPA{0, 0, 0, 0}
	_, _ = d.ProgramPage(0, p, []byte{1})
	_, _, _ = d.ReadPage(0, p)
	_, _ = d.EraseBlock(0, p)
	r, w, e := d.Counters()
	if r != 1 || w != 1 || e != 1 {
		t.Fatalf("counters = %d,%d,%d, want 1,1,1", r, w, e)
	}
	if d.NextIdle() == 0 {
		t.Fatal("device should be busy after operations")
	}
	d.ResetTimeline()
	if d.NextIdle() != 0 {
		t.Fatal("ResetTimeline should clear resource timelines")
	}
}
