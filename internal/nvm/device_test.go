package nvm

import (
	"bytes"
	"testing"
	"testing/quick"

	"nds/internal/sim"
)

func testGeo() Geometry {
	return Geometry{Channels: 4, Banks: 2, BlocksPerBank: 8, PagesPerBlock: 16, PageSize: 512}
}

func newTestDevice(t *testing.T, phantom bool) *Device {
	t.Helper()
	d, err := NewDevice(testGeo(), TLCTiming(), phantom)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestGeometryValidate(t *testing.T) {
	good := testGeo()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid geometry rejected: %v", err)
	}
	bad := []Geometry{
		{0, 2, 8, 16, 512},
		{4, 0, 8, 16, 512},
		{4, 2, 0, 16, 512},
		{4, 2, 8, 0, 512},
		{4, 2, 8, 16, 0},
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("bad geometry %d accepted", i)
		}
	}
}

func TestGeometryCapacity(t *testing.T) {
	g := testGeo()
	if got, want := g.TotalPages(), int64(4*2*8*16); got != want {
		t.Fatalf("TotalPages = %d, want %d", got, want)
	}
	if got, want := g.Capacity(), int64(4*2*8*16*512); got != want {
		t.Fatalf("Capacity = %d, want %d", got, want)
	}
}

func TestPPALinearRoundTrip(t *testing.T) {
	g := testGeo()
	f := func(c, b, blk, pg uint8) bool {
		p := PPA{
			Channel: int(c) % g.Channels,
			Bank:    int(b) % g.Banks,
			Block:   int(blk) % g.BlocksPerBank,
			Page:    int(pg) % g.PagesPerBlock,
		}
		return FromLinear(g, p.Linear(g)) == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPPALinearDense(t *testing.T) {
	g := testGeo()
	seen := make(map[int64]bool)
	for c := 0; c < g.Channels; c++ {
		for b := 0; b < g.Banks; b++ {
			for blk := 0; blk < g.BlocksPerBank; blk++ {
				for pg := 0; pg < g.PagesPerBlock; pg++ {
					idx := PPA{c, b, blk, pg}.Linear(g)
					if idx < 0 || idx >= g.TotalPages() {
						t.Fatalf("linear index %d out of range", idx)
					}
					if seen[idx] {
						t.Fatalf("linear index %d duplicated", idx)
					}
					seen[idx] = true
				}
			}
		}
	}
}

func TestProgramReadRoundTrip(t *testing.T) {
	d := newTestDevice(t, false)
	p := PPA{Channel: 1, Bank: 1, Block: 2, Page: 3}
	payload := bytes.Repeat([]byte{0xAB}, 512)
	if _, err := d.ProgramPage(0, p, payload); err != nil {
		t.Fatal(err)
	}
	got, _, err := d.ReadPage(0, p)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("read data does not match programmed data")
	}
}

func TestReadUnprogrammedIsZero(t *testing.T) {
	d := newTestDevice(t, false)
	got, _, err := d.ReadPage(0, PPA{0, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 512 || !bytes.Equal(got, make([]byte, 512)) {
		t.Fatal("unprogrammed page should read as zeros")
	}
}

func TestNoInPlaceOverwrite(t *testing.T) {
	d := newTestDevice(t, false)
	p := PPA{0, 0, 0, 0}
	if _, err := d.ProgramPage(0, p, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ProgramPage(0, p, []byte{2}); err == nil {
		t.Fatal("second program to same page must fail (flash rule)")
	}
	// After an erase the page is reusable.
	if _, err := d.EraseBlock(0, p); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ProgramPage(0, p, []byte{3}); err != nil {
		t.Fatalf("program after erase failed: %v", err)
	}
	if d.EraseCount(p) != 1 {
		t.Fatalf("erase count = %d, want 1", d.EraseCount(p))
	}
}

func TestEraseClearsData(t *testing.T) {
	d := newTestDevice(t, false)
	p := PPA{2, 0, 3, 5}
	if _, err := d.ProgramPage(0, p, []byte{9, 9}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.EraseBlock(0, p); err != nil {
		t.Fatal(err)
	}
	got, _, _ := d.ReadPage(0, p)
	if !bytes.Equal(got, make([]byte, 512)) {
		t.Fatal("erased page should read as zeros")
	}
	if d.Programmed(p) {
		t.Fatal("erased page should not be programmed")
	}
}

func TestInvalidAddressesRejected(t *testing.T) {
	d := newTestDevice(t, false)
	bad := PPA{Channel: 99}
	if _, _, err := d.ReadPage(0, bad); err == nil {
		t.Error("read of invalid PPA should fail")
	}
	if _, err := d.ProgramPage(0, bad, nil); err == nil {
		t.Error("program of invalid PPA should fail")
	}
	if _, err := d.ProgramPage(0, PPA{0, 0, 0, 0}, make([]byte, 513)); err == nil {
		t.Error("oversized program should fail")
	}
}

func TestChannelParallelism(t *testing.T) {
	// Reads spread over distinct channels complete in ~one page latency;
	// reads queued on a single channel's bank serialize on the bank.
	d := newTestDevice(t, true)
	tim := d.Timing()
	perPage := tim.ReadPage + tim.TransferTime(512)

	var doneSpread sim.Time
	for c := 0; c < 4; c++ {
		_, done, err := d.ReadPage(0, PPA{Channel: c})
		if err != nil {
			t.Fatal(err)
		}
		doneSpread = sim.Max(doneSpread, done)
	}
	if doneSpread != perPage {
		t.Fatalf("4 reads on 4 channels took %v, want %v", doneSpread, perPage)
	}

	d2 := newTestDevice(t, true)
	var doneSerial sim.Time
	for i := 0; i < 4; i++ {
		_, done, err := d2.ReadPage(0, PPA{Channel: 0, Page: i})
		if err != nil {
			t.Fatal(err)
		}
		doneSerial = sim.Max(doneSerial, done)
	}
	// All four sense on the same bank: at least 4x the sense latency.
	if doneSerial < 4*tim.ReadPage {
		t.Fatalf("4 reads on one bank took %v, want >= %v", doneSerial, 4*tim.ReadPage)
	}
	if doneSerial <= doneSpread {
		t.Fatal("serialized reads should be slower than spread reads")
	}
}

func TestBankParallelismWithinChannel(t *testing.T) {
	// Two banks on one channel overlap sensing; only the bus serializes.
	d := newTestDevice(t, true)
	tim := d.Timing()
	var done sim.Time
	for b := 0; b < 2; b++ {
		_, dn, err := d.ReadPage(0, PPA{Channel: 0, Bank: b})
		if err != nil {
			t.Fatal(err)
		}
		done = sim.Max(done, dn)
	}
	want := tim.ReadPage + 2*tim.TransferTime(512)
	if done != want {
		t.Fatalf("2-bank read took %v, want %v (sense overlapped, bus serialized)", done, want)
	}
}

func TestPhantomStoresNoData(t *testing.T) {
	d := newTestDevice(t, true)
	p := PPA{0, 0, 0, 0}
	if _, err := d.ProgramPage(0, p, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	data, _, err := d.ReadPage(0, p)
	if err != nil {
		t.Fatal(err)
	}
	if data != nil {
		t.Fatal("phantom read should return nil data")
	}
	if !d.Programmed(p) {
		t.Fatal("phantom device must still track programmed state")
	}
}

func TestCountersAndTimeline(t *testing.T) {
	d := newTestDevice(t, false)
	p := PPA{0, 0, 0, 0}
	_, _ = d.ProgramPage(0, p, []byte{1})
	_, _, _ = d.ReadPage(0, p)
	_, _ = d.EraseBlock(0, p)
	r, w, e := d.Counters()
	if r != 1 || w != 1 || e != 1 {
		t.Fatalf("counters = %d,%d,%d, want 1,1,1", r, w, e)
	}
	if d.NextIdle() == 0 {
		t.Fatal("device should be busy after operations")
	}
	d.ResetTimeline()
	if d.NextIdle() != 0 {
		t.Fatal("ResetTimeline should clear resource timelines")
	}
}

// TestBatchMatchesScalar: ReadPages/ProgramPages against one device must be
// timing- and data-identical to per-page ReadPage/ProgramPage calls in the
// same order against a twin device.
func TestBatchMatchesScalar(t *testing.T) {
	batched := newTestDevice(t, false)
	scalar := newTestDevice(t, false)

	// Addresses spanning several dies, deliberately not die-sorted.
	ppas := []PPA{
		{0, 0, 0, 0}, {1, 1, 2, 3}, {0, 0, 0, 1}, {3, 0, 7, 15},
		{1, 1, 2, 4}, {2, 1, 4, 0}, {0, 1, 0, 0},
	}
	ops := make([]ProgramOp, len(ppas))
	for i, p := range ppas {
		data := bytes.Repeat([]byte{byte(i + 1)}, 512)
		ops[i] = ProgramOp{At: sim.Time(i * 100), P: p, Data: data}
	}

	doneB, err := batched.ProgramPages(ops)
	if err != nil {
		t.Fatal(err)
	}
	var doneS sim.Time
	for _, op := range ops {
		end, err := scalar.ProgramPage(op.At, op.P, op.Data)
		if err != nil {
			t.Fatal(err)
		}
		doneS = sim.Max(doneS, end)
	}
	if doneB != doneS {
		t.Fatalf("program completion: batched %v scalar %v", doneB, doneS)
	}

	out := make([][]byte, len(ppas))
	rDoneB, err := batched.ReadPages(doneB, ppas, out)
	if err != nil {
		t.Fatal(err)
	}
	var rDoneS sim.Time
	for i, p := range ppas {
		data, end, err := scalar.ReadPage(doneS, p)
		if err != nil {
			t.Fatal(err)
		}
		rDoneS = sim.Max(rDoneS, end)
		if !bytes.Equal(out[i], data) {
			t.Fatalf("page %d: batched bytes differ from scalar", i)
		}
		if !bytes.Equal(data, ops[i].Data) {
			t.Fatalf("page %d: read-back differs from programmed data", i)
		}
	}
	if rDoneB != rDoneS {
		t.Fatalf("read completion: batched %v scalar %v", rDoneB, rDoneS)
	}

	rb, wb, _ := batched.Counters()
	rs, ws, _ := scalar.Counters()
	if rb != rs || wb != ws {
		t.Fatalf("counters diverge: batched %d/%d scalar %d/%d", rb, wb, rs, ws)
	}
}

// TestProgramPagesAtomicOnError: a batch containing an invalid op must leave
// the device untouched — no programmed bits, no timeline slots, no counters.
func TestProgramPagesAtomicOnError(t *testing.T) {
	page := bytes.Repeat([]byte{0xCD}, 512)
	bad := []struct {
		name string
		mk   func(d *Device) []ProgramOp
	}{
		{"invalid address", func(d *Device) []ProgramOp {
			return []ProgramOp{
				{0, PPA{0, 0, 0, 0}, page},
				{0, PPA{9, 9, 9, 9}, page},
			}
		}},
		{"oversized data", func(d *Device) []ProgramOp {
			return []ProgramOp{
				{0, PPA{0, 0, 0, 0}, page},
				{0, PPA{1, 0, 0, 0}, make([]byte, 513)},
			}
		}},
		{"already programmed", func(d *Device) []ProgramOp {
			if _, err := d.ProgramPage(0, PPA{2, 0, 1, 0}, page); err != nil {
				t.Fatal(err)
			}
			d.ResetTimeline()
			return []ProgramOp{
				{0, PPA{0, 0, 0, 0}, page},
				{0, PPA{0, 0, 0, 1}, page},
				{0, PPA{2, 0, 1, 0}, page},
			}
		}},
		{"duplicate in batch", func(d *Device) []ProgramOp {
			return []ProgramOp{
				{0, PPA{0, 0, 0, 0}, page},
				{0, PPA{0, 0, 0, 0}, page},
			}
		}},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			d := newTestDevice(t, false)
			ops := tc.mk(d)
			_, progsBefore, _ := d.Counters()
			if _, err := d.ProgramPages(ops); err == nil {
				t.Fatal("invalid batch accepted")
			}
			for _, op := range ops {
				if op.P.Valid(d.geo) && op.P != (PPA{2, 0, 1, 0}) && d.Programmed(op.P) {
					t.Fatalf("failed batch left %v programmed", op.P)
				}
			}
			if _, progs, _ := d.Counters(); progs != progsBefore {
				t.Fatalf("failed batch bumped program counter %d -> %d", progsBefore, progs)
			}
			if d.NextIdle() != 0 {
				t.Fatal("failed batch reserved timeline slots")
			}
		})
	}
}
