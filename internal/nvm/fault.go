package nvm

import (
	"errors"
	"fmt"
	"sync/atomic"

	"nds/internal/sim"
)

// Deterministic flash fault injection. Real NAND fails: pages refuse to
// program, blocks refuse to erase, cells drift until reads need extra ECC
// sensing passes, and every block wears out after a bounded number of
// program/erase cycles. A FaultPlan makes the simulated array exhibit those
// behaviours at deterministic, seed-derived points so the translation layer's
// recovery machinery can be exercised and replayed exactly.
//
// Every trigger is a per-die operation counter compared against a seed-derived
// per-die phase, so two devices built with the same geometry and plan fail at
// identical points when driven by identical operation sequences — the property
// the fault-matrix tests rely on. With no plan installed (the default) the
// data path pays a single nil check per operation and timing is bit-identical
// to a device without the feature.

// Fault sentinels. Callers classify device failures with errors.Is: a fault
// is a media condition the STL is expected to recover from, unlike the
// flash-rule violations (program of a programmed page, invalid address) that
// indicate translation-layer bugs.
var (
	// ErrProgramFault: the program operation failed its status check. The
	// target page is consumed (its content is indeterminate and it may not be
	// programmed again before an erase) and the block should be retired.
	ErrProgramFault = errors.New("nvm: program fault")
	// ErrEraseFault: the erase operation failed. The block's contents are
	// unchanged but the block is unreliable and should be retired.
	ErrEraseFault = errors.New("nvm: erase fault")
	// ErrWornOut: the block exceeded its endurance limit; erases fail
	// permanently from now on.
	ErrWornOut = errors.New("nvm: block worn out")
)

// ProgramError reports a program fault within a (possibly batched) program
// operation: which op failed, where, and when the failed attempt completed on
// the device timelines. Ops before Index completed normally; ops after Index
// were not attempted (their pages remain unprogrammed). It unwraps to
// ErrProgramFault.
type ProgramError struct {
	Index int      // failing op's position in the batch (0 for scalar programs)
	P     PPA      // the consumed page
	Done  sim.Time // completion time of the failed attempt
}

func (e *ProgramError) Error() string {
	return fmt.Sprintf("nvm: program fault at %v (op %d)", e.P, e.Index)
}

func (e *ProgramError) Unwrap() error { return ErrProgramFault }

// FaultPlan configures deterministic fault injection. Zero values disable
// each mechanism; the zero plan disables injection entirely.
type FaultPlan struct {
	// Seed phases each die's fault points so faults spread across the array
	// instead of striking every die's Nth operation in lockstep.
	Seed int64
	// ProgramFailEvery N > 0 fails one in every N program attempts on each
	// die (the Nth attempt, offset by a seed-derived per-die phase).
	ProgramFailEvery int64
	// EraseFailEvery N > 0 fails one in every N erase attempts on each die.
	EraseFailEvery int64
	// ReadRetryEvery N > 0 makes one in every N page reads on each die need
	// ECC retry: the read succeeds but occupies the bank for extra sensing
	// passes.
	ReadRetryEvery int64
	// ReadRetrySenses is the number of extra sensing passes a retried read
	// performs (default 2 when ReadRetryEvery is set).
	ReadRetrySenses int
	// EnduranceLimit E > 0 wears a block out after E successful erases:
	// further erase attempts fail with ErrWornOut.
	EnduranceLimit int64
}

// Enabled reports whether the plan injects anything.
func (p FaultPlan) Enabled() bool {
	return p.ProgramFailEvery > 0 || p.EraseFailEvery > 0 ||
		p.ReadRetryEvery > 0 || p.EnduranceLimit > 0
}

// FaultStats counts injected fault events over the device lifetime.
type FaultStats struct {
	ProgramFaults int64 // failed program attempts
	EraseFaults   int64 // failed erase attempts (transient faults)
	WearoutFaults int64 // erase attempts refused because the block is worn out
	ReadRetries   int64 // reads that needed ECC retry sensing
}

// faultState is the device-side injection engine: the plan plus seed-derived
// per-die phases and global event counters. Per-die attempt counters live in
// the die shards (guarded by the shard lock) so injection points are
// deterministic per die regardless of cross-die interleaving.
type faultState struct {
	plan     FaultPlan
	progOff  []int64 // per-die phase into the program-fail cycle
	eraseOff []int64
	readOff  []int64

	programFaults atomic.Int64
	eraseFaults   atomic.Int64
	wearoutFaults atomic.Int64
	readRetries   atomic.Int64
}

// mix64 is a splitmix64-style hash of the plan seed and a die index, used to
// derive per-die phases.
func mix64(seed int64, die int, salt uint64) uint64 {
	z := uint64(seed)*0x9e3779b97f4a7c15 + uint64(die+1) + salt*0x2545f4914f6cdd1d
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func newFaultState(plan FaultPlan, dies int) *faultState {
	if plan.ReadRetryEvery > 0 && plan.ReadRetrySenses <= 0 {
		plan.ReadRetrySenses = 2
	}
	f := &faultState{
		plan:     plan,
		progOff:  make([]int64, dies),
		eraseOff: make([]int64, dies),
		readOff:  make([]int64, dies),
	}
	for d := 0; d < dies; d++ {
		if n := plan.ProgramFailEvery; n > 0 {
			f.progOff[d] = int64(mix64(plan.Seed, d, 1) % uint64(n))
		}
		if n := plan.EraseFailEvery; n > 0 {
			f.eraseOff[d] = int64(mix64(plan.Seed, d, 2) % uint64(n))
		}
		if n := plan.ReadRetryEvery; n > 0 {
			f.readOff[d] = int64(mix64(plan.Seed, d, 3) % uint64(n))
		}
	}
	return f
}

// programFails reports whether program attempt n (0-based) on die fails.
func (f *faultState) programFails(die int, n int64) bool {
	N := f.plan.ProgramFailEvery
	return N > 0 && (n+f.progOff[die])%N == N-1
}

// eraseFails reports whether erase attempt n (0-based) on die fails.
func (f *faultState) eraseFails(die int, n int64) bool {
	N := f.plan.EraseFailEvery
	return N > 0 && (n+f.eraseOff[die])%N == N-1
}

// readRetries reports whether read n (0-based) on die needs ECC retry.
func (f *faultState) readNeedsRetry(die int, n int64) bool {
	N := f.plan.ReadRetryEvery
	return N > 0 && (n+f.readOff[die])%N == N-1
}

// wornOut reports whether a block with the given erase count refuses erases.
func (f *faultState) wornOut(eraseCount int64) bool {
	return f.plan.EnduranceLimit > 0 && eraseCount >= f.plan.EnduranceLimit
}

// SetFaultPlan installs a fault-injection plan. Installing a disabled plan
// removes injection. Intended to be called before traffic starts; attempt
// counters begin at the installation point.
func (d *Device) SetFaultPlan(p FaultPlan) {
	d.cfgMu.Lock()
	defer d.cfgMu.Unlock()
	if !p.Enabled() {
		d.faults.Store((*faultState)(nil))
		return
	}
	d.faults.Store(newFaultState(p, d.geo.Channels*d.geo.Banks))
}

// faultPlan returns the active injection engine, nil when disabled.
func (d *Device) faultPlan() *faultState {
	f, _ := d.faults.Load().(*faultState)
	return f
}

// FaultStats reports injected fault events so far (zero when no plan is
// installed).
func (d *Device) FaultStats() FaultStats {
	f := d.faultPlan()
	if f == nil {
		return FaultStats{}
	}
	return FaultStats{
		ProgramFaults: f.programFaults.Load(),
		EraseFaults:   f.eraseFaults.Load(),
		WearoutFaults: f.wearoutFaults.Load(),
		ReadRetries:   f.readRetries.Load(),
	}
}
