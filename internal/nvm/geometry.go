// Package nvm models a multi-channel, multi-bank NAND flash array: the memory
// substrate beneath both the baseline SSD's FTL and the NDS space-translation
// layer. The model enforces flash programming rules (no in-place overwrite,
// erase-before-reuse at block granularity), tracks wear, stores real page
// bytes for correctness testing (or runs "phantom" without data at paper
// scale), and schedules every operation on per-channel and per-bank resources
// so that achieved parallelism falls out of the timing model rather than
// being assumed.
package nvm

import "fmt"

// Geometry describes the physical organisation of the array.
type Geometry struct {
	Channels      int // parallel channels; all can accept unique requests simultaneously
	Banks         int // banks (dies) per channel; busy independently of each other
	BlocksPerBank int // erase blocks per (channel, bank)
	PagesPerBlock int // program/read units per erase block
	PageSize      int // bytes per page
}

// Validate reports whether the geometry is usable.
func (g Geometry) Validate() error {
	switch {
	case g.Channels <= 0:
		return fmt.Errorf("nvm: geometry needs at least one channel, got %d", g.Channels)
	case g.Banks <= 0:
		return fmt.Errorf("nvm: geometry needs at least one bank, got %d", g.Banks)
	case g.BlocksPerBank <= 0:
		return fmt.Errorf("nvm: geometry needs at least one block per bank, got %d", g.BlocksPerBank)
	case g.PagesPerBlock <= 0:
		return fmt.Errorf("nvm: geometry needs at least one page per block, got %d", g.PagesPerBlock)
	case g.PageSize <= 0:
		return fmt.Errorf("nvm: geometry needs a positive page size, got %d", g.PageSize)
	}
	return nil
}

// PagesPerBank is the page count in one (channel, bank) pair.
func (g Geometry) PagesPerBank() int64 {
	return int64(g.BlocksPerBank) * int64(g.PagesPerBlock)
}

// TotalPages is the page count of the whole array.
func (g Geometry) TotalPages() int64 {
	return int64(g.Channels) * int64(g.Banks) * g.PagesPerBank()
}

// Capacity is the raw byte capacity of the array.
func (g Geometry) Capacity() int64 {
	return g.TotalPages() * int64(g.PageSize)
}

// String summarises the geometry.
func (g Geometry) String() string {
	return fmt.Sprintf("%dch x %dbank x %dblk x %dpg x %dB (%.1f GiB)",
		g.Channels, g.Banks, g.BlocksPerBank, g.PagesPerBlock, g.PageSize,
		float64(g.Capacity())/(1<<30))
}

// PPA is a physical page address.
type PPA struct {
	Channel int
	Bank    int
	Block   int
	Page    int
}

// Valid reports whether p addresses a page within g.
func (p PPA) Valid(g Geometry) bool {
	return p.Channel >= 0 && p.Channel < g.Channels &&
		p.Bank >= 0 && p.Bank < g.Banks &&
		p.Block >= 0 && p.Block < g.BlocksPerBank &&
		p.Page >= 0 && p.Page < g.PagesPerBlock
}

// Linear flattens p to a dense index in [0, g.TotalPages()).
// Layout: channel-major, then bank, block, page.
func (p PPA) Linear(g Geometry) int64 {
	return ((int64(p.Channel)*int64(g.Banks)+int64(p.Bank))*int64(g.BlocksPerBank)+
		int64(p.Block))*int64(g.PagesPerBlock) + int64(p.Page)
}

// FromLinear reconstructs the PPA for a dense index.
func FromLinear(g Geometry, idx int64) PPA {
	page := idx % int64(g.PagesPerBlock)
	idx /= int64(g.PagesPerBlock)
	block := idx % int64(g.BlocksPerBank)
	idx /= int64(g.BlocksPerBank)
	bank := idx % int64(g.Banks)
	idx /= int64(g.Banks)
	return PPA{Channel: int(idx), Bank: int(bank), Block: int(block), Page: int(page)}
}

// String formats the address.
func (p PPA) String() string {
	return fmt.Sprintf("ch%d/bk%d/blk%d/pg%d", p.Channel, p.Bank, p.Block, p.Page)
}
