package nvm

import (
	"fmt"
	"sync"

	"nds/internal/sim"
)

// PageCipher is an inline encryption engine (§5.3.3): a size-preserving
// transformation applied per basic access unit, keyed by physical address.
// Datacenter controllers run these at line rate, so no extra latency is
// modelled.
type PageCipher interface {
	Seal(p PPA, plain []byte) []byte
	Open(p PPA, sealed []byte) []byte
}

// Device is a simulated flash array. It is safe for concurrent use: each
// channel and bank timeline carries its own lock (per-die in-flight
// tracking), so operations from concurrent request streams overlap when they
// target distinct dies and queue behind each other when they collide; a
// device-level lock guards the programmed bitmap, stored bytes, and
// counters. Callers remain responsible for flash-rule discipline (no two
// concurrent programs of the same page) — in this repository the STL's
// exclusive write path guarantees it.
type Device struct {
	geo Geometry
	tim Timing

	cipher PageCipher

	// Phantom devices skip byte storage so paper-scale datasets can be
	// simulated without allocating their contents. State (programmed bits,
	// wear) and timing are still fully tracked.
	phantom bool

	channels []*sim.Resource
	banks    []*sim.Resource // indexed channel*Banks+bank

	mu         sync.Mutex       // guards all fields below
	programmed []uint64         // bitmap over linear PPAs
	data       map[int64][]byte // linear PPA -> page contents (nil in phantom mode)
	eraseCount []int64          // per linear block index
	reads      int64
	programs   int64
	erases     int64
}

// NewDevice builds a device with the given geometry and timing. If phantom is
// true the device tracks state and timing but stores no page bytes.
func NewDevice(geo Geometry, tim Timing, phantom bool) (*Device, error) {
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	d := &Device{
		geo:        geo,
		tim:        tim,
		phantom:    phantom,
		channels:   make([]*sim.Resource, geo.Channels),
		banks:      make([]*sim.Resource, geo.Channels*geo.Banks),
		programmed: make([]uint64, (geo.TotalPages()+63)/64),
		eraseCount: make([]int64, int64(geo.Channels)*int64(geo.Banks)*int64(geo.BlocksPerBank)),
	}
	if !phantom {
		d.data = make(map[int64][]byte)
	}
	for c := range d.channels {
		d.channels[c] = sim.NewResource(fmt.Sprintf("channel%d", c))
	}
	for i := range d.banks {
		d.banks[i] = sim.NewResource(fmt.Sprintf("bank%d.%d", i/geo.Banks, i%geo.Banks))
	}
	return d, nil
}

// Geometry returns the device geometry.
func (d *Device) Geometry() Geometry { return d.geo }

// Timing returns the device timing parameters.
func (d *Device) Timing() Timing { return d.tim }

// Phantom reports whether the device stores page bytes.
func (d *Device) Phantom() bool { return d.phantom }

// SetCipher installs an inline encryption engine. All subsequent programs
// store sealed bytes; reads return plaintext. Installing a cipher on a
// device that already holds data would make that data unreadable, so it is
// rejected.
func (d *Device) SetCipher(c PageCipher) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.programs > 0 {
		return fmt.Errorf("nvm: cannot install cipher on a device with programmed data")
	}
	d.cipher = c
	return nil
}

// RawPage exposes the bytes on the medium (post-cipher) for inspection; nil
// if the page is unprogrammed or the device is phantom. Test/diagnostic use.
func (d *Device) RawPage(p PPA) []byte {
	if d.phantom || !p.Valid(d.geo) {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.data[p.Linear(d.geo)]
}

func (d *Device) bank(p PPA) *sim.Resource {
	return d.banks[p.Channel*d.geo.Banks+p.Bank]
}

func (d *Device) blockIndex(p PPA) int64 {
	return (int64(p.Channel)*int64(d.geo.Banks)+int64(p.Bank))*int64(d.geo.BlocksPerBank) + int64(p.Block)
}

func (d *Device) isProgrammed(idx int64) bool {
	return d.programmed[idx/64]&(1<<(uint(idx)%64)) != 0
}

func (d *Device) setProgrammed(idx int64, v bool) {
	if v {
		d.programmed[idx/64] |= 1 << (uint(idx) % 64)
	} else {
		d.programmed[idx/64] &^= 1 << (uint(idx) % 64)
	}
}

// Programmed reports whether the page at p has been programmed since its
// block was last erased.
func (d *Device) Programmed(p PPA) bool {
	if !p.Valid(d.geo) {
		return false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.isProgrammed(p.Linear(d.geo))
}

// ReadPage senses the page at p (arriving at time at) and returns its
// contents and the completion time. Reading a never-programmed page is legal
// and yields a zero-filled page (erased state).
//
// The returned slice aliases device storage; callers must not modify it.
// Pages are never mutated in place (overwrites program a fresh unit), so the
// alias stays valid even when other streams write concurrently.
func (d *Device) ReadPage(at sim.Time, p PPA) ([]byte, sim.Time, error) {
	if !p.Valid(d.geo) {
		return nil, at, fmt.Errorf("nvm: read of invalid address %v", p)
	}
	_, senseEnd := d.bank(p).Acquire(at, d.tim.ReadPage)
	_, done := d.channels[p.Channel].Acquire(senseEnd, d.tim.TransferTime(d.geo.PageSize))
	d.mu.Lock()
	defer d.mu.Unlock()
	d.reads++
	if d.phantom {
		return nil, done, nil
	}
	if pg, ok := d.data[p.Linear(d.geo)]; ok {
		if d.cipher != nil {
			return d.cipher.Open(p, pg), done, nil
		}
		return pg, done, nil
	}
	return make([]byte, d.geo.PageSize), done, nil
}

// ProgramPage writes data (at most one page) to p, arriving at time at.
// Programming an already-programmed page is a flash-rule violation and fails.
func (d *Device) ProgramPage(at sim.Time, p PPA, data []byte) (sim.Time, error) {
	if !p.Valid(d.geo) {
		return at, fmt.Errorf("nvm: program of invalid address %v", p)
	}
	if len(data) > d.geo.PageSize {
		return at, fmt.Errorf("nvm: program of %d bytes exceeds page size %d", len(data), d.geo.PageSize)
	}
	idx := p.Linear(d.geo)
	d.mu.Lock()
	if d.isProgrammed(idx) {
		d.mu.Unlock()
		return at, fmt.Errorf("nvm: program to already-programmed page %v (erase first)", p)
	}
	d.mu.Unlock()
	_, xferEnd := d.channels[p.Channel].Acquire(at, d.tim.TransferTime(d.geo.PageSize))
	_, done := d.bank(p).Acquire(xferEnd, d.tim.ProgramPage)
	d.mu.Lock()
	defer d.mu.Unlock()
	d.setProgrammed(idx, true)
	d.programs++
	if !d.phantom {
		pg := make([]byte, d.geo.PageSize)
		copy(pg, data)
		if d.cipher != nil {
			pg = d.cipher.Seal(p, pg)
		}
		d.data[idx] = pg
	}
	return done, nil
}

// EraseBlock erases the block containing p (its Page field is ignored),
// arriving at time at, returning the completion time.
func (d *Device) EraseBlock(at sim.Time, p PPA) (sim.Time, error) {
	if !p.Valid(d.geo) && !(PPA{p.Channel, p.Bank, p.Block, 0}).Valid(d.geo) {
		return at, fmt.Errorf("nvm: erase of invalid address %v", p)
	}
	_, done := d.bank(p).Acquire(at, d.tim.EraseBlock)
	base := PPA{p.Channel, p.Bank, p.Block, 0}.Linear(d.geo)
	d.mu.Lock()
	defer d.mu.Unlock()
	for i := 0; i < d.geo.PagesPerBlock; i++ {
		idx := base + int64(i)
		d.setProgrammed(idx, false)
		if !d.phantom {
			delete(d.data, idx)
		}
	}
	d.eraseCount[d.blockIndex(p)]++
	d.erases++
	return done, nil
}

// EraseCount reports how many times the block containing p has been erased.
func (d *Device) EraseCount(p PPA) int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.eraseCount[d.blockIndex(p)]
}

// Counters reports lifetime operation counts (reads, programs, erases).
func (d *Device) Counters() (reads, programs, erases int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.reads, d.programs, d.erases
}

// ChannelUtilization reports the busy fraction of each channel over horizon.
func (d *Device) ChannelUtilization(horizon sim.Time) []float64 {
	u := make([]float64, len(d.channels))
	for i, c := range d.channels {
		u[i] = c.Utilization(horizon)
	}
	return u
}

// BusyDies reports how many (channel,bank) dies still have work in flight at
// simulated time at — i.e. their bank timeline extends beyond at. Concurrency
// diagnostics: a concurrent request mix engaging the whole array shows many
// busy dies, a serialized one at most a handful.
func (d *Device) BusyDies(at sim.Time) int {
	n := 0
	for _, b := range d.banks {
		if b.FreeAt() > at {
			n++
		}
	}
	return n
}

// NextIdle reports the earliest time at which every channel and bank is idle:
// the completion horizon of all issued operations.
func (d *Device) NextIdle() sim.Time {
	var t sim.Time
	for _, c := range d.channels {
		t = sim.Max(t, c.FreeAt())
	}
	for _, b := range d.banks {
		t = sim.Max(t, b.FreeAt())
	}
	return t
}

// ResetTimeline returns all channel/bank timelines to the epoch without
// touching stored data or programmed state. Experiment harnesses use this to
// run independent phases on a pre-loaded device.
func (d *Device) ResetTimeline() {
	for _, c := range d.channels {
		c.Reset()
	}
	for _, b := range d.banks {
		b.Reset()
	}
}
