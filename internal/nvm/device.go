package nvm

import (
	"fmt"
	"sync"
	"sync/atomic"

	"nds/internal/sim"
)

// PageCipher is an inline encryption engine (§5.3.3): a size-preserving
// transformation applied per basic access unit, keyed by physical address.
// Datacenter controllers run these at line rate, so no extra latency is
// modelled.
type PageCipher interface {
	Seal(p PPA, plain []byte) []byte
	Open(p PPA, sealed []byte) []byte
}

// arenaChunkPages is how many page frames a die shard carves out of each
// backing slab. Slab allocation amortizes the per-page make() the old map
// store paid on every program.
const arenaChunkPages = 64

// dieShard holds the mutable state of one (channel, bank) die: its programmed
// bitmap, per-block erase counts, stored page frames, and the slab arena the
// frames come from. Each shard carries its own lock, so concurrent streams
// touching distinct dies never contend on device state.
type dieShard struct {
	mu         sync.Mutex
	programmed []uint64 // bitmap over die-local page indices
	eraseCount []int64  // per die-local block
	data       [][]byte // die-local page index -> stored page; nil entry = no bytes
	free       [][]byte // recycled page frames from erased blocks
	slab       []byte   // tail of the current backing chunk

	// Fault-injection attempt counters (only touched when a FaultPlan is
	// installed): lifetime program/erase/read attempts on this die, the
	// deterministic clock the plan's per-die fault points tick against.
	progOps  int64
	eraseOps int64
	readOps  int64
}

func (s *dieShard) isProgrammed(idx int64) bool {
	return s.programmed[idx/64]&(1<<(uint(idx)%64)) != 0
}

func (s *dieShard) setProgrammed(idx int64, v bool) {
	if v {
		s.programmed[idx/64] |= 1 << (uint(idx) % 64)
	} else {
		s.programmed[idx/64] &^= 1 << (uint(idx) % 64)
	}
}

// frame returns a zeroed page frame of pageSize bytes, recycling frames from
// erased blocks before carving new ones from the slab.
func (s *dieShard) frame(pageSize int) []byte {
	if n := len(s.free); n > 0 {
		pg := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		clear(pg)
		return pg
	}
	if len(s.slab) < pageSize {
		s.slab = make([]byte, pageSize*arenaChunkPages)
	}
	pg := s.slab[:pageSize:pageSize]
	s.slab = s.slab[pageSize:]
	return pg
}

// Device is a simulated flash array. It is safe for concurrent use: each
// channel and bank timeline carries its own lock (per-die in-flight
// tracking), so operations from concurrent request streams overlap when they
// target distinct dies and queue behind each other when they collide, and the
// device state itself (programmed bitmap, stored bytes, wear) is sharded
// per die, so streams touching distinct dies never contend on a lock at all.
// Callers remain responsible for flash-rule discipline (no two concurrent
// programs of the same page) — in this repository the STL guarantees it by
// serializing writers per space (a unit is programmed at most once before it
// is erased) and claiming dies for GC.
type Device struct {
	geo Geometry
	tim Timing

	cipher atomic.Value // PageCipher; nil until SetCipher
	faults atomic.Value // *faultState; nil until SetFaultPlan
	cfgMu  sync.Mutex   // serializes SetCipher/SetFaultPlan

	// Phantom devices skip byte storage so paper-scale datasets can be
	// simulated without allocating their contents. State (programmed bits,
	// wear) and timing are still fully tracked.
	phantom bool

	channels []*sim.Resource
	banks    []*sim.Resource // indexed channel*Banks+bank
	shards   []dieShard      // indexed channel*Banks+bank

	// zero is the canonical erased-page image returned by reads of
	// never-programmed pages. Callers must not modify returned read slices,
	// so one shared instance serves every such read.
	zero []byte

	reads    atomic.Int64
	programs atomic.Int64
	erases   atomic.Int64
}

// ProgramOp is one page program in a batch handed to ProgramPages.
type ProgramOp struct {
	At   sim.Time
	P    PPA
	Data []byte
}

// NewDevice builds a device with the given geometry and timing. If phantom is
// true the device tracks state and timing but stores no page bytes.
func NewDevice(geo Geometry, tim Timing, phantom bool) (*Device, error) {
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	dies := geo.Channels * geo.Banks
	d := &Device{
		geo:      geo,
		tim:      tim,
		phantom:  phantom,
		channels: make([]*sim.Resource, geo.Channels),
		banks:    make([]*sim.Resource, dies),
		shards:   make([]dieShard, dies),
		zero:     make([]byte, geo.PageSize),
	}
	pagesPerDie := int64(geo.BlocksPerBank) * int64(geo.PagesPerBlock)
	for i := range d.shards {
		d.shards[i].programmed = make([]uint64, (pagesPerDie+63)/64)
		d.shards[i].eraseCount = make([]int64, geo.BlocksPerBank)
	}
	for c := range d.channels {
		d.channels[c] = sim.NewResource(fmt.Sprintf("channel%d", c))
	}
	for i := range d.banks {
		d.banks[i] = sim.NewResource(fmt.Sprintf("bank%d.%d", i/geo.Banks, i%geo.Banks))
	}
	return d, nil
}

// Geometry returns the device geometry.
func (d *Device) Geometry() Geometry { return d.geo }

// Timing returns the device timing parameters.
func (d *Device) Timing() Timing { return d.tim }

// Phantom reports whether the device stores page bytes.
func (d *Device) Phantom() bool { return d.phantom }

func (d *Device) getCipher() PageCipher {
	if c, ok := d.cipher.Load().(PageCipher); ok {
		return c
	}
	return nil
}

// SetCipher installs an inline encryption engine. All subsequent programs
// store sealed bytes; reads return plaintext. Installing a cipher on a
// device that already holds data would make that data unreadable, so it is
// rejected.
func (d *Device) SetCipher(c PageCipher) error {
	d.cfgMu.Lock()
	defer d.cfgMu.Unlock()
	if d.programs.Load() > 0 {
		return fmt.Errorf("nvm: cannot install cipher on a device with programmed data")
	}
	d.cipher.Store(c)
	return nil
}

// die returns the shard index for p.
func (d *Device) die(p PPA) int { return p.Channel*d.geo.Banks + p.Bank }

// dieIndex returns p's page index within its die.
func (d *Device) dieIndex(p PPA) int64 {
	return int64(p.Block)*int64(d.geo.PagesPerBlock) + int64(p.Page)
}

// RawPage exposes the bytes on the medium (post-cipher) for inspection; nil
// if the page is unprogrammed or the device is phantom. Test/diagnostic use.
func (d *Device) RawPage(p PPA) []byte {
	if d.phantom || !p.Valid(d.geo) {
		return nil
	}
	s := &d.shards[d.die(p)]
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.data == nil {
		return nil
	}
	return s.data[d.dieIndex(p)]
}

func (d *Device) bank(p PPA) *sim.Resource {
	return d.banks[p.Channel*d.geo.Banks+p.Bank]
}

func (d *Device) blockIndex(p PPA) int64 {
	return (int64(p.Channel)*int64(d.geo.Banks)+int64(p.Bank))*int64(d.geo.BlocksPerBank) + int64(p.Block)
}

// Programmed reports whether the page at p has been programmed since its
// block was last erased.
func (d *Device) Programmed(p PPA) bool {
	if !p.Valid(d.geo) {
		return false
	}
	s := &d.shards[d.die(p)]
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.isProgrammed(d.dieIndex(p))
}

// pageBytes returns the stored contents of p (which must be valid), opening
// the cipher if one is installed. Never-programmed pages read as the shared
// zero page. The shard lock must be held.
func (d *Device) pageBytesLocked(s *dieShard, p PPA) []byte {
	if s.data != nil {
		if pg := s.data[d.dieIndex(p)]; pg != nil {
			if c := d.getCipher(); c != nil {
				return c.Open(p, pg)
			}
			return pg
		}
	}
	return d.zero
}

// ReadPage senses the page at p (arriving at time at) and returns its
// contents and the completion time. Reading a never-programmed page is legal
// and yields a zero-filled page (erased state).
//
// The returned slice aliases device storage; callers must not modify it. A
// page's bytes are never mutated in place (overwrites program a fresh unit),
// so the alias stays valid until the page's block is erased and its frame
// recycled into a later program — callers that need the data past an erase of
// the block must copy. In this repository erases only run from the STL's GC,
// which rebinds a victim's live units under the owning spaces' write locks
// before erasing, so it never overlaps a reader still holding the alias.
func (d *Device) ReadPage(at sim.Time, p PPA) ([]byte, sim.Time, error) {
	if !p.Valid(d.geo) {
		return nil, at, fmt.Errorf("nvm: read of invalid address %v", p)
	}
	sense := d.tim.ReadPage
	if f := d.faultPlan(); f != nil {
		sense = d.senseTime(f, d.die(p))
	}
	_, senseEnd := d.bank(p).Acquire(at, sense)
	_, done := d.channels[p.Channel].Acquire(senseEnd, d.tim.TransferTime(d.geo.PageSize))
	d.reads.Add(1)
	if d.phantom {
		return nil, done, nil
	}
	s := &d.shards[d.die(p)]
	s.mu.Lock()
	defer s.mu.Unlock()
	return d.pageBytesLocked(s, p), done, nil
}

// senseTime returns the bank occupancy of one page sense under fault plan f:
// the plain sense time, or (1+ReadRetrySenses)× when this read hits an ECC
// retry point. Consumes one read-attempt tick on the die.
func (d *Device) senseTime(f *faultState, die int) sim.Time {
	s := &d.shards[die]
	s.mu.Lock()
	n := s.readOps
	s.readOps++
	s.mu.Unlock()
	if f.readNeedsRetry(die, n) {
		f.readRetries.Add(1)
		return d.tim.ReadPage * sim.Time(1+f.plan.ReadRetrySenses)
	}
	return d.tim.ReadPage
}

// ReadPages senses every page in ppas (all arriving at time at), storing the
// contents in out[i] and returning the latest completion time. It is
// timing-equivalent to calling ReadPage once per address in slice order, but
// batches the state work: one lock acquisition per run of same-die pages and
// one counter update for the whole span. out must have len(ppas) entries;
// the stored slices alias device storage under the same contract as
// ReadPage. On a phantom device the out entries are set to nil.
func (d *Device) ReadPages(at sim.Time, ppas []PPA, out [][]byte) (sim.Time, error) {
	if len(out) < len(ppas) {
		return at, fmt.Errorf("nvm: ReadPages out has %d entries for %d addresses", len(out), len(ppas))
	}
	for i := range ppas {
		if !ppas[i].Valid(d.geo) {
			return at, fmt.Errorf("nvm: read of invalid address %v", ppas[i])
		}
	}
	done := at
	xfer := d.tim.TransferTime(d.geo.PageSize)
	faults := d.faultPlan()
	for i := range ppas {
		sense := d.tim.ReadPage
		if faults != nil {
			sense = d.senseTime(faults, d.die(ppas[i]))
		}
		_, senseEnd := d.bank(ppas[i]).Acquire(at, sense)
		_, end := d.channels[ppas[i].Channel].Acquire(senseEnd, xfer)
		done = sim.Max(done, end)
	}
	d.reads.Add(int64(len(ppas)))
	if d.phantom {
		for i := range ppas {
			out[i] = nil
		}
		return done, nil
	}
	// One lock pass per run of consecutive same-die addresses; page plans
	// arrive die-grouped, so this is typically one acquisition per die.
	for i := 0; i < len(ppas); {
		die := d.die(ppas[i])
		j := i + 1
		for j < len(ppas) && d.die(ppas[j]) == die {
			j++
		}
		s := &d.shards[die]
		s.mu.Lock()
		for k := i; k < j; k++ {
			out[k] = d.pageBytesLocked(s, ppas[k])
		}
		s.mu.Unlock()
		i = j
	}
	return done, nil
}

// ProgramPage writes data (at most one page) to p, arriving at time at.
// Programming an already-programmed page is a flash-rule violation and fails.
//
// Under an installed FaultPlan a program attempt may fail with a
// *ProgramError (unwrapping to ErrProgramFault): the attempt still occupies
// the channel and bank (the returned time is the failed attempt's
// completion), the page is consumed — its content is indeterminate and it
// cannot be programmed again before an erase — and the caller is expected to
// retire the block and relocate the data.
func (d *Device) ProgramPage(at sim.Time, p PPA, data []byte) (sim.Time, error) {
	if !p.Valid(d.geo) {
		return at, fmt.Errorf("nvm: program of invalid address %v", p)
	}
	if len(data) > d.geo.PageSize {
		return at, fmt.Errorf("nvm: program of %d bytes exceeds page size %d", len(data), d.geo.PageSize)
	}
	idx := d.dieIndex(p)
	die := d.die(p)
	s := &d.shards[die]
	s.mu.Lock()
	if s.isProgrammed(idx) {
		s.mu.Unlock()
		return at, fmt.Errorf("nvm: program to already-programmed page %v (erase first)", p)
	}
	s.mu.Unlock()
	_, xferEnd := d.channels[p.Channel].Acquire(at, d.tim.TransferTime(d.geo.PageSize))
	_, done := d.bank(p).Acquire(xferEnd, d.tim.ProgramPage)
	s.mu.Lock()
	defer s.mu.Unlock()
	if f := d.faultPlan(); f != nil {
		n := s.progOps
		s.progOps++
		if f.programFails(die, n) {
			s.setProgrammed(idx, true) // consumed: unusable until erase
			f.programFaults.Add(1)
			return done, &ProgramError{Index: 0, P: p, Done: done}
		}
	}
	s.setProgrammed(idx, true)
	d.programs.Add(1)
	if !d.phantom {
		d.storeLocked(s, p, idx, data)
	}
	return done, nil
}

// storeLocked copies data into a frame for page idx of shard s. The shard
// lock must be held.
func (d *Device) storeLocked(s *dieShard, p PPA, idx int64, data []byte) {
	if s.data == nil {
		s.data = make([][]byte, int64(d.geo.BlocksPerBank)*int64(d.geo.PagesPerBlock))
	}
	pg := s.frame(d.geo.PageSize)
	copy(pg, data)
	if c := d.getCipher(); c != nil {
		pg = c.Seal(p, pg)
	}
	s.data[idx] = pg
}

// ProgramPages issues a batch of page programs, returning the latest
// completion time. It is timing-equivalent to calling ProgramPage once per
// op in slice order, but validates the whole span, reserves all timeline
// slots, and updates state with one lock pass per run of same-die ops.
//
// Unlike a scalar loop, the batch is atomic with respect to validation
// errors: every op is checked (address, size, flash rules) before any
// timeline slot is reserved or any byte stored, and a validation failure
// leaves the device untouched.
//
// Injected program faults are not atomic — they mirror a scalar loop that
// aborts at the failure: a *ProgramError with Index=k means ops[:k] stored
// normally, op k's page was consumed by the failed attempt, and ops[k+1:]
// were not attempted (their pages remain unprogrammed).
func (d *Device) ProgramPages(ops []ProgramOp) (sim.Time, error) {
	// Pass 1: validate everything and claim the programmed bits, unwinding
	// on failure so an invalid batch leaves no trace.
	var err error
	claimed := 0
	for i := 0; i < len(ops) && err == nil; {
		p := ops[i].P
		if !p.Valid(d.geo) {
			err = fmt.Errorf("nvm: program of invalid address %v", p)
			break
		}
		if len(ops[i].Data) > d.geo.PageSize {
			err = fmt.Errorf("nvm: program of %d bytes exceeds page size %d", len(ops[i].Data), d.geo.PageSize)
			break
		}
		die := d.die(p)
		j := i + 1
		for j < len(ops) && ops[j].P.Valid(d.geo) && d.die(ops[j].P) == die &&
			len(ops[j].Data) <= d.geo.PageSize {
			j++
		}
		s := &d.shards[die]
		s.mu.Lock()
		for k := i; k < j; k++ {
			idx := d.dieIndex(ops[k].P)
			if s.isProgrammed(idx) {
				err = fmt.Errorf("nvm: program to already-programmed page %v (erase first)", ops[k].P)
				j = k
				break
			}
			s.setProgrammed(idx, true)
			claimed++
		}
		s.mu.Unlock()
		i = j
	}
	if err != nil {
		d.unclaim(ops[:claimed])
		if len(ops) > 0 {
			return ops[0].At, err
		}
		return 0, err
	}
	// Pass 1.5: with a fault plan installed, walk the batch in slice order
	// consuming per-die attempt ticks until the first fault point. Ops after a
	// faulted op are not attempted (a scalar loop would abort there): their
	// claims are released and their attempt ticks are not consumed. The faulted
	// op's page stays claimed — the failed attempt consumed it.
	stored := ops
	var faultIdx = -1
	if f := d.faultPlan(); f != nil {
		for i := 0; i < len(ops) && faultIdx < 0; {
			die := d.die(ops[i].P)
			j := i + 1
			for j < len(ops) && d.die(ops[j].P) == die {
				j++
			}
			s := &d.shards[die]
			s.mu.Lock()
			for k := i; k < j; k++ {
				n := s.progOps
				s.progOps++
				if f.programFails(die, n) {
					faultIdx = k
					break
				}
			}
			s.mu.Unlock()
			i = j
		}
		if faultIdx >= 0 {
			f.programFaults.Add(1)
			d.unclaim(ops[faultIdx+1:])
			stored = ops[:faultIdx]
		}
	}
	// Pass 2: timeline reservations in op order — identical acquire sequence
	// to the scalar loop, so completions are bit-identical. On a fault the
	// failed attempt still occupies the timelines; unattempted ops do not.
	var done, faultDone sim.Time
	xfer := d.tim.TransferTime(d.geo.PageSize)
	attempted := ops
	if faultIdx >= 0 {
		attempted = ops[:faultIdx+1]
	}
	for i := range attempted {
		_, xferEnd := d.channels[attempted[i].P.Channel].Acquire(attempted[i].At, xfer)
		_, end := d.bank(attempted[i].P).Acquire(xferEnd, d.tim.ProgramPage)
		done = sim.Max(done, end)
		if i == faultIdx {
			faultDone = end
		}
	}
	// Pass 3: store bytes and bump counters, grouped per die.
	d.programs.Add(int64(len(stored)))
	if !d.phantom {
		for i := 0; i < len(stored); {
			die := d.die(stored[i].P)
			j := i + 1
			for j < len(stored) && d.die(stored[j].P) == die {
				j++
			}
			s := &d.shards[die]
			s.mu.Lock()
			for k := i; k < j; k++ {
				d.storeLocked(s, stored[k].P, d.dieIndex(stored[k].P), stored[k].Data)
			}
			s.mu.Unlock()
			i = j
		}
	}
	if faultIdx >= 0 {
		return done, &ProgramError{Index: faultIdx, P: ops[faultIdx].P, Done: faultDone}
	}
	return done, nil
}

// unclaim releases the programmed bits claimed for ops (grouped per die run).
func (d *Device) unclaim(ops []ProgramOp) {
	for i := 0; i < len(ops); {
		die := d.die(ops[i].P)
		j := i + 1
		for j < len(ops) && d.die(ops[j].P) == die {
			j++
		}
		s := &d.shards[die]
		s.mu.Lock()
		for k := i; k < j; k++ {
			s.setProgrammed(d.dieIndex(ops[k].P), false)
		}
		s.mu.Unlock()
		i = j
	}
}

// EraseBlock erases the block containing p (its Page field is ignored),
// arriving at time at, returning the completion time. The erased pages'
// frames are recycled: any alias returned by an earlier ReadPage of this
// block becomes invalid once a later program reuses the frame.
//
// Under an installed FaultPlan an erase may fail with ErrEraseFault (a
// transient fault: block contents unchanged, block should be retired) or
// ErrWornOut (the block's erase count reached the endurance limit; every
// further erase fails the same way). Either way the failed attempt still
// occupies the bank timeline.
func (d *Device) EraseBlock(at sim.Time, p PPA) (sim.Time, error) {
	if !p.Valid(d.geo) && !(PPA{p.Channel, p.Bank, p.Block, 0}).Valid(d.geo) {
		return at, fmt.Errorf("nvm: erase of invalid address %v", p)
	}
	die := d.die(p)
	_, done := d.bank(p).Acquire(at, d.tim.EraseBlock)
	base := int64(p.Block) * int64(d.geo.PagesPerBlock)
	s := &d.shards[die]
	s.mu.Lock()
	defer s.mu.Unlock()
	if f := d.faultPlan(); f != nil {
		// Wear-out is a permanent property of the block, checked before the
		// transient-fault counter so it never consumes an attempt tick.
		if f.wornOut(s.eraseCount[p.Block]) {
			f.wearoutFaults.Add(1)
			return done, fmt.Errorf("nvm: erase of %v: %w", p, ErrWornOut)
		}
		n := s.eraseOps
		s.eraseOps++
		if f.eraseFails(die, n) {
			f.eraseFaults.Add(1)
			return done, fmt.Errorf("nvm: erase of %v: %w", p, ErrEraseFault)
		}
	}
	for i := 0; i < d.geo.PagesPerBlock; i++ {
		idx := base + int64(i)
		s.setProgrammed(idx, false)
		if s.data != nil {
			if pg := s.data[idx]; pg != nil {
				s.free = append(s.free, pg)
				s.data[idx] = nil
			}
		}
	}
	s.eraseCount[p.Block]++
	d.erases.Add(1)
	return done, nil
}

// EraseCount reports how many times the block containing p has been erased.
func (d *Device) EraseCount(p PPA) int64 {
	s := &d.shards[d.die(p)]
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eraseCount[p.Block]
}

// Counters reports lifetime operation counts (reads, programs, erases).
func (d *Device) Counters() (reads, programs, erases int64) {
	return d.reads.Load(), d.programs.Load(), d.erases.Load()
}

// ChannelUtilization reports the busy fraction of each channel over horizon.
func (d *Device) ChannelUtilization(horizon sim.Time) []float64 {
	u := make([]float64, len(d.channels))
	for i, c := range d.channels {
		u[i] = c.Utilization(horizon)
	}
	return u
}

// BusyDies reports how many (channel,bank) dies still have work in flight at
// simulated time at — i.e. their bank timeline extends beyond at. Concurrency
// diagnostics: a concurrent request mix engaging the whole array shows many
// busy dies, a serialized one at most a handful.
func (d *Device) BusyDies(at sim.Time) int {
	n := 0
	for _, b := range d.banks {
		if b.FreeAt() > at {
			n++
		}
	}
	return n
}

// NextIdle reports the earliest time at which every channel and bank is idle:
// the completion horizon of all issued operations.
func (d *Device) NextIdle() sim.Time {
	var t sim.Time
	for _, c := range d.channels {
		t = sim.Max(t, c.FreeAt())
	}
	for _, b := range d.banks {
		t = sim.Max(t, b.FreeAt())
	}
	return t
}

// ResetTimeline returns all channel/bank timelines to the epoch without
// touching stored data or programmed state. Experiment harnesses use this to
// run independent phases on a pre-loaded device.
func (d *Device) ResetTimeline() {
	for _, c := range d.channels {
		c.Reset()
	}
	for _, b := range d.banks {
		b.Reset()
	}
}
