package nvm

import (
	"bytes"
	"errors"
	"testing"

	"nds/internal/sim"
)

func faultTestDevice(t *testing.T, plan FaultPlan) *Device {
	t.Helper()
	d, err := NewDevice(testGeo(), TLCTiming(), false)
	if err != nil {
		t.Fatal(err)
	}
	d.SetFaultPlan(plan)
	return d
}

// TestFaultPlanDisabledIdentical: a device with a disabled plan installed
// behaves bit-identically (data and completion times) to one that never saw
// SetFaultPlan.
func TestFaultPlanDisabledIdentical(t *testing.T) {
	plain := newTestDevice(t, false)
	planned := faultTestDevice(t, FaultPlan{}) // zero plan: disabled

	geo := plain.Geometry()
	page := bytes.Repeat([]byte{0xA5}, geo.PageSize)
	for _, d := range []*Device{plain, planned} {
		p := PPA{Channel: 1, Bank: 0, Block: 2, Page: 3}
		if _, err := d.ProgramPage(0, p, page); err != nil {
			t.Fatal(err)
		}
	}
	p := PPA{Channel: 1, Bank: 0, Block: 2, Page: 3}
	d1, t1, err1 := plain.ReadPage(0, p)
	d2, t2, err2 := planned.ReadPage(0, p)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if t1 != t2 {
		t.Fatalf("completion diverged: %v vs %v", t1, t2)
	}
	if !bytes.Equal(d1, d2) {
		t.Fatal("data diverged with a disabled plan installed")
	}
	if fs := planned.FaultStats(); fs != (FaultStats{}) {
		t.Fatalf("disabled plan counted events: %+v", fs)
	}
}

// TestFaultProgramDeterministicReplay: two devices with the same plan fail
// identical program attempts when driven identically.
func TestFaultProgramDeterministicReplay(t *testing.T) {
	plan := FaultPlan{Seed: 7, ProgramFailEvery: 5}
	a := faultTestDevice(t, plan)
	b := faultTestDevice(t, plan)
	geo := a.Geometry()
	page := make([]byte, geo.PageSize)

	var faultsA, faultsB []PPA
	for blk := 0; blk < 3; blk++ {
		for pg := 0; pg < geo.PagesPerBlock; pg++ {
			p := PPA{Channel: 0, Bank: 1, Block: blk, Page: pg}
			_, errA := a.ProgramPage(0, p, page)
			_, errB := b.ProgramPage(0, p, page)
			var peA, peB *ProgramError
			if errors.As(errA, &peA) {
				faultsA = append(faultsA, peA.P)
			}
			if errors.As(errB, &peB) {
				faultsB = append(faultsB, peB.P)
			}
			if (errA == nil) != (errB == nil) {
				t.Fatalf("replay diverged at %v: %v vs %v", p, errA, errB)
			}
		}
	}
	if len(faultsA) == 0 {
		t.Fatal("no program faults injected over 48 programs with N=5")
	}
	if len(faultsA) != len(faultsB) {
		t.Fatalf("fault counts diverged: %d vs %d", len(faultsA), len(faultsB))
	}
	for i := range faultsA {
		if faultsA[i] != faultsB[i] {
			t.Fatalf("fault %d at %v vs %v", i, faultsA[i], faultsB[i])
		}
	}
	if a.FaultStats() != b.FaultStats() {
		t.Fatalf("stats diverged: %+v vs %+v", a.FaultStats(), b.FaultStats())
	}
}

// TestFaultProgramConsumesPage: a faulted program leaves its page
// unprogrammable until the block is erased.
func TestFaultProgramConsumesPage(t *testing.T) {
	d := faultTestDevice(t, FaultPlan{Seed: 3, ProgramFailEvery: 1})
	geo := d.Geometry()
	page := make([]byte, geo.PageSize)
	p := PPA{Channel: 0, Bank: 0, Block: 0, Page: 0}
	_, err := d.ProgramPage(0, p, page)
	var pe *ProgramError
	if !errors.As(err, &pe) || !errors.Is(err, ErrProgramFault) {
		t.Fatalf("want ProgramError unwrapping to ErrProgramFault, got %v", err)
	}
	if !d.Programmed(p) {
		t.Fatal("faulted page not consumed")
	}
	if _, err := d.ProgramPage(0, p, page); err == nil || errors.Is(err, ErrProgramFault) {
		t.Fatalf("re-program of consumed page should be a rule violation, got %v", err)
	}
	d.SetFaultPlan(FaultPlan{}) // allow the erase
	if _, err := d.EraseBlock(0, p); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ProgramPage(0, p, page); err != nil {
		t.Fatalf("program after erase: %v", err)
	}
}

// TestFaultBatchMatchesScalar: ProgramPages under a fault plan mirrors the
// scalar loop that aborts at the first fault — same fault point, same
// completion, stored prefix readable, suffix untouched.
func TestFaultBatchMatchesScalar(t *testing.T) {
	plan := FaultPlan{Seed: 11, ProgramFailEvery: 6}
	scalar := faultTestDevice(t, plan)
	batch := faultTestDevice(t, plan)
	geo := scalar.Geometry()

	ops := make([]ProgramOp, 0, 16)
	for pg := 0; pg < 16; pg++ {
		data := bytes.Repeat([]byte{byte(pg + 1)}, geo.PageSize)
		ops = append(ops, ProgramOp{At: 0, P: PPA{Channel: 2, Bank: 1, Block: 1, Page: pg}, Data: data})
	}

	// Scalar oracle: program in order, stop at the first fault.
	scalarFault, scalarDone := -1, sim.Time(0)
	for i := range ops {
		done, err := scalar.ProgramPage(ops[i].At, ops[i].P, ops[i].Data)
		scalarDone = done
		if err != nil {
			var pe *ProgramError
			if !errors.As(err, &pe) {
				t.Fatal(err)
			}
			scalarFault = i
			break
		}
	}
	if scalarFault < 0 {
		t.Fatal("no fault in 16 programs with N=6")
	}

	_, err := batch.ProgramPages(ops)
	var pe *ProgramError
	if !errors.As(err, &pe) {
		t.Fatalf("batch did not fault: %v", err)
	}
	if pe.Index != scalarFault {
		t.Fatalf("batch faulted at %d, scalar at %d", pe.Index, scalarFault)
	}
	if pe.P != ops[scalarFault].P {
		t.Fatalf("fault PPA %v, want %v", pe.P, ops[scalarFault].P)
	}
	if pe.Done != scalarDone {
		t.Fatalf("fault completion %v, want scalar %v", pe.Done, scalarDone)
	}
	for i := range ops {
		switch {
		case i < scalarFault:
			got := batch.RawPage(ops[i].P)
			if !bytes.Equal(got, ops[i].Data) {
				t.Fatalf("stored op %d corrupted", i)
			}
		case i == scalarFault:
			if !batch.Programmed(ops[i].P) {
				t.Fatal("faulted page not consumed")
			}
		default:
			if batch.Programmed(ops[i].P) {
				t.Fatalf("op %d past the fault was programmed", i)
			}
		}
	}
}

// TestFaultReadRetryLatency: a read at an ECC-retry point succeeds with the
// configured extra sensing occupancy; others keep the plain latency.
func TestFaultReadRetryLatency(t *testing.T) {
	base := newTestDevice(t, false)
	retry := faultTestDevice(t, FaultPlan{Seed: 1, ReadRetryEvery: 1, ReadRetrySenses: 3})
	geo := base.Geometry()
	page := make([]byte, geo.PageSize)
	p := PPA{Channel: 0, Bank: 0, Block: 0, Page: 0}
	for _, d := range []*Device{base, retry} {
		if _, err := d.ProgramPage(0, p, page); err != nil {
			t.Fatal(err)
		}
		d.ResetTimeline()
	}
	_, baseDone, err := base.ReadPage(0, p)
	if err != nil {
		t.Fatal(err)
	}
	data, retryDone, err := retry.ReadPage(0, p)
	if err != nil {
		t.Fatal(err)
	}
	extra := 3 * base.Timing().ReadPage
	if retryDone != baseDone+extra {
		t.Fatalf("retried read completed at %v, want %v + %v", retryDone, baseDone, extra)
	}
	if !bytes.Equal(data, page) {
		t.Fatal("retried read returned wrong data")
	}
	if fs := retry.FaultStats(); fs.ReadRetries != 1 {
		t.Fatalf("ReadRetries = %d, want 1", fs.ReadRetries)
	}
}

// TestFaultWearOutPermanent: once a block's erase count reaches the
// endurance limit, every further erase fails and the block state is frozen.
func TestFaultWearOutPermanent(t *testing.T) {
	d := faultTestDevice(t, FaultPlan{Seed: 2, EnduranceLimit: 2})
	geo := d.Geometry()
	page := make([]byte, geo.PageSize)
	p := PPA{Channel: 3, Bank: 1, Block: 5, Page: 0}
	for cycle := 0; cycle < 2; cycle++ {
		if _, err := d.ProgramPage(0, p, page); err != nil {
			t.Fatalf("cycle %d program: %v", cycle, err)
		}
		if _, err := d.EraseBlock(0, p); err != nil {
			t.Fatalf("cycle %d erase: %v", cycle, err)
		}
	}
	if _, err := d.ProgramPage(0, p, page); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := d.EraseBlock(0, p); !errors.Is(err, ErrWornOut) {
			t.Fatalf("erase %d past endurance: want ErrWornOut, got %v", i, err)
		}
	}
	if !d.Programmed(p) {
		t.Fatal("failed erase mutated block state")
	}
	if fs := d.FaultStats(); fs.WearoutFaults != 3 {
		t.Fatalf("WearoutFaults = %d, want 3", fs.WearoutFaults)
	}
}

// TestFaultEraseLeavesState: a transient erase fault leaves the block's
// contents and programmed bits untouched.
func TestFaultEraseLeavesState(t *testing.T) {
	d := faultTestDevice(t, FaultPlan{Seed: 5, EraseFailEvery: 1})
	geo := d.Geometry()
	page := bytes.Repeat([]byte{0x3C}, geo.PageSize)
	p := PPA{Channel: 1, Bank: 1, Block: 3, Page: 7}
	if _, err := d.ProgramPage(0, p, page); err != nil {
		t.Fatal(err)
	}
	if _, err := d.EraseBlock(0, p); !errors.Is(err, ErrEraseFault) {
		t.Fatalf("want ErrEraseFault, got %v", err)
	}
	data, _, err := d.ReadPage(0, p)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, page) {
		t.Fatal("erase fault corrupted block contents")
	}
	if fs := d.FaultStats(); fs.EraseFaults != 1 {
		t.Fatalf("EraseFaults = %d, want 1", fs.EraseFaults)
	}
}
