package accel

import (
	"testing"

	"nds/internal/sim"
)

func TestCurveValidation(t *testing.T) {
	if _, err := NewRateCurve("x", []RatePoint{{1, 1}}); err == nil {
		t.Error("single-point curve accepted")
	}
	if _, err := NewRateCurve("x", []RatePoint{{1, 1}, {1, 2}}); err == nil {
		t.Error("duplicate dim accepted")
	}
	if _, err := NewRateCurve("x", []RatePoint{{0, 1}, {2, 2}}); err == nil {
		t.Error("zero dim accepted")
	}
	if _, err := NewRateCurve("x", []RatePoint{{1, -1}, {2, 2}}); err == nil {
		t.Error("negative rate accepted")
	}
}

func TestInterpolationMonotoneSegments(t *testing.T) {
	c, err := NewRateCurve("t", []RatePoint{{100, 1e9}, {1000, 10e9}})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Rate(100); got != 1e9 {
		t.Fatalf("anchor rate = %v", got)
	}
	if got := c.Rate(10); got != 1e9 {
		t.Fatalf("below-range rate should clamp: %v", got)
	}
	if got := c.Rate(10000); got != 10e9 {
		t.Fatalf("above-range rate should clamp: %v", got)
	}
	mid := c.Rate(316) // ~ geometric midpoint
	if mid < 2.9e9 || mid > 3.5e9 {
		t.Fatalf("log-log midpoint = %v, want ~3.16e9", mid)
	}
}

// TestFigure3Optima pins the crossover structure of Figure 3: Tensor Cores
// peak at 512, CUDA cores at 2048, and the Tensor-Core rate dominates the
// CUDA-core rate at every common dimension.
func TestFigure3Optima(t *testing.T) {
	tcu, cuda := TensorCores(), CUDACores()
	if got := tcu.PeakDim(); got != 512 {
		t.Errorf("Tensor-Core peak at %d, want 512", got)
	}
	if got := cuda.PeakDim(); got != 2048 {
		t.Errorf("CUDA-core peak at %d, want 2048", got)
	}
	for _, d := range []int64{32, 128, 512, 2048, 8192, 16384} {
		if tcu.Rate(d) <= cuda.Rate(d) {
			t.Errorf("at dim %d Tensor Cores (%.1e) should beat CUDA cores (%.1e)",
				d, tcu.Rate(d), cuda.Rate(d))
		}
	}
}

func TestKernelDuration(t *testing.T) {
	c, _ := NewRateCurve("t", []RatePoint{{100, 1e9}, {1000, 1e9}})
	if d := c.Duration(1e9, 500); d != sim.Second {
		t.Fatalf("duration = %v, want 1s", d)
	}
}

func TestGPUPipelinesCopyAgainstCompute(t *testing.T) {
	g := NewGPU()
	// Two independent units: a copy and a kernel issued at t=0 overlap.
	_, copyEnd := g.CopyIn(0, 1<<20)
	_, kernEnd := g.Launch(0, TensorCores(), 1<<20, 512)
	if copyEnd <= 0 || kernEnd <= 0 {
		t.Fatal("operations should take time")
	}
	// Serialization happens only within each unit.
	s2, _ := g.CopyIn(0, 1<<20)
	if s2 != copyEnd {
		t.Fatalf("second copy starts %v, want %v", s2, copyEnd)
	}
	g.Reset()
	s3, _ := g.CopyIn(0, 1)
	if s3 != 0 {
		t.Fatal("reset should clear timelines")
	}
}
