// Package accel models the hardware accelerator of the evaluation platform
// (an RTX 2080-class GPU with both CUDA cores and Tensor Cores). Compute
// kernels are characterized by effective data-processing-rate curves versus
// working-set dimension, reproducing Figure 3's shape: Tensor-Core GEMM peaks
// at 512x512 tiles, CUDA-core GEMM at 2048x2048, and both collapse for tiny
// inputs where launch overhead and under-occupancy dominate.
package accel

import (
	"fmt"
	"math"
	"sort"

	"nds/internal/sim"
)

// RatePoint anchors a processing-rate curve: at working-set dimension Dim
// (elements per side), the kernel consumes input at Rate bytes/second.
type RatePoint struct {
	Dim  int64
	Rate float64
}

// RateCurve interpolates effective processing rate between anchors in
// log-log space (rates span decades in Figure 3).
type RateCurve struct {
	Name   string
	Points []RatePoint
}

// NewRateCurve sorts and validates the anchors.
func NewRateCurve(name string, pts []RatePoint) (RateCurve, error) {
	if len(pts) < 2 {
		return RateCurve{}, fmt.Errorf("accel: curve %q needs at least two points", name)
	}
	sorted := append([]RatePoint(nil), pts...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Dim < sorted[j].Dim })
	for i, p := range sorted {
		if p.Dim <= 0 || p.Rate <= 0 {
			return RateCurve{}, fmt.Errorf("accel: curve %q point %d not positive", name, i)
		}
		if i > 0 && p.Dim == sorted[i-1].Dim {
			return RateCurve{}, fmt.Errorf("accel: curve %q has duplicate dim %d", name, p.Dim)
		}
	}
	return RateCurve{Name: name, Points: sorted}, nil
}

// Rate returns the interpolated processing rate at dimension dim, clamped to
// the curve's end anchors.
func (c RateCurve) Rate(dim int64) float64 {
	pts := c.Points
	if dim <= pts[0].Dim {
		return pts[0].Rate
	}
	if dim >= pts[len(pts)-1].Dim {
		return pts[len(pts)-1].Rate
	}
	i := sort.Search(len(pts), func(i int) bool { return pts[i].Dim >= dim })
	a, b := pts[i-1], pts[i]
	t := (math.Log(float64(dim)) - math.Log(float64(a.Dim))) /
		(math.Log(float64(b.Dim)) - math.Log(float64(a.Dim)))
	return math.Exp(math.Log(a.Rate)*(1-t) + math.Log(b.Rate)*t)
}

// PeakDim returns the anchor dimension with the highest rate — the kernel's
// optimal working-set size (Figure 3 / challenge [C2]).
func (c RateCurve) PeakDim() int64 {
	best := c.Points[0]
	for _, p := range c.Points[1:] {
		if p.Rate > best.Rate {
			best = p
		}
	}
	return best.Dim
}

// Duration is the kernel time to consume n input bytes at working-set
// dimension dim.
func (c RateCurve) Duration(n int64, dim int64) sim.Time {
	return sim.TransferTime(n, c.Rate(dim))
}

// CUDACores is the calibrated CUDA-core GEMM curve of Figure 3: the rate
// peaks around 2048x2048 tiles.
func CUDACores() RateCurve {
	c, _ := NewRateCurve("cuda-cores", []RatePoint{
		{32, 0.10e9}, {64, 0.4e9}, {128, 1.5e9}, {256, 5e9}, {512, 12e9},
		{1024, 20e9}, {2048, 24e9}, {4096, 22e9}, {8192, 20e9}, {16384, 18e9},
	})
	return c
}

// TensorCores is the calibrated Tensor-Core GEMM curve of Figure 3: far
// higher throughput, peaking around 512x512 tiles.
func TensorCores() RateCurve {
	c, _ := NewRateCurve("tensor-cores", []RatePoint{
		{32, 0.3e9}, {64, 2e9}, {128, 20e9}, {256, 80e9}, {512, 120e9},
		{1024, 110e9}, {2048, 95e9}, {4096, 80e9}, {8192, 70e9}, {16384, 60e9},
	})
	return c
}

// VectorKernel is a generic CUDA-core streaming kernel (BFS, KMeans, and the
// other 1-D-kernel workloads of Table 1): throughput saturates quickly with
// input size.
func VectorKernel() RateCurve {
	c, _ := NewRateCurve("vector", []RatePoint{
		{1024, 2e9}, {4096, 8e9}, {65536, 14e9}, {1 << 20, 15e9},
	})
	return c
}

// GPU is the accelerator: device memory, a host-device copy link, and a
// compute unit that runs one kernel at a time (the paper's applications
// pipeline copies against kernels, not kernels against kernels).
type GPU struct {
	DevMemBytes int64
	copyBW      float64
	copyOvh     sim.Time
	copyEngine  *sim.Resource
	compute     *sim.Resource
}

// NewGPU builds an RTX 2080-class accelerator: 8 GB device memory behind a
// 12 GB/s effective PCIe 3.0 x16 copy path.
func NewGPU() *GPU {
	return &GPU{
		DevMemBytes: 8 << 30,
		copyBW:      12e9,
		copyOvh:     10 * sim.Microsecond,
		copyEngine:  sim.NewResource("gpu-copy"),
		compute:     sim.NewResource("gpu-compute"),
	}
}

// CopyDuration is the host-to-device copy time for n bytes.
func (g *GPU) CopyDuration(n int64) sim.Time {
	return g.copyOvh + sim.TransferTime(n, g.copyBW)
}

// CopyIn schedules a host-to-device copy of n bytes arriving at time at.
func (g *GPU) CopyIn(at sim.Time, n int64) (start, end sim.Time) {
	return g.copyEngine.Acquire(at, g.CopyDuration(n))
}

// Launch schedules a kernel consuming n bytes at working-set dimension dim.
func (g *GPU) Launch(at sim.Time, k RateCurve, n, dim int64) (start, end sim.Time) {
	return g.compute.Acquire(at, k.Duration(n, dim))
}

// Reset clears the copy and compute timelines.
func (g *GPU) Reset() {
	g.copyEngine.Reset()
	g.compute.Reset()
}
