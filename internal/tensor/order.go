package tensor

import "math"

// Order-preserving float <-> uint key transforms (the sign-flip trick): the
// unsigned integer order of Key32(a), Key32(b) matches the IEEE-754 total
// order of a, b, so the storage pushdown operators — which compare elements
// as little-endian unsigned integers — can evaluate range predicates over
// float32/float64 distances, ranks, and weights.
//
// The mapping flips the sign bit of non-negative floats and complements every
// bit of negative floats: positives keep their magnitude order above the
// midpoint, negatives reverse into ascending order below it. It is a
// bijection on the 2^32 (2^64) bit patterns, so FromKey32(Key32(f)) returns
// f's exact bit pattern. Consequences worth knowing:
//
//   - -0.0 orders strictly below +0.0 (keys 0x7fffffff and 0x80000000);
//   - NaNs order deterministically at the extremes (negative-sign NaNs below
//     every number, positive-sign NaNs above +Inf);
//   - adjacent finite floats map to adjacent integers, so "strictly greater
//     than f" is the key range [Key32(f)+1, ^uint32(0)].

// Key32 maps a float32 to a uint32 whose unsigned order matches the float
// total order.
func Key32(f float32) uint32 {
	b := math.Float32bits(f)
	if b&(1<<31) != 0 {
		return ^b
	}
	return b | 1<<31
}

// FromKey32 inverts Key32, recovering the exact original bit pattern.
func FromKey32(k uint32) float32 {
	if k&(1<<31) != 0 {
		return math.Float32frombits(k ^ 1<<31)
	}
	return math.Float32frombits(^k)
}

// Key64 maps a float64 to a uint64 whose unsigned order matches the float
// total order.
func Key64(f float64) uint64 {
	b := math.Float64bits(f)
	if b&(1<<63) != 0 {
		return ^b
	}
	return b | 1<<63
}

// FromKey64 inverts Key64, recovering the exact original bit pattern.
func FromKey64(k uint64) float64 {
	if k&(1<<63) != 0 {
		return math.Float64frombits(k ^ 1<<63)
	}
	return math.Float64frombits(^k)
}
