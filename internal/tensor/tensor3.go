package tensor

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
)

// Tensor3 is a dense row-major float32 3-D tensor (index order i, j, k with
// k fastest-varying).
type Tensor3 struct {
	D1, D2, D3 int
	Data       []float32
}

// NewTensor3 allocates a zero tensor.
func NewTensor3(d1, d2, d3 int) *Tensor3 {
	return &Tensor3{D1: d1, D2: d2, D3: d3, Data: make([]float32, d1*d2*d3)}
}

// RandTensor3 fills a tensor with deterministic pseudo-random values.
func RandTensor3(d1, d2, d3 int, seed int64) *Tensor3 {
	t := NewTensor3(d1, d2, d3)
	rng := rand.New(rand.NewSource(seed))
	for i := range t.Data {
		t.Data[i] = rng.Float32()
	}
	return t
}

// At returns element (i, j, k).
func (t *Tensor3) At(i, j, k int) float32 { return t.Data[(i*t.D2+j)*t.D3+k] }

// Set stores v at (i, j, k).
func (t *Tensor3) Set(i, j, k int, v float32) { t.Data[(i*t.D2+j)*t.D3+k] = v }

// TTV computes the tensor-times-vector product along the given mode (0-2):
// contracting mode m of t with v yields a matrix over the remaining modes.
func TTV(t *Tensor3, v []float32, mode int) (*Matrix, error) {
	dims := [3]int{t.D1, t.D2, t.D3}
	if mode < 0 || mode > 2 {
		return nil, fmt.Errorf("tensor: TTV mode %d out of range", mode)
	}
	if len(v) != dims[mode] {
		return nil, fmt.Errorf("tensor: TTV vector length %d does not match mode size %d", len(v), dims[mode])
	}
	var out *Matrix
	switch mode {
	case 0:
		out = NewMatrix(t.D2, t.D3)
		for i := 0; i < t.D1; i++ {
			w := v[i]
			for j := 0; j < t.D2; j++ {
				for k := 0; k < t.D3; k++ {
					out.Data[j*t.D3+k] += w * t.At(i, j, k)
				}
			}
		}
	case 1:
		out = NewMatrix(t.D1, t.D3)
		for i := 0; i < t.D1; i++ {
			for j := 0; j < t.D2; j++ {
				w := v[j]
				for k := 0; k < t.D3; k++ {
					out.Data[i*t.D3+k] += w * t.At(i, j, k)
				}
			}
		}
	case 2:
		out = NewMatrix(t.D1, t.D2)
		for i := 0; i < t.D1; i++ {
			for j := 0; j < t.D2; j++ {
				var s float32
				for k := 0; k < t.D3; k++ {
					s += v[k] * t.At(i, j, k)
				}
				out.Data[i*t.D2+j] = s
			}
		}
	}
	return out, nil
}

// Contract computes the mode-1 tensor contraction C[i,k] = sum_j A[i,j,:]
// . B[j,:] — contracting tensor mode 1 with matrix rows, the TC kernel shape
// (a GEMM-like contraction over one tensor mode).
func Contract(t *Tensor3, b *Matrix) (*Tensor3, error) {
	if b.Rows != t.D2 {
		return nil, fmt.Errorf("tensor: contract mode size %d does not match matrix rows %d", t.D2, b.Rows)
	}
	out := NewTensor3(t.D1, b.Cols, t.D3)
	for i := 0; i < t.D1; i++ {
		for j := 0; j < t.D2; j++ {
			row := t.Data[(i*t.D2+j)*t.D3 : (i*t.D2+j)*t.D3+t.D3]
			for c := 0; c < b.Cols; c++ {
				w := b.At(j, c)
				if w == 0 {
					continue
				}
				oRow := out.Data[(i*b.Cols+c)*t.D3 : (i*b.Cols+c)*t.D3+t.D3]
				for k := range row {
					oRow[k] += w * row[k]
				}
			}
		}
	}
	return out, nil
}

// Equal reports element-wise equality within tol.
func (t *Tensor3) Equal(o *Tensor3, tol float64) bool {
	if t.D1 != o.D1 || t.D2 != o.D2 || t.D3 != o.D3 {
		return false
	}
	for i := range t.Data {
		if math.Abs(float64(t.Data[i]-o.Data[i])) > tol {
			return false
		}
	}
	return true
}

// Bytes encodes the tensor row-major as little-endian float32.
func (t *Tensor3) Bytes() []byte {
	out := make([]byte, 4*len(t.Data))
	for i, v := range t.Data {
		binary.LittleEndian.PutUint32(out[i*4:], math.Float32bits(v))
	}
	return out
}

// Tensor3FromBytes decodes a d1 x d2 x d3 tensor.
func Tensor3FromBytes(d1, d2, d3 int, b []byte) (*Tensor3, error) {
	if len(b) != d1*d2*d3*4 {
		return nil, fmt.Errorf("tensor: %d bytes cannot hold %dx%dx%d float32", len(b), d1, d2, d3)
	}
	t := NewTensor3(d1, d2, d3)
	for i := range t.Data {
		t.Data[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return t, nil
}
