// Package tensor provides the dense matrix/tensor containers and reference
// kernels used by the functional (real-compute) forms of the Table 1
// workloads and by the examples: blocked matrix multiplication, stencils,
// convolution, and 3-D tensor operations, plus byte-level encoding helpers
// for moving values through the NDS data path.
package tensor

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense row-major float32 matrix (the paper's kernels run fp32).
type Matrix struct {
	Rows, Cols int
	Data       []float32
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// RandMatrix fills a matrix with deterministic pseudo-random values.
func RandMatrix(rows, cols int, seed int64) *Matrix {
	m := NewMatrix(rows, cols)
	rng := rand.New(rand.NewSource(seed))
	for i := range m.Data {
		m.Data[i] = rng.Float32()
	}
	return m
}

// At returns element (r, c).
func (m *Matrix) At(r, c int) float32 { return m.Data[r*m.Cols+c] }

// Set stores v at (r, c).
func (m *Matrix) Set(r, c int, v float32) { m.Data[r*m.Cols+c] = v }

// Sub copies the tile [r0,r0+h) x [c0,c0+w) into a new matrix.
func (m *Matrix) Sub(r0, c0, h, w int) *Matrix {
	out := NewMatrix(h, w)
	for r := 0; r < h; r++ {
		copy(out.Data[r*w:(r+1)*w], m.Data[(r0+r)*m.Cols+c0:(r0+r)*m.Cols+c0+w])
	}
	return out
}

// SetSub writes tile t at (r0, c0).
func (m *Matrix) SetSub(r0, c0 int, t *Matrix) {
	for r := 0; r < t.Rows; r++ {
		copy(m.Data[(r0+r)*m.Cols+c0:(r0+r)*m.Cols+c0+t.Cols], t.Data[r*t.Cols:(r+1)*t.Cols])
	}
}

// Transpose returns the transposed matrix.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			out.Data[c*m.Rows+r] = m.Data[r*m.Cols+c]
		}
	}
	return out
}

// MatMul computes a x b with the straightforward triple loop (the reference
// kernel other implementations are checked against).
func MatMul(a, b *Matrix) (*Matrix, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("tensor: matmul shape mismatch %dx%d x %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	out := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for k := 0; k < a.Cols; k++ {
			av := a.Data[i*a.Cols+k]
			if av == 0 {
				continue
			}
			bRow := b.Data[k*b.Cols : (k+1)*b.Cols]
			oRow := out.Data[i*b.Cols : (i+1)*b.Cols]
			for j := range bRow {
				oRow[j] += av * bRow[j]
			}
		}
	}
	return out, nil
}

// AccumulateMul adds a x b into out (the inner step of blocked GEMM).
func AccumulateMul(out, a, b *Matrix) error {
	if a.Cols != b.Rows || out.Rows != a.Rows || out.Cols != b.Cols {
		return fmt.Errorf("tensor: accumulate-mul shape mismatch")
	}
	for i := 0; i < a.Rows; i++ {
		for k := 0; k < a.Cols; k++ {
			av := a.Data[i*a.Cols+k]
			if av == 0 {
				continue
			}
			bRow := b.Data[k*b.Cols : (k+1)*b.Cols]
			oRow := out.Data[i*out.Cols : (i+1)*out.Cols]
			for j := range bRow {
				oRow[j] += av * bRow[j]
			}
		}
	}
	return nil
}

// Equal reports element-wise equality within tol.
func (m *Matrix) Equal(o *Matrix, tol float64) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return false
	}
	for i := range m.Data {
		if math.Abs(float64(m.Data[i]-o.Data[i])) > tol {
			return false
		}
	}
	return true
}

// Bytes encodes the matrix row-major as little-endian float32.
func (m *Matrix) Bytes() []byte {
	out := make([]byte, 4*len(m.Data))
	for i, v := range m.Data {
		binary.LittleEndian.PutUint32(out[i*4:], math.Float32bits(v))
	}
	return out
}

// MatrixFromBytes decodes a rows x cols matrix from little-endian float32.
func MatrixFromBytes(rows, cols int, b []byte) (*Matrix, error) {
	if len(b) != rows*cols*4 {
		return nil, fmt.Errorf("tensor: %d bytes cannot hold %dx%d float32", len(b), rows, cols)
	}
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return m, nil
}
