package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMatMulIdentity(t *testing.T) {
	a := RandMatrix(8, 8, 1)
	id := NewMatrix(8, 8)
	for i := 0; i < 8; i++ {
		id.Set(i, i, 1)
	}
	got, err := MatMul(a, id)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(a, 1e-6) {
		t.Fatal("A x I != A")
	}
	if _, err := MatMul(a, NewMatrix(7, 8)); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestMatMulKnown(t *testing.T) {
	a := &Matrix{Rows: 2, Cols: 3, Data: []float32{1, 2, 3, 4, 5, 6}}
	b := &Matrix{Rows: 3, Cols: 2, Data: []float32{7, 8, 9, 10, 11, 12}}
	got, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{58, 64, 139, 154}
	for i, v := range want {
		if got.Data[i] != v {
			t.Fatalf("element %d = %v, want %v", i, got.Data[i], v)
		}
	}
}

// TestBlockedMatMulMatchesReference: tiling with AccumulateMul must agree
// with the straight triple loop — the correctness core of the GEMM example.
func TestBlockedMatMulMatchesReference(t *testing.T) {
	const n, tile = 32, 8
	a := RandMatrix(n, n, 2)
	b := RandMatrix(n, n, 3)
	want, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	got := NewMatrix(n, n)
	for i := 0; i < n; i += tile {
		for j := 0; j < n; j += tile {
			acc := NewMatrix(tile, tile)
			for k := 0; k < n; k += tile {
				if err := AccumulateMul(acc, a.Sub(i, k, tile, tile), b.Sub(k, j, tile, tile)); err != nil {
					t.Fatal(err)
				}
			}
			got.SetSub(i, j, acc)
		}
	}
	if !got.Equal(want, 1e-3) {
		t.Fatal("blocked GEMM diverges from reference")
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		m := RandMatrix(5, 9, seed)
		return m.Transpose().Transpose().Equal(m, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestBytesRoundTrip(t *testing.T) {
	m := RandMatrix(7, 11, 4)
	got, err := MatrixFromBytes(7, 11, m.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m, 0) {
		t.Fatal("matrix byte round-trip mismatch")
	}
	if _, err := MatrixFromBytes(7, 11, make([]byte, 3)); err == nil {
		t.Fatal("short buffer accepted")
	}

	ts := RandTensor3(3, 4, 5, 5)
	got3, err := Tensor3FromBytes(3, 4, 5, ts.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !got3.Equal(ts, 0) {
		t.Fatal("tensor byte round-trip mismatch")
	}
}

func TestSubSetSubRoundTrip(t *testing.T) {
	m := RandMatrix(16, 16, 6)
	tile := m.Sub(4, 8, 4, 4)
	o := NewMatrix(16, 16)
	o.SetSub(4, 8, tile)
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			if o.At(4+r, 8+c) != m.At(4+r, 8+c) {
				t.Fatal("Sub/SetSub mismatch")
			}
		}
	}
}

// TestTTVAgainstDirect checks every TTV mode against a direct summation.
func TestTTVAgainstDirect(t *testing.T) {
	ts := RandTensor3(4, 5, 6, 7)
	dims := [3]int{4, 5, 6}
	for mode := 0; mode < 3; mode++ {
		v := make([]float32, dims[mode])
		for i := range v {
			v[i] = float32(i + 1)
		}
		got, err := TTV(ts, v, mode)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			for j := 0; j < 5; j++ {
				for k := 0; k < 6; k++ {
					var want float64
					var g float32
					switch mode {
					case 0:
						if i != 0 {
							continue
						}
						for x := 0; x < 4; x++ {
							want += float64(v[x] * ts.At(x, j, k))
						}
						g = got.At(j, k)
					case 1:
						if j != 0 {
							continue
						}
						for x := 0; x < 5; x++ {
							want += float64(v[x] * ts.At(i, x, k))
						}
						g = got.At(i, k)
					case 2:
						if k != 0 {
							continue
						}
						for x := 0; x < 6; x++ {
							want += float64(v[x] * ts.At(i, j, x))
						}
						g = got.At(i, j)
					}
					if math.Abs(want-float64(g)) > 1e-3 {
						t.Fatalf("mode %d: element (%d,%d,%d) = %v, want %v", mode, i, j, k, g, want)
					}
				}
			}
		}
	}
	if _, err := TTV(ts, []float32{1}, 0); err == nil {
		t.Fatal("bad vector length accepted")
	}
	if _, err := TTV(ts, nil, 5); err == nil {
		t.Fatal("bad mode accepted")
	}
}

func TestContractReducesToMatMul(t *testing.T) {
	// With D3 = 1, Contract(t, b) is exactly A x B on the frontal slice.
	ts := NewTensor3(3, 4, 1)
	a := RandMatrix(3, 4, 8)
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			ts.Set(i, j, 0, a.At(i, j))
		}
	}
	b := RandMatrix(4, 5, 9)
	got, err := Contract(ts, b)
	if err != nil {
		t.Fatal(err)
	}
	want, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		for c := 0; c < 5; c++ {
			if math.Abs(float64(got.At(i, c, 0)-want.At(i, c))) > 1e-4 {
				t.Fatalf("contract (%d,%d) = %v, want %v", i, c, got.At(i, c, 0), want.At(i, c))
			}
		}
	}
	if _, err := Contract(ts, NewMatrix(3, 3)); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestHotspotConservesAtEquilibrium(t *testing.T) {
	// Uniform temperature with zero power is a fixed point.
	temp := NewMatrix(8, 8)
	for i := range temp.Data {
		temp.Data[i] = 42
	}
	power := NewMatrix(8, 8)
	next := HotspotStep(temp, power, 0.1)
	if !next.Equal(temp, 1e-6) {
		t.Fatal("uniform zero-power grid should be a fixed point")
	}
	// A hot cell diffuses: its neighbours warm up, it cools down.
	temp.Set(4, 4, 100)
	next = HotspotStep(temp, power, 0.1)
	if next.At(4, 4) >= 100 {
		t.Fatal("hot cell should cool")
	}
	if next.At(4, 5) <= 42 {
		t.Fatal("neighbour should warm")
	}
}

func TestConv2DDeltaKernel(t *testing.T) {
	in := RandMatrix(10, 10, 12)
	delta := NewMatrix(3, 3)
	delta.Set(1, 1, 1)
	out := Conv2D(in, delta)
	if !out.Equal(in, 1e-6) {
		t.Fatal("convolution with a delta kernel must be identity")
	}
	// A shifted delta translates the image.
	shift := NewMatrix(3, 3)
	shift.Set(1, 2, 1) // kernel offset (0, +1)
	out = Conv2D(in, shift)
	if out.At(5, 5) != in.At(5, 6) {
		t.Fatalf("shifted delta: got %v, want %v", out.At(5, 5), in.At(5, 6))
	}
}
