package tensor

// HotspotStep advances the Rodinia Hotspot thermal simulation by one time
// step on a temperature grid with a power map: each cell moves toward the
// average of its 4-neighbourhood plus local power dissipation. Boundary
// cells clamp to themselves (adiabatic edges).
func HotspotStep(temp, power *Matrix, stepScale float32) *Matrix {
	out := NewMatrix(temp.Rows, temp.Cols)
	at := func(r, c int) float32 {
		if r < 0 {
			r = 0
		}
		if r >= temp.Rows {
			r = temp.Rows - 1
		}
		if c < 0 {
			c = 0
		}
		if c >= temp.Cols {
			c = temp.Cols - 1
		}
		return temp.At(r, c)
	}
	for r := 0; r < temp.Rows; r++ {
		for c := 0; c < temp.Cols; c++ {
			t := temp.At(r, c)
			lap := at(r-1, c) + at(r+1, c) + at(r, c-1) + at(r, c+1) - 4*t
			out.Set(r, c, t+stepScale*(lap+power.At(r, c)))
		}
	}
	return out
}

// Conv2D computes a direct 2-D convolution of input with an odd-sized
// square kernel, zero-padded at the borders (the CUDA separable-convolution
// benchmark's semantics for a non-separated kernel).
func Conv2D(in, kernel *Matrix) *Matrix {
	out := NewMatrix(in.Rows, in.Cols)
	kh, kw := kernel.Rows/2, kernel.Cols/2
	for r := 0; r < in.Rows; r++ {
		for c := 0; c < in.Cols; c++ {
			var s float32
			for i := 0; i < kernel.Rows; i++ {
				rr := r + i - kh
				if rr < 0 || rr >= in.Rows {
					continue
				}
				for j := 0; j < kernel.Cols; j++ {
					cc := c + j - kw
					if cc < 0 || cc >= in.Cols {
						continue
					}
					s += kernel.At(i, j) * in.At(rr, cc)
				}
			}
			out.Set(r, c, s)
		}
	}
	return out
}
