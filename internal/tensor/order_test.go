package tensor

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// lessTotal64 is the test oracle: the IEEE-754 total order the key transform
// should reproduce (negative NaN < -Inf < negatives < -0 < +0 < positives <
// +Inf < positive NaN), spelled out by sign and magnitude so it shares no
// code with the transform under test.
func lessTotal64(a, b float64) bool {
	ba, bb := math.Float64bits(a), math.Float64bits(b)
	sa, sb := ba&(1<<63) != 0, bb&(1<<63) != 0
	switch {
	case sa != sb:
		return sa // the negative-sign side orders first
	case !sa:
		return ba < bb // non-negative: magnitude order is bit order
	default:
		return ba > bb // negative: bit order reversed
	}
}

func TestKeyRoundTrip(t *testing.T) {
	cases64 := []float64{
		0, math.Copysign(0, -1), 1, -1, 0.5, -0.5,
		math.Inf(1), math.Inf(-1), math.NaN(),
		math.MaxFloat64, -math.MaxFloat64,
		math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64,
	}
	for _, f := range cases64 {
		if got := FromKey64(Key64(f)); math.Float64bits(got) != math.Float64bits(f) {
			t.Errorf("FromKey64(Key64(%v)) = %v (bits %x != %x)", f, got, math.Float64bits(got), math.Float64bits(f))
		}
		f32 := float32(f)
		if got := FromKey32(Key32(f32)); math.Float32bits(got) != math.Float32bits(f32) {
			t.Errorf("FromKey32(Key32(%v)) = %v", f32, got)
		}
	}
	// Random bit patterns round-trip too (the transform is a bijection on
	// patterns, including NaN payloads).
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		b := rng.Uint64()
		if got := math.Float64bits(FromKey64(Key64(math.Float64frombits(b)))); got != b {
			t.Fatalf("round trip of bits %x = %x", b, got)
		}
		b32 := uint32(rng.Uint64())
		if got := math.Float32bits(FromKey32(Key32(math.Float32frombits(b32)))); got != b32 {
			t.Fatalf("round trip of bits %x = %x", b32, got)
		}
		if got := Key64(FromKey64(b)); got != b {
			t.Fatalf("key round trip of %x = %x", b, got)
		}
	}
}

func TestKeyOrderMatchesTotalOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	vals := []float64{
		0, math.Copysign(0, -1), math.Inf(1), math.Inf(-1),
		math.NaN(), -math.NaN(),
		math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64,
		1, -1, 1e300, -1e300,
	}
	for i := 0; i < 500; i++ {
		vals = append(vals, math.Float64frombits(rng.Uint64()))
	}
	for _, a := range vals {
		for _, b := range vals {
			if got, want := Key64(a) < Key64(b), lessTotal64(a, b); got != want {
				t.Fatalf("Key64 order of (%v, %v): key-less %v, total-order-less %v", a, b, got, want)
			}
		}
	}
	// Sorting by key sorts numerically (NaN-free slice).
	nums := make([]float32, 200)
	for i := range nums {
		nums[i] = float32(rng.NormFloat64() * 100)
	}
	sort.Slice(nums, func(i, j int) bool { return Key32(nums[i]) < Key32(nums[j]) })
	for i := 1; i < len(nums); i++ {
		if nums[i-1] > nums[i] {
			t.Fatalf("key sort out of order at %d: %v > %v", i, nums[i-1], nums[i])
		}
	}
}

func TestKeyBoundaries(t *testing.T) {
	if k0, kneg0 := Key64(0), Key64(math.Copysign(0, -1)); k0 != kneg0+1 {
		t.Errorf("keys of +0 (%x) and -0 (%x) are not adjacent", k0, kneg0)
	}
	if Key32(0) != 1<<31 {
		t.Errorf("Key32(+0) = %x, want %x", Key32(0), uint32(1<<31))
	}
	// Adjacent finite floats have adjacent keys, so "strictly greater than f"
	// is exactly [Key(f)+1, max].
	for _, f := range []float64{0, 1, -1, 1e-300, 12345.678} {
		next := math.Nextafter(f, math.Inf(1))
		if Key64(next) != Key64(f)+1 {
			t.Errorf("Key64(nextafter(%v)) = %x, want %x+1", f, Key64(next), Key64(f))
		}
	}
	// Negative-sign NaNs sit below everything, positive-sign NaNs above.
	negNaN := math.Float64frombits(0xfff8000000000001)
	posNaN := math.Float64frombits(0x7ff8000000000001)
	if Key64(negNaN) >= Key64(math.Inf(-1)) {
		t.Errorf("negative NaN key %x not below -Inf key %x", Key64(negNaN), Key64(math.Inf(-1)))
	}
	if Key64(posNaN) <= Key64(math.Inf(1)) {
		t.Errorf("positive NaN key %x not above +Inf key %x", Key64(posNaN), Key64(math.Inf(1)))
	}
}
