package interconnect

import (
	"testing"

	"nds/internal/sim"
)

func TestEfficiencyCurveMatchesPaper(t *testing.T) {
	l := NVMeoF()
	// §2.1: a 32 KB request achieves about 66% of peak.
	e32k := l.Efficiency(32 * 1024)
	if e32k < 0.60 || e32k > 0.75 {
		t.Errorf("32 KB efficiency = %.2f, want ~0.66", e32k)
	}
	// §2.1: bandwidth saturates for requests >= 2 MB.
	e2m := l.Efficiency(2 * 1024 * 1024)
	if e2m < 0.98 {
		t.Errorf("2 MB efficiency = %.2f, want >= 0.98 (saturated)", e2m)
	}
	// Efficiency is monotone in request size.
	prev := 0.0
	for _, n := range []int64{512, 4096, 32768, 262144, 2097152, 16777216} {
		e := l.Efficiency(n)
		if e < prev {
			t.Errorf("efficiency not monotone at %d bytes: %.3f < %.3f", n, e, prev)
		}
		prev = e
	}
}

func TestTransferSerializes(t *testing.T) {
	l := New("test", 1e9, sim.Microsecond)
	_, end1 := l.Transfer(0, 1000) // 1us overhead + 1us payload
	if end1 != 2*sim.Microsecond {
		t.Fatalf("first transfer ends at %v, want 2us", end1)
	}
	start2, _ := l.Transfer(0, 1000)
	if start2 != end1 {
		t.Fatalf("second transfer starts at %v, want %v (queued)", start2, end1)
	}
	if l.BusyTime() != 4*sim.Microsecond {
		t.Fatalf("busy = %v, want 4us", l.BusyTime())
	}
	l.Reset()
	if l.FreeAt() != 0 {
		t.Fatal("reset should clear the timeline")
	}
}

func TestEffectiveBandwidthBounds(t *testing.T) {
	for _, l := range []*Link{NVMeoF(), ConsumerNVMe(), PCIeX16()} {
		if l.Efficiency(0) != 0 {
			t.Errorf("%s: zero-byte efficiency should be 0", l.Name)
		}
		if bw := l.EffectiveBandwidth(64 << 20); bw > l.PeakBW {
			t.Errorf("%s: effective bandwidth %v exceeds peak %v", l.Name, bw, l.PeakBW)
		}
	}
}
