// Package interconnect models the host-to-device links of the evaluation
// platform: NVMe-over-Fabrics through a 40 Gbps RDMA NIC (the paper's
// prototype path), consumer NVMe, and the GPU's PCIe connection. A link has a
// peak bandwidth and a fixed per-command overhead, which together produce the
// size-dependent efficiency curve behind problem [P2]: requests saturate the
// link only when they are large (>= 2 MB in NVMe per §2.1), while a 32 KB
// request reaches only about two thirds of peak.
package interconnect

import (
	"fmt"

	"nds/internal/sim"
)

// Link is a serially-occupied transfer channel.
type Link struct {
	Name        string
	PeakBW      float64  // bytes per second at full efficiency
	CmdOverhead sim.Time // fixed per-command cost (submission, doorbells, completion)

	res *sim.Resource
}

// New creates a link.
func New(name string, peakBW float64, cmdOverhead sim.Time) *Link {
	return &Link{Name: name, PeakBW: peakBW, CmdOverhead: cmdOverhead, res: sim.NewResource(name)}
}

// NVMeoF models the prototype's 40 Gbps NVMe-over-Fabrics path: ~4.6 GB/s
// payload peak with a 3 us per-command overhead, which yields ~66% efficiency
// at 32 KB and saturation beyond 2 MB, matching §2.1.
func NVMeoF() *Link { return New("nvmeof", 4.6e9, 3*sim.Microsecond) }

// ConsumerNVMe models the 8-channel consumer-class NVMe SSD link of Fig. 3.
func ConsumerNVMe() *Link { return New("nvme", 3.5e9, 2*sim.Microsecond) }

// PCIeX16 models the GPU's PCIe 3.0 x16 slot for host-device copies.
func PCIeX16() *Link { return New("pcie-x16", 12e9, 2*sim.Microsecond) }

// Duration is the service time of one command moving n bytes.
func (l *Link) Duration(n int64) sim.Time {
	return l.CmdOverhead + sim.TransferTime(n, l.PeakBW)
}

// Efficiency is the achieved fraction of peak bandwidth for commands of n
// bytes.
func (l *Link) Efficiency(n int64) float64 {
	if n <= 0 {
		return 0
	}
	x := sim.TransferTime(n, l.PeakBW)
	return x.Seconds() / l.Duration(n).Seconds()
}

// EffectiveBandwidth is PeakBW * Efficiency(n).
func (l *Link) EffectiveBandwidth(n int64) float64 {
	return l.PeakBW * l.Efficiency(n)
}

// Transfer schedules one command of n bytes arriving at time at, returning
// its start and completion.
func (l *Link) Transfer(at sim.Time, n int64) (start, end sim.Time) {
	return l.res.Acquire(at, l.Duration(n))
}

// FreeAt reports when the link next becomes idle.
func (l *Link) FreeAt() sim.Time { return l.res.FreeAt() }

// BusyTime reports accumulated service time.
func (l *Link) BusyTime() sim.Time { return l.res.BusyTime() }

// Reset returns the link to the idle state.
func (l *Link) Reset() { l.res.Reset() }

func (l *Link) String() string {
	return fmt.Sprintf("%s: %.1f GB/s peak, %v/cmd", l.Name, l.PeakBW/1e9, l.CmdOverhead)
}
