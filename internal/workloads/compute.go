package workloads

import (
	"fmt"
	"math"

	"nds/internal/tensor"
)

// This file holds the functional (real-compute) forms of the graph and
// data-mining kernels of Table 1; the dense linear-algebra and tensor
// kernels live in internal/tensor. The examples run these kernels on data
// fetched through the actual NDS data path, and the tests here pin their
// semantics against brute-force references.

// BFS computes breadth-first levels over a dense adjacency matrix (non-zero
// = edge), returning -1 for unreachable vertices — the Rodinia BFS kernel's
// output.
func BFS(adj *tensor.Matrix, src int) ([]int, error) {
	n := adj.Rows
	if adj.Cols != n {
		return nil, fmt.Errorf("workloads: BFS needs a square adjacency, got %dx%d", adj.Rows, adj.Cols)
	}
	if src < 0 || src >= n {
		return nil, fmt.Errorf("workloads: BFS source %d out of range", src)
	}
	level := make([]int, n)
	for i := range level {
		level[i] = -1
	}
	level[src] = 0
	frontier := []int{src}
	for d := 1; len(frontier) > 0; d++ {
		var next []int
		for _, u := range frontier {
			row := adj.Data[u*n : (u+1)*n]
			for v, w := range row {
				if w != 0 && level[v] < 0 {
					level[v] = d
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
	return level, nil
}

// SSSP runs Bellman-Ford over a dense weight matrix (0 = no edge, weights
// must be positive), returning +Inf for unreachable vertices.
func SSSP(w *tensor.Matrix, src int) ([]float32, error) {
	n := w.Rows
	if w.Cols != n {
		return nil, fmt.Errorf("workloads: SSSP needs a square weight matrix")
	}
	if src < 0 || src >= n {
		return nil, fmt.Errorf("workloads: SSSP source %d out of range", src)
	}
	inf := float32(math.Inf(1))
	dist := make([]float32, n)
	for i := range dist {
		dist[i] = inf
	}
	dist[src] = 0
	for pass := 0; pass < n-1; pass++ {
		changed := false
		for u := 0; u < n; u++ {
			if dist[u] == inf {
				continue
			}
			row := w.Data[u*n : (u+1)*n]
			for v, wt := range row {
				if wt > 0 && dist[u]+wt < dist[v] {
					dist[v] = dist[u] + wt
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return dist, nil
}

// KMeans clusters the rows of points into k clusters with Lloyd iterations
// from deterministic initial centroids (the first k points), returning the
// centroids and per-point assignment.
func KMeans(points *tensor.Matrix, k, iters int) (*tensor.Matrix, []int, error) {
	n, d := points.Rows, points.Cols
	if k <= 0 || k > n {
		return nil, nil, fmt.Errorf("workloads: k=%d out of range for %d points", k, n)
	}
	centroids := points.Sub(0, 0, k, d)
	assign := make([]int, n)
	for it := 0; it < iters; it++ {
		assignPoints(points, centroids, assign)
		centroids = updateCentroids(points, centroids, assign, k)
	}
	return centroids, assign, nil
}

// pointDist is the squared Euclidean distance between row i of points and row
// c of centroids, accumulated in float64 — the single definition every KMeans
// and KNN variant (host or device-resident) shares, so distances are
// bit-identical across them.
func pointDist(points, centroids *tensor.Matrix, i, c int) float64 {
	var s float64
	for j := 0; j < points.Cols; j++ {
		diff := float64(points.At(i, j) - centroids.At(c, j))
		s += diff * diff
	}
	return s
}

// assignPoints is KMeans' assignment step: each point to its nearest centroid
// (strict <, so ties go to the lowest centroid index).
func assignPoints(points, centroids *tensor.Matrix, assign []int) {
	k := centroids.Rows
	for i := 0; i < points.Rows; i++ {
		best, bestD := 0, math.Inf(1)
		for c := 0; c < k; c++ {
			if s := pointDist(points, centroids, i, c); s < bestD {
				best, bestD = c, s
			}
		}
		assign[i] = best
	}
}

// updateCentroids is KMeans' update step: the mean of each cluster's points,
// with empty clusters keeping their centroid in place.
func updateCentroids(points, centroids *tensor.Matrix, assign []int, k int) *tensor.Matrix {
	d := points.Cols
	next := tensor.NewMatrix(k, d)
	count := make([]int, k)
	for i := 0; i < points.Rows; i++ {
		c := assign[i]
		count[c]++
		for j := 0; j < d; j++ {
			next.Set(c, j, next.At(c, j)+points.At(i, j))
		}
	}
	for c := 0; c < k; c++ {
		if count[c] == 0 {
			for j := 0; j < d; j++ {
				next.Set(c, j, centroids.At(c, j))
			}
			continue
		}
		inv := 1 / float32(count[c])
		for j := 0; j < d; j++ {
			next.Set(c, j, next.At(c, j)*inv)
		}
	}
	return next
}

// KNN returns the indices of the k nearest rows of points to query, in
// ascending distance order (the kNN-CUDA kernel's output).
func KNN(points *tensor.Matrix, query []float32, k int) ([]int, error) {
	n, d := points.Rows, points.Cols
	if len(query) != d {
		return nil, fmt.Errorf("workloads: query dimension %d does not match points %d", len(query), d)
	}
	if k <= 0 || k > n {
		return nil, fmt.Errorf("workloads: k=%d out of range for %d points", k, n)
	}
	type cand struct {
		idx int
		d   float64
	}
	best := make([]cand, 0, k+1)
	for i := 0; i < n; i++ {
		var s float64
		row := points.Data[i*d : (i+1)*d]
		for j, q := range query {
			diff := float64(row[j] - q)
			s += diff * diff
		}
		pos := len(best)
		for pos > 0 && best[pos-1].d > s {
			pos--
		}
		if pos < k {
			best = append(best, cand{})
			copy(best[pos+1:], best[pos:])
			best[pos] = cand{i, s}
			if len(best) > k {
				best = best[:k]
			}
		}
	}
	out := make([]int, len(best))
	for i, c := range best {
		out[i] = c.idx
	}
	return out, nil
}

// PageRank runs damped power iteration over a dense adjacency matrix
// (non-zero = edge), returning the rank vector.
func PageRank(adj *tensor.Matrix, damping float32, iters int) ([]float32, error) {
	n := adj.Rows
	if adj.Cols != n {
		return nil, fmt.Errorf("workloads: PageRank needs a square adjacency")
	}
	outDeg := make([]float32, n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if adj.At(u, v) != 0 {
				outDeg[u]++
			}
		}
	}
	rank := make([]float32, n)
	for i := range rank {
		rank[i] = 1 / float32(n)
	}
	base := (1 - damping) / float32(n)
	for it := 0; it < iters; it++ {
		next := make([]float32, n)
		var dangling float32
		for u := 0; u < n; u++ {
			if outDeg[u] == 0 {
				dangling += rank[u]
				continue
			}
			share := damping * rank[u] / outDeg[u]
			row := adj.Data[u*n : (u+1)*n]
			for v, w := range row {
				if w != 0 {
					next[v] += share
				}
			}
		}
		spread := damping * dangling / float32(n)
		for v := range next {
			next[v] += base + spread
		}
		rank = next
	}
	return rank, nil
}

// PageRankDelta runs the delta-filtered (incremental) PageRank variant the
// device-resident kernel implements: each vertex remembers the rank it last
// propagated, and only vertices whose rank moved by more than tol since then
// push the difference to their out-neighbours; everyone else's contribution
// stays in the accumulated in-flow. With tol = 0 it is mathematically the
// same fixed point as PageRank (summation order differs, so floats agree only
// approximately); with tol > 0 converged vertices stop touching their
// adjacency rows — which is exactly the traffic the device kernel stops
// moving across the interconnect. This host form is the bit-exact oracle for
// PageRankDevice.
func PageRankDelta(adj *tensor.Matrix, damping float32, iters int, tol float32) ([]float32, error) {
	n := adj.Rows
	if adj.Cols != n {
		return nil, fmt.Errorf("workloads: PageRank needs a square adjacency")
	}
	outDeg := make([]float32, n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if adj.At(u, v) != 0 {
				outDeg[u]++
			}
		}
	}
	rank := make([]float32, n)
	for i := range rank {
		rank[i] = 1 / float32(n)
	}
	prop := make([]float32, n) // rank each vertex last propagated (0 = never)
	acc := make([]float32, n)  // accumulated in-neighbour flow
	base := (1 - damping) / float32(n)
	for it := 0; it < iters; it++ {
		for u := 0; u < n; u++ {
			if outDeg[u] == 0 {
				continue
			}
			delta := rank[u] - prop[u]
			ad := delta
			if ad < 0 {
				ad = -ad
			}
			if ad <= tol {
				continue
			}
			share := damping * delta / outDeg[u]
			row := adj.Data[u*n : (u+1)*n]
			for v, w := range row {
				if w != 0 {
					acc[v] += share
				}
			}
			prop[u] = rank[u]
		}
		var dangling float32
		for u := 0; u < n; u++ {
			if outDeg[u] == 0 {
				dangling += rank[u]
			}
		}
		spread := damping * dangling / float32(n)
		for v := 0; v < n; v++ {
			rank[v] = base + spread + acc[v]
		}
	}
	return rank, nil
}
