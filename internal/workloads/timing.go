package workloads

import (
	"fmt"

	"nds/internal/accel"
	"nds/internal/hostsim"
	"nds/internal/sim"
	"nds/internal/stl"
	"nds/internal/system"
)

// Result is one workload's Figure 10 outcome.
type Result struct {
	Spec Spec

	// End-to-end pipelined latency per configuration.
	Baseline sim.Time
	Software sim.Time
	Hardware sim.Time
	Oracle   sim.Time // zero-overhead software library + per-workload optimal layout

	// Idle time before the compute kernel (Figure 10b).
	BaselineIdle sim.Time
	SoftwareIdle sim.Time
	HardwareIdle sim.Time

	SpeedupSoftware float64
	SpeedupHardware float64
	SpeedupOracle   float64

	IdleReductionSW float64 // fraction of baseline kernel idle removed
	IdleReductionHW float64

	// Pushdown variant (Spec.Push != nil): the same pipeline with the
	// selection phase executed at the STL, so the copy and kernel stages
	// consume result bytes instead of raw partitions.
	SoftwarePush        sim.Time
	HardwarePush        sim.Time
	SpeedupSoftwarePush float64 // vs Baseline
	SpeedupHardwarePush float64 // vs Baseline
	PushWinHW           float64 // Hardware / HardwarePush: >1 = end-to-end sim-time win

	// Per-iteration stage split (Figure 10's I/O vs compute decomposition)
	// for the read and pushdown fetch forms.
	SWFetch, HWFetch         sim.Time
	SWPushFetch, HWPushFetch sim.Time
	CopyRead, KernelRead     sim.Time
	CopyPush, KernelPush     sim.Time

	// Per-iteration interconnect volume, measured from the fetch stage's
	// OpStats (result pages under hardware pushdown, raw pages on software).
	HWLinkBytes, HWPushLinkBytes int64
	SWLinkBytes, SWPushLinkBytes int64
}

// linearRuns decomposes a partition (at/sub over dims) of a row-major linear
// layout into contiguous byte runs — the I/O requests the baseline
// application must issue.
func linearRuns(dims []int64, elem int, at, sub []int64) []system.Run {
	m := len(dims)
	shape := make([]int64, m)
	for i := range shape {
		lo := at[i] * sub[i]
		hi := lo + sub[i]
		if hi > dims[i] {
			hi = dims[i]
		}
		shape[i] = hi - lo
	}
	// Row-major strides in bytes.
	strides := make([]int64, m)
	s := int64(elem)
	for i := m - 1; i >= 0; i-- {
		strides[i] = s
		s *= dims[i]
	}
	var runs []system.Run
	idx := make([]int64, m)
	for {
		off := int64(0)
		for i := 0; i < m; i++ {
			off += (at[i]*sub[i] + idx[i]) * strides[i]
		}
		length := shape[m-1] * int64(elem)
		if n := len(runs); n > 0 && runs[n-1].Off+runs[n-1].Len == off {
			runs[n-1].Len += length // contiguous with the previous run: merge
		} else {
			runs = append(runs, system.Run{Off: off, Len: length})
		}
		i := m - 2
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < shape[i] {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			return runs
		}
	}
}

// varyCoord shifts a fetch's coordinate for measurement repetition r along
// the first dimension with room, so repeated fetches touch distinct pages
// (consecutive pipeline iterations never re-read the same partition).
func varyCoord(spec Spec, f Fetch, r int) []int64 {
	at := append([]int64(nil), f.At...)
	for i := range at {
		if (at[i]+int64(r)+1)*f.Sub[i] <= spec.Dims[i] {
			at[i] += int64(r)
			return at
		}
	}
	return at
}

// platformFor builds and loads the three systems for a spec.
func platformFor(spec Spec) (base, sw, hw *system.System, swView, hwView *stl.View, err error) {
	cfg := system.PrototypeConfig(spec.Bytes(), true)
	if spec.BBOrder != 0 {
		cfg.STL.BBOrder = spec.BBOrder
		cfg.STL.BBMultiplier = 1
	}
	if base, err = system.New(system.Baseline, cfg); err != nil {
		return
	}
	if sw, err = system.New(system.SoftwareNDS, cfg); err != nil {
		return
	}
	if hw, err = system.New(system.HardwareNDS, cfg); err != nil {
		return
	}
	sw.BlockedAssembly = spec.Blocked
	hw.BlockedAssembly = spec.Blocked
	// Baseline: bulk row-major load.
	ps := int64(cfg.Geometry.PageSize)
	pages := spec.Bytes() / ps
	for lpn := int64(0); lpn < pages; lpn += 65536 {
		cnt := pages - lpn
		if cnt > 65536 {
			cnt = 65536
		}
		if _, e := base.FTL.WritePages(0, lpn, nil, cnt); e != nil {
			err = fmt.Errorf("workloads: baseline load: %w", e)
			return
		}
	}
	// NDS systems: spaces written in building-block row bands.
	for _, sys := range []*system.System{sw, hw} {
		sp, e := sys.STL.CreateSpace(spec.Elem, spec.Dims)
		if e != nil {
			err = e
			return
		}
		v, e := stl.NewView(sp, spec.Dims)
		if e != nil {
			err = e
			return
		}
		band := sp.BlockDims()[0]
		sub := append([]int64{band}, spec.Dims[1:]...)
		coord := make([]int64, len(spec.Dims))
		for i := int64(0); i*band < spec.Dims[0]; i++ {
			coord[0] = i
			if _, _, e := sys.STL.WritePartition(0, v, coord, sub, nil); e != nil {
				err = fmt.Errorf("workloads: %v load: %w", sys.Kind, e)
				return
			}
		}
		if sys.Kind == system.SoftwareNDS {
			swView = v
		} else {
			hwView = v
		}
	}
	base.ResetTimelines()
	sw.ResetTimelines()
	hw.ResetTimelines()
	return
}

// Run evaluates one workload on all configurations and returns the Figure 10
// data point. Stage durations are measured once per configuration on a quiet
// platform (the access pattern is identical across iterations), then the
// paper's software pipeline — fetch, [marshal,] host-to-device copy, kernel —
// is scheduled for the workload's full iteration count.
func Run(spec Spec) (Result, error) {
	res := Result{Spec: spec}
	base, sw, hw, swView, hwView, err := platformFor(spec)
	if err != nil {
		return res, err
	}

	// --- Stage durations. ---
	// Baseline fetch: the paper's baselines are individually tuned (§6.2),
	// so for each partition the baseline uses whichever is cheaper of
	//   (a) gathering the partition with one I/O per contiguous run at the
	//       workload's queue depth, or
	//   (b) fetching the partition's whole contiguous superset (§2.1's
	//       "fetch consecutive chunks into a large memory buffer" strategy,
	//       which wastes I/O bandwidth on unneeded bytes but avoids small
	//       requests) and extracting on the CPU.
	// Either way, a non-contiguous partition costs a marshalling stage that
	// reads and rewrites every byte (2x traffic) in one chunk per fragment.
	// Stage durations are measured in steady state: each pattern repeats
	// reps times back-to-back (pipelined applications keep the next request
	// in flight while earlier data drains), and the per-iteration duration
	// is the average.
	const reps = 4
	qd := spec.GatherQD
	if qd == 0 {
		qd = 1
	}
	var baseFetch sim.Time
	totalRuns := 0
	for _, f := range spec.Fetches {
		totalRuns += len(linearRuns(spec.Dims, spec.Elem, f.At, f.Sub))

		base.ResetTimelines()
		var repeated []system.Run
		for r := 0; r < reps; r++ {
			repeated = append(repeated, linearRuns(spec.Dims, spec.Elem, varyCoord(spec, f, r), f.Sub)...)
		}
		_, st, err := base.BaselineRead(0, repeated, false, qd)
		if err != nil {
			return res, err
		}
		gather := st.Done / reps

		base.ResetTimelines()
		var sup []system.Run
		for r := 0; r < reps; r++ {
			runs := linearRuns(spec.Dims, spec.Elem, varyCoord(spec, f, r), f.Sub)
			span := runs[len(runs)-1].Off + runs[len(runs)-1].Len - runs[0].Off
			sup = append(sup, system.Run{Off: runs[0].Off, Len: span})
		}
		_, st, err = base.BaselineRead(0, sup, false, 2)
		if err != nil {
			return res, err
		}
		superset := st.Done / reps

		baseFetch += sim.Min(gather, superset)
	}

	var marshal sim.Time
	if totalRuns > len(spec.Fetches) {
		host := hostsim.New(hostsim.DefaultParams())
		marshal = host.MarshalDuration(2*spec.FetchBytes(), totalRuns)
	}

	// Oracle fetch: the per-workload optimal layout stores each partition
	// contiguously (at the cost of dataset copies for shared inputs), and
	// the zero-overhead library adds no CPU work.
	var oracleFetch sim.Time
	for _, f := range spec.Fetches {
		n := int64(spec.Elem)
		for _, d := range f.Sub {
			n *= d
		}
		base.ResetTimelines()
		runs := make([]system.Run, reps)
		for r := range runs {
			off := int64(r) * n
			if off+n > spec.Bytes() {
				off = 0
			}
			runs[r] = system.Run{Off: off, Len: n}
		}
		_, st, err := base.BaselineRead(0, runs, false, 2)
		if err != nil {
			return res, err
		}
		oracleFetch += st.Done / reps
	}

	// NDS fetches: reps commands in flight, averaged. push routes each fetch
	// through the pushdown selection model (NDSSelect: identical plan and
	// stage structure to a scan, with the result volume the spec declares);
	// the per-iteration link bytes come from the same OpStats.
	ndsFetch := func(sys *system.System, v *stl.View, push bool) (sim.Time, int64, error) {
		sys.ResetTimelines()
		var t sim.Time
		var raw int64
		for r := 0; r < reps; r++ {
			for _, f := range spec.Fetches {
				var st system.OpStats
				var err error
				if push {
					st, err = sys.NDSSelect(0, v, varyCoord(spec, f, r), f.Sub, spec.pushResultBytes(f))
				} else {
					_, st, err = sys.NDSRead(0, v, varyCoord(spec, f, r), f.Sub)
				}
				if err != nil {
					return 0, 0, err
				}
				t = sim.Max(t, st.Done)
				raw += st.RawBytes
			}
		}
		return t / reps, raw / reps, nil
	}
	swFetch, swRaw, err := ndsFetch(sw, swView, false)
	if err != nil {
		return res, err
	}
	hwFetch, hwRaw, err := ndsFetch(hw, hwView, false)
	if err != nil {
		return res, err
	}

	gpu := accel.NewGPU()
	copyD := gpu.CopyDuration(spec.FetchBytes())
	kernel := spec.Curve.Duration(spec.FetchBytes(), spec.RateDim)

	// --- Pipelines. ---
	run4 := func(fetch, marshal sim.Time) (sim.Time, sim.Time) {
		p := sim.NewPipeline(4)
		for i := int64(0); i < spec.Iters; i++ {
			p.Feed(fetch, marshal, copyD, kernel)
		}
		return p.End(), p.Idle(3)
	}
	run3 := func(fetch, cp, kn sim.Time) (sim.Time, sim.Time) {
		p := sim.NewPipeline(3)
		for i := int64(0); i < spec.Iters; i++ {
			p.Feed(fetch, cp, kn)
		}
		return p.End(), p.Idle(2)
	}
	res.Baseline, res.BaselineIdle = run4(baseFetch, marshal)
	res.Software, res.SoftwareIdle = run3(swFetch, copyD, kernel)
	res.Hardware, res.HardwareIdle = run3(hwFetch, copyD, kernel)
	res.Oracle, _ = run3(oracleFetch, copyD, kernel)
	res.SWFetch, res.HWFetch = swFetch, hwFetch
	res.SWLinkBytes, res.HWLinkBytes = swRaw, hwRaw
	res.CopyRead, res.KernelRead = copyD, kernel

	res.SpeedupSoftware = res.Baseline.Seconds() / res.Software.Seconds()
	res.SpeedupHardware = res.Baseline.Seconds() / res.Hardware.Seconds()
	res.SpeedupOracle = res.Baseline.Seconds() / res.Oracle.Seconds()
	if res.BaselineIdle > 0 {
		res.IdleReductionSW = 1 - res.SoftwareIdle.Seconds()/res.BaselineIdle.Seconds()
		res.IdleReductionHW = 1 - res.HardwareIdle.Seconds()/res.BaselineIdle.Seconds()
	}

	if spec.Push != nil {
		swPushFetch, swPushRaw, err := ndsFetch(sw, swView, true)
		if err != nil {
			return res, err
		}
		hwPushFetch, hwPushRaw, err := ndsFetch(hw, hwView, true)
		if err != nil {
			return res, err
		}
		// Downstream of the selection, the host copies and computes over
		// result bytes, not raw partitions.
		resBytes := spec.PushResultBytes()
		copyP := gpu.CopyDuration(resBytes)
		kernelP := spec.Curve.Duration(resBytes, spec.RateDim)
		res.SoftwarePush, _ = run3(swPushFetch, copyP, kernelP)
		res.HardwarePush, _ = run3(hwPushFetch, copyP, kernelP)
		res.SWPushFetch, res.HWPushFetch = swPushFetch, hwPushFetch
		res.SWPushLinkBytes, res.HWPushLinkBytes = swPushRaw, hwPushRaw
		res.CopyPush, res.KernelPush = copyP, kernelP
		res.SpeedupSoftwarePush = res.Baseline.Seconds() / res.SoftwarePush.Seconds()
		res.SpeedupHardwarePush = res.Baseline.Seconds() / res.HardwarePush.Seconds()
		res.PushWinHW = res.Hardware.Seconds() / res.HardwarePush.Seconds()
	}
	return res, nil
}
