// Package workloads implements the ten applications of Table 1 — graph
// traversal (BFS, SSSP), linear algebra (Block-GEMM), physics simulation
// (Hotspot), data mining (K-Means, KNN), graph analytics (PageRank), image
// processing (Conv2D), and tensor algebra (TTV, TC) — in two forms:
//
//   - a paper-scale *timed* form (timing.go) that drives the simulated
//     platforms with each application's real access pattern and models the
//     compute kernel with the calibrated accelerator curves, reproducing
//     Figure 10; and
//   - a small-scale *functional* form (compute.go) with real Go kernels that
//     read their inputs through the actual NDS data path, validating
//     correctness end to end.
//
// Dataset dimensions are the paper's scaled by a factor recorded per spec
// (the paper's 65536-wide datasets exceed a laptop's memory even in phantom
// mode); every stage of the pipeline scales near-linearly, so speedup ratios
// are preserved.
package workloads

import (
	"nds/internal/accel"
	"nds/internal/system"
)

// Fetch is one partition fetched per pipeline iteration.
type Fetch struct {
	Sub []int64 // sub-dimensionality of the partition
	At  []int64 // representative coordinate used for stage measurement
}

// PushSpec models a workload's pushdown variant: the selection phase — the
// part of the kernel that decides which elements matter — executes at the
// STL, so on hardware NDS only result bytes cross the interconnect while
// software NDS still ships every raw page before filtering at host speed.
type PushSpec struct {
	// Selectivity is the fraction of each fetched partition's elements the
	// selection returns (scan-style selection).
	Selectivity float64
	// Reduce marks top-k reduce selection — a 32-byte result header plus 16
	// bytes per entry — instead of a scan (16-byte header + 16 bytes/match).
	Reduce bool
	// K is the top-k depth when Reduce is set.
	K int
}

// Spec describes one Table 1 workload.
type Spec struct {
	Name       string
	Category   string
	SharedWith string // dataset-sharing partner, if any ("" otherwise)

	Dims    []int64 // dataset dimensionality (scaled)
	Elem    int     // element size in bytes
	BBOrder int     // STL building-block order (0 = default 2-D)

	Fetches []Fetch // partitions fetched each iteration
	Iters   int64   // pipeline iterations (tiles x algorithm passes)

	Curve   accel.RateCurve // compute-kernel rate curve
	RateDim int64           // working-set dimension for the curve lookup

	// GatherQD is the baseline's I/O queue depth when it gathers a
	// partition with per-row requests (§6.2: each baseline is individually
	// tuned; the ported implementations use small read-ahead rings).
	GatherQD int

	// Blocked declares that the kernel consumes objects in
	// building-block-tiled layout, so NDS assembly copies whole pages
	// (tensor kernels operating on tiles).
	Blocked bool

	// Scale is the divisor applied to the paper's dataset dimensions.
	Scale int64

	// Push, when non-nil, is the workload's device-resident form: the
	// selection phase runs as an in-storage scan/reduce over each fetched
	// partition (BFS/SSSP frontier expansion, KNN/KMeans distance pruning,
	// PageRank delta filtering).
	Push *PushSpec
}

// Catalog returns the ten workloads of Table 1.
//
// Access-pattern notes (the paper gives kernel sub-dimensions; the pattern
// rationale follows each workload's algorithm):
//
//   - BFS consumes adjacency rows (out-neighbour lists) — sequential in the
//     row-store baseline, which is why §7.2 reports almost no software-NDS
//     benefit for BFS.
//   - SSSP (Bellman-Ford, gather form) relaxes by destination vertex:
//     column bands of the adjacency matrix.
//   - GEMM fetches 2-D tile pairs (Tensor-Core cuBLAS via MSplitGEMM).
//   - Hotspot and Conv2D fetch square interior tiles.
//   - K-Means computes distances feature-major on the GPU: column bands of
//     the point matrix (the transposed consumer view NDS provides for free).
//   - KNN shares K-Means' dataset but streams it row-major — the elasticity
//     pair of §6.2.
//   - PageRank alternates a contiguous out-edge row band with an in-rank
//     column band (GraphChi-style shards).
//   - TTV and TC share a 3-D tensor (3-D building blocks); TTV fetches
//     mode-2 bricks (strided in a linear layout), TC fetches lateral slabs.
func Catalog() []Spec {
	return []Spec{
		{
			Name: "BFS", Category: "Graph Traversal", SharedWith: "SSSP",
			Dims: []int64{32768, 32768}, Elem: 1, Scale: 2,
			// The GPU frontier kernel indexes neighbour lists through an
			// offset table, so it consumes the adjacency in page-aligned
			// segments (G-Store-style blocked layout): Blocked assembly.
			Fetches: []Fetch{{Sub: []int64{32, 32768}, At: []int64{160, 0}}},
			Iters:   1024, // frontier batches of 32 adjacency rows
			Curve:   accel.VectorKernel(), RateDim: 32768,
			GatherQD: 2, Blocked: true,
			// Frontier expansion: scan each adjacency batch for edges into
			// the frontier; the graph's density bounds the match fraction.
			Push: &PushSpec{Selectivity: 0.002},
		},
		{
			Name: "SSSP", Category: "Graph Traversal", SharedWith: "BFS",
			Dims: []int64{32768, 4096}, Elem: 4, Scale: 2,
			Fetches: []Fetch{{Sub: []int64{32768, 512}, At: []int64{0, 3}}},
			Iters:   8 * 8, // 8 destination bands x 8 relaxation passes
			Curve:   accel.VectorKernel(), RateDim: 32768,
			GatherQD: 4,
			// Relaxation fetches only edges of reachable vertices.
			Push: &PushSpec{Selectivity: 0.002},
		},
		{
			Name: "GEMM", Category: "Linear Algebra",
			Dims: []int64{32768, 32768}, Elem: 4, Scale: 2,
			Fetches: []Fetch{
				{Sub: []int64{8192, 8192}, At: []int64{1, 1}}, // A tile
				{Sub: []int64{8192, 8192}, At: []int64{2, 3}}, // B tile
			},
			Iters: 64, // (N/tile)^3
			Curve: accel.TensorCores(), RateDim: 8192,
			GatherQD: 2,
		},
		{
			Name: "Hotspot", Category: "Physics Simulation",
			Dims: []int64{32768, 32768}, Elem: 4, Scale: 2,
			Fetches: []Fetch{{Sub: []int64{4096, 4096}, At: []int64{3, 3}}},
			Iters:   64 * 4, // 64 tiles x 4 time steps
			Curve:   accel.CUDACores(), RateDim: 4096,
			GatherQD: 2,
		},
		{
			Name: "KMeans", Category: "Data Mining", SharedWith: "KNN",
			Dims: []int64{32768, 8192}, Elem: 4, Scale: 2,
			Fetches: []Fetch{{Sub: []int64{32768, 512}, At: []int64{0, 7}}},
			Iters:   16 * 10, // 16 feature bands x 10 clustering iterations
			Curve:   accel.VectorKernel(), RateDim: 32768,
			GatherQD: 4,
			// Assignment pruning: one argmin result per point row of the
			// 512-wide band crosses the link instead of the band.
			Push: &PushSpec{Selectivity: 1.0 / 512},
		},
		{
			Name: "KNN", Category: "Data Mining", SharedWith: "KMeans",
			Dims: []int64{32768, 8192}, Elem: 4, Scale: 2,
			Fetches: []Fetch{{Sub: []int64{2048, 8192}, At: []int64{5, 0}}},
			Iters:   16,
			Curve:   accel.VectorKernel(), RateDim: 32768,
			GatherQD: 1,
			// Candidate pruning: a top-k reduce over per-row distance keys
			// replaces streaming the candidate block to the host.
			Push: &PushSpec{Reduce: true, K: 16},
		},
		{
			Name: "PageRank", Category: "Graph",
			Dims: []int64{32768, 32768}, Elem: 4, Scale: 2,
			Fetches: []Fetch{
				{Sub: []int64{4096, 32768}, At: []int64{3, 0}}, // out-edge shard (contiguous)
				{Sub: []int64{32768, 4096}, At: []int64{0, 3}}, // in-rank column band
			},
			Iters: 8 * 4, // 8 shards x 4 power iterations
			Curve: accel.VectorKernel(), RateDim: 32768,
			GatherQD: 4,
			// Delta filtering: only edges of vertices whose rank is still
			// moving cross the link (density x active fraction).
			Push: &PushSpec{Selectivity: 0.004},
		},
		{
			Name: "Conv2D", Category: "Image Processing",
			Dims: []int64{32768, 32768}, Elem: 4, Scale: 2,
			Fetches: []Fetch{{Sub: []int64{4096, 4096}, At: []int64{2, 5}}},
			Iters:   64,
			Curve:   accel.CUDACores(), RateDim: 4096,
			GatherQD: 2,
		},
		{
			Name: "TTV", Category: "Tensor Algebra", SharedWith: "TC",
			Dims: []int64{512, 512, 512}, Elem: 4, BBOrder: 3, Scale: 4,
			Fetches: []Fetch{{Sub: []int64{512, 512, 64}, At: []int64{0, 0, 3}}},
			Iters:   8 * 2,
			Curve:   accel.TensorCores(), RateDim: 512,
			GatherQD: 1, Blocked: true,
		},
		{
			Name: "TC", Category: "Tensor Algebra", SharedWith: "TTV",
			Dims: []int64{512, 512, 512}, Elem: 4, BBOrder: 3, Scale: 4,
			Fetches: []Fetch{{Sub: []int64{512, 64, 512}, At: []int64{0, 3, 0}}},
			Iters:   8 * 8,
			Curve:   accel.TensorCores(), RateDim: 512,
			GatherQD: 1, Blocked: true,
		},
	}
}

// Scaled returns the spec with dataset dimensions and fetch partitions
// divided by div and iterations cut to a quarter (floor 4) — the reduced
// scale the harness's quick sweeps and tests run at. Pushdown parameters are
// scale-free (Selectivity is a fraction, K a fixed depth) and carry over.
func (s Spec) Scaled(div int64) Spec {
	out := s
	out.Dims = append([]int64(nil), s.Dims...)
	out.Fetches = make([]Fetch, len(s.Fetches))
	for i := range out.Dims {
		out.Dims[i] /= div
	}
	for i, f := range s.Fetches {
		sub := append([]int64(nil), f.Sub...)
		at := append([]int64(nil), f.At...)
		for j := range sub {
			sub[j] /= div
			if sub[j] < 1 {
				sub[j] = 1
			}
			if (at[j]+1)*sub[j] > out.Dims[j] {
				at[j] = 0
			}
		}
		out.Fetches[i] = Fetch{Sub: sub, At: at}
	}
	out.Iters /= 4
	if out.Iters < 4 {
		out.Iters = 4
	}
	return out
}

// Bytes is the dataset size in bytes.
func (s Spec) Bytes() int64 {
	n := int64(s.Elem)
	for _, d := range s.Dims {
		n *= d
	}
	return n
}

// FetchBytes is the payload volume fetched per pipeline iteration.
func (s Spec) FetchBytes() int64 {
	var total int64
	for _, f := range s.Fetches {
		n := int64(s.Elem)
		for _, d := range f.Sub {
			n *= d
		}
		total += n
	}
	return total
}

// pushResultBytes is the result-page volume one fetch's pushdown selection
// returns: a 16-byte scan header plus 16 bytes per match at the spec's
// selectivity, or a 32-byte reduce header plus 16 bytes per top-k entry.
func (s Spec) pushResultBytes(f Fetch) int64 {
	if s.Push == nil {
		return 0
	}
	if s.Push.Reduce {
		return 32 + 16*int64(s.Push.K)
	}
	elems := int64(1)
	for _, d := range f.Sub {
		elems *= d
	}
	return 16 + 16*int64(float64(elems)*s.Push.Selectivity)
}

// PushResultBytes is the per-iteration result volume of the pushdown
// selection — what crosses the interconnect on hardware NDS, and what the
// host pipeline's copy and kernel stages consume under pushdown.
func (s Spec) PushResultBytes() int64 {
	var total int64
	for _, f := range s.Fetches {
		total += s.pushResultBytes(f)
	}
	return total
}

// LinkBytes models the per-iteration interconnect volume of a fetch
// configuration: without pushdown both NDS kinds move the partition payload;
// with pushdown hardware NDS moves only the selection's result bytes, while
// software NDS — whose STL runs on the host — still ships every raw page
// (page-rounded payload) before filtering. pageSize 0 defaults to 4096.
func (s Spec) LinkBytes(kind system.Kind, push bool, pageSize int64) int64 {
	if pageSize <= 0 {
		pageSize = 4096
	}
	if !push || s.Push == nil {
		return s.FetchBytes()
	}
	var total int64
	for _, f := range s.Fetches {
		n := int64(s.Elem)
		for _, d := range f.Sub {
			n *= d
		}
		switch kind {
		case system.HardwareNDS:
			total += s.pushResultBytes(f)
		default: // SoftwareNDS and Baseline cannot save link bytes
			total += (n + pageSize - 1) / pageSize * pageSize
		}
	}
	return total
}
