package workloads

import (
	"bytes"
	"math"
	"testing"

	"nds/internal/datagen"
	"nds/internal/stl"
	"nds/internal/system"
	"nds/internal/tensor"
)

// The functional suite runs every Table 1 workload at miniature scale with
// REAL data through the hardware-NDS data path, using each workload's
// characteristic access pattern (row batches, column bands, tiles, tensor
// bricks), and checks the computed result against direct in-memory
// computation. This is the correctness counterpart of the timed Figure 10
// harness.

// funcDevice builds a small data-bearing hardware-NDS system and a space
// holding the given matrix.
func funcDevice(t *testing.T, rows, cols int64, elem int, payload []byte) (*system.System, *stl.View) {
	t.Helper()
	cfg := system.PrototypeConfig(rows*cols*int64(elem), false)
	sys, err := system.New(system.HardwareNDS, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := sys.STL.CreateSpace(elem, []int64{rows, cols})
	if err != nil {
		t.Fatal(err)
	}
	v, err := stl.NewView(sp, []int64{rows, cols})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.NDSWrite(0, v, []int64{0, 0}, []int64{rows, cols}, payload); err != nil {
		t.Fatal(err)
	}
	return sys, v
}

// readMatrix fetches a partition and decodes it as float32.
func readMatrix(t *testing.T, sys *system.System, v *stl.View, coord, sub []int64) *tensor.Matrix {
	t.Helper()
	raw, _, err := sys.NDSRead(0, v, coord, sub)
	if err != nil {
		t.Fatal(err)
	}
	shape, _, err := v.PartitionShape(coord, sub)
	if err != nil {
		t.Fatal(err)
	}
	m, err := tensor.MatrixFromBytes(int(shape[0]), int(shape[1]), raw)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// columnBandsToMatrix streams a matrix column band by column band (the
// SSSP/KMeans access pattern) and reassembles it.
func columnBandsToMatrix(t *testing.T, sys *system.System, v *stl.View, rows, cols, band int64) *tensor.Matrix {
	t.Helper()
	out := tensor.NewMatrix(int(rows), int(cols))
	for j := int64(0); j*band < cols; j++ {
		m := readMatrix(t, sys, v, []int64{0, j}, []int64{rows, band})
		out.SetSub(0, int(j*band), m)
	}
	return out
}

func TestFunctionalBFS(t *testing.T) {
	const n = 128
	adj, err := datagen.Graph(n, 600, 11)
	if err != nil {
		t.Fatal(err)
	}
	sys, v := funcDevice(t, n, n, 4, adj.Bytes())
	// Row batches (frontier reads).
	rebuilt := tensor.NewMatrix(n, n)
	for i := int64(0); i*16 < n; i++ {
		rebuilt.SetSub(int(i)*16, 0, readMatrix(t, sys, v, []int64{i, 0}, []int64{16, n}))
	}
	got, err := BFS(rebuilt, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := BFS(adj, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("BFS level[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestFunctionalSSSP(t *testing.T) {
	const n = 96
	w, err := datagen.Graph(n, 500, 12)
	if err != nil {
		t.Fatal(err)
	}
	sys, v := funcDevice(t, n, n, 4, w.Bytes())
	// Column bands (gather-by-destination relaxation).
	rebuilt := columnBandsToMatrix(t, sys, v, n, n, 16)
	got, err := SSSP(rebuilt, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := SSSP(w, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SSSP dist[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestFunctionalGEMM(t *testing.T) {
	const n, tile = 96, 32
	a := datagen.Matrix(n, n, 13)
	b := datagen.Matrix(n, n, 14)
	sysA, va := funcDevice(t, n, n, 4, a.Bytes())
	sysB, vb := funcDevice(t, n, n, 4, b.Bytes())
	want, err := tensor.MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	got := tensor.NewMatrix(n, n)
	for i := int64(0); i < n/tile; i++ {
		for j := int64(0); j < n/tile; j++ {
			acc := tensor.NewMatrix(tile, tile)
			for k := int64(0); k < n/tile; k++ {
				at := readMatrix(t, sysA, va, []int64{i, k}, []int64{tile, tile})
				bt := readMatrix(t, sysB, vb, []int64{k, j}, []int64{tile, tile})
				if err := tensor.AccumulateMul(acc, at, bt); err != nil {
					t.Fatal(err)
				}
			}
			got.SetSub(int(i)*tile, int(j)*tile, acc)
		}
	}
	if !got.Equal(want, 1e-2) {
		t.Fatal("tiled GEMM through NDS diverges")
	}
}

func TestFunctionalHotspot(t *testing.T) {
	const n = 64
	temp := datagen.Matrix(n, n, 15)
	power := datagen.Matrix(n, n, 16)
	sysT, vt := funcDevice(t, n, n, 4, temp.Bytes())
	sysP, vp := funcDevice(t, n, n, 4, power.Bytes())
	// Stream both grids tile-wise, reassemble, and advance the stencil.
	gt := tensor.NewMatrix(n, n)
	gp := tensor.NewMatrix(n, n)
	for i := int64(0); i < 2; i++ {
		for j := int64(0); j < 2; j++ {
			gt.SetSub(int(i)*32, int(j)*32, readMatrix(t, sysT, vt, []int64{i, j}, []int64{32, 32}))
			gp.SetSub(int(i)*32, int(j)*32, readMatrix(t, sysP, vp, []int64{i, j}, []int64{32, 32}))
		}
	}
	got := tensor.HotspotStep(gt, gp, 0.05)
	want := tensor.HotspotStep(temp, power, 0.05)
	if !got.Equal(want, 1e-4) {
		t.Fatal("Hotspot through NDS diverges")
	}
}

func TestFunctionalKMeans(t *testing.T) {
	const npts, dim = 80, 16
	pts, _, err := datagen.Clustering(npts, dim, 4, 17)
	if err != nil {
		t.Fatal(err)
	}
	sys, v := funcDevice(t, npts, dim, 4, pts.Bytes())
	// Feature-column bands (the GPU's coalesced access).
	rebuilt := columnBandsToMatrix(t, sys, v, npts, dim, 4)
	_, gotAssign, err := KMeans(rebuilt, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	_, wantAssign, err := KMeans(pts, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantAssign {
		if gotAssign[i] != wantAssign[i] {
			t.Fatalf("KMeans assignment[%d] differs", i)
		}
	}
}

func TestFunctionalKNN(t *testing.T) {
	const npts, dim = 100, 8
	pts, centres, err := datagen.Clustering(npts, dim, 5, 18)
	if err != nil {
		t.Fatal(err)
	}
	sys, v := funcDevice(t, npts, dim, 4, pts.Bytes())
	// Row bands (streaming the reference points).
	rebuilt := tensor.NewMatrix(npts, dim)
	for i := int64(0); i*20 < npts; i++ {
		rebuilt.SetSub(int(i)*20, 0, readMatrix(t, sys, v, []int64{i, 0}, []int64{20, dim}))
	}
	query := make([]float32, dim)
	for j := 0; j < dim; j++ {
		query[j] = centres.At(2, j)
	}
	got, err := KNN(rebuilt, query, 7)
	if err != nil {
		t.Fatal(err)
	}
	want, err := KNN(pts, query, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("KNN[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestFunctionalPageRank(t *testing.T) {
	const n = 128
	adj, err := datagen.PageRankGraph(n, 4, 19)
	if err != nil {
		t.Fatal(err)
	}
	sys, v := funcDevice(t, n, n, 4, adj.Bytes())
	// Shard reads: row band (out-edges) + column band (in-ranks), per the
	// timed model's pattern; reassemble from the row shards.
	rebuilt := tensor.NewMatrix(n, n)
	for i := int64(0); i < 4; i++ {
		rebuilt.SetSub(int(i)*32, 0, readMatrix(t, sys, v, []int64{i, 0}, []int64{32, n}))
	}
	// Exercise the column path too and cross-check a band.
	colBand := readMatrix(t, sys, v, []int64{0, 1}, []int64{n, 32})
	for r := 0; r < n; r++ {
		for c := 0; c < 32; c++ {
			if colBand.At(r, c) != adj.At(r, 32+c) {
				t.Fatal("column band mismatch")
			}
		}
	}
	got, err := PageRank(rebuilt, 0.85, 20)
	if err != nil {
		t.Fatal(err)
	}
	want, err := PageRank(adj, 0.85, 20)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(float64(got[i]-want[i])) > 1e-6 {
			t.Fatalf("PageRank[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestFunctionalConv2D(t *testing.T) {
	const n = 64
	img := datagen.Matrix(n, n, 20)
	kernel := datagen.Matrix(3, 3, 21)
	sys, v := funcDevice(t, n, n, 4, img.Bytes())
	rebuilt := tensor.NewMatrix(n, n)
	for i := int64(0); i < 2; i++ {
		for j := int64(0); j < 2; j++ {
			rebuilt.SetSub(int(i)*32, int(j)*32, readMatrix(t, sys, v, []int64{i, j}, []int64{32, 32}))
		}
	}
	got := tensor.Conv2D(rebuilt, kernel)
	want := tensor.Conv2D(img, kernel)
	if !got.Equal(want, 1e-4) {
		t.Fatal("Conv2D through NDS diverges")
	}
}

// funcTensorDevice stores a 3-D tensor in a 3-D-building-block space.
func funcTensorDevice(t *testing.T, d int64, payload []byte) (*system.System, *stl.View) {
	t.Helper()
	cfg := system.PrototypeConfig(d*d*d*4, false)
	cfg.STL.BBOrder = 3
	cfg.STL.BBMultiplier = 1
	sys, err := system.New(system.HardwareNDS, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := sys.STL.CreateSpace(4, []int64{d, d, d})
	if err != nil {
		t.Fatal(err)
	}
	v, err := stl.NewView(sp, []int64{d, d, d})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.NDSWrite(0, v, []int64{0, 0, 0}, []int64{d, d, d}, payload); err != nil {
		t.Fatal(err)
	}
	return sys, v
}

func TestFunctionalTTV(t *testing.T) {
	const d, brick = 64, 16
	ts := datagen.Tensor(d, d, d, 22)
	sys, v := funcTensorDevice(t, d, ts.Bytes())
	vec := make([]float32, d)
	for i := range vec {
		vec[i] = float32(i%9) - 4
	}
	// Mode-2 bricks, accumulated.
	acc := tensor.NewMatrix(d, d)
	for kb := int64(0); kb*brick < d; kb++ {
		raw, _, err := sys.NDSRead(0, v, []int64{0, 0, kb}, []int64{d, d, brick})
		if err != nil {
			t.Fatal(err)
		}
		sub, err := tensor.Tensor3FromBytes(d, d, brick, raw)
		if err != nil {
			t.Fatal(err)
		}
		part, err := tensor.TTV(sub, vec[kb*brick:(kb+1)*brick], 2)
		if err != nil {
			t.Fatal(err)
		}
		for i := range acc.Data {
			acc.Data[i] += part.Data[i]
		}
	}
	want, err := tensor.TTV(ts, vec, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !acc.Equal(want, 1e-2) {
		t.Fatal("brick TTV through NDS diverges")
	}
}

func TestFunctionalTC(t *testing.T) {
	const d, slab = 64, 16
	ts := datagen.Tensor(d, d, d, 23)
	b := datagen.Matrix(d, 8, 24)
	sys, v := funcTensorDevice(t, d, ts.Bytes())
	want, err := tensor.Contract(ts, b)
	if err != nil {
		t.Fatal(err)
	}
	// Lateral slabs over mode 1, contracted incrementally:
	// C[i,c,k] = sum over slabs of sum_{j in slab} A[i,j,k] * B[j,c].
	acc := tensor.NewTensor3(d, 8, d)
	for jb := int64(0); jb*slab < d; jb++ {
		raw, _, err := sys.NDSRead(0, v, []int64{0, jb, 0}, []int64{d, slab, d})
		if err != nil {
			t.Fatal(err)
		}
		sub, err := tensor.Tensor3FromBytes(d, slab, d, raw)
		if err != nil {
			t.Fatal(err)
		}
		bSub := b.Sub(int(jb)*slab, 0, slab, 8)
		part, err := tensor.Contract(sub, bSub)
		if err != nil {
			t.Fatal(err)
		}
		for i := range acc.Data {
			acc.Data[i] += part.Data[i]
		}
	}
	if !acc.Equal(want, 1e-2) {
		t.Fatal("slab TC through NDS diverges")
	}
}

// TestFunctionalSharedDataset: the BFS/SSSP pair shares one stored dataset
// through different views and block sizes, the elasticity claim of §6.2.
func TestFunctionalSharedDataset(t *testing.T) {
	const n = 96
	w, err := datagen.Graph(n, 400, 25)
	if err != nil {
		t.Fatal(err)
	}
	sys, v := funcDevice(t, n, n, 4, w.Bytes())

	// BFS consumes row batches...
	rows := tensor.NewMatrix(n, n)
	for i := int64(0); i*24 < n; i++ {
		rows.SetSub(int(i)*24, 0, readMatrix(t, sys, v, []int64{i, 0}, []int64{24, n}))
	}
	// ...SSSP consumes column bands of the *same* space.
	cols := columnBandsToMatrix(t, sys, v, n, n, 24)
	if !bytes.Equal(rows.Bytes(), cols.Bytes()) {
		t.Fatal("row and column consumers disagree about the shared dataset")
	}
	lv, err := BFS(rows, 0)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := SSSP(cols, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range lv {
		if (lv[i] < 0) != math.IsInf(float64(dist[i]), 1) {
			t.Fatalf("vertex %d: BFS and SSSP disagree on reachability", i)
		}
	}
}
