package workloads

import (
	"math"
	"testing"

	"nds/internal/datagen"
	"nds/internal/nvm"
	"nds/internal/system"
)

// The device-kernel differential suite: every device-resident kernel, in both
// its pushdown and read-everything forms, must produce results bit-identical
// to the in-memory host kernel on every device configuration — the pushdown
// operators ride the read path's plan, so compression, caching, faults, and
// the scalar path must all be invisible to the kernel's output.

type devConfig struct {
	name string
	kind system.Kind
	mut  func(*system.Config)
}

func deviceConfigs() []devConfig {
	return []devConfig{
		{"hardware", system.HardwareNDS, nil},
		{"software", system.SoftwareNDS, nil},
		{"cached", system.HardwareNDS, func(c *system.Config) {
			c.STL.CacheBytes = 1 << 20
			c.STL.PrefetchDepth = 2
		}},
		{"compressed", system.HardwareNDS, func(c *system.Config) { c.STL.Compress = true }},
		{"faulted", system.HardwareNDS, func(c *system.Config) {
			c.Faults = nvm.FaultPlan{Seed: 5, ProgramFailEvery: 40, ReadRetryEvery: 16}
		}},
		{"scalar", system.HardwareNDS, func(c *system.Config) { c.STL.ScalarPath = true }},
	}
}

func kernelSystem(t *testing.T, dc devConfig, capacity int64) *system.System {
	t.Helper()
	cfg := system.PrototypeConfig(capacity, false)
	if dc.mut != nil {
		dc.mut(&cfg)
	}
	sys, err := system.New(dc.kind, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestDeviceBFSDifferential(t *testing.T) {
	const n = 96
	adj, err := datagen.Graph(n, 400, 21)
	if err != nil {
		t.Fatal(err)
	}
	want, err := BFS(adj, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, dc := range deviceConfigs() {
		for _, push := range []bool{true, false} {
			sys := kernelSystem(t, dc, n*n*4)
			got, ks, err := BFSDevice(sys, adj, 0, push)
			if err != nil {
				t.Fatalf("%s/push=%v: %v", dc.name, push, err)
			}
			if ks.Ops == 0 || ks.LinkBytes <= 0 {
				t.Fatalf("%s/push=%v: no traffic recorded (%+v)", dc.name, push, ks)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s/push=%v: level[%d] = %d, want %d", dc.name, push, i, got[i], want[i])
				}
			}
		}
	}
}

func TestDeviceSSSPDifferential(t *testing.T) {
	const n = 80
	w, err := datagen.Graph(n, 320, 22)
	if err != nil {
		t.Fatal(err)
	}
	want, err := SSSP(w, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, dc := range deviceConfigs() {
		for _, push := range []bool{true, false} {
			sys := kernelSystem(t, dc, n*n*4)
			got, _, err := SSSPDevice(sys, w, 0, push)
			if err != nil {
				t.Fatalf("%s/push=%v: %v", dc.name, push, err)
			}
			for i := range want {
				if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
					t.Fatalf("%s/push=%v: dist[%d] = %v, want %v (bit-exact)", dc.name, push, i, got[i], want[i])
				}
			}
		}
	}
}

func TestDeviceKNNDifferential(t *testing.T) {
	const (
		n = 120
		d = 16
		k = 8
	)
	points, centres, err := datagen.Clustering(n, d, 4, 23)
	if err != nil {
		t.Fatal(err)
	}
	query := make([]float32, d)
	copy(query, centres.Data[:d])
	want, err := KNN(points, query, k)
	if err != nil {
		t.Fatal(err)
	}
	for _, dc := range deviceConfigs() {
		for _, push := range []bool{true, false} {
			sys := kernelSystem(t, dc, 2*n*d*4+8*n)
			got, _, err := KNNDevice(sys, points, query, k, push)
			if err != nil {
				t.Fatalf("%s/push=%v: %v", dc.name, push, err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s/push=%v: %d neighbours, want %d", dc.name, push, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s/push=%v: neighbour[%d] = %d, want %d", dc.name, push, i, got[i], want[i])
				}
			}
		}
	}
}

func TestDeviceKMeansDifferential(t *testing.T) {
	const (
		n     = 96
		d     = 8
		k     = 4
		iters = 3
	)
	points, _, err := datagen.Clustering(n, d, k, 24)
	if err != nil {
		t.Fatal(err)
	}
	wantC, wantA, err := KMeans(points, k, iters)
	if err != nil {
		t.Fatal(err)
	}
	for _, dc := range deviceConfigs() {
		for _, push := range []bool{true, false} {
			sys := kernelSystem(t, dc, 2*n*d*4+8*n*k)
			gotC, gotA, _, err := KMeansDevice(sys, points, k, iters, push)
			if err != nil {
				t.Fatalf("%s/push=%v: %v", dc.name, push, err)
			}
			for i := range wantA {
				if gotA[i] != wantA[i] {
					t.Fatalf("%s/push=%v: assign[%d] = %d, want %d", dc.name, push, i, gotA[i], wantA[i])
				}
			}
			for i := range wantC.Data {
				if math.Float32bits(gotC.Data[i]) != math.Float32bits(wantC.Data[i]) {
					t.Fatalf("%s/push=%v: centroid elem %d = %v, want %v", dc.name, push, i, gotC.Data[i], wantC.Data[i])
				}
			}
		}
	}
}

func TestDevicePageRankDifferential(t *testing.T) {
	const (
		n       = 64
		iters   = 5
		damping = float32(0.85)
		tol     = float32(1e-5)
	)
	adj, err := datagen.PageRankGraph(n, 4, 25)
	if err != nil {
		t.Fatal(err)
	}
	want, err := PageRankDelta(adj, damping, iters, tol)
	if err != nil {
		t.Fatal(err)
	}
	for _, dc := range deviceConfigs() {
		for _, push := range []bool{true, false} {
			sys := kernelSystem(t, dc, n*n*4)
			got, _, err := PageRankDevice(sys, adj, damping, iters, tol, push)
			if err != nil {
				t.Fatalf("%s/push=%v: %v", dc.name, push, err)
			}
			for i := range want {
				if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
					t.Fatalf("%s/push=%v: rank[%d] = %v, want %v (bit-exact)", dc.name, push, i, got[i], want[i])
				}
			}
		}
	}
}

// TestPageRankDeltaConverges pins the delta-filtered oracle against classic
// power iteration: with tol=0 they compute the same fixed point (modulo
// float summation order), and a small tol stays close.
func TestPageRankDeltaConverges(t *testing.T) {
	const n = 64
	adj, err := datagen.PageRankGraph(n, 4, 26)
	if err != nil {
		t.Fatal(err)
	}
	classic, err := PageRank(adj, 0.85, 20)
	if err != nil {
		t.Fatal(err)
	}
	for _, tol := range []float32{0, 1e-6} {
		delta, err := PageRankDelta(adj, 0.85, 20, tol)
		if err != nil {
			t.Fatal(err)
		}
		for i := range classic {
			if diff := math.Abs(float64(delta[i] - classic[i])); diff > 1e-4 {
				t.Fatalf("tol=%g: rank[%d] = %v vs classic %v (diff %g)", tol, i, delta[i], classic[i], diff)
			}
		}
	}
}

// TestDeviceKernelInterconnectSavings is the acceptance gate's deterministic
// form: on hardware NDS at the test graphs' densities (well under 10%
// selectivity), the pushdown kernels move at least 5x fewer interconnect
// bytes than their read-everything counterparts — and the software platform,
// which ships raw pages regardless, saves nothing.
func TestDeviceKernelInterconnectSavings(t *testing.T) {
	const n = 128
	adj, err := datagen.Graph(n, 600, 27)
	if err != nil {
		t.Fatal(err)
	}
	hw := devConfig{"hardware", system.HardwareNDS, nil}
	_, push, err := BFSDevice(kernelSystem(t, hw, n*n*4), adj, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	_, read, err := BFSDevice(kernelSystem(t, hw, n*n*4), adj, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if push.LinkBytes*5 > read.LinkBytes {
		t.Fatalf("BFS pushdown link bytes %d not 5x under read-everything %d", push.LinkBytes, read.LinkBytes)
	}

	const (
		pts = 256
		dim = 64
		k   = 8
	)
	points, centres, err := datagen.Clustering(pts, dim, 4, 28)
	if err != nil {
		t.Fatal(err)
	}
	query := make([]float32, dim)
	copy(query, centres.Data[:dim])
	capacity := int64(2*pts*dim*4 + 8*pts)
	_, kpush, err := KNNDevice(kernelSystem(t, hw, capacity), points, query, k, true)
	if err != nil {
		t.Fatal(err)
	}
	_, kread, err := KNNDevice(kernelSystem(t, hw, capacity), points, query, k, false)
	if err != nil {
		t.Fatal(err)
	}
	if kpush.LinkBytes*5 > kread.LinkBytes {
		t.Fatalf("KNN pushdown link bytes %d not 5x under read-everything %d", kpush.LinkBytes, kread.LinkBytes)
	}

	// Software NDS ships every raw page either way: pushing down must not
	// reduce link traffic (it can only add result pages on top of nothing —
	// the scan's raw pages equal the read's).
	sw := devConfig{"software", system.SoftwareNDS, nil}
	_, swPush, err := BFSDevice(kernelSystem(t, sw, n*n*4), adj, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	_, swRead, err := BFSDevice(kernelSystem(t, sw, n*n*4), adj, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if swPush.LinkBytes < swRead.LinkBytes/2 {
		t.Fatalf("software NDS pushdown link bytes %d suspiciously below read's %d", swPush.LinkBytes, swRead.LinkBytes)
	}
}
