package workloads

import (
	"testing"

	"nds/internal/system"
)

func TestCatalogSanity(t *testing.T) {
	cat := Catalog()
	if len(cat) != 10 {
		t.Fatalf("catalog has %d workloads, Table 1 lists 10", len(cat))
	}
	seen := map[string]bool{}
	for _, s := range cat {
		if seen[s.Name] {
			t.Errorf("duplicate workload %q", s.Name)
		}
		seen[s.Name] = true
		if s.Bytes() <= 0 || s.FetchBytes() <= 0 {
			t.Errorf("%s: non-positive sizes", s.Name)
		}
		if s.Iters <= 0 {
			t.Errorf("%s: non-positive iterations", s.Name)
		}
		for _, f := range s.Fetches {
			if len(f.Sub) != len(s.Dims) || len(f.At) != len(s.Dims) {
				t.Errorf("%s: fetch rank mismatch", s.Name)
			}
			for i := range f.Sub {
				if f.At[i]*f.Sub[i] >= s.Dims[i] {
					t.Errorf("%s: fetch coordinate out of range in dim %d", s.Name, i)
				}
			}
		}
	}
	// The paper's dataset-sharing pairs.
	for _, pair := range [][2]string{{"BFS", "SSSP"}, {"KMeans", "KNN"}, {"TTV", "TC"}} {
		var a, b *Spec
		for i := range cat {
			if cat[i].Name == pair[0] {
				a = &cat[i]
			}
			if cat[i].Name == pair[1] {
				b = &cat[i]
			}
		}
		if a == nil || b == nil || a.SharedWith != b.Name || b.SharedWith != a.Name {
			t.Errorf("sharing pair %v not declared symmetrically", pair)
		}
	}
}

func TestLinearRunsContiguousRowBand(t *testing.T) {
	// A full-width row band is one contiguous run.
	runs := linearRuns([]int64{100, 50}, 4, []int64{2, 0}, []int64{10, 50})
	if len(runs) != 1 {
		t.Fatalf("row band produced %d runs, want 1", len(runs))
	}
	if runs[0].Off != 2*10*50*4 || runs[0].Len != 10*50*4 {
		t.Fatalf("run = %+v", runs[0])
	}
}

func TestLinearRunsColumnBand(t *testing.T) {
	// A column band needs one run per row.
	runs := linearRuns([]int64{100, 50}, 4, []int64{0, 1}, []int64{100, 10})
	if len(runs) != 100 {
		t.Fatalf("column band produced %d runs, want 100", len(runs))
	}
	for i, r := range runs {
		wantOff := int64(i)*50*4 + 10*4
		if r.Off != wantOff || r.Len != 40 {
			t.Fatalf("run %d = %+v, want off=%d len=40", i, r, wantOff)
		}
	}
}

func TestLinearRunsMergeInner(t *testing.T) {
	// 3-D: sub spanning the full inner two dims merges into larger runs.
	runs := linearRuns([]int64{8, 4, 4}, 4, []int64{1, 0, 0}, []int64{2, 4, 4})
	if len(runs) != 1 {
		t.Fatalf("fully-inner partition produced %d runs, want 1", len(runs))
	}
	if runs[0].Len != 2*4*4*4 {
		t.Fatalf("merged run len = %d", runs[0].Len)
	}
}

func TestLinearRunsClamp(t *testing.T) {
	runs := linearRuns([]int64{10, 10}, 1, []int64{1, 1}, []int64{6, 6})
	// Shape clamps to (4, 4): 4 runs of 4 bytes.
	if len(runs) != 4 {
		t.Fatalf("clamped partition produced %d runs, want 4", len(runs))
	}
	var total int64
	for _, r := range runs {
		total += r.Len
	}
	if total != 16 {
		t.Fatalf("clamped bytes = %d, want 16", total)
	}
}

func TestVaryCoordStaysInBounds(t *testing.T) {
	for _, spec := range Catalog() {
		for _, f := range spec.Fetches {
			for r := 0; r < 4; r++ {
				at := varyCoord(spec, f, r)
				for i := range at {
					if at[i]*f.Sub[i] >= spec.Dims[i] {
						t.Errorf("%s rep %d: coordinate %v out of bounds", spec.Name, r, at)
					}
				}
			}
		}
	}
}

// scaleSpec shrinks a workload for unit-test runtime.
func scaleSpec(s Spec, div int64) Spec { return s.Scaled(div) }

// TestRunShapes checks the headline orderings of Figure 10 on three
// representative workloads at reduced scale: tiled workloads must gain
// substantially from NDS, hardware must beat software, the oracle must not
// beat hardware by much, and sequential-row BFS must gain ~nothing.
func TestRunShapes(t *testing.T) {
	byName := map[string]Spec{}
	for _, s := range Catalog() {
		byName[s.Name] = s
	}

	hotspot, err := Run(scaleSpec(byName["Hotspot"], 4))
	if err != nil {
		t.Fatal(err)
	}
	if hotspot.SpeedupSoftware < 2 {
		t.Errorf("Hotspot software speedup = %.2f, want >= 2 (tiled fetches)", hotspot.SpeedupSoftware)
	}
	if hotspot.SpeedupHardware <= hotspot.SpeedupSoftware {
		t.Errorf("hardware (%.2f) should beat software (%.2f) NDS",
			hotspot.SpeedupHardware, hotspot.SpeedupSoftware)
	}
	if hotspot.IdleReductionHW < 0.5 {
		t.Errorf("Hotspot hw idle reduction = %.2f, want >= 0.5", hotspot.IdleReductionHW)
	}

	bfs, err := Run(scaleSpec(byName["BFS"], 4))
	if err != nil {
		t.Fatal(err)
	}
	// At test scale the fixed translation cost looms larger than at paper
	// scale (where BFS lands at ~0.96x); the invariant is "no meaningful
	// benefit", i.e. nowhere near the tiled workloads' gains.
	if bfs.SpeedupSoftware < 0.35 || bfs.SpeedupSoftware > 1.5 {
		t.Errorf("BFS software speedup = %.2f, want ~1 (row-store already sequential)",
			bfs.SpeedupSoftware)
	}

	sssp, err := Run(scaleSpec(byName["SSSP"], 4))
	if err != nil {
		t.Fatal(err)
	}
	if sssp.SpeedupSoftware <= bfs.SpeedupSoftware {
		t.Errorf("column-band SSSP (%.2f) should gain more than row-major BFS (%.2f)",
			sssp.SpeedupSoftware, bfs.SpeedupSoftware)
	}
	if sssp.SpeedupOracle < sssp.SpeedupSoftware*0.8 {
		t.Errorf("oracle (%.2f) should be at least comparable to software NDS (%.2f)",
			sssp.SpeedupOracle, sssp.SpeedupSoftware)
	}
}

// TestRunPushdown pins the pushdown timing model's headline shapes: hardware
// NDS moves only result bytes under pushdown (>= 5x fewer than reading the
// partitions for BFS and KNN), software NDS ships raw pages either way, and
// at least one kernel — BFS, whose frontier scan is cheap relative to its
// link traffic — wins end-to-end sim time from pushing down. KNN's top-k
// reduce saves the most link bytes yet loses sim time: the controller's scan
// rate bounds its pipeline, the [P2] tradeoff the paper's hardware/software
// split exists to expose.
func TestRunPushdown(t *testing.T) {
	byName := map[string]Spec{}
	for _, s := range Catalog() {
		byName[s.Name] = s
	}
	results := map[string]Result{}
	for _, name := range []string{"BFS", "KNN"} {
		spec := byName[name]
		if spec.Push == nil {
			t.Fatalf("%s: no PushSpec in catalog", name)
		}
		res, err := Run(scaleSpec(spec, 4))
		if err != nil {
			t.Fatal(err)
		}
		results[name] = res
		if res.HardwarePush == 0 || res.SoftwarePush == 0 {
			t.Fatalf("%s: push pipelines not measured (%+v)", name, res)
		}
		if res.HWPushLinkBytes*5 > res.HWLinkBytes {
			t.Errorf("%s: hardware push link bytes %d not 5x under read's %d",
				name, res.HWPushLinkBytes, res.HWLinkBytes)
		}
		if res.SWPushLinkBytes != res.SWLinkBytes {
			t.Errorf("%s: software push link bytes %d != read's %d (software STL ships raw pages either way)",
				name, res.SWPushLinkBytes, res.SWLinkBytes)
		}
	}
	if results["BFS"].PushWinHW <= 1 {
		t.Errorf("BFS hardware pushdown win = %.2f, want > 1 (end-to-end sim-time win)",
			results["BFS"].PushWinHW)
	}
	// The static link model must agree in shape with the measured traffic.
	for _, s := range Catalog() {
		if s.Push == nil {
			continue
		}
		hwPush := s.LinkBytes(system.HardwareNDS, true, 0)
		if hwPush >= s.FetchBytes() {
			t.Errorf("%s: static hardware push link bytes %d not under fetch bytes %d",
				s.Name, hwPush, s.FetchBytes())
		}
		if got := s.LinkBytes(system.SoftwareNDS, true, 0); got < s.FetchBytes() {
			t.Errorf("%s: static software push link bytes %d below fetch bytes %d",
				s.Name, got, s.FetchBytes())
		}
		if got := s.LinkBytes(system.HardwareNDS, false, 0); got != s.FetchBytes() {
			t.Errorf("%s: static no-push link bytes %d != fetch bytes %d",
				s.Name, got, s.FetchBytes())
		}
	}
}

func TestRunRejectsNothing(t *testing.T) {
	// Every catalog entry must at least build its platform (scaled down).
	for _, s := range Catalog() {
		small := scaleSpec(s, 8)
		small.Iters = 4
		if _, err := Run(small); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

var _ = system.Run{} // keep the import for the run helpers above
