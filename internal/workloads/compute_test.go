package workloads

import (
	"math"
	"testing"

	"nds/internal/tensor"
)

// pathGraph builds a directed path 0 -> 1 -> ... -> n-1 with unit weights.
func pathGraph(n int) *tensor.Matrix {
	m := tensor.NewMatrix(n, n)
	for i := 0; i < n-1; i++ {
		m.Set(i, i+1, 1)
	}
	return m
}

func TestBFSPath(t *testing.T) {
	adj := pathGraph(6)
	lv, err := BFS(adj, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []int{0, 1, 2, 3, 4, 5} {
		if lv[i] != want {
			t.Fatalf("level[%d] = %d, want %d", i, lv[i], want)
		}
	}
	// From the middle, earlier vertices are unreachable (directed).
	lv, _ = BFS(adj, 3)
	if lv[0] != -1 || lv[5] != 2 {
		t.Fatalf("directed reachability wrong: %v", lv)
	}
	if _, err := BFS(adj, 99); err == nil {
		t.Fatal("bad source accepted")
	}
	if _, err := BFS(tensor.NewMatrix(2, 3), 0); err == nil {
		t.Fatal("non-square adjacency accepted")
	}
}

func TestSSSPPrefersCheaperDetour(t *testing.T) {
	// 0->1 (10), 0->2 (1), 2->1 (2): best 0->1 distance is 3.
	w := tensor.NewMatrix(3, 3)
	w.Set(0, 1, 10)
	w.Set(0, 2, 1)
	w.Set(2, 1, 2)
	dist, err := SSSP(w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dist[1] != 3 || dist[2] != 1 || dist[0] != 0 {
		t.Fatalf("dist = %v", dist)
	}
	// Unreachable vertex is +Inf.
	w2 := tensor.NewMatrix(3, 3)
	dist, _ = SSSP(w2, 0)
	if !math.IsInf(float64(dist[1]), 1) {
		t.Fatal("unreachable vertex should be +Inf")
	}
}

func TestBFSAndSSSPAgreeOnUnitWeights(t *testing.T) {
	// With unit weights, SSSP distances equal BFS levels.
	adj := tensor.NewMatrix(8, 8)
	edges := [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}, {4, 5}, {2, 6}}
	for _, e := range edges {
		adj.Set(e[0], e[1], 1)
	}
	lv, err := BFS(adj, 0)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := SSSP(adj, 0)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 8; v++ {
		if lv[v] == -1 {
			if !math.IsInf(float64(dist[v]), 1) {
				t.Fatalf("vertex %d: BFS unreachable but SSSP = %v", v, dist[v])
			}
			continue
		}
		if float32(lv[v]) != dist[v] {
			t.Fatalf("vertex %d: BFS level %d != SSSP dist %v", v, lv[v], dist[v])
		}
	}
}

func TestKMeansSeparatesObviousClusters(t *testing.T) {
	// Two tight groups far apart must split cleanly.
	pts := tensor.NewMatrix(8, 2)
	for i := 0; i < 4; i++ {
		pts.Set(i, 0, float32(i)*0.01)
		pts.Set(i, 1, 0)
	}
	for i := 4; i < 8; i++ {
		pts.Set(i, 0, 100+float32(i)*0.01)
		pts.Set(i, 1, 100)
	}
	// Initial centroids are points 0 and 1 (both in group A); Lloyd must
	// still converge to the two groups.
	_, assign, err := KMeans(pts, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 4; i++ {
		if assign[i] != assign[0] {
			t.Fatalf("group A split: %v", assign)
		}
	}
	for i := 5; i < 8; i++ {
		if assign[i] != assign[4] {
			t.Fatalf("group B split: %v", assign)
		}
	}
	if assign[0] == assign[4] {
		t.Fatalf("groups merged: %v", assign)
	}
	if _, _, err := KMeans(pts, 0, 1); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestKNNOrdersByDistance(t *testing.T) {
	pts := tensor.NewMatrix(5, 1)
	for i := 0; i < 5; i++ {
		pts.Set(i, 0, float32(i*i)) // 0, 1, 4, 9, 16
	}
	got, err := KNN(pts, []float32{6}, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{2, 3, 1} // squared distances 4, 9, 25
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("knn = %v, want %v", got, want)
		}
	}
	if _, err := KNN(pts, []float32{1, 2}, 1); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	if _, err := KNN(pts, []float32{0}, 9); err == nil {
		t.Fatal("k > n accepted")
	}
}

func TestPageRankProperties(t *testing.T) {
	// A cycle has uniform rank; ranks always sum to ~1.
	n := 5
	cyc := tensor.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		cyc.Set(i, (i+1)%n, 1)
	}
	rank, err := PageRank(cyc, 0.85, 50)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, r := range rank {
		sum += float64(r)
		if math.Abs(float64(r)-0.2) > 1e-3 {
			t.Fatalf("cycle rank not uniform: %v", rank)
		}
	}
	if math.Abs(sum-1) > 1e-3 {
		t.Fatalf("ranks sum to %v, want 1", sum)
	}
	// A sink-pointing star: the hub's target outranks the leaves.
	star := tensor.NewMatrix(4, 4)
	star.Set(1, 0, 1)
	star.Set(2, 0, 1)
	star.Set(3, 0, 1)
	rank, _ = PageRank(star, 0.85, 50)
	if rank[0] <= rank[1] {
		t.Fatalf("popular vertex should outrank leaves: %v", rank)
	}
}
