package workloads

import (
	"encoding/binary"
	"fmt"
	"math"

	"nds/internal/sim"
	"nds/internal/stl"
	"nds/internal/system"
	"nds/internal/tensor"
)

// Device-resident workload kernels: the selection phase of each Table 1
// graph/data-mining kernel executed at the STL through the pushdown
// operators, instead of reading every byte to the host and filtering there.
//
//   - BFS expands frontiers by predicate-scanning adjacency rows: only the
//     (neighbour index, weight key) matches cross the interconnect, not the
//     n-element row.
//   - SSSP relaxes by scanning the rows of reachable vertices; edge weights
//     come back exactly through the order-preserving key transform.
//   - KNN reduces top-k over a per-row distance-key column: 32 + 16k result
//     bytes replace the whole point matrix.
//   - KMeans assigns each point with an argmin reduce (top-1) over its
//     distance-key row: one 32-byte result per point per iteration.
//   - PageRank delta-filters: vertices whose rank moved less than tol since
//     they last propagated stop crossing the link entirely; active rows are
//     fetched as edge scans.
//
// Float values become scannable through tensor.Key32/Key64 (the sign-flip
// transform): spaces store keys, predicates are key ranges, and scan results
// decode back to the exact original bits. The operator model has no
// arbitrary in-storage compute, so where a kernel needs data-dependent keys
// (KNN/KMeans distances), the host stages them — standing in for the
// controller/accelerator distance pass a production device would run — and
// the staging write is charged to the kernel's link traffic. What the
// harness compares is therefore the full steady-state interconnect volume of
// each design.
//
// Every kernel takes push=false to run the identical algorithm with its
// selection phase as read-everything + host filter: the same commands ride
// the same data path, so the pair isolates the pushdown delta, and both are
// pinned bit-identical to the in-memory host kernels (compute.go) by the
// differential suite.

// KernelStats aggregates the simulated cost of one device-resident kernel
// run. Ops are issued serially (each at the previous completion), so Done is
// the end-to-end simulated latency of the kernel's storage traffic.
type KernelStats struct {
	LinkBytes    int64    // bytes that crossed the host interconnect (result pages under pushdown, raw pages otherwise)
	PayloadBytes int64    // partition payload the device was charged for (reads and scans alike)
	Ops          int64    // storage commands issued
	Done         sim.Time // simulated completion of the command chain
}

func (k *KernelStats) add(st system.OpStats) {
	k.LinkBytes += st.RawBytes
	k.PayloadBytes += st.Bytes
	k.Ops++
	if st.Done > k.Done {
		k.Done = st.Done
	}
}

// edgePred matches strictly positive float32 keys: every stored weight w > 0.
// Key32(+0) is 1<<31 and keys are monotone, so (1<<31)+1 .. max is exactly
// "greater than +0" (graph kernels validate weights are non-negative and
// NaN-free at staging, so this is equivalently w != 0).
var edgePred = stl.Predicate{Lo: uint64(tensor.Key32(0)) + 1, Hi: uint64(^uint32(0))}

// stageKeys creates a rows x cols space of 4-byte elements holding the
// order-preserving keys of m's entries and writes it through the NDS write
// path. Timelines are reset afterwards: staging models dataset ingest, which
// both the pushdown and read-everything variants share, so KernelStats
// measures only the kernel's own traffic.
func stageKeys(sys *system.System, m *tensor.Matrix) (*stl.View, error) {
	rows, cols := int64(m.Rows), int64(m.Cols)
	sp, err := sys.STL.CreateSpace(4, []int64{rows, cols})
	if err != nil {
		return nil, err
	}
	v, err := stl.NewView(sp, []int64{rows, cols})
	if err != nil {
		return nil, err
	}
	buf := make([]byte, rows*cols*4)
	for i, f := range m.Data {
		binary.LittleEndian.PutUint32(buf[4*i:], tensor.Key32(f))
	}
	if _, err := sys.NDSWrite(0, v, []int64{0, 0}, []int64{rows, cols}, buf); err != nil {
		return nil, err
	}
	sys.ResetTimelines()
	return v, nil
}

// stageGraphKeys stages an adjacency/weight matrix, rejecting negative or NaN
// weights — the device kernels' edge predicate is a single key range, which
// expresses w > 0 but not w != 0 across both signs.
func stageGraphKeys(sys *system.System, m *tensor.Matrix) (*stl.View, error) {
	for _, w := range m.Data {
		if !(w >= 0) {
			return nil, fmt.Errorf("workloads: device graph kernels need non-negative weights, got %v", w)
		}
	}
	return stageKeys(sys, m)
}

// keySpace64 creates a rows x cols space of 8-byte key elements for staged
// distance keys (KNN, KMeans).
func keySpace64(sys *system.System, rows, cols int64) (*stl.View, error) {
	sp, err := sys.STL.CreateSpace(8, []int64{rows, cols})
	if err != nil {
		return nil, err
	}
	return stl.NewView(sp, []int64{rows, cols})
}

// writeKeys64 writes an 8-byte key payload and charges it to the kernel.
func writeKeys64(sys *system.System, v *stl.View, rows, cols int64, keys []uint64, at sim.Time, ks *KernelStats) (sim.Time, error) {
	buf := make([]byte, 8*len(keys))
	for i, k := range keys {
		binary.LittleEndian.PutUint64(buf[8*i:], k)
	}
	st, err := sys.NDSWrite(at, v, []int64{0, 0}, []int64{rows, cols}, buf)
	if err != nil {
		return at, err
	}
	ks.add(st)
	return st.Done, nil
}

// rowEdges fetches the out-edges of row u of a key-encoded n x n adjacency
// space: under pushdown a predicate scan whose matches are (column, weight
// key) pairs; otherwise a full row read filtered on the host. Both return
// identical (v, w) sequences in ascending column order.
func rowEdges(sys *system.System, view *stl.View, u int, n int64, push bool, at sim.Time, ks *KernelStats, fn func(v int, w float32)) (sim.Time, error) {
	coord, sub := []int64{int64(u), 0}, []int64{1, n}
	if push {
		res, st, err := sys.NDSScan(at, view, coord, sub, stl.ScanQuery{Pred: edgePred})
		if err != nil {
			return at, err
		}
		ks.add(st)
		for _, m := range res.Matches {
			fn(int(m.Index), tensor.FromKey32(uint32(m.Value)))
		}
		return st.Done, nil
	}
	raw, st, err := sys.NDSRead(at, view, coord, sub)
	if err != nil {
		return at, err
	}
	ks.add(st)
	for j := int64(0); j < n; j++ {
		if w := tensor.FromKey32(binary.LittleEndian.Uint32(raw[4*j:])); w > 0 {
			fn(int(j), w)
		}
	}
	return st.Done, nil
}

// BFSDevice computes breadth-first levels with the adjacency resident on the
// device: per frontier vertex, the neighbour selection runs at the STL (push)
// or as a full-row read (baseline). Results are bit-identical to BFS.
func BFSDevice(sys *system.System, adj *tensor.Matrix, src int, push bool) ([]int, KernelStats, error) {
	var ks KernelStats
	n := adj.Rows
	if adj.Cols != n {
		return nil, ks, fmt.Errorf("workloads: BFS needs a square adjacency, got %dx%d", adj.Rows, adj.Cols)
	}
	if src < 0 || src >= n {
		return nil, ks, fmt.Errorf("workloads: BFS source %d out of range", src)
	}
	view, err := stageGraphKeys(sys, adj)
	if err != nil {
		return nil, ks, err
	}
	level := make([]int, n)
	for i := range level {
		level[i] = -1
	}
	level[src] = 0
	frontier := []int{src}
	at := sim.Time(0)
	for d := 1; len(frontier) > 0; d++ {
		var next []int
		for _, u := range frontier {
			at, err = rowEdges(sys, view, u, int64(n), push, at, &ks, func(v int, _ float32) {
				if level[v] < 0 {
					level[v] = d
					next = append(next, v)
				}
			})
			if err != nil {
				return nil, ks, err
			}
		}
		frontier = next
	}
	return level, ks, nil
}

// SSSPDevice runs Bellman-Ford with the weight matrix resident on the
// device: each pass fetches only the rows of currently-reachable vertices,
// and under pushdown only their edges cross the link. Results are
// bit-identical to SSSP (weights decode exactly through the key transform).
func SSSPDevice(sys *system.System, w *tensor.Matrix, src int, push bool) ([]float32, KernelStats, error) {
	var ks KernelStats
	n := w.Rows
	if w.Cols != n {
		return nil, ks, fmt.Errorf("workloads: SSSP needs a square weight matrix")
	}
	if src < 0 || src >= n {
		return nil, ks, fmt.Errorf("workloads: SSSP source %d out of range", src)
	}
	view, err := stageGraphKeys(sys, w)
	if err != nil {
		return nil, ks, err
	}
	inf := float32(math.Inf(1))
	dist := make([]float32, n)
	for i := range dist {
		dist[i] = inf
	}
	dist[src] = 0
	at := sim.Time(0)
	for pass := 0; pass < n-1; pass++ {
		changed := false
		for u := 0; u < n; u++ {
			if dist[u] == inf {
				continue
			}
			du := dist[u]
			at, err = rowEdges(sys, view, u, int64(n), push, at, &ks, func(v int, wt float32) {
				if du+wt < dist[v] {
					dist[v] = du + wt
					changed = true
				}
			})
			if err != nil {
				return nil, ks, err
			}
		}
		if !changed {
			break
		}
	}
	return dist, ks, nil
}

// KNNDevice answers a k-nearest-neighbour query with the selection running
// at the STL: per-point distance keys are staged as one 8-byte-element row
// (complemented, so the device's largest-first top-k returns the k smallest
// distances, ties to the lowest index), and a single ReduceTopK brings back
// 32 + 16k result bytes. The baseline reads the whole point matrix from the
// device and selects on the host. Indices are bit-identical to KNN.
func KNNDevice(sys *system.System, points *tensor.Matrix, query []float32, k int, push bool) ([]int, KernelStats, error) {
	var ks KernelStats
	n, d := points.Rows, points.Cols
	if len(query) != d {
		return nil, ks, fmt.Errorf("workloads: query dimension %d does not match points %d", len(query), d)
	}
	if k <= 0 || k > n {
		return nil, ks, fmt.Errorf("workloads: k=%d out of range for %d points", k, n)
	}
	ptsView, err := stageKeys(sys, points)
	if err != nil {
		return nil, ks, err
	}
	at := sim.Time(0)
	if !push {
		// Read-everything baseline: fetch the point matrix, compute and
		// select on the host.
		raw, st, err := sys.NDSRead(at, ptsView, []int64{0, 0}, []int64{int64(n), int64(d)})
		if err != nil {
			return nil, ks, err
		}
		ks.add(st)
		fetched := tensor.NewMatrix(n, d)
		for i := range fetched.Data {
			fetched.Data[i] = tensor.FromKey32(binary.LittleEndian.Uint32(raw[4*i:]))
		}
		out, err := KNN(fetched, query, k)
		return out, ks, err
	}
	// Pushdown: stage the per-point distance-key column (the stand-in for a
	// device-side distance pass) and reduce top-k over it.
	qm := tensor.NewMatrix(1, d)
	copy(qm.Data, query)
	keys := make([]uint64, n)
	for i := 0; i < n; i++ {
		keys[i] = ^tensor.Key64(pointDist(points, qm, i, 0))
	}
	distView, err := keySpace64(sys, 1, int64(n))
	if err != nil {
		return nil, ks, err
	}
	at, err = writeKeys64(sys, distView, 1, int64(n), keys, at, &ks)
	if err != nil {
		return nil, ks, err
	}
	res, st, err := sys.NDSReduce(at, distView, []int64{0, 0}, []int64{1, int64(n)}, stl.ReduceQuery{Kind: stl.ReduceTopK, K: k})
	if err != nil {
		return nil, ks, err
	}
	ks.add(st)
	out := make([]int, len(res.TopK))
	for i, m := range res.TopK {
		out[i] = int(m.Index)
	}
	return out, ks, nil
}

// KMeansDevice runs Lloyd iterations with the assignment pruning at the STL:
// each iteration stages the n x k distance-key matrix (the device-side
// distance pass stand-in) and issues one argmin reduce per point row — a
// 32-byte result replaces the distance row. The baseline reads the point
// matrix back each iteration and assigns on the host. Centroids and
// assignments are bit-identical to KMeans.
func KMeansDevice(sys *system.System, points *tensor.Matrix, k, iters int, push bool) (*tensor.Matrix, []int, KernelStats, error) {
	var ks KernelStats
	n, d := points.Rows, points.Cols
	if k <= 0 || k > n {
		return nil, nil, ks, fmt.Errorf("workloads: k=%d out of range for %d points", k, n)
	}
	ptsView, err := stageKeys(sys, points)
	if err != nil {
		return nil, nil, ks, err
	}
	var distView *stl.View
	if push {
		if distView, err = keySpace64(sys, int64(n), int64(k)); err != nil {
			return nil, nil, ks, err
		}
	}
	centroids := points.Sub(0, 0, k, d)
	assign := make([]int, n)
	keys := make([]uint64, n*k)
	at := sim.Time(0)
	for it := 0; it < iters; it++ {
		if push {
			for i := 0; i < n; i++ {
				for c := 0; c < k; c++ {
					keys[i*k+c] = tensor.Key64(pointDist(points, centroids, i, c))
				}
			}
			if at, err = writeKeys64(sys, distView, int64(n), int64(k), keys, at, &ks); err != nil {
				return nil, nil, ks, err
			}
			for i := 0; i < n; i++ {
				res, st, err := sys.NDSReduce(at, distView, []int64{int64(i), 0}, []int64{1, int64(k)}, stl.ReduceQuery{Kind: stl.ReduceMin})
				if err != nil {
					return nil, nil, ks, err
				}
				ks.add(st)
				at = st.Done
				assign[i] = int(res.Index)
			}
		} else {
			raw, st, err := sys.NDSRead(at, ptsView, []int64{0, 0}, []int64{int64(n), int64(d)})
			if err != nil {
				return nil, nil, ks, err
			}
			ks.add(st)
			at = st.Done
			fetched := tensor.NewMatrix(n, d)
			for i := range fetched.Data {
				fetched.Data[i] = tensor.FromKey32(binary.LittleEndian.Uint32(raw[4*i:]))
			}
			assignPoints(fetched, centroids, assign)
		}
		centroids = updateCentroids(points, centroids, assign, k)
	}
	return centroids, assign, ks, nil
}

// PageRankDevice runs delta-filtered PageRank with the adjacency resident on
// the device: a degree pass of per-row predicate-count reduces, then
// iterations where only vertices whose rank moved by more than tol fetch
// their adjacency row (as an edge scan under pushdown). Converged vertices
// stop crossing the interconnect entirely. Ranks are bit-identical to
// PageRankDelta with the same tol.
func PageRankDevice(sys *system.System, adj *tensor.Matrix, damping float32, iters int, tol float32, push bool) ([]float32, KernelStats, error) {
	var ks KernelStats
	n := adj.Rows
	if adj.Cols != n {
		return nil, ks, fmt.Errorf("workloads: PageRank needs a square adjacency")
	}
	view, err := stageGraphKeys(sys, adj)
	if err != nil {
		return nil, ks, err
	}
	// Degree pass: a 32-byte count result per row instead of the row.
	outDeg := make([]float32, n)
	at := sim.Time(0)
	for u := 0; u < n; u++ {
		if push {
			pred := edgePred
			res, st, err := sys.NDSReduce(at, view, []int64{int64(u), 0}, []int64{1, int64(n)}, stl.ReduceQuery{Kind: stl.ReduceCount, Pred: &pred})
			if err != nil {
				return nil, ks, err
			}
			ks.add(st)
			at = st.Done
			outDeg[u] = float32(res.Count)
		} else {
			deg := 0
			at, err = rowEdges(sys, view, u, int64(n), false, at, &ks, func(int, float32) { deg++ })
			if err != nil {
				return nil, ks, err
			}
			outDeg[u] = float32(deg)
		}
	}
	rank := make([]float32, n)
	for i := range rank {
		rank[i] = 1 / float32(n)
	}
	prop := make([]float32, n)
	acc := make([]float32, n)
	base := (1 - damping) / float32(n)
	for it := 0; it < iters; it++ {
		for u := 0; u < n; u++ {
			if outDeg[u] == 0 {
				continue
			}
			delta := rank[u] - prop[u]
			ad := delta
			if ad < 0 {
				ad = -ad
			}
			if ad <= tol {
				continue // converged: this row stops crossing the link
			}
			share := damping * delta / outDeg[u]
			at, err = rowEdges(sys, view, u, int64(n), push, at, &ks, func(v int, _ float32) {
				acc[v] += share
			})
			if err != nil {
				return nil, ks, err
			}
			prop[u] = rank[u]
		}
		var dangling float32
		for u := 0; u < n; u++ {
			if outDeg[u] == 0 {
				dangling += rank[u]
			}
		}
		spread := damping * dangling / float32(n)
		for v := 0; v < n; v++ {
			rank[v] = base + spread + acc[v]
		}
	}
	return rank, ks, nil
}
