package ftl

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"

	"nds/internal/nvm"
)

func testGeo() nvm.Geometry {
	return nvm.Geometry{Channels: 4, Banks: 2, BlocksPerBank: 16, PagesPerBlock: 8, PageSize: 256}
}

func newTestFTL(t *testing.T, phantom bool) *FTL {
	t.Helper()
	dev, err := nvm.NewDevice(testGeo(), nvm.TLCTiming(), phantom)
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(dev, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func pageOf(f *FTL, fill byte) []byte {
	return bytes.Repeat([]byte{fill}, f.PageSize())
}

func TestCapacityHidesOverProvision(t *testing.T) {
	f := newTestFTL(t, true)
	raw := testGeo().TotalPages()
	if f.LogicalPages() >= raw {
		t.Fatalf("logical pages %d should be below raw %d", f.LogicalPages(), raw)
	}
	if f.LogicalPages() != int64(float64(raw)*0.9) {
		t.Fatalf("logical pages = %d, want %d", f.LogicalPages(), int64(float64(raw)*0.9))
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	f := newTestFTL(t, false)
	want := make([]byte, 4*f.PageSize())
	for i := range want {
		want[i] = byte(i * 7)
	}
	if _, err := f.WritePages(0, 3, want, 0); err != nil {
		t.Fatal(err)
	}
	got, _, err := f.ReadPages(0, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("read-back mismatch")
	}
}

func TestUnwrittenReadsZero(t *testing.T) {
	f := newTestFTL(t, false)
	got, _, err := f.ReadPages(0, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, 2*f.PageSize())) {
		t.Fatal("unwritten LBAs should read as zeros")
	}
}

func TestOverwriteReturnsNewData(t *testing.T) {
	f := newTestFTL(t, false)
	if _, err := f.WritePages(0, 5, pageOf(f, 0xAA), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WritePages(0, 5, pageOf(f, 0xBB), 0); err != nil {
		t.Fatal(err)
	}
	got, _, err := f.ReadPages(0, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pageOf(f, 0xBB)) {
		t.Fatal("overwrite did not surface new data")
	}
}

func TestSequentialPagesStripeAcrossChannels(t *testing.T) {
	f := newTestFTL(t, true)
	seen := make(map[int]bool)
	buf := make([]byte, f.PageSize())
	for i := int64(0); i < 4; i++ {
		if _, err := f.WritePages(0, i, buf, 0); err != nil {
			t.Fatal(err)
		}
		ch, _ := f.stripe(i)
		seen[ch] = true
	}
	if len(seen) != 4 {
		t.Fatalf("4 sequential pages hit %d channels, want 4", len(seen))
	}
}

func TestByteReadUnaligned(t *testing.T) {
	f := newTestFTL(t, false)
	data := make([]byte, 2*f.PageSize())
	for i := range data {
		data[i] = byte(i)
	}
	if _, err := f.WritePages(0, 0, data, 0); err != nil {
		t.Fatal(err)
	}
	got, _, err := f.Read(0, 100, 300)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[100:400]) {
		t.Fatal("unaligned byte read mismatch")
	}
}

func TestBoundsChecked(t *testing.T) {
	f := newTestFTL(t, true)
	if _, _, err := f.ReadPages(0, f.LogicalPages(), 1); err == nil {
		t.Error("read past capacity should fail")
	}
	if _, err := f.WritePages(0, -1, nil, 1); err == nil {
		t.Error("negative LBA write should fail")
	}
	if _, err := f.WritePages(0, 0, make([]byte, 100), 0); err == nil {
		t.Error("non-page-aligned write should fail")
	}
	if err := f.Trim(f.LogicalPages()-1, 2); err == nil {
		t.Error("trim past capacity should fail")
	}
}

// TestGarbageCollectionPreservesData fills the device, then overwrites hot
// pages until GC must run, verifying (a) GC actually ran, (b) every logical
// page still reads back its latest contents.
func TestGarbageCollectionPreservesData(t *testing.T) {
	f := newTestFTL(t, false)
	ps := f.PageSize()
	n := f.LogicalPages()
	version := make(map[int64]uint32)

	write := func(lpn int64, v uint32) {
		page := make([]byte, ps)
		binary.LittleEndian.PutUint32(page, v)
		binary.LittleEndian.PutUint64(page[4:], uint64(lpn))
		if _, err := f.WritePages(0, lpn, page, 0); err != nil {
			t.Fatalf("write lpn %d: %v", lpn, err)
		}
		version[lpn] = v
	}

	for lpn := int64(0); lpn < n; lpn++ {
		write(lpn, 1)
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < int(3*n); i++ {
		write(rng.Int63n(n), uint32(i+2))
	}

	erases, moves := f.GCStats()
	if erases == 0 {
		t.Fatal("GC never ran despite 4x capacity written")
	}
	if moves == 0 {
		t.Fatal("GC ran but relocated no valid pages")
	}
	if wa := f.WriteAmplification(); wa <= 1.0 {
		t.Fatalf("write amplification %v should exceed 1 after GC", wa)
	}

	for lpn := int64(0); lpn < n; lpn++ {
		got, _, err := f.ReadPages(0, lpn, 1)
		if err != nil {
			t.Fatalf("read lpn %d: %v", lpn, err)
		}
		if v := binary.LittleEndian.Uint32(got); v != version[lpn] {
			t.Fatalf("lpn %d version = %d, want %d (GC corrupted mapping)", lpn, v, version[lpn])
		}
		if l := binary.LittleEndian.Uint64(got[4:]); l != uint64(lpn) {
			t.Fatalf("lpn %d contains data for lpn %d", lpn, l)
		}
	}
}

func TestGCPhantomDevice(t *testing.T) {
	// Same churn on a phantom device: mapping survives without byte storage.
	f := newTestFTL(t, true)
	n := f.LogicalPages()
	for lpn := int64(0); lpn < n; lpn++ {
		if _, err := f.WritePages(0, lpn, nil, 1); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < int(2*n); i++ {
		if _, err := f.WritePages(0, rng.Int63n(n), nil, 1); err != nil {
			t.Fatal(err)
		}
	}
	if erases, _ := f.GCStats(); erases == 0 {
		t.Fatal("GC should have run")
	}
	if _, _, err := f.ReadPages(0, 0, n); err != nil {
		t.Fatal(err)
	}
}

func TestReadParallelismBeatsSingleChannel(t *testing.T) {
	// A striped sequential read of Channels pages completes in roughly one
	// page time; reading the same count through one channel would serialize.
	f := newTestFTL(t, true)
	geo := testGeo()
	if _, err := f.WritePages(0, 0, nil, int64(geo.Channels)); err != nil {
		t.Fatal(err)
	}
	f.Device().ResetTimeline()
	_, done, err := f.ReadPages(0, 0, int64(geo.Channels))
	if err != nil {
		t.Fatal(err)
	}
	tim := f.Device().Timing()
	serial := tim.ReadPage * 4
	if done >= serial {
		t.Fatalf("striped read of 4 pages took %v, want < %v (4 serial senses)", done, serial)
	}
}

func TestTrimFreesSpaceForGC(t *testing.T) {
	f := newTestFTL(t, true)
	n := f.LogicalPages()
	for lpn := int64(0); lpn < n; lpn++ {
		if _, err := f.WritePages(0, lpn, nil, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Trim(0, n/2); err != nil {
		t.Fatal(err)
	}
	// Rewrites into trimmed range must succeed even after heavy churn.
	for lpn := int64(0); lpn < n/2; lpn++ {
		if _, err := f.WritePages(0, lpn, nil, 1); err != nil {
			t.Fatalf("write after trim failed at %d: %v", lpn, err)
		}
	}
}
