package ftl

import (
	"fmt"

	"nds/internal/nvm"
	"nds/internal/sim"
)

// ReadPages reads n logical pages starting at lpn, all issued at time at (the
// controller fans the request out to the channels). It returns the assembled
// bytes (nil on a phantom device) and the completion time of the slowest
// page.
func (f *FTL) ReadPages(at sim.Time, lpn, n int64) ([]byte, sim.Time, error) {
	if lpn < 0 || n < 0 || lpn+n > f.logicalPages {
		return nil, at, fmt.Errorf("ftl: read [%d,%d) beyond logical capacity %d pages", lpn, lpn+n, f.logicalPages)
	}
	var buf []byte
	if !f.dev.Phantom() {
		buf = make([]byte, n*int64(f.geo.PageSize))
	}
	done := at
	for i := int64(0); i < n; i++ {
		idx := f.l2p[lpn+i]
		if idx == unmapped {
			// Unwritten LBA: reads as zeros with no device work.
			continue
		}
		data, d, err := f.dev.ReadPage(at, nvm.FromLinear(f.geo, idx))
		if err != nil {
			return nil, at, err
		}
		if buf != nil {
			copy(buf[i*int64(f.geo.PageSize):], data)
		}
		done = sim.Max(done, d)
	}
	return buf, done, nil
}

// WritePages writes len(data)/PageSize logical pages starting at lpn. When
// data is nil (phantom workloads) the same mapping and timing work happens
// without byte storage. Pages of one request are issued at the same arrival
// time; the returned completion is the slowest page (or GC stall).
func (f *FTL) WritePages(at sim.Time, lpn int64, data []byte, n int64) (sim.Time, error) {
	if data != nil {
		if int64(len(data))%int64(f.geo.PageSize) != 0 {
			return at, fmt.Errorf("ftl: write of %d bytes is not page-aligned (page=%d)", len(data), f.geo.PageSize)
		}
		n = int64(len(data)) / int64(f.geo.PageSize)
	}
	if lpn < 0 || n < 0 || lpn+n > f.logicalPages {
		return at, fmt.Errorf("ftl: write [%d,%d) beyond logical capacity %d pages", lpn, lpn+n, f.logicalPages)
	}
	done := at
	for i := int64(0); i < n; i++ {
		l := lpn + i
		ch, bk := f.stripe(l)
		p, readyAt, err := f.allocate(at, ch, bk)
		if err != nil {
			return at, err
		}
		var page []byte
		if data != nil {
			page = data[i*int64(f.geo.PageSize) : (i+1)*int64(f.geo.PageSize)]
		}
		d, err := f.dev.ProgramPage(readyAt, p, page)
		if err != nil {
			return at, err
		}
		f.unmapLogical(l) // overwrite invalidates the old physical page
		f.mapPage(l, p)
		f.hostProg++
		done = sim.Max(done, d)
	}
	return done, nil
}

// Read reads n bytes from byte offset off, page-aligned internally.
func (f *FTL) Read(at sim.Time, off, n int64) ([]byte, sim.Time, error) {
	ps := int64(f.geo.PageSize)
	first := off / ps
	last := (off + n + ps - 1) / ps
	buf, done, err := f.ReadPages(at, first, last-first)
	if err != nil {
		return nil, done, err
	}
	if buf == nil {
		return nil, done, nil
	}
	start := off - first*ps
	return buf[start : start+n], done, nil
}

// Trim invalidates n logical pages starting at lpn.
func (f *FTL) Trim(lpn, n int64) error {
	if lpn < 0 || n < 0 || lpn+n > f.logicalPages {
		return fmt.Errorf("ftl: trim [%d,%d) beyond logical capacity", lpn, lpn+n)
	}
	for i := int64(0); i < n; i++ {
		f.unmapLogical(lpn + i)
	}
	return nil
}
