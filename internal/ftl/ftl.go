// Package ftl implements the baseline SSD's flash translation layer: a
// page-level LBA-to-physical mapping with channel striping for sequential
// LBAs, per-die log-structured write allocation, greedy garbage collection,
// and over-provisioning — the conventional linear-address device NDS is
// compared against throughout the paper.
package ftl

import (
	"fmt"

	"nds/internal/nvm"
	"nds/internal/sim"
)

const unmapped = int64(-1)

// Config holds FTL policy parameters.
type Config struct {
	// OverProvision is the fraction of raw capacity hidden from the host and
	// reserved for garbage collection (the paper's prototype reserves 10%).
	OverProvision float64
	// GCLowWater triggers collection on a die when its free-page fraction
	// falls below this threshold.
	GCLowWater float64
}

// DefaultConfig mirrors the paper's prototype: 10% OP, GC below 10% free.
func DefaultConfig() Config {
	return Config{OverProvision: 0.10, GCLowWater: 0.10}
}

// die tracks per-(channel,bank) allocation state.
type die struct {
	freeBlocks  []int // erased blocks ready for allocation
	activeBlock int   // block currently receiving writes, -1 if none
	nextPage    int   // next free page in activeBlock
	freePages   int64 // erased-and-unwritten pages in the die
}

// FTL is the baseline translation layer over an nvm.Device.
type FTL struct {
	dev *nvm.Device
	geo nvm.Geometry
	cfg Config

	logicalPages int64
	l2p          []int64 // logical page -> linear PPA
	p2l          []int64 // linear PPA -> logical page
	validInBlk   []int32 // valid-page count per linear block index
	dies         []*die  // indexed channel*Banks+bank

	gcErases int64
	gcMoves  int64
	hostProg int64
}

// New builds an FTL over dev.
func New(dev *nvm.Device, cfg Config) (*FTL, error) {
	if cfg.OverProvision < 0 || cfg.OverProvision >= 1 {
		return nil, fmt.Errorf("ftl: over-provision fraction %v out of range [0,1)", cfg.OverProvision)
	}
	geo := dev.Geometry()
	f := &FTL{
		dev:          dev,
		geo:          geo,
		cfg:          cfg,
		logicalPages: int64(float64(geo.TotalPages()) * (1 - cfg.OverProvision)),
		l2p:          make([]int64, geo.TotalPages()),
		p2l:          make([]int64, geo.TotalPages()),
		validInBlk:   make([]int32, int64(geo.Channels)*int64(geo.Banks)*int64(geo.BlocksPerBank)),
		dies:         make([]*die, geo.Channels*geo.Banks),
	}
	for i := range f.l2p {
		f.l2p[i] = unmapped
		f.p2l[i] = unmapped
	}
	for i := range f.dies {
		d := &die{activeBlock: -1, freePages: geo.PagesPerBank()}
		for b := 0; b < geo.BlocksPerBank; b++ {
			d.freeBlocks = append(d.freeBlocks, b)
		}
		f.dies[i] = d
	}
	return f, nil
}

// Device exposes the underlying array (for instrumentation).
func (f *FTL) Device() *nvm.Device { return f.dev }

// LogicalPages is the host-visible capacity in pages.
func (f *FTL) LogicalPages() int64 { return f.logicalPages }

// LogicalBytes is the host-visible capacity in bytes.
func (f *FTL) LogicalBytes() int64 { return f.logicalPages * int64(f.geo.PageSize) }

// PageSize is the device page size in bytes.
func (f *FTL) PageSize() int { return f.geo.PageSize }

// GCStats reports garbage-collection work done so far.
func (f *FTL) GCStats() (erases, pageMoves int64) { return f.gcErases, f.gcMoves }

// WriteAmplification is (host+GC programs)/host programs, 1.0 when idle.
func (f *FTL) WriteAmplification() float64 {
	if f.hostProg == 0 {
		return 1
	}
	return float64(f.hostProg+f.gcMoves) / float64(f.hostProg)
}

// stripe maps a logical page to its home die following conventional striping:
// consecutive logical pages land on consecutive channels (so sequential reads
// engage all channels), rotating banks every full channel sweep.
func (f *FTL) stripe(lpn int64) (channel, bank int) {
	channel = int(lpn % int64(f.geo.Channels))
	bank = int((lpn / int64(f.geo.Channels)) % int64(f.geo.Banks))
	return channel, bank
}

func (f *FTL) dieOf(channel, bank int) *die { return f.dies[channel*f.geo.Banks+bank] }

// allocate returns the next free PPA on the given die, running GC if the die
// is below its low-water mark. The returned time covers any GC stall.
func (f *FTL) allocate(at sim.Time, channel, bank int) (nvm.PPA, sim.Time, error) {
	d := f.dieOf(channel, bank)
	lowWater := int64(f.cfg.GCLowWater * float64(f.geo.PagesPerBank()))
	if d.freePages <= lowWater {
		var err error
		at, err = f.collectDie(at, channel, bank)
		if err != nil {
			return nvm.PPA{}, at, err
		}
	}
	if d.activeBlock < 0 || d.nextPage >= f.geo.PagesPerBlock {
		// Keep one erased block in reserve as a GC destination; if opening a
		// new active block would consume it, collect first.
		if len(d.freeBlocks) <= 1 {
			var err error
			at, err = f.collectDie(at, channel, bank)
			if err != nil {
				return nvm.PPA{}, at, err
			}
		}
		if len(d.freeBlocks) == 0 {
			return nvm.PPA{}, at, fmt.Errorf("ftl: die ch%d/bk%d out of free blocks", channel, bank)
		}
		d.activeBlock = d.freeBlocks[0]
		d.freeBlocks = d.freeBlocks[1:]
		d.nextPage = 0
	}
	p := nvm.PPA{Channel: channel, Bank: bank, Block: d.activeBlock, Page: d.nextPage}
	d.nextPage++
	d.freePages--
	return p, at, nil
}

// collectDie performs greedy GC on one die: victim = closed block with the
// fewest valid pages; valid pages are relocated within the die, then the
// victim is erased. Collection is best-effort: it stops (without error) when
// no victim would net free space, leaving the caller to proceed with whatever
// free pages remain.
func (f *FTL) collectDie(at sim.Time, channel, bank int) (sim.Time, error) {
	d := f.dieOf(channel, bank)
	lowWater := int64(f.cfg.GCLowWater * float64(f.geo.PagesPerBank()))
	for d.freePages <= lowWater {
		victim := f.pickVictim(channel, bank)
		if victim < 0 && d.activeBlock >= 0 &&
			f.validInBlk[f.blockIndex(channel, bank, d.activeBlock)] < int32(d.nextPage) {
			// All reclaimable pages sit in the open block: close it (losing
			// its unwritten tail until the erase returns it) and retry.
			d.freePages -= int64(f.geo.PagesPerBlock - d.nextPage)
			d.activeBlock = -1
			victim = f.pickVictim(channel, bank)
		}
		if victim < 0 {
			return at, nil // nothing reclaimable; best effort only
		}
		// Ensure the victim's survivors fit in the remaining free pages.
		survivors := int64(f.validInBlk[f.blockIndex(channel, bank, victim)])
		room := int64(len(d.freeBlocks)) * int64(f.geo.PagesPerBlock)
		if d.activeBlock >= 0 {
			room += int64(f.geo.PagesPerBlock - d.nextPage)
		}
		if room < survivors {
			return at, nil // cannot evacuate safely; stop collecting
		}
		var err error
		at, err = f.evacuateBlock(at, channel, bank, victim)
		if err != nil {
			return at, err
		}
	}
	return at, nil
}

// pickVictim chooses the closed block with the fewest valid pages among those
// with at least one reclaimable (programmed but invalid) page; -1 if none.
func (f *FTL) pickVictim(channel, bank int) int {
	d := f.dieOf(channel, bank)
	best, bestScore := -1, int32(1<<30)
	free := make(map[int]bool, len(d.freeBlocks))
	for _, b := range d.freeBlocks {
		free[b] = true
	}
	for b := 0; b < f.geo.BlocksPerBank; b++ {
		if b == d.activeBlock || free[b] {
			continue
		}
		v := f.validInBlk[f.blockIndex(channel, bank, b)]
		if v >= int32(f.geo.PagesPerBlock) {
			continue // fully valid: erasing frees nothing
		}
		if v < bestScore {
			best, bestScore = b, v
		}
	}
	return best
}

func (f *FTL) blockIndex(channel, bank, block int) int64 {
	return (int64(channel)*int64(f.geo.Banks)+int64(bank))*int64(f.geo.BlocksPerBank) + int64(block)
}

func (f *FTL) evacuateBlock(at sim.Time, channel, bank, block int) (sim.Time, error) {
	for pg := 0; pg < f.geo.PagesPerBlock; pg++ {
		src := nvm.PPA{Channel: channel, Bank: bank, Block: block, Page: pg}
		lpn := f.p2l[src.Linear(f.geo)]
		if lpn == unmapped {
			continue
		}
		data, done, err := f.dev.ReadPage(at, src)
		if err != nil {
			return at, err
		}
		// Relocation target must come from the same die; allocate directly to
		// avoid recursive GC (the erase below restores free pages).
		d := f.dieOf(channel, bank)
		if d.activeBlock < 0 || d.nextPage >= f.geo.PagesPerBlock {
			if len(d.freeBlocks) == 0 {
				return at, fmt.Errorf("ftl: GC relocation out of space on ch%d/bk%d", channel, bank)
			}
			d.activeBlock = d.freeBlocks[0]
			d.freeBlocks = d.freeBlocks[1:]
			d.nextPage = 0
		}
		dst := nvm.PPA{Channel: channel, Bank: bank, Block: d.activeBlock, Page: d.nextPage}
		d.nextPage++
		d.freePages--
		done, err = f.dev.ProgramPage(done, dst, data)
		if err != nil {
			return at, err
		}
		f.unmapPhysical(src)
		f.mapPage(lpn, dst)
		f.gcMoves++
		at = sim.Max(at, done)
	}
	done, err := f.dev.EraseBlock(at, nvm.PPA{Channel: channel, Bank: bank, Block: block})
	if err != nil {
		return at, err
	}
	d := f.dieOf(channel, bank)
	d.freeBlocks = append(d.freeBlocks, block)
	d.freePages += int64(f.geo.PagesPerBlock)
	f.gcErases++
	return done, nil
}

func (f *FTL) mapPage(lpn int64, p nvm.PPA) {
	idx := p.Linear(f.geo)
	f.l2p[lpn] = idx
	f.p2l[idx] = lpn
	f.validInBlk[f.blockIndex(p.Channel, p.Bank, p.Block)]++
}

func (f *FTL) unmapLogical(lpn int64) {
	idx := f.l2p[lpn]
	if idx == unmapped {
		return
	}
	f.l2p[lpn] = unmapped
	f.unmapPhysicalIdx(idx)
}

func (f *FTL) unmapPhysical(p nvm.PPA) { f.unmapPhysicalIdx(p.Linear(f.geo)) }

func (f *FTL) unmapPhysicalIdx(idx int64) {
	if f.p2l[idx] == unmapped {
		return
	}
	f.p2l[idx] = unmapped
	p := nvm.FromLinear(f.geo, idx)
	f.validInBlk[f.blockIndex(p.Channel, p.Bank, p.Block)]--
}
