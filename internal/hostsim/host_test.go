package hostsim

import (
	"testing"

	"nds/internal/sim"
)

func TestMarshalCost(t *testing.T) {
	h := New(Params{IOSubmit: 5 * sim.Microsecond, ChunkOverhead: sim.Microsecond, MemcpyBW: 1e9})
	// 1000 bytes in 4 chunks: 4us fixed + 1us copy.
	_, end := h.Marshal(0, 1000, 4)
	if end != 5*sim.Microsecond {
		t.Fatalf("marshal end = %v, want 5us", end)
	}
	if d := h.MarshalDuration(1000, 4); d != 5*sim.Microsecond {
		t.Fatalf("MarshalDuration = %v, want 5us", d)
	}
}

func TestChunkedCopySlowerThanBulk(t *testing.T) {
	// The software-NDS penalty: the same bytes in many small chunks cost
	// more CPU than one bulk copy.
	h := New(DefaultParams())
	bulk := h.MarshalDuration(1<<20, 1)
	chunked := h.MarshalDuration(1<<20, 512) // 2 KB pieces
	if chunked <= bulk {
		t.Fatalf("chunked copy (%v) should cost more than bulk (%v)", chunked, bulk)
	}
}

func TestCPUSerializes(t *testing.T) {
	h := New(DefaultParams())
	_, e1 := h.SubmitIO(0)
	s2, _ := h.SubmitIO(0)
	if s2 != e1 {
		t.Fatalf("second submit starts %v, want %v", s2, e1)
	}
	_, e3 := h.Translate(e1)
	if e3 < e1+h.STLTraversal {
		t.Fatal("translation should occupy the CPU for STLTraversal")
	}
	if h.BusyTime() == 0 {
		t.Fatal("busy time should accumulate")
	}
	h.Reset()
	if h.FreeAt() != 0 {
		t.Fatal("reset should clear the timeline")
	}
}

func TestDefaultsMatchPaperAnchors(t *testing.T) {
	p := DefaultParams()
	// §7.3: software NDS adds 41us to a worst-case request.
	if p.STLTraversal != 41*sim.Microsecond {
		t.Errorf("STLTraversal = %v, want 41us", p.STLTraversal)
	}
	// §7.1: copying a 2 KB chunk must be dominated by fixed overhead, which
	// is what caps software-NDS assembly near 3.8 GB/s.
	perChunk := p.ChunkOverhead + sim.TransferTime(2048, p.MemcpyBW)
	bw := sim.Bandwidth(2048, perChunk)
	if bw < 3.0e9 || bw > 4.5e9 {
		t.Errorf("2 KB-chunk assembly bandwidth = %.2f GB/s, want ~3.8", bw/1e9)
	}
}
