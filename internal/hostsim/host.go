// Package hostsim models the host computer of the evaluation platform: the
// CPU cost of the storage software stack (problem [P1] of the paper — every
// I/O request and every marshalling memcpy spends CPU instructions), the
// host-DRAM copy bandwidth, and the host-resident space-translation cost of
// the software-only NDS configuration.
package hostsim

import "nds/internal/sim"

// Params holds the host cost model. The defaults are calibrated against the
// paper's platform (Ryzen 3700X, DDR4):
//
//   - IOSubmit: syscall + driver + completion handling per I/O request;
//   - ChunkOverhead: fixed cost of each marshalling copy (offset arithmetic,
//     loop control, cache effects) — this is what makes the software NDS's
//     2 KB assembly copies expensive (§7.1);
//   - MemcpyBW: sustained single-stream host memcpy bandwidth;
//   - STLTraversal: the host-side B-tree walk of software NDS; §7.3 measures
//     41 us of added latency for a worst-case single-page request.
type Params struct {
	IOSubmit      sim.Time
	ChunkOverhead sim.Time
	MemcpyBW      float64
	STLTraversal  sim.Time
	// ScatterChunkOverhead is the per-chunk cost of the write direction:
	// breaking a row-major source buffer into building-block-ordered pages
	// is a strided, cache-hostile scatter, considerably more expensive than
	// the gather direction (§7.1 reports a 30% write-bandwidth loss for
	// software NDS from exactly this).
	ScatterChunkOverhead sim.Time
}

// DefaultParams returns the calibrated host model.
func DefaultParams() Params {
	return Params{
		IOSubmit:             7 * sim.Microsecond,
		ChunkOverhead:        340 * sim.Nanosecond,
		MemcpyBW:             10e9,
		STLTraversal:         41 * sim.Microsecond,
		ScatterChunkOverhead: 2 * sim.Microsecond,
	}
}

// Host is a host CPU with an I/O-submission thread and a marshalling worker
// thread, matching the paper's pipelined applications (the I/O stage and the
// restructuring stage run on different cores of the 8-core Ryzen). Each
// thread is a serially-occupied resource.
type Host struct {
	Params
	io     *sim.Resource
	worker *sim.Resource
}

// New builds a host from params.
func New(p Params) *Host {
	return &Host{Params: p, io: sim.NewResource("host-io"), worker: sim.NewResource("host-worker")}
}

// SubmitIO charges one I/O submission+completion on the I/O thread.
func (h *Host) SubmitIO(at sim.Time) (start, end sim.Time) {
	return h.io.Acquire(at, h.IOSubmit)
}

// Marshal charges the worker thread for restructuring data: chunks discrete
// copies moving a total of n bytes. This is the [P1]
// serialization/deserialization cost; it is also the software NDS assembly
// cost with chunks = extents.
func (h *Host) Marshal(at sim.Time, n int64, chunks int) (start, end sim.Time) {
	d := sim.Time(chunks)*h.ChunkOverhead + sim.TransferTime(n, h.MemcpyBW)
	return h.worker.Acquire(at, d)
}

// MarshalDuration reports the CPU time Marshal would charge without
// scheduling it (used by pipeline models that account stages separately).
func (h *Host) MarshalDuration(n int64, chunks int) sim.Time {
	return sim.Time(chunks)*h.ChunkOverhead + sim.TransferTime(n, h.MemcpyBW)
}

// Scatter charges the worker thread for the write-direction restructuring:
// breaking a source buffer into chunks building-block-ordered pieces.
func (h *Host) Scatter(at sim.Time, n int64, chunks int) (start, end sim.Time) {
	d := sim.Time(chunks)*h.ScatterChunkOverhead + sim.TransferTime(n, h.MemcpyBW)
	return h.worker.Acquire(at, d)
}

// Compute charges the worker thread for d of kernel time: the host half of a
// pushdown operator in the software-NDS configuration, where raw pages cross
// the link and the host CPU scans them (the filter runs at host rate, but the
// interconnect still carried every byte).
func (h *Host) Compute(at sim.Time, d sim.Time) (start, end sim.Time) {
	return h.worker.Acquire(at, d)
}

// Translate charges one software-NDS space translation (B-tree walk) on the
// I/O thread: translation must complete before the page reads can be issued.
func (h *Host) Translate(at sim.Time) (start, end sim.Time) {
	return h.io.Acquire(at, h.STLTraversal)
}

// BusyTime reports accumulated CPU service time across both threads.
func (h *Host) BusyTime() sim.Time { return h.io.BusyTime() + h.worker.BusyTime() }

// FreeAt reports when both threads are next idle.
func (h *Host) FreeAt() sim.Time { return sim.Max(h.io.FreeAt(), h.worker.FreeAt()) }

// Reset clears both thread timelines.
func (h *Host) Reset() { h.io.Reset(); h.worker.Reset() }
