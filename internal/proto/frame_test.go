package proto

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// TestFrameRequestRoundTrip: request frames survive write/read for every
// combination of present and absent sections.
func TestFrameRequestRoundTrip(t *testing.T) {
	page, err := CoordPayload{Coord: []int64{1, 2}, Sub: []int64{3, 4}}.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	cases := []Request{
		{Seq: 1, Cmd: NewRead(7, 0).Marshal(), Payload: page},
		{Seq: 2, Cmd: NewWrite(7, 0).Marshal(), Payload: page, Data: []byte("write data")},
		{Seq: 1<<64 - 1, Cmd: NewCloseSpace(9).Marshal()},
		{Seq: 0, Cmd: NewDeleteSpace(3).Marshal(), Data: []byte{0}},
	}
	var buf bytes.Buffer
	for _, req := range cases {
		if err := WriteRequest(&buf, req); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range cases {
		got, err := ReadRequest(&buf, 0)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Seq != want.Seq || got.Cmd != want.Cmd ||
			!bytes.Equal(got.Payload, want.Payload) || !bytes.Equal(got.Data, want.Data) {
			t.Fatalf("frame %d corrupted in transit", i)
		}
	}
	if _, err := ReadRequest(&buf, 0); err != io.EOF {
		t.Fatalf("read past last frame: %v, want io.EOF", err)
	}
}

// TestFrameResponseRoundTrip: response frames carry the completion and data
// faithfully, including out-of-order sequence numbers.
func TestFrameResponseRoundTrip(t *testing.T) {
	cases := []Response{
		{Seq: 9, Cpl: Completion{Status: StatusOK, Result0: 5, Result1: 6}, Data: []byte("tile")},
		{Seq: 2, Cpl: Completion{Status: StatusUnknownView}},
		{Seq: 3, Cpl: Completion{Status: StatusUnsupportedOp, Result0: 1 << 63}},
	}
	var buf bytes.Buffer
	for _, resp := range cases {
		if err := WriteResponse(&buf, resp); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range cases {
		got, err := ReadResponse(&buf, 0)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Seq != want.Seq || got.Cpl != want.Cpl || !bytes.Equal(got.Data, want.Data) {
			t.Fatalf("frame %d corrupted in transit", i)
		}
	}
}

// TestFrameLimits: an announced length beyond the reader's bound fails with
// ErrFrameTooLarge before any allocation-sized read.
func TestFrameLimits(t *testing.T) {
	var buf bytes.Buffer
	binary.Write(&buf, binary.LittleEndian, uint32(1<<30))
	buf.Write(make([]byte, 64))
	raw := buf.Bytes()
	if _, err := ReadRequest(bytes.NewReader(raw), 1<<20); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized frame: %v, want ErrFrameTooLarge", err)
	}
	if _, err := ReadResponse(bytes.NewReader(raw), 1<<20); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized response frame: %v, want ErrFrameTooLarge", err)
	}
}

// TestFrameTruncation: EOF inside a frame is io.ErrUnexpectedEOF (a cut
// connection), never a silent short frame.
func TestFrameTruncation(t *testing.T) {
	var full bytes.Buffer
	if err := WriteRequest(&full, Request{Seq: 1, Cmd: NewRead(1, 0).Marshal(), Data: []byte("abcdef")}); err != nil {
		t.Fatal(err)
	}
	whole := full.Bytes()
	for cut := 1; cut < len(whole); cut++ {
		_, err := ReadRequest(bytes.NewReader(whole[:cut]), 0)
		if err == nil {
			t.Fatalf("truncation at %d/%d bytes parsed successfully", cut, len(whole))
		}
	}
}

// FuzzReadRequest: arbitrary bytes must never panic, and anything that
// parses must re-frame byte-identically.
func FuzzReadRequest(f *testing.F) {
	var seedBuf bytes.Buffer
	page, _ := CoordPayload{Coord: []int64{1}, Sub: []int64{2}}.Marshal()
	WriteRequest(&seedBuf, Request{Seq: 3, Cmd: NewRead(1, 0).Marshal(), Payload: page, Data: []byte("x")})
	f.Add(seedBuf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0x7F})
	f.Fuzz(func(t *testing.T, raw []byte) {
		req, err := ReadRequest(bytes.NewReader(raw), 1<<16)
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteRequest(&out, req); err != nil {
			t.Fatalf("parsed request failed to re-frame: %v", err)
		}
		back, err := ReadRequest(&out, 1<<16)
		if err != nil {
			t.Fatalf("re-framed request failed to parse: %v", err)
		}
		if back.Seq != req.Seq || back.Cmd != req.Cmd ||
			!bytes.Equal(back.Payload, req.Payload) || !bytes.Equal(back.Data, req.Data) {
			t.Fatal("request not stable under frame round-trip")
		}
	})
}

// FuzzReadResponse: same contract for response frames.
func FuzzReadResponse(f *testing.F) {
	var seedBuf bytes.Buffer
	WriteResponse(&seedBuf, Response{Seq: 3, Cpl: Completion{Status: StatusOK, Result0: 1}, Data: []byte("y")})
	f.Add(seedBuf.Bytes())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		resp, err := ReadResponse(bytes.NewReader(raw), 1<<16)
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteResponse(&out, resp); err != nil {
			t.Fatalf("parsed response failed to re-frame: %v", err)
		}
		back, err := ReadResponse(&out, 1<<16)
		if err != nil {
			t.Fatalf("re-framed response failed to parse: %v", err)
		}
		if back.Seq != resp.Seq || back.Cpl != resp.Cpl || !bytes.Equal(back.Data, resp.Data) {
			t.Fatal("response not stable under frame round-trip")
		}
	})
}
