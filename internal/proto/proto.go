// Package proto implements the PCIe/NVMe command-set extension of §5.3.1 as
// a concrete wire format. An extended NVMe command is a standard 64-byte
// submission entry whose first 64-bit word carries a reserved "extended"
// bit; a device that sees the bit clear treats the request as conventional
// one-dimensional I/O. The second 64-bit word points to a 4 KB memory page
// holding the multi-dimensional payload:
//
//   - for read/write: the view coordinates and sub-dimensionality, up to 32
//     dimensions with 2^24 elements each;
//   - for open_space: the element size and the dimensionality of the space
//     (again up to 32 dimensions x 2^24 elements).
//
// open_space returns a 64-bit space identifier and a dynamic view ID that
// read/write commands name; close_space retires the view ID and
// delete_space removes the space (§5.3.1).
package proto

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrUnknownOpcode reports a well-formed extended entry whose opcode this
// device does not implement. The dispatcher maps it to StatusUnsupportedOp,
// distinct from the StatusInvalidField a malformed entry earns.
var ErrUnknownOpcode = errors.New("proto: unsupported opcode")

// Opcode identifies an extended command. Values sit in the NVMe
// vendor-specific range.
type Opcode uint8

const (
	OpRead        Opcode = 0xC1
	OpWrite       Opcode = 0xC2
	OpOpenSpace   Opcode = 0xC8
	OpCloseSpace  Opcode = 0xC9
	OpDeleteSpace Opcode = 0xCA
	OpReliability Opcode = 0xCB
	OpCacheStats  Opcode = 0xCC
	OpTenantStats Opcode = 0xCD
	OpScan        Opcode = 0xCE
	OpReduce      Opcode = 0xCF
)

func (o Opcode) String() string {
	switch o {
	case OpRead:
		return "nds_read"
	case OpWrite:
		return "nds_write"
	case OpOpenSpace:
		return "open_space"
	case OpCloseSpace:
		return "close_space"
	case OpDeleteSpace:
		return "delete_space"
	case OpReliability:
		return "get_reliability"
	case OpCacheStats:
		return "get_cache_stats"
	case OpTenantStats:
		return "get_tenant_stats"
	case OpScan:
		return "pushdown_scan"
	case OpReduce:
		return "pushdown_reduce"
	default:
		return fmt.Sprintf("opcode(%#x)", uint8(o))
	}
}

// Limits of the command format (§5.3.1).
const (
	MaxDims     = 32
	MaxDimSize  = 1 << 24
	PageSize    = 4096 // coordinate/dimensionality page
	CommandSize = 64   // one NVMe submission-queue entry
)

// extendedBit marks word 0 of an extended command; conventional NVMe
// commands never set it (it sits in a reserved region of the entry).
const extendedBit = uint64(1) << 63

// openCreate is the open_space flag requesting creation of a new space
// rather than a new view of an existing one (§5.3.1: "can create a new
// space or change the dimensionality of an existing space depending on the
// flag set in the command header").
const openCreate = uint64(1) << 62

// Command is one 64-byte submission entry.
//
// Word 0: [63] extended, [62] flags, [7:0] opcode, [39:8] target ID
// (dynamic view ID for read/write/close, space ID for open/delete).
// Word 1: host address of the 4 KB payload page (carried out of band here).
// Words 2..7: reserved, zero.
type Command struct {
	words [8]uint64
}

// IsExtended reports whether a raw submission entry is an NDS command.
// Conventional entries are handled by the unmodified NVMe path.
func IsExtended(raw [CommandSize]byte) bool {
	return binary.LittleEndian.Uint64(raw[:8])&extendedBit != 0
}

// Opcode returns the command opcode.
func (c Command) Opcode() Opcode { return Opcode(c.words[0] & 0xFF) }

// Target returns the 32-bit target identifier.
func (c Command) Target() uint32 { return uint32(c.words[0] >> 8) }

// CreateFlag reports the open_space create flag.
func (c Command) CreateFlag() bool { return c.words[0]&openCreate != 0 }

// PayloadAddr returns the host address of the payload page.
func (c Command) PayloadAddr() uint64 { return c.words[1] }

// Marshal serializes the command into a submission entry.
func (c Command) Marshal() [CommandSize]byte {
	var out [CommandSize]byte
	for i, w := range c.words {
		binary.LittleEndian.PutUint64(out[i*8:], w)
	}
	return out
}

// Unmarshal parses a submission entry, rejecting non-extended entries.
func Unmarshal(raw [CommandSize]byte) (Command, error) {
	var c Command
	for i := range c.words {
		c.words[i] = binary.LittleEndian.Uint64(raw[i*8:])
	}
	if c.words[0]&extendedBit == 0 {
		return Command{}, fmt.Errorf("proto: not an extended command (reserved bit clear)")
	}
	switch c.Opcode() {
	case OpRead, OpWrite, OpOpenSpace, OpCloseSpace, OpDeleteSpace, OpReliability, OpCacheStats, OpTenantStats, OpScan, OpReduce:
	default:
		return Command{}, fmt.Errorf("%w %#x", ErrUnknownOpcode, uint8(c.Opcode()))
	}
	return c, nil
}

func newCommand(op Opcode, target uint32, payloadAddr uint64, create bool) Command {
	var c Command
	c.words[0] = extendedBit | uint64(op) | uint64(target)<<8
	if create {
		c.words[0] |= openCreate
	}
	c.words[1] = payloadAddr
	return c
}

// NewRead builds an nds_read command against an open view.
func NewRead(viewID uint32, payloadAddr uint64) Command {
	return newCommand(OpRead, viewID, payloadAddr, false)
}

// NewWrite builds an nds_write command against an open view.
func NewWrite(viewID uint32, payloadAddr uint64) Command {
	return newCommand(OpWrite, viewID, payloadAddr, false)
}

// NewOpenSpace builds an open_space command. With create set, the device
// allocates a new space from the payload's dimensionality; otherwise it
// opens a new view (of the payload's dimensionality) onto space spaceID.
func NewOpenSpace(spaceID uint32, payloadAddr uint64, create bool) Command {
	return newCommand(OpOpenSpace, spaceID, payloadAddr, create)
}

// NewCloseSpace builds a close_space command retiring a dynamic view ID.
func NewCloseSpace(viewID uint32) Command {
	return newCommand(OpCloseSpace, viewID, 0, false)
}

// NewDeleteSpace builds a delete_space command.
func NewDeleteSpace(spaceID uint32) Command {
	return newCommand(OpDeleteSpace, spaceID, 0, false)
}

// NewReliability builds a get_reliability command. The device answers with a
// ReliabilityPayload page describing fault, recovery, and capacity state.
func NewReliability(payloadAddr uint64) Command {
	return newCommand(OpReliability, 0, payloadAddr, false)
}

// NewCacheStats builds a get_cache_stats command. The device answers with a
// CacheStatsPayload page describing the building-block cache's hit, prefetch,
// and occupancy counters.
func NewCacheStats(payloadAddr uint64) Command {
	return newCommand(OpCacheStats, 0, payloadAddr, false)
}

// NewTenantStats builds a get_tenant_stats command. The device answers with
// a TenantStatsPayload page: one record per QoS tenant (space or space
// group), truncated to the page if the device has more tenants than fit —
// Completion.Result0 carries the untruncated tenant count.
func NewTenantStats(payloadAddr uint64) Command {
	return newCommand(OpTenantStats, 0, payloadAddr, false)
}

// NewScan builds a pushdown_scan command against an open view. The payload
// page is a ScanPayload: the partition coordinates plus the predicate range
// and result cursor.
func NewScan(viewID uint32, payloadAddr uint64) Command {
	return newCommand(OpScan, viewID, payloadAddr, false)
}

// NewReduce builds a pushdown_reduce command against an open view. The
// payload page is a ReducePayload: the partition coordinates plus the
// reduction operator.
func NewReduce(viewID uint32, payloadAddr uint64) Command {
	return newCommand(OpReduce, viewID, payloadAddr, false)
}

// CoordPayload is the 4 KB page named by a read/write command: the
// application-view coordinate and sub-dimensionality of the partition.
type CoordPayload struct {
	Coord []int64
	Sub   []int64
}

// Marshal encodes the payload into a 4 KB page:
// uint32 rank, then rank x (uint32 coord, uint32 sub).
func (p CoordPayload) Marshal() ([]byte, error) {
	if len(p.Coord) != len(p.Sub) {
		return nil, fmt.Errorf("proto: coord rank %d != sub rank %d", len(p.Coord), len(p.Sub))
	}
	if len(p.Coord) == 0 || len(p.Coord) > MaxDims {
		return nil, fmt.Errorf("proto: rank %d out of range [1,%d]", len(p.Coord), MaxDims)
	}
	out := make([]byte, PageSize)
	binary.LittleEndian.PutUint32(out, uint32(len(p.Coord)))
	for i := range p.Coord {
		if p.Coord[i] < 0 || p.Coord[i] >= MaxDimSize {
			return nil, fmt.Errorf("proto: coordinate %d = %d out of 24-bit range", i, p.Coord[i])
		}
		if p.Sub[i] <= 0 || p.Sub[i] > MaxDimSize {
			return nil, fmt.Errorf("proto: sub-dimension %d = %d out of range", i, p.Sub[i])
		}
		binary.LittleEndian.PutUint32(out[4+8*i:], uint32(p.Coord[i]))
		binary.LittleEndian.PutUint32(out[8+8*i:], uint32(p.Sub[i]))
	}
	return out, nil
}

// UnmarshalCoordPayload decodes a coordinate page.
func UnmarshalCoordPayload(page []byte) (CoordPayload, error) {
	if len(page) < 4 {
		return CoordPayload{}, fmt.Errorf("proto: coordinate page too short")
	}
	rank := binary.LittleEndian.Uint32(page)
	if rank == 0 || rank > MaxDims {
		return CoordPayload{}, fmt.Errorf("proto: rank %d out of range", rank)
	}
	if len(page) < int(4+8*rank) {
		return CoordPayload{}, fmt.Errorf("proto: coordinate page truncated")
	}
	p := CoordPayload{Coord: make([]int64, rank), Sub: make([]int64, rank)}
	for i := 0; i < int(rank); i++ {
		p.Coord[i] = int64(binary.LittleEndian.Uint32(page[4+8*i:]))
		p.Sub[i] = int64(binary.LittleEndian.Uint32(page[8+8*i:]))
		if p.Coord[i] >= MaxDimSize {
			return CoordPayload{}, fmt.Errorf("proto: coordinate %d out of 24-bit range", i)
		}
		if p.Sub[i] == 0 || p.Sub[i] > MaxDimSize {
			return CoordPayload{}, fmt.Errorf("proto: sub-dimension %d invalid", i)
		}
	}
	return p, nil
}

// SpacePayload is the page named by an open_space command: the element size
// and dimensionality of the space or view.
//
// ElemSize 0 means "unspecified": legal only when opening a view of an
// existing space (the create flag clear), where the device checks a nonzero
// value against the space's element size and rejects mismatches. Creation
// always requires a concrete element size.
type SpacePayload struct {
	ElemSize int
	Dims     []int64
}

// Marshal encodes the payload: uint32 elemSize, uint32 rank, rank x uint32.
func (p SpacePayload) Marshal() ([]byte, error) {
	if p.ElemSize < 0 || p.ElemSize > 1<<16 {
		return nil, fmt.Errorf("proto: element size %d out of range", p.ElemSize)
	}
	if len(p.Dims) == 0 || len(p.Dims) > MaxDims {
		return nil, fmt.Errorf("proto: rank %d out of range [1,%d]", len(p.Dims), MaxDims)
	}
	out := make([]byte, PageSize)
	binary.LittleEndian.PutUint32(out, uint32(p.ElemSize))
	binary.LittleEndian.PutUint32(out[4:], uint32(len(p.Dims)))
	for i, d := range p.Dims {
		if d <= 0 || d > MaxDimSize {
			return nil, fmt.Errorf("proto: dimension %d = %d out of 24-bit range", i, d)
		}
		binary.LittleEndian.PutUint32(out[8+4*i:], uint32(d))
	}
	return out, nil
}

// UnmarshalSpacePayload decodes a space page.
func UnmarshalSpacePayload(page []byte) (SpacePayload, error) {
	if len(page) < 8 {
		return SpacePayload{}, fmt.Errorf("proto: space page too short")
	}
	elem := binary.LittleEndian.Uint32(page)
	rank := binary.LittleEndian.Uint32(page[4:])
	if elem > 1<<16 {
		return SpacePayload{}, fmt.Errorf("proto: element size %d out of range", elem)
	}
	if rank == 0 || rank > MaxDims {
		return SpacePayload{}, fmt.Errorf("proto: rank %d out of range", rank)
	}
	if len(page) < int(8+4*rank) {
		return SpacePayload{}, fmt.Errorf("proto: space page truncated")
	}
	p := SpacePayload{ElemSize: int(elem), Dims: make([]int64, rank)}
	for i := 0; i < int(rank); i++ {
		p.Dims[i] = int64(binary.LittleEndian.Uint32(page[8+4*i:]))
		if p.Dims[i] == 0 || p.Dims[i] > MaxDimSize {
			return SpacePayload{}, fmt.Errorf("proto: dimension %d out of range", i)
		}
	}
	return p, nil
}

// ReliabilityPayload is the page a get_reliability command returns: the
// device's injected-fault counters, the STL's recovery work, and the current
// capacity state after bad-block retirement.
type ReliabilityPayload struct {
	ProgramFaults  int64
	EraseFaults    int64
	WearoutFaults  int64
	ReadRetries    int64
	ProgramRetries int64
	RetiredBlocks  int64
	RetiredPages   int64
	MaxPages       int64
	EffectivePages int64
	UsedPages      int64
}

// reliabilityWords is the number of 64-bit counters in the payload.
const reliabilityWords = 10

// Marshal encodes the payload into a 4 KB page: reliabilityWords little-
// endian uint64 counters in struct order.
func (p ReliabilityPayload) Marshal() ([]byte, error) {
	for i, v := range p.words() {
		if v < 0 {
			return nil, fmt.Errorf("proto: reliability counter %d is negative (%d)", i, v)
		}
	}
	out := make([]byte, PageSize)
	for i, v := range p.words() {
		binary.LittleEndian.PutUint64(out[8*i:], uint64(v))
	}
	return out, nil
}

func (p *ReliabilityPayload) words() []int64 {
	return []int64{
		p.ProgramFaults, p.EraseFaults, p.WearoutFaults, p.ReadRetries,
		p.ProgramRetries, p.RetiredBlocks, p.RetiredPages,
		p.MaxPages, p.EffectivePages, p.UsedPages,
	}
}

// UnmarshalReliabilityPayload decodes a reliability page.
func UnmarshalReliabilityPayload(page []byte) (ReliabilityPayload, error) {
	if len(page) < 8*reliabilityWords {
		return ReliabilityPayload{}, fmt.Errorf("proto: reliability page too short")
	}
	var w [reliabilityWords]int64
	for i := range w {
		v := binary.LittleEndian.Uint64(page[8*i:])
		if v > 1<<62 {
			return ReliabilityPayload{}, fmt.Errorf("proto: reliability counter %d overflows (%d)", i, v)
		}
		w[i] = int64(v)
	}
	return ReliabilityPayload{
		ProgramFaults: w[0], EraseFaults: w[1], WearoutFaults: w[2], ReadRetries: w[3],
		ProgramRetries: w[4], RetiredBlocks: w[5], RetiredPages: w[6],
		MaxPages: w[7], EffectivePages: w[8], UsedPages: w[9],
	}, nil
}

// CacheStatsPayload is the page a get_cache_stats command returns: the
// building-block cache's demand hit/miss counters, prefetcher effectiveness,
// and current occupancy. All zero when the cache is disabled.
type CacheStatsPayload struct {
	Hits           int64
	Misses         int64
	HitBytes       int64
	PrefetchIssued int64
	PrefetchUsed   int64
	PrefetchWasted int64
	Evictions      int64
	Invalidations  int64
	ResidentBytes  int64
	CapacityBytes  int64
}

// cacheStatsWords is the number of 64-bit counters in the payload.
const cacheStatsWords = 10

// Marshal encodes the payload into a 4 KB page: cacheStatsWords little-
// endian uint64 counters in struct order.
func (p CacheStatsPayload) Marshal() ([]byte, error) {
	for i, v := range p.words() {
		if v < 0 {
			return nil, fmt.Errorf("proto: cache counter %d is negative (%d)", i, v)
		}
	}
	out := make([]byte, PageSize)
	for i, v := range p.words() {
		binary.LittleEndian.PutUint64(out[8*i:], uint64(v))
	}
	return out, nil
}

func (p *CacheStatsPayload) words() []int64 {
	return []int64{
		p.Hits, p.Misses, p.HitBytes,
		p.PrefetchIssued, p.PrefetchUsed, p.PrefetchWasted,
		p.Evictions, p.Invalidations, p.ResidentBytes, p.CapacityBytes,
	}
}

// UnmarshalCacheStatsPayload decodes a cache-statistics page.
func UnmarshalCacheStatsPayload(page []byte) (CacheStatsPayload, error) {
	if len(page) < 8*cacheStatsWords {
		return CacheStatsPayload{}, fmt.Errorf("proto: cache-stats page too short")
	}
	var w [cacheStatsWords]int64
	for i := range w {
		v := binary.LittleEndian.Uint64(page[8*i:])
		if v > 1<<62 {
			return CacheStatsPayload{}, fmt.Errorf("proto: cache counter %d overflows (%d)", i, v)
		}
		w[i] = int64(v)
	}
	return CacheStatsPayload{
		Hits: w[0], Misses: w[1], HitBytes: w[2],
		PrefetchIssued: w[3], PrefetchUsed: w[4], PrefetchWasted: w[5],
		Evictions: w[6], Invalidations: w[7], ResidentBytes: w[8], CapacityBytes: w[9],
	}, nil
}

// TenantStatsEntry is one tenant's record in a get_tenant_stats page.
type TenantStatsEntry struct {
	// Tenant is the tenant identity: the space ID, or a space-group ID with
	// TenantGroupBit set.
	Tenant uint64
	// WeightMilli is the scheduling weight in thousandths (weight 1.0 =
	// 1000), keeping the page integer-only.
	WeightMilli int64
	Ops         int64 // admitted partition requests
	Bytes       int64 // payload bytes of successful requests
	SimBusyNs   int64 // simulated device occupancy of those requests
	QueueWaitNs int64 // wall ns spent queued for a dispatch slot
	ThrottleNs  int64 // wall ns spent blocked on the token bucket
}

// TenantGroupBit marks a TenantStatsEntry.Tenant as a space-group tenant.
const TenantGroupBit = uint64(1) << 63

// tenantStatsEntryWords is the number of 64-bit words per entry (Tenant plus
// six counters).
const tenantStatsEntryWords = 7

// MaxTenantStatsEntries is how many tenant records fit in one 4 KB page
// after the 8-byte header.
const MaxTenantStatsEntries = (PageSize - 8) / (8 * tenantStatsEntryWords)

// TenantStatsPayload is the page a get_tenant_stats command returns. Total
// is the device's tenant count; Entries holds the first
// min(Total, MaxTenantStatsEntries) of them in ascending tenant order
// (spaces before groups).
type TenantStatsPayload struct {
	Total   int64
	Entries []TenantStatsEntry
}

// Marshal encodes the payload into a 4 KB page: a little-endian uint32 entry
// count and uint32 total, then tenantStatsEntryWords uint64 words per entry.
func (p TenantStatsPayload) Marshal() ([]byte, error) {
	if len(p.Entries) > MaxTenantStatsEntries {
		return nil, fmt.Errorf("proto: %d tenant entries exceed page capacity %d", len(p.Entries), MaxTenantStatsEntries)
	}
	if p.Total < int64(len(p.Entries)) {
		return nil, fmt.Errorf("proto: tenant total %d below entry count %d", p.Total, len(p.Entries))
	}
	out := make([]byte, PageSize)
	binary.LittleEndian.PutUint32(out, uint32(len(p.Entries)))
	binary.LittleEndian.PutUint32(out[4:], uint32(p.Total))
	for i, e := range p.Entries {
		for j, v := range [...]int64{e.WeightMilli, e.Ops, e.Bytes, e.SimBusyNs, e.QueueWaitNs, e.ThrottleNs} {
			if v < 0 {
				return nil, fmt.Errorf("proto: tenant entry %d counter %d is negative (%d)", i, j, v)
			}
		}
		base := 8 + i*8*tenantStatsEntryWords
		binary.LittleEndian.PutUint64(out[base:], e.Tenant)
		for j, v := range [...]int64{e.WeightMilli, e.Ops, e.Bytes, e.SimBusyNs, e.QueueWaitNs, e.ThrottleNs} {
			binary.LittleEndian.PutUint64(out[base+8+8*j:], uint64(v))
		}
	}
	return out, nil
}

// UnmarshalTenantStatsPayload decodes a tenant-statistics page.
func UnmarshalTenantStatsPayload(page []byte) (TenantStatsPayload, error) {
	if len(page) < 8 {
		return TenantStatsPayload{}, fmt.Errorf("proto: tenant-stats page too short")
	}
	count := int(binary.LittleEndian.Uint32(page))
	total := int64(binary.LittleEndian.Uint32(page[4:]))
	if count > MaxTenantStatsEntries {
		return TenantStatsPayload{}, fmt.Errorf("proto: tenant entry count %d exceeds page capacity %d", count, MaxTenantStatsEntries)
	}
	if total < int64(count) {
		return TenantStatsPayload{}, fmt.Errorf("proto: tenant total %d below entry count %d", total, count)
	}
	if len(page) < 8+count*8*tenantStatsEntryWords {
		return TenantStatsPayload{}, fmt.Errorf("proto: tenant-stats page truncated (%d entries, %d bytes)", count, len(page))
	}
	p := TenantStatsPayload{Total: total}
	for i := 0; i < count; i++ {
		base := 8 + i*8*tenantStatsEntryWords
		var e TenantStatsEntry
		e.Tenant = binary.LittleEndian.Uint64(page[base:])
		dst := [...]*int64{&e.WeightMilli, &e.Ops, &e.Bytes, &e.SimBusyNs, &e.QueueWaitNs, &e.ThrottleNs}
		for j, d := range dst {
			v := binary.LittleEndian.Uint64(page[base+8+8*j:])
			if v > 1<<62 {
				return TenantStatsPayload{}, fmt.Errorf("proto: tenant entry %d counter %d overflows (%d)", i, j, v)
			}
			*d = int64(v)
		}
		p.Entries = append(p.Entries, e)
	}
	return p, nil
}

// Completion is a device response: a status code plus two result words
// (open_space returns the 64-bit space identifier and the dynamic view ID).
type Completion struct {
	Status  Status
	Result0 uint64
	Result1 uint64
}

// Status is the completion status code.
type Status uint8

const (
	StatusOK Status = iota
	StatusInvalidField
	StatusUnknownSpace
	StatusUnknownView
	StatusCapacity
	StatusInternal
	// StatusMediaError: the flash medium failed beyond the STL's recovery
	// (program retries exhausted or no relocation target); appended after
	// StatusInternal so existing status values stay stable on the wire.
	StatusMediaError
	// StatusUnsupportedOp: a well-formed extended entry named an opcode this
	// device does not implement. Distinct from StatusInvalidField (a known
	// command with a malformed field) so hosts can tell "fix the request"
	// from "this device lacks the command". Appended to keep prior status
	// values stable on the wire.
	StatusUnsupportedOp
)

func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusInvalidField:
		return "invalid field"
	case StatusUnknownSpace:
		return "unknown space"
	case StatusUnknownView:
		return "unknown view"
	case StatusCapacity:
		return "capacity exceeded"
	case StatusMediaError:
		return "unrecoverable media error"
	case StatusUnsupportedOp:
		return "unsupported opcode"
	default:
		return "internal error"
	}
}
