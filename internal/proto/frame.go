package proto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Stream framing: how §5.3.1 submission entries travel over a byte stream
// (TCP or a unix socket) instead of a PCIe doorbell. Each frame is one
// length-prefixed record; within a connection, frames are independent
// requests matched to responses by a host-chosen sequence number, so a host
// may pipeline many commands and a device may complete them out of order
// (each open view is its own command stream, exactly like the in-process
// API).
//
// Request frame layout (all integers little-endian):
//
//	uint32  length of everything after this field
//	uint64  sequence number (echoed verbatim in the response)
//	64 B    submission entry (Command.Marshal)
//	uint32  payload length | payload bytes (the 4 KB coordinate/space page)
//	uint32  data length    | data bytes    (the nds_write payload)
//
// Response frame layout:
//
//	uint32  length of everything after this field
//	uint64  sequence number
//	uint8   completion status, 7 B reserved (zero)
//	uint64  completion result 0
//	uint64  completion result 1
//	uint32  data length | data bytes (the nds_read payload)
//
// A reader that sees a length prefix larger than its configured bound must
// drop the connection: the stream is either hostile or desynchronized, and
// there is no way to resynchronize a length-prefixed stream once a frame
// boundary is lost.

// DefaultMaxFrame bounds frame payloads for readers that do not choose
// their own limit: large enough for a 64 MiB partition write, small enough
// that a hostile length prefix cannot make a reader allocate arbitrarily.
const DefaultMaxFrame = 64 << 20

// ErrFrameTooLarge reports a frame whose length prefix exceeds the reader's
// limit. The connection carrying it cannot be resynchronized.
var ErrFrameTooLarge = errors.New("proto: frame exceeds size limit")

// reqFixedLen is the fixed portion of a request frame body: sequence,
// submission entry, and the two section length fields.
const reqFixedLen = 8 + CommandSize + 4 + 4

// respFixedLen is the fixed portion of a response frame body: sequence,
// status word, two result words, and the data length field.
const respFixedLen = 8 + 8 + 8 + 8 + 4

// Request is one framed command: the submission entry plus its out-of-band
// pages (the coordinate/space payload page and the write data).
type Request struct {
	Seq     uint64
	Cmd     [CommandSize]byte
	Payload []byte
	Data    []byte
}

// Response is one framed completion plus the read payload, if any.
type Response struct {
	Seq  uint64
	Cpl  Completion
	Data []byte
}

// WriteRequest frames req onto w. It performs one Write call per section,
// so callers stream through a bufio.Writer and flush at send points.
func WriteRequest(w io.Writer, req Request) error {
	if len(req.Payload) > DefaultMaxFrame || len(req.Data) > DefaultMaxFrame {
		return ErrFrameTooLarge
	}
	var hdr [4 + reqFixedLen]byte
	total := reqFixedLen + len(req.Payload) + len(req.Data)
	binary.LittleEndian.PutUint32(hdr[0:], uint32(total))
	binary.LittleEndian.PutUint64(hdr[4:], req.Seq)
	copy(hdr[12:], req.Cmd[:])
	binary.LittleEndian.PutUint32(hdr[12+CommandSize:], uint32(len(req.Payload)))
	if _, err := w.Write(hdr[:len(hdr)-4]); err != nil {
		return err
	}
	if _, err := w.Write(req.Payload); err != nil {
		return err
	}
	var dlen [4]byte
	binary.LittleEndian.PutUint32(dlen[:], uint32(len(req.Data)))
	if _, err := w.Write(dlen[:]); err != nil {
		return err
	}
	_, err := w.Write(req.Data)
	return err
}

// ReadRequest parses one request frame from r. maxFrame bounds the length
// prefix (0 selects DefaultMaxFrame). A clean EOF before the first byte
// returns io.EOF; EOF inside a frame returns io.ErrUnexpectedEOF.
func ReadRequest(r io.Reader, maxFrame uint32) (Request, error) {
	body, err := readFrame(r, maxFrame)
	if err != nil {
		return Request{}, err
	}
	if len(body) < reqFixedLen {
		return Request{}, fmt.Errorf("proto: request frame too short (%d B)", len(body))
	}
	var req Request
	req.Seq = binary.LittleEndian.Uint64(body)
	copy(req.Cmd[:], body[8:])
	pos := 8 + CommandSize
	req.Payload, pos, err = readSection(body, pos, "payload")
	if err != nil {
		return Request{}, err
	}
	req.Data, pos, err = readSection(body, pos, "data")
	if err != nil {
		return Request{}, err
	}
	if pos != len(body) {
		return Request{}, fmt.Errorf("proto: request frame has %d trailing bytes", len(body)-pos)
	}
	return req, nil
}

// ResponseHeaderLen is the encoded size of a response frame before its data
// section: the length prefix plus the fixed body.
const ResponseHeaderLen = 4 + respFixedLen

// PutResponseHeader encodes the header of a response frame carrying dlen
// payload bytes into hdr, which must be at least ResponseHeaderLen bytes.
// Writers that gather a response's payload directly into a frame buffer (the
// server's zero-copy read path) use this instead of WriteResponse; the
// resulting frame — header followed by exactly dlen data bytes — is written
// to the stream verbatim and is indistinguishable from WriteResponse output.
func PutResponseHeader(hdr []byte, seq uint64, cpl Completion, dlen int) {
	binary.LittleEndian.PutUint32(hdr[0:], uint32(respFixedLen+dlen))
	binary.LittleEndian.PutUint64(hdr[4:], seq)
	hdr[12] = byte(cpl.Status)
	clear(hdr[13:20]) // reserved: pooled buffers may hold stale bytes
	binary.LittleEndian.PutUint64(hdr[20:], cpl.Result0)
	binary.LittleEndian.PutUint64(hdr[28:], cpl.Result1)
	binary.LittleEndian.PutUint32(hdr[36:], uint32(dlen))
}

// WriteResponse frames resp onto w.
func WriteResponse(w io.Writer, resp Response) error {
	if len(resp.Data) > DefaultMaxFrame {
		return ErrFrameTooLarge
	}
	var hdr [ResponseHeaderLen]byte
	PutResponseHeader(hdr[:], resp.Seq, resp.Cpl, len(resp.Data))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(resp.Data)
	return err
}

// ReadResponse parses one response frame from r, with the same EOF and
// maxFrame contract as ReadRequest.
func ReadResponse(r io.Reader, maxFrame uint32) (Response, error) {
	body, err := readFrame(r, maxFrame)
	if err != nil {
		return Response{}, err
	}
	if len(body) < respFixedLen {
		return Response{}, fmt.Errorf("proto: response frame too short (%d B)", len(body))
	}
	var resp Response
	resp.Seq = binary.LittleEndian.Uint64(body)
	resp.Cpl = Completion{
		Status:  Status(body[8]),
		Result0: binary.LittleEndian.Uint64(body[16:]),
		Result1: binary.LittleEndian.Uint64(body[24:]),
	}
	var pos int
	resp.Data, pos, err = readSection(body, respFixedLen-4, "data")
	if err != nil {
		return Response{}, err
	}
	if pos != len(body) {
		return Response{}, fmt.Errorf("proto: response frame has %d trailing bytes", len(body)-pos)
	}
	return resp, nil
}

// readFrame reads a length prefix and the frame body it announces.
func readFrame(r io.Reader, maxFrame uint32) ([]byte, error) {
	if maxFrame == 0 {
		maxFrame = DefaultMaxFrame
	}
	var lenb [4]byte
	if _, err := io.ReadFull(r, lenb[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err // io.EOF on a clean frame boundary
	}
	n := binary.LittleEndian.Uint32(lenb[:])
	if n > maxFrame {
		return nil, fmt.Errorf("%w (%d > %d B)", ErrFrameTooLarge, n, maxFrame)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return body, nil
}

// readSection decodes one length-prefixed byte section of a frame body,
// returning the section (nil when empty, aliasing body otherwise) and the
// position after it.
func readSection(body []byte, pos int, name string) ([]byte, int, error) {
	if pos+4 > len(body) {
		return nil, 0, fmt.Errorf("proto: frame truncated before %s length", name)
	}
	n := int(binary.LittleEndian.Uint32(body[pos:]))
	pos += 4
	if n < 0 || pos+n > len(body) {
		return nil, 0, fmt.Errorf("proto: frame %s section truncated (%d B announced)", name, n)
	}
	if n == 0 {
		return nil, pos, nil
	}
	return body[pos : pos+n : pos+n], pos + n, nil
}
