package proto

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestCommandRoundTrip(t *testing.T) {
	cases := []Command{
		NewRead(7, 0x1000),
		NewWrite(9, 0x2000),
		NewOpenSpace(3, 0x3000, true),
		NewOpenSpace(3, 0x3000, false),
		NewCloseSpace(12),
		NewDeleteSpace(4),
	}
	for _, c := range cases {
		got, err := Unmarshal(c.Marshal())
		if err != nil {
			t.Fatalf("%v: %v", c.Opcode(), err)
		}
		if got != c {
			t.Fatalf("%v: round-trip mismatch", c.Opcode())
		}
	}
	if NewOpenSpace(1, 0, true).CreateFlag() != true {
		t.Fatal("create flag lost")
	}
	if NewOpenSpace(1, 0, false).CreateFlag() != false {
		t.Fatal("create flag invented")
	}
	if NewRead(7, 0x1000).Target() != 7 {
		t.Fatal("target lost")
	}
}

func TestConventionalCommandsPassThrough(t *testing.T) {
	// A conventional NVMe entry (reserved bit clear) is not extended and is
	// rejected by Unmarshal — the device routes it to the 1-D path (§5.3.1).
	var raw [CommandSize]byte
	raw[0] = 0x02 // conventional read opcode
	if IsExtended(raw) {
		t.Fatal("conventional entry classified as extended")
	}
	if _, err := Unmarshal(raw); err == nil {
		t.Fatal("conventional entry unmarshalled as extended")
	}
	// Extended entries are recognized.
	ext := NewRead(1, 0).Marshal()
	if !IsExtended(ext) {
		t.Fatal("extended entry not recognized")
	}
}

func TestUnknownOpcodeRejected(t *testing.T) {
	c := newCommand(Opcode(0x55), 0, 0, false)
	_, err := Unmarshal(c.Marshal())
	if err == nil {
		t.Fatal("unknown opcode accepted")
	}
	// The sentinel distinguishes "device lacks this command" (an extended
	// entry with an unimplemented opcode) from a malformed entry, so the
	// dispatcher can answer StatusUnsupportedOp instead of StatusInvalidField.
	if !errors.Is(err, ErrUnknownOpcode) {
		t.Fatalf("unknown opcode error = %v, want ErrUnknownOpcode", err)
	}
	var conventional [CommandSize]byte
	if _, err := Unmarshal(conventional); errors.Is(err, ErrUnknownOpcode) {
		t.Fatal("non-extended entry misreported as an unsupported opcode")
	}
}

func TestCoordPayloadRoundTrip(t *testing.T) {
	f := func(rank uint8, c0, s0 uint32) bool {
		r := 1 + int(rank)%MaxDims
		p := CoordPayload{Coord: make([]int64, r), Sub: make([]int64, r)}
		for i := range p.Coord {
			p.Coord[i] = int64(c0+uint32(i)) % MaxDimSize
			p.Sub[i] = 1 + int64(s0+uint32(i))%(MaxDimSize-1)
		}
		page, err := p.Marshal()
		if err != nil {
			return false
		}
		if len(page) != PageSize {
			return false
		}
		got, err := UnmarshalCoordPayload(page)
		if err != nil {
			return false
		}
		for i := range p.Coord {
			if got.Coord[i] != p.Coord[i] || got.Sub[i] != p.Sub[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCoordPayloadValidation(t *testing.T) {
	if _, err := (CoordPayload{Coord: []int64{1}, Sub: []int64{1, 2}}).Marshal(); err == nil {
		t.Error("rank mismatch accepted")
	}
	if _, err := (CoordPayload{}).Marshal(); err == nil {
		t.Error("empty payload accepted")
	}
	big := make([]int64, MaxDims+1)
	for i := range big {
		big[i] = 1
	}
	if _, err := (CoordPayload{Coord: big, Sub: big}).Marshal(); err == nil {
		t.Error("33 dimensions accepted (limit is 32)")
	}
	if _, err := (CoordPayload{Coord: []int64{MaxDimSize}, Sub: []int64{1}}).Marshal(); err == nil {
		t.Error("25-bit coordinate accepted")
	}
	if _, err := (CoordPayload{Coord: []int64{0}, Sub: []int64{0}}).Marshal(); err == nil {
		t.Error("zero sub-dimension accepted")
	}
	if _, err := UnmarshalCoordPayload([]byte{1}); err == nil {
		t.Error("short page accepted")
	}
	if _, err := UnmarshalCoordPayload(make([]byte, 4)); err == nil {
		t.Error("zero-rank page accepted")
	}
}

func TestSpacePayloadRoundTrip(t *testing.T) {
	p := SpacePayload{ElemSize: 8, Dims: []int64{32768, 32768}}
	page, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalSpacePayload(page)
	if err != nil {
		t.Fatal(err)
	}
	if got.ElemSize != 8 || len(got.Dims) != 2 || got.Dims[0] != 32768 {
		t.Fatalf("round-trip = %+v", got)
	}
	// Zero element size is "unspecified": legal on the wire (views of an
	// existing space may not care), rejected only at creation.
	zero, err := (SpacePayload{ElemSize: 0, Dims: []int64{1}}).Marshal()
	if err != nil {
		t.Errorf("zero element size rejected: %v", err)
	} else if got, err := UnmarshalSpacePayload(zero); err != nil || got.ElemSize != 0 {
		t.Errorf("zero element size round-trip = %+v, %v", got, err)
	}
	if _, err := (SpacePayload{ElemSize: -1, Dims: []int64{1}}).Marshal(); err == nil {
		t.Error("negative element size accepted")
	}
	if _, err := (SpacePayload{ElemSize: 4, Dims: []int64{1 << 25}}).Marshal(); err == nil {
		t.Error("oversized dimension accepted")
	}
	if _, err := UnmarshalSpacePayload(nil); err == nil {
		t.Error("nil page accepted")
	}
}

func TestStatusStrings(t *testing.T) {
	for s := StatusOK; s <= StatusUnsupportedOp; s++ {
		if s.String() == "" {
			t.Fatalf("status %d has no string", s)
		}
	}
	for _, op := range []Opcode{OpRead, OpWrite, OpOpenSpace, OpCloseSpace, OpDeleteSpace, Opcode(0)} {
		if op.String() == "" {
			t.Fatalf("opcode %d has no string", op)
		}
	}
}
