package proto

import (
	"encoding/binary"
	"reflect"
	"testing"
)

func TestTenantStatsCommandRoundTrip(t *testing.T) {
	c := NewTenantStats(0x6000)
	got, err := Unmarshal(c.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got != c {
		t.Fatal("get_tenant_stats round-trip mismatch")
	}
	if got.Opcode() != OpTenantStats {
		t.Fatalf("opcode = %v", got.Opcode())
	}
	if got.Opcode().String() != "get_tenant_stats" {
		t.Fatalf("opcode string = %q", got.Opcode().String())
	}
	if got.PayloadAddr() != 0x6000 {
		t.Fatalf("payload addr = %#x", got.PayloadAddr())
	}
}

func TestTenantStatsPayloadRoundTrip(t *testing.T) {
	p := TenantStatsPayload{
		Total: 3,
		Entries: []TenantStatsEntry{
			{Tenant: 1, WeightMilli: 1000, Ops: 10, Bytes: 4096, SimBusyNs: 777, QueueWaitNs: 5, ThrottleNs: 0},
			{Tenant: 2, WeightMilli: 2000, Ops: 20, Bytes: 8192, SimBusyNs: 1554, QueueWaitNs: 0, ThrottleNs: 31},
			{Tenant: TenantGroupBit | 9, WeightMilli: 500, Ops: 7, Bytes: 128, SimBusyNs: 3, QueueWaitNs: 1, ThrottleNs: 2},
		},
	}
	page, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(page) != PageSize {
		t.Fatalf("page is %d bytes", len(page))
	}
	got, err := UnmarshalTenantStatsPayload(page)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Fatalf("round trip: %+v != %+v", got, p)
	}
	if got.Entries[2].Tenant&TenantGroupBit == 0 {
		t.Fatal("group bit lost")
	}
}

func TestTenantStatsPayloadEmpty(t *testing.T) {
	page, err := TenantStatsPayload{}.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalTenantStatsPayload(page)
	if err != nil {
		t.Fatal(err)
	}
	if got.Total != 0 || len(got.Entries) != 0 {
		t.Fatalf("empty payload round trip: %+v", got)
	}
}

func TestTenantStatsPayloadValidation(t *testing.T) {
	over := TenantStatsPayload{Total: int64(MaxTenantStatsEntries + 1), Entries: make([]TenantStatsEntry, MaxTenantStatsEntries+1)}
	if _, err := over.Marshal(); err == nil {
		t.Fatal("oversized entry list marshalled")
	}
	neg := TenantStatsPayload{Total: 1, Entries: []TenantStatsEntry{{Ops: -1}}}
	if _, err := neg.Marshal(); err == nil {
		t.Fatal("negative counter marshalled")
	}
	bad := TenantStatsPayload{Total: 0, Entries: []TenantStatsEntry{{Tenant: 1}}}
	if _, err := bad.Marshal(); err == nil {
		t.Fatal("total below entry count marshalled")
	}
	if _, err := UnmarshalTenantStatsPayload(make([]byte, 4)); err == nil {
		t.Fatal("short page unmarshalled")
	}
	// A count claiming more entries than the page holds must be rejected.
	page := make([]byte, 16)
	binary.LittleEndian.PutUint32(page, 2)
	binary.LittleEndian.PutUint32(page[4:], 2)
	if _, err := UnmarshalTenantStatsPayload(page); err == nil {
		t.Fatal("truncated entry list unmarshalled")
	}
	// An overflowing counter must be rejected.
	page = make([]byte, PageSize)
	binary.LittleEndian.PutUint32(page, 1)
	binary.LittleEndian.PutUint32(page[4:], 1)
	binary.LittleEndian.PutUint64(page[16:], 1<<63) // WeightMilli word
	if _, err := UnmarshalTenantStatsPayload(page); err == nil {
		t.Fatal("overflowing counter unmarshalled")
	}
	// Truncation is legal the other way: Total may exceed the entry count.
	ok := TenantStatsPayload{Total: 100, Entries: []TenantStatsEntry{{Tenant: 1, WeightMilli: 1000}}}
	pg, err := ok.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalTenantStatsPayload(pg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Total != 100 || len(got.Entries) != 1 {
		t.Fatalf("truncated payload round trip: %+v", got)
	}
}
