package proto

import "testing"

func TestCacheStatsCommandRoundTrip(t *testing.T) {
	c := NewCacheStats(0x5000)
	got, err := Unmarshal(c.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got != c {
		t.Fatal("get_cache_stats round-trip mismatch")
	}
	if got.Opcode() != OpCacheStats {
		t.Fatalf("opcode = %v", got.Opcode())
	}
	if got.Opcode().String() != "get_cache_stats" {
		t.Fatalf("opcode string = %q", got.Opcode().String())
	}
	if got.PayloadAddr() != 0x5000 {
		t.Fatalf("payload addr = %#x", got.PayloadAddr())
	}
}

func TestCacheStatsPayloadRoundTrip(t *testing.T) {
	p := CacheStatsPayload{
		Hits: 1, Misses: 2, HitBytes: 3,
		PrefetchIssued: 4, PrefetchUsed: 5, PrefetchWasted: 6,
		Evictions: 7, Invalidations: 8, ResidentBytes: 9, CapacityBytes: 10,
	}
	page, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(page) != PageSize {
		t.Fatalf("page is %d bytes", len(page))
	}
	got, err := UnmarshalCacheStatsPayload(page)
	if err != nil {
		t.Fatal(err)
	}
	if got != p {
		t.Fatalf("round trip: %+v != %+v", got, p)
	}
}

func TestCacheStatsPayloadValidation(t *testing.T) {
	if _, err := (CacheStatsPayload{Hits: -1}).Marshal(); err == nil {
		t.Fatal("negative counter marshalled")
	}
	if _, err := UnmarshalCacheStatsPayload(make([]byte, 8)); err == nil {
		t.Fatal("short page unmarshalled")
	}
	page := make([]byte, PageSize)
	for i := range page[:8] {
		page[i] = 0xFF
	}
	if _, err := UnmarshalCacheStatsPayload(page); err == nil {
		t.Fatal("overflowing counter unmarshalled")
	}
}
