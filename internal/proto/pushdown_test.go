package proto

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"
)

func TestPushdownCommandRoundTrip(t *testing.T) {
	cases := []struct {
		cmd  Command
		op   Opcode
		name string
	}{
		{NewScan(7, 0x9000), OpScan, "pushdown_scan"},
		{NewReduce(9, 0xA000), OpReduce, "pushdown_reduce"},
	}
	for _, tc := range cases {
		got, err := Unmarshal(tc.cmd.Marshal())
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.cmd {
			t.Fatalf("%s round-trip mismatch", tc.name)
		}
		if got.Opcode() != tc.op {
			t.Fatalf("opcode = %v", got.Opcode())
		}
		if got.Opcode().String() != tc.name {
			t.Fatalf("opcode string = %q", got.Opcode().String())
		}
	}
}

func TestScanPayloadRoundTrip(t *testing.T) {
	p := ScanPayload{
		Coord:  []int64{1, 2, 3},
		Sub:    []int64{4, 5, 6},
		Lo:     100,
		Hi:     ^uint64(0),
		Cursor: 4096,
		Max:    17,
	}
	page, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(page) != PageSize {
		t.Fatalf("page is %d bytes", len(page))
	}
	got, err := UnmarshalScanPayload(page)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Fatalf("round trip: %+v != %+v", got, p)
	}
}

func TestScanPayloadValidation(t *testing.T) {
	base := ScanPayload{Coord: []int64{0}, Sub: []int64{1}, Lo: 5, Hi: 1}
	if _, err := base.Marshal(); err == nil {
		t.Fatal("inverted range marshalled")
	}
	neg := ScanPayload{Coord: []int64{0}, Sub: []int64{1}, Cursor: -1}
	if _, err := neg.Marshal(); err == nil {
		t.Fatal("negative cursor marshalled")
	}
	// An on-the-wire cursor past 2^62 must be rejected.
	good, err := ScanPayload{Coord: []int64{0}, Sub: []int64{1}}.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint64(good[4+8+16:], 1<<63) // cursor word for rank 1
	if _, err := UnmarshalScanPayload(good); err == nil {
		t.Fatal("overflowing cursor unmarshalled")
	}
	if _, err := UnmarshalScanPayload(make([]byte, 8)); err == nil {
		t.Fatal("short page unmarshalled")
	}
}

func TestScanResultPayloadRoundTrip(t *testing.T) {
	p := ScanResultPayload{
		Total:      1000,
		NextCursor: 555,
		Matches: []ScanMatch{
			{Index: 0, Value: 1},
			{Index: 42, Value: ^uint64(0)},
			{Index: 554, Value: 9},
		},
	}
	page, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalScanResultPayload(page)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Fatalf("round trip: %+v != %+v", got, p)
	}

	// A complete scan encodes NextCursor -1 as all-ones on the wire.
	done := ScanResultPayload{Total: 3, NextCursor: -1, Matches: p.Matches}
	page, err = done.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if binary.LittleEndian.Uint64(page[16:]) != ScanCursorNone {
		t.Fatal("complete scan did not encode cursor-none")
	}
	got, err = UnmarshalScanResultPayload(page)
	if err != nil {
		t.Fatal(err)
	}
	if got.NextCursor != -1 {
		t.Fatalf("next cursor = %d", got.NextCursor)
	}
}

func TestScanResultPayloadFullPage(t *testing.T) {
	// Exactly MaxScanMatches entries fill the page; one more must fail.
	full := ScanResultPayload{Total: int64(MaxScanMatches) + 50, NextCursor: 7}
	for i := 0; i < MaxScanMatches; i++ {
		full.Matches = append(full.Matches, ScanMatch{Index: int64(i), Value: uint64(i * 3)})
	}
	page, err := full.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalScanResultPayload(page)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, full) {
		t.Fatal("full page round trip mismatch")
	}
	over := full
	over.Matches = append(over.Matches, ScanMatch{Index: 1 << 20})
	over.Total++
	if _, err := over.Marshal(); err == nil {
		t.Fatal("oversized match list marshalled")
	}
}

func TestScanResultPayloadValidation(t *testing.T) {
	bad := ScanResultPayload{Total: 0, Matches: []ScanMatch{{Index: 1}}}
	if _, err := bad.Marshal(); err == nil {
		t.Fatal("total below match count marshalled")
	}
	// A count claiming more matches than the page holds must be rejected.
	page := make([]byte, scanHeaderLen)
	binary.LittleEndian.PutUint32(page, 1)
	binary.LittleEndian.PutUint64(page[8:], 1)
	if _, err := UnmarshalScanResultPayload(page); err == nil {
		t.Fatal("truncated match list unmarshalled")
	}
}

func TestReducePayloadRoundTrip(t *testing.T) {
	cases := []ReducePayload{
		{Coord: []int64{0, 1}, Sub: []int64{2, 3}, Op: ReduceOpSum},
		{Coord: []int64{0}, Sub: []int64{1}, Op: ReduceOpCount, HasPred: true, Lo: 10, Hi: 20},
		{Coord: []int64{0}, Sub: []int64{1}, Op: ReduceOpMin},
		{Coord: []int64{0}, Sub: []int64{1}, Op: ReduceOpMax, HasPred: true, Lo: 0, Hi: 0},
		{Coord: []int64{0}, Sub: []int64{1}, Op: ReduceOpTopK, K: 10},
	}
	for i, p := range cases {
		page, err := p.Marshal()
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		got, err := UnmarshalReducePayload(page)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, p) {
			t.Fatalf("case %d round trip: %+v != %+v", i, got, p)
		}
	}
}

func TestReducePayloadValidation(t *testing.T) {
	bad := []ReducePayload{
		{Coord: []int64{0}, Sub: []int64{1}, Op: 0},
		{Coord: []int64{0}, Sub: []int64{1}, Op: 99},
		{Coord: []int64{0}, Sub: []int64{1}, Op: ReduceOpTopK, K: 0},
		{Coord: []int64{0}, Sub: []int64{1}, Op: ReduceOpTopK, K: uint32(MaxReduceTopK) + 1},
		{Coord: []int64{0}, Sub: []int64{1}, Op: ReduceOpSum, K: 5},
		{Coord: []int64{0}, Sub: []int64{1}, Op: ReduceOpMin, HasPred: true, Lo: 9, Hi: 1},
	}
	for i, p := range bad {
		if _, err := p.Marshal(); err == nil {
			t.Fatalf("case %d marshalled: %+v", i, p)
		}
	}
}

func TestReduceResultPayloadRoundTrip(t *testing.T) {
	p := ReduceResultPayload{
		Value: 12345,
		Index: 678,
		Count: 90,
		TopK: []ScanMatch{
			{Index: 678, Value: 12345},
			{Index: 9, Value: 12000},
		},
	}
	page, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalReduceResultPayload(page)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Fatalf("round trip: %+v != %+v", got, p)
	}

	// Index -1 (no element attained the result) survives the trip.
	none := ReduceResultPayload{Value: 0, Index: -1, Count: 0}
	page, err = none.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err = UnmarshalReduceResultPayload(page)
	if err != nil {
		t.Fatal(err)
	}
	if got.Index != -1 || got.Count != 0 || len(got.TopK) != 0 {
		t.Fatalf("empty result round trip: %+v", got)
	}
}

func TestReduceResultPayloadValidation(t *testing.T) {
	over := ReduceResultPayload{TopK: make([]ScanMatch, MaxReduceTopK+1)}
	if _, err := over.Marshal(); err == nil {
		t.Fatal("oversized top-k marshalled")
	}
	neg := ReduceResultPayload{Count: -1}
	if _, err := neg.Marshal(); err == nil {
		t.Fatal("negative count marshalled")
	}
	page := make([]byte, reduceHeaderLen)
	binary.LittleEndian.PutUint32(page[24:], 1)
	if _, err := UnmarshalReduceResultPayload(page); err == nil {
		t.Fatal("truncated top-k list unmarshalled")
	}
}

// FuzzUnmarshalScanPayload: arbitrary bytes must never panic, and any page
// that parses must survive a marshal round-trip.
func FuzzUnmarshalScanPayload(f *testing.F) {
	seed, _ := ScanPayload{Coord: []int64{1}, Sub: []int64{2}, Lo: 3, Hi: 9, Max: 4}.Marshal()
	f.Add(seed)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x01}, PageSize))
	f.Fuzz(func(t *testing.T, page []byte) {
		p, err := UnmarshalScanPayload(page)
		if err != nil {
			return
		}
		out, err := p.Marshal()
		if err != nil {
			t.Fatalf("parsed payload failed to re-marshal: %v", err)
		}
		q, err := UnmarshalScanPayload(out)
		if err != nil {
			t.Fatalf("re-marshalled payload failed to parse: %v", err)
		}
		if !reflect.DeepEqual(p, q) {
			t.Fatal("payload not stable under marshal round-trip")
		}
	})
}

// FuzzUnmarshalScanResultPayload: same contract for result pages.
func FuzzUnmarshalScanResultPayload(f *testing.F) {
	seed, _ := ScanResultPayload{Total: 2, NextCursor: -1, Matches: []ScanMatch{{Index: 1, Value: 2}}}.Marshal()
	f.Add(seed)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, PageSize))
	f.Fuzz(func(t *testing.T, page []byte) {
		p, err := UnmarshalScanResultPayload(page)
		if err != nil {
			return
		}
		out, err := p.Marshal()
		if err != nil {
			t.Fatalf("parsed payload failed to re-marshal: %v", err)
		}
		q, err := UnmarshalScanResultPayload(out)
		if err != nil {
			t.Fatalf("re-marshalled payload failed to parse: %v", err)
		}
		if !reflect.DeepEqual(p, q) {
			t.Fatal("payload not stable under marshal round-trip")
		}
	})
}

// FuzzUnmarshalReducePayload: same contract for reduce requests.
func FuzzUnmarshalReducePayload(f *testing.F) {
	seed, _ := ReducePayload{Coord: []int64{1}, Sub: []int64{2}, Op: ReduceOpTopK, K: 3}.Marshal()
	f.Add(seed)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x02}, PageSize))
	f.Fuzz(func(t *testing.T, page []byte) {
		p, err := UnmarshalReducePayload(page)
		if err != nil {
			return
		}
		out, err := p.Marshal()
		if err != nil {
			t.Fatalf("parsed payload failed to re-marshal: %v", err)
		}
		q, err := UnmarshalReducePayload(out)
		if err != nil {
			t.Fatalf("re-marshalled payload failed to parse: %v", err)
		}
		if !reflect.DeepEqual(p, q) {
			t.Fatal("payload not stable under marshal round-trip")
		}
	})
}

// FuzzUnmarshalReduceResultPayload: same contract for reduce results.
func FuzzUnmarshalReduceResultPayload(f *testing.F) {
	seed, _ := ReduceResultPayload{Value: 7, Index: 1, Count: 2, TopK: []ScanMatch{{Index: 1, Value: 7}}}.Marshal()
	f.Add(seed)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x03}, PageSize))
	f.Fuzz(func(t *testing.T, page []byte) {
		p, err := UnmarshalReduceResultPayload(page)
		if err != nil {
			return
		}
		out, err := p.Marshal()
		if err != nil {
			t.Fatalf("parsed payload failed to re-marshal: %v", err)
		}
		q, err := UnmarshalReduceResultPayload(out)
		if err != nil {
			t.Fatalf("re-marshalled payload failed to parse: %v", err)
		}
		if !reflect.DeepEqual(p, q) {
			t.Fatal("payload not stable under marshal round-trip")
		}
	})
}
