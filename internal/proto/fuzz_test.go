package proto

import (
	"bytes"
	"testing"
)

// FuzzUnmarshalCoordPayload: arbitrary bytes must never panic, and any page
// that parses must re-marshal to an equivalent payload.
func FuzzUnmarshalCoordPayload(f *testing.F) {
	seed, _ := CoordPayload{Coord: []int64{1, 2}, Sub: []int64{3, 4}}.Marshal()
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Add(bytes.Repeat([]byte{0x01}, PageSize))
	f.Fuzz(func(t *testing.T, page []byte) {
		p, err := UnmarshalCoordPayload(page)
		if err != nil {
			return
		}
		out, err := p.Marshal()
		if err != nil {
			t.Fatalf("parsed payload failed to re-marshal: %v", err)
		}
		q, err := UnmarshalCoordPayload(out)
		if err != nil {
			t.Fatalf("re-marshalled payload failed to parse: %v", err)
		}
		for i := range p.Coord {
			if p.Coord[i] != q.Coord[i] || p.Sub[i] != q.Sub[i] {
				t.Fatal("payload not stable under marshal round-trip")
			}
		}
	})
}

// FuzzUnmarshalSpacePayload: same contract for space pages.
func FuzzUnmarshalSpacePayload(f *testing.F) {
	seed, _ := SpacePayload{ElemSize: 8, Dims: []int64{16, 16}}.Marshal()
	f.Add(seed)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xAA}, 64))
	f.Fuzz(func(t *testing.T, page []byte) {
		p, err := UnmarshalSpacePayload(page)
		if err != nil {
			return
		}
		out, err := p.Marshal()
		if err != nil {
			t.Fatalf("parsed payload failed to re-marshal: %v", err)
		}
		q, err := UnmarshalSpacePayload(out)
		if err != nil {
			t.Fatalf("re-marshalled payload failed to parse: %v", err)
		}
		if q.ElemSize != p.ElemSize || len(q.Dims) != len(p.Dims) {
			t.Fatal("payload not stable under marshal round-trip")
		}
	})
}

// FuzzUnmarshalCommand: arbitrary 64-byte entries must never panic and the
// extended-bit contract must hold.
func FuzzUnmarshalCommand(f *testing.F) {
	readEntry := NewRead(1, 2).Marshal()
	f.Add(readEntry[:], true)
	var conventional [CommandSize]byte
	conventional[0] = 0x02
	f.Add(conventional[:], false)
	f.Fuzz(func(t *testing.T, raw []byte, _ bool) {
		var entry [CommandSize]byte
		copy(entry[:], raw)
		cmd, err := Unmarshal(entry)
		if err != nil {
			return
		}
		if !IsExtended(cmd.Marshal()) {
			t.Fatal("unmarshalled command lost the extended bit")
		}
	})
}
