package proto

import (
	"encoding/binary"
	"fmt"
)

// Pushdown wire format (opcodes 0xCE pushdown_scan, 0xCF pushdown_reduce).
//
// Both request payloads extend the read/write coordinate page: the standard
// CoordPayload prefix (uint32 rank, rank x (uint32 coord, uint32 sub))
// followed by operator parameters at offset 4+8*rank. Both result payloads
// are bounded to one 4 KB page, truncating to fit like get_tenant_stats: the
// true totals travel in the page header and the completion's result words
// (Result0 = true total / primary scalar), and a truncated scan is resumable
// by passing the returned cursor as the next request's Cursor.

// Reduce operator wire codes. These mirror stl.ReduceKind's values and must
// stay stable on the wire.
const (
	ReduceOpSum uint8 = 1 + iota
	ReduceOpCount
	ReduceOpMin
	ReduceOpMax
	ReduceOpTopK
)

// ScanCursorNone is the wire encoding of "scan complete, no cursor" in
// Completion.Result1 and ScanResultPayload.NextCursor.
const ScanCursorNone = ^uint64(0)

// scanParamLen is the byte length of the scan parameters that follow the
// coordinate prefix: lo, hi, cursor (uint64 each) and max (uint32).
const scanParamLen = 8 + 8 + 8 + 4

// reduceParamLen is the byte length of the reduce parameters that follow the
// coordinate prefix: op, hasPred, 2 pad bytes, k (uint32), lo, hi (uint64).
const reduceParamLen = 1 + 1 + 2 + 4 + 8 + 8

// ScanPayload is the request page of a pushdown_scan command.
type ScanPayload struct {
	Coord, Sub []int64
	// Lo, Hi is the inclusive unsigned value range to match.
	Lo, Hi uint64
	// Cursor is the first element index eligible to be reported (0 starts a
	// scan; a truncated response's NextCursor resumes it).
	Cursor int64
	// Max bounds the reported matches; 0 fills the result page
	// (MaxScanMatches). Values above MaxScanMatches are clamped by the
	// device — the page cannot carry more.
	Max uint32
}

// Marshal encodes the payload into a 4 KB page: the CoordPayload prefix,
// then lo, hi, cursor, max.
func (p ScanPayload) Marshal() ([]byte, error) {
	page, err := CoordPayload{Coord: p.Coord, Sub: p.Sub}.Marshal()
	if err != nil {
		return nil, err
	}
	if p.Cursor < 0 || p.Cursor > 1<<62 {
		return nil, fmt.Errorf("proto: scan cursor %d out of range", p.Cursor)
	}
	if p.Lo > p.Hi {
		return nil, fmt.Errorf("proto: scan range [%d,%d] inverted", p.Lo, p.Hi)
	}
	off := 4 + 8*len(p.Coord)
	binary.LittleEndian.PutUint64(page[off:], p.Lo)
	binary.LittleEndian.PutUint64(page[off+8:], p.Hi)
	binary.LittleEndian.PutUint64(page[off+16:], uint64(p.Cursor))
	binary.LittleEndian.PutUint32(page[off+24:], p.Max)
	return page, nil
}

// UnmarshalScanPayload decodes a pushdown_scan page.
func UnmarshalScanPayload(page []byte) (ScanPayload, error) {
	cp, err := UnmarshalCoordPayload(page)
	if err != nil {
		return ScanPayload{}, err
	}
	off := 4 + 8*len(cp.Coord)
	if len(page) < off+scanParamLen {
		return ScanPayload{}, fmt.Errorf("proto: scan page truncated")
	}
	p := ScanPayload{
		Coord: cp.Coord,
		Sub:   cp.Sub,
		Lo:    binary.LittleEndian.Uint64(page[off:]),
		Hi:    binary.LittleEndian.Uint64(page[off+8:]),
		Max:   binary.LittleEndian.Uint32(page[off+24:]),
	}
	cur := binary.LittleEndian.Uint64(page[off+16:])
	if cur > 1<<62 {
		return ScanPayload{}, fmt.Errorf("proto: scan cursor %d out of range", cur)
	}
	p.Cursor = int64(cur)
	if p.Lo > p.Hi {
		return ScanPayload{}, fmt.Errorf("proto: scan range [%d,%d] inverted", p.Lo, p.Hi)
	}
	return p, nil
}

// ScanMatch is one reported scan hit (also the top-k entry format): the
// element's row-major index within the scanned partition and its value.
type ScanMatch struct {
	Index int64
	Value uint64
}

// scanHeaderLen is the result page header: uint32 count, uint32 reserved,
// uint64 total, uint64 next-cursor.
const scanHeaderLen = 4 + 4 + 8 + 8

// MaxScanMatches is how many matches fit in one 4 KB result page after the
// header. A scan with more matches truncates here and reports the rest via
// NextCursor.
const MaxScanMatches = (PageSize - scanHeaderLen) / 16

// ScanResultPayload is the page a pushdown_scan command returns. Total is
// the true match count over the whole partition regardless of truncation
// (also in Completion.Result0); NextCursor is the element index resuming a
// truncated scan, or -1 when Matches covers everything at or past the
// request cursor (Completion.Result1 carries it as ScanCursorNone).
type ScanResultPayload struct {
	Total      int64
	NextCursor int64
	Matches    []ScanMatch
}

// Marshal encodes the result into a 4 KB page: uint32 count, uint32
// reserved, uint64 total, uint64 next-cursor, then 16 bytes per match.
func (p ScanResultPayload) Marshal() ([]byte, error) {
	if len(p.Matches) > MaxScanMatches {
		return nil, fmt.Errorf("proto: %d scan matches exceed page capacity %d", len(p.Matches), MaxScanMatches)
	}
	if p.Total < int64(len(p.Matches)) {
		return nil, fmt.Errorf("proto: scan total %d below match count %d", p.Total, len(p.Matches))
	}
	if p.NextCursor < -1 || p.NextCursor > 1<<62 {
		return nil, fmt.Errorf("proto: scan next-cursor %d out of range", p.NextCursor)
	}
	out := make([]byte, PageSize)
	binary.LittleEndian.PutUint32(out, uint32(len(p.Matches)))
	binary.LittleEndian.PutUint64(out[8:], uint64(p.Total))
	next := ScanCursorNone
	if p.NextCursor >= 0 {
		next = uint64(p.NextCursor)
	}
	binary.LittleEndian.PutUint64(out[16:], next)
	for i, m := range p.Matches {
		if m.Index < 0 || m.Index > 1<<62 {
			return nil, fmt.Errorf("proto: scan match %d index %d out of range", i, m.Index)
		}
		binary.LittleEndian.PutUint64(out[scanHeaderLen+16*i:], uint64(m.Index))
		binary.LittleEndian.PutUint64(out[scanHeaderLen+16*i+8:], m.Value)
	}
	return out, nil
}

// UnmarshalScanResultPayload decodes a pushdown_scan result page.
func UnmarshalScanResultPayload(page []byte) (ScanResultPayload, error) {
	if len(page) < scanHeaderLen {
		return ScanResultPayload{}, fmt.Errorf("proto: scan result page too short")
	}
	count := int(binary.LittleEndian.Uint32(page))
	if count > MaxScanMatches {
		return ScanResultPayload{}, fmt.Errorf("proto: scan match count %d exceeds page capacity %d", count, MaxScanMatches)
	}
	if len(page) < scanHeaderLen+16*count {
		return ScanResultPayload{}, fmt.Errorf("proto: scan result page truncated (%d matches, %d bytes)", count, len(page))
	}
	total := binary.LittleEndian.Uint64(page[8:])
	if total > 1<<62 || int64(total) < int64(count) {
		return ScanResultPayload{}, fmt.Errorf("proto: scan total %d invalid for %d matches", total, count)
	}
	p := ScanResultPayload{Total: int64(total), NextCursor: -1}
	if next := binary.LittleEndian.Uint64(page[16:]); next != ScanCursorNone {
		if next > 1<<62 {
			return ScanResultPayload{}, fmt.Errorf("proto: scan next-cursor %d out of range", next)
		}
		p.NextCursor = int64(next)
	}
	for i := 0; i < count; i++ {
		idx := binary.LittleEndian.Uint64(page[scanHeaderLen+16*i:])
		if idx > 1<<62 {
			return ScanResultPayload{}, fmt.Errorf("proto: scan match %d index %d out of range", i, idx)
		}
		p.Matches = append(p.Matches, ScanMatch{
			Index: int64(idx),
			Value: binary.LittleEndian.Uint64(page[scanHeaderLen+16*i+8:]),
		})
	}
	return p, nil
}

// ReducePayload is the request page of a pushdown_reduce command.
type ReducePayload struct {
	Coord, Sub []int64
	// Op is the reduction operator (ReduceOp* wire codes).
	Op uint8
	// K bounds ReduceOpTopK's result (1..MaxReduceTopK); zero elsewhere.
	K uint32
	// HasPred gates the predicate: ReduceOpCount counts matches of [Lo, Hi]
	// when set, nonzero elements when clear.
	HasPred bool
	Lo, Hi  uint64
}

// Marshal encodes the payload into a 4 KB page: the CoordPayload prefix,
// then op, hasPred, pad, k, lo, hi.
func (p ReducePayload) Marshal() ([]byte, error) {
	page, err := CoordPayload{Coord: p.Coord, Sub: p.Sub}.Marshal()
	if err != nil {
		return nil, err
	}
	if p.Op < ReduceOpSum || p.Op > ReduceOpTopK {
		return nil, fmt.Errorf("proto: reduce op %d unknown", p.Op)
	}
	if p.Op == ReduceOpTopK {
		if p.K < 1 || p.K > MaxReduceTopK {
			return nil, fmt.Errorf("proto: reduce top-k k=%d out of range [1,%d]", p.K, MaxReduceTopK)
		}
	} else if p.K != 0 {
		return nil, fmt.Errorf("proto: reduce op %d does not take k", p.Op)
	}
	if p.HasPred && p.Lo > p.Hi {
		return nil, fmt.Errorf("proto: reduce range [%d,%d] inverted", p.Lo, p.Hi)
	}
	off := 4 + 8*len(p.Coord)
	page[off] = p.Op
	if p.HasPred {
		page[off+1] = 1
	}
	binary.LittleEndian.PutUint32(page[off+4:], p.K)
	binary.LittleEndian.PutUint64(page[off+8:], p.Lo)
	binary.LittleEndian.PutUint64(page[off+16:], p.Hi)
	return page, nil
}

// UnmarshalReducePayload decodes a pushdown_reduce page.
func UnmarshalReducePayload(page []byte) (ReducePayload, error) {
	cp, err := UnmarshalCoordPayload(page)
	if err != nil {
		return ReducePayload{}, err
	}
	off := 4 + 8*len(cp.Coord)
	if len(page) < off+reduceParamLen {
		return ReducePayload{}, fmt.Errorf("proto: reduce page truncated")
	}
	p := ReducePayload{
		Coord:   cp.Coord,
		Sub:     cp.Sub,
		Op:      page[off],
		HasPred: page[off+1] != 0,
		K:       binary.LittleEndian.Uint32(page[off+4:]),
		Lo:      binary.LittleEndian.Uint64(page[off+8:]),
		Hi:      binary.LittleEndian.Uint64(page[off+16:]),
	}
	if p.Op < ReduceOpSum || p.Op > ReduceOpTopK {
		return ReducePayload{}, fmt.Errorf("proto: reduce op %d unknown", p.Op)
	}
	if p.Op == ReduceOpTopK {
		if p.K < 1 || p.K > MaxReduceTopK {
			return ReducePayload{}, fmt.Errorf("proto: reduce top-k k=%d out of range [1,%d]", p.K, MaxReduceTopK)
		}
	} else if p.K != 0 {
		return ReducePayload{}, fmt.Errorf("proto: reduce op %d does not take k", p.Op)
	}
	if p.HasPred && p.Lo > p.Hi {
		return ReducePayload{}, fmt.Errorf("proto: reduce range [%d,%d] inverted", p.Lo, p.Hi)
	}
	return p, nil
}

// reduceHeaderLen is the result page header: uint64 value, uint64 index,
// uint64 count, uint32 top-k count, uint32 reserved.
const reduceHeaderLen = 8 + 8 + 8 + 4 + 4

// MaxReduceTopK is the largest top-k result that fits one 4 KB page.
const MaxReduceTopK = (PageSize - reduceHeaderLen) / 16

// ReduceResultPayload is the page a pushdown_reduce command returns. Value
// carries the scalar result (sum, count, min, max, or the top value; also in
// Completion.Result0), Index the first element attaining a min/max (-1
// elsewhere), Count the contributing-element count (Completion.Result1).
type ReduceResultPayload struct {
	Value uint64
	Index int64
	Count int64
	TopK  []ScanMatch
}

// Marshal encodes the result into a 4 KB page.
func (p ReduceResultPayload) Marshal() ([]byte, error) {
	if len(p.TopK) > MaxReduceTopK {
		return nil, fmt.Errorf("proto: %d top-k entries exceed page capacity %d", len(p.TopK), MaxReduceTopK)
	}
	if p.Index < -1 || p.Index > 1<<62 {
		return nil, fmt.Errorf("proto: reduce index %d out of range", p.Index)
	}
	if p.Count < 0 || p.Count > 1<<62 {
		return nil, fmt.Errorf("proto: reduce count %d out of range", p.Count)
	}
	out := make([]byte, PageSize)
	binary.LittleEndian.PutUint64(out, p.Value)
	idx := ScanCursorNone
	if p.Index >= 0 {
		idx = uint64(p.Index)
	}
	binary.LittleEndian.PutUint64(out[8:], idx)
	binary.LittleEndian.PutUint64(out[16:], uint64(p.Count))
	binary.LittleEndian.PutUint32(out[24:], uint32(len(p.TopK)))
	for i, m := range p.TopK {
		if m.Index < 0 || m.Index > 1<<62 {
			return nil, fmt.Errorf("proto: top-k entry %d index %d out of range", i, m.Index)
		}
		binary.LittleEndian.PutUint64(out[reduceHeaderLen+16*i:], uint64(m.Index))
		binary.LittleEndian.PutUint64(out[reduceHeaderLen+16*i+8:], m.Value)
	}
	return out, nil
}

// UnmarshalReduceResultPayload decodes a pushdown_reduce result page.
func UnmarshalReduceResultPayload(page []byte) (ReduceResultPayload, error) {
	if len(page) < reduceHeaderLen {
		return ReduceResultPayload{}, fmt.Errorf("proto: reduce result page too short")
	}
	count := int(binary.LittleEndian.Uint32(page[24:]))
	if count > MaxReduceTopK {
		return ReduceResultPayload{}, fmt.Errorf("proto: top-k count %d exceeds page capacity %d", count, MaxReduceTopK)
	}
	if len(page) < reduceHeaderLen+16*count {
		return ReduceResultPayload{}, fmt.Errorf("proto: reduce result page truncated (%d entries, %d bytes)", count, len(page))
	}
	p := ReduceResultPayload{Value: binary.LittleEndian.Uint64(page), Index: -1}
	if idx := binary.LittleEndian.Uint64(page[8:]); idx != ScanCursorNone {
		if idx > 1<<62 {
			return ReduceResultPayload{}, fmt.Errorf("proto: reduce index %d out of range", idx)
		}
		p.Index = int64(idx)
	}
	cnt := binary.LittleEndian.Uint64(page[16:])
	if cnt > 1<<62 {
		return ReduceResultPayload{}, fmt.Errorf("proto: reduce count %d out of range", cnt)
	}
	p.Count = int64(cnt)
	for i := 0; i < count; i++ {
		idx := binary.LittleEndian.Uint64(page[reduceHeaderLen+16*i:])
		if idx > 1<<62 {
			return ReduceResultPayload{}, fmt.Errorf("proto: top-k entry %d index %d out of range", i, idx)
		}
		p.TopK = append(p.TopK, ScanMatch{
			Index: int64(idx),
			Value: binary.LittleEndian.Uint64(page[reduceHeaderLen+16*i+8:]),
		})
	}
	return p, nil
}
