// Package controller models the SSD controller firmware of §5.3: both the
// baseline NVMe controller (command handler + address lookup + channel
// handlers) and the NDS-compliant controller of Figure 8, whose pipeline
// adds a space translator/manager, a space allocator with garbage collector,
// and a data assembler working out of device DRAM. Pipeline elements are
// statically mapped to ARM cores and communicate through message queues; the
// model exposes each element as a resource so per-request costs and element
// occupancy compose correctly.
package controller

import "nds/internal/sim"

// Params is the per-element cost model.
type Params struct {
	// CmdHandle is the PCIe/NVMe command handler's cost per command.
	CmdHandle sim.Time
	// AddrLookup is the baseline controller's FTL lookup per command.
	AddrLookup sim.Time
	// Translate is the NDS controller's space translation per request: the
	// on-device B-tree walk. §7.3 measures 17 us of added worst-case latency
	// versus the baseline, dominated by this stage.
	Translate sim.Time
	// PerPage is the channel handler dispatch cost per page operation.
	PerPage sim.Time
	// AssembleChunk is the data assembler's fixed cost per gathered extent;
	// the in-device DMA gather engine makes this far cheaper than a host
	// memcpy loop.
	AssembleChunk sim.Time
	// AssembleBW is the device-DRAM bandwidth available to the assembler on
	// the read path (a hardware DMA gather).
	AssembleBW float64
	// DisassembleBW is the write-direction bandwidth: breaking inbound
	// row-major data into building-block pages is firmware-driven on the
	// ARM cores and markedly slower, the source of hardware NDS's 17% write
	// penalty (§7.1).
	DisassembleBW float64
}

// BaselineParams models the conventional NVMe controller: same cores, but an
// address-lookup function instead of the space translator and a
// command-control manager instead of the data assembler (§5.3.2).
func BaselineParams() Params {
	return Params{
		CmdHandle:  2 * sim.Microsecond,
		AddrLookup: 2 * sim.Microsecond,
		PerPage:    300 * sim.Nanosecond,
	}
}

// NDSParams models the prototype NDS controller on ARM A72 cores.
func NDSParams() Params {
	return Params{
		CmdHandle:     2 * sim.Microsecond,
		AddrLookup:    2 * sim.Microsecond,
		Translate:     18 * sim.Microsecond,
		PerPage:       300 * sim.Nanosecond,
		AssembleChunk: 60 * sim.Nanosecond,
		AssembleBW:    8e9,
		DisassembleBW: 2e9,
	}
}

// Controller instantiates the pipeline elements of Figure 8. Each element is
// a serially-occupied core; distinct elements run concurrently, giving the
// pipeline parallelism the paper's controller exploits.
type Controller struct {
	Params
	cmd       *sim.Resource // PCIe/NVMe command handler
	translate *sim.Resource // space translator (or baseline address lookup)
	assemble  *sim.Resource // data assembler (device DRAM)
	channels  *sim.Resource // channel-handler dispatch
}

// New builds a controller with the given cost model.
func New(p Params) *Controller {
	return &Controller{
		Params:    p,
		cmd:       sim.NewResource("ctl-cmd"),
		translate: sim.NewResource("ctl-translate"),
		assemble:  sim.NewResource("ctl-assemble"),
		channels:  sim.NewResource("ctl-channels"),
	}
}

// HandleCommand charges the command handler for one inbound command.
func (c *Controller) HandleCommand(at sim.Time) (start, end sim.Time) {
	return c.cmd.Acquire(at, c.CmdHandle)
}

// Lookup charges a baseline address lookup.
func (c *Controller) Lookup(at sim.Time) (start, end sim.Time) {
	return c.translate.Acquire(at, c.AddrLookup)
}

// Translate charges one NDS space translation (B-tree walk + Equation 5).
func (c *Controller) Translate(at sim.Time) (start, end sim.Time) {
	return c.translate.Acquire(at, c.Params.Translate)
}

// DispatchPages charges the channel handlers for fanning out n page ops.
func (c *Controller) DispatchPages(at sim.Time, n int64) (start, end sim.Time) {
	return c.channels.Acquire(at, sim.Time(n)*c.PerPage)
}

// Assemble charges the data assembler for gathering n bytes in chunks
// extents through device DRAM.
func (c *Controller) Assemble(at sim.Time, n int64, chunks int) (start, end sim.Time) {
	d := sim.Time(chunks)*c.AssembleChunk + sim.TransferTime(n, c.AssembleBW)
	return c.assemble.Acquire(at, d)
}

// AssembleDuration reports the assembler service time without scheduling.
func (c *Controller) AssembleDuration(n int64, chunks int) sim.Time {
	return sim.Time(chunks)*c.AssembleChunk + sim.TransferTime(n, c.AssembleBW)
}

// Pushdown charges the data assembler's core for d of in-device operator
// time: scan/filter/reduce executed next to the building-block cache instead
// of shipping raw pages to the host. The ARM core is markedly slower than a
// host CPU at the same kernel — the compute half of the pushdown tradeoff —
// but only the operator's result crosses the link.
func (c *Controller) Pushdown(at sim.Time, d sim.Time) (start, end sim.Time) {
	return c.assemble.Acquire(at, d)
}

// Disassemble charges the assembler for the write direction: breaking n
// inbound bytes into chunks building-block pieces.
func (c *Controller) Disassemble(at sim.Time, n int64, chunks int) (start, end sim.Time) {
	d := sim.Time(chunks)*c.AssembleChunk + sim.TransferTime(n, c.DisassembleBW)
	return c.assemble.Acquire(at, d)
}

// Reset clears all element timelines.
func (c *Controller) Reset() {
	c.cmd.Reset()
	c.translate.Reset()
	c.assemble.Reset()
	c.channels.Reset()
}

// BusyTimes reports accumulated service per element, for utilization
// reporting: command handler, translator, assembler, channel handlers.
func (c *Controller) BusyTimes() (cmd, translate, assemble, channels sim.Time) {
	return c.cmd.BusyTime(), c.translate.BusyTime(), c.assemble.BusyTime(), c.channels.BusyTime()
}
