package controller

import (
	"testing"

	"nds/internal/sim"
)

// TestOverheadAnchorsSection73: the NDS controller's extra per-request cost
// versus the baseline controller must land near the paper's measured 17 us
// (§7.3, worst-case single-page request).
func TestOverheadAnchorsSection73(t *testing.T) {
	base := New(BaselineParams())
	nds := New(NDSParams())

	// Baseline path: command handling + address lookup + one page dispatch.
	_, b1 := base.HandleCommand(0)
	_, b2 := base.Lookup(b1)
	_, bEnd := base.DispatchPages(b2, 1)

	// NDS path: command handling + space translation + one page dispatch +
	// assembling one page-sized chunk.
	_, n1 := nds.HandleCommand(0)
	_, n2 := nds.Translate(n1)
	_, n3 := nds.DispatchPages(n2, 1)
	_, nEnd := nds.Assemble(n3, 4096, 1)

	delta := nEnd - bEnd
	if delta < 14*sim.Microsecond || delta > 20*sim.Microsecond {
		t.Fatalf("hardware NDS adds %v per worst-case request, want ~17us", delta)
	}
}

func TestPipelineElementsAreIndependent(t *testing.T) {
	c := New(NDSParams())
	// Translation of request B overlaps assembly of request A.
	_, aAsm := c.Assemble(0, 1<<20, 16)
	_, bTr := c.Translate(0)
	if bTr >= aAsm {
		t.Fatalf("translate (%v) should not wait for the assembler (%v)", bTr, aAsm)
	}
	// Two translations serialize on the translator element.
	s, _ := c.Translate(0)
	if s != bTr {
		t.Fatalf("second translate starts %v, want %v", s, bTr)
	}
}

func TestAssemblerCheaperThanHostChunks(t *testing.T) {
	// The device-side DMA gather must beat the host's per-chunk memcpy cost;
	// that gap is why hardware NDS outruns software NDS on reads (§7.1).
	c := New(NDSParams())
	chunks := 512 // 1 MB in 2 KB pieces
	d := c.AssembleDuration(1<<20, chunks)
	hostPerChunk := 340 * sim.Nanosecond // hostsim.DefaultParams().ChunkOverhead
	hostD := sim.Time(chunks)*hostPerChunk + sim.TransferTime(1<<20, 10e9)
	if d >= hostD {
		t.Fatalf("device assembly %v should be faster than host assembly %v", d, hostD)
	}
}

func TestDispatchScalesWithPages(t *testing.T) {
	c := New(BaselineParams())
	_, one := c.DispatchPages(0, 1)
	c.Reset()
	_, many := c.DispatchPages(0, 100)
	if many != 100*one {
		t.Fatalf("dispatch of 100 pages = %v, want %v", many, 100*one)
	}
	cmd, tr, asm, ch := c.BusyTimes()
	if cmd != 0 || tr != 0 || asm != 0 || ch == 0 {
		t.Fatal("busy accounting wrong after dispatch-only workload")
	}
}
