package system

import (
	"bytes"
	"math/rand"
	"testing"

	"nds/internal/sim"
	"nds/internal/stl"
)

func smallConfig(phantom bool) Config {
	cfg := PrototypeConfig(8<<20, phantom)
	return cfg
}

func TestKindString(t *testing.T) {
	if Baseline.String() != "baseline" || SoftwareNDS.String() != "software-nds" ||
		HardwareNDS.String() != "hardware-nds" {
		t.Fatal("kind names changed")
	}
}

func TestNewWiresTheRightStack(t *testing.T) {
	for _, k := range []Kind{Baseline, SoftwareNDS, HardwareNDS} {
		s, err := New(k, smallConfig(true))
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if k == Baseline && (s.FTL == nil || s.STL != nil) {
			t.Errorf("baseline should have an FTL and no STL")
		}
		if k != Baseline && (s.STL == nil || s.FTL != nil) {
			t.Errorf("%v should have an STL and no FTL", k)
		}
	}
	if _, err := New(Kind(99), smallConfig(true)); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestOpsRejectWrongKind(t *testing.T) {
	base, _ := New(Baseline, smallConfig(true))
	swn, _ := New(SoftwareNDS, smallConfig(true))
	if _, _, err := base.NDSRead(0, nil, nil, nil); err == nil {
		t.Error("NDSRead on baseline should fail")
	}
	if _, _, err := swn.BaselineRead(0, nil, false, 1); err == nil {
		t.Error("BaselineRead on NDS system should fail")
	}
	if _, err := swn.BaselineWrite(0, nil, nil); err == nil {
		t.Error("BaselineWrite on NDS system should fail")
	}
}

func TestBaselineRoundTripWithData(t *testing.T) {
	s, err := New(Baseline, smallConfig(false))
	if err != nil {
		t.Fatal(err)
	}
	ps := int64(s.Cfg.Geometry.PageSize)
	payload := make([]byte, 4*ps)
	rand.New(rand.NewSource(1)).Read(payload)
	if _, err := s.BaselineWrite(0, []Run{{Off: 2 * ps, Len: 4 * ps}}, payload); err != nil {
		t.Fatal(err)
	}
	got, st, err := s.BaselineRead(0, []Run{{Off: 2 * ps, Len: 4 * ps}}, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("baseline read-back mismatch")
	}
	if st.Commands != 1 || st.Bytes != 4*ps {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBaselineWriteRequiresAlignment(t *testing.T) {
	s, _ := New(Baseline, smallConfig(true))
	if _, err := s.BaselineWrite(0, []Run{{Off: 1, Len: 100}}, nil); err == nil {
		t.Error("unaligned baseline write accepted")
	}
}

func TestNDSRoundTripWithData(t *testing.T) {
	for _, k := range []Kind{SoftwareNDS, HardwareNDS} {
		s, err := New(k, smallConfig(false))
		if err != nil {
			t.Fatal(err)
		}
		sp, err := s.STL.CreateSpace(8, []int64{512, 512})
		if err != nil {
			t.Fatal(err)
		}
		v, err := stl.NewView(sp, []int64{512, 512})
		if err != nil {
			t.Fatal(err)
		}
		payload := make([]byte, 256*256*8)
		rand.New(rand.NewSource(2)).Read(payload)
		if _, err := s.NDSWrite(0, v, []int64{1, 1}, []int64{256, 256}, payload); err != nil {
			t.Fatalf("%v write: %v", k, err)
		}
		got, st, err := s.NDSRead(0, v, []int64{1, 1}, []int64{256, 256})
		if err != nil {
			t.Fatalf("%v read: %v", k, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("%v read-back mismatch", k)
		}
		if st.Commands != 1 {
			t.Fatalf("%v: NDS access should need one command, got %d", k, st.Commands)
		}
	}
}

func TestQueueDepthThrottles(t *testing.T) {
	mk := func() *System {
		s, err := New(Baseline, smallConfig(true))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.FTL.WritePages(0, 0, nil, 512); err != nil {
			t.Fatal(err)
		}
		s.ResetTimelines()
		return s
	}
	runs := make([]Run, 256)
	for i := range runs {
		runs[i] = Run{Off: int64(i) * 4096, Len: 4096}
	}
	sSync := mk()
	_, stSync, err := sSync.BaselineRead(0, runs, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	sAsync := mk()
	_, stAsync, err := sAsync.BaselineRead(0, runs, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if stSync.Done <= stAsync.Done {
		t.Fatalf("sync (%v) should be slower than unlimited async (%v)", stSync.Done, stAsync.Done)
	}
}

func TestWritesAreSynchronous(t *testing.T) {
	s, _ := New(Baseline, smallConfig(true))
	runs := []Run{{Off: 0, Len: 4096}, {Off: 4096, Len: 4096}}
	st, err := s.BaselineWrite(0, runs, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Two synchronous writes take at least two full program latencies.
	if st.Done < 2*s.Cfg.Timing.ProgramPage {
		t.Fatalf("sync writes finished at %v, want >= %v", st.Done, 2*s.Cfg.Timing.ProgramPage)
	}
}

// TestRowFetchOrdering pins the Figure 9(a) relationship at a small scale:
// hardware NDS tracks the baseline closely while software NDS pays the
// host-assembly penalty.
func TestRowFetchOrdering(t *testing.T) {
	cfg := PrototypeConfig(32<<20, true)
	mkLoaded := func(k Kind) (*System, *stl.View) {
		s, err := New(k, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if k == Baseline {
			if _, err := s.FTL.WritePages(0, 0, nil, 8192); err != nil {
				t.Fatal(err)
			}
			s.ResetTimelines()
			return s, nil
		}
		sp, err := s.STL.CreateSpace(8, []int64{2048, 2048})
		if err != nil {
			t.Fatal(err)
		}
		v, err := stl.NewView(sp, []int64{2048, 2048})
		if err != nil {
			t.Fatal(err)
		}
		for i := int64(0); i < 8; i++ {
			if _, _, err := s.STL.WritePartition(0, v, []int64{i, 0}, []int64{256, 2048}, nil); err != nil {
				t.Fatal(err)
			}
		}
		s.ResetTimelines()
		return s, v
	}

	rowBand := func(s *System, v *stl.View) sim.Time {
		if s.Kind == Baseline {
			_, st, err := s.BaselineRead(0, []Run{{Off: 0, Len: 1024 * 2048 * 8}}, false, 1)
			if err != nil {
				t.Fatal(err)
			}
			return st.Done
		}
		_, st, err := s.NDSRead(0, v, []int64{0, 0}, []int64{1024, 2048})
		if err != nil {
			t.Fatal(err)
		}
		return st.Done
	}

	base, _ := mkLoaded(Baseline)
	swn, swv := mkLoaded(SoftwareNDS)
	hwn, hwv := mkLoaded(HardwareNDS)
	tb := rowBand(base, nil)
	tsw := rowBand(swn, swv)
	thw := rowBand(hwn, hwv)

	if tsw <= tb {
		t.Errorf("software NDS row fetch (%v) should trail the baseline (%v)", tsw, tb)
	}
	if float64(thw) > 1.15*float64(tb) {
		t.Errorf("hardware NDS row fetch (%v) should be within ~15%% of the baseline (%v)", thw, tb)
	}
}

func TestBlockedAssemblyCheapens(t *testing.T) {
	cfg := PrototypeConfig(32<<20, true)
	fetch := func(blocked bool) sim.Time {
		s, err := New(SoftwareNDS, cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.BlockedAssembly = blocked
		sp, err := s.STL.CreateSpace(8, []int64{2048, 2048})
		if err != nil {
			t.Fatal(err)
		}
		v, err := stl.NewView(sp, []int64{2048, 2048})
		if err != nil {
			t.Fatal(err)
		}
		for i := int64(0); i < 8; i++ {
			if _, _, err := s.STL.WritePartition(0, v, []int64{i, 0}, []int64{256, 2048}, nil); err != nil {
				t.Fatal(err)
			}
		}
		s.ResetTimelines()
		// A column band: many small extents.
		_, st, err := s.NDSRead(0, v, []int64{0, 1}, []int64{2048, 256})
		if err != nil {
			t.Fatal(err)
		}
		return st.Done
	}
	if b, u := fetch(true), fetch(false); b > u {
		t.Fatalf("blocked assembly (%v) should not be slower than unblocked (%v)", b, u)
	}
}
