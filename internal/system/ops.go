package system

import (
	"fmt"

	"nds/internal/sim"
	"nds/internal/stl"
)

// Run is one contiguous byte range in the baseline SSD's linear space.
type Run struct {
	Off int64
	Len int64
}

// BaselineRead issues one I/O command per run through the conventional
// stack: host submission (CPU), command handling and address lookup in the
// controller, FTL page reads, link transfer, and — when marshal is true —
// a host-side copy placing each arrived run into the destination object
// (problem [P1]). qd is the application's I/O queue depth: run i+qd is
// submitted only after run i completes (qd=1 is a synchronous read loop,
// qd<=0 is unlimited async). Every shared resource serializes naturally, so
// throughput is set by the bottleneck stage.
//
// The returned buffer concatenates the runs in order (nil on phantom
// devices).
func (s *System) BaselineRead(at sim.Time, runs []Run, marshal bool, qd int) ([]byte, OpStats, error) {
	if s.Kind != Baseline {
		return nil, OpStats{}, fmt.Errorf("system: BaselineRead on %v system", s.Kind)
	}
	var stats OpStats
	var total int64
	for _, r := range runs {
		total += r.Len
	}
	var buf []byte
	if !s.Dev.Phantom() {
		buf = make([]byte, 0, total)
	}
	var window []sim.Time
	if qd > 0 {
		window = make([]sim.Time, 0, len(runs))
	}
	done := at
	for i, r := range runs {
		issue := at
		if qd > 0 && i >= qd {
			issue = sim.Max(issue, window[i-qd])
		}
		_, subEnd := s.Host.SubmitIO(issue)
		_, cmdEnd := s.Ctrl.HandleCommand(subEnd)
		_, lkEnd := s.Ctrl.Lookup(cmdEnd)
		data, devDone, err := s.FTL.Read(lkEnd, r.Off, r.Len)
		if err != nil {
			return nil, stats, err
		}
		ps := s.pageSize()
		stats.Pages += (r.Off%ps + r.Len + ps - 1) / ps
		_, linkEnd := s.Link.Transfer(lkEnd, r.Len)
		arrive := sim.Max(devDone, linkEnd)
		if marshal {
			_, mEnd := s.Host.Marshal(arrive, r.Len, 1)
			arrive = mEnd
		}
		if buf != nil {
			buf = append(buf, data...)
		}
		if qd > 0 {
			window = append(window, arrive)
		}
		done = sim.Max(done, arrive)
		stats.Commands++
		stats.Bytes += r.Len
		stats.RawBytes += r.Len
	}
	stats.Extents = len(runs)
	stats.Done = done
	return buf, stats, nil
}

// BaselineWrite writes runs synchronously (the paper's Figure 9(d) disables
// asynchronous writes): each run's data crosses the link, is programmed
// through the FTL, and the next run is issued only after completion. data,
// when non-nil, concatenates the runs' payloads; offsets and lengths must be
// page-aligned.
func (s *System) BaselineWrite(at sim.Time, runs []Run, data []byte) (OpStats, error) {
	if s.Kind != Baseline {
		return OpStats{}, fmt.Errorf("system: BaselineWrite on %v system", s.Kind)
	}
	var stats OpStats
	ps := s.pageSize()
	var pos int64
	now := at
	for _, r := range runs {
		if r.Off%ps != 0 || r.Len%ps != 0 {
			return stats, fmt.Errorf("system: baseline write run [%d,%d) not page-aligned", r.Off, r.Off+r.Len)
		}
		_, subEnd := s.Host.SubmitIO(now)
		_, linkEnd := s.Link.Transfer(subEnd, r.Len)
		_, cmdEnd := s.Ctrl.HandleCommand(subEnd)
		_, lkEnd := s.Ctrl.Lookup(cmdEnd)
		start := sim.Max(linkEnd, lkEnd)
		var payload []byte
		if data != nil {
			payload = data[pos : pos+r.Len]
		}
		devDone, err := s.FTL.WritePages(start, r.Off/ps, payload, r.Len/ps)
		if err != nil {
			return stats, err
		}
		now = devDone
		pos += r.Len
		stats.Commands++
		stats.Bytes += r.Len
		stats.RawBytes += r.Len
		stats.Pages += r.Len / ps
	}
	stats.Done = now
	return stats, nil
}

// NDSRead reads one partition through an NDS configuration.
//
// Software NDS (Figure 7b): the host submits, translates on its own CPU
// (§7.3: 41 us), raw pages cross the link, and the host assembles the
// object from per-extent copies — the 2 KB-chunk cost §7.1 identifies.
//
// Hardware NDS (Figure 7c): one extended NVMe command carries the
// coordinates; the controller translates and dispatches, the data assembler
// gathers extents in device DRAM, and only the assembled object crosses the
// link. Device reads, assembly, and the link stream concurrently.
func (s *System) NDSRead(at sim.Time, v *stl.View, coord, sub []int64) ([]byte, OpStats, error) {
	return s.NDSReadInto(at, v, coord, sub, nil)
}

// NDSReadInto is NDSRead assembling the partition into dst when dst has
// enough capacity (a fresh buffer is allocated otherwise). Streams reuse
// their assembly buffer across commands this way; the returned slice aliases
// dst, so the caller must consume it before issuing the next read with the
// same buffer.
func (s *System) NDSReadInto(at sim.Time, v *stl.View, coord, sub []int64, dst []byte) ([]byte, OpStats, error) {
	var stats OpStats
	switch s.Kind {
	case SoftwareNDS:
		_, subEnd := s.Host.SubmitIO(at)
		_, trEnd := s.Host.Translate(subEnd)
		data, devDone, st, err := s.STL.ReadPartitionInto(trEnd, v, coord, sub, dst)
		if err != nil {
			return nil, stats, err
		}
		raw := st.PagesRead * s.pageSize()
		_, linkEnd := s.Link.Transfer(trEnd, raw)
		_, mEnd := s.Host.Marshal(trEnd, st.Bytes, s.assemblyChunks(st))
		stats = OpStats{
			Done:     sim.Max(devDone, sim.Max(linkEnd, mEnd)),
			Bytes:    st.Bytes,
			RawBytes: raw,
			Extents:  st.Extents,
			Pages:    st.PagesRead,
			Commands: 1,

			ProgramRetries: st.ProgramRetries,
		}
		return data, stats, nil

	case HardwareNDS:
		_, subEnd := s.Host.SubmitIO(at)
		_, cmdXfer := s.Link.Transfer(subEnd, int64(s.Cfg.Geometry.PageSize)) // command + coordinate page
		_, cmdEnd := s.Ctrl.HandleCommand(cmdXfer)
		_, trEnd := s.Ctrl.Translate(cmdEnd)
		data, devDone, st, err := s.STL.ReadPartitionInto(trEnd, v, coord, sub, dst)
		if err != nil {
			return nil, stats, err
		}
		_, dpEnd := s.Ctrl.DispatchPages(trEnd, st.PagesRead)
		_, asmEnd := s.Ctrl.Assemble(trEnd, st.Bytes, s.assemblyChunks(st))
		_, linkEnd := s.Link.Transfer(trEnd, st.Bytes)
		done := sim.Max(sim.Max(devDone, dpEnd), sim.Max(asmEnd, linkEnd))
		stats = OpStats{
			Done:     done,
			Bytes:    st.Bytes,
			RawBytes: st.Bytes,
			Extents:  st.Extents,
			Pages:    st.PagesRead,
			Commands: 1,

			ProgramRetries: st.ProgramRetries,
		}
		return data, stats, nil
	}
	return nil, stats, fmt.Errorf("system: NDSRead on %v system", s.Kind)
}

// NDSReadSegments is NDSRead delivering the partition as ordered source
// segments instead of an assembled buffer: fn receives the payload size and
// the segment list (gaps are zeros) while the request still holds its locks,
// exactly as stl.ReadPartitionSegments documents. Timing and statistics are
// identical to NDSReadInto — both ride the same plan phase and charge the
// same submission/translation/assembly/link stages — so a consumer that can
// gather (the ndsd completion writer) skips the partition-buffer copy with
// no simulated-time difference.
func (s *System) NDSReadSegments(at sim.Time, v *stl.View, coord, sub []int64, fn func(want int64, segs []stl.Segment) error) (OpStats, error) {
	var stats OpStats
	switch s.Kind {
	case SoftwareNDS:
		_, subEnd := s.Host.SubmitIO(at)
		_, trEnd := s.Host.Translate(subEnd)
		devDone, st, err := s.STL.ReadPartitionSegments(trEnd, v, coord, sub, fn)
		if err != nil {
			return stats, err
		}
		raw := st.PagesRead * s.pageSize()
		_, linkEnd := s.Link.Transfer(trEnd, raw)
		_, mEnd := s.Host.Marshal(trEnd, st.Bytes, s.assemblyChunks(st))
		stats = OpStats{
			Done:     sim.Max(devDone, sim.Max(linkEnd, mEnd)),
			Bytes:    st.Bytes,
			RawBytes: raw,
			Extents:  st.Extents,
			Pages:    st.PagesRead,
			Commands: 1,

			ProgramRetries: st.ProgramRetries,
		}
		return stats, nil

	case HardwareNDS:
		_, subEnd := s.Host.SubmitIO(at)
		_, cmdXfer := s.Link.Transfer(subEnd, int64(s.Cfg.Geometry.PageSize)) // command + coordinate page
		_, cmdEnd := s.Ctrl.HandleCommand(cmdXfer)
		_, trEnd := s.Ctrl.Translate(cmdEnd)
		devDone, st, err := s.STL.ReadPartitionSegments(trEnd, v, coord, sub, fn)
		if err != nil {
			return stats, err
		}
		_, dpEnd := s.Ctrl.DispatchPages(trEnd, st.PagesRead)
		_, asmEnd := s.Ctrl.Assemble(trEnd, st.Bytes, s.assemblyChunks(st))
		_, linkEnd := s.Link.Transfer(trEnd, st.Bytes)
		done := sim.Max(sim.Max(devDone, dpEnd), sim.Max(asmEnd, linkEnd))
		stats = OpStats{
			Done:     done,
			Bytes:    st.Bytes,
			RawBytes: st.Bytes,
			Extents:  st.Extents,
			Pages:    st.PagesRead,
			Commands: 1,

			ProgramRetries: st.ProgramRetries,
		}
		return stats, nil
	}
	return stats, fmt.Errorf("system: NDSReadSegments on %v system", s.Kind)
}

// NDSWrite writes one partition through an NDS configuration,
// synchronously (matching Figure 9(d)'s methodology).
func (s *System) NDSWrite(at sim.Time, v *stl.View, coord, sub []int64, data []byte) (OpStats, error) {
	var stats OpStats
	exts, err := v.Extents(coord, sub)
	if err != nil {
		return stats, err
	}
	_, elems, err := v.PartitionShape(coord, sub)
	if err != nil {
		return stats, err
	}
	bytes := elems * int64(v.Space().ElemSize())

	switch s.Kind {
	case SoftwareNDS:
		_, subEnd := s.Host.SubmitIO(at)
		_, trEnd := s.Host.Translate(subEnd)
		// Host breaks the object into building-block pieces (the strided
		// scatter §7.1 blames for the 30% write loss)...
		_, scEnd := s.Host.Scatter(trEnd, bytes, len(exts))
		// ...then raw pages cross the link before programming starts.
		_, linkEnd := s.Link.Transfer(scEnd, bytes)
		devDone, st, err := s.STL.WritePartition(linkEnd, v, coord, sub, data)
		if err != nil {
			return stats, err
		}
		stats = OpStats{
			Done:     devDone,
			Bytes:    st.Bytes,
			RawBytes: st.PagesProgrammed * s.pageSize(),
			Extents:  st.Extents,
			Pages:    st.PagesProgrammed + st.PagesRead,
			Commands: 1,

			ProgramRetries: st.ProgramRetries,
		}
		return stats, nil

	case HardwareNDS:
		_, subEnd := s.Host.SubmitIO(at)
		_, cmdXfer := s.Link.Transfer(subEnd, int64(s.Cfg.Geometry.PageSize))
		_, cmdEnd := s.Ctrl.HandleCommand(cmdXfer)
		_, trEnd := s.Ctrl.Translate(cmdEnd)
		// Bulk data follows the command over the link in large pieces;
		// the controller's firmware-driven disassembly is the write-path
		// bottleneck behind the 17% loss of §7.1.
		_, linkEnd := s.Link.Transfer(subEnd, bytes)
		_, disEnd := s.Ctrl.Disassemble(sim.Max(trEnd, linkEnd), bytes, len(exts))
		devDone, st, err := s.STL.WritePartition(disEnd, v, coord, sub, data)
		if err != nil {
			return stats, err
		}
		stats = OpStats{
			Done:     devDone,
			Bytes:    st.Bytes,
			RawBytes: bytes,
			Extents:  st.Extents,
			Pages:    st.PagesProgrammed + st.PagesRead,
			Commands: 1,

			ProgramRetries: st.ProgramRetries,
		}
		return stats, nil
	}
	return stats, fmt.Errorf("system: NDSWrite on %v system", s.Kind)
}
