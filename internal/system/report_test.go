package system

import (
	"strings"
	"testing"

	"nds/internal/stl"
)

func TestReportCapturesBottlenecks(t *testing.T) {
	cfg := PrototypeConfig(32<<20, true)
	s, err := New(HardwareNDS, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := s.STL.CreateSpace(8, []int64{2048, 2048})
	if err != nil {
		t.Fatal(err)
	}
	v, err := stl.NewView(sp, []int64{2048, 2048})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 8; i++ {
		if _, _, err := s.STL.WritePartition(0, v, []int64{i, 0}, []int64{256, 2048}, nil); err != nil {
			t.Fatal(err)
		}
	}
	s.ResetTimelines()
	_, st, err := s.NDSRead(0, v, []int64{1, 1}, []int64{512, 512})
	if err != nil {
		t.Fatal(err)
	}
	r := s.Report(st.Done)
	// A tile read through NDS engages every channel.
	if got := r.ActiveChannels(); got != cfg.Geometry.Channels {
		t.Errorf("active channels = %d, want %d", got, cfg.Geometry.Channels)
	}
	if r.DeviceReads == 0 {
		t.Error("no device reads recorded")
	}
	if r.CtrlTranslate == 0 {
		t.Error("hardware NDS should charge controller translation")
	}
	if r.LinkBusy == 0 {
		t.Error("link busy missing")
	}
	if r.AvgChannel <= 0 || r.MaxChannel < r.AvgChannel*(1-1e-9) {
		t.Errorf("channel stats inconsistent: avg %.3f max %.3f", r.AvgChannel, r.MaxChannel)
	}
	out := r.String()
	for _, want := range []string{"hardware-nds", "channels:", "device ops:"} {
		if !strings.Contains(out, want) {
			t.Errorf("report string missing %q:\n%s", want, out)
		}
	}
}

func TestReportBaselineColumnFetchShowsP3(t *testing.T) {
	// A column fetch on the row-store baseline engages few channels — the
	// report makes problem [P3] visible.
	cfg := PrototypeConfig(32<<20, true)
	s, err := New(Baseline, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.FTL.WritePages(0, 0, nil, 8192); err != nil {
		t.Fatal(err)
	}
	s.ResetTimelines()
	rowBytes := int64(2048 * 8)
	var runs []Run
	for r := int64(0); r < 2048; r++ {
		runs = append(runs, Run{Off: r * rowBytes, Len: 256 * 8})
	}
	_, st, err := s.BaselineRead(0, runs, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := s.Report(st.Done)
	if got := r.ActiveChannels(); got >= cfg.Geometry.Channels/2 {
		t.Errorf("column fetch engaged %d/%d channels; [P3] should leave most idle",
			got, cfg.Geometry.Channels)
	}
	if r.GCErases != 0 {
		t.Error("unexpected GC during reads")
	}
}
