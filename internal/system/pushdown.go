package system

import (
	"fmt"

	"nds/internal/accel"
	"nds/internal/sim"
	"nds/internal/stl"
)

// Pushdown operator dispatch: the [P2] tradeoff as a measurable experiment.
//
// Software NDS runs the STL — and therefore the operator — on the host: the
// scan executes at host-CPU rate, but every raw page still crosses the
// interconnect first, so pushdown saves nothing on the link (RawBytes equals
// a read's). Hardware NDS runs the operator on the controller's ARM core next
// to the building-block cache: the kernel is slower, but only the result page
// crosses the link, so RawBytes collapses to the result size. Comparing the
// two against read-then-filter turns "interconnect bytes saved vs compute
// cost" into numbers.
//
// Compute is charged through accel-style rate curves (bytes/second vs
// scanned-bytes working set): small scans are dominated by setup cost, large
// ones saturate the engine, mirroring Figure 3's shape at CPU scale.

// mustRateCurve builds a static curve; the anchors below are compile-time
// constants, so failure is a programming error.
func mustRateCurve(name string, pts []accel.RatePoint) accel.RateCurve {
	c, err := accel.NewRateCurve(name, pts)
	if err != nil {
		panic(err)
	}
	return c
}

var (
	// hostScanRate models a single host core streaming a predicate scan
	// (Ryzen 3700X class): ramps from launch-overhead-bound at a page to
	// ~16 GB/s saturated.
	hostScanRate = mustRateCurve("host-scan", []accel.RatePoint{
		{Dim: 4 << 10, Rate: 2.5e9},
		{Dim: 64 << 10, Rate: 8e9},
		{Dim: 1 << 20, Rate: 14e9},
		{Dim: 16 << 20, Rate: 16e9},
	})
	// ctrlScanRate models the same kernel on a controller ARM A72 core:
	// roughly 5-6x slower across the range, the compute half of the
	// pushdown tradeoff.
	ctrlScanRate = mustRateCurve("ctrl-scan", []accel.RatePoint{
		{Dim: 4 << 10, Rate: 0.6e9},
		{Dim: 64 << 10, Rate: 1.6e9},
		{Dim: 1 << 20, Rate: 2.6e9},
		{Dim: 16 << 20, Rate: 3e9},
	})
)

// scanResultBytes is the simulated wire size of a scan result: a 16-byte
// header (total + cursor) plus 16 bytes per reported match.
func scanResultBytes(r stl.ScanResult) int64 {
	return 16 + 16*int64(len(r.Matches))
}

// reduceResultBytes is the simulated wire size of a reduction result: a
// 32-byte header plus 16 bytes per top-k entry.
func reduceResultBytes(r stl.ReduceResult) int64 {
	return 32 + 16*int64(len(r.TopK))
}

// NDSScan executes a predicate scan over one partition at the STL.
//
// Software NDS: submission and translation on the host CPU, raw pages across
// the link, then the host worker filters them at host-scan rate. Hardware
// NDS: one extended command in, translation and the scan kernel on the
// controller, and only the result page back across the link.
func (s *System) NDSScan(at sim.Time, v *stl.View, coord, sub []int64, q stl.ScanQuery) (stl.ScanResult, OpStats, error) {
	var stats OpStats
	switch s.Kind {
	case SoftwareNDS:
		_, subEnd := s.Host.SubmitIO(at)
		_, trEnd := s.Host.Translate(subEnd)
		res, devDone, st, err := s.STL.ScanPartition(trEnd, v, coord, sub, q)
		if err != nil {
			return stl.ScanResult{}, stats, err
		}
		raw := st.PagesRead * s.pageSize()
		_, linkEnd := s.Link.Transfer(trEnd, raw)
		_, cmpEnd := s.Host.Compute(trEnd, hostScanRate.Duration(st.Bytes, st.Bytes))
		stats = pushdownStats(sim.Max(devDone, sim.Max(linkEnd, cmpEnd)), st, raw)
		return res, stats, nil

	case HardwareNDS:
		_, subEnd := s.Host.SubmitIO(at)
		_, cmdXfer := s.Link.Transfer(subEnd, int64(s.Cfg.Geometry.PageSize)) // command + query page
		_, cmdEnd := s.Ctrl.HandleCommand(cmdXfer)
		_, trEnd := s.Ctrl.Translate(cmdEnd)
		res, devDone, st, err := s.STL.ScanPartition(trEnd, v, coord, sub, q)
		if err != nil {
			return stl.ScanResult{}, stats, err
		}
		_, dpEnd := s.Ctrl.DispatchPages(trEnd, st.PagesRead)
		_, cmpEnd := s.Ctrl.Pushdown(trEnd, ctrlScanRate.Duration(st.Bytes, st.Bytes))
		result := scanResultBytes(res)
		_, linkEnd := s.Link.Transfer(trEnd, result)
		done := sim.Max(sim.Max(devDone, dpEnd), sim.Max(cmpEnd, linkEnd))
		stats = pushdownStats(done, st, result)
		return res, stats, nil
	}
	return stl.ScanResult{}, stats, fmt.Errorf("system: NDSScan on %v system", s.Kind)
}

// NDSReduce executes a block-level reduction over one partition at the STL,
// with the same stage structure and charging as NDSScan.
func (s *System) NDSReduce(at sim.Time, v *stl.View, coord, sub []int64, q stl.ReduceQuery) (stl.ReduceResult, OpStats, error) {
	var stats OpStats
	switch s.Kind {
	case SoftwareNDS:
		_, subEnd := s.Host.SubmitIO(at)
		_, trEnd := s.Host.Translate(subEnd)
		res, devDone, st, err := s.STL.ReducePartition(trEnd, v, coord, sub, q)
		if err != nil {
			return stl.ReduceResult{}, stats, err
		}
		raw := st.PagesRead * s.pageSize()
		_, linkEnd := s.Link.Transfer(trEnd, raw)
		_, cmpEnd := s.Host.Compute(trEnd, hostScanRate.Duration(st.Bytes, st.Bytes))
		stats = pushdownStats(sim.Max(devDone, sim.Max(linkEnd, cmpEnd)), st, raw)
		return res, stats, nil

	case HardwareNDS:
		_, subEnd := s.Host.SubmitIO(at)
		_, cmdXfer := s.Link.Transfer(subEnd, int64(s.Cfg.Geometry.PageSize))
		_, cmdEnd := s.Ctrl.HandleCommand(cmdXfer)
		_, trEnd := s.Ctrl.Translate(cmdEnd)
		res, devDone, st, err := s.STL.ReducePartition(trEnd, v, coord, sub, q)
		if err != nil {
			return stl.ReduceResult{}, stats, err
		}
		_, dpEnd := s.Ctrl.DispatchPages(trEnd, st.PagesRead)
		_, cmpEnd := s.Ctrl.Pushdown(trEnd, ctrlScanRate.Duration(st.Bytes, st.Bytes))
		result := reduceResultBytes(res)
		_, linkEnd := s.Link.Transfer(trEnd, result)
		done := sim.Max(sim.Max(devDone, dpEnd), sim.Max(cmpEnd, linkEnd))
		stats = pushdownStats(done, st, result)
		return res, stats, nil
	}
	return stl.ReduceResult{}, stats, fmt.Errorf("system: NDSReduce on %v system", s.Kind)
}

// NDSSelect models a pushdown selection over the partition at coord/sub
// whose result size is declared rather than computed. The timed Figure-10
// harness runs on phantom (dataless) paper-scale platforms, where a real
// scan would see only zeros and report a degenerate match count; NDSSelect
// charges the exact stage structure of NDSScan — submission, translation,
// the full segment-plan read, the scan-rate compute charge, and the link
// transfer — but lets the caller declare how many result bytes cross the
// interconnect (header + matches for a scan, header + top-k entries for a
// reduction). On SoftwareNDS the declared size is ignored for the link:
// every raw page crosses first, exactly as NDSScan charges it.
func (s *System) NDSSelect(at sim.Time, v *stl.View, coord, sub []int64, resultBytes int64) (OpStats, error) {
	if resultBytes < 0 {
		return OpStats{}, fmt.Errorf("system: NDSSelect with %d result bytes", resultBytes)
	}
	noop := func(int64, []stl.Segment) error { return nil }
	switch s.Kind {
	case SoftwareNDS:
		_, subEnd := s.Host.SubmitIO(at)
		_, trEnd := s.Host.Translate(subEnd)
		devDone, st, err := s.STL.ReadPartitionSegments(trEnd, v, coord, sub, noop)
		if err != nil {
			return OpStats{}, err
		}
		raw := st.PagesRead * s.pageSize()
		_, linkEnd := s.Link.Transfer(trEnd, raw)
		_, cmpEnd := s.Host.Compute(trEnd, hostScanRate.Duration(st.Bytes, st.Bytes))
		return pushdownStats(sim.Max(devDone, sim.Max(linkEnd, cmpEnd)), st, raw), nil

	case HardwareNDS:
		_, subEnd := s.Host.SubmitIO(at)
		_, cmdXfer := s.Link.Transfer(subEnd, int64(s.Cfg.Geometry.PageSize))
		_, cmdEnd := s.Ctrl.HandleCommand(cmdXfer)
		_, trEnd := s.Ctrl.Translate(cmdEnd)
		devDone, st, err := s.STL.ReadPartitionSegments(trEnd, v, coord, sub, noop)
		if err != nil {
			return OpStats{}, err
		}
		_, dpEnd := s.Ctrl.DispatchPages(trEnd, st.PagesRead)
		_, cmpEnd := s.Ctrl.Pushdown(trEnd, ctrlScanRate.Duration(st.Bytes, st.Bytes))
		_, linkEnd := s.Link.Transfer(trEnd, resultBytes)
		done := sim.Max(sim.Max(devDone, dpEnd), sim.Max(cmpEnd, linkEnd))
		return pushdownStats(done, st, resultBytes), nil
	}
	return OpStats{}, fmt.Errorf("system: NDSSelect on %v system", s.Kind)
}

// pushdownStats packages operator stats: Bytes is the payload scanned (what
// the tenant was charged), RawBytes is what actually crossed the link.
func pushdownStats(done sim.Time, st stl.RequestStats, rawBytes int64) OpStats {
	return OpStats{
		Done:     done,
		Bytes:    st.Bytes,
		RawBytes: rawBytes,
		Extents:  st.Extents,
		Pages:    st.PagesRead,
		Commands: 1,

		ProgramRetries: st.ProgramRetries,
	}
}
