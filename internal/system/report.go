package system

import (
	"fmt"
	"strings"

	"nds/internal/sim"
	"nds/internal/stl"
)

// Report is a utilization/telemetry snapshot of one system over a measured
// horizon: where the time went (host, link, controller elements, channels)
// and what the storage layer did (GC work, write amplification). ndsbench
// prints it after microbenchmark phases; tests use it to assert bottleneck
// locations.
type Report struct {
	Kind    Kind
	Horizon sim.Time

	HostBusy sim.Time
	LinkBusy sim.Time

	CtrlCmd       sim.Time
	CtrlTranslate sim.Time
	CtrlAssemble  sim.Time
	CtrlChannels  sim.Time

	ChannelUtil []float64 // per-channel busy fraction
	AvgChannel  float64
	MaxChannel  float64

	DeviceReads    int64
	DevicePrograms int64
	DeviceErases   int64

	GCErases  int64
	GCMoves   int64
	WriteAmp  float64
	UsedPages int64

	// Reliability is the STL's fault/recovery snapshot (zero-valued on
	// Baseline systems and when no fault plan is installed).
	Reliability stl.ReliabilityReport

	// Cache is the STL's building-block cache snapshot (zero-valued on
	// Baseline systems and when the cache is disabled).
	Cache stl.CacheStats

	// Tenants is the per-tenant QoS accounting breakdown (nil on Baseline
	// systems and when tenant QoS is disabled).
	Tenants []stl.TenantStats
}

// Report snapshots the system's resource accounting over the horizon
// (normally the completion time of the measured phase).
func (s *System) Report(horizon sim.Time) Report {
	r := Report{
		Kind:     s.Kind,
		Horizon:  horizon,
		HostBusy: s.Host.BusyTime(),
		LinkBusy: s.Link.BusyTime(),
	}
	r.CtrlCmd, r.CtrlTranslate, r.CtrlAssemble, r.CtrlChannels = s.Ctrl.BusyTimes()
	r.ChannelUtil = s.Dev.ChannelUtilization(horizon)
	for _, u := range r.ChannelUtil {
		r.AvgChannel += u
		if u > r.MaxChannel {
			r.MaxChannel = u
		}
	}
	if len(r.ChannelUtil) > 0 {
		r.AvgChannel /= float64(len(r.ChannelUtil))
	}
	r.DeviceReads, r.DevicePrograms, r.DeviceErases = s.Dev.Counters()
	switch {
	case s.FTL != nil:
		r.GCErases, r.GCMoves = s.FTL.GCStats()
		r.WriteAmp = s.FTL.WriteAmplification()
	case s.STL != nil:
		r.GCErases, r.GCMoves = s.STL.GCStats()
		r.WriteAmp = s.STL.WriteAmplification()
		r.UsedPages = s.STL.UsedPages()
		r.Reliability = s.STL.Reliability()
		r.Cache = s.STL.CacheStats()
		r.Tenants = s.STL.TenantStats()
	}
	return r
}

// ActiveChannels counts channels with meaningful utilization (> 1% of the
// busiest), the quantity behind problem [P3].
func (r Report) ActiveChannels() int {
	n := 0
	for _, u := range r.ChannelUtil {
		if u > 0.01*r.MaxChannel && u > 0 {
			n++
		}
	}
	return n
}

// String renders a compact multi-line summary.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v over %v:\n", r.Kind, r.Horizon)
	fmt.Fprintf(&b, "  host %v busy, link %v busy\n", r.HostBusy, r.LinkBusy)
	if r.CtrlTranslate > 0 || r.CtrlAssemble > 0 {
		fmt.Fprintf(&b, "  controller: cmd %v, translate %v, assemble %v, channels %v\n",
			r.CtrlCmd, r.CtrlTranslate, r.CtrlAssemble, r.CtrlChannels)
	}
	fmt.Fprintf(&b, "  channels: %d/%d active, avg %.1f%%, max %.1f%%\n",
		r.ActiveChannels(), len(r.ChannelUtil), 100*r.AvgChannel, 100*r.MaxChannel)
	fmt.Fprintf(&b, "  device ops: %d reads, %d programs, %d erases",
		r.DeviceReads, r.DevicePrograms, r.DeviceErases)
	if r.GCErases > 0 {
		fmt.Fprintf(&b, " (GC: %d erases, %d moves, WA %.2f)", r.GCErases, r.GCMoves, r.WriteAmp)
	}
	if rel := r.Reliability; rel.ProgramFaults+rel.EraseFaults+rel.WearoutFaults+rel.ReadRetries > 0 {
		fmt.Fprintf(&b, "\n  reliability: %d program / %d erase / %d wear-out faults, %d read retries; %d retries OK, %d blocks retired, capacity %d/%d pages",
			rel.ProgramFaults, rel.EraseFaults, rel.WearoutFaults, rel.ReadRetries,
			rel.ProgramRetries, rel.RetiredBlocks, rel.EffectivePages, rel.MaxPages)
	}
	if c := r.Cache; c.CapacityBytes > 0 {
		fmt.Fprintf(&b, "\n  cache: %d hits / %d misses, prefetch %d issued / %d used / %d wasted, %d evictions, %d/%d bytes resident",
			c.Hits, c.Misses, c.PrefetchIssued, c.PrefetchUsed, c.PrefetchWasted,
			c.Evictions, c.ResidentBytes, c.CapacityBytes)
	}
	for _, ts := range r.Tenants {
		name := fmt.Sprintf("space %d", ts.Tenant.Space())
		if ts.Tenant.IsGroup() {
			name = fmt.Sprintf("group %d", ts.Tenant.Group())
		}
		fmt.Fprintf(&b, "\n  tenant %s: weight %.3g, %d ops, %d bytes, busy %v, queued %dns, throttled %dns",
			name, ts.Weight, ts.Ops, ts.Bytes, ts.SimBusy, ts.QueueWaitNs, ts.ThrottleNs)
	}
	return b.String()
}
