// Package system composes the substrate models into the paper's three
// evaluated configurations (Figure 7):
//
//   - Baseline: a conventional SSD — host software stack, NVMe(-oF) link,
//     baseline controller with an FTL exposing a linear LBA space. The host
//     must marshal multi-dimensional objects itself.
//   - SoftwareNDS: the STL runs on the host over an open-channel
//     (LightNVM-style) device; translation and object assembly consume host
//     CPU, and raw pages cross the interconnect.
//   - HardwareNDS: the STL runs inside the device controller; one extended
//     NVMe command per partition, translation and assembly in the device,
//     and only the assembled object crosses the interconnect.
//
// Each operation is scheduled on the shared resource timelines (host CPU,
// link, controller elements, flash channels/banks), so pipelining and
// bottleneck shifts emerge from the model rather than from per-configuration
// formulas.
package system

import (
	"fmt"

	"nds/internal/controller"
	"nds/internal/crypt"
	"nds/internal/ftl"
	"nds/internal/hostsim"
	"nds/internal/interconnect"
	"nds/internal/nvm"
	"nds/internal/sim"
	"nds/internal/stl"
)

// Kind selects one of the three evaluated system configurations.
type Kind int

const (
	Baseline Kind = iota
	SoftwareNDS
	HardwareNDS
)

func (k Kind) String() string {
	switch k {
	case Baseline:
		return "baseline"
	case SoftwareNDS:
		return "software-nds"
	case HardwareNDS:
		return "hardware-nds"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Config assembles the model parameters of one platform.
type Config struct {
	Geometry nvm.Geometry
	Timing   nvm.Timing
	Phantom  bool
	Host     hostsim.Params
	LinkPeak float64
	LinkOvh  sim.Time
	FTL      ftl.Config
	STL      stl.Config
	// CipherKey, when non-empty, installs the §5.3.3 inline encryption
	// engine on the flash array (data-bearing devices only).
	CipherKey []byte
	// Faults, when enabled, installs deterministic flash fault injection
	// (program/erase failures, read retry, wear-out) on the device; the STL's
	// recovery machinery absorbs the faults and reports them through
	// Reliability().
	Faults nvm.FaultPlan
}

// EvalTiming is the evaluation platform's flash timing, calibrated so the
// device's internal-to-external bandwidth ratio is the paper's 8:5 (§7.2):
// 32 channels x 250 MB/s = 8 GB/s internal vs the 4.6 GB/s NVMeoF link.
func EvalTiming() nvm.Timing {
	return nvm.Timing{
		ReadPage:    55 * sim.Microsecond,
		ProgramPage: 1600 * sim.Microsecond,
		EraseBlock:  3 * sim.Millisecond,
		ChannelBW:   250e6,
	}
}

// PrototypeConfig reproduces the paper's evaluation platform (§6.1): a
// 32-channel, 8-bank, 4 KB-page SSD reached over NVMe-oF, 10%
// over-provisioning, and the paper's 256x256 building blocks for 8-byte
// elements (BBMultiplier 2). The flash array is sized to hold datasetBytes
// plus slack, keeping phantom-mode state maps proportional to the
// experiment instead of the paper's full 2 TB.
func PrototypeConfig(datasetBytes int64, phantom bool) Config {
	geo := nvm.Geometry{Channels: 32, Banks: 8, PagesPerBlock: 256, PageSize: 4096}
	dies := int64(geo.Channels * geo.Banks)
	needPages := ceilDiv64(datasetBytes*13/10, int64(geo.PageSize)) // dataset + 30% slack
	geo.BlocksPerBank = int(ceilDiv64(ceilDiv64(needPages, dies), int64(geo.PagesPerBlock)))
	if geo.BlocksPerBank < 4 {
		geo.BlocksPerBank = 4
	}
	stlCfg := stl.DefaultConfig()
	stlCfg.BBMultiplier = 2
	return Config{
		Geometry: geo,
		Timing:   EvalTiming(),
		Phantom:  phantom,
		Host:     hostsim.DefaultParams(),
		LinkPeak: 4.6e9,
		LinkOvh:  3 * sim.Microsecond,
		FTL:      ftl.DefaultConfig(),
		STL:      stlCfg,
	}
}

func ceilDiv64(a, b int64) int64 { return (a + b - 1) / b }

// Default bandwidths for the building-block cache DRAM, used when a
// configuration enables the cache without naming one. Host DRAM (SoftwareNDS:
// the STL caches in host memory) is modeled as one DDR4-3200 channel;
// controller DRAM (HardwareNDS: the cache lives next to the in-device STL) as
// half that, matching the modest LPDDR channels of SSD controllers.
const (
	hostCacheDRAMBW = 25.6e9
	ctrlCacheDRAMBW = 12.8e9
)

// System is one instantiated configuration.
type System struct {
	Kind Kind
	Cfg  Config

	Host *hostsim.Host
	Link *interconnect.Link
	Ctrl *controller.Controller
	Dev  *nvm.Device

	FTL *ftl.FTL // Baseline only
	STL *stl.STL // SoftwareNDS and HardwareNDS

	// BlockedAssembly declares that the consumer kernels accept objects in
	// building-block-tiled layout (e.g. tensor kernels operating on tiles),
	// so assembly copies whole pages instead of per-extent fragments.
	BlockedAssembly bool
}

// assemblyChunks is the number of discrete copies object assembly performs.
func (s *System) assemblyChunks(st stl.RequestStats) int {
	if s.BlockedAssembly {
		return int(st.PagesRead)
	}
	return st.Extents
}

// New builds a system of the given kind.
func New(kind Kind, cfg Config) (*System, error) {
	// Per-kind cache placement: the building-block cache belongs to the STL,
	// so Baseline (FTL, no STL) cannot have one; the NDS kinds differ only in
	// which DRAM backs it.
	switch kind {
	case Baseline:
		cfg.STL.CacheBytes = 0
		cfg.STL.PrefetchDepth = 0
		cfg.STL.CacheDRAMBandwidth = 0
	case SoftwareNDS:
		if cfg.STL.CacheBytes > 0 && cfg.STL.CacheDRAMBandwidth == 0 {
			cfg.STL.CacheDRAMBandwidth = hostCacheDRAMBW
		}
	case HardwareNDS:
		if cfg.STL.CacheBytes > 0 && cfg.STL.CacheDRAMBandwidth == 0 {
			cfg.STL.CacheDRAMBandwidth = ctrlCacheDRAMBW
		}
	}
	dev, err := nvm.NewDevice(cfg.Geometry, cfg.Timing, cfg.Phantom)
	if err != nil {
		return nil, err
	}
	if len(cfg.CipherKey) > 0 {
		eng, err := crypt.New(cfg.CipherKey)
		if err != nil {
			return nil, err
		}
		if err := dev.SetCipher(eng); err != nil {
			return nil, err
		}
	}
	if cfg.Faults.Enabled() {
		dev.SetFaultPlan(cfg.Faults)
	}
	s := &System{
		Kind: kind,
		Cfg:  cfg,
		Host: hostsim.New(cfg.Host),
		Link: interconnect.New("host-link", cfg.LinkPeak, cfg.LinkOvh),
		Dev:  dev,
	}
	switch kind {
	case Baseline:
		s.Ctrl = controller.New(controller.BaselineParams())
		s.FTL, err = ftl.New(dev, cfg.FTL)
	case SoftwareNDS:
		// The open-channel device retains a baseline-class controller for
		// command handling; translation happens on the host.
		s.Ctrl = controller.New(controller.BaselineParams())
		s.STL, err = stl.New(dev, cfg.STL)
	case HardwareNDS:
		s.Ctrl = controller.New(controller.NDSParams())
		s.STL, err = stl.New(dev, cfg.STL)
	default:
		err = fmt.Errorf("system: unknown kind %d", kind)
	}
	if err != nil {
		return nil, err
	}
	return s, nil
}

// ResetTimelines zeroes every resource timeline (host CPU, link, controller,
// device) without touching stored data, so an experiment phase starts from a
// quiet system.
func (s *System) ResetTimelines() {
	s.Host.Reset()
	s.Link.Reset()
	s.Ctrl.Reset()
	s.Dev.ResetTimeline()
}

// OpStats summarizes one operation.
type OpStats struct {
	Done     sim.Time // completion time
	Bytes    int64    // payload bytes the application asked for
	RawBytes int64    // bytes that crossed the host link
	Extents  int      // marshalling/assembly chunks
	Pages    int64    // device page operations
	Commands int      // I/O commands issued by the host

	// ProgramRetries counts faulted programs relocated while serving this
	// request (nonzero only under an installed fault plan).
	ProgramRetries int64
}

// pageSize is a small convenience.
func (s *System) pageSize() int64 { return int64(s.Cfg.Geometry.PageSize) }
