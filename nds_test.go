package nds

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"
)

func openTest(t *testing.T, mode Mode) *Device {
	t.Helper()
	d, err := Open(Options{Mode: mode, CapacityHint: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestPublicRoundTripBothModes(t *testing.T) {
	for _, mode := range []Mode{ModeSoftware, ModeHardware} {
		d := openTest(t, mode)
		id, err := d.CreateSpace(4, []int64{256, 256})
		if err != nil {
			t.Fatal(err)
		}
		sp, err := d.OpenSpace(id, []int64{256, 256})
		if err != nil {
			t.Fatal(err)
		}
		data := make([]byte, 256*256*4)
		rand.New(rand.NewSource(3)).Read(data)
		if _, err := sp.Write([]int64{0, 0}, []int64{256, 256}, data); err != nil {
			t.Fatal(err)
		}
		got, st, err := sp.Read([]int64{0, 0}, []int64{256, 256})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("%v: read-back mismatch", mode)
		}
		if st.Commands != 1 || st.Bytes != int64(len(data)) {
			t.Fatalf("%v: stats = %+v", mode, st)
		}
		if st.Elapsed <= 0 {
			t.Fatalf("%v: simulated time did not advance", mode)
		}
	}
}

func TestReshapedConsumerView(t *testing.T) {
	d := openTest(t, ModeHardware)
	id, err := d.CreateSpace(8, []int64{128, 64})
	if err != nil {
		t.Fatal(err)
	}
	prod, err := d.OpenSpace(id, []int64{128, 64})
	if err != nil {
		t.Fatal(err)
	}
	// Write elements numbered by linear index.
	data := make([]byte, 128*64*8)
	for i := 0; i < 128*64; i++ {
		binary.LittleEndian.PutUint64(data[i*8:], uint64(i))
	}
	if _, err := prod.Write([]int64{0, 0}, []int64{128, 64}, data); err != nil {
		t.Fatal(err)
	}
	// A flat consumer sees the same linear order.
	flat, err := d.OpenSpace(id, []int64{128 * 64})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := flat.Read([]int64{3}, []int64{100})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if v := binary.LittleEndian.Uint64(got[i*8:]); v != uint64(300+i) {
			t.Fatalf("flat view element %d = %d, want %d", i, v, 300+i)
		}
	}
	// A column read through the 2-D view.
	col, _, err := prod.Read([]int64{0, 17}, []int64{128, 1})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 128; r++ {
		if v := binary.LittleEndian.Uint64(col[r*8:]); v != uint64(r*64+17) {
			t.Fatalf("column element %d = %d, want %d", r, v, r*64+17)
		}
	}
}

func TestSpaceLifecycle(t *testing.T) {
	d := openTest(t, ModeSoftware)
	id, err := d.CreateSpace(4, []int64{64, 64})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.OpenSpace(id, []int64{64, 63}); err == nil {
		t.Error("volume-mismatched view accepted")
	}
	if _, err := d.OpenSpace(999, []int64{64, 64}); err == nil {
		t.Error("unknown space opened")
	}
	sp, err := d.OpenSpace(id, []int64{64, 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sp.Close(); err == nil {
		t.Error("double close accepted")
	}
	if _, _, err := sp.Read([]int64{0, 0}, []int64{64, 64}); err == nil {
		t.Error("read through closed view accepted")
	}
	if err := d.DeleteSpace(id); err != nil {
		t.Fatal(err)
	}
	if err := d.DeleteSpace(id); err == nil {
		t.Error("double delete accepted")
	}
}

func TestInspect(t *testing.T) {
	d := openTest(t, ModeHardware)
	id, err := d.CreateSpace(8, []int64{1024, 1024})
	if err != nil {
		t.Fatal(err)
	}
	info, err := d.Inspect(id)
	if err != nil {
		t.Fatal(err)
	}
	// Prototype platform: 256x256 blocks for 8-byte elements (§7.1).
	if info.BlockDims[0] != 256 || info.BlockDims[1] != 256 {
		t.Fatalf("block dims = %v, want [256 256]", info.BlockDims)
	}
	if info.GridDims[0] != 4 || info.GridDims[1] != 4 {
		t.Fatalf("grid dims = %v, want [4 4]", info.GridDims)
	}
	if info.PagesPerBB != 128 {
		t.Fatalf("pages per block = %d, want 128", info.PagesPerBB)
	}
	if _, err := d.Inspect(999); err == nil {
		t.Error("inspect of unknown space accepted")
	}
	if d.Capacity() <= 0 {
		t.Error("capacity not reported")
	}
}

func TestHardwareReadsFasterThanSoftwareOnTiles(t *testing.T) {
	elapsed := func(mode Mode) int64 {
		d := openTest(t, mode)
		id, _ := d.CreateSpace(8, []int64{1024, 1024})
		sp, _ := d.OpenSpace(id, []int64{1024, 1024})
		buf := make([]byte, 1024*256*8)
		for i := int64(0); i < 4; i++ {
			if _, err := sp.Write([]int64{i, 0}, []int64{256, 1024}, buf); err != nil {
				t.Fatal(err)
			}
		}
		start := d.Now()
		if _, _, err := sp.Read([]int64{1, 1}, []int64{512, 512}); err != nil {
			t.Fatal(err)
		}
		return int64(d.Now() - start)
	}
	sw, hw := elapsed(ModeSoftware), elapsed(ModeHardware)
	if hw >= sw {
		t.Fatalf("hardware tile read (%d ns) should beat software (%d ns)", hw, sw)
	}
}

// TestPropertyPublicRoundTrip: any rectangular write read back through the
// public API equals what was written (quick-checked shapes).
func TestPropertyPublicRoundTrip(t *testing.T) {
	d := openTest(t, ModeHardware)
	id, err := d.CreateSpace(4, []int64{96, 96})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := d.OpenSpace(id, []int64{96, 96})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	f := func(a, b, c, e uint8) bool {
		sub := []int64{1 + int64(a)%32, 1 + int64(b)%32}
		coord := []int64{int64(c) % (96 / sub[0]), int64(e) % (96 / sub[1])}
		n := sub[0] * sub[1] * 4
		data := make([]byte, n)
		rng.Read(data)
		if _, err := sp.Write(coord, sub, data); err != nil {
			return false
		}
		got, _, err := sp.Read(coord, sub)
		if err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
