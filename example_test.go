package nds_test

import (
	"encoding/binary"
	"fmt"
	"log"

	"nds"
)

// Example shows the producer/consumer flow of the paper's Figure 4: the
// producer defines the space's dimensionality, the consumer opens its own
// view and fetches a partition with one command.
func Example() {
	dev, err := nds.Open(nds.Options{Mode: nds.ModeHardware, CapacityHint: 8 << 20})
	if err != nil {
		log.Fatal(err)
	}
	// Producer: a 64x64 space of 8-byte elements, numbered linearly.
	id, _ := dev.CreateSpace(8, []int64{64, 64})
	prod, _ := dev.OpenSpace(id, []int64{64, 64})
	data := make([]byte, 64*64*8)
	for i := 0; i < 64*64; i++ {
		binary.LittleEndian.PutUint64(data[i*8:], uint64(i))
	}
	prod.Write([]int64{0, 0}, []int64{64, 64}, data)

	// Consumer: a column through the 2-D view — one command.
	col, stats, _ := prod.Read([]int64{0, 10}, []int64{64, 1})
	fmt.Println("column[3] =", binary.LittleEndian.Uint64(col[3*8:]))
	fmt.Println("commands  =", stats.Commands)
	// Output:
	// column[3] = 202
	// commands  = 1
}

// ExampleDevice_Inspect shows the building-block layout the STL chooses for
// the prototype geometry (Equations 1-2: 256x256 blocks for 8-byte
// elements).
func ExampleDevice_Inspect() {
	dev, _ := nds.Open(nds.Options{Mode: nds.ModeSoftware, CapacityHint: 32 << 20})
	id, _ := dev.CreateSpace(8, []int64{1024, 1024})
	info, _ := dev.Inspect(id)
	fmt.Println("blocks:", info.BlockDims[0], "x", info.BlockDims[1])
	fmt.Println("pages per block:", info.PagesPerBB)
	// Output:
	// blocks: 256 x 256
	// pages per block: 128
}

// ExampleSpace_Read demonstrates dimensionality elasticity: the same stored
// bytes consumed through a reshaped view.
func ExampleSpace_Read() {
	dev, _ := nds.Open(nds.Options{Mode: nds.ModeHardware, CapacityHint: 8 << 20})
	id, _ := dev.CreateSpace(8, []int64{32, 32})
	prod, _ := dev.OpenSpace(id, []int64{32, 32})
	data := make([]byte, 32*32*8)
	for i := 0; i < 32*32; i++ {
		binary.LittleEndian.PutUint64(data[i*8:], uint64(i))
	}
	prod.Write([]int64{0, 0}, []int64{32, 32}, data)

	flat, _ := dev.OpenSpace(id, []int64{1024}) // 1-D view of the same space
	seg, _, _ := flat.Read([]int64{10}, []int64{4})
	for i := 0; i < 4; i++ {
		fmt.Println(binary.LittleEndian.Uint64(seg[i*8:]))
	}
	// Output:
	// 40
	// 41
	// 42
	// 43
}

// ExampleSpace_Scan shows in-storage compute pushdown: the device scans the
// partition next to the flash and only the matching elements cross the
// interconnect, where a Read would have moved the whole partition.
func ExampleSpace_Scan() {
	dev, _ := nds.Open(nds.Options{Mode: nds.ModeHardware, CapacityHint: 8 << 20})
	id, _ := dev.CreateSpace(8, []int64{64, 64})
	prod, _ := dev.OpenSpace(id, []int64{64, 64})
	data := make([]byte, 64*64*8)
	for i := 0; i < 64*64; i++ {
		binary.LittleEndian.PutUint64(data[i*8:], uint64(i%100))
	}
	prod.Write([]int64{0, 0}, []int64{64, 64}, data)

	// Read-then-filter moves the raw partition; pushdown moves the matches.
	_, rstats, _ := prod.Read([]int64{0, 0}, []int64{64, 64})
	res, sstats, _ := prod.Scan([]int64{0, 0}, []int64{64, 64},
		nds.ScanQuery{Pred: nds.Predicate{Lo: 98, Hi: 99}})
	fmt.Println("matches         =", res.Total)
	fmt.Println("read link bytes =", rstats.RawBytes)
	fmt.Println("scan link bytes =", sstats.RawBytes)

	top, _, _ := prod.Reduce([]int64{0, 0}, []int64{64, 64},
		nds.ReduceQuery{Kind: nds.ReduceMax})
	fmt.Println("max value       =", top.Value)
	// Output:
	// matches         = 80
	// read link bytes = 32768
	// scan link bytes = 1296
	// max value       = 99
}
