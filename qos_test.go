package nds

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"nds/internal/proto"
)

// TestQoSOffDifferential pins the PR 7 timing invariant across the QoS gate:
// a device with tenant QoS enabled at equal weights and no rate limit must be
// bit- and simulated-time-identical to one without the feature for any
// serialized issue order — the gate runs in wall-clock time before the space
// lock and never touches a sim timeline. Every op's Stats and the devices'
// final clocks are compared field for field.
func TestQoSOffDifferential(t *testing.T) {
	type opRec struct {
		stats Stats
		data  []byte
	}
	run := func(qos *TenantQoS) ([]opRec, time.Duration) {
		d, err := Open(Options{
			Mode:         ModeHardware,
			CapacityHint: 16 << 20,
			TenantQoS:    qos,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		var recs []opRec
		for s := 0; s < 2; s++ {
			id, err := d.CreateSpace(4, []int64{256, 256})
			if err != nil {
				t.Fatal(err)
			}
			v, err := d.OpenSpace(id, []int64{256, 256})
			if err != nil {
				t.Fatal(err)
			}
			payload := make([]byte, 64*256*4)
			rng := rand.New(rand.NewSource(int64(40 + s)))
			for band := int64(0); band < 4; band++ {
				rng.Read(payload)
				st, err := v.Write([]int64{band, 0}, []int64{64, 256}, payload)
				if err != nil {
					t.Fatal(err)
				}
				recs = append(recs, opRec{stats: st})
				data, st, err := v.Read([]int64{band, 0}, []int64{64, 256})
				if err != nil {
					t.Fatal(err)
				}
				recs = append(recs, opRec{stats: st, data: data})
			}
			if err := v.Close(); err != nil {
				t.Fatal(err)
			}
		}
		return recs, d.Now()
	}

	off, offNow := run(nil)
	on, onNow := run(&TenantQoS{Weight: 1})
	if offNow != onNow {
		t.Fatalf("final simulated clocks differ: QoS off %v, QoS on %v", offNow, onNow)
	}
	if len(off) != len(on) {
		t.Fatalf("op counts differ: %d vs %d", len(off), len(on))
	}
	for i := range off {
		if off[i].stats != on[i].stats {
			t.Fatalf("op %d stats differ:\n  QoS off: %+v\n  QoS on:  %+v", i, off[i].stats, on[i].stats)
		}
		if !bytes.Equal(off[i].data, on[i].data) {
			t.Fatalf("op %d payloads differ", i)
		}
	}
}

// TestTenantStatsWire drives get_tenant_stats (0xCD) end to end: per-space
// accounting accumulated through the public API must come back through the
// wire payload matching Device.TenantStats, including a group-bound space
// reporting under its group tenant.
func TestTenantStatsWire(t *testing.T) {
	d, err := Open(Options{
		Mode:         ModeHardware,
		CapacityHint: 16 << 20,
		TenantQoS:    &TenantQoS{Weight: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	idA, err := d.CreateSpace(4, []int64{128, 128})
	if err != nil {
		t.Fatal(err)
	}
	idB, err := d.CreateSpace(4, []int64{128, 128})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.BindSpaceGroup(idB, 7); err != nil {
		t.Fatal(err)
	}
	if err := d.SetGroupQoS(7, TenantQoS{Weight: 2}); err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 128*128*4)
	rand.New(rand.NewSource(3)).Read(payload)
	for _, id := range []SpaceID{idA, idB} {
		v, err := d.OpenSpace(id, []int64{128, 128})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := v.Write([]int64{0, 0}, []int64{128, 128}, payload); err != nil {
			t.Fatal(err)
		}
		if _, _, err := v.Read([]int64{0, 0}, []int64{128, 128}); err != nil {
			t.Fatal(err)
		}
		if err := v.Close(); err != nil {
			t.Fatal(err)
		}
	}

	want := d.TenantStats()
	if len(want) != 2 {
		t.Fatalf("TenantStats returned %d tenants, want 2 (space A, group 7): %+v", len(want), want)
	}
	if want[0].IsGroup || want[0].Space != idA {
		t.Fatalf("first tenant = %+v, want space %d", want[0], idA)
	}
	if !want[1].IsGroup || want[1].Group != 7 {
		t.Fatalf("second tenant = %+v, want group 7", want[1])
	}
	for i, ts := range want {
		if ts.Ops != 2 || ts.Bytes != 2*int64(len(payload)) {
			t.Fatalf("tenant %d accounting = %+v, want 2 ops / %d bytes", i, ts, 2*len(payload))
		}
		if ts.SimBusy <= 0 {
			t.Fatalf("tenant %d SimBusy = %v, want > 0", i, ts.SimBusy)
		}
	}

	page, cpl, _, err := d.Exec(proto.NewTenantStats(0x4000).Marshal(), nil, nil)
	if err != nil || cpl.Status != proto.StatusOK {
		t.Fatalf("get_tenant_stats: %v / %v", cpl.Status, err)
	}
	if cpl.Result0 != uint64(len(want)) {
		t.Fatalf("get_tenant_stats Result0 = %d, want %d", cpl.Result0, len(want))
	}
	got, err := proto.UnmarshalTenantStatsPayload(page)
	if err != nil {
		t.Fatal(err)
	}
	if got.Total != int64(len(want)) || len(got.Entries) != len(want) {
		t.Fatalf("wire payload total %d / %d entries, want %d", got.Total, len(got.Entries), len(want))
	}
	for i, e := range got.Entries {
		w := want[i]
		wantTenant := uint64(w.Space)
		if w.IsGroup {
			wantTenant = proto.TenantGroupBit | uint64(w.Group)
		}
		if e.Tenant != wantTenant {
			t.Fatalf("entry %d tenant %#x, want %#x", i, e.Tenant, wantTenant)
		}
		if e.WeightMilli != int64(w.Weight*1000) {
			t.Fatalf("entry %d weight %d milli, want %d", i, e.WeightMilli, int64(w.Weight*1000))
		}
		if e.Ops != w.Ops || e.Bytes != w.Bytes || e.SimBusyNs != int64(w.SimBusy) {
			t.Fatalf("entry %d = %+v, want %+v", i, e, w)
		}
	}
}

// TestTenantStatsWireQoSOff: the stats opcode on a QoS-disabled device is not
// an error — it answers OK with zero tenants, so a monitoring client can poll
// without knowing the server's configuration.
func TestTenantStatsWireQoSOff(t *testing.T) {
	d, err := Open(Options{Mode: ModeHardware, CapacityHint: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	page, cpl, _, err := d.Exec(proto.NewTenantStats(0x4000).Marshal(), nil, nil)
	if err != nil || cpl.Status != proto.StatusOK {
		t.Fatalf("get_tenant_stats: %v / %v", cpl.Status, err)
	}
	if cpl.Result0 != 0 {
		t.Fatalf("Result0 = %d, want 0 tenants", cpl.Result0)
	}
	got, err := proto.UnmarshalTenantStatsPayload(page)
	if err != nil {
		t.Fatal(err)
	}
	if got.Total != 0 || len(got.Entries) != 0 {
		t.Fatalf("payload = %+v, want empty", got)
	}
}

// TestQoSRateLimitWallBound: a rate-capped tenant's second request must block
// in wall-clock time for at least the token-refill period (sleep-based waits
// only ever overshoot) and the wait must land in ThrottleNs.
func TestQoSRateLimitWallBound(t *testing.T) {
	d, err := Open(Options{
		Mode:         ModeHardware,
		CapacityHint: 8 << 20,
		TenantQoS:    &TenantQoS{Weight: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	id, err := d.CreateSpace(4, []int64{256, 256})
	if err != nil {
		t.Fatal(err)
	}
	// 1 MiB/s with a 64 KiB bucket: the first 64 KiB read drains the full
	// bucket for free, the second must wait ~62 ms for refill.
	if err := d.SetTenantQoS(id, TenantQoS{Weight: 1, RateBytesPerSec: 1 << 20, Burst: 64 << 10}); err != nil {
		t.Fatal(err)
	}
	v, err := d.OpenSpace(id, []int64{256, 256})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	if _, _, err := v.Read([]int64{0, 0}, []int64{128, 128}); err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	if _, _, err := v.Read([]int64{0, 0}, []int64{128, 128}); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(t0)
	// 64 KiB at 1 MiB/s refills in 62.5 ms; allow generous headroom below for
	// the tokens the first read's own wall time put back.
	const lowerBound = 30 * time.Millisecond
	if elapsed < lowerBound {
		t.Fatalf("rate-capped read returned in %v, want >= %v of token-bucket wait", elapsed, lowerBound)
	}
	ts := d.TenantStats()
	if len(ts) != 1 || ts[0].Throttle < lowerBound {
		t.Fatalf("TenantStats = %+v, want one tenant throttled >= %v", ts, lowerBound)
	}
}
