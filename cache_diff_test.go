package nds

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"nds/internal/proto"
)

// TestCacheConcurrentStreamsDifferential runs the same 16-stream mixed
// read/write workload (each tile written, read back, and re-read warm) on a
// cached device and an uncached one and requires byte-identical payloads
// throughout. Timing and flash-op counts legitimately differ — the cache is a
// performance feature — but data must not. Run under -race (CI does) this
// doubles as the race check for the sharded cache and the prefetcher.
func TestCacheConcurrentStreamsDifferential(t *testing.T) {
	const (
		clients = 16
		tiles   = 256 // 16x16 grid of 64x64 tiles
		tileB   = 64 * 64 * 4
	)
	run := func(cacheBytes int64, depth int) []byte {
		d, err := Open(Options{
			Mode:          ModeHardware,
			CapacityHint:  16 << 20,
			CacheBytes:    cacheBytes,
			PrefetchDepth: depth,
		})
		if err != nil {
			t.Fatal(err)
		}
		id, err := d.CreateSpace(4, []int64{1024, 1024})
		if err != nil {
			t.Fatal(err)
		}
		seed, err := d.OpenSpace(id, []int64{1024, 1024})
		if err != nil {
			t.Fatal(err)
		}
		base := make([]byte, 1024*1024*4)
		rand.New(rand.NewSource(17)).Read(base)
		if _, err := seed.Write([]int64{0, 0}, []int64{1024, 1024}, base); err != nil {
			t.Fatal(err)
		}
		if err := seed.Close(); err != nil {
			t.Fatal(err)
		}

		var wg sync.WaitGroup
		errs := make(chan error, clients)
		per := tiles / clients
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				v, err := d.OpenSpace(id, []int64{1024, 1024})
				if err != nil {
					errs <- err
					return
				}
				defer v.Close()
				payload := make([]byte, tileB)
				for k := 0; k < per; k++ {
					tile := int64(c*per + k)
					coord := []int64{tile / 16, tile % 16}
					rand.New(rand.NewSource(1000 + tile)).Read(payload)
					if _, err := v.Write(coord, []int64{64, 64}, payload); err != nil {
						errs <- fmt.Errorf("tile %d write: %w", tile, err)
						return
					}
					// Cold read fills the cache, warm read hits it; both must
					// return the just-written bytes.
					for pass := 0; pass < 2; pass++ {
						data, _, err := v.Read(coord, []int64{64, 64})
						if err != nil {
							errs <- fmt.Errorf("tile %d read %d: %w", tile, pass, err)
							return
						}
						if !bytes.Equal(data, payload) {
							errs <- fmt.Errorf("tile %d read %d: wrong bytes", tile, pass)
							return
						}
					}
				}
			}(c)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}

		final, err := d.OpenSpace(id, []int64{1024, 1024})
		if err != nil {
			t.Fatal(err)
		}
		full, _, err := final.Read([]int64{0, 0}, []int64{1024, 1024})
		if err != nil {
			t.Fatal(err)
		}
		if err := final.Close(); err != nil {
			t.Fatal(err)
		}
		if cacheBytes > 0 {
			cs := d.CacheStats()
			if cs.Hits == 0 {
				t.Fatalf("cached run recorded no hits: %+v", cs)
			}
			if cs.ResidentBytes > cs.CapacityBytes {
				t.Fatalf("resident %d exceeds capacity %d", cs.ResidentBytes, cs.CapacityBytes)
			}
		} else if cs := d.CacheStats(); cs != (CacheStats{}) {
			t.Fatalf("uncached device reported cache activity: %+v", cs)
		}
		return full
	}

	cached := run(8<<20, 2)
	uncached := run(0, 0)
	if !bytes.Equal(cached, uncached) {
		t.Fatal("final space contents diverge between cached and uncached devices")
	}
}

// TestCacheFaultInteraction: fault injection and the cache compose — program
// faults retire blocks and relocate data mid-workload, and the cached device
// must never serve a stale copy of a relocated or retired page. faultWorkload
// asserts the read-back against a host-side image after every overwrite.
func TestCacheFaultInteraction(t *testing.T) {
	opts := faultOpts()
	opts.CacheBytes = 8 << 20
	opts.PrefetchDepth = 2
	d, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	img, r := faultWorkload(t, d)
	if r.ProgramFaults == 0 || r.RetiredBlocks == 0 {
		t.Fatalf("fault plan never fired under the cache: %+v", r)
	}
	cs := d.CacheStats()
	if cs.Hits == 0 {
		t.Fatalf("workload never hit the cache: %+v", cs)
	}
	if cs.Invalidations == 0 {
		t.Fatalf("overwrites and retirement invalidated nothing: %+v", cs)
	}

	// The cached faulty device must produce the same bytes as an uncached one
	// with the identical fault plan.
	d2, err := Open(faultOpts())
	if err != nil {
		t.Fatal(err)
	}
	img2, _ := faultWorkload(t, d2)
	if !bytes.Equal(img, img2) {
		t.Fatal("cached and uncached faulty devices diverged")
	}
}

// TestExecCacheStats: the get_cache_stats wire command returns a page whose
// decoded counters match the typed CacheStats API.
func TestExecCacheStats(t *testing.T) {
	d, err := Open(Options{Mode: ModeHardware, CapacityHint: 1 << 20, CacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	id, err := d.CreateSpace(4, []int64{256, 256})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := d.OpenSpace(id, []int64{256, 256})
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 256*256*4)
	rand.New(rand.NewSource(5)).Read(data)
	if _, err := sp.Write([]int64{0, 0}, []int64{256, 256}, data); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, _, err := sp.Read([]int64{0, 0}, []int64{256, 256}); err != nil {
			t.Fatal(err)
		}
	}
	want := d.CacheStats()
	if want.Hits == 0 {
		t.Fatalf("warm read recorded no hits: %+v", want)
	}

	page, cpl, _, err := d.Exec(proto.NewCacheStats(0x4000).Marshal(), nil, nil)
	if err != nil || cpl.Status != proto.StatusOK {
		t.Fatalf("get_cache_stats: %v / %v", cpl.Status, err)
	}
	pl, err := proto.UnmarshalCacheStatsPayload(page)
	if err != nil {
		t.Fatal(err)
	}
	got := CacheStats{
		Hits:           pl.Hits,
		Misses:         pl.Misses,
		HitBytes:       pl.HitBytes,
		PrefetchIssued: pl.PrefetchIssued,
		PrefetchUsed:   pl.PrefetchUsed,
		PrefetchWasted: pl.PrefetchWasted,
		Evictions:      pl.Evictions,
		Invalidations:  pl.Invalidations,
		ResidentBytes:  pl.ResidentBytes,
		CapacityBytes:  pl.CapacityBytes,
	}
	if got != want {
		t.Fatalf("wire stats diverged from typed stats:\n%+v\n%+v", got, want)
	}
	if cpl.Result0 != uint64(want.Hits) {
		t.Fatalf("completion Result0 = %d, want hit count %d", cpl.Result0, want.Hits)
	}
}
